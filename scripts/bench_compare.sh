#!/usr/bin/env bash
# Compares two scripts/bench.sh snapshots and fails on a host-performance
# regression: the geometric mean of per-benchmark ns/op ratios (NEW/OLD over
# the benchmarks present in both files) must stay within the tolerance.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json          # default 10% gate
#   scripts/bench_compare.sh OLD.json NEW.json 0.25     # custom tolerance
#
# Exit status: 0 within tolerance, 1 regression, 2 usage/parse error.
#
# For a live gate without a second snapshot, `jrpm-bench -compare OLD.json`
# re-measures the Table 3 suite directly.
set -euo pipefail

OLD="${1:?usage: scripts/bench_compare.sh OLD.json NEW.json [tolerance]}"
NEW="${2:?usage: scripts/bench_compare.sh OLD.json NEW.json [tolerance]}"
TOL="${3:-0.10}"

# The snapshots are the flat one-entry-per-line JSON bench.sh emits; pull
# "name": {... "ns_per_op": N ...} pairs with awk so the gate needs nothing
# beyond POSIX tools.
extract() {
    awk '
    match($0, /^[[:space:]]*"[^"]+": \{/) {
        name = $0
        sub(/^[[:space:]]*"/, "", name); sub(/": \{.*/, "", name)
        if (match($0, /"ns_per_op": [0-9.eE+-]+/)) {
            v = substr($0, RSTART + 13, RLENGTH - 13)
            print name, v
        }
    }' "$1"
}

OLD_TSV="$(extract "$OLD")"
NEW_TSV="$(extract "$NEW")"
if [ -z "$OLD_TSV" ] || [ -z "$NEW_TSV" ]; then
    echo "bench_compare: no ns_per_op entries parsed" >&2
    exit 2
fi

printf '%s\n---\n%s\n' "$OLD_TSV" "$NEW_TSV" | awk -v tol="$TOL" '
BEGIN { phase = 0 }
/^---$/ { phase = 1; next }
phase == 0 { old[$1] = $2; next }
$1 in old && old[$1] > 0 && $2 > 0 {
    ratio = $2 / old[$1]
    printf "%-40s %12.0f -> %12.0f  %6.2fx\n", $1, old[$1], $2, ratio
    logsum += log(ratio); n++
}
END {
    if (n == 0) { print "bench_compare: no common benchmarks" > "/dev/stderr"; exit 2 }
    g = exp(logsum / n)
    printf "%-40s %12s    %12s  %6.2fx (over %d benchmarks)\n", "geomean", "", "", g, n
    if (g > 1 + tol) {
        printf "bench_compare: regression: geomean %.2fx exceeds %.2fx\n", g, 1 + tol > "/dev/stderr"
        exit 1
    }
    print "within tolerance"
}'
