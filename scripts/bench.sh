#!/usr/bin/env bash
# Runs the host-performance benchmark suite and records per-workload ns/op,
# B/op and allocs/op as JSON. The output path is required so successive PRs
# produce distinct, comparable snapshots (BENCH_pr3.json, BENCH_pr7.json,
# ...) instead of silently overwriting the previous baseline.
#
# Usage:
#   scripts/bench.sh BENCH_pr7.json      # full suite at -benchtime=1x
#   scripts/bench.sh out.json 3x         # custom -benchtime
#
# Compare two snapshots with benchstat (see EXPERIMENTS.md):
#   go test -run='^$' -bench=BenchmarkTable3Suite -count=10 . > new.txt
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:?usage: scripts/bench.sh OUT.json [benchtime]}"
BENCHTIME="${2:-1x}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run='^$' -bench='BenchmarkTable3Suite|BenchmarkParallelSuite|BenchmarkTable1Overheads' \
    -benchtime="$BENCHTIME" -benchmem . | tee "$RAW"
# Flight-recorder overhead: tracing-off must match the pre-obs baseline
# (the recorder is a nil interface on the hot path) and tracing-on must
# stay within ~5% of off; more repetitions for a stable comparison.
go test -run='^$' -bench='BenchmarkTraceOverhead' -benchtime=10x -benchmem . | tee -a "$RAW"
# The per-access microbenchmarks need real iteration counts for stable
# ns/op and allocs/op; run them at the default 1s benchtime.
go test -run='^$' -bench='BenchmarkTLSFastPath|BenchmarkTracerFastPath' \
    -benchmem . | tee -a "$RAW"

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
