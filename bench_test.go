// Package jrpm's root benchmark harness regenerates every table and figure
// of the paper's evaluation section as testing.B benchmarks, reporting the
// headline quantity of each artifact through b.ReportMetric:
//
//	Table 1   -> BenchmarkTable1Overheads        (old/new handler cost ratio)
//	Table 3   -> BenchmarkTable3Suite/<name>     (actual TLS speedup)
//	Table 4   -> BenchmarkTable4Transforms/<name>(transformed speedup)
//	Figure 8  -> BenchmarkFig8Suite/<name>       (profiling, predicted, actual)
//	Figure 9  -> BenchmarkFig9Suite/<name>       (total program speedup)
//	Figure 10 -> BenchmarkFig10Suite/<name>      (violated-time share)
//
// The ablation benchmarks cover the design choices DESIGN.md flags:
// inductors, sync locks, VM modifications, handler generations, buffer
// capacity, CPU count and comparator banks.
//
// Run with: go test -bench=. -benchmem
package jrpm_test

import (
	"fmt"
	"testing"

	"jrpm/internal/analyzer"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	fe "jrpm/internal/frontend"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/report"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/workloads"
)

func pipeline(b *testing.B, w *workloads.Workload, transformed bool, opts core.Options) *core.Result {
	b.Helper()
	build := w.Build
	if transformed {
		build = w.BuildTransformed
	}
	// Program construction is frontend work, not simulator work; keep it off
	// the timer. Stop/Start (rather than Reset) so benchmarks that measure
	// two pipelines keep both on the clock.
	b.StopTimer()
	bp := build()
	b.ReportAllocs()
	b.StartTimer()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Run(bp, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OutputsMatch {
			b.Fatalf("%s: speculative output mismatch", w.Name)
		}
	}
	return res
}

// BenchmarkParallelSuite runs the whole Table 3 suite through the parallel
// harness (workloads fanned across GOMAXPROCS); compare against the sum of
// BenchmarkTable3Suite rows for the harness scaling factor.
func BenchmarkParallelSuite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.RunSuiteParallel(core.DefaultOptions(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Overheads(b *testing.B) {
	w := workloads.ByName("FourierTest")
	oldOpts := core.DefaultOptions()
	oldOpts.Handlers = tls.OldHandlers
	bp := w.Build()
	b.ReportAllocs()
	b.ResetTimer()
	var newC, oldC int64
	for i := 0; i < b.N; i++ {
		rn, err := core.Run(bp, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		ro, err := core.Run(bp, oldOpts)
		if err != nil {
			b.Fatal(err)
		}
		newC, oldC = rn.TLS.Cycles, ro.TLS.Cycles
	}
	b.ReportMetric(float64(newC), "new-handler-cycles")
	b.ReportMetric(float64(oldC), "old-handler-cycles")
	b.ReportMetric(float64(oldC)/float64(newC), "old/new-ratio")
}

func BenchmarkTable3Suite(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			res := pipeline(b, w, false, core.DefaultOptions())
			b.ReportMetric(res.SpeedupActual(), "speedup")
			b.ReportMetric(float64(res.TLS.Violations), "violations")
			b.ReportMetric(res.SerialFraction()*100, "serial%")
			b.ReportMetric(res.TLS.AvgStoreBuf, "stbuf-lines")
			b.ReportMetric(res.TLS.AvgLoadBuf, "ldbuf-lines")
		})
	}
}

// BenchmarkTierCompare pairs tier-on and tier-off pipeline runs on two
// Table 3 workloads so `benchstat` (or the CI smoke step's ns/op ratio) can
// quantify the tier-2 block engine's host-time win. Results are bit-identical
// between the legs — only wall time differs. EXPERIMENTS.md has the recipe.
func BenchmarkTierCompare(b *testing.B) {
	off := core.DefaultOptions()
	off.Tier2Off = true
	for _, name := range []string{"BitOps", "FourierTest"} {
		w := workloads.ByName(name)
		b.Run(name+"/tier=on", func(b *testing.B) {
			pipeline(b, w, false, core.DefaultOptions())
		})
		b.Run(name+"/tier=off", func(b *testing.B) {
			pipeline(b, w, false, off)
		})
	}
}

func BenchmarkTable4Transforms(b *testing.B) {
	for _, w := range workloads.All() {
		if w.BuildTransformed == nil {
			continue
		}
		w := w
		b.Run(w.Name, func(b *testing.B) {
			base := pipeline(b, w, false, core.DefaultOptions())
			tr := pipeline(b, w, true, core.DefaultOptions())
			b.ReportMetric(base.SpeedupActual(), "base-speedup")
			b.ReportMetric(tr.SpeedupActual(), "transformed-speedup")
		})
	}
}

func BenchmarkFig8Suite(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			res := pipeline(b, w, false, core.DefaultOptions())
			seq := float64(res.Seq.Cycles)
			b.ReportMetric(float64(res.Profile.Cycles)/seq, "profiling-norm")
			b.ReportMetric(float64(res.PredictedCycles)/seq, "predicted-norm")
			b.ReportMetric(float64(res.TLS.Cycles)/seq, "actual-norm")
		})
	}
}

func BenchmarkFig9Suite(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			res := pipeline(b, w, false, core.DefaultOptions())
			b.ReportMetric(res.TotalSpeedup(), "total-speedup")
			b.ReportMetric(float64(res.CompileCycles), "compile-cycles")
			b.ReportMetric(float64(res.RecompileCycles), "recompile-cycles")
			b.ReportMetric(float64(res.ProfilingOverheadCycles()), "profiling-cycles")
			b.ReportMetric(float64(res.TLS.GCCycles), "gc-cycles")
		})
	}
}

func BenchmarkFig10Suite(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			res := pipeline(b, w, false, core.DefaultOptions())
			st := res.TLS.Stats
			total := st.Serial*4 + st.RunUsed + st.WaitUsed + st.Overhead +
				st.RunViolated + st.WaitViolated
			if total == 0 {
				total = 1
			}
			pc := func(v int64) float64 { return 100 * float64(v) / float64(total) }
			b.ReportMetric(pc(st.Serial*4), "serial%")
			b.ReportMetric(pc(st.RunUsed), "run-used%")
			b.ReportMetric(pc(st.WaitUsed), "wait-used%")
			b.ReportMetric(pc(st.Overhead), "overhead%")
			b.ReportMetric(pc(st.RunViolated), "run-violated%")
			b.ReportMetric(pc(st.WaitViolated), "wait-violated%")
		})
	}
}

// --- Ablations ---

func analyzerOpts(mod func(*analyzer.Config)) core.Options {
	o := core.DefaultOptions()
	a := analyzer.DefaultConfig()
	a.NCPU = o.NCPU
	a.Handlers = o.Handlers
	a.ParallelAlloc = o.VM.ParallelAlloc
	a.ElideLocks = o.VM.ElideLocks
	mod(&a)
	o.Analyzer = &a
	return o
}

func BenchmarkAblationInductors(b *testing.B) {
	off := analyzerOpts(func(a *analyzer.Config) { a.NoInductors = true; a.NoResetable = true })
	for _, name := range []string{"BitOps", "FourierTest", "shallow"} {
		w := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			on := pipeline(b, w, false, core.DefaultOptions())
			no := pipeline(b, w, false, off)
			b.ReportMetric(on.SpeedupActual(), "with-inductors")
			b.ReportMetric(no.SpeedupActual(), "without-inductors")
		})
	}
}

func BenchmarkAblationSyncLock(b *testing.B) {
	off := analyzerOpts(func(a *analyzer.Config) { a.NoSyncLocks = true })
	for _, name := range []string{"monteCarlo", "db"} {
		w := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			on := pipeline(b, w, false, core.DefaultOptions())
			no := pipeline(b, w, false, off)
			b.ReportMetric(on.SpeedupActual(), "with-sync")
			b.ReportMetric(no.SpeedupActual(), "without-sync")
			b.ReportMetric(float64(no.TLS.Violations-on.TLS.Violations), "violations-added")
		})
	}
}

func BenchmarkAblationParallelAlloc(b *testing.B) {
	// A loop allocating an object per iteration — the §5.2 access pattern:
	// with a shared free list, speculative threads serialize on its head.
	build := func() *bytecode.Program {
		p := fe.NewProgram("allocChurn")
		box := p.Class("Box", "v", "w", "x", "y")
		p.Func("main", nil, false).Body(
			fe.Set("sum", fe.I(0)),
			fe.ForUp("i", fe.I(0), fe.I(256),
				fe.Set("bx", fe.NewE(box)),
				fe.SetField(fe.L("bx"), box, "v", fe.Mul(fe.L("i"), fe.I(3))),
				fe.Set("sum", fe.Add(fe.L("sum"), fe.FieldE(fe.L("bx"), box, "v"))),
			),
			fe.Print(fe.L("sum")),
		)
		return p.MustBuild()
	}
	off := core.DefaultOptions()
	off.VM.ParallelAlloc = false
	bp := build()
	b.ReportAllocs()
	b.ResetTimer()
	var on, no *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		if on, err = core.Run(bp, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		if no, err = core.Run(bp, off); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(on.SpeedupActual(), "per-cpu-lists")
	b.ReportMetric(no.SpeedupActual(), "shared-list")
	b.ReportMetric(float64(no.TLS.Violations-on.TLS.Violations), "violations-added")
}

func BenchmarkAblationLockElision(b *testing.B) {
	off := core.DefaultOptions()
	off.VM.ElideLocks = false
	for _, name := range []string{"jess"} {
		w := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			on := pipeline(b, w, false, core.DefaultOptions())
			no := pipeline(b, w, false, off)
			b.ReportMetric(on.SpeedupActual(), "elided-locks")
			b.ReportMetric(no.SpeedupActual(), "original-locks")
		})
	}
}

func BenchmarkAblationHandlers(b *testing.B) {
	old := core.DefaultOptions()
	old.Handlers = tls.OldHandlers
	for _, name := range []string{"BitOps", "LuFactor", "decJpeg"} {
		w := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			rn := pipeline(b, w, false, core.DefaultOptions())
			ro := pipeline(b, w, false, old)
			b.ReportMetric(rn.SpeedupActual(), "new-handlers")
			b.ReportMetric(ro.SpeedupActual(), "old-handlers")
		})
	}
}

func BenchmarkAblationStoreBuffer(b *testing.B) {
	for _, lines := range []int{16, 32, 64, 128} {
		lines := lines
		b.Run(fmt.Sprintf("lines-%d", lines), func(b *testing.B) {
			o := core.DefaultOptions()
			t := tls.DefaultConfig(o.NCPU)
			t.StoreBufferLines = lines
			o.TLS = &t
			res := pipeline(b, workloads.ByName("fft"), false, o)
			b.ReportMetric(res.SpeedupActual(), "fft-speedup")
			b.ReportMetric(float64(res.TLS.Overflows), "overflow-stalls")
		})
	}
}

func BenchmarkAblationCPUs(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("cpus-%d", n), func(b *testing.B) {
			o := core.DefaultOptions()
			o.NCPU = n
			res := pipeline(b, workloads.ByName("FourierTest"), false, o)
			b.ReportMetric(res.SpeedupActual(), "speedup")
		})
	}
}

func BenchmarkAblationComparatorBanks(b *testing.B) {
	for _, n := range []int{1, 2, 8} {
		n := n
		b.Run(fmt.Sprintf("banks-%d", n), func(b *testing.B) {
			o := core.DefaultOptions()
			t := tracer.DefaultConfig()
			t.NumBanks = n
			o.Tracer = &t
			res := pipeline(b, workloads.ByName("LuFactor"), false, o)
			b.ReportMetric(res.SpeedupActual(), "speedup")
		})
	}
}

// BenchmarkTLSFastPath measures the per-access cost of the speculative
// store-buffer structures (store + forwarded load + cross-CPU load). It must
// report 0 allocs/op; difftest pins the same property with AllocsPerRun.
func BenchmarkTLSFastPath(b *testing.B) {
	m := mem.NewMemory(1 << 16)
	caches := mem.NewCacheSim(mem.DefaultCacheConfig(4))
	u := tls.NewUnit(tls.DefaultConfig(4), m, caches)
	if err := u.Start(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := u.Store(1, 80, int64(i)); err != nil {
			b.Fatal(err)
		}
		u.Load(1, 80, false)
		u.Load(2, 128, false)
	}
}

// BenchmarkTraceOverhead quantifies the flight recorder's cost on a full
// pipeline run: "off" is the baseline (nil Recorder, the zero-overhead
// contract — the hot path must not even branch into event construction),
// "on" attaches a default-mask event ring, reset each iteration. The PR
// budget is <5%% wall-clock overhead with tracing on and 0%% (plus 0
// allocs/op, pinned by TestRecorderHotPathZeroAlloc) when disabled.
//
// Both legs pin Tier2Off: attaching a recorder self-disables the tier-2
// block engine on the speculative phase, so an unpinned "off" leg would run
// a faster tier there and the comparison would conflate recorder cost with
// tier choice.
func BenchmarkTraceOverhead(b *testing.B) {
	w := workloads.ByName("BitOps")
	bp := w.Build()
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := core.DefaultOptions()
			o.Tier2Off = true
			res, err := core.Run(bp, o)
			if err != nil {
				b.Fatal(err)
			}
			if !res.OutputsMatch {
				b.Fatal("output mismatch")
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		ring := obs.NewRingMasked(1<<20, obs.MaskDefault)
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			ring.Reset()
			o := core.DefaultOptions()
			o.Tier2Off = true
			o.Recorder = ring
			res, err := core.Run(bp, o)
			if err != nil {
				b.Fatal(err)
			}
			if !res.OutputsMatch {
				b.Fatal("output mismatch")
			}
			events = ring.Total()
		}
		b.ReportMetric(float64(events), "events")
	})
}

// BenchmarkDiagnoseOverhead quantifies the speculation doctor's cost on a
// full pipeline run: "off" is the baseline (no ledger — the per-instruction
// charge path keeps its undiagnosed shape and inlining, pinned bit-identical
// and allocation-free by TestDiagnoseConservesAndIsInvisible and
// TestLedgerHotPathZeroAlloc), "on" attaches the cycle-conservation ledger
// to every phase. The PR budget is <5% wall-clock overhead with diagnosis
// on and 0% when disabled.
func BenchmarkDiagnoseOverhead(b *testing.B) {
	w := workloads.ByName("BitOps")
	bp := w.Build()
	for _, diag := range []bool{false, true} {
		name := "off"
		if diag {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := core.DefaultOptions()
				o.Diagnose = diag
				res, err := core.Run(bp, o)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OutputsMatch {
					b.Fatal("output mismatch")
				}
			}
		})
	}
}

// BenchmarkTracerFastPath measures the per-access cost of the TEST
// timestamp-memory record path (heap store/load + local store/load). It must
// report 0 allocs/op.
func BenchmarkTracerFastPath(b *testing.B) {
	cfg := tracer.DefaultConfig()
	cfg.MemWords = 1 << 16
	tr := tracer.New(cfg)
	defer tr.Release()
	now := int64(0)
	tr.OnSloop(1, now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		tr.OnStore(300, now, tracer.ClassHeap)
		now++
		tr.OnLoad(300, now, tracer.ClassHeap)
		now++
		tr.OnLocalStore(42, 3, now)
		now++
		tr.OnLocalLoad(42, 3, now)
	}
}
