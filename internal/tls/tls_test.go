package tls

import (
	"errors"
	"testing"
	"testing/quick"

	"jrpm/internal/mem"
)

func newTestUnit(ncpu int) (*Unit, *mem.Memory) {
	m := mem.NewMemory(1 << 16)
	cs := mem.NewCacheSim(mem.DefaultCacheConfig(ncpu))
	return NewUnit(DefaultConfig(ncpu), m, cs), m
}

func TestHandlerCostsMatchTable1(t *testing.T) {
	if NewHandlers != (HandlerCosts{23, 16, 5, 6}) {
		t.Errorf("New handler costs %+v do not match Table 1", NewHandlers)
	}
	if OldHandlers != (HandlerCosts{41, 46, 14, 13}) {
		t.Errorf("Old handler costs %+v do not match Table 1", OldHandlers)
	}
}

func TestStartAssignsRoundRobin(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(7)
	for c := 0; c < 4; c++ {
		if u.Iteration(c) != int64(c) {
			t.Errorf("cpu %d iteration = %d, want %d", c, u.Iteration(c), c)
		}
	}
	if !u.IsHead(0) || u.IsHead(1) {
		t.Error("head should be iteration 0 on cpu 0")
	}
	if u.STL() != 7 {
		t.Errorf("STL id = %d", u.STL())
	}
}

func TestNestedStartErrors(t *testing.T) {
	u, _ := newTestUnit(2)
	if err := u.Start(1); err != nil {
		t.Fatalf("first Start: %v", err)
	}
	if err := u.Start(2); !errors.Is(err, ErrProtocol) {
		t.Fatalf("nested Start = %v, want ErrProtocol (one STL at a time)", err)
	}
}

func TestForwardingFromOlderThread(t *testing.T) {
	u, m := newTestUnit(4)
	m.Write(100, 5)
	u.Start(1)
	// CPU1 (iter 1) stores to addr 100 speculatively.
	u.Store(1, 100, 42)
	// CPU2 (iter 2) loads: must see the forwarded value at interproc cost.
	v, lat := u.Load(2, 100, false)
	if v != 42 {
		t.Errorf("forwarded load = %d, want 42", v)
	}
	if lat != mem.LatInterproc {
		t.Errorf("forwarded load latency = %d, want %d", lat, mem.LatInterproc)
	}
	// CPU0 (iter 0, older) must NOT see the buffered value (WAR protection).
	v, _ = u.Load(0, 100, false)
	if v != 5 {
		t.Errorf("older thread load = %d, want memory value 5", v)
	}
	// Memory itself is untouched until commit.
	if m.Read(100) != 5 {
		t.Error("speculative store leaked to memory")
	}
}

func TestNearestForwarderWins(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	u.Store(0, 200, 10) // iter 0
	u.Store(2, 200, 30) // iter 2
	v, _ := u.Load(3, 200, false)
	if v != 30 {
		t.Errorf("load by iter 3 = %d, want 30 (nearest older writer is iter 2)", v)
	}
	v, _ = u.Load(1, 200, false)
	if v != 10 {
		t.Errorf("load by iter 1 = %d, want 10", v)
	}
}

func TestRAWViolationOnExposedRead(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	// Iter 2 reads addr 300 before anyone wrote it.
	u.Load(2, 300, false)
	u.Load(3, 300, false)
	// Iter 1 now stores: iterations 2 and 3 must be violated.
	_, violated, _ := u.Store(1, 300, 9)
	if len(violated) != 2 {
		t.Fatalf("violated CPUs = %v, want cpus of iters 2,3", violated)
	}
	if u.Violations != 2 {
		t.Errorf("violation count = %d, want 2", u.Violations)
	}
	// After restart the re-read sees the forwarded value.
	v, _ := u.Load(2, 300, false)
	if v != 9 {
		t.Errorf("post-restart load = %d, want 9", v)
	}
}

func TestOwnWriteThenReadIsNotExposed(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	u.Store(2, 400, 1) // iter 2 writes first
	u.Load(2, 400, false)
	_, violated, _ := u.Store(1, 400, 7)
	if len(violated) != 0 {
		t.Errorf("read-after-own-write should not be violable, got %v", violated)
	}
}

func TestLwnvNeverViolates(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	v, _ := u.Load(3, 500, true) // lwnv
	if v != 0 {
		t.Errorf("lwnv = %d, want 0", v)
	}
	_, violated, _ := u.Store(0, 500, 1)
	if len(violated) != 0 {
		t.Errorf("lwnv read caused violation: %v", violated)
	}
	// And lwnv sees forwarded speculative data.
	v, _ = u.Load(3, 500, true)
	if v != 1 {
		t.Errorf("lwnv after store = %d, want forwarded 1", v)
	}
}

func TestCommitAdvancesHeadAndWritesMemory(t *testing.T) {
	u, m := newTestUnit(4)
	u.Start(1)
	u.Store(0, 600, 11)
	u.CommitEOI(0)
	if m.Read(600) != 11 {
		t.Error("commit did not drain store buffer to memory")
	}
	if u.Iteration(0) != 4 {
		t.Errorf("cpu0 next iteration = %d, want 4 (round robin)", u.Iteration(0))
	}
	if !u.IsHead(1) {
		t.Error("head should advance to iteration 1")
	}
	if u.Commits != 1 {
		t.Errorf("commit count = %d", u.Commits)
	}
}

func TestCommitByNonHeadErrors(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	if err := u.CommitEOI(2); !errors.Is(err, ErrProtocol) {
		t.Fatalf("non-head commit = %v, want ErrProtocol", err)
	}
}

func TestWAWOrderingAcrossCommits(t *testing.T) {
	u, m := newTestUnit(2)
	u.Start(1)
	u.Store(0, 700, 1) // iter 0
	u.Store(1, 700, 2) // iter 1
	u.CommitEOI(0)
	if m.Read(700) != 1 {
		t.Fatal("iter 0 value not committed")
	}
	u.CommitEOI(1)
	if m.Read(700) != 2 {
		t.Fatal("WAW order broken: final value must be iter 1's")
	}
}

func TestViolationDiscardsBuffer(t *testing.T) {
	u, m := newTestUnit(4)
	m.Write(800, 99)
	u.Start(1)
	u.Load(2, 801, false) // exposed read to make iter 2 violable
	u.Store(2, 800, 5)
	u.Store(1, 801, 1) // violates iter 2 (and cascades to 3)
	// Iter 2's buffered store to 800 must be gone.
	v, _ := u.Load(3, 800, false)
	if v != 99 {
		t.Errorf("discarded store still visible: %d", v)
	}
}

func TestStoreOverflowDetection(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StoreBufferLines = 2
	m := mem.NewMemory(1 << 16)
	u := NewUnit(cfg, m, mem.NewCacheSim(mem.DefaultCacheConfig(2)))
	u.Start(1)
	u.Store(1, 0*mem.LineWords+100, 1)
	u.Store(1, 1*mem.LineWords+100, 1)
	if u.StoreOverflow(1) {
		t.Fatal("not yet overflowed")
	}
	u.Store(1, 2*mem.LineWords+100, 1)
	if !u.StoreOverflow(1) {
		t.Fatal("third distinct line must overflow a 2-line buffer")
	}
	// Same-line stores do not add pressure.
	u.Store(1, 2*mem.LineWords+101, 1)
	if u.threads[1].buf.lines() != 3 {
		t.Fatal("line counting wrong")
	}
}

func TestDrainOverflowRequiresHead(t *testing.T) {
	u, _ := newTestUnit(2)
	u.Start(1)
	if _, err := u.DrainOverflow(1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("DrainOverflow on non-head = %v, want ErrProtocol", err)
	}
}

func TestDrainOverflowFlushesState(t *testing.T) {
	u, m := newTestUnit(2)
	u.Start(1)
	u.Store(0, 900, 3)
	u.Load(0, 901, false)
	u.DrainOverflow(0)
	if m.Read(900) != 3 {
		t.Error("drain did not write memory")
	}
	if u.threads[0].readWords.len() != 0 {
		t.Error("drain did not clear read tracking")
	}
	if u.Overflows != 1 {
		t.Errorf("overflow episodes = %d", u.Overflows)
	}
}

// Regression: a head thread that keeps overflowing within one attempt
// drains repeatedly, but that is ONE stall episode — the Overflows counter
// (the §6.2 adaptive-feedback signal) must not count each drain.
func TestDrainOverflowCountsEpisodesNotDrains(t *testing.T) {
	u, _ := newTestUnit(2)
	u.Start(1)
	u.Store(0, 900, 1)
	for i := 0; i < 5; i++ {
		newEpisode, err := u.DrainOverflow(0)
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if (i == 0) != newEpisode {
			t.Fatalf("drain %d: newEpisode = %v", i, newEpisode)
		}
	}
	if u.Overflows != 1 {
		t.Fatalf("Overflows = %d after 5 drains in one attempt, want 1 episode", u.Overflows)
	}
	// Committing ends the attempt; the next overflow is a fresh episode.
	if err := u.CommitEOI(0); err != nil {
		t.Fatalf("CommitEOI: %v", err)
	}
	if err := u.CommitEOI(1); err != nil {
		t.Fatalf("CommitEOI cpu1: %v", err)
	}
	// cpu0 is head again (iteration 2 of 2 CPUs).
	if _, err := u.DrainOverflow(0); err != nil {
		t.Fatalf("drain in new attempt: %v", err)
	}
	if u.Overflows != 2 {
		t.Fatalf("Overflows = %d, want 2 (second attempt opened a new episode)", u.Overflows)
	}
}

func TestStartSoloRunsSequentially(t *testing.T) {
	u, m := newTestUnit(4)
	if err := u.StartSolo(5, 2); err != nil {
		t.Fatalf("StartSolo: %v", err)
	}
	if !u.Solo() || !u.IsHead(2) {
		t.Fatal("solo head must be the starting CPU")
	}
	for c := 0; c < 4; c++ {
		if c != 2 && u.Iteration(c) != -1 {
			t.Fatalf("cpu %d has iteration %d in solo mode, want idle", c, u.Iteration(c))
		}
	}
	// Iterations advance one at a time and the head never moves.
	for iter := int64(0); iter < 3; iter++ {
		if u.Iteration(2) != iter {
			t.Fatalf("iteration = %d, want %d", u.Iteration(2), iter)
		}
		u.Store(2, 100+mem.Addr(iter), iter)
		if err := u.CommitEOI(2); err != nil {
			t.Fatalf("CommitEOI iter %d: %v", iter, err)
		}
		if !u.IsHead(2) {
			t.Fatal("solo CPU must stay head after commit")
		}
	}
	for iter := int64(0); iter < 3; iter++ {
		if m.Read(100+mem.Addr(iter)) != iter {
			t.Fatalf("iteration %d store not committed", iter)
		}
	}
	killed, err := u.Shutdown(2)
	if err != nil || len(killed) != 0 {
		t.Fatalf("solo shutdown = %v, %v (no slaves to kill)", killed, err)
	}
	if u.Solo() {
		t.Fatal("solo flag must clear at shutdown")
	}
}

func TestDemoteSoloKillsYoungerAndSequences(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	killed, err := u.DemoteSolo(0)
	if err != nil {
		t.Fatalf("DemoteSolo: %v", err)
	}
	if len(killed) != 3 {
		t.Fatalf("killed = %v, want the 3 younger threads", killed)
	}
	if !u.Solo() {
		t.Fatal("unit must be in solo mode after demotion")
	}
	if err := u.CommitEOI(0); err != nil {
		t.Fatalf("CommitEOI: %v", err)
	}
	if u.Iteration(0) != 1 {
		t.Fatalf("post-demotion iteration = %d, want 1 (sequential, not round-robin)", u.Iteration(0))
	}
	if _, err := u.DemoteSolo(1); err == nil {
		t.Fatal("DemoteSolo by non-head must error")
	}
}

func TestStoreHardCapReturnsTypedError(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StoreBufferLines = 1 // hard cap clamps to 1024 lines
	m := mem.NewMemory(1 << 18)
	u := NewUnit(cfg, m, mem.NewCacheSim(mem.DefaultCacheConfig(2)))
	u.Start(1)
	var got error
	for i := 0; i < 1100; i++ {
		_, _, err := u.Store(1, mem.Addr(i)*mem.LineWords+100, 1)
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrStoreBufferOverflow) {
		t.Fatalf("runaway buffer error = %v, want ErrStoreBufferOverflow", got)
	}
}

func TestShutdownKillsYoungerThreads(t *testing.T) {
	u, m := newTestUnit(4)
	u.Start(1)
	u.Store(0, 1000, 8) // exiting head's live-out store
	u.Store(2, 1001, 5) // younger speculative work, to be discarded
	killed, err := u.Shutdown(0)
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if len(killed) != 3 {
		t.Fatalf("killed = %v, want 3 slaves", killed)
	}
	if u.Active() {
		t.Error("unit still active after shutdown")
	}
	if m.Read(1000) != 8 {
		t.Error("head's final stores must commit at shutdown")
	}
	if m.Read(1001) != 0 {
		t.Error("killed thread's stores must be discarded")
	}
}

func TestStateAccountingCommitVsViolate(t *testing.T) {
	u, _ := newTestUnit(4)
	u.Start(1)
	u.ChargeAttempt(0, ChargeRun, 100)
	u.ChargeAttempt(0, ChargeWait, 10)
	u.ChargeAttempt(1, ChargeRun, 50)
	u.Load(1, 1100, false) // make iter 1 violable
	u.CommitEOI(0)
	if u.Stats.RunUsed != 100 || u.Stats.WaitUsed != 10 {
		t.Errorf("committed attempt buckets wrong: %+v", u.Stats)
	}
	u.Store(0, 1100, 1) // cpu0 now iter 4 — wait, iter 4 is younger than 1.
	// Store by iter 4 cannot violate iter 1 (older). Redo with explicit call:
	u.ViolateFrom(1)
	if u.Stats.RunViolated != 50 {
		t.Errorf("violated run cycles = %d, want 50", u.Stats.RunViolated)
	}
	// Overhead holds the startup handler (charged at Start) plus cpu0's
	// flushed EOI cost: ViolateFrom(1) discarded cpu0's new attempt
	// (iteration 4), so its pending EOI handler cost flushed too.
	want := u.Config().Handlers.Startup + u.Config().Handlers.EOI
	if u.Stats.Overhead != want {
		t.Errorf("overhead = %d, want %d", u.Stats.Overhead, want)
	}
}

func TestSerialChargingWhenInactive(t *testing.T) {
	u, _ := newTestUnit(2)
	u.ChargeAttempt(0, ChargeRun, 77)
	if u.Stats.Serial != 77 {
		t.Errorf("inactive charge should be serial, got %+v", u.Stats)
	}
	u.ChargeSerial(3)
	if u.Stats.Serial != 80 {
		t.Errorf("serial = %d", u.Stats.Serial)
	}
}

func TestStatsTotalAndAdd(t *testing.T) {
	a := StateStats{Serial: 1, RunUsed: 2, WaitUsed: 3, Overhead: 4, RunViolated: 5, WaitViolated: 6}
	if a.Total() != 21 {
		t.Errorf("total = %d", a.Total())
	}
	b := a
	b.Add(a)
	if b.Total() != 42 {
		t.Errorf("add total = %d", b.Total())
	}
}

// Property: for any interleaving of speculative stores by distinct threads
// to one address, after committing all threads in order the memory holds the
// youngest thread's value (sequential semantics).
func TestPropertySequentialCommitOrder(t *testing.T) {
	f := func(vals [4]int64) bool {
		u, m := newTestUnit(4)
		u.Start(1)
		// Store in a scrambled CPU order; commit strictly in thread order.
		for _, c := range []int{2, 0, 3, 1} {
			u.Store(c, 50, vals[c])
		}
		for c := 0; c < 4; c++ {
			u.CommitEOI(c)
		}
		return m.Read(50) == vals[3]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a violated thread never leaks a store to memory.
func TestPropertyViolationIsolation(t *testing.T) {
	f := func(addr uint16, v int64) bool {
		u, m := newTestUnit(2)
		a := mem.Addr(addr)%1000 + 100
		u.Start(1)
		u.Load(1, a+1, false)
		u.Store(1, a, v)
		u.Store(0, a+1, 1) // violates iter 1
		u.CommitEOI(0)
		return m.Read(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgBufferUsage(t *testing.T) {
	u, _ := newTestUnit(2)
	u.Start(1)
	u.Store(0, 100, 1)
	u.Store(0, 104, 1) // second line
	u.Load(0, 200, false)
	u.CommitEOI(0)
	st, ld := u.AvgBufferLines()
	if st != 2 || ld != 1 {
		t.Errorf("avg buffer lines = %v/%v, want 2/1", st, ld)
	}
	if u.MaxStoreLines != 2 || u.MaxLoadLines != 1 {
		t.Errorf("max lines = %d/%d", u.MaxStoreLines, u.MaxLoadLines)
	}
}

func TestResetStats(t *testing.T) {
	u, _ := newTestUnit(2)
	u.ChargeSerial(5)
	u.ResetStats()
	if u.Stats.Total() != 0 || u.Commits != 0 {
		t.Error("reset incomplete")
	}
}
