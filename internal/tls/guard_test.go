package tls

import "testing"

// feedWindow drives one full evaluation window with the given commit and
// violation counts (interleaved commits-first is fine: the window closes on
// the event that reaches the Window total).
func feedWindow(g *Guard, loop int64, commits, violations int) {
	for i := 0; i < commits; i++ {
		g.OnCommit(loop)
	}
	for i := 0; i < violations; i++ {
		g.OnViolation(loop)
	}
}

func TestGuardDecertifiesThrashingLoopWithinKWindows(t *testing.T) {
	cases := []struct {
		name       string
		cfg        GuardConfig
		commits    int // per window
		violations int // per window
		wantDecert bool
	}{
		{"all violations", GuardConfig{Window: 8, Decertify: 3}, 0, 8, true},
		{"half violations hits ratio", GuardConfig{Window: 8, Decertify: 3}, 4, 4, true},
		{"mostly commits stays certified", GuardConfig{Window: 8, Decertify: 3}, 7, 1, false},
		{"single bad window is tolerated", GuardConfig{Window: 8, Decertify: 2}, 0, 8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGuard(tc.cfg)
			const loop = 42
			windows := g.Config().Decertify
			if tc.name == "single bad window is tolerated" {
				windows = 1
			}
			for w := 0; w < windows; w++ {
				feedWindow(g, loop, tc.commits, tc.violations)
			}
			if got := g.Decertified(loop); got != tc.wantDecert {
				t.Fatalf("after %d windows of %d commits/%d violations: decertified = %v, want %v",
					windows, tc.commits, tc.violations, got, tc.wantDecert)
			}
		})
	}
}

func TestGuardBadStreakResetsOnGoodWindow(t *testing.T) {
	g := NewGuard(GuardConfig{Window: 4, Decertify: 2})
	const loop = 7
	feedWindow(g, loop, 0, 4) // bad
	feedWindow(g, loop, 4, 0) // good: streak resets
	feedWindow(g, loop, 0, 4) // bad again — streak is 1, not 2
	if g.Decertified(loop) {
		t.Fatal("non-consecutive bad windows must not decertify")
	}
	feedWindow(g, loop, 0, 4)
	if !g.Decertified(loop) {
		t.Fatal("two consecutive bad windows at K=2 must decertify")
	}
}

func TestGuardReprobesAfterBackoffAndRecertifies(t *testing.T) {
	g := NewGuard(GuardConfig{Window: 4, Decertify: 1, Backoff: 3, MaxBackoff: 64})
	const loop = 9
	feedWindow(g, loop, 0, 4)
	if !g.Decertified(loop) {
		t.Fatal("setup: loop should be decertified")
	}
	// The next Backoff entries must run sequentially.
	for i := 0; i < 3; i++ {
		if g.Allow(loop) {
			t.Fatalf("entry %d during backoff should be sequential", i)
		}
	}
	// Then one probe entry is granted.
	if !g.Allow(loop) {
		t.Fatal("probe entry should be granted after backoff expires")
	}
	// The probe behaves: a clean window recertifies the loop.
	feedWindow(g, loop, 4, 0)
	if g.Decertified(loop) {
		t.Fatal("good probe window must recertify the loop")
	}
	st := g.Stats()[loop]
	if st.Probes != 1 || st.Recerts != 1 || st.Decerts != 1 {
		t.Fatalf("stats = %+v, want 1 probe, 1 recert, 1 decert", st)
	}
}

func TestGuardFailedProbeDoublesBackoff(t *testing.T) {
	g := NewGuard(GuardConfig{Window: 4, Decertify: 1, Backoff: 2, MaxBackoff: 8})
	const loop = 11
	feedWindow(g, loop, 0, 4) // decertify; backoff 2
	wantSequential := []int64{2, 4, 8, 8}
	for round, want := range wantSequential {
		// Drain the sequential entries.
		seq := int64(0)
		for !g.Allow(loop) {
			seq++
			if seq > 1000 {
				t.Fatal("backoff never expired")
			}
		}
		if seq != want {
			t.Fatalf("round %d: %d sequential entries before probe, want %d (exponential, capped)", round, seq, want)
		}
		feedWindow(g, loop, 0, 4) // probe fails again
	}
}

func TestGuardShortProbeJudgedAtExit(t *testing.T) {
	g := NewGuard(GuardConfig{Window: 16, Decertify: 1, Backoff: 1})
	const loop = 13
	feedWindow(g, loop, 0, 16)
	g.Allow(loop) // sequential
	if !g.Allow(loop) {
		t.Fatal("probe should be granted")
	}
	// Probe runs only 3 iterations, all commits, then the loop exits before
	// the window fills: OnExit judges the partial window as good.
	feedWindow(g, loop, 3, 0)
	g.OnExit(loop)
	if g.Decertified(loop) {
		t.Fatal("clean partial probe window must recertify at exit")
	}
}

func TestGuardOverflowRatioMarksWindowBad(t *testing.T) {
	g := NewGuard(GuardConfig{Window: 4, BadOverflowRatio: 0.5, Decertify: 1})
	const loop = 17
	// All commits, but every iteration stalls on buffer overflow.
	for i := 0; i < 4; i++ {
		g.OnOverflow(loop)
		g.OnCommit(loop)
	}
	if !g.Decertified(loop) {
		t.Fatal("overflow-saturated window must count as bad")
	}
}

func TestGuardIsNilSafeForReaders(t *testing.T) {
	var g *Guard
	if g.Decertified(1) {
		t.Error("nil guard must report certified")
	}
	if len(g.Stats()) != 0 || len(g.DecertifiedLoops()) != 0 {
		t.Error("nil guard must report empty stats")
	}
}
