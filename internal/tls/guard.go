package tls

import "sort"

// GuardConfig parameterizes the STL violation-storm guard: the runtime
// safety net that operationalizes the paper's "reject decompositions that
// hurt" (§4.3, §6.2) under adversity. The guard watches per-loop
// violation/commit ratios and overflow-stall episodes over fixed-size event
// windows; a loop that produces Decertify consecutive bad windows is
// decertified and falls back to sequential execution (solo mode), then is
// re-probed speculatively after an exponentially growing number of
// sequential entries.
type GuardConfig struct {
	// Window is the number of commit+violation events per evaluation
	// window.
	Window int64
	// BadViolationRatio marks a window bad when
	// violations/(commits+violations) >= this ratio.
	BadViolationRatio float64
	// BadOverflowRatio marks a window bad when overflow episodes per
	// window event >= this ratio.
	BadOverflowRatio float64
	// Decertify is K: consecutive bad windows before the loop is
	// decertified.
	Decertify int
	// Backoff is the number of sequential loop entries before the first
	// re-probe; it doubles after every failed probe up to MaxBackoff.
	Backoff    int64
	MaxBackoff int64
}

// DefaultGuardConfig returns thresholds that tolerate the occasional
// violation burst a healthy STL produces but catch thrashing within a few
// windows.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{
		Window:            32,
		BadViolationRatio: 0.5,
		BadOverflowRatio:  0.5,
		Decertify:         3,
		Backoff:           4,
		MaxBackoff:        256,
	}
}

// GuardLoopStats is the per-loop guard state exposed for reporting.
type GuardLoopStats struct {
	Commits     int64 // lifetime committed iterations
	Violations  int64 // lifetime violations
	Overflows   int64 // lifetime overflow episodes
	Decertified bool  // currently running sequentially
	Decerts     int64 // times the loop was decertified
	Probes      int64 // speculative re-probe entries granted
	Recerts     int64 // probes that re-certified the loop
}

// loopGuard tracks one loop.
type loopGuard struct {
	GuardLoopStats

	// Current window counters.
	wCommits, wViolations, wOverflows int64

	badStreak int
	backoff   int64 // sequential entries before the next probe
	wait      int64 // countdown of sequential entries remaining
	probing   bool  // the current speculative entry is a probe
}

// Guard is the machine-wide STL guard. It is driven by the machine at STL
// entry (Allow), at commit/violation/overflow events, and at loop exit.
type Guard struct {
	cfg   GuardConfig
	loops map[int64]*loopGuard
}

// NewGuard builds a guard; zero-valued config fields fall back to defaults.
func NewGuard(cfg GuardConfig) *Guard {
	def := DefaultGuardConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.BadViolationRatio <= 0 {
		cfg.BadViolationRatio = def.BadViolationRatio
	}
	if cfg.BadOverflowRatio <= 0 {
		cfg.BadOverflowRatio = def.BadOverflowRatio
	}
	if cfg.Decertify <= 0 {
		cfg.Decertify = def.Decertify
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = def.Backoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = def.MaxBackoff
	}
	return &Guard{cfg: cfg, loops: map[int64]*loopGuard{}}
}

// Config returns the effective configuration.
func (g *Guard) Config() GuardConfig { return g.cfg }

func (g *Guard) loop(id int64) *loopGuard {
	lg := g.loops[id]
	if lg == nil {
		lg = &loopGuard{backoff: g.cfg.Backoff}
		g.loops[id] = lg
	}
	return lg
}

// Allow is called at each STL entry and decides whether the loop may run
// speculatively. A decertified loop runs sequentially until its backoff
// expires, then gets one speculative probe entry.
func (g *Guard) Allow(loopID int64) bool {
	lg := g.loop(loopID)
	if !lg.Decertified {
		return true
	}
	if lg.probing {
		return true // mid-probe (nested entries of a hoisted STL)
	}
	if lg.wait > 0 {
		lg.wait--
		return false
	}
	lg.probing = true
	lg.Probes++
	lg.wCommits, lg.wViolations, lg.wOverflows = 0, 0, 0
	return true
}

// Decertified reports whether the loop is currently running sequentially.
func (g *Guard) Decertified(loopID int64) bool {
	if g == nil {
		return false
	}
	if lg := g.loops[loopID]; lg != nil {
		return lg.Decertified && !lg.probing
	}
	return false
}

// OnCommit records a committed iteration of the loop.
func (g *Guard) OnCommit(loopID int64) {
	lg := g.loop(loopID)
	lg.Commits++
	lg.wCommits++
	g.evalWindow(lg)
}

// OnViolation records one violated thread attempt of the loop.
func (g *Guard) OnViolation(loopID int64) {
	lg := g.loop(loopID)
	lg.Violations++
	lg.wViolations++
	g.evalWindow(lg)
}

// OnOverflow records one overflow-stall episode of the loop.
func (g *Guard) OnOverflow(loopID int64) {
	lg := g.loop(loopID)
	lg.Overflows++
	lg.wOverflows++
}

// OnExit is called when the loop's STL shuts down. A probe entry that ends
// before filling a window is judged on its partial counts (an empty window
// counts as good: the probe saw no trouble).
func (g *Guard) OnExit(loopID int64) {
	lg := g.loops[loopID]
	if lg == nil || !lg.probing {
		return
	}
	g.judge(lg, g.windowBad(lg))
	lg.probing = false
}

// windowBad applies the ratio thresholds to the current window counters.
func (g *Guard) windowBad(lg *loopGuard) bool {
	events := lg.wCommits + lg.wViolations
	if events == 0 {
		return false
	}
	if float64(lg.wViolations) >= g.cfg.BadViolationRatio*float64(events) {
		return true
	}
	return float64(lg.wOverflows) >= g.cfg.BadOverflowRatio*float64(events)
}

// evalWindow closes and judges the window once enough events accumulated.
func (g *Guard) evalWindow(lg *loopGuard) {
	if lg.wCommits+lg.wViolations < g.cfg.Window {
		return
	}
	bad := g.windowBad(lg)
	lg.wCommits, lg.wViolations, lg.wOverflows = 0, 0, 0
	g.judge(lg, bad)
	if lg.probing && !lg.Decertified {
		lg.probing = false // probe succeeded mid-run; no longer probationary
	}
}

// judge updates decertification state from one window verdict.
func (g *Guard) judge(lg *loopGuard, bad bool) {
	if bad {
		if lg.probing || lg.Decertified {
			// Failed probe: stay decertified, back off harder.
			lg.backoff *= 2
			if lg.backoff > g.cfg.MaxBackoff {
				lg.backoff = g.cfg.MaxBackoff
			}
			lg.wait = lg.backoff
			lg.probing = false
			lg.badStreak = g.cfg.Decertify
			return
		}
		lg.badStreak++
		if lg.badStreak >= g.cfg.Decertify {
			lg.Decertified = true
			lg.Decerts++
			lg.backoff = g.cfg.Backoff
			lg.wait = lg.backoff
		}
		return
	}
	lg.badStreak = 0
	if lg.Decertified && lg.probing {
		// Good window during a probe: the loop behaves again. Only a probe
		// can re-certify — good windows from any other source (e.g. stray
		// events racing the demotion to solo) are not evidence.
		lg.Decertified = false
		lg.Recerts++
		lg.backoff = g.cfg.Backoff
	}
}

// Stats returns a copy of the per-loop guard state keyed by cfg global
// loop id.
func (g *Guard) Stats() map[int64]GuardLoopStats {
	out := map[int64]GuardLoopStats{}
	if g == nil {
		return out
	}
	for id, lg := range g.loops {
		out[id] = lg.GuardLoopStats
	}
	return out
}

// DecertifiedLoops returns the currently decertified loop ids in ascending
// order (for deterministic reporting).
func (g *Guard) DecertifiedLoops() []int64 {
	var ids []int64
	if g == nil {
		return ids
	}
	for id, lg := range g.loops {
		if lg.Decertified {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
