package tls

import (
	"testing"

	"jrpm/internal/mem"
)

// TestChaosNoWordValidBreaksWordGranularity pins the conformance hook's
// exact failure mode: with word-valid bits disabled on the read path, a
// thread that buffered one word of a line sees garbage for the line's other
// words instead of the memory value, and the read is not tracked as exposed
// (so the later RAW violation is swallowed too). With the hook off, both
// behaviours must be correct — the differential suite relies on this
// contrast to prove it can detect a real forwarding bug.
func TestChaosNoWordValidBreaksWordGranularity(t *testing.T) {
	run := func(chaos bool) (val int64, violated int) {
		m := mem.NewMemory(1 << 16)
		cs := mem.NewCacheSim(mem.DefaultCacheConfig(4))
		cfg := DefaultConfig(4)
		cfg.ChaosNoWordValid = chaos
		u := NewUnit(cfg, m, cs)
		// Words 96 and 97 share a 4-word line. Memory holds 5 at word 97.
		m.Write(97, 5)
		u.Start(1)
		u.Store(2, 96, 42) // iter 2 buffers word 96 only
		v, _ := u.Load(2, 97, false)
		// An older thread now writes word 97: iter 2's read was exposed, so
		// it and everything younger (iter 3) must restart — unless chaos
		// swallowed the tracking.
		_, cpus, _ := u.Store(1, 97, 7)
		return v, len(cpus)
	}

	if v, n := run(false); v != 5 || n != 2 {
		t.Fatalf("clean unit: load=%d violated=%d, want 5 and 2", v, n)
	}
	if v, n := run(true); v != 0 || n != 0 {
		t.Fatalf("chaos unit: load=%d violated=%d, want the line-granularity bug (0 and 0)", v, n)
	}
}
