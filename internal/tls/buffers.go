// Hardware-shaped speculative buffers.
//
// The paper's Figure 2 gives the speculation hardware as small fixed-size
// structures: a 64-line × 32-byte speculative store buffer with per-word
// valid bits, and 512 lines of speculatively-read (load buffer) tags in the
// L1. This file models them as exactly that shape on the host: fixed
// open-addressed tag arrays probed by line address, with word-valid bits and
// in-line data words for the store buffer. A lookup is one hash and a short
// linear probe; a capacity check is an integer compare against an occupancy
// counter; clearing a buffer on violation or commit is a single generation
// bump. Nothing on the per-access path allocates.
//
// Drains replay the buffered lines in insertion order (allocation order of
// the hardware lines) and words in ascending offset within each line. That
// order is fully deterministic — unlike ranging over a Go map — so the cache
// LRU perturbation of a drain is identical from run to run, which the golden
// cycle-equivalence suite depends on.
package tls

import "jrpm/internal/mem"

// Paper Figure-2 speculation buffer capacities. These are the single source
// of the numbers quoted in DESIGN.md and used by DefaultConfig; the ablation
// studies override them per run.
const (
	// PaperStoreBufferLines is the speculative store buffer size: 64 lines
	// of 32 bytes (2 kB of buffered speculative writes per CPU).
	PaperStoreBufferLines = 64
	// PaperLoadBufferLines is the number of L1 lines whose speculative
	// read tag bits track exposed reads (512 lines = the whole 16 kB L1).
	PaperLoadBufferLines = 512
)

// hashAddr spreads line/word addresses over a power-of-two table
// (Fibonacci multiplicative hashing; the low bits of word addresses are
// strongly sequential).
func hashAddr(a mem.Addr) uint32 { return uint32(a) * 0x9E3779B1 }

// storeBuffer is one thread's speculative store buffer: an open-addressed
// CAM keyed by line address, each entry holding LineWords data words and a
// word-valid bitmask. slot state is generation-stamped so reset is O(1).
type storeBuffer struct {
	mask  uint32
	tags  []mem.Addr // line address per slot
	gen   []uint32   // slot valid iff gen[slot] == curGen
	valid []uint8    // per-word valid bits within the line
	words []int64    // LineWords data words per slot
	order []int32    // slots in line-allocation order (deterministic drain)

	curGen uint32
}

// newStoreBuffer sizes the table so it can hold hardCap+1 lines (the runaway
// hard cap trips before the table can fill) at ≤ 50% load.
func newStoreBuffer(hardCap int) *storeBuffer {
	size := 1
	for size < 2*(hardCap+2) {
		size <<= 1
	}
	return &storeBuffer{
		mask:   uint32(size - 1),
		tags:   make([]mem.Addr, size),
		gen:    make([]uint32, size),
		valid:  make([]uint8, size),
		words:  make([]int64, size*mem.LineWords),
		order:  make([]int32, 0, hardCap+2),
		curGen: 1,
	}
}

// reset discards all buffered state in O(1) by bumping the generation.
func (b *storeBuffer) reset() {
	b.order = b.order[:0]
	b.curGen++
	if b.curGen == 0 { // generation wrap: physically clear stale stamps
		clear(b.gen)
		b.curGen = 1
	}
}

// lines returns the number of buffered store-buffer lines.
func (b *storeBuffer) lines() int { return len(b.order) }

// get returns the buffered value of word a, if present.
func (b *storeBuffer) get(a mem.Addr) (int64, bool) {
	line := mem.Line(a)
	off := uint(a) % mem.LineWords
	for slot := hashAddr(line) & b.mask; ; slot = (slot + 1) & b.mask {
		if b.gen[slot] != b.curGen {
			return 0, false
		}
		if b.tags[slot] == line {
			if b.valid[slot]&(1<<off) == 0 {
				return 0, false
			}
			return b.words[int(slot)*mem.LineWords+int(off)], true
		}
	}
}

// getLineOnly is get with the per-word valid bits ignored: any probe of a
// buffered line hits, returning the raw data-array word even if it was never
// written. This exists solely for the Config.ChaosNoWordValid conformance
// hook — it reintroduces the line-granularity forwarding bug that the
// differential suite must be able to detect.
func (b *storeBuffer) getLineOnly(a mem.Addr) (int64, bool) {
	line := mem.Line(a)
	off := uint(a) % mem.LineWords
	for slot := hashAddr(line) & b.mask; ; slot = (slot + 1) & b.mask {
		if b.gen[slot] != b.curGen {
			return 0, false
		}
		if b.tags[slot] == line {
			return b.words[int(slot)*mem.LineWords+int(off)], true
		}
	}
}

// put buffers a write of v to word a, allocating the line on first touch.
func (b *storeBuffer) put(a mem.Addr, v int64) {
	line := mem.Line(a)
	off := uint(a) % mem.LineWords
	slot := hashAddr(line) & b.mask
	for ; ; slot = (slot + 1) & b.mask {
		if b.gen[slot] != b.curGen {
			b.gen[slot] = b.curGen
			b.tags[slot] = line
			b.valid[slot] = 0
			b.order = append(b.order, int32(slot))
			break
		}
		if b.tags[slot] == line {
			break
		}
	}
	b.valid[slot] |= 1 << off
	b.words[int(slot)*mem.LineWords+int(off)] = v
}

// addrSet is a generation-stamped open-addressed set of addresses, modelling
// the speculative read tag bits (word grain for violation detection, line
// grain for load-buffer occupancy). It grows — rehashing — only if occupancy
// passes 50%, which the overflow-park protocol keeps from happening in
// practice; growth preserves correctness if a protocol path outruns it.
type addrSet struct {
	mask   uint32
	keys   []mem.Addr
	gen    []uint32
	n      int
	curGen uint32

	// order lists the live keys in insertion order. It exists for the
	// deterministic state digests the litmus model checker hashes
	// (DebugAppendState); maintaining it costs one bounds-checked append per
	// newly tracked address and never allocates after construction.
	order []mem.Addr
}

func newAddrSet(capacity int) *addrSet {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	return &addrSet{
		mask:   uint32(size - 1),
		keys:   make([]mem.Addr, size),
		gen:    make([]uint32, size),
		curGen: 1,
		order:  make([]mem.Addr, 0, capacity),
	}
}

func (s *addrSet) reset() {
	s.n = 0
	s.order = s.order[:0]
	s.curGen++
	if s.curGen == 0 {
		clear(s.gen)
		s.curGen = 1
	}
}

func (s *addrSet) len() int { return s.n }

func (s *addrSet) contains(a mem.Addr) bool {
	for slot := hashAddr(a) & s.mask; ; slot = (slot + 1) & s.mask {
		if s.gen[slot] != s.curGen {
			return false
		}
		if s.keys[slot] == a {
			return true
		}
	}
}

func (s *addrSet) add(a mem.Addr) {
	for slot := hashAddr(a) & s.mask; ; slot = (slot + 1) & s.mask {
		if s.gen[slot] != s.curGen {
			s.gen[slot] = s.curGen
			s.keys[slot] = a
			s.n++
			s.order = append(s.order, a)
			if uint32(s.n)*2 > s.mask {
				s.grow()
			}
			return
		}
		if s.keys[slot] == a {
			return
		}
	}
}

// grow doubles the table, reinserting live keys in insertion order (which
// preserves the order slice's meaning across growth).
func (s *addrSet) grow() {
	oldOrder := s.order
	size := 2 * len(s.keys)
	s.mask = uint32(size - 1)
	s.keys = make([]mem.Addr, size)
	s.gen = make([]uint32, size)
	s.curGen = 1
	s.n = 0
	s.order = make([]mem.Addr, 0, 2*cap(oldOrder))
	for _, a := range oldOrder {
		s.add(a)
	}
}
