package tls

import (
	"encoding/binary"

	"jrpm/internal/mem"
)

// DebugAppendState appends a deterministic byte snapshot of the unit's
// structural state to b and returns the extended slice. It is a test hook for
// the litmus model checker (internal/litmus), which hashes the snapshot to
// prune revisited abstract states during exhaustive interleaving enumeration.
//
// The snapshot covers everything that can influence future protocol behavior
// or a future unit-versus-oracle comparison that is not separately verified
// every step: activation mode, head/spawn tokens, and per-thread iteration,
// overflow flag, unflushed attempt cycles, store-buffer contents (in
// line-allocation order), and speculative read sets (in insertion order). It
// deliberately excludes the cumulative counters (Stats, Commits, Violations,
// Overflows, buffer high-water marks): the checker compares those against its
// shadow model after every step, so any drift is caught before a pruning
// decision could hide it. Cache microstate is also excluded — the litmus
// driver charges fixed per-operation cycles and never observes latencies.
//
// Two semantically equal states may serialize differently (insertion order is
// history-dependent); that only costs pruning opportunities, never soundness.
func (u *Unit) DebugAppendState(b []byte) []byte {
	b = appendDebugBool(b, u.active)
	b = appendDebugBool(b, u.solo)
	b = binary.LittleEndian.AppendUint64(b, uint64(u.stlID))
	b = binary.LittleEndian.AppendUint64(b, uint64(u.nextCommit))
	b = binary.LittleEndian.AppendUint64(b, uint64(u.nextSpawn))
	for _, t := range u.threads {
		b = binary.LittleEndian.AppendUint64(b, uint64(t.iter))
		b = appendDebugBool(b, t.overflowed)
		b = binary.LittleEndian.AppendUint64(b, uint64(t.run))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.wait))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.overhead))

		sb := t.buf
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sb.order)))
		for _, slot := range sb.order {
			b = binary.LittleEndian.AppendUint32(b, uint32(sb.tags[slot]))
			b = append(b, sb.valid[slot])
			for off := 0; off < mem.LineWords; off++ {
				if sb.valid[slot]&(1<<uint(off)) != 0 {
					b = binary.LittleEndian.AppendUint64(b, uint64(sb.words[int(slot)*mem.LineWords+off]))
				}
			}
		}
		b = appendDebugAddrs(b, t.readWords.order)
		b = appendDebugAddrs(b, t.readLines.order)
	}
	return b
}

func appendDebugBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendDebugAddrs(b []byte, order []mem.Addr) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(order)))
	for _, a := range order {
		b = binary.LittleEndian.AppendUint32(b, uint32(a))
	}
	return b
}
