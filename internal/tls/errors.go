package tls

import (
	"errors"
	"fmt"

	"jrpm/internal/mem"
)

// Typed error sentinels for the speculation protocol. They replace the
// panics the unit used to throw on invariant breaches, so a protocol bug in
// a caller (or an injected fault that drives the unit into a corner)
// surfaces as an error through Machine.Run instead of crashing the process.
//
// Every concrete error carries structured machine coordinates (operation,
// cpu, iteration, head, address where applicable) and supports errors.As, so
// litmus counterexamples and `jrpm-serve` logs can classify failures without
// string matching.
var (
	// ErrProtocol is the sentinel every protocol-invariant breach unwraps
	// to: committing or draining from a non-head thread, nested STL starts,
	// switching while inactive.
	ErrProtocol = errors.New("tls: speculation protocol violation")

	// ErrStoreBufferOverflow reports a speculative store buffer that grew
	// past the unrecoverable hard cap — the overflow-stall machinery failed
	// to park the thread, so its state can no longer be buffered.
	ErrStoreBufferOverflow = errors.New("tls: store buffer overflow beyond drain capacity")

	// ErrSpecViolationStorm reports a violation storm: restarts without a
	// single intervening commit exceeded the configured limit, so the STL is
	// thrashing instead of progressing.
	ErrSpecViolationStorm = errors.New("tls: speculative violation storm")
)

// ProtocolError is the concrete error behind ErrProtocol: a speculation
// protocol invariant breach with the machine coordinates needed to classify
// and localize it. CPU, Iter and Head are -1 when not applicable (for
// instance a nested Start has no single offending cpu).
type ProtocolError struct {
	Op     string // protocol operation that was refused ("CommitEOI", "Shutdown", …)
	CPU    int    // acting CPU, -1 when not applicable
	Iter   int64  // acting thread's iteration at the time, -1 when not applicable
	Head   int64  // iteration holding the head token, -1 when not applicable
	Reason string // invariant that was breached
}

// Error renders the breach with its coordinates.
func (e *ProtocolError) Error() string {
	msg := fmt.Sprintf("%v: %s: %s", ErrProtocol, e.Op, e.Reason)
	if e.CPU >= 0 {
		msg += fmt.Sprintf(" (cpu %d", e.CPU)
		if e.Iter >= 0 || e.Head >= 0 {
			msg += fmt.Sprintf(", iter %d, head %d", e.Iter, e.Head)
		}
		msg += ")"
	}
	return msg
}

// Unwrap makes errors.Is(e, ErrProtocol) true.
func (e *ProtocolError) Unwrap() error { return ErrProtocol }

// OverflowError is the concrete error behind ErrStoreBufferOverflow: the
// runaway hard cap tripped on one thread's speculative store buffer.
type OverflowError struct {
	CPU     int      // owning CPU
	Iter    int64    // iteration the thread was executing
	Addr    mem.Addr // word address of the store that tripped the cap
	Lines   int      // buffered line count at the trip
	HardCap int      // the runaway limit that was exceeded
}

// Error renders the overflow with its coordinates.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("%v: cpu %d (iter %d) buffered %d lines storing to %d (hard cap %d)",
		ErrStoreBufferOverflow, e.CPU, e.Iter, e.Lines, e.Addr, e.HardCap)
}

// Unwrap makes errors.Is(e, ErrStoreBufferOverflow) true.
func (e *OverflowError) Unwrap() error { return ErrStoreBufferOverflow }

// ViolationStormError is the concrete error behind ErrSpecViolationStorm:
// the machine's storm backstop counted Restarts restarts without a single
// intervening commit while executing LoopID.
type ViolationStormError struct {
	Restarts int64 // restarts observed without a commit
	LoopID   int64 // source loop of the thrashing STL
}

// Error renders the storm.
func (e *ViolationStormError) Error() string {
	return fmt.Sprintf("%v: %d restarts without a commit (loop %d)", ErrSpecViolationStorm, e.Restarts, e.LoopID)
}

// Unwrap makes errors.Is(e, ErrSpecViolationStorm) true.
func (e *ViolationStormError) Unwrap() error { return ErrSpecViolationStorm }

// headErr builds the ProtocolError for an operation that requires the head
// token but was invoked by cpu while it held iter (head names the current
// token holder).
func (u *Unit) headErr(op string, cpu int) error {
	return &ProtocolError{
		Op: op, CPU: cpu, Iter: u.threads[cpu].iter, Head: u.nextCommit,
		Reason: "requires the non-speculative head",
	}
}

// stateErr builds the ProtocolError for a unit-level state breach with no
// single offending cpu.
func stateErr(op, reason string) error {
	return &ProtocolError{Op: op, CPU: -1, Iter: -1, Head: -1, Reason: reason}
}
