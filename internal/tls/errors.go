package tls

import (
	"errors"
	"fmt"
)

// Typed error sentinels for the speculation protocol. They replace the
// panics the unit used to throw on invariant breaches, so a protocol bug in
// a caller (or an injected fault that drives the unit into a corner)
// surfaces as an error through Machine.Run instead of crashing the process.
var (
	// ErrProtocol is the sentinel every protocol-invariant breach unwraps
	// to: committing or draining from a non-head thread, nested STL starts,
	// switching while inactive.
	ErrProtocol = errors.New("tls: speculation protocol violation")

	// ErrStoreBufferOverflow reports a speculative store buffer that grew
	// past the unrecoverable hard cap — the overflow-stall machinery failed
	// to park the thread, so its state can no longer be buffered.
	ErrStoreBufferOverflow = errors.New("tls: store buffer overflow beyond drain capacity")

	// ErrSpecViolationStorm reports a violation storm: restarts without a
	// single intervening commit exceeded the configured limit, so the STL is
	// thrashing instead of progressing.
	ErrSpecViolationStorm = errors.New("tls: speculative violation storm")
)

// protocolErr wraps a formatted message so errors.Is(err, ErrProtocol) holds.
func protocolErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}
