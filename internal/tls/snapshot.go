// Safepoint snapshot support for the TLS unit and guard.
//
// Snapshots are taken only while speculation is inactive (the machine's
// safepoint predicate), so no per-thread state travels: every thread is
// between attempts with empty buffers, and whatever stale bytes linger in
// them are reset by the next StartAt/assign before they can be read. What
// must travel is exactly the cumulative accounting ResetStats clears — the
// Figure 10 state buckets and the event/buffer-usage counters — plus the
// guard's full per-loop decision state, which steers future STL entries.
//
// The field order of UnitState deliberately mirrors DebugAppendState
// (debug.go): activation first, then counters in declaration order. The two
// serializations cover complementary halves of the unit — DebugAppendState
// the structural mid-STL state the litmus checker hashes, this one the
// cumulative counters it excludes — under the same ordering contract.
package tls

import (
	"fmt"
	"sort"
)

// UnitState is the cumulative counter state of an inactive Unit: precisely
// the fields ResetStats clears.
type UnitState struct {
	Stats           StateStats
	Commits         int64
	Violations      int64
	Overflows       int64
	MaxStoreLines   int
	MaxLoadLines    int
	SumStoreLines   int64
	SumLoadLines    int64
	CommittedLoads  int64
	CommittedStores int64
}

// CaptureState snapshots the unit's cumulative counters. It errors while an
// STL is active: mid-STL state is structural (buffers, read sets, attempt
// cycles) and is not a safepoint.
func (u *Unit) CaptureState() (UnitState, error) {
	if u.active {
		return UnitState{}, stateErr("CaptureState", "while an STL is active (not a safepoint)")
	}
	return UnitState{
		Stats:           u.Stats,
		Commits:         u.Commits,
		Violations:      u.Violations,
		Overflows:       u.Overflows,
		MaxStoreLines:   u.MaxStoreLines,
		MaxLoadLines:    u.MaxLoadLines,
		SumStoreLines:   u.sumStoreLines,
		SumLoadLines:    u.sumLoadLines,
		CommittedLoads:  u.committedLoads,
		CommittedStores: u.committedStores,
	}, nil
}

// RestoreState writes captured counters into a (freshly built, inactive)
// unit.
func (u *Unit) RestoreState(st UnitState) error {
	if u.active {
		return stateErr("RestoreState", "while an STL is active")
	}
	u.Stats = st.Stats
	u.Commits = st.Commits
	u.Violations = st.Violations
	u.Overflows = st.Overflows
	u.MaxStoreLines = st.MaxStoreLines
	u.MaxLoadLines = st.MaxLoadLines
	u.sumStoreLines = st.SumStoreLines
	u.sumLoadLines = st.SumLoadLines
	u.committedLoads = st.CommittedLoads
	u.committedStores = st.CommittedStores
	return nil
}

// GuardLoopState is one loop's complete guard state: the reported lifetime
// stats plus the private window counters, streak, backoff schedule and
// probe flag — everything that decides whether the next STL entry runs
// speculatively.
type GuardLoopState struct {
	LoopID      int64
	Stats       GuardLoopStats
	WCommits    int64
	WViolations int64
	WOverflows  int64
	BadStreak   int
	Backoff     int64
	Wait        int64
	Probing     bool
}

// CaptureState snapshots every tracked loop, sorted by loop id for a
// canonical encoding.
func (g *Guard) CaptureState() []GuardLoopState {
	if g == nil {
		return nil
	}
	out := make([]GuardLoopState, 0, len(g.loops))
	for id, lg := range g.loops {
		out = append(out, GuardLoopState{
			LoopID:      id,
			Stats:       lg.GuardLoopStats,
			WCommits:    lg.wCommits,
			WViolations: lg.wViolations,
			WOverflows:  lg.wOverflows,
			BadStreak:   lg.badStreak,
			Backoff:     lg.backoff,
			Wait:        lg.wait,
			Probing:     lg.probing,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoopID < out[j].LoopID })
	return out
}

// RestoreState installs captured per-loop state into a freshly built guard,
// replacing whatever it tracked.
func (g *Guard) RestoreState(loops []GuardLoopState) error {
	if g == nil {
		if len(loops) == 0 {
			return nil
		}
		return fmt.Errorf("tls: guard restore: snapshot has %d loops but no guard is attached", len(loops))
	}
	g.loops = make(map[int64]*loopGuard, len(loops))
	for _, st := range loops {
		g.loops[st.LoopID] = &loopGuard{
			GuardLoopStats: st.Stats,
			wCommits:       st.WCommits,
			wViolations:    st.WViolations,
			wOverflows:     st.WOverflows,
			badStreak:      st.BadStreak,
			backoff:        st.Backoff,
			wait:           st.Wait,
			probing:        st.Probing,
		}
	}
	return nil
}
