package tls

// In-package coverage of the structured protocol errors and the litmus
// debug digest. The litmus machine (internal/litmus) exercises these paths
// heavily from outside; these tests pin their contracts where the coverage
// ratchet can see them: error rendering and unwrapping, head/state misuse
// returns on every head-only operation, and DebugAppendState determinism
// and sensitivity.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"jrpm/internal/mem"
)

func TestProtocolErrorRendering(t *testing.T) {
	cases := []struct {
		err  error
		is   error
		want []string
	}{
		{
			&ProtocolError{Op: "CommitEOI", CPU: 2, Iter: 5, Head: 3, Reason: "requires the non-speculative head"},
			ErrProtocol,
			[]string{"CommitEOI", "cpu 2", "iter 5", "head 3", "requires the non-speculative head"},
		},
		{
			&ProtocolError{Op: "StartAt", CPU: -1, Iter: -1, Head: -1, Reason: "nested STL start"},
			ErrProtocol,
			[]string{"StartAt", "nested STL start"},
		},
		{
			&OverflowError{CPU: 1, Iter: 7, Addr: 4096, Lines: 1025, HardCap: 1024},
			ErrStoreBufferOverflow,
			[]string{"cpu 1", "iter 7", "1025 lines", "4096", "hard cap 1024"},
		},
		{
			&ViolationStormError{Restarts: 33, LoopID: 4},
			ErrSpecViolationStorm,
			[]string{"33 restarts", "loop 4"},
		},
	}
	for _, c := range cases {
		msg := c.err.Error()
		for _, frag := range c.want {
			if !strings.Contains(msg, frag) {
				t.Errorf("%T message %q missing %q", c.err, msg, frag)
			}
		}
		if !errors.Is(c.err, c.is) {
			t.Errorf("%T does not unwrap to its sentinel %v", c.err, c.is)
		}
	}
	// Coordinates marked not-applicable must stay out of the message.
	if msg := stateErr("SwitchSTL", "while inactive").Error(); strings.Contains(msg, "cpu") {
		t.Errorf("state-level error leaked cpu coordinates: %q", msg)
	}
}

// TestHeadOnlyOpsRefuseNonHead sweeps every head-gated operation with a
// speculative (non-head) CPU and checks each refuses with a ProtocolError
// carrying the right coordinates, without perturbing unit state.
func TestHeadOnlyOpsRefuseNonHead(t *testing.T) {
	u, _ := newTestUnit(4)
	if err := u.Start(1); err != nil {
		t.Fatal(err)
	}
	ops := map[string]func() error{
		"CommitEOI":     func() error { return u.CommitEOI(2) },
		"CommitPartial": func() error { return u.CommitPartial(2) },
		"DrainOverflow": func() error { _, err := u.DrainOverflow(2); return err },
		"Shutdown":      func() error { _, err := u.Shutdown(2); return err },
		"DemoteSolo":    func() error { _, err := u.DemoteSolo(2); return err },
		"SwitchSTL":     func() error { return u.SwitchSTL(2, 2, 0) },
	}
	for op, call := range ops {
		err := call()
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Fatalf("%s by non-head = %v, want *ProtocolError", op, err)
		}
		if pe.Op != op || pe.CPU != 2 || pe.Iter != 2 || pe.Head != 0 {
			t.Errorf("%s coordinates = %+v, want Op=%s CPU=2 Iter=2 Head=0", op, pe, op)
		}
		if !u.Active() || u.Iteration(2) != 2 {
			t.Fatalf("%s misuse perturbed unit state", op)
		}
	}
	// Inactive-unit breaches are state-level, with no offending cpu.
	if _, err := u.Shutdown(0); err != nil {
		t.Fatal(err)
	}
	for op, call := range map[string]func() error{
		"SwitchSTL":  func() error { return u.SwitchSTL(3, 0, 0) },
		"DemoteSolo": func() error { _, err := u.DemoteSolo(0); return err },
	} {
		err := call()
		var pe *ProtocolError
		if !errors.As(err, &pe) || pe.CPU != -1 {
			t.Errorf("%s while inactive = %v, want state-level *ProtocolError", op, err)
		}
	}
}

// TestDebugAppendStateDigest pins the litmus hashing contract: the digest is
// deterministic, reflects buffered stores, tracked reads and commits, and
// reset state after identical histories is digest-identical.
func TestDebugAppendStateDigest(t *testing.T) {
	run := func() (*Unit, []byte) {
		u, _ := newTestUnit(2)
		if err := u.Start(7); err != nil {
			t.Fatal(err)
		}
		if _, _, err := u.Store(0, 400, 11); err != nil {
			t.Fatal(err)
		}
		u.TrackRead(1, 404)
		u.ChargeAttempt(1, ChargeRun, 3)
		return u, u.DebugAppendState(nil)
	}
	u, d1 := run()
	_, d2 := run()
	if !bytes.Equal(d1, d2) {
		t.Fatal("identical histories produced different digests")
	}
	if len(d1) == 0 {
		t.Fatal("empty digest")
	}

	// Each observable must move the digest.
	u.TrackRead(1, 408)
	d3 := u.DebugAppendState(nil)
	if bytes.Equal(d1, d3) {
		t.Fatal("digest blind to a tracked read")
	}
	if _, _, err := u.Store(0, 500, 5); err != nil {
		t.Fatal(err)
	}
	d4 := u.DebugAppendState(nil)
	if bytes.Equal(d3, d4) {
		t.Fatal("digest blind to a buffered store")
	}
	if err := u.CommitEOI(0); err != nil {
		t.Fatal(err)
	}
	d5 := u.DebugAppendState(nil)
	if bytes.Equal(d4, d5) {
		t.Fatal("digest blind to a commit")
	}

	// Appending to a prefix must leave the prefix intact (hash-buffer reuse).
	prefix := []byte{0xAA, 0xBB}
	out := u.DebugAppendState(prefix)
	if !bytes.Equal(out[:2], prefix) || !bytes.Equal(out[2:], d5) {
		t.Fatal("DebugAppendState does not append cleanly to an existing buffer")
	}
}

// TestTrackReadAndLoadOverflow covers the read-tracking path directly: a
// tracked read registers for violation, a read covered by the thread's own
// store buffer does not, and LoadOverflow flips exactly when distinct read
// lines exceed the configured load buffer.
func TestTrackReadAndLoadOverflow(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.LoadBufferLines = 2
	m := mem.NewMemory(1 << 16)
	u := NewUnit(cfg, m, mem.NewCacheSim(mem.DefaultCacheConfig(2)))
	if err := u.Start(1); err != nil {
		t.Fatal(err)
	}
	u.TrackRead(1, 400)
	if _, violated, err := u.Store(0, 400, 9); err != nil || len(violated) != 1 || violated[0] != 1 {
		t.Fatalf("store over tracked read violated %v (%v), want [1]", violated, err)
	}
	// After the restart the read set is clear; a read satisfied by the
	// thread's own buffer must not register as exposed.
	if _, _, err := u.Store(1, 404, 3); err != nil {
		t.Fatal(err)
	}
	u.TrackRead(1, 404)
	if _, violated, err := u.Store(0, 404, 4); err != nil || len(violated) != 0 {
		t.Fatalf("store over buffered read violated %v (%v), want none", violated, err)
	}
	if u.LoadOverflow(1) {
		t.Fatal("LoadOverflow before exceeding the line budget")
	}
	for i := 0; i < 3; i++ { // 3 distinct lines > LoadBufferLines=2
		u.TrackRead(1, mem.Addr(1000+i*mem.LineWords))
	}
	if !u.LoadOverflow(1) {
		t.Fatal("LoadOverflow did not trip past the configured load buffer lines")
	}
}
