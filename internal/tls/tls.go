// Package tls implements Hydra's thread-level speculation support: per-CPU
// speculative store buffers, exposed-read tracking via L1 speculative tag
// bits, the write-bus RAW violation broadcast, and the in-order head/commit
// protocol (paper §2).
//
// Threads are loop iterations distributed round-robin over CPUs (§4.2.2):
// CPU k executes iterations k, k+NCPU, k+2·NCPU, … The oldest uncommitted
// iteration is the non-speculative "head" thread; it alone may commit its
// store buffer, and it can never suffer a violation.
//
// TLS semantics implemented exactly as in the paper:
//
//   - RAW: a load first checks the thread's own store buffer, then the
//     buffers of sequentially older threads (data forwarding), then memory.
//     Exposed reads (loads not preceded by an own store to the same word)
//     are tracked; a store by an older thread to a tracked word violates
//     this thread and, transitively, all younger ones.
//   - WAW: buffered writes commit strictly in thread order.
//   - WAR: buffered writes are invisible to older threads.
//
// Buffer capacity limits follow Figure 2 (store buffer 64 lines, load buffer
// 512 lines). A thread that exceeds either limit must stall until it becomes
// the head, at which point its state is safe (paper §3, "speculative state
// overflow"). Handler overheads follow Table 1, with both the paper's "New"
// and "Old" generations available for the Table 1 reproduction.
package tls

import (
	"jrpm/internal/faultinject"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
)

// HandlerCosts gives the fixed cycle cost of each TLS software handler
// (paper Table 1).
type HandlerCosts struct {
	Startup  int64 // STL_STARTUP (master only)
	Shutdown int64 // STL_SHUTDOWN (master only)
	EOI      int64 // STL_EOI, per committed iteration
	Restart  int64 // STL_RESTART, per violation
}

// NewHandlers are the improved handler overheads ("New" column of Table 1).
var NewHandlers = HandlerCosts{Startup: 23, Shutdown: 16, EOI: 5, Restart: 6}

// OldHandlers are the previously reported overheads ("Old" column).
var OldHandlers = HandlerCosts{Startup: 41, Shutdown: 46, EOI: 14, Restart: 13}

// Config parameterizes the speculation hardware.
type Config struct {
	NCPU             int
	StoreBufferLines int // per-thread store buffer capacity (paper: 64)
	LoadBufferLines  int // per-thread speculatively-read line limit (paper: 512)
	Handlers         HandlerCosts

	// ChaosNoWordValid is a conformance-suite hook (internal/progen): it
	// disables the store buffer's per-word valid bits on the read path, so a
	// probe hits on the line tag alone and returns whatever the data array
	// holds for unwritten words — the classic line-granularity forwarding
	// bug the Figure-2 word-valid bits exist to prevent. The differential
	// harness must detect the resulting divergence; never set it outside
	// tests and jrpm-fuzz -chaos.
	ChaosNoWordValid bool
}

// DefaultConfig returns the paper's Hydra TLS configuration (Figure 2
// capacities, see PaperStoreBufferLines / PaperLoadBufferLines).
func DefaultConfig(ncpu int) Config {
	return Config{
		NCPU:             ncpu,
		StoreBufferLines: PaperStoreBufferLines,
		LoadBufferLines:  PaperLoadBufferLines,
		Handlers:         NewHandlers,
	}
}

// ChargeKind classifies cycles charged to a speculative thread attempt.
type ChargeKind int

// Charge kinds. Run covers application computation (including memory
// stalls); Wait covers waiting to become head and overflow stalls; Overhead
// covers TLS handler cycles.
const (
	ChargeRun ChargeKind = iota
	ChargeWait
	ChargeOverhead
	// ChargeWaitOverflow is ChargeWait refined for the doctor's ledger: the
	// thread is stalled on speculative-buffer overflow rather than ordinary
	// head-commit ordering. StateStats makes no distinction (both land in the
	// attempt's wait counter); only the attached obs.Ledger does.
	ChargeWaitOverflow
)

// StateStats aggregates machine cycles by the execution states of the
// paper's Figure 10. Speculative cycles land in used/violated buckets when
// the attempt commits or is discarded; Serial counts cycles outside STLs.
type StateStats struct {
	Serial       int64
	RunUsed      int64
	WaitUsed     int64
	Overhead     int64
	RunViolated  int64
	WaitViolated int64
}

// Total returns the sum over all buckets.
func (s StateStats) Total() int64 {
	return s.Serial + s.RunUsed + s.WaitUsed + s.Overhead + s.RunViolated + s.WaitViolated
}

// Add accumulates other into s.
func (s *StateStats) Add(o StateStats) {
	s.Serial += o.Serial
	s.RunUsed += o.RunUsed
	s.WaitUsed += o.WaitUsed
	s.Overhead += o.Overhead
	s.RunViolated += o.RunViolated
	s.WaitViolated += o.WaitViolated
}

// thread is the per-CPU speculation context. Its buffers have the hardware
// shapes of Figure 2 (see buffers.go): a fixed store-buffer CAM with
// word-valid bits and generation-stamped speculative read tag sets.
type thread struct {
	iter      int64 // iteration index being executed; -1 when inactive
	buf       *storeBuffer
	readWords *addrSet // exposed speculative reads (word grain)
	readLines *addrSet // distinct lines read (load buffer usage)

	// overflowed marks that the current attempt has already begun an
	// overflow-stall episode; repeated drains while the thread stays head
	// within one attempt belong to the same episode.
	overflowed bool

	// Tentative cycle accounting for the current attempt (flushed to
	// StateStats on commit or violation).
	run, wait, overhead int64
}

func (t *thread) resetSpecState() {
	t.buf.reset()
	t.readWords.reset()
	t.readLines.reset()
	t.overflowed = false
}

// Unit is the machine-wide TLS controller.
type Unit struct {
	cfg    Config
	memory *mem.Memory
	caches *mem.CacheSim
	inj    *faultinject.Injector

	active     bool
	solo       bool // sequential-fallback mode: only the head thread runs
	stlID      int64
	hardCap    int // runaway store-buffer line limit (see hardCapLines)
	threads    []*thread
	nextCommit int64 // iteration index of the current head
	nextSpawn  int64 // next iteration index to hand out

	// Stats is the Figure 10 state accounting, plus event counters below.
	Stats      StateStats
	Commits    int64
	Violations int64
	Overflows  int64 // overflow stall episodes

	// MaxStoreLines / MaxLoadLines record the high-water buffer usage of
	// committed threads (Table 3 columns j and k).
	MaxStoreLines   int
	MaxLoadLines    int
	sumStoreLines   int64
	sumLoadLines    int64
	committedLoads  int64
	committedStores int64

	// led mirrors the attempt accounting into the doctor's per-loop cycle
	// ledger when attached (nil in ordinary runs; pure observation, never
	// feeds back into Stats or scheduling).
	led *obs.Ledger
}

// NewUnit builds a TLS unit over the given memory and caches.
func NewUnit(cfg Config, memory *mem.Memory, caches *mem.CacheSim) *Unit {
	u := &Unit{cfg: cfg, memory: memory, caches: caches}
	u.hardCap = u.hardCapLines()
	// Read-set sizing: the overflow-park protocol stalls a thread once its
	// read-line count passes LoadBufferLines, so the sets see at most a few
	// entries beyond that (they grow if a protocol path outruns the bound).
	readLineCap := cfg.LoadBufferLines + 8
	for i := 0; i < cfg.NCPU; i++ {
		u.threads = append(u.threads, &thread{
			iter:      -1,
			buf:       newStoreBuffer(u.hardCap),
			readWords: newAddrSet(readLineCap * mem.LineWords),
			readLines: newAddrSet(readLineCap),
		})
	}
	return u
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// SetInjector attaches a fault injector (nil disables injection).
func (u *Unit) SetInjector(inj *faultinject.Injector) { u.inj = inj }

// SetLedger attaches the doctor's cycle-conservation ledger (nil detaches).
func (u *Unit) SetLedger(led *obs.Ledger) { u.led = led }

// Active reports whether an STL is executing speculatively.
func (u *Unit) Active() bool { return u.active }

// Solo reports whether the unit runs in sequential-fallback mode: only the
// head thread executes and iterations advance one at a time.
func (u *Unit) Solo() bool { return u.active && u.solo }

// STL returns the id of the active STL (meaningful only when Active).
func (u *Unit) STL() int64 { return u.stlID }

// Start activates speculation for an STL with CPU 0 as the master/head:
// iteration i is assigned to CPU i. The STL_STARTUP handler cost is charged
// to the Overhead bucket.
func (u *Unit) Start(stlID int64) error { return u.StartAt(stlID, 0, 0) }

// StartAt activates speculation with headCPU executing iteration baseIter
// and the remaining CPUs taking baseIter+1, baseIter+2, … in CPU-id order
// (wrapping past headCPU). Used both for ordinary STL entry (head = master,
// base 0) and to resume an outer STL after a multilevel switch.
func (u *Unit) StartAt(stlID int64, headCPU int, baseIter int64) error {
	if u.active {
		return stateErr("StartAt", "nested STL start (only one STL may be active)")
	}
	u.active = true
	u.solo = false
	u.Stats.Overhead += u.cfg.Handlers.Startup
	u.assign(stlID, headCPU, baseIter)
	return nil
}

// StartSolo activates the unit in sequential-fallback mode for a
// decertified STL: only headCPU runs; it is permanently the head and
// iterations advance one at a time, so the TLS-compiled code executes with
// sequential semantics (the machine redirects each committed iteration back
// through STL_INIT, which re-derives all register state from the hardware
// iteration register and the frame home slots).
func (u *Unit) StartSolo(stlID int64, headCPU int) error {
	if u.active {
		return stateErr("StartSolo", "nested STL start (only one STL may be active)")
	}
	u.active = true
	u.solo = true
	u.Stats.Overhead += u.cfg.Handlers.Startup
	u.assign(stlID, headCPU, 0)
	return nil
}

// assign distributes iterations round-robin starting at the head CPU. In
// solo mode only the head thread is populated and iterations hand out one
// at a time.
func (u *Unit) assign(stlID int64, headCPU int, baseIter int64) {
	u.stlID = stlID
	u.nextCommit = baseIter
	n := u.cfg.NCPU
	if u.solo {
		u.nextSpawn = baseIter + 1
		for c, t := range u.threads {
			if c == headCPU {
				t.iter = baseIter
			} else {
				t.iter = -1
			}
			t.resetSpecState()
			t.run, t.wait, t.overhead = 0, 0, 0
		}
		return
	}
	u.nextSpawn = baseIter + int64(n)
	for off := 0; off < n; off++ {
		t := u.threads[(headCPU+off)%n]
		t.iter = baseIter + int64(off)
		t.resetSpecState()
		t.run, t.wait, t.overhead = 0, 0, 0
	}
}

// SwitchSTL reassigns the active unit to a different STL without paying the
// full startup/shutdown handlers — the multilevel decomposition switch of
// §4.2.6. The head CPU must have committed its partial buffer and killed
// the younger threads first (CommitPartial + KillYounger). Solo mode is
// preserved across the switch.
func (u *Unit) SwitchSTL(stlID int64, headCPU int, baseIter int64) error {
	if !u.active {
		return stateErr("SwitchSTL", "while inactive")
	}
	if !u.IsHead(headCPU) {
		return u.headErr("SwitchSTL", headCPU)
	}
	// The head's tentative cycles are non-speculative work whose stores the
	// mandatory CommitPartial already published; flush them to the used
	// buckets before assign zeroes the attempt counters. Without this the
	// cycles of every partial outer iteration silently vanished from the
	// Figure 10 accounting (found by the litmus machine's cycle-conservation
	// check; pinned in testdata/litmus/switch_stl_accounting.json).
	u.flushAttempt(headCPU, u.threads[headCPU], true)
	u.assign(stlID, headCPU, baseIter)
	return nil
}

// DemoteSolo converts a running STL to sequential-fallback mode: the head
// keeps its current iteration, every younger thread is killed (work
// discarded to the violated buckets), and iterations hand out one at a
// time from the head's. Returns the killed CPUs so the caller can idle
// them.
func (u *Unit) DemoteSolo(cpu int) ([]int, error) {
	if !u.active {
		return nil, stateErr("DemoteSolo", "while inactive")
	}
	if !u.IsHead(cpu) {
		return nil, u.headErr("DemoteSolo", cpu)
	}
	killed := u.KillYounger(cpu)
	u.solo = true
	u.nextSpawn = u.threads[cpu].iter + 1
	return killed, nil
}

// CommitPartial drains the head's store buffer mid-iteration (its state is
// non-speculative) without advancing the head token. Used by the multilevel
// switch and by overflow drains at loop granularity.
func (u *Unit) CommitPartial(cpu int) error {
	t := u.threads[cpu]
	if !u.IsHead(cpu) {
		return u.headErr("CommitPartial", cpu)
	}
	u.drainBuffer(cpu, t)
	t.readWords.reset()
	t.readLines.reset()
	return nil
}

// KillYounger discards every thread younger than cpu's (their work flushes
// to the violated buckets) and returns the affected CPUs.
func (u *Unit) KillYounger(cpu int) []int {
	my := u.threads[cpu].iter
	var killed []int
	for c, t := range u.threads {
		if t.iter > my {
			u.flushAttempt(c, t, false)
			t.resetSpecState()
			t.iter = -1
			killed = append(killed, c)
		}
	}
	return killed
}

// Iteration returns the iteration index CPU cpu is executing.
func (u *Unit) Iteration(cpu int) int64 { return u.threads[cpu].iter }

// IsHead reports whether cpu's thread is the non-speculative head.
func (u *Unit) IsHead(cpu int) bool {
	return u.active && u.threads[cpu].iter == u.nextCommit
}

// ChargeAttempt adds cycles to the current attempt of cpu's thread. When
// speculation is inactive the cycles go straight to the Serial bucket.
func (u *Unit) ChargeAttempt(cpu int, kind ChargeKind, cycles int64) {
	if !u.active {
		u.Stats.Serial += cycles
		return
	}
	t := u.threads[cpu]
	switch kind {
	case ChargeRun:
		t.run += cycles
	case ChargeWait, ChargeWaitOverflow:
		t.wait += cycles
	case ChargeOverhead:
		t.overhead += cycles
	}
}

// ChargeAttemptDiag is ChargeAttempt with the charge mirrored into the
// doctor's ledger. It is a separate entry point — not a branch inside
// ChargeAttempt — so the undiagnosed per-instruction path keeps its
// inlining; hydra selects it once per charge site when a ledger is
// attached. Callers must only use it when a ledger is attached.
func (u *Unit) ChargeAttemptDiag(cpu int, kind ChargeKind, cycles int64) {
	u.ChargeAttempt(cpu, kind, cycles)
	if !u.active {
		u.led.ChargeSerial(cpu, cycles)
		return
	}
	switch kind {
	case ChargeRun:
		u.led.ChargeRun(cpu, cycles)
	case ChargeWait, ChargeWaitOverflow:
		u.led.ChargeWait(cpu, cycles, kind == ChargeWaitOverflow)
	case ChargeOverhead:
		// No ledger mirror: nothing in hydra charges ChargeOverhead today
		// (handler costs flow through the dedicated hooks; the ledger would
		// have no bucket to refine it into).
	}
}

// flushAttempt moves tentative cycles into the used or violated buckets.
func (u *Unit) flushAttempt(cpu int, t *thread, used bool) {
	if used {
		u.Stats.RunUsed += t.run
		u.Stats.WaitUsed += t.wait
	} else {
		u.Stats.RunViolated += t.run
		u.Stats.WaitViolated += t.wait
	}
	u.Stats.Overhead += t.overhead
	t.run, t.wait, t.overhead = 0, 0, 0
	if u.led != nil {
		u.led.FlushAttempt(cpu, used)
	}
}

// Load performs a speculative load by cpu. It returns the value, the charged
// latency, and whether the read is newly tracked. Forwarding order: own
// buffer, then older threads from youngest to oldest, then memory.
// If noViolate is true (the lwnv instruction) the read is not tracked and
// can never cause a violation.
func (u *Unit) Load(cpu int, a mem.Addr, noViolate bool) (int64, int64) {
	t := u.threads[cpu]
	if v, ok := u.probeBuf(t.buf, a); ok {
		return v, mem.LatL1 // own store buffer hit
	}
	// Track the exposed read before looking for forwarded data.
	if !noViolate {
		t.readWords.add(a)
		t.readLines.add(mem.Line(a))
	}
	// Forward from the nearest older thread that buffered the word.
	myIter := t.iter
	var bestIter int64 = -1
	var bestVal int64
	for _, ot := range u.threads {
		if ot.iter >= 0 && ot.iter < myIter && ot.iter > bestIter {
			if v, ok := u.probeBuf(ot.buf, a); ok {
				bestIter = ot.iter
				bestVal = v
			}
		}
	}
	if bestIter >= 0 {
		return bestVal, u.caches.InterprocLatency()
	}
	return u.memory.Read(a), u.caches.Load(cpu, a)
}

// TrackRead records an exposed read that transferred no data: the machine
// calls it when a speculative load faults on a wild address, after the
// hardware load buffer has already latched the read but before the bus access
// completes. It mirrors Load's tracking exactly (own-buffer hits are not
// exposed) so the faulting path leaves the same architectural footprint.
func (u *Unit) TrackRead(cpu int, a mem.Addr) {
	t := u.threads[cpu]
	if _, ok := u.probeBuf(t.buf, a); ok {
		return
	}
	t.readWords.add(a)
	t.readLines.add(mem.Line(a))
}

// probeBuf reads word a from a store buffer, honoring the per-word valid
// bits unless the ChaosNoWordValid conformance hook disables them.
func (u *Unit) probeBuf(b *storeBuffer, a mem.Addr) (int64, bool) {
	if u.cfg.ChaosNoWordValid {
		return b.getLineOnly(a)
	}
	return b.get(a)
}

// hardCapLines returns the runaway limit on buffered store lines: far above
// the stall threshold, so it only trips when the overflow-park machinery
// failed to stop the thread — an unrecoverable state surfaced as a typed
// error rather than unbounded growth.
func (u *Unit) hardCapLines() int {
	cap := u.cfg.StoreBufferLines * 16
	if cap < 1024 {
		cap = 1024
	}
	return cap
}

// Store performs a speculative store by cpu and returns the charged latency
// plus the list of CPUs whose threads were violated by the write-bus
// broadcast (each must restart; the caller redirects their PCs and charges
// the restart handler). Fault injection may delay write-bus arbitration
// (extra latency). A buffer grown past the runaway hard cap returns
// ErrStoreBufferOverflow.
func (u *Unit) Store(cpu int, a mem.Addr, v int64) (int64, []int, error) {
	t := u.threads[cpu]
	t.buf.put(a, v)
	if t.buf.lines() > u.hardCap {
		return 0, nil, &OverflowError{
			CPU: cpu, Iter: t.iter, Addr: a, Lines: t.buf.lines(), HardCap: u.hardCap,
		}
	}
	violated := u.broadcast(cpu, a)
	return mem.LatL1 + u.inj.BusDelayCycles(), violated, nil
}

// broadcast finds the oldest younger thread with an exposed read of a and
// violates it and everything younger.
func (u *Unit) broadcast(cpu int, a mem.Addr) []int {
	my := u.threads[cpu].iter
	var oldest int64 = -1
	for _, ot := range u.threads {
		if ot.iter > my && ot.readWords.contains(a) {
			if oldest < 0 || ot.iter < oldest {
				oldest = ot.iter
			}
		}
	}
	if oldest < 0 {
		return nil
	}
	if u.led != nil {
		// Attribute every attempt this broadcast discards to the violating
		// store's address (symbolized against the writer's frame).
		u.led.BeginViolation(cpu, int64(a))
		cpus := u.ViolateFrom(oldest)
		u.led.EndViolation()
		return cpus
	}
	return u.ViolateFrom(oldest)
}

// ViolateFrom restarts every thread with iteration >= fromIter: speculative
// state is discarded, tentative cycles flush to the violated buckets, and
// the restart handler cost is charged. It returns the affected CPUs; the
// caller must redirect their PCs to the STL restart point.
func (u *Unit) ViolateFrom(fromIter int64) []int {
	var cpus []int
	for c, t := range u.threads {
		if t.iter >= fromIter {
			u.Violations++
			u.flushAttempt(c, t, false)
			t.resetSpecState()
			t.overhead += u.cfg.Handlers.Restart
			if u.led != nil {
				u.led.ChargeRestart(c, u.cfg.Handlers.Restart)
			}
			cpus = append(cpus, c)
		}
	}
	return cpus
}

// StoreOverflow reports whether cpu's store buffer exceeds capacity. Fault
// injection can assert capacity pressure early.
func (u *Unit) StoreOverflow(cpu int) bool {
	if u.threads[cpu].buf.lines() > u.cfg.StoreBufferLines {
		return true
	}
	return u.inj.OverflowPressure()
}

// LoadOverflow reports whether cpu's speculatively-read line set exceeds the
// load buffer (L1 speculative tag) capacity. Fault injection can assert
// capacity pressure early.
func (u *Unit) LoadOverflow(cpu int) bool {
	if u.threads[cpu].readLines.len() > u.cfg.LoadBufferLines {
		return true
	}
	return u.inj.OverflowPressure()
}

// DrainOverflow is called when an overflowed thread has become the head: its
// state is non-speculative, so the store buffer drains to memory and the
// read tracking clears. The thread then continues in place.
//
// It returns whether this drain opened a new overflow episode. A thread
// that keeps overflowing while it stays head drains repeatedly within one
// attempt; those drains continue the same stall episode and must not
// inflate the Overflows counter (one episode = one contiguous stretch of
// overflow pressure within one attempt — the quantity the §6.2 adaptive
// feedback thresholds on).
func (u *Unit) DrainOverflow(cpu int) (bool, error) {
	t := u.threads[cpu]
	if t.iter != u.nextCommit {
		return false, u.headErr("DrainOverflow", cpu)
	}
	newEpisode := !t.overflowed
	t.overflowed = true
	if newEpisode {
		u.Overflows++
	}
	u.drainBuffer(cpu, t)
	t.readWords.reset()
	t.readLines.reset()
	return newEpisode, nil
}

// drainBuffer commits the buffered lines to memory in line-allocation order
// (words ascending within each line) — the order the hardware write-back
// would use, and deterministic, unlike iterating a Go map.
func (u *Unit) drainBuffer(cpu int, t *thread) {
	b := t.buf
	for _, slot := range b.order {
		base := b.tags[slot] * mem.LineWords
		vbits := b.valid[slot]
		for off := mem.Addr(0); off < mem.LineWords; off++ {
			if vbits&(1<<off) != 0 {
				a := base + off
				u.memory.Write(a, b.words[int(slot)*mem.LineWords+int(off)])
				u.caches.Store(cpu, a) // keep tag state coherent; drain is background
			}
		}
	}
	b.reset()
}

// CommitEOI commits the head thread at the end of its iteration: the buffer
// drains in order, speculative tags clear, the head token advances, and the
// CPU is handed the next round-robin iteration (the next sequential
// iteration in solo mode). The EOI handler cost is charged to the (new)
// attempt. Errors if cpu is not the head — the caller must spin in a wait
// state until IsHead.
func (u *Unit) CommitEOI(cpu int) error {
	t := u.threads[cpu]
	if !u.IsHead(cpu) {
		return u.headErr("CommitEOI", cpu)
	}
	u.noteBufferUsage(t)
	u.flushAttempt(cpu, t, true)
	u.drainBuffer(cpu, t)
	t.readWords.reset()
	t.readLines.reset()
	t.overflowed = false
	u.Commits++
	u.nextCommit++
	t.iter = u.nextSpawn
	u.nextSpawn++
	t.overhead += u.cfg.Handlers.EOI
	if u.led != nil {
		u.led.ChargeEOI(cpu, u.cfg.Handlers.EOI)
	}
	return nil
}

func (u *Unit) noteBufferUsage(t *thread) {
	sl := t.buf.lines()
	ll := t.readLines.len()
	if sl > u.MaxStoreLines {
		u.MaxStoreLines = sl
	}
	if ll > u.MaxLoadLines {
		u.MaxLoadLines = ll
	}
	u.sumStoreLines += int64(sl)
	u.sumLoadLines += int64(ll)
	u.committedStores++
	u.committedLoads++
}

// AvgBufferLines returns the mean store-buffer and load-buffer line usage of
// committed threads (Table 3 columns).
func (u *Unit) AvgBufferLines() (store, load float64) {
	if u.committedStores == 0 {
		return 0, 0
	}
	return float64(u.sumStoreLines) / float64(u.committedStores),
		float64(u.sumLoadLines) / float64(u.committedLoads)
}

// Shutdown finalizes the STL: the exiting thread (which must be the head)
// commits its buffer; every younger thread is killed and its work discarded
// into the violated buckets. Speculation deactivates. Returns the CPUs that
// were killed so the caller can idle them.
func (u *Unit) Shutdown(cpu int) ([]int, error) {
	t := u.threads[cpu]
	if !u.IsHead(cpu) {
		return nil, u.headErr("Shutdown", cpu)
	}
	u.noteBufferUsage(t)
	u.flushAttempt(cpu, t, true)
	u.drainBuffer(cpu, t)
	u.Stats.Overhead += u.cfg.Handlers.Shutdown
	var killed []int
	for c, ot := range u.threads {
		if c == cpu {
			ot.iter = -1
			continue
		}
		if ot.iter >= 0 {
			u.flushAttempt(c, ot, false)
			ot.resetSpecState()
			ot.iter = -1
			killed = append(killed, c)
		}
	}
	u.active = false
	u.solo = false
	return killed, nil
}

// ChargeSerial adds cycles to the Serial bucket directly (used by the
// machine for non-speculative execution).
func (u *Unit) ChargeSerial(cycles int64) { u.Stats.Serial += cycles }

// ResetStats clears the accumulated statistics (between program phases).
func (u *Unit) ResetStats() {
	u.Stats = StateStats{}
	u.Commits, u.Violations, u.Overflows = 0, 0, 0
	u.MaxStoreLines, u.MaxLoadLines = 0, 0
	u.sumStoreLines, u.sumLoadLines = 0, 0
	u.committedLoads, u.committedStores = 0, 0
}
