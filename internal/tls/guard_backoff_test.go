package tls

import "testing"

// Edge cases of the guard's re-probe backoff schedule. The scenarios here
// complement guard_test.go: they pin down the exact entry counts at the
// schedule boundaries so the serve-layer circuit breaker (which mirrors this
// schedule) has a precise contract to copy.

// backoffCfg is a small schedule that reaches saturation quickly: windows
// of 4 events, one bad window decertifies, backoff 2 doubling to cap 8.
func backoffCfg() GuardConfig {
	return GuardConfig{
		Window:            4,
		BadViolationRatio: 0.5,
		BadOverflowRatio:  0.5,
		Decertify:         1,
		Backoff:           2,
		MaxBackoff:        8,
	}
}

// feedBadWindow fills one window with a 50% violation ratio.
func feedBadWindow(g *Guard, id int64) {
	g.OnCommit(id)
	g.OnCommit(id)
	g.OnViolation(id)
	g.OnViolation(id)
}

// feedGoodWindow fills one window with commits only.
func feedGoodWindow(g *Guard, id int64) {
	for i := 0; i < 4; i++ {
		g.OnCommit(id)
	}
}

// deniedUntilProbe counts Allow refusals until the guard grants an entry,
// bounded so a wedged schedule fails the test instead of hanging it.
func deniedUntilProbe(t *testing.T, g *Guard, id int64) int {
	t.Helper()
	for denied := 0; denied <= 1024; denied++ {
		if g.Allow(id) {
			return denied
		}
	}
	t.Fatalf("loop %d: no probe granted within 1024 entries", id)
	return -1
}

// TestGuardBackoffSaturation walks the whole schedule: every failed probe
// doubles the sequential backoff until it pins at MaxBackoff and stays
// there, no matter how many more probes fail.
func TestGuardBackoffSaturation(t *testing.T) {
	g := NewGuard(backoffCfg())
	const id = 7
	feedBadWindow(g, id) // Decertify=1: one bad window opens solo mode
	if !g.Decertified(id) {
		t.Fatal("loop not decertified after a bad window")
	}
	// Expected denials before each successive probe: 2, 4, 8, then pinned.
	for probe, want := range []int{2, 4, 8, 8, 8} {
		got := deniedUntilProbe(t, g, id)
		if got != want {
			t.Fatalf("probe %d: %d sequential entries before the probe, want %d", probe+1, got, want)
		}
		feedBadWindow(g, id) // the probe fails: double (or hold) the backoff
		if !g.Decertified(id) {
			t.Fatalf("probe %d: loop recertified by a bad window", probe+1)
		}
	}
	st := g.Stats()[id]
	if st.Probes != 5 || st.Recerts != 0 {
		t.Fatalf("stats = %+v, want 5 probes and 0 recerts", st)
	}
}

// TestGuardDemoteDuringProbe pins the mid-probe demotion path: when the
// probe's own window goes bad before the loop exits, the guard demotes back
// to solo immediately (no OnExit needed), doubles the backoff, and the very
// next entry is sequential again.
func TestGuardDemoteDuringProbe(t *testing.T) {
	g := NewGuard(backoffCfg())
	const id = 3
	feedBadWindow(g, id)
	if n := deniedUntilProbe(t, g, id); n != 2 {
		t.Fatalf("first probe after %d denials, want 2", n)
	}
	// The probe is live. Its window fills bad mid-run.
	feedBadWindow(g, id)
	if !g.Decertified(id) {
		t.Fatal("bad probe window must leave the loop decertified")
	}
	if g.Allow(id) {
		t.Fatal("entry immediately after a failed probe must be sequential")
	}
	// OnExit after the mid-probe demotion is a no-op: the probe was already
	// judged; exiting must not double-judge or grant anything.
	g.OnExit(id)
	st := g.Stats()[id]
	if st.Probes != 1 || st.Recerts != 0 || st.Decerts != 1 {
		t.Fatalf("stats = %+v, want exactly 1 probe, 0 recerts, 1 decert", st)
	}
	// 1 denial already consumed above; the doubled backoff of 4 leaves 3.
	if n := deniedUntilProbe(t, g, id); n != 3 {
		t.Fatalf("second probe after %d more denials, want 3 (backoff doubled to 4)", n)
	}
}

// TestGuardSoloExitAtProbeBoundary pins the exact boundary behaviour of
// solo mode: Allow refuses exactly Backoff entries, grants the next entry
// as the probe, and a loop that exits at that boundary is judged on
// whatever the probe saw — nothing at all counts as a clean probe and
// recertifies.
func TestGuardSoloExitAtProbeBoundary(t *testing.T) {
	cases := []struct {
		name        string
		probeEvents func(g *Guard, id int64)
		recertified bool
		// denials before the probe after this probe resolves (0 when the
		// loop recertified and the next entry is speculative again)
		nextDenials int
	}{
		{
			name:        "empty probe window counts good",
			probeEvents: func(g *Guard, id int64) {},
			recertified: true,
			nextDenials: 0,
		},
		{
			name: "partial good window recertifies at exit",
			probeEvents: func(g *Guard, id int64) {
				g.OnCommit(id)
				g.OnCommit(id)
			},
			recertified: true,
			nextDenials: 0,
		},
		{
			name: "partial bad window demotes at exit",
			probeEvents: func(g *Guard, id int64) {
				g.OnCommit(id)
				g.OnViolation(id) // 1/2 events violated >= ratio 0.5
			},
			recertified: false,
			nextDenials: 4, // backoff doubled from 2
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGuard(backoffCfg())
			const id = 11
			feedBadWindow(g, id)
			// Exactly Backoff=2 sequential entries, then the probe: the
			// boundary is exact, not off-by-one in either direction.
			if g.Allow(id) || g.Allow(id) {
				t.Fatal("entries inside the backoff must be sequential")
			}
			if !g.Allow(id) {
				t.Fatal("entry just past the backoff must be the probe")
			}
			tc.probeEvents(g, id)
			g.OnExit(id) // the loop leaves its STL exactly at the boundary
			if got := !g.Decertified(id); got != tc.recertified {
				t.Fatalf("recertified = %v, want %v", got, tc.recertified)
			}
			if n := deniedUntilProbe(t, g, id); n != tc.nextDenials {
				t.Fatalf("next speculative entry after %d denials, want %d", n, tc.nextDenials)
			}
			if tc.recertified {
				// A recertified loop is fully back: a good window keeps it
				// speculative with no residual probe state.
				feedGoodWindow(g, id)
				if g.Decertified(id) {
					t.Fatal("good window after recertification must not demote")
				}
			}
		})
	}
}
