package tls

// Edge tests for the hardware-shaped speculative buffers: capacity-exact
// overflow at the runaway hard cap, generation-stamp reuse across reset()
// (including the uint32 wrap), hashAddr collision chains under a small
// probe table, and exact lines() bookkeeping throughout. These pin the
// invariants the litmus model checker's tiny-capacity configurations rely
// on (see internal/litmus and testdata/litmus/).

import (
	"errors"
	"testing"

	"jrpm/internal/mem"
)

// lineAddr returns the first word address of line index i.
func lineAddr(i int) mem.Addr { return mem.Addr(i) * mem.LineWords }

// TestStoreHardCapExactBoundary pins the overflow boundary exactly: a
// thread may buffer hardCap distinct lines without error, and the typed
// OverflowError trips on the allocation of line hardCap+1 — not one line
// early — with Lines reporting the post-put occupancy.
func TestStoreHardCapExactBoundary(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StoreBufferLines = 1 // hard cap clamps to 1024 lines
	m := mem.NewMemory(1 << 18)
	u := NewUnit(cfg, m, mem.NewCacheSim(mem.DefaultCacheConfig(2)))
	u.Start(1)
	if u.hardCap != 1024 {
		t.Fatalf("hardCap = %d, want the 1024 clamp", u.hardCap)
	}
	for i := 0; i < u.hardCap; i++ {
		if _, _, err := u.Store(1, lineAddr(i+100), int64(i)); err != nil {
			t.Fatalf("store of line %d (cap %d): %v", i+1, u.hardCap, err)
		}
	}
	if got := u.threads[1].buf.lines(); got != u.hardCap {
		t.Fatalf("lines() = %d after exactly hardCap distinct lines, want %d", got, u.hardCap)
	}
	// Re-writing an already-buffered line allocates nothing and must stay ok.
	if _, _, err := u.Store(1, lineAddr(100)+1, 7); err != nil {
		t.Fatalf("same-line store at capacity: %v", err)
	}
	_, _, err := u.Store(1, lineAddr(u.hardCap+100), 1)
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("store of line hardCap+1 = %v, want *OverflowError", err)
	}
	if !errors.Is(err, ErrStoreBufferOverflow) {
		t.Fatalf("OverflowError must unwrap to ErrStoreBufferOverflow, got %v", err)
	}
	if oe.Lines != u.hardCap+1 || oe.HardCap != u.hardCap || oe.CPU != 1 {
		t.Fatalf("OverflowError fields = %+v, want Lines=%d HardCap=%d CPU=1", oe, u.hardCap+1, u.hardCap)
	}
}

// TestStoreBufferGenerationReuse checks that reset() invalidates in O(1) by
// generation bump — old entries unreachable, lines() back to zero — and that
// slots are correctly re-stamped on reuse, including when curGen wraps
// around zero (the stale-stamp aliasing hazard).
func TestStoreBufferGenerationReuse(t *testing.T) {
	b := newStoreBuffer(4)
	for i := 0; i < 3; i++ {
		b.put(lineAddr(i), int64(10+i))
	}
	if b.lines() != 3 {
		t.Fatalf("lines() = %d, want 3", b.lines())
	}
	b.reset()
	if b.lines() != 0 {
		t.Fatalf("lines() = %d after reset, want 0", b.lines())
	}
	for i := 0; i < 3; i++ {
		if v, ok := b.get(lineAddr(i)); ok {
			t.Fatalf("get(line %d) = %d after reset, want miss", i, v)
		}
	}
	// Reuse the same slots under the new generation; word-valid bits must
	// start clean (no leakage of pre-reset valid bits or data).
	b.put(lineAddr(0), 99)
	if v, ok := b.get(lineAddr(0)); !ok || v != 99 {
		t.Fatalf("get after reuse = %d,%v, want 99,true", v, ok)
	}
	if v, ok := b.get(lineAddr(0) + 1); ok {
		t.Fatalf("unwritten word in reused line forwarded %d; valid bits leaked across reset", v)
	}
	if b.lines() != 1 {
		t.Fatalf("lines() = %d after reuse, want 1", b.lines())
	}

	// Force the generation counter to wrap. Entries stamped at the maximum
	// generation must not resurrect when curGen lands back on small values.
	b.reset()
	b.curGen = ^uint32(0)
	b.put(lineAddr(5), 55)
	b.reset() // wraps: clears stamps physically, curGen = 1
	if b.curGen != 1 {
		t.Fatalf("curGen = %d after wrap, want 1", b.curGen)
	}
	if v, ok := b.get(lineAddr(5)); ok {
		t.Fatalf("entry stamped pre-wrap resurrected with %d", v)
	}
	if b.lines() != 0 {
		t.Fatalf("lines() = %d after wrap reset, want 0", b.lines())
	}
	b.put(lineAddr(5), 56)
	if v, ok := b.get(lineAddr(5)); !ok || v != 56 {
		t.Fatalf("get after wrap reuse = %d,%v, want 56,true", v, ok)
	}
}

// collidingLines brute-forces n distinct line indices that all hash to the
// same initial probe slot under mask.
func collidingLines(t *testing.T, mask uint32, n int) []mem.Addr {
	t.Helper()
	want := hashAddr(0) & mask
	lines := []mem.Addr{0}
	for line := mem.Addr(1); len(lines) < n && line < 1<<20; line++ {
		if hashAddr(line)&mask == want {
			lines = append(lines, line)
		}
	}
	if len(lines) < n {
		t.Fatalf("found only %d/%d colliding lines under mask %#x", len(lines), n, mask)
	}
	return lines
}

// TestStoreBufferCollisionChain fills one probe chain with lines that all
// hash to the same slot and checks every line stays individually
// addressable with exact lines() accounting, through updates and reset.
func TestStoreBufferCollisionChain(t *testing.T) {
	b := newStoreBuffer(4) // table size 16
	lines := collidingLines(t, b.mask, 5)
	for i, line := range lines {
		b.put(line*mem.LineWords, int64(100+i))
		if b.lines() != i+1 {
			t.Fatalf("lines() = %d after %d colliding inserts, want %d", b.lines(), i+1, i+1)
		}
	}
	for i, line := range lines {
		if v, ok := b.get(line * mem.LineWords); !ok || v != int64(100+i) {
			t.Fatalf("chain entry %d: get = %d,%v, want %d,true", i, v, ok, 100+i)
		}
	}
	// Updating a mid-chain line must not extend the chain or the count.
	b.put(lines[2]*mem.LineWords+2, 777)
	if b.lines() != len(lines) {
		t.Fatalf("lines() = %d after mid-chain update, want %d", b.lines(), len(lines))
	}
	if v, ok := b.get(lines[2]*mem.LineWords + 2); !ok || v != 777 {
		t.Fatalf("mid-chain word = %d,%v, want 777,true", v, ok)
	}
	if v, ok := b.get(lines[2]*mem.LineWords + 3); ok {
		t.Fatalf("unwritten mid-chain word forwarded %d", v)
	}
	b.reset()
	for i, line := range lines {
		if _, ok := b.get(line * mem.LineWords); ok {
			t.Fatalf("chain entry %d survived reset", i)
		}
	}
}

// TestStoreBufferLinesExactness checks lines() counts distinct lines, not
// puts: multiple words of a line, rewrites, and interleavings across lines
// must all keep the count exact (the drain/park protocol and the litmus
// shadow both key off this number).
func TestStoreBufferLinesExactness(t *testing.T) {
	b := newStoreBuffer(8)
	for w := 0; w < mem.LineWords; w++ {
		b.put(lineAddr(3)+mem.Addr(w), int64(w))
		if b.lines() != 1 {
			t.Fatalf("lines() = %d after %d words of one line, want 1", b.lines(), w+1)
		}
	}
	b.put(lineAddr(4), 1)
	b.put(lineAddr(3)+1, 42) // rewrite
	b.put(lineAddr(5), 2)
	b.put(lineAddr(4)+3, 3) // second word of an existing line
	if b.lines() != 3 {
		t.Fatalf("lines() = %d, want 3 distinct lines", b.lines())
	}
	if v, ok := b.get(lineAddr(3) + 1); !ok || v != 42 {
		t.Fatalf("rewritten word = %d,%v, want 42,true", v, ok)
	}
}

// TestAddrSetCollisionAndGrowth drives an addrSet through a collision chain
// and past its growth threshold, checking membership, len(), insertion-order
// stability (the litmus digest depends on it), and reset behaviour.
func TestAddrSetCollisionAndGrowth(t *testing.T) {
	s := newAddrSet(2) // table size 4: third insert triggers growth
	lines := collidingLines(t, s.mask, 2)
	var inserted []mem.Addr
	add := func(a mem.Addr) {
		s.add(a)
		inserted = append(inserted, a)
	}
	add(lines[0])
	add(lines[1])
	add(lines[0]) // duplicate: no count or order change
	if s.len() != 2 {
		t.Fatalf("len() = %d, want 2", s.len())
	}
	for i := 0; i < 40; i++ { // force repeated growth
		add(mem.Addr(1000 + i))
	}
	if s.len() != 42 {
		t.Fatalf("len() = %d after growth, want 42", s.len())
	}
	for _, a := range inserted {
		if !s.contains(a) {
			t.Fatalf("addr %d lost across growth", a)
		}
	}
	if s.contains(mem.Addr(4242)) {
		t.Fatal("contains() hit for a never-added address")
	}
	want := []mem.Addr{lines[0], lines[1]}
	for i := 0; i < 40; i++ {
		want = append(want, mem.Addr(1000+i))
	}
	if len(s.order) != len(want) {
		t.Fatalf("order has %d entries, want %d", len(s.order), len(want))
	}
	for i, a := range want {
		if s.order[i] != a {
			t.Fatalf("order[%d] = %d, want %d (insertion order broken by growth)", i, s.order[i], a)
		}
	}
	s.reset()
	if s.len() != 0 || len(s.order) != 0 {
		t.Fatalf("reset left len=%d order=%d", s.len(), len(s.order))
	}
	if s.contains(lines[0]) {
		t.Fatal("membership survived reset")
	}
	// Generation wrap for the set, same hazard as the store buffer.
	s.curGen = ^uint32(0)
	s.add(7)
	s.reset()
	if s.contains(7) || s.curGen != 1 {
		t.Fatalf("addrSet wrap reset broken: contains=%v curGen=%d", s.contains(7), s.curGen)
	}
	s.add(7)
	if !s.contains(7) || s.len() != 1 {
		t.Fatalf("addrSet reuse after wrap broken: len=%d", s.len())
	}
}
