package report

import (
	"strings"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/workloads"
)

// suiteSubset runs a small, fast subset covering all three categories and a
// Table 4 transform.
func suiteSubset(t *testing.T) []*SuiteResult {
	t.Helper()
	names := map[string]bool{"FourierTest": true, "monteCarlo": true, "decJpeg": true}
	results, err := RunSuite(core.DefaultOptions(), func(w *workloads.Workload) bool {
		return names[w.Name]
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("subset size = %d", len(results))
	}
	return results
}

func TestRunSuiteSubset(t *testing.T) {
	results := suiteSubset(t)
	for _, sr := range results {
		if sr.Result == nil || !sr.Result.OutputsMatch {
			t.Fatalf("%s: bad result", sr.Workload.Name)
		}
		if sr.LoopCount <= 0 || sr.MaxDepth <= 0 {
			t.Errorf("%s: loop stats missing", sr.Workload.Name)
		}
	}
	// monteCarlo carries a Table 4 transform.
	for _, sr := range results {
		if sr.Workload.Name == "monteCarlo" && sr.Transformed == nil {
			t.Error("monteCarlo transform result missing")
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	text := Table1(1000, 1100)
	for _, want := range []string{"STL_STARTUP", "23", "41", "STL_RESTART", "10.0% slower"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1 missing %q:\n%s", want, text)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	results := suiteSubset(t)
	text := Table3(results)
	for _, want := range []string{"FourierTest", "monteCarlo", "decJpeg",
		"-- Integer --", "-- Floating point --", "-- Multimedia --", "serial%"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestTable4Rendering(t *testing.T) {
	results := suiteSubset(t)
	text := Table4(results)
	if !strings.Contains(text, "monteCarlo") {
		t.Error("Table4 missing the transformed workload")
	}
	if strings.Contains(text, "FourierTest") {
		t.Error("Table4 must list only transformed workloads")
	}
}

func TestFigureRenderings(t *testing.T) {
	results := suiteSubset(t)
	f8 := Figure8(results)
	if !strings.Contains(f8, "profiling") || !strings.Contains(f8, "actual") {
		t.Error("Figure8 header missing")
	}
	f9 := Figure9(results)
	if !strings.Contains(f9, "total-speedup") && !strings.Contains(f9, "speedup") {
		t.Error("Figure9 header missing")
	}
	f10 := Figure10(results)
	for _, want := range []string{"run-used", "wait-usd", "run-viol"} {
		if !strings.Contains(f10, want) {
			t.Errorf("Figure10 missing %q", want)
		}
	}
	// Figure 10 rows are percentages; each line's values must be sane.
	for _, line := range strings.Split(f10, "\n")[2:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, "-") && strings.Contains(line, "%") {
			// crude sanity: no negative percentages rendered
			if strings.Contains(line, " -") {
				t.Errorf("negative share in %q", line)
			}
		}
	}
}

func TestCategorySummary(t *testing.T) {
	results := suiteSubset(t)
	text := CategorySummary(results)
	for _, want := range []string{"Integer", "Floating point", "Multimedia", "benchmarks"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRunOneHonorsHeapOverride(t *testing.T) {
	w := workloads.ByName("deltaBlue") // sets HeapWords for GC pressure
	sr, err := RunOne(w, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Result.TLS.GCRuns == 0 && sr.Result.Seq.GCRuns == 0 {
		t.Error("deltaBlue's small heap should force collections")
	}
}

func TestAttributionMeasuresUsedFeatures(t *testing.T) {
	// BitOps: the resetable inductor and handler rework must both show a
	// positive contribution; unused features stay at zero.
	att, err := Attribute(workloads.ByName("BitOps"), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if att.Resetable <= 0 {
		t.Errorf("BitOps resetable attribution = %.1f%%, want > 0", att.Resetable)
	}
	if att.Overheads <= 0 {
		t.Errorf("BitOps handler-rework attribution = %.1f%%, want > 0", att.Overheads)
	}
	if att.Multilevel != 0 || att.Sync != 0 || att.VMLock != 0 {
		t.Errorf("unused features attributed: %+v", att)
	}
}

func TestAttributionManualTransform(t *testing.T) {
	att, err := Attribute(workloads.ByName("monteCarlo"), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if att.Manual <= 0 {
		t.Errorf("monteCarlo manual transform attribution = %.1f%%, want > 0", att.Manual)
	}
	if att.Sync <= 0 {
		t.Errorf("monteCarlo sync attribution = %.1f%%, want > 0", att.Sync)
	}
}

func TestTable3OptRendering(t *testing.T) {
	text, err := Table3Opt(core.DefaultOptions(), []string{"BitOps"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BitOps", "reset", "ovhds"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}
