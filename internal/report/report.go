// Package report runs the benchmark suite through the Jrpm pipeline and
// renders the paper's evaluation artifacts: Table 1 (TLS overheads), Table 3
// (benchmark characteristics and STL statistics), Table 4 (manual
// transformations), Figure 8 (profiling slowdown / predicted / actual),
// Figure 9 (total program speedup with overheads) and Figure 10 (speculative
// execution state breakdown).
package report

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jrpm/internal/cfg"
	"jrpm/internal/core"
	"jrpm/internal/diagnose"
	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

// SuiteError labels an aborted suite run as partial: the completed prefix of
// results is attached (in suite order) instead of being discarded, and the
// counts make the abort visible in one line. Unwrap exposes the failure that
// aborted the suite, so errors.Is/As classification still works through it.
type SuiteError struct {
	Partial   []*SuiteResult // workloads that completed before the abort
	Total     int            // workloads selected for the run
	Cancelled int            // workloads cancelled in flight or never started
	Err       error          // the failure (or caller cancellation) that aborted the suite
}

// Error renders the abort with its partial-progress counts.
func (e *SuiteError) Error() string {
	return fmt.Sprintf("report: suite aborted: %v (partial: %d/%d done, %d cancelled)",
		e.Err, len(e.Partial), e.Total, e.Cancelled)
}

// Unwrap exposes the aborting failure.
func (e *SuiteError) Unwrap() error { return e.Err }

// cancellation reports whether err is a cancellation artifact (the run was
// killed by the suite's own fail-fast cancel or the caller's context) rather
// than a genuine workload failure.
func cancellation(err error) bool {
	return errors.Is(err, hydra.ErrCancelled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// suiteOutcome folds per-workload results and errors into the public return
// shape: a clean run returns the full slice; an aborted run returns the
// completed prefix plus a SuiteError. The primary error is the
// lowest-indexed genuine failure — cancellation artifacts of the fail-fast
// propagation are only reported when nothing else failed.
func suiteOutcome(results []*SuiteResult, errs []error, ctx context.Context) ([]*SuiteResult, error) {
	var primary, anyErr error
	done := make([]*SuiteResult, 0, len(results))
	cancelled := 0
	for i, r := range results {
		switch {
		case errs[i] == nil && r != nil:
			done = append(done, r)
		case errs[i] != nil && !cancellation(errs[i]):
			if primary == nil {
				primary = errs[i]
			}
		default:
			cancelled++
			if errs[i] != nil && anyErr == nil {
				anyErr = errs[i]
			}
		}
	}
	if primary == nil && anyErr == nil && cancelled == 0 {
		return done, nil
	}
	if primary == nil {
		primary = anyErr
	}
	if primary == nil && ctx != nil { // caller cancelled before anything failed
		primary = context.Cause(ctx)
	}
	return done, &SuiteError{Partial: done, Total: len(results), Cancelled: cancelled, Err: primary}
}

// SuiteResult bundles one workload's pipeline outcome (plus the transformed
// variant's, when Table 4 defines one).
type SuiteResult struct {
	Workload    *workloads.Workload
	Result      *core.Result
	Transformed *core.Result // nil unless the workload has a Table 4 variant
	LoopCount   int
	MaxDepth    int

	// Metrics is the workload's result snapshotted as a typed registry
	// (every metric labelled workload="<name>", transformed variants
	// additionally variant="transformed"), ready for Prometheus text dump
	// or merging via SuiteMetrics.
	Metrics *obs.Registry
}

// progress serializes per-workload progress lines onto one writer shared by
// all suite workers. A nil *progress is a valid no-op receiver, so the
// silent path stays a nil check.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	total int
}

func newProgress(w io.Writer, total int) *progress {
	if w == nil {
		return nil
	}
	return &progress{w: w, start: time.Now(), total: total}
}

// line emits one "[ k/n] name: phase (elapsed)" record. Elapsed time is
// wall-clock since the suite started — with workers interleaving, per-phase
// deltas would mislead more than they inform.
func (p *progress) line(idx int, name, phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%2d/%d] %s: %s (%.1fs)\n",
		idx+1, p.total, name, phase, time.Since(p.start).Seconds())
}

// RunSuite executes every workload (optionally filtered by name) through the
// full pipeline.
func RunSuite(opts core.Options, filter func(*workloads.Workload) bool) ([]*SuiteResult, error) {
	return RunSuiteContext(context.Background(), opts, filter)
}

// RunSuiteContext is RunSuite bounded by ctx: cancellation aborts the
// in-flight workload on hydra's coarse cycle stride and skips the rest. An
// aborted run returns the completed prefix plus a *SuiteError labelling the
// results as partial.
func RunSuiteContext(ctx context.Context, opts core.Options, filter func(*workloads.Workload) bool) ([]*SuiteResult, error) {
	return runSuiteSeq(ctx, opts, selectWorkloads(filter), nil)
}

func runSuiteSeq(ctx context.Context, opts core.Options, selected []*workloads.Workload, pw *progress) ([]*SuiteResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Ctx = ctx
	results := make([]*SuiteResult, len(selected))
	errs := make([]error, len(selected))
	for i, w := range selected {
		if ctx.Err() != nil {
			pw.line(i, w.Name, "cancelled")
			continue
		}
		results[i], errs[i] = runOne(w, opts, func(phase string) { pw.line(i, w.Name, phase) })
		if errs[i] != nil {
			pw.line(i, w.Name, "failed: "+errs[i].Error())
			break // fail fast: the remaining queue is reported as cancelled
		}
		pw.line(i, w.Name, "done")
	}
	return suiteOutcome(results, errs, ctx)
}

func selectWorkloads(filter func(*workloads.Workload) bool) []*workloads.Workload {
	var selected []*workloads.Workload
	for _, w := range workloads.All() {
		if filter != nil && !filter(w) {
			continue
		}
		selected = append(selected, w)
	}
	return selected
}

// RunSuiteParallel is RunSuite with the workloads fanned out across
// GOMAXPROCS worker goroutines. Each workload's pipeline is an independent
// deterministic simulation, so the fan-out changes wall-clock time only and
// a clean run returns results in the same order RunSuite produces. A failure
// aborts the suite fail-fast: in-flight workloads are cancelled on hydra's
// coarse cycle stride, queued workloads never start, and the completed
// prefix comes back labelled partial via *SuiteError.
func RunSuiteParallel(opts core.Options, filter func(*workloads.Workload) bool) ([]*SuiteResult, error) {
	return RunSuiteParallelProgress(opts, filter, nil)
}

// RunSuiteParallelProgress is RunSuiteParallel with per-workload progress
// lines (name, pipeline phase, elapsed time) written to progressW as each
// worker advances. nil progressW runs silently; writes are serialized, so
// any writer (os.Stderr included) is safe. Progress output does not affect
// results or their order.
func RunSuiteParallelProgress(opts core.Options, filter func(*workloads.Workload) bool, progressW io.Writer) ([]*SuiteResult, error) {
	return RunSuiteParallelContext(context.Background(), opts, filter, progressW)
}

// RunSuiteParallelContext is RunSuiteParallelProgress bounded by ctx:
// caller cancellation — or the first workload failure — cancels every
// in-flight pipeline and skips the unstarted remainder.
func RunSuiteParallelContext(ctx context.Context, opts core.Options, filter func(*workloads.Workload) bool, progressW io.Writer) ([]*SuiteResult, error) {
	selected := selectWorkloads(filter)
	pw := newProgress(progressW, len(selected))
	nw := runtime.GOMAXPROCS(0)
	if nw > len(selected) {
		nw = len(selected)
	}
	if nw <= 1 {
		return runSuiteSeq(ctx, opts, selected, pw)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	opts.Ctx = rctx
	results := make([]*SuiteResult, len(selected))
	errs := make([]error, len(selected))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				w := selected[i]
				if rctx.Err() != nil {
					pw.line(i, w.Name, "cancelled")
					continue
				}
				results[i], errs[i] = runOne(w, opts, func(phase string) { pw.line(i, w.Name, phase) })
				status := "done"
				if errs[i] != nil {
					status = "failed: " + errs[i].Error()
					if !cancellation(errs[i]) {
						// Fail fast: stop burning capacity on a suite that
						// already has its answer.
						cancel(fmt.Errorf("report: %s failed: %w", w.Name, errs[i]))
					}
				}
				pw.line(i, w.Name, status)
			}
		}()
	}
	wg.Wait()
	return suiteOutcome(results, errs, rctx)
}

// RunOne executes a single workload (and its transformed variant).
func RunOne(w *workloads.Workload, opts core.Options) (*SuiteResult, error) {
	return runOne(w, opts, nil)
}

// runOne is RunOne with an optional phase callback for progress reporting.
func runOne(w *workloads.Workload, opts core.Options, phase func(string)) (*SuiteResult, error) {
	note := func(s string) {
		if phase != nil {
			phase(s)
		}
	}
	if w.HeapWords > 0 {
		opts.VM.HeapWords = w.HeapWords
	}
	bp := w.Build()
	info := cfg.AnalyzeProgram(bp)
	note("pipeline")
	res, err := core.Run(bp, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if !res.OutputsMatch {
		return nil, fmt.Errorf("%s: speculative output differs from sequential", w.Name)
	}
	sr := &SuiteResult{Workload: w, Result: res,
		LoopCount: info.TotalLoops(), MaxDepth: info.MaxLoopDepth()}
	sr.Metrics = obs.NewRegistry()
	res.FillMetrics(sr.Metrics, fmt.Sprintf("workload=%q", w.Name))
	if w.BuildTransformed != nil {
		note("transformed")
		tr, err := core.Run(w.BuildTransformed(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s (transformed): %w", w.Name, err)
		}
		if !tr.OutputsMatch {
			return nil, fmt.Errorf("%s (transformed): output mismatch", w.Name)
		}
		sr.Transformed = tr
		tr.FillMetrics(sr.Metrics, fmt.Sprintf("variant=\"transformed\",workload=%q", w.Name))
	}
	return sr, nil
}

// SuiteMetrics folds every suite result into one registry (each workload's
// metrics carry its workload label), ready for a single Prometheus dump.
func SuiteMetrics(results []*SuiteResult) *obs.Registry {
	reg := obs.NewRegistry()
	for _, sr := range results {
		sr.Result.FillMetrics(reg, fmt.Sprintf("workload=%q", sr.Workload.Name))
		if sr.Transformed != nil {
			sr.Transformed.FillMetrics(reg, fmt.Sprintf("variant=\"transformed\",workload=%q", sr.Workload.Name))
		}
	}
	return reg
}

// Table1 renders the TLS overhead table: the configured handler costs (both
// generations) plus the end-to-end effect measured on a reference kernel.
func Table1(newCycles, oldCycles int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 - Thread-level speculation overheads (cycles)\n")
	fmt.Fprintf(&b, "%-14s %5s %5s   %s\n", "TLS operation", "New", "Old", "Work performed")
	rows := []struct {
		name string
		n, o int64
		work string
	}{
		{"STL_STARTUP", tls.NewHandlers.Startup, tls.OldHandlers.Startup,
			"clear store buffers, set handlers, store $fp/$gp, wake slaves, enable TLS"},
		{"STL_SHUTDOWN", tls.NewHandlers.Shutdown, tls.OldHandlers.Shutdown,
			"wait to become head, disable TLS, kill slaves"},
		{"STL_EOI", tls.NewHandlers.EOI, tls.OldHandlers.EOI,
			"wait to become head, commit store buffer, clear tags, start new thread"},
		{"STL_RESTART", tls.NewHandlers.Restart, tls.OldHandlers.Restart,
			"clear store buffers and tags, restore $fp/$gp"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %5d %5d   %s\n", r.name, r.n, r.o, r.work)
	}
	if newCycles > 0 && oldCycles > 0 {
		fmt.Fprintf(&b, "\nEnd-to-end on the reference kernel: new handlers %d cycles, old %d cycles (%.1f%% slower)\n",
			newCycles, oldCycles, 100*(float64(oldCycles)/float64(newCycles)-1))
	}
	return b.String()
}

// Table3 renders the per-benchmark characteristics and TLS statistics.
func Table3(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 - Benchmark characteristics and STL statistics (4 CPUs)\n")
	fmt.Fprintf(&b, "%-14s %-4s %-4s %5s %5s %4s %7s %8s %7s %6s %6s %7s %7s %6s\n",
		"benchmark", "anlz", "data", "loops", "depth", "sel", "it/STL", "thrdT", "serial%", "ldbuf", "stbuf", "predspd", "actspd", "viol")
	cat := workloads.Category(-1)
	for _, sr := range results {
		if sr.Workload.Category != cat {
			cat = sr.Workload.Category
			fmt.Fprintf(&b, "-- %s --\n", cat)
		}
		r := sr.Result
		selected, itersPerSTL, thrd := selectionStats(r)
		fmt.Fprintf(&b, "%-14s %-4s %-4s %5d %5d %4d %7.0f %8.0f %6.0f%% %6.1f %6.1f %7.2f %7.2f %6d\n",
			sr.Workload.Name,
			yn(sr.Workload.Paper.Analyzable), yn(sr.Workload.Paper.DataSetDep),
			sr.LoopCount, sr.MaxDepth, selected, itersPerSTL, thrd,
			100*r.SerialFraction(), r.TLS.AvgLoadBuf, r.TLS.AvgStoreBuf,
			r.SpeedupPredicted(), r.SpeedupActual(), r.TLS.Violations)
	}
	return b.String()
}

func yn(v bool) string {
	if v {
		return "Y"
	}
	return "N"
}

// selectionStats summarizes the analyzer's selected STLs for one run.
func selectionStats(r *core.Result) (selected int, itersPerEntry, threadSize float64) {
	var totIters, totEntries, totCycles int64
	for _, d := range r.Analysis.Decisions {
		if !d.Selected || d.Stats == nil {
			continue
		}
		selected++
		totIters += d.Stats.Iterations
		totEntries += d.Stats.Entries
		totCycles += d.Stats.TotalCycles
	}
	if totEntries > 0 {
		itersPerEntry = float64(totIters) / float64(totEntries)
	}
	if totIters > 0 {
		threadSize = float64(totCycles) / float64(totIters)
	}
	return
}

// Table4 renders the manual transformation table with measured effects.
func Table4(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 - Manual transformations for speculative performance\n")
	fmt.Fprintf(&b, "%-14s %-5s %-5s %5s %8s %8s   %s\n",
		"benchmark", "diff", "auto", "lines", "base", "transf", "modification")
	for _, sr := range results {
		if sr.Transformed == nil {
			continue
		}
		t := sr.Workload.Transformed
		fmt.Fprintf(&b, "%-14s %-5s %-5s %5d %7.2fx %7.2fx   %s\n",
			sr.Workload.Name, t.Difficulty, yn(t.CompilerAuto), t.Lines,
			sr.Result.SpeedupActual(), sr.Transformed.SpeedupActual(), t.Note)
	}
	return b.String()
}

// Figure8 renders normalized execution times: profiling run, TEST-predicted
// TLS, and actual TLS, each relative to the sequential baseline (the paper's
// Figure 8 bars; lower is better).
func Figure8(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 - Normalized execution time (sequential = 1.00)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "benchmark", "profiling", "predicted", "actual")
	for _, sr := range results {
		r := sr.Result
		prof := float64(r.Profile.Cycles) / float64(r.Seq.Cycles)
		pred := float64(r.PredictedCycles) / float64(r.Seq.Cycles)
		act := float64(r.TLS.Cycles) / float64(r.Seq.Cycles)
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f\n", sr.Workload.Name, prof, pred, act)
	}
	return b.String()
}

// Figure9 renders total program speedup including compilation, garbage
// collection, profiling and recompilation overheads.
func Figure9(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 - Total program speedup with overheads\n")
	fmt.Fprintf(&b, "%-14s %8s %8s | %-38s\n", "benchmark", "speedup", "app-only",
		"overhead shares of total TLS time")
	fmt.Fprintf(&b, "%-14s %8s %8s | %8s %8s %8s %8s\n", "", "", "",
		"gc", "compile", "profile", "recomp")
	for _, sr := range results {
		r := sr.Result
		total := r.TLS.Cycles + r.CompileCycles + r.RecompileCycles + r.ProfilingOverheadCycles()
		share := func(v int64) float64 { return 100 * float64(v) / float64(total) }
		fmt.Fprintf(&b, "%-14s %7.2fx %7.2fx | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			sr.Workload.Name, r.TotalSpeedup(), r.SpeedupActual(),
			share(r.TLS.GCCycles), share(r.CompileCycles),
			share(r.ProfilingOverheadCycles()), share(r.RecompileCycles))
	}
	return b.String()
}

// Figure10 renders the speculative execution state breakdown. The
// speculative buckets accumulate per-CPU cycles; shares are normalized to
// the bucket total so the bars sum to 100% as in the paper.
func Figure10(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 - Breakdown of speculative execution by state (%%)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "serial", "run-used", "wait-usd", "overhead", "run-viol", "wait-viol")
	for _, sr := range results {
		st := sr.Result.TLS.Stats
		// Serial cycles are machine time on one CPU; scale to CPU-time so
		// the shares compare against the per-CPU speculative buckets.
		serial := st.Serial * 4
		total := serial + st.RunUsed + st.WaitUsed + st.Overhead + st.RunViolated + st.WaitViolated
		if total == 0 {
			total = 1
		}
		pc := func(v int64) float64 { return 100 * float64(v) / float64(total) }
		fmt.Fprintf(&b, "%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			sr.Workload.Name, pc(serial), pc(st.RunUsed), pc(st.WaitUsed),
			pc(st.Overhead), pc(st.RunViolated), pc(st.WaitViolated))
	}
	return b.String()
}

// CategorySummary prints the headline result: speedup ranges per category,
// comparable to the paper's abstract ("3 to 4 on floating point
// applications, 2 to 3 on multimedia applications, and between 1.5 and 2.5
// on integer applications").
func CategorySummary(results []*SuiteResult) string {
	type agg struct {
		min, max, sum float64
		n             int
	}
	byCat := map[workloads.Category]*agg{}
	for _, sr := range results {
		sp := sr.Result.SpeedupActual()
		if sr.Transformed != nil && sr.Transformed.SpeedupActual() > sp {
			sp = sr.Transformed.SpeedupActual() // Table 3 includes manual transforms
		}
		a := byCat[sr.Workload.Category]
		if a == nil {
			a = &agg{min: sp, max: sp}
			byCat[sr.Workload.Category] = a
		}
		if sp < a.min {
			a.min = sp
		}
		if sp > a.max {
			a.max = sp
		}
		a.sum += sp
		a.n++
	}
	var cats []workloads.Category
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "Speedup by category (best of base/transformed, 4 CPUs):\n")
	for _, c := range cats {
		a := byCat[c]
		fmt.Fprintf(&b, "  %-15s %d benchmarks: %.2fx .. %.2fx (mean %.2fx)\n",
			c.String(), a.n, a.min, a.max, a.sum/float64(a.n))
	}
	return b.String()
}

// DoctorSummary renders the speculation doctor's suite digest: per workload,
// whether the cycle ledger conserved exactly, the committed-work share of
// all STL cycles, and the verdict of the hottest loop. Results from runs
// without core.Options.Diagnose are skipped (no ledger to diagnose); when
// none carried a ledger the section says so instead of vanishing silently.
func DoctorSummary(results []*SuiteResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Speculation doctor - cycle-conservation ledger digest\n")
	fmt.Fprintf(&b, "%-14s %9s %7s %6s  %s\n",
		"benchmark", "conserve", "useful", "loops", "hottest loop verdict")
	diagnosed := 0
	for _, sr := range results {
		rep, err := diagnose.Build(sr.Result)
		if err != nil {
			continue
		}
		diagnosed++
		cons := "exact"
		if !rep.Conserved {
			cons = "BROKEN"
		}
		var useful, total int64
		hot := -1
		for i := range rep.Loops {
			useful += rep.Loops[i].Buckets.RunUsed
			total += rep.Loops[i].Cycles
			if hot < 0 || rep.Loops[i].Cycles > rep.Loops[hot].Cycles {
				hot = i
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(useful) / float64(total)
		}
		verdict := "(no speculative loops)"
		if hot >= 0 {
			verdict = fmt.Sprintf("loop %d: %s", rep.Loops[hot].LoopID, rep.Loops[hot].Verdict)
		}
		fmt.Fprintf(&b, "%-14s %9s %6.1f%% %6d  %s\n",
			sr.Workload.Name, cons, pct, len(rep.Loops), verdict)
	}
	if diagnosed == 0 {
		return "Speculation doctor: no diagnosed results (run the suite with Options.Diagnose / -doctor)\n"
	}
	return b.String()
}
