package report

import (
	"context"
	"errors"
	"strings"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/workloads"
)

func pick(names ...string) func(*workloads.Workload) bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(w *workloads.Workload) bool { return set[w.Name] }
}

// TestSuiteCallerCancellation: a context cancelled before the suite starts
// yields zero results and a SuiteError whose cause is the caller's
// cancellation, with every workload accounted as cancelled.
func TestSuiteCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	filter := pick("BitOps", "monteCarlo", "db")
	for _, runner := range []struct {
		name string
		run  func() ([]*SuiteResult, error)
	}{
		{"seq", func() ([]*SuiteResult, error) { return RunSuiteContext(ctx, core.DefaultOptions(), filter) }},
		{"parallel", func() ([]*SuiteResult, error) {
			return RunSuiteParallelContext(ctx, core.DefaultOptions(), filter, nil)
		}},
	} {
		t.Run(runner.name, func(t *testing.T) {
			results, err := runner.run()
			if len(results) != 0 {
				t.Fatalf("got %d results from a cancelled suite", len(results))
			}
			var se *SuiteError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *SuiteError", err)
			}
			if se.Total != 3 || se.Cancelled != 3 || len(se.Partial) != 0 {
				t.Fatalf("SuiteError = total %d, cancelled %d, partial %d; want 3/3/0",
					se.Total, se.Cancelled, len(se.Partial))
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, must wrap context.Canceled", err)
			}
		})
	}
}

// TestSuiteFailFastPropagation: the first genuine workload failure aborts
// the suite; the error is the failure (not a cancellation artifact) and the
// rest of the queue is labelled cancelled, not silently dropped.
func TestSuiteFailFastPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	opts := core.DefaultOptions()
	opts.MaxCycles = 5_000 // every workload blows the budget almost at once
	filter := pick("BitOps", "monteCarlo", "db", "jess")
	results, err := RunSuiteParallelContext(context.Background(), opts, filter, nil)
	if err == nil {
		t.Fatal("suite with an impossible cycle budget must fail")
	}
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SuiteError", err)
	}
	if se.Total != 4 {
		t.Fatalf("total = %d, want 4", se.Total)
	}
	if len(results) != len(se.Partial) {
		t.Fatalf("returned %d results but SuiteError labels %d partial", len(results), len(se.Partial))
	}
	// The primary cause must be the genuine budget failure, never the
	// fail-fast cancellation that it triggered in sibling workers.
	if !errors.Is(err, hydra.ErrCycleBudgetExceeded) {
		t.Fatalf("err = %v, want the cycle-budget failure as the cause", err)
	}
	if errors.Is(se.Err, context.Canceled) && !errors.Is(se.Err, hydra.ErrCycleBudgetExceeded) {
		t.Fatalf("primary error is a cancellation artifact: %v", se.Err)
	}
	if msg := err.Error(); !strings.Contains(msg, "partial") {
		t.Fatalf("error does not label results partial: %q", msg)
	}
}

// TestSuiteSeqFailFastSkipsRemainder: the sequential runner stops at the
// first failure and accounts for the unstarted remainder.
func TestSuiteSeqFailFastSkipsRemainder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	opts := core.DefaultOptions()
	opts.MaxCycles = 5_000
	results, err := RunSuiteContext(context.Background(), opts, pick("BitOps", "monteCarlo", "db"))
	if err == nil {
		t.Fatal("suite must fail")
	}
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SuiteError", err)
	}
	if len(results) != 0 || se.Cancelled != 2 {
		t.Fatalf("results %d, cancelled %d; want 0 results and 2 cancelled after the first failure",
			len(results), se.Cancelled)
	}
	if !errors.Is(err, hydra.ErrCycleBudgetExceeded) {
		t.Fatalf("err = %v, want the budget failure", err)
	}
}
