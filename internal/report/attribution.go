package report

import (
	"fmt"
	"strings"

	"jrpm/internal/analyzer"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/workloads"
)

// Attribution holds the per-benchmark speedup contributed by each
// optimization and VM modification — the right half of the paper's Table 3
// (columns m–u). Each entry is the percentage improvement of the full
// system over the system with that one feature disabled:
// (T_without − T_with) / T_with.
type Attribution struct {
	Workload string
	// Percentages; NaN-free: 0 when the feature is unused or inapplicable.
	Overheads  float64 // new vs old handlers (Table 1 rework)
	Hoisting   float64
	Multilevel float64
	Reduction  float64
	Sync       float64
	Resetable  float64
	VMAlloc    float64 // per-CPU speculative free lists (§5.2)
	VMLock     float64 // speculation-aware object locks (§5.3)
	Manual     float64 // Table 4 transformation
}

// Attribute measures the attribution table for one workload. Only features
// the baseline run actually used are measured (the paper's blank cells);
// each measurement is a full pipeline pair, so this is the most expensive
// report.
func Attribute(w *workloads.Workload, opts core.Options) (*Attribution, error) {
	if w.HeapWords > 0 {
		opts.VM.HeapWords = w.HeapWords
	}
	base, err := core.Run(w.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	att := &Attribution{Workload: w.Name}

	used := struct {
		hoist, multi, red, sync, reset, alloc, lock bool
	}{}
	for _, d := range base.Analysis.Decisions {
		if !d.Selected {
			continue
		}
		used.hoist = used.hoist || d.Hoisted
		used.multi = used.multi || d.Multilevel
		used.red = used.red || d.Reductions > 0
		used.sync = used.sync || d.SyncLocks > 0
		used.reset = used.reset || d.Resetable > 0
	}
	used.alloc = base.TLS.GCRuns > 0 || hasAllocInSelected(base)
	used.lock = hasMonitors(w)

	gain := func(mod func(*core.Options)) (float64, error) {
		o := opts
		mod(&o)
		res, err := core.Run(w.Build(), o)
		if err != nil {
			return 0, err
		}
		if !res.OutputsMatch {
			return 0, fmt.Errorf("%s: output mismatch in attribution run", w.Name)
		}
		return 100 * (float64(res.TLS.Cycles) - float64(base.TLS.Cycles)) /
			float64(base.TLS.Cycles), nil
	}
	analyzerMod := func(mod func(*analyzer.Config)) func(*core.Options) {
		return func(o *core.Options) {
			a := analyzer.DefaultConfig()
			a.NCPU = o.NCPU
			a.Handlers = o.Handlers
			a.ParallelAlloc = o.VM.ParallelAlloc
			a.ElideLocks = o.VM.ElideLocks
			mod(&a)
			o.Analyzer = &a
		}
	}

	// Handler rework applies to everything with a selected STL.
	if att.Overheads, err = gain(func(o *core.Options) { o.Handlers = tls.OldHandlers }); err != nil {
		return nil, err
	}
	if used.hoist {
		if att.Hoisting, err = gain(analyzerMod(func(a *analyzer.Config) { a.NoHoisting = true })); err != nil {
			return nil, err
		}
	}
	if used.multi {
		if att.Multilevel, err = gain(analyzerMod(func(a *analyzer.Config) { a.NoMultilevel = true })); err != nil {
			return nil, err
		}
	}
	if used.red {
		if att.Reduction, err = gain(analyzerMod(func(a *analyzer.Config) { a.NoReductions = true })); err != nil {
			return nil, err
		}
	}
	if used.sync {
		if att.Sync, err = gain(analyzerMod(func(a *analyzer.Config) { a.NoSyncLocks = true })); err != nil {
			return nil, err
		}
	}
	if used.reset {
		if att.Resetable, err = gain(analyzerMod(func(a *analyzer.Config) { a.NoResetable = true })); err != nil {
			return nil, err
		}
	}
	if used.alloc {
		if att.VMAlloc, err = gain(func(o *core.Options) { o.VM.ParallelAlloc = false }); err != nil {
			return nil, err
		}
	}
	if used.lock {
		if att.VMLock, err = gain(func(o *core.Options) { o.VM.ElideLocks = false }); err != nil {
			return nil, err
		}
	}
	if w.BuildTransformed != nil {
		tr, err := core.Run(w.BuildTransformed(), opts)
		if err != nil {
			return nil, err
		}
		// Manual gain compares end-to-end speedups (the programs differ, so
		// cycle counts are not directly comparable).
		att.Manual = 100 * (tr.SpeedupActual() - base.SpeedupActual()) / base.SpeedupActual()
	}
	return att, nil
}

// hasAllocInSelected reports whether any selected loop allocates.
func hasAllocInSelected(res *core.Result) bool {
	// Allocation inside selected STLs shows up as speculative allocator
	// traffic; approximating via the profile is enough for "applicable".
	for _, d := range res.Analysis.Decisions {
		if d.Selected && d.Stats != nil && d.Stats.Deps != nil {
			// allocator dependencies were tagged during profiling
			for k := range d.Stats.Deps {
				if k == tracer.AllocDepKey {
					return true
				}
			}
		}
	}
	return false
}

// hasMonitors reports whether the workload's bytecode uses monitors.
func hasMonitors(w *workloads.Workload) bool {
	bp := w.Build()
	for _, m := range bp.Methods {
		for _, in := range m.Code {
			if in.Op == bytecode.MONITORENTER {
				return true
			}
		}
	}
	return false
}

// Table3Opt renders the optimization-attribution columns for a set of
// workloads (the paper's Table 3 columns m–u).
func Table3Opt(opts core.Options, names []string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 (right half) - Speedups from TLS optimizations (%% improvement of full system)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "ovhds", "hoist", "multi", "reduct", "sync", "reset", "vmalloc", "vmlock", "manual")
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			return "", fmt.Errorf("unknown workload %q", name)
		}
		att, err := Attribute(w, opts)
		if err != nil {
			return "", err
		}
		cell := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", v)
		}
		fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
			att.Workload, cell(att.Overheads), cell(att.Hoisting), cell(att.Multilevel),
			cell(att.Reduction), cell(att.Sync), cell(att.Resetable),
			cell(att.VMAlloc), cell(att.VMLock), cell(att.Manual))
	}
	return b.String(), nil
}
