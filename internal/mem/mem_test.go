package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(1024)
	m.Write(10, 42)
	m.Write(1023, -7)
	if m.Read(10) != 42 || m.Read(1023) != -7 || m.Read(0) != 0 {
		t.Fatal("read/write mismatch")
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range read")
		}
	}()
	NewMemory(8).Read(8)
}

func TestLine(t *testing.T) {
	if Line(0) != 0 || Line(3) != 0 || Line(4) != 1 || Line(7) != 1 || Line(8) != 2 {
		t.Fatal("line computation wrong for 4-word lines")
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	cs := NewCacheSim(DefaultCacheConfig(4))
	if lat := cs.Load(0, 100); lat != LatMem {
		t.Fatalf("cold load latency = %d, want %d", lat, LatMem)
	}
	if lat := cs.Load(0, 101); lat != LatL1 {
		t.Fatalf("same-line load latency = %d, want %d (L1 hit)", lat, LatL1)
	}
	// A different CPU misses its own L1 but hits the shared L2.
	if lat := cs.Load(1, 100); lat != LatL2 {
		t.Fatalf("cross-CPU load latency = %d, want %d (L2 hit)", lat, LatL2)
	}
}

func TestCacheStoreWriteThrough(t *testing.T) {
	cs := NewCacheSim(DefaultCacheConfig(2))
	if lat := cs.Store(0, 200); lat != LatL1 {
		t.Fatalf("store latency = %d, want %d", lat, LatL1)
	}
	// Store allocated the line in L2, so the other CPU's load is an L2 hit.
	if lat := cs.Load(1, 200); lat != LatL2 {
		t.Fatalf("load after remote store = %d, want %d", lat, LatL2)
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := DefaultCacheConfig(1)
	cfg.L1Lines = 8
	cfg.L1Assoc = 2 // 4 sets
	cs := NewCacheSim(cfg)
	// Fill one set (set 0 holds lines 0, 4, 8, ... in a 4-set cache) beyond
	// its associativity. Use line numbers: addresses line*LineWords.
	a := func(line Addr) Addr { return line * LineWords }
	cs.Load(0, a(4))
	cs.Load(0, a(8))
	cs.Load(0, a(12)) // evicts line 4 (LRU)
	if lat := cs.Load(0, a(8)); lat != LatL1 {
		t.Fatalf("line 8 should still hit L1, got %d", lat)
	}
	if lat := cs.Load(0, a(4)); lat != LatL2 {
		t.Fatalf("evicted line should hit L2, got %d", lat)
	}
}

func TestInvalidateL1(t *testing.T) {
	cs := NewCacheSim(DefaultCacheConfig(2))
	cs.Load(0, 300)
	cs.InvalidateL1(0, 300)
	if lat := cs.Load(0, 300); lat != LatL2 {
		t.Fatalf("after invalidate, load should hit L2, got %d", lat)
	}
}

func TestCacheStatsAccumulate(t *testing.T) {
	cs := NewCacheSim(DefaultCacheConfig(1))
	cs.Load(0, 0x40)
	cs.Load(0, 0x40)
	if cs.L1Hits != 1 || cs.L1Misses != 1 || cs.L2Misses != 1 {
		t.Fatalf("stats = hits %d misses %d l2miss %d", cs.L1Hits, cs.L1Misses, cs.L2Misses)
	}
}

// Property: memory behaves as an array — the last write to an address wins
// and does not disturb neighbours.
func TestMemoryPropertyLastWriteWins(t *testing.T) {
	m := NewMemory(4096)
	f := func(addr uint16, v1, v2 int64) bool {
		a := Addr(addr) % 4095
		m.Write(a, v1)
		m.Write(a+1, v2)
		m.Write(a, v2)
		return m.Read(a) == v2 && m.Read(a+1) == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a load immediately following a load of the same address always
// hits L1 (no spontaneous eviction).
func TestCachePropertyRepeatHit(t *testing.T) {
	cs := NewCacheSim(DefaultCacheConfig(4))
	f := func(addr uint32, cpu uint8) bool {
		c := int(cpu) % 4
		a := Addr(addr % (1 << 20))
		cs.Load(c, a)
		return cs.Load(c, a) == LatL1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
