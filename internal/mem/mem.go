// Package mem provides the simulated flat memory of the Hydra CMP and the
// cache hierarchy latency model.
//
// Memory is word addressed; one word is 8 bytes and one cache line is
// LineWords = 4 words = 32 bytes, matching the paper's 32-byte lines. All
// architectural data — the VM heap, runtime stacks, static fields, free
// lists and object lock words — lives in this address space, so every
// dependency the paper discusses is visible to the TLS hardware and to the
// TEST profiler as real memory traffic.
//
// The cache model tracks tags only (data always lives in the flat array; L1s
// are write-through) and exists to charge the latencies of the paper's
// Figure 2: L1 hit 1 cycle, L2 hit 5 cycles, inter-processor transfer 10
// cycles, main memory 50 cycles.
package mem

import (
	"errors"
	"fmt"
)

// Addr is a word address.
type Addr uint32

// ErrOutOfRange is the sentinel all out-of-range access faults unwrap to.
var ErrOutOfRange = errors.New("mem: address out of range")

// Fault is the typed error raised by an out-of-range memory access. The
// machine layer wraps it with cpu/cycle context before surfacing it through
// Machine.Run.
type Fault struct {
	Addr  Addr
	Size  int
	Write bool
}

// Error renders the fault.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s at %d beyond memory of %d words", op, f.Addr, f.Size)
}

// Unwrap makes errors.Is(f, ErrOutOfRange) true.
func (f *Fault) Unwrap() error { return ErrOutOfRange }

// Geometry and latency constants (paper Figure 2).
const (
	WordBytes = 8
	LineWords = 4 // 32-byte lines

	LatL1        = 1  // L1 hit
	LatL2        = 5  // L2 hit
	LatInterproc = 10 // read from another CPU's speculative store buffer
	LatMem       = 50 // main memory
)

// Line returns the cache line index containing a.
func Line(a Addr) Addr { return a / LineWords }

// Memory is the flat simulated memory. It tracks dirty watermarks on either
// side of a split point (the low region fills bottom-up — globals and heap —
// while the high region is the runtime stack filling top-down), so a pooled
// memory can be re-zeroed by clearing only the touched ranges instead of the
// whole multi-megabyte array.
type Memory struct {
	words []int64
	split Addr // boundary between the low and high dirty regions
	loMax Addr // exclusive top of the dirty low region
	hiMin Addr // inclusive bottom of the dirty high region

	// staleLo marks the bottom of a region released without re-zeroing
	// (see ReleaseKeepStale): words in [staleLo, loMax) may hold data from
	// a previous owner. Addr(len(words)) — the usual case — means none.
	staleLo Addr
}

// NewMemory returns a memory of size words.
func NewMemory(size int) *Memory {
	return &Memory{words: make([]int64, size), split: Addr(size), hiMin: Addr(size), staleLo: Addr(size)}
}

// memFree recycles simulated memories between machine instances; a zeroed
// 33 MB array is the single largest allocation-and-memclr cost of a pipeline
// run, and the dirty watermarks make re-zeroing proportional to actual use.
// A bounded channel rather than a sync.Pool: the garbage collector empties a
// sync.Pool at every cycle, and with multi-megabyte arrays the refill cost
// (a fresh zeroed allocation per machine) dominated pipeline profiles.
var memFree = make(chan *Memory, 4)

// NewPooledMemory returns a zeroed memory of size words, reusing a released
// one when the geometry matches. split is the low/high dirty-region boundary
// (typically the base of the stack region).
func NewPooledMemory(size int, split Addr) *Memory {
	if m := reclaim(size, split); m != nil {
		// A lazily released memory may carry a stale span; this entry
		// point guarantees all-zero contents.
		if m.staleLo < m.loMax {
			clear(m.words[m.staleLo:m.loMax])
		}
		m.loMax = 0
		m.staleLo = Addr(size)
		return m
	}
	m := NewMemory(size)
	m.split = split
	return m
}

// NewPooledMemoryStale is NewPooledMemory for an owner that re-initializes
// every word of [staleLo, split) before reading it (a VM whose allocator
// zeroes each block it hands out). Words in that window may hold data from a
// previous owner; everything outside it is zero.
func NewPooledMemoryStale(size int, split, staleLo Addr) *Memory {
	if m := reclaim(size, split); m != nil {
		if m.staleLo < staleLo {
			// The previous owner's stale span starts below what this
			// owner tolerates: scrub the difference.
			top := m.loMax
			if staleLo < top {
				top = staleLo
			}
			clear(m.words[m.staleLo:top])
		}
		m.staleLo = staleLo
		return m
	}
	m := NewMemory(size)
	m.split = split
	m.staleLo = staleLo
	return m
}

// reclaim pops a recycled memory with matching geometry, or returns nil.
func reclaim(size int, split Addr) *Memory {
	select {
	case m := <-memFree:
		if len(m.words) == size && m.split == split {
			return m
		}
		// Geometry mismatch (custom-size test memories): drop it and let
		// the collector take it.
	default:
	}
	return nil
}

// Release re-zeroes the dirty ranges and returns the memory to the free
// list. The caller must not touch it afterwards.
func (m *Memory) Release() {
	m.ReleaseKeepStale(Addr(len(m.words)))
}

// ReleaseKeepStale is Release except that dirty words at or above keep in
// the low region are returned to the free list as-is, not re-zeroed. The
// skipped span is recorded so a later strict NewPooledMemory can scrub it;
// NewPooledMemoryStale hands it out untouched. A VM whose allocator zeroes
// every block before use never reads a heap word it did not initialize, so
// skipping the heap span turns the release-time memclr bill — megawords per
// pipeline leg — into the few kilowords of globals and stack that actually
// need it.
func (m *Memory) ReleaseKeepStale(keep Addr) {
	// The possibly-nonzero low span is [0, loMax): loMax bounds this
	// owner's writes, and any stale span inherited at acquisition sits
	// below it too.
	lo := m.loMax
	if keep < lo {
		lo = keep
	}
	clear(m.words[:lo])
	clear(m.words[m.hiMin:])
	m.hiMin = Addr(len(m.words))
	if keep >= m.loMax {
		m.loMax = 0
		m.staleLo = Addr(len(m.words))
	} else {
		// loMax keeps bounding the possibly-nonzero span for the next
		// owner; only [keep, loMax) survives unzeroed.
		m.staleLo = keep
	}
	select {
	case memFree <- m:
	default: // free list full; let the collector take it
	}
}

// Size returns the memory size in words.
func (m *Memory) Size() int { return len(m.words) }

// InRange reports whether a is a valid word address. Callers on paths that
// must stay panic-free (the simulator core) check before accessing.
func (m *Memory) InRange(a Addr) bool { return int(a) < len(m.words) }

// Read returns the word at a. An out-of-range address panics with a typed
// *Fault; the machine layer bounds-checks first and treats any residual
// fault as a simulator bug surfaced through its recover backstop.
func (m *Memory) Read(a Addr) int64 {
	if int(a) >= len(m.words) {
		panic(&Fault{Addr: a, Size: len(m.words)})
	}
	return m.words[a]
}

// Write stores v at a. Out-of-range panics with a typed *Fault, as Read.
func (m *Memory) Write(a Addr, v int64) {
	if int(a) >= len(m.words) {
		panic(&Fault{Addr: a, Size: len(m.words), Write: true})
	}
	m.words[a] = v
	if a < m.split {
		if a >= m.loMax {
			m.loMax = a + 1
		}
	} else if a < m.hiMin {
		m.hiMin = a
	}
}

// CacheConfig describes the cache hierarchy geometry.
type CacheConfig struct {
	NCPU     int
	L1Lines  int // lines per CPU L1 (paper: 512 = 16 kB)
	L1Assoc  int // paper: 4-way
	L2Lines  int // shared L2 lines (paper: 65536 = 2 MB)
	L2Assoc  int
	LatL1    int64
	LatL2    int64
	LatMem   int64
	LatInter int64
}

// DefaultCacheConfig returns the paper's Hydra configuration for ncpu CPUs.
func DefaultCacheConfig(ncpu int) CacheConfig {
	return CacheConfig{
		NCPU:     ncpu,
		L1Lines:  512,
		L1Assoc:  4,
		L2Lines:  65536,
		L2Assoc:  8,
		LatL1:    LatL1,
		LatL2:    LatL2,
		LatMem:   LatMem,
		LatInter: LatInterproc,
	}
}

// setAssoc is a set-associative tag array with LRU replacement.
type setAssoc struct {
	sets  int
	mask  int // sets-1 when sets is a power of two, else -1 (modulo fallback)
	assoc int
	tags  []Addr   // sets*assoc entries; 0 means empty (line 0 is never cached: it is the null page)
	lru   []uint32 // per-entry last-use stamp
	clock uint32
}

func newSetAssoc(lines, assoc int) *setAssoc {
	sets := lines / assoc
	if sets == 0 {
		sets = 1
	}
	mask := -1
	if sets&(sets-1) == 0 {
		mask = sets - 1
	}
	return &setAssoc{
		sets:  sets,
		mask:  mask,
		assoc: assoc,
		tags:  make([]Addr, sets*assoc),
		lru:   make([]uint32, sets*assoc),
	}
}

// setOf maps a line to its set: a mask when the geometry allows (the paper's
// caches are power-of-two), an integer modulo otherwise.
func (s *setAssoc) setOf(line Addr) int {
	if s.mask >= 0 {
		return int(line) & s.mask
	}
	return int(line) % s.sets
}

// access looks line up, touching LRU state. If fill is true a miss allocates
// the line (evicting LRU). It reports whether the access hit.
func (s *setAssoc) access(line Addr, fill bool) bool {
	s.clock++
	set := s.setOf(line)
	base := set * s.assoc
	victim := base
	for i := 0; i < s.assoc; i++ {
		e := base + i
		if s.tags[e] == line {
			s.lru[e] = s.clock
			return true
		}
		if s.lru[e] < s.lru[victim] {
			victim = e
		}
	}
	if fill {
		s.tags[victim] = line
		s.lru[victim] = s.clock
	}
	return false
}

// contains reports whether line is present without touching LRU state.
func (s *setAssoc) contains(line Addr) bool {
	set := s.setOf(line)
	base := set * s.assoc
	for i := 0; i < s.assoc; i++ {
		if s.tags[base+i] == line {
			return true
		}
	}
	return false
}

// invalidate removes line if present.
func (s *setAssoc) invalidate(line Addr) {
	set := s.setOf(line)
	base := set * s.assoc
	for i := 0; i < s.assoc; i++ {
		if s.tags[base+i] == line {
			s.tags[base+i] = 0
			s.lru[base+i] = 0
		}
	}
}

// CacheSim models per-CPU L1 data caches over a shared L2 and charges access
// latencies. It tracks tags only; correctness data lives in Memory.
type CacheSim struct {
	cfg CacheConfig
	l1  []*setAssoc
	l2  *setAssoc

	// Statistics.
	L1Hits, L1Misses, L2Hits, L2Misses int64
}

// NewCacheSim builds the cache hierarchy for cfg.
func NewCacheSim(cfg CacheConfig) *CacheSim {
	cs := &CacheSim{cfg: cfg, l2: newSetAssoc(cfg.L2Lines, cfg.L2Assoc)}
	for i := 0; i < cfg.NCPU; i++ {
		cs.l1 = append(cs.l1, newSetAssoc(cfg.L1Lines, cfg.L1Assoc))
	}
	return cs
}

// Config returns the geometry the simulator was built with.
func (cs *CacheSim) Config() CacheConfig { return cs.cfg }

// Load charges the latency of a load by cpu from address a and updates tag
// state (L1 and L2 fills on miss).
func (cs *CacheSim) Load(cpu int, a Addr) int64 {
	line := Line(a)
	if cs.l1[cpu].access(line, true) {
		cs.L1Hits++
		return cs.cfg.LatL1
	}
	cs.L1Misses++
	if cs.l2.access(line, true) {
		cs.L2Hits++
		return cs.cfg.LatL2
	}
	cs.L2Misses++
	return cs.cfg.LatMem
}

// Store charges the latency of a store by cpu to address a. The L1s are
// write-through with a write buffer, so a store retires in one cycle; the
// write allocates in the L2 and updates (does not invalidate) other L1s that
// hold the line, as Hydra's write-through bus does. Here "updates" is a
// no-op because data lives in flat memory; we only keep tag state coherent.
func (cs *CacheSim) Store(cpu int, a Addr) int64 {
	line := Line(a)
	cs.l1[cpu].access(line, true)
	cs.l2.access(line, true)
	return cs.cfg.LatL1
}

// InterprocLatency returns the cost of reading a value out of another CPU's
// speculative store buffer across the read bus.
func (cs *CacheSim) InterprocLatency() int64 { return cs.cfg.LatInter }

// InvalidateL1 removes a line from one CPU's L1 (used when speculative state
// is discarded on a violation: the speculatively-read lines are flash
// cleared).
func (cs *CacheSim) InvalidateL1(cpu int, a Addr) {
	cs.l1[cpu].invalidate(Line(a))
}
