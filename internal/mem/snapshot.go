package mem

import "fmt"

// State is a deterministic capture of a Memory's observable contents: the
// dirty-watermark spans on either side of the split, copied verbatim. Words
// outside the spans are zero in any freshly pooled memory, and words inside
// the low span that were never written by the owner are — by the HeapZeroer
// discipline — never read, so restoring the spans reproduces every read the
// resumed run can perform.
type State struct {
	Size  int
	Split Addr
	LoMax Addr
	HiMin Addr
	Low   []int64 // words[0:LoMax]
	High  []int64 // words[HiMin:Size]
}

// CaptureState copies the dirty spans into a State. The copy is private to
// the caller; later writes to the memory do not affect it.
func (m *Memory) CaptureState() State {
	st := State{
		Size:  len(m.words),
		Split: m.split,
		LoMax: m.loMax,
		HiMin: m.hiMin,
	}
	st.Low = append([]int64(nil), m.words[:m.loMax]...)
	st.High = append([]int64(nil), m.words[m.hiMin:]...)
	return st
}

// RestoreState writes a captured State back into the memory. The target
// must have the same geometry (size and split) and should be freshly
// acquired: only zero or stale-but-unreadable words may sit outside its
// watermarks. The low watermark is widened, never narrowed, so any stale
// span inherited from the pool stays bounded for release-time scrubbing.
func (m *Memory) RestoreState(st State) error {
	if st.Size != len(m.words) || st.Split != m.split {
		return fmt.Errorf("mem: restore geometry mismatch: snapshot %d/%d words split %d/%d",
			st.Size, len(m.words), st.Split, m.split)
	}
	if int(st.LoMax) != len(st.Low) || st.Size-int(st.HiMin) != len(st.High) {
		return fmt.Errorf("mem: restore span lengths inconsistent with watermarks")
	}
	if st.LoMax > st.Split || st.HiMin < st.Split {
		return fmt.Errorf("mem: restore watermarks cross the split")
	}
	copy(m.words[:st.LoMax], st.Low)
	copy(m.words[st.HiMin:], st.High)
	// Zero anything the target dirtied above the snapshot's high watermark
	// (a booted-but-unrestored machine could have touched stack words).
	if m.hiMin < st.HiMin {
		clear(m.words[m.hiMin:st.HiMin])
	}
	if st.LoMax > m.loMax {
		m.loMax = st.LoMax
	}
	m.hiMin = st.HiMin
	return nil
}

// SetState captures one set-associative tag array: tags, per-entry LRU
// stamps and the LRU clock. Replacement decisions depend on all three, so
// a restored cache charges exactly the latencies the original would have.
type SetState struct {
	Tags  []Addr
	LRU   []uint32
	Clock uint32
}

func (s *setAssoc) captureState() SetState {
	return SetState{
		Tags:  append([]Addr(nil), s.tags...),
		LRU:   append([]uint32(nil), s.lru...),
		Clock: s.clock,
	}
}

func (s *setAssoc) restoreState(st SetState) error {
	if len(st.Tags) != len(s.tags) || len(st.LRU) != len(s.lru) {
		return fmt.Errorf("mem: cache restore geometry mismatch: %d/%d tags, %d/%d lru",
			len(st.Tags), len(s.tags), len(st.LRU), len(s.lru))
	}
	copy(s.tags, st.Tags)
	copy(s.lru, st.LRU)
	s.clock = st.Clock
	return nil
}

// CacheState captures the full cache hierarchy: every L1, the shared L2,
// and the hit/miss counters (the counters are not wire-carried today, but
// the tag/LRU state decides every future latency, so both travel together).
type CacheState struct {
	L1       []SetState
	L2       SetState
	L1Hits   int64
	L1Misses int64
	L2Hits   int64
	L2Misses int64
}

// CaptureState copies the hierarchy's tag state and counters.
func (cs *CacheSim) CaptureState() CacheState {
	st := CacheState{
		L2:       cs.l2.captureState(),
		L1Hits:   cs.L1Hits,
		L1Misses: cs.L1Misses,
		L2Hits:   cs.L2Hits,
		L2Misses: cs.L2Misses,
	}
	for _, l1 := range cs.l1 {
		st.L1 = append(st.L1, l1.captureState())
	}
	return st
}

// RestoreState writes a captured hierarchy back. The target must have the
// same geometry (CPU count and per-level shape).
func (cs *CacheSim) RestoreState(st CacheState) error {
	if len(st.L1) != len(cs.l1) {
		return fmt.Errorf("mem: cache restore NCPU mismatch: snapshot %d, machine %d", len(st.L1), len(cs.l1))
	}
	for i, l1 := range cs.l1 {
		if err := l1.restoreState(st.L1[i]); err != nil {
			return fmt.Errorf("l1[%d]: %w", i, err)
		}
	}
	if err := cs.l2.restoreState(st.L2); err != nil {
		return fmt.Errorf("l2: %w", err)
	}
	cs.L1Hits, cs.L1Misses = st.L1Hits, st.L1Misses
	cs.L2Hits, cs.L2Misses = st.L2Hits, st.L2Misses
	return nil
}
