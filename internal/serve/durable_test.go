package serve

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// longLoopSource builds a jasm program whose single loop runs n iterations —
// long enough (n around a million is hundreds of milliseconds of wall time)
// for periodic checkpoints to land mid-run.
func longLoopSource(n int64) string {
	return fmt.Sprintf(`
program longloop
statics 1
method main args=0 locals=2 returns=false
    const 0
    store 1
    const 0
    store 0
  .L:
    load 0
    const %d
    if_icmpge .E
    load 1
    load 0
    const 17
    imul
    iadd
    store 1
    iinc 0 1
    goto .L
  .E:
    load 1
    print
    return
end
`, n)
}

// durableConfig is the shared config for durability tests: aggressive
// checkpointing so a sub-second job checkpoints many times.
func durableConfig(dir string) Config {
	return Config{
		Workers:         1,
		QueueDepth:      8,
		DefaultDeadline: 60 * time.Second,
		DataDir:         dir,
		CheckpointEvery: 10 * time.Millisecond,
	}
}

// copyTree snapshots src into dst — the on-disk state a kill -9 at this
// instant would leave behind (every file in it was written with fsync
// ordering, so the copy is a valid crash image).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// waitForJournalCheckpoint polls the WAL until a checkpointed record for the
// job is durable (the record is appended after the checkpoint file syncs, so
// seeing it implies the checkpoint file is complete too).
func waitForJournalCheckpoint(t *testing.T, dir string, id int64) {
	t.Helper()
	needle := []byte(fmt.Sprintf(`"event":"checkpointed","id":%d`, id))
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(journalPath(dir))
		if err == nil && bytes.Contains(b, needle) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no durable checkpoint for job %d within deadline", id)
}

// TestDurableCrashRecoveryResumesMidRun is the crash-durability property end
// to end: snapshot the data dir while the job is mid-run (exactly what a
// kill -9 leaves), replay it in a second server, and require the recovered
// job to resume from its checkpoint and produce wire bytes identical to the
// undisturbed run.
func TestDurableCrashRecoveryResumesMidRun(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sA, rec, err := Open(durableConfig(dirA))
	if err != nil {
		t.Fatal(err)
	}
	if rec != (Recovery{}) {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	sA.Start()
	spec := JobSpec{Name: "crashme", Source: longLoopSource(1_000_000)}
	v, err := sA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForJournalCheckpoint(t, dirA, v.ID)
	copyTree(t, dirA, dirB) // the "kill -9 now" disk image

	// Let server A finish undisturbed: its result is the reference bytes.
	ref := waitDone(t, sA, v.ID)
	if ref.Status != StatusDone {
		t.Fatalf("reference job: %+v", ref)
	}
	refWire, err := sA.ResultBytes(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	sA.Shutdown(ctx)
	cancel()

	// "Restart" from the crash image.
	sB, recB, err := Open(durableConfig(dirB))
	if err != nil {
		t.Fatal(err)
	}
	if recB.Resumed != 1 || recB.Restarted != 0 || recB.Completed != 0 {
		t.Fatalf("recovery = %+v, want exactly one resumed job", recB)
	}
	sB.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sB.Shutdown(ctx)
	}()
	got := waitDone(t, sB, v.ID) // same ID survives the crash
	if got.Status != StatusDone {
		t.Fatalf("recovered job: status %s: %s", got.Status, got.Error)
	}
	if !got.Resumed {
		t.Fatal("recovered job did not resume from its checkpoint")
	}
	gotWire, err := sB.ResultBytes(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotWire, refWire) {
		t.Fatalf("recovered result diverged from undisturbed run (%d vs %d bytes)", len(gotWire), len(refWire))
	}
}

// TestDurableRestoresFinishedJobs reopens a data dir after a clean shutdown:
// terminal jobs reappear with their views and result bytes, and the ID
// sequence continues past them.
func TestDurableRestoresFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	v, err := s1.Submit(JobSpec{Name: "short", Source: longLoopSource(200)})
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, s1, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job: %+v", done)
	}
	refWire, err := s1.ResultBytes(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Shutdown(ctx)
	cancel()

	s2, rec, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed != 1 || rec.Resumed != 0 || rec.Restarted != 0 {
		t.Fatalf("recovery = %+v, want exactly one completed job", rec)
	}
	got, err := s2.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Name != "short" {
		t.Fatalf("restored view: %+v", got)
	}
	gotWire, err := s2.ResultBytes(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotWire, refWire) {
		t.Fatal("restored result bytes differ from the original")
	}
	s2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	v2, err := s2.Submit(JobSpec{Name: "next", Source: longLoopSource(200)})
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID <= v.ID {
		t.Fatalf("ID sequence regressed: new job %d after recovered %d", v2.ID, v.ID)
	}
}

// TestDurableShutdownReenqueuesForcedJobs: a job force-cancelled because the
// shutdown grace expired is interrupted work, not a conclusion — reopening
// the dir re-enqueues it (resuming from the shutdown sweep's checkpoint) and
// the finished result matches a plain in-memory run bit for bit.
func TestDurableShutdownReenqueuesForcedJobs(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	spec := JobSpec{Name: "drainme", Source: longLoopSource(1_000_000)}
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForJournalCheckpoint(t, dir, v.ID)
	// Grace already expired: the job is swept for a final checkpoint, then
	// force-cancelled.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	forced := s1.Shutdown(ctx)
	cancel()
	if forced != 1 {
		t.Fatalf("forced = %d, want 1", forced)
	}

	s2, rec, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resumed != 1 || rec.Completed != 0 {
		t.Fatalf("recovery = %+v, want the cancelled job re-enqueued with a checkpoint", rec)
	}
	s2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	got := waitDone(t, s2, v.ID)
	if got.Status != StatusDone || !got.Resumed {
		t.Fatalf("recovered job: status=%s resumed=%v err=%q", got.Status, got.Resumed, got.Error)
	}
	gotWire, err := s2.ResultBytes(v.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Reference leg: the same spec on a plain in-memory server.
	mem := newTestServer(t, nil)
	rv, err := mem.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rd := waitDone(t, mem, rv.ID); rd.Status != StatusDone {
		t.Fatalf("reference job: %+v", rd)
	}
	refWire, err := mem.ResultBytes(rv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotWire, refWire) {
		t.Fatal("resumed-after-shutdown result diverged from a fresh run")
	}
}

// TestJournalTornTailTolerated: a partial trailing record (crash mid-append)
// is dropped silently; a torn record in the middle of the file is refused.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	whole := `{"event":"accepted","id":1,"spec":{"name":"a","workload":"BitOps"}}` + "\n"
	torn := `{"event":"done","id":1,"vi`
	if err := os.WriteFile(journalPath(dir), []byte(whole+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, recovered, err := openJournal(dir)
	if err != nil {
		t.Fatalf("torn tail should replay cleanly: %v", err)
	}
	jl.close()
	if len(recovered) != 1 || recovered[0].ID != 1 || recovered[0].View != nil {
		t.Fatalf("recovered = %+v, want job 1 still pending", recovered)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(journalPath(dir2), []byte(torn+"\n"+whole), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir2); err == nil {
		t.Fatal("mid-file torn record should be an error")
	}
}
