package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"jrpm/internal/obs"
)

// Handler exposes the server over HTTP:
//
//	POST /jobs             submit a JobSpec; 202 + JobView, or 503 + Retry-After when shed
//	GET  /jobs             list known jobs (bounded by retention)
//	GET  /jobs/{id}        job snapshot; ?wait=<duration> blocks until terminal or the wait expires
//	POST /jobs/{id}/cancel request cancellation
//	GET  /jobs/{id}/result canonical codec encoding of a finished job's full result
//	GET  /jobs/{id}/checkpoint latest safepoint checkpoint envelope (fleet migration handoff)
//	GET  /jobs/{id}/trace  Perfetto/Chrome trace JSON (jobs submitted with trace=true)
//	GET  /jobs/{id}/doctor speculation-doctor report (jobs submitted with diagnose=true);
//	                       JSON by default, ?format=text for the human rendering
//	GET  /breakers         per-workload circuit-breaker states
//	GET  /healthz          liveness: 200 as long as the process serves
//	GET  /readyz           readiness: 503 once draining or before Start
//	GET  /metrics          Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/doctor", s.handleDoctor)
	mux.HandleFunc("GET /breakers", s.handleBreakers)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
	})
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	view, err := s.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		case errors.Is(err, ErrCircuitOpen):
			// The breaker counts in submissions, not seconds; hint a coarse
			// wall-clock equivalent so naive clients still back off.
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func jobID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, derr := time.ParseDuration(waitSpec)
		if derr != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "bad wait duration: " + derr.Error()})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		view, werr := s.Wait(ctx, id)
		if werr != nil {
			writeJSON(w, http.StatusNotFound, httpError{Error: werr.Error()})
			return
		}
		writeJSON(w, http.StatusOK, view)
		return
	}
	view, err := s.Job(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	if _, err := s.Job(id); err != nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	cancelled := s.Cancel(id)
	view, _ := s.Job(id)
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": cancelled, "job": view})
}

// handleResult serves the canonical codec encoding of a finished job's full
// result (application/octet-stream). 404 for unknown jobs, 409 while the
// job is still running or when it finished without a result.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	b, rerr := s.ResultBytes(id)
	if rerr != nil {
		status := http.StatusNotFound
		if !errors.Is(rerr, ErrUnknownJob) {
			status = http.StatusConflict
		}
		writeJSON(w, status, httpError{Error: rerr.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

// handleCheckpoint serves the job's latest encoded checkpoint envelope
// (application/octet-stream) — the bytes fleet migration feeds back in as
// JobSpec.Checkpoint on another replica. 404 for unknown jobs, 409 when the
// job has not delivered a checkpoint.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	b, cerr := s.Checkpoint(id)
	if cerr != nil {
		status := http.StatusNotFound
		if !errors.Is(cerr, ErrUnknownJob) {
			status = http.StatusConflict
		}
		writeJSON(w, status, httpError{Error: cerr.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	events, terr := s.Trace(id)
	if terr != nil {
		status := http.StatusNotFound
		if !errors.Is(terr, ErrUnknownJob) {
			status = http.StatusConflict
		}
		writeJSON(w, status, httpError{Error: terr.Error()})
		return
	}
	view, _ := s.Job(id)
	ncpu := view.Spec.NCPU
	if ncpu <= 0 {
		ncpu = 4
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("jrpm-job-%d.trace.json", id)))
	obs.WriteChromeTrace(w, events, ncpu, view.Name)
}

func (s *Server) handleDoctor(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	rep, derr := s.Doctor(id)
	if derr != nil {
		status := http.StatusNotFound
		if !errors.Is(derr, ErrUnknownJob) {
			status = http.StatusConflict
		}
		writeJSON(w, status, httpError{Error: derr.Error()})
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(rep.JSON())
}

func (s *Server) handleBreakers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Breakers())
}
