package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosProgram builds a distinct jasm source per (client, iteration): a
// parallelizable loop summing i*k, whose only correct output is k*19900.
// Distinct constants make cross-job state leaks visible as wrong sums.
func chaosProgram(k int64) (source string, expected int64) {
	source = fmt.Sprintf(`
program chaos
statics 1
method main args=0 locals=2 returns=false
    const 0
    store 1
    const 0
    store 0
  .L:
    load 0
    const 200
    if_icmpge .E
    load 1
    load 0
    const %d
    imul
    iadd
    store 1
    iinc 0 1
    goto .L
  .E:
    load 1
    print
    return
end
`, k)
	return source, k * 19900
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// TestChaos is the overload acceptance test: 64 concurrent clients hammer
// the HTTP surface with distinct programs, fault plans and random
// cancellations while a poller asserts liveness. Every job that reports
// done must carry its own program's exact output (cross-job corruption
// check); the server must shed or finish everything without a panic and
// then drain cleanly.
func TestChaos(t *testing.T) {
	clients := 64
	jobsPer := 2
	if testing.Short() {
		clients = 8
	}
	s := New(Config{
		Workers:         4,
		QueueDepth:      2 * clients,
		DefaultDeadline: 20 * time.Second,
	})
	s.Start()
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	hc := hts.Client()

	// Liveness poller: /healthz must answer 200 for the whole storm.
	stopPolling := make(chan struct{})
	var pollerFailures atomic.Int64
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPolling:
				return
			default:
			}
			resp, err := hc.Get(hts.URL + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				pollerFailures.Add(1)
			}
			if err == nil {
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, clients*jobsPer)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			for it := 0; it < jobsPer; it++ {
				k := int64(c*1000 + it + 1)
				source, expected := chaosProgram(k)
				spec := JobSpec{
					Name:       fmt.Sprintf("chaos-%d-%d", c, it),
					Source:     source,
					NCPU:       2 + 2*rng.Intn(2),
					DeadlineMS: 20_000,
				}
				switch rng.Intn(4) {
				case 0:
					spec.Faults = fmt.Sprintf("seed=%d,raw=0.05", c+1)
				case 1:
					spec.Mode = "seq"
				case 2:
					spec.Trace = true
				}
				var id int64
				submitted := false
				for try := 0; try < 50; try++ {
					status, body := postJSON(t, hc, hts.URL+"/jobs", spec)
					if status == http.StatusAccepted {
						var v JobView
						if err := json.Unmarshal(body, &v); err != nil {
							errc <- fmt.Errorf("client %d: bad submit response: %v", c, err)
							return
						}
						id = v.ID
						submitted = true
						break
					}
					if status != http.StatusServiceUnavailable {
						errc <- fmt.Errorf("client %d: submit status %d: %s", c, status, body)
						return
					}
					time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond) // shed: back off and retry
				}
				if !submitted {
					continue // persistent overload is legal behaviour, not corruption
				}
				cancelledByUs := false
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					st, _ := postJSON(t, hc, hts.URL+fmt.Sprintf("/jobs/%d/cancel", id), struct{}{})
					if st != http.StatusOK {
						errc <- fmt.Errorf("client %d: cancel status %d", c, st)
						return
					}
					cancelledByUs = true
				}
				resp, err := hc.Get(hts.URL + fmt.Sprintf("/jobs/%d?wait=20s", id))
				if err != nil {
					errc <- fmt.Errorf("client %d: wait: %v", c, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var v JobView
				if err := json.Unmarshal(body, &v); err != nil {
					errc <- fmt.Errorf("client %d: bad wait response: %v (%s)", c, err, body)
					return
				}
				switch v.Status {
				case StatusDone:
					if len(v.Output) != 1 || v.Output[0] != expected {
						errc <- fmt.Errorf("client %d job %d: output %v, want [%d] — cross-job corruption",
							c, id, v.Output, expected)
						return
					}
				case StatusCancelled:
					if !cancelledByUs {
						errc <- fmt.Errorf("client %d job %d: cancelled but nobody asked: %s", c, id, v.Error)
						return
					}
				case StatusFailed:
					if !cancelledByUs && !strings.Contains(v.Error, "deadline") {
						errc <- fmt.Errorf("client %d job %d: failed: %s (attempts %+v)", c, id, v.Error, v.Attempts)
						return
					}
				default:
					errc <- fmt.Errorf("client %d job %d: not terminal after wait: %s", c, id, v.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Graceful shutdown under the tail of the storm: readiness flips,
	// in-flight work drains, liveness never blips.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	forced := s.Shutdown(sctx)
	scancel()
	if forced != 0 {
		t.Errorf("shutdown force-cancelled %d jobs; want a clean drain", forced)
	}
	if resp, err := hc.Get(hts.URL + "/readyz"); err != nil {
		t.Error(err)
	} else {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz after shutdown = %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stopPolling)
	pollWG.Wait()
	if n := pollerFailures.Load(); n != 0 {
		t.Errorf("/healthz failed %d probes during the storm", n)
	}
	if snap := s.Metrics().Snapshot(); snap["jrpm_serve_panics_recovered_total"] != nil {
		t.Errorf("server recovered %v panics during chaos; want none", snap["jrpm_serve_panics_recovered_total"])
	}
}
