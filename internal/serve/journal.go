// Crash durability: the append-only job journal and its checkpoint/result
// files.
//
// Layout under Config.DataDir:
//
//	jobs.journal          append-only JSON-lines WAL, fsync'd per record
//	checkpoints/job-N.ckpt latest codec checkpoint, atomic-renamed
//	results/job-N.bin     canonical result wire bytes, written before "done"
//
// The journal is the source of truth for the job state machine
// accepted → running → checkpointed(seq) → done. Every transition is
// fsync'd before it is acknowledged, so after kill -9 a replay sees every
// job the server ever accepted: terminal jobs are restored for inspection
// (their result bytes are already durable — the done record is written
// after the result file syncs), and non-terminal jobs are re-enqueued,
// resuming from their latest checkpoint when one landed. A torn final
// record (the crash happened mid-append) is ignored; the job it described
// simply replays from its previous durable state.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal event names, in job-lifecycle order.
const (
	evAccepted     = "accepted"
	evRunning      = "running"
	evCheckpointed = "checkpointed"
	evDone         = "done"
)

// journalRecord is one WAL line.
type journalRecord struct {
	Event string   `json:"event"`
	ID    int64    `json:"id"`
	Spec  *JobSpec `json:"spec,omitempty"` // accepted: the validated submission
	Rung  string   `json:"rung,omitempty"` // checkpointed: ladder rung of the snapshot
	Seq   int64    `json:"seq,omitempty"`  // checkpointed: controller delivery sequence
	View  *JobView `json:"view,omitempty"` // done: the terminal snapshot
}

// recoveredJob is one job's replayed state.
type recoveredJob struct {
	ID       int64
	Spec     JobSpec
	HasCkpt  bool
	CkptRung string
	CkptSeq  int64
	View     *JobView // non-nil once terminal
}

// journal is the fsync'd WAL plus its sibling files. Append is serialized;
// the checkpoint/result writers are atomic (temp + rename) and may run
// concurrently with appends.
type journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

func journalPath(dir string) string { return filepath.Join(dir, "jobs.journal") }
func (jl *journal) checkpointPath(id int64) string {
	return filepath.Join(jl.dir, "checkpoints", fmt.Sprintf("job-%d.ckpt", id))
}
func (jl *journal) resultPath(id int64) string {
	return filepath.Join(jl.dir, "results", fmt.Sprintf("job-%d.bin", id))
}

// openJournal replays dir's WAL and opens it for appending.
func openJournal(dir string) (*journal, []*recoveredJob, error) {
	for _, d := range []string{dir, filepath.Join(dir, "checkpoints"), filepath.Join(dir, "results")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("serve: journal: %w", err)
		}
	}
	recovered, err := replayJournal(journalPath(dir))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{dir: dir, f: f}, recovered, nil
}

// replayJournal folds the WAL into per-job states, in first-accepted order.
// A torn trailing record (partial JSON from a crash mid-append) ends the
// replay without error; anything torn mid-file is reported.
func replayJournal(path string) ([]*recoveredJob, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	defer f.Close()
	byID := make(map[int64]*recoveredJob)
	var order []int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // checkpointed specs can be large
	lastComplete := true
	for sc.Scan() {
		if !lastComplete {
			return nil, fmt.Errorf("serve: journal: torn record mid-file in %s", path)
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail is a crash artifact: the transition it described was
			// never acknowledged, so dropping it is the correct replay. We only
			// know it was the tail once scanning ends, so flag and keep going.
			lastComplete = false
			continue
		}
		switch rec.Event {
		case evAccepted:
			if rec.Spec == nil {
				continue
			}
			if _, ok := byID[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			byID[rec.ID] = &recoveredJob{ID: rec.ID, Spec: *rec.Spec}
		case evCheckpointed:
			if j := byID[rec.ID]; j != nil {
				j.HasCkpt = true
				j.CkptRung = rec.Rung
				j.CkptSeq = rec.Seq
			}
		case evDone:
			if j := byID[rec.ID]; j != nil {
				j.View = rec.View
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	out := make([]*recoveredJob, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out, nil
}

// append fsyncs one record. The record is durable when append returns nil.
func (jl *journal) append(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(b); err != nil {
		return err
	}
	return jl.f.Sync()
}

// close releases the WAL handle.
func (jl *journal) close() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.f.Close()
}

// writeDurable atomically replaces path with data: temp file in the same
// directory, fsync, rename, directory fsync. A reader never observes a
// partial file; a crash leaves either the old content or the new.
func writeDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeCheckpoint durably replaces the job's checkpoint file.
func (jl *journal) writeCheckpoint(id int64, wire []byte) error {
	return writeDurable(jl.checkpointPath(id), wire)
}

// readCheckpoint loads the job's checkpoint file (nil, nil when absent).
func (jl *journal) readCheckpoint(id int64) ([]byte, error) {
	b, err := os.ReadFile(jl.checkpointPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return b, err
}

// writeResult durably writes the job's canonical result bytes. Called
// before the done record is journaled, so "done" implies the result is
// readable after any crash.
func (jl *journal) writeResult(id int64, wire []byte) error {
	return writeDurable(jl.resultPath(id), wire)
}

// readResult loads the job's result file (nil, nil when absent).
func (jl *journal) readResult(id int64) ([]byte, error) {
	b, err := os.ReadFile(jl.resultPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return b, err
}
