package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jrpm/internal/core"
	"jrpm/internal/tls"
)

// newTestServer builds a started server with small limits and generous
// deadlines so unit tests are deterministic.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Workers:         2,
		QueueDepth:      8,
		DefaultDeadline: 30 * time.Second,
		Breaker:         BreakerConfig{Trip: 2, Backoff: 2, MaxBackoff: 8},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// scripted builds a JobSpec whose attempts are driven by a script keyed on
// rung, bypassing the real pipeline.
func scripted(script func(rung Rung) (*core.Result, error)) JobSpec {
	return JobSpec{
		Name:        "scripted",
		Workload:    "scripted", // never resolved: testAttempt short-circuits
		testAttempt: script,
	}
}

func waitDone(t *testing.T, s *Server, id int64) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status == StatusQueued || v.Status == StatusRunning {
		t.Fatalf("job %d not terminal after wait: %s", id, v.Status)
	}
	return v
}

func okResult() *core.Result {
	return &core.Result{OutputsMatch: true}
}

func TestLadderDegradesOnStormThenSucceeds(t *testing.T) {
	s := newTestServer(t, nil)
	v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		if rung == RungTLS {
			return nil, fmt.Errorf("wrapped: %w", tls.ErrSpecViolationStorm)
		}
		return okResult(), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	v = waitDone(t, s, v.ID)
	if v.Status != StatusDone || v.Rung != RungProfile || !v.Degraded {
		t.Fatalf("view = %+v, want done on the profile rung, degraded", v)
	}
	if len(v.Attempts) != 1 || v.Attempts[0].Rung != RungTLS {
		t.Fatalf("attempts = %+v, want exactly the failed TLS attempt", v.Attempts)
	}
}

func TestLadderRecoversFromPanicPerRung(t *testing.T) {
	s := newTestServer(t, nil)
	v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		if rung != RungSeq {
			panic("simulated pipeline bug on rung " + string(rung))
		}
		return okResult(), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	v = waitDone(t, s, v.ID)
	if v.Status != StatusDone || v.Rung != RungSeq {
		t.Fatalf("view = %+v, want done on the sequential rung", v)
	}
	if len(v.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want two panicked attempts", v.Attempts)
	}
	for _, a := range v.Attempts {
		if a.Panic == "" {
			t.Fatalf("attempt %+v is missing the recovered stack", a)
		}
	}
}

func TestLadderNonDegradableFailsImmediately(t *testing.T) {
	s := newTestServer(t, nil)
	attempts := 0
	v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		attempts++
		return nil, errors.New("program throws deterministically")
	}))
	if err != nil {
		t.Fatal(err)
	}
	v = waitDone(t, s, v.ID)
	if v.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", v.Status)
	}
	if attempts != 1 {
		t.Fatalf("ran %d attempts for a non-degradable failure, want 1", attempts)
	}
}

func TestPinnedModeNeverDegrades(t *testing.T) {
	s := newTestServer(t, nil)
	v, err := s.Submit(JobSpec{
		Name: "pinned", Workload: "x", Mode: "tls",
		testAttempt: func(rung Rung) (*core.Result, error) {
			return nil, fmt.Errorf("wrapped: %w", tls.ErrSpecViolationStorm)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v = waitDone(t, s, v.ID)
	if v.Status != StatusFailed {
		t.Fatalf("pinned tls mode must fail, not degrade: %+v", v)
	}
	if len(v.Attempts) != 1 {
		t.Fatalf("attempts = %+v, want exactly one", v.Attempts)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []JobSpec{
		{},                                     // neither workload nor source
		{Workload: "BitOps", Source: "x"},      // both
		{Workload: "no-such-workload"},         // unknown workload
		{Source: "not a program"},              // unparsable source
		{Workload: "BitOps", Mode: "warp"},     // unknown mode
		{Workload: "BitOps", NCPU: 99},         // ncpu out of range
		{Workload: "BitOps", Faults: "zzz=no"}, // bad fault plan
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d (%+v): expected a validation error", i, spec)
		}
	}
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	var s *Server
	s = newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueDepth = 2 })
	blocker := func(rung Rung) (*core.Result, error) {
		<-release
		return okResult(), nil
	}
	defer close(release)
	// 1 running + 2 queued fill the server; the 4th submission is shed.
	var ids []int64
	for i := 0; i < 3; i++ {
		v, err := s.Submit(scripted(blocker))
		if err != nil {
			// The worker may not have dequeued the first job yet, leaving
			// the queue momentarily full at 2; retry briefly.
			time.Sleep(10 * time.Millisecond)
			v, err = s.Submit(scripted(blocker))
			if err != nil {
				t.Fatalf("submission %d: %v", i, err)
			}
		}
		ids = append(ids, v.ID)
	}
	// Wait until the worker picked up a job so exactly 2 slots are taken.
	deadline := time.Now().Add(2 * time.Second)
	for s.Running() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ { // refill whatever the dequeue freed
		if _, err := s.Submit(scripted(blocker)); errors.Is(err, ErrQueueFull) {
			break
		}
	}
	if _, err := s.Submit(scripted(blocker)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	started := make(chan struct{})
	running, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		close(started)
		<-release
		return nil, context.Canceled // a real attempt observes ctx; scripted stand-in
	}))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		t.Error("cancelled queued job must never run an attempt")
		return okResult(), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancelling a queued job reported false")
	}
	if !s.Cancel(running.ID) {
		t.Fatal("cancelling a running job reported false")
	}
	close(release)
	qv := waitDone(t, s, queued.ID)
	rv := waitDone(t, s, running.ID)
	if qv.Status != StatusCancelled || rv.Status != StatusCancelled {
		t.Fatalf("statuses = %s / %s, want cancelled / cancelled", qv.Status, rv.Status)
	}
	if s.Cancel(queued.ID) {
		t.Fatal("cancelling a terminal job must report false")
	}
}

func TestBreakerTripsAndReprobes(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	failing := scripted(func(rung Rung) (*core.Result, error) {
		return nil, errors.New("deterministic failure")
	})
	// Trip=2: two failed jobs open the circuit.
	for i := 0; i < 2; i++ {
		v, err := s.Submit(failing)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		waitDone(t, s, v.ID)
	}
	// Backoff=2 submissions shed, then exactly one probe admitted.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(failing); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("shed %d: err = %v, want ErrCircuitOpen", i, err)
		}
	}
	probe, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		return okResult(), nil
	}))
	if err != nil {
		t.Fatalf("probe submission: %v", err)
	}
	waitDone(t, s, probe.ID)
	// Successful probe recloses the circuit: submissions flow again.
	v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) { return okResult(), nil }))
	if err != nil {
		t.Fatalf("after reclose: %v", err)
	}
	waitDone(t, s, v.ID)
	stats := s.Breakers()
	if len(stats) != 1 {
		t.Fatalf("breakers = %+v, want one key", stats)
	}
	st := stats[0]
	if st.Open || st.Trips != 1 || st.Probes != 1 || st.Recloses != 1 || st.Shed != 2 {
		t.Fatalf("breaker stats = %+v", st)
	}
}

func TestShutdownDrainsThenSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.Start()
	v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		time.Sleep(20 * time.Millisecond)
		return okResult(), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if forced := s.Shutdown(ctx); forced != 0 {
		t.Fatalf("clean drain force-cancelled %d jobs", forced)
	}
	if s.Ready() {
		t.Fatal("server still ready after shutdown")
	}
	final, err := s.Job(v.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("drained job = %+v (%v), want done", final, err)
	}
	if _, err := s.Submit(scripted(func(Rung) (*core.Result, error) { return okResult(), nil })); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestShutdownForceCancelsAfterGrace(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.Start()
	started := make(chan struct{})
	v, err := s.Submit(JobSpec{
		Name: "stuck", Workload: "x",
		testAttempt: func(rung Rung) (*core.Result, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			time.Sleep(50 * time.Millisecond) // a real attempt returns on the stride
			return nil, ErrShutdown
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	forced := s.Shutdown(ctx)
	if forced != 1 {
		t.Fatalf("forced = %d, want 1", forced)
	}
	final, _ := s.Job(v.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled after forced shutdown", final.Status)
	}
}

func TestDeadlineFailsQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	blocker, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) {
		<-release
		return okResult(), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	// 1ms deadline expires while the job rots behind the blocker.
	doomed, err := s.Submit(JobSpec{
		Name: "doomed", Workload: "x", DeadlineMS: 1,
		testAttempt: func(rung Rung) (*core.Result, error) {
			t.Error("expired job must not attempt")
			return okResult(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	waitDone(t, s, blocker.ID)
	dv := waitDone(t, s, doomed.ID)
	if dv.Status != StatusFailed {
		t.Fatalf("status = %s, want failed on deadline", dv.Status)
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxFinished = 2 })
	var ids []int64
	for i := 0; i < 5; i++ {
		v, err := s.Submit(scripted(func(rung Rung) (*core.Result, error) { return okResult(), nil }))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, v.ID)
		ids = append(ids, v.ID)
	}
	if _, err := s.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job still retained: err = %v", err)
	}
	if _, err := s.Job(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	if got := len(s.Jobs()); got > 3 {
		t.Fatalf("retained %d jobs, want <= MaxFinished+in-flight", got)
	}
}
