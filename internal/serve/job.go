package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"jrpm/internal/bytecode"
	"jrpm/internal/codec"
	"jrpm/internal/core"
	"jrpm/internal/diagnose"
	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

// Rung is one level of the graceful-degradation ladder. Jobs in auto mode
// start at RungTLS and fall one rung at a time when the attempt blows its
// deadline slice, storms, panics, or diverges; RungSeq is unconditionally
// safe (plain sequential VM, no speculation, no analyzer).
type Rung string

// Ladder rungs, strongest first.
const (
	RungTLS     Rung = "tls"     // full five-step speculative pipeline
	RungProfile Rung = "profile" // baseline + profiling + analysis, no speculation
	RungSeq     Rung = "seq"     // plain sequential VM only
)

// ladder is the rung order for auto mode.
var ladder = []Rung{RungTLS, RungProfile, RungSeq}

// Status is a job's lifecycle state.
type Status string

// Job statuses.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// JobSpec is a submission: exactly one of Workload (a built-in benchmark
// name) or Source (a textual Jrpm-IR assembly program) must be set.
type JobSpec struct {
	Name     string `json:"name,omitempty"`     // display name (defaults to the workload name or "program")
	Workload string `json:"workload,omitempty"` // built-in workload to run
	Source   string `json:"source,omitempty"`   // jasm program text to assemble and run

	NCPU       int    `json:"ncpu,omitempty"`        // simulated CPUs (default 4, max 8)
	DeadlineMS int64  `json:"deadline_ms,omitempty"` // wall-clock deadline from submission (default/cap from Config)
	MaxCycles  int64  `json:"max_cycles,omitempty"`  // simulated-cycle budget per run (default from Config)
	Faults     string `json:"faults,omitempty"`      // faultinject plan spec for the speculative phase
	Mode       string `json:"mode,omitempty"`        // "auto" (ladder, default) or a pinned rung: "tls", "profile", "seq"
	Trace      bool   `json:"trace,omitempty"`       // keep a flight-recorder ring for GET /jobs/{id}/trace
	Diagnose   bool   `json:"diagnose,omitempty"`    // attach the speculation doctor for GET /jobs/{id}/doctor

	// Checkpoint, when non-empty, is an encoded codec checkpoint envelope:
	// the job resumes mid-simulation from this safepoint instead of running
	// from the start (crash recovery re-enqueues interrupted jobs this way,
	// and fleet migration hands a drained replica's checkpoint to the next).
	// A checkpoint that fails to decode or belongs to a different rung is
	// dropped and the job restarts from the program — same bit-identical
	// outcome, just more cycles re-simulated.
	Checkpoint []byte `json:"checkpoint,omitempty"`

	// testAttempt, when non-nil, replaces the real pipeline attempt —
	// in-package tests use it to script deterministic ladder outcomes
	// (including panics) without constructing pathological programs.
	testAttempt func(rung Rung) (*core.Result, error)
}

// Attempt records one rung attempt of a job, successful or not.
type Attempt struct {
	Rung  Rung   `json:"rung"`
	Err   string `json:"err,omitempty"`
	Panic string `json:"panic,omitempty"` // recovered panic stack, if the attempt panicked
}

// JobView is the externally visible snapshot of a job. All fields are
// copies; mutating a view never races with the running job.
type JobView struct {
	ID     int64   `json:"id"`
	Name   string  `json:"name"`
	Spec   JobSpec `json:"spec"`
	Status Status  `json:"status"`

	Rung     Rung      `json:"rung,omitempty"`     // rung that produced the result
	Degraded bool      `json:"degraded,omitempty"` // result came from below the requested rung
	Resumed  bool      `json:"resumed,omitempty"`  // result continued a checkpoint instead of running from the start
	Attempts []Attempt `json:"attempts,omitempty"` // failed attempts that preceded the result
	Error    string    `json:"error,omitempty"`

	SeqCycles        int64            `json:"seq_cycles,omitempty"`
	TLSCycles        int64            `json:"tls_cycles,omitempty"`
	PredictedCycles  int64            `json:"predicted_cycles,omitempty"`
	Speedup          float64          `json:"speedup,omitempty"`
	Output           []int64          `json:"output,omitempty"`
	FaultsFired      map[string]int64 `json:"faults_fired,omitempty"`
	DecertifiedLoops []int64          `json:"decertified_loops,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the server-side state. The view is the single mutable surface,
// guarded by mu; done closes exactly once when the job reaches a terminal
// status.
type job struct {
	mu   sync.Mutex
	view JobView

	deadline time.Time
	cancel   context.CancelCauseFunc
	done     chan struct{}
	ring     *obs.Ring        // non-nil when the spec asked for a trace
	doctor   *diagnose.Report // non-nil once a diagnosed TLS rung succeeds
	wire     []byte           // canonical codec encoding of the full result, set on success
	bkey     string           // circuit-breaker key

	cc      *core.CheckpointController // live while a checkpointable attempt runs
	ckpt    []byte                     // latest encoded checkpoint envelope
	ckptSeq int64
}

// setCheckpoint publishes the latest encoded checkpoint. The slice is never
// mutated afterwards, so readers share it.
func (j *job) setCheckpoint(wire []byte, seq int64) {
	j.mu.Lock()
	j.ckpt = wire
	j.ckptSeq = seq
	j.mu.Unlock()
}

func (j *job) checkpointBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpt
}

func (j *job) setController(cc *core.CheckpointController) {
	j.mu.Lock()
	j.cc = cc
	j.mu.Unlock()
}

func (j *job) controller() *core.CheckpointController {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cc
}

// setWire publishes the canonical result encoding. The byte slice is never
// mutated after this, so readers share it without copying.
func (j *job) setWire(b []byte) {
	j.mu.Lock()
	j.wire = b
	j.mu.Unlock()
}

func (j *job) wireBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wire
}

// setDoctor publishes the doctor report; the report is immutable after
// Build, so sharing the pointer with readers is safe.
func (j *job) setDoctor(rep *diagnose.Report) {
	j.mu.Lock()
	if rep.Name == "" {
		rep.Name = j.view.Name
	}
	j.doctor = rep
	j.mu.Unlock()
}

func (j *job) doctorReport() *diagnose.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doctor
}

// snapshot copies the view for external consumption (deep enough that the
// caller cannot race the worker: slices and maps are cloned).
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := j.view
	v.Attempts = append([]Attempt(nil), j.view.Attempts...)
	v.Output = append([]int64(nil), j.view.Output...)
	v.DecertifiedLoops = append([]int64(nil), j.view.DecertifiedLoops...)
	if j.view.FaultsFired != nil {
		v.FaultsFired = make(map[string]int64, len(j.view.FaultsFired))
		for k, n := range j.view.FaultsFired {
			v.FaultsFired[k] = n
		}
	}
	return v
}

func (j *job) snapshotSpec() JobSpec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.Spec
}

func (j *job) status() (Status, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view.Status, j.view.Error
}

// terminal reports whether the job already reached a final status.
func (j *job) terminal() bool {
	st, _ := j.status()
	return st == StatusDone || st == StatusFailed || st == StatusCancelled
}

// setCancel installs the running job's cancel function; if a client cancel
// arrived while the job was still queued, it fires immediately.
func (j *job) setCancel(cancel context.CancelCauseFunc) {
	j.mu.Lock()
	already := j.view.Status == StatusCancelled
	j.cancel = cancel
	j.mu.Unlock()
	if already {
		cancel(ErrJobCancelled)
	}
}

func (j *job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.view.Status == StatusQueued {
		j.view.Status = StatusRunning
		now := time.Now()
		j.view.StartedAt = &now
	}
}

// finish transitions to a terminal status exactly once; later transitions
// are ignored (first terminal status wins).
func (j *job) finish(mutate func(v *JobView)) {
	j.mu.Lock()
	if j.view.Status != StatusQueued && j.view.Status != StatusRunning {
		j.mu.Unlock()
		return
	}
	mutate(&j.view)
	now := time.Now()
	j.view.FinishedAt = &now
	j.mu.Unlock()
	close(j.done)
}

func (j *job) recordAttempt(rung Rung, err error) {
	a := Attempt{Rung: rung, Err: err.Error()}
	var pe *PanicError
	if errors.As(err, &pe) {
		a.Panic = pe.Stack
	}
	j.mu.Lock()
	j.view.Attempts = append(j.view.Attempts, a)
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.finish(func(v *JobView) {
		v.Status = StatusFailed
		v.Error = err.Error()
	})
}

func (j *job) cancelled(cause error) {
	j.finish(func(v *JobView) {
		v.Status = StatusCancelled
		if v.Error == "" {
			v.Error = cause.Error()
		}
	})
}

func (j *job) succeed(rung Rung, degraded, resumed bool, res *core.Result) {
	j.finish(func(v *JobView) {
		v.Status = StatusDone
		v.Rung = rung
		v.Degraded = degraded
		v.Resumed = resumed
		v.SeqCycles = res.Seq.Cycles
		v.TLSCycles = res.TLS.Cycles
		v.PredictedCycles = res.PredictedCycles
		v.Speedup = res.SpeedupActual()
		v.FaultsFired = res.TLS.FaultsFired
		v.DecertifiedLoops = res.TLS.DecertifiedLoops
		switch rung {
		case RungTLS:
			v.Output = res.TLS.Output
		case RungProfile:
			v.Output = res.Profile.Output
		default:
			v.Output = res.Seq.Output
		}
	})
}

// PanicError is a recovered per-job panic: the job fails (or degrades) with
// the stack attached to its result, and the server keeps running.
type PanicError struct {
	Value string
	Stack string
}

// Error renders the panic value; the stack travels in the Attempt record.
func (e *PanicError) Error() string { return "serve: job attempt panicked: " + e.Value }

// Cancellation and degradation causes.
var (
	// ErrJobCancelled is the context cause of an explicit client cancel.
	ErrJobCancelled = errors.New("serve: job cancelled by client")
	// ErrShutdown is the context cause when the grace period expires and
	// the server force-cancels in-flight jobs.
	ErrShutdown = errors.New("serve: server shutting down")
	// ErrDeadline reports that the job's overall wall-clock deadline
	// expired before any rung produced a result.
	ErrDeadline = errors.New("serve: job deadline exceeded")
	// errSliceExpired is the internal cause of a per-rung deadline slice:
	// it triggers degradation, not job failure.
	errSliceExpired = errors.New("serve: rung deadline slice expired")
)

// startRung maps a spec mode to the first rung and whether the ladder may
// degrade below it.
func startRung(mode string) (first Rung, pinned bool, err error) {
	switch mode {
	case "", "auto":
		return RungTLS, false, nil
	case string(RungTLS), string(RungProfile), string(RungSeq):
		return Rung(mode), true, nil
	default:
		return "", false, fmt.Errorf("serve: unknown mode %q (want auto, tls, profile or seq)", mode)
	}
}

// rungsFrom returns the ladder starting at first (just first when pinned).
func rungsFrom(first Rung, pinned bool) []Rung {
	if pinned {
		return []Rung{first}
	}
	for i, r := range ladder {
		if r == first {
			return ladder[i:]
		}
	}
	return []Rung{RungSeq}
}

// degradable classifies an attempt error: true means the next rung down may
// still succeed (speculation-side trouble, panics, slice timeouts); false
// means the failure is deterministic program behaviour that every rung would
// reproduce (bad program, uncaught exception, OOM) or a terminal
// cancellation.
func degradable(err error) bool {
	switch {
	case errors.Is(err, errSliceExpired):
		return true // deadline pressure: drop a rung with the time left
	case errors.Is(err, tls.ErrSpecViolationStorm):
		return true
	case errors.Is(err, hydra.ErrCycleBudgetExceeded):
		return true // a storm can burn the budget before the limit trips
	case errors.Is(err, hydra.ErrInternal):
		return true // simulator bug: retry without speculation
	case errors.Is(err, core.ErrOracleMismatch):
		return true // speculation diverged: the sequential rung is the oracle
	case errors.Is(err, errOutputMismatch):
		return true
	default:
		var pe *PanicError
		return errors.As(err, &pe)
	}
}

// errOutputMismatch reports a pipeline whose speculative output diverged
// from the sequential run without an active fault plan.
var errOutputMismatch = errors.New("serve: speculative output diverged from sequential run")

// BuildProgram resolves a spec to its bytecode program and heap sizing —
// exported so the fleet router can content-address submissions with the
// exact program a replica would run.
func BuildProgram(spec JobSpec) (*bytecode.Program, int, error) {
	return buildProgram(spec)
}

// ParseMode maps a spec mode string to its starting rung and whether the
// ladder is pinned there — exported so the fleet router keys its cache by
// the same rung a replica would start at.
func ParseMode(mode string) (first Rung, pinned bool, err error) {
	return startRung(mode)
}

// buildProgram resolves the spec to a fresh bytecode program. A fresh build
// per attempt keeps attempts independent — no compiled state leaks from a
// failed speculative attempt into the sequential retry.
func buildProgram(spec JobSpec) (*bytecode.Program, int, error) {
	if spec.Workload != "" {
		w := workloads.ByName(spec.Workload)
		if w == nil {
			return nil, 0, fmt.Errorf("serve: unknown workload %q", spec.Workload)
		}
		return w.Build(), w.HeapWords, nil
	}
	bp, err := bytecode.Parse(spec.Source)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: parse: %w", err)
	}
	return bp, 0, nil
}

// optionsFor builds the exact core.Options a job attempt runs with, given
// the heap sizing the program build resolved. Receiver must already have
// defaults applied. The runtime-only fields (Ctx, Recorder) are left zero;
// the attempt path attaches them.
func (c Config) optionsFor(spec JobSpec, rung Rung, heapWords int) (core.Options, error) {
	opts := core.DefaultOptions()
	opts.Tier2Off = c.Tier2Off
	if spec.NCPU > 0 {
		opts.NCPU = spec.NCPU
	}
	if heapWords > 0 {
		opts.VM.HeapWords = heapWords
	}
	opts.MaxCycles = c.MaxCycles
	if spec.MaxCycles > 0 && spec.MaxCycles < opts.MaxCycles {
		opts.MaxCycles = spec.MaxCycles
	}
	if rung == RungTLS {
		if spec.Faults != "" {
			plan, perr := parseFaults(spec.Faults)
			if perr != nil {
				return core.Options{}, perr
			}
			opts.Faults = &plan
		}
		// The in-run safety net: thrashing loops demote to solo instead of
		// storming the whole job.
		gcfg := tls.DefaultGuardConfig()
		opts.Guard = &gcfg
		// The ledger is passive — cycles are bit-identical with it attached —
		// so diagnosis never perturbs what the job measures.
		opts.Diagnose = spec.Diagnose
	}
	return opts, nil
}

// OptionsForSpec resolves the effective simulation options a job submitted
// with spec would run with at the given rung. It is the single source of
// truth shared by the attempt path, the fleet router's cache key, and the
// conformance oracle's direct leg — a drift between "what the server runs"
// and "what the key describes" would silently poison the fleet cache, so
// there is exactly one derivation.
func (c Config) OptionsForSpec(spec JobSpec, rung Rung) (core.Options, error) {
	c = c.withDefaults()
	_, heapWords, err := buildProgram(spec)
	if err != nil {
		return core.Options{}, err
	}
	return c.optionsFor(spec, rung, heapWords)
}

// checkpointEligible reports whether a job's attempts may capture (and
// resume from) safepoint checkpoints: trace, diagnose and fault-plan jobs
// carry observers the snapshot machinery refuses, so they re-run from the
// start after a crash instead.
func checkpointEligible(spec JobSpec) bool {
	return !spec.Trace && !spec.Diagnose && spec.Faults == "" && spec.testAttempt == nil
}

// attempt runs one rung of the ladder with a panic backstop: a panic
// anywhere inside the pipeline is converted to a *PanicError carrying the
// stack, never propagated to the worker goroutine. cc (may be nil) captures
// safepoint checkpoints from the attempt; cp (may be nil) resumes the
// attempt mid-simulation — a checkpoint the resume machinery rejects falls
// back to a clean run from the program. resumed reports which path produced
// the result.
func (s *Server) attempt(ctx context.Context, rung Rung, spec JobSpec, ring *obs.Ring, cc *core.CheckpointController, cp *core.Checkpoint) (res *core.Result, resumed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.reg.Counter("jrpm_serve_panics_recovered_total").Inc()
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
			res, resumed = nil, false
		}
	}()
	if spec.testAttempt != nil {
		res, err = spec.testAttempt(rung)
		return res, false, err
	}
	bp, heapWords, err := buildProgram(spec)
	if err != nil {
		return nil, false, err
	}
	opts, err := s.cfg.optionsFor(spec, rung, heapWords)
	if err != nil {
		return nil, false, err
	}
	opts.Ctx = ctx
	opts.Checkpoint = cc
	run, resume := core.Run, core.ResumeTLS
	switch rung {
	case RungTLS:
		if ring != nil {
			ring.Reset()
			opts.Recorder = ring
		}
	case RungProfile:
		run, resume = core.RunProfile, core.ResumeProfile
	default:
		run, resume = core.RunSequential, core.ResumeSequential
	}
	if cp != nil {
		res, err = resume(bp, opts, cp)
		if errors.Is(err, core.ErrBadCheckpoint) {
			// Wrong stage/program/options for this rung: the checkpoint is
			// unusable here. Degrade to a clean restart — bit-identical
			// outcome, just more cycles re-simulated.
			s.reg.Counter("jrpm_serve_checkpoint_fallbacks_total").Inc()
			res, err = run(bp, opts)
		} else {
			resumed = err == nil
		}
	} else {
		res, err = run(bp, opts)
	}
	if err != nil {
		return nil, false, err
	}
	if !res.OutputsMatch {
		return nil, false, errOutputMismatch
	}
	return res, resumed, nil
}

// runJob drives one dequeued job down the degradation ladder until a rung
// succeeds, the deadline expires, or the job is cancelled.
func (s *Server) runJob(j *job) {
	spec := j.snapshotSpec()
	jctx, jcancel := context.WithCancelCause(context.Background())
	j.setCancel(jcancel)
	defer jcancel(nil)
	if j.terminal() {
		// Cancelled while queued. Still publish the outcome so a breaker
		// probe abandoned in the queue is released.
		s.finishJob(j)
		return
	}
	j.markRunning()
	s.journalAppend(journalRecord{Event: evRunning, ID: j.view.ID})
	s.reg.Gauge("jrpm_serve_jobs_running").Set(float64(s.running.Add(1)))
	defer func() {
		s.reg.Gauge("jrpm_serve_jobs_running").Set(float64(s.running.Add(-1)))
		s.finishJob(j)
	}()

	first, pinned, err := startRung(spec.Mode)
	if err != nil {
		j.fail(err)
		return
	}
	rungs := rungsFrom(first, pinned)

	// Checkpoint wiring: one controller outlives all rung attempts, so the
	// latest snapshot survives a degradation (it is simply labelled with the
	// rung that captured it). Delivery re-encodes to the canonical envelope,
	// publishes it for migration fetches, and — when durable — lands the
	// checkpoint file before the journal record that points at it.
	var cc *core.CheckpointController
	var rcp *core.Checkpoint
	if checkpointEligible(spec) {
		id := j.view.ID
		cc = &core.CheckpointController{}
		cc.OnCheckpoint = func(cp *core.Checkpoint, seq int64) {
			wire := codec.EncodeCheckpoint(cp)
			j.setCheckpoint(wire, seq)
			if s.journal != nil {
				if err := s.journal.writeCheckpoint(id, wire); err != nil {
					s.reg.Counter("jrpm_serve_journal_errors_total").Inc()
					return
				}
			}
			s.journalAppend(journalRecord{Event: evCheckpointed, ID: id, Rung: cp.Label, Seq: seq})
			s.reg.Counter("jrpm_serve_checkpoints_total").Inc()
		}
		j.setController(cc)
		defer j.setController(nil)
		if every := s.cfg.CheckpointEvery; every > 0 {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				tick := time.NewTicker(every)
				defer tick.Stop()
				for {
					select {
					case <-tick.C:
						cc.Request()
					case <-stop:
						return
					}
				}
			}()
		}
		if len(spec.Checkpoint) > 0 {
			cp, derr := codec.DecodeCheckpoint(spec.Checkpoint)
			if derr != nil {
				// Corrupt or stale envelope: a restart from the program is the
				// documented fallback, never a failed job.
				s.reg.Counter("jrpm_serve_checkpoint_fallbacks_total").Inc()
			} else {
				rcp = cp
			}
		}
	}
	for i, rung := range rungs {
		remaining := time.Until(j.deadline)
		if remaining <= 0 {
			j.fail(fmt.Errorf("%w (after %d attempt(s))", ErrDeadline, i))
			return
		}
		// A rung that still has fallbacks below it gets half the remaining
		// budget; the last rung gets everything left. Blowing the slice is
		// deadline pressure — degrade, don't fail.
		slice := remaining
		last := i == len(rungs)-1
		if !last {
			slice = remaining / 2
		}
		// A recovered/migrated checkpoint only applies to the rung that
		// captured it, and only on the first attempt — after a degradation the
		// lower rung re-runs from the program.
		var cp *core.Checkpoint
		if i == 0 && rcp != nil && rcp.Label == string(rung) {
			cp = rcp
		}
		if cc != nil {
			cc.SetLabel(string(rung))
		}
		actx, acancel := context.WithTimeoutCause(jctx, slice, errSliceExpired)
		res, resumed, err := s.attempt(actx, rung, spec, j.ring, cc, cp)
		acancel()
		if err == nil {
			s.reg.Counter("jrpm_serve_jobs_completed_total{status=\"done\"}").Inc()
			if rung != first {
				s.reg.Counter(fmt.Sprintf("jrpm_serve_jobs_degraded_total{rung=%q}", rung)).Inc()
			}
			// The full result travels in canonical wire form so fleet peers
			// (and the conformance oracle) can fetch byte-exact outcomes, not
			// just the JobView summary. Encoding is a few KB per job.
			j.setWire(codec.EncodeResult(res))
			s.addTierMetrics(res)
			if spec.Diagnose && rung == RungTLS {
				if rep, derr := diagnose.Build(res); derr == nil {
					j.setDoctor(rep)
					s.addDoctorMetrics(rep)
				}
			}
			if resumed {
				s.reg.Counter("jrpm_serve_jobs_resumed_total").Inc()
			}
			j.succeed(rung, rung != first, resumed, res)
			return
		}
		j.recordAttempt(rung, err)
		// Terminal cancellation (client cancel, shutdown, overall deadline)
		// is never retried on a lower rung.
		if cause := context.Cause(jctx); cause != nil && !errors.Is(cause, errSliceExpired) {
			if errors.Is(cause, ErrJobCancelled) || errors.Is(cause, ErrShutdown) {
				j.cancelled(cause)
			} else {
				j.fail(fmt.Errorf("%w: %v", ErrDeadline, cause))
			}
			return
		}
		if time.Until(j.deadline) <= 0 && !errors.Is(err, errSliceExpired) {
			j.fail(fmt.Errorf("%w: %v", ErrDeadline, err))
			return
		}
		if last || !degradable(err) {
			j.fail(err)
			return
		}
		s.reg.Counter("jrpm_serve_degradations_total").Inc()
	}
}

// addTierMetrics folds a finished job's tier-2 block-engine counters into
// the server registry, summed over the pipeline phases, so /metrics exposes
// fleet-wide engine activity (and, via the demotion reasons, why workloads
// leave the fast tier).
func (s *Server) addTierMetrics(res *core.Result) {
	var t hydra.TierStats
	for _, p := range []*core.Phase{&res.Seq, &res.Profile, &res.TLS} {
		t.Promotions += p.Tier.Promotions
		t.BlocksCompiled += p.Tier.BlocksCompiled
		t.CacheHits += p.Tier.CacheHits
		t.CacheMisses += p.Tier.CacheMisses
		t.Linked += p.Tier.Linked
		t.InterpSteps += p.Tier.InterpSteps
		for r := range t.Demote {
			t.Demote[r] += p.Tier.Demote[r]
		}
	}
	s.reg.Counter("jrpm_tier_promotions_total").Add(t.Promotions)
	s.reg.Counter("jrpm_tier_blocks_compiled_total").Add(t.BlocksCompiled)
	s.reg.Counter("jrpm_tier_cache_hits_total").Add(t.CacheHits)
	s.reg.Counter("jrpm_tier_cache_misses_total").Add(t.CacheMisses)
	s.reg.Counter("jrpm_tier_links_total").Add(t.Linked)
	s.reg.Counter("jrpm_tier_interp_steps_total").Add(t.InterpSteps)
	for r := hydra.DemoteReason(0); r < hydra.NumDemoteReasons; r++ {
		if v := t.Demote[r]; v != 0 {
			s.reg.Counter(fmt.Sprintf("jrpm_tier_demotions_total{reason=%q}", r)).Add(v)
		}
	}
}

// addDoctorMetrics exposes the latest diagnosed job's ledger totals as
// jrpm_doctor_* gauges: conservation health, attributed wall cycles, and
// the committed/discarded split summed over the run's STLs.
func (s *Server) addDoctorMetrics(rep *diagnose.Report) {
	s.reg.Counter("jrpm_doctor_reports_total").Inc()
	conserved := 0.0
	if rep.Conserved {
		conserved = 1
	}
	s.reg.Gauge("jrpm_doctor_conserved").Set(conserved)
	s.reg.Gauge("jrpm_doctor_wall_cycles").Set(float64(rep.WallCycles))
	s.reg.Gauge("jrpm_doctor_loops").Set(float64(len(rep.Loops)))
	var useful, discarded, total int64
	for i := range rep.Loops {
		b := &rep.Loops[i].Buckets
		useful += b.RunUsed
		discarded += b.RunViolated + b.WaitViolated
		total += rep.Loops[i].Cycles
	}
	s.reg.Gauge("jrpm_doctor_loop_cycles").Set(float64(total))
	s.reg.Gauge("jrpm_doctor_useful_cycles").Set(float64(useful))
	s.reg.Gauge("jrpm_doctor_discarded_cycles").Set(float64(discarded))
}

// finishJob publishes the terminal status to the breaker, metrics and the
// retention list. Every enqueued job passes through here exactly once (the
// worker dequeue is the single exit point, even for jobs cancelled while
// queued).
func (s *Server) finishJob(j *job) {
	v := j.snapshot()
	switch v.Status {
	case StatusDone:
		s.breakerFor(j.bkey).OnResult(true, false)
	case StatusFailed:
		s.reg.Counter("jrpm_serve_jobs_completed_total{status=\"failed\"}").Inc()
		s.breakerFor(j.bkey).OnResult(false, false)
	case StatusCancelled:
		s.reg.Counter("jrpm_serve_jobs_completed_total{status=\"cancelled\"}").Inc()
		s.breakerFor(j.bkey).OnResult(false, true)
	}
	if s.journal != nil {
		// Result bytes land before the done record: replay treats "done" as a
		// promise that GET /jobs/{id}/result still works after a crash.
		if v.Status == StatusDone {
			if w := j.wireBytes(); w != nil {
				if err := s.journal.writeResult(v.ID, w); err != nil {
					s.reg.Counter("jrpm_serve_journal_errors_total").Inc()
				}
			}
		}
		view := v
		s.journalAppend(journalRecord{Event: evDone, ID: v.ID, View: &view})
	}
	s.noteFinished(v.ID)
}

// journalAppend appends one WAL record when the server is durable, counting
// (rather than propagating) write failures: a sick disk degrades durability,
// it does not take down job execution.
func (s *Server) journalAppend(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.reg.Counter("jrpm_serve_journal_errors_total").Inc()
	}
}
