// Package serve is the embeddable Jrpm simulation service: it runs built-in
// workloads and user-submitted Jrpm-IR programs as jobs with the "always
// degrade, never die" discipline the simulator applies to speculation,
// lifted to the process boundary.
//
//   - Admission control: a bounded queue with configurable concurrency;
//     when it is full, submissions are shed with a Retry-After hint instead
//     of queuing without bound.
//   - Deadlines: every job carries a wall-clock deadline (threaded through
//     the whole pipeline as a context.Context that hydra polls on a coarse
//     cycle stride) and a simulated-cycle budget.
//   - Graceful degradation: jobs in auto mode walk the ladder full TLS →
//     profile-only → sequential VM when an attempt blows its deadline
//     slice, storms, panics or diverges. Every panic is recovered per job
//     with the stack attached to the result — never fatal to the server.
//   - Circuit breaking: a per-workload breaker with the tls.Guard's
//     exponential re-probe schedule stops a consistently failing program
//     from consuming simulation capacity.
//   - Graceful shutdown: admissions stop, running jobs drain within a grace
//     period or are cancelled, and metrics can be flushed.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jrpm/internal/diagnose"
	"jrpm/internal/faultinject"
	"jrpm/internal/obs"
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// Workers is the number of concurrent simulation workers (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// sheds new submissions with ErrQueueFull.
	QueueDepth int
	// DefaultDeadline applies to jobs that do not request one (default
	// 30s). The clock starts at submission, so a job that rots in the
	// queue past its deadline is failed cheaply at dequeue instead of
	// running.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 2m).
	MaxDeadline time.Duration
	// MaxCycles is the default simulated-cycle budget per run (default
	// 2e9); a job may request less but never more.
	MaxCycles int64
	// MaxNCPU caps the simulated CPUs a job may request (default 8).
	MaxNCPU int
	// Breaker configures the per-workload circuit breaker.
	Breaker BreakerConfig
	// TraceCapacity is the flight-recorder ring capacity for jobs that
	// request a trace (default 1<<18 events).
	TraceCapacity int
	// MaxFinished bounds how many terminal jobs are retained for
	// inspection; the oldest are evicted first (default 1024).
	MaxFinished int
	// Tier2Off disables the tier-2 block engine on every job (results are
	// bit-identical either way; the flag exists for equivalence audits).
	Tier2Off bool
	// DataDir, when set, makes jobs crash-durable: every accepted job is
	// recorded in an fsync'd journal under this directory, running jobs
	// write periodic safepoint checkpoints, and Open replays the journal on
	// restart — re-enqueueing interrupted jobs (resuming from their latest
	// checkpoint) and restoring finished ones. Only Open honours it; New
	// builds a purely in-memory server.
	DataDir string
	// CheckpointEvery is the wall-clock period between checkpoint requests
	// on a running job (default 2s when DataDir is set; 0 without a data
	// dir, leaving only the explicit shutdown/migration checkpoint sweep).
	CheckpointEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.MaxNCPU <= 0 {
		c.MaxNCPU = 8
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 1 << 18
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 1024
	}
	if c.DataDir != "" && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	return c
}

// Admission errors. The HTTP layer maps them to 503 + Retry-After; embedded
// callers classify them with errors.Is.
var (
	// ErrQueueFull sheds a submission because the bounded queue is at
	// capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining sheds a submission because the server is shutting down
	// (or was never started).
	ErrDraining = errors.New("serve: not accepting jobs")
	// ErrCircuitOpen sheds a submission because the workload's circuit
	// breaker is open.
	ErrCircuitOpen = errors.New("serve: circuit open for this workload")
	// ErrUnknownJob reports a job id the server does not know.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Server is the simulation service. Create with New, call Start, submit
// jobs (directly or through Handler's HTTP surface), and stop with
// Shutdown.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	started  bool
	draining bool
	jobs     map[int64]*job
	finished []int64 // terminal job ids, oldest first, for bounded retention
	breakers map[string]*Breaker
	queue    chan *job

	nextID  atomic.Int64
	running atomic.Int64
	wg      sync.WaitGroup

	journal *journal // non-nil when the server is durable (built by Open)
}

// New builds a purely in-memory server; Start must be called before
// submissions are accepted. Config.DataDir is ignored here — use Open for a
// crash-durable server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		jobs:     make(map[int64]*job),
		breakers: make(map[string]*Breaker),
		queue:    make(chan *job, cfg.QueueDepth),
	}
}

// Recovery summarizes what Open replayed from the journal.
type Recovery struct {
	// Resumed counts interrupted jobs re-enqueued with a checkpoint: they
	// continue mid-simulation from their latest safepoint.
	Resumed int
	// Restarted counts interrupted jobs re-enqueued without a usable
	// checkpoint: they re-run from the program (bit-identical outcome).
	Restarted int
	// Completed counts terminal jobs restored for inspection (their views
	// and result bytes survive the crash).
	Completed int
}

// Open builds a crash-durable server rooted at cfg.DataDir: it replays the
// job journal, restores terminal jobs, and re-enqueues every job the
// previous process accepted but never finished — resuming each from its
// latest checkpoint when one landed. With an empty DataDir it degenerates
// to New. Start must still be called; recovered jobs run as soon as workers
// exist.
func Open(cfg Config) (*Server, Recovery, error) {
	s := New(cfg)
	if s.cfg.DataDir == "" {
		return s, Recovery{}, nil
	}
	jl, recovered, err := openJournal(s.cfg.DataDir)
	if err != nil {
		return nil, Recovery{}, err
	}
	s.journal = jl
	// Size the queue so every recovered job enqueues without blocking —
	// recovery happens before workers exist, so a blocking send would
	// deadlock Open.
	if pending := countPending(recovered); pending > s.cfg.QueueDepth {
		s.queue = make(chan *job, pending+s.cfg.QueueDepth)
	}
	var rec Recovery
	maxID := int64(0)
	for _, r := range recovered {
		if r.ID > maxID {
			maxID = r.ID
		}
		if r.View != nil {
			// A job the previous process force-cancelled while shutting down
			// was interrupted, not concluded: re-enqueue it like a crash
			// victim so a rolling restart finishes the work.
			if r.View.Status == StatusCancelled && r.View.Error == ErrShutdown.Error() {
				r.View = nil
			} else {
				s.restoreFinished(r)
				rec.Completed++
				continue
			}
		}
		if s.restoreInterrupted(r) {
			rec.Resumed++
		} else {
			rec.Restarted++
		}
	}
	s.nextID.Store(maxID)
	s.reg.Gauge("jrpm_serve_queue_depth").Set(float64(len(s.queue)))
	return s, rec, nil
}

// countPending counts replayed jobs that need re-enqueueing.
func countPending(recovered []*recoveredJob) int {
	n := 0
	for _, r := range recovered {
		if r.View == nil {
			n++
		}
	}
	return n
}

// restoreFinished rebuilds a terminal job from its done record and durable
// result bytes.
func (s *Server) restoreFinished(r *recoveredJob) {
	j := &job{done: make(chan struct{}), bkey: breakerKey(r.Spec)}
	j.view = *r.View
	if wire, err := s.journal.readResult(r.ID); err == nil && wire != nil {
		j.wire = wire
	}
	close(j.done)
	s.mu.Lock()
	s.jobs[r.ID] = j
	s.finished = append(s.finished, r.ID)
	s.mu.Unlock()
}

// restoreInterrupted re-enqueues a job the previous process never finished,
// attaching its latest durable checkpoint when one exists. Reports whether
// the job will resume mid-simulation (vs restart from the program).
func (s *Server) restoreInterrupted(r *recoveredJob) (resumed bool) {
	spec := r.Spec
	if r.HasCkpt {
		if wire, err := s.journal.readCheckpoint(r.ID); err == nil && len(wire) > 0 {
			spec.Checkpoint = wire
		}
	}
	j := &job{done: make(chan struct{}), bkey: breakerKey(spec)}
	now := time.Now()
	// The original deadline died with the process; a recovered job gets a
	// fresh default budget.
	deadline := time.Duration(spec.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	j.deadline = now.Add(deadline)
	j.view = JobView{
		ID:          r.ID,
		Name:        spec.Name,
		Spec:        spec,
		Status:      StatusQueued,
		SubmittedAt: now,
	}
	s.mu.Lock()
	s.jobs[r.ID] = j
	s.mu.Unlock()
	s.queue <- j // capacity guaranteed by Open
	s.reg.Counter("jrpm_serve_jobs_recovered_total").Inc()
	// view.Resumed is set by the attempt that actually restores the
	// checkpoint; a corrupt one falls back to a clean restart.
	return len(spec.Checkpoint) > 0
}

// Metrics exposes the server's registry (live; safe for concurrent reads).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.reg.Gauge("jrpm_serve_queue_depth").Set(float64(len(s.queue)))
				s.runJob(j)
			}
		}()
	}
}

// parseFaults validates a fault-plan spec.
func parseFaults(spec string) (faultinject.Plan, error) {
	return faultinject.Parse(spec)
}

// breakerKey derives the circuit-breaker key: the workload name, or a hash
// of the submitted source so resubmissions of the same program share a
// breaker.
func breakerKey(spec JobSpec) string {
	if spec.Workload != "" {
		return "workload:" + spec.Workload
	}
	h := fnv.New64a()
	io.WriteString(h, spec.Source)
	return fmt.Sprintf("src:%016x", h.Sum64())
}

// breakerFor returns (creating on first use) the breaker for a key.
func (s *Server) breakerFor(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[key]
	if b == nil {
		b = NewBreaker(key, s.cfg.Breaker)
		s.breakers[key] = b
	}
	return b
}

// validate normalizes and rejects a spec before it touches the queue, so
// admission errors are cheap and immediate.
func (s *Server) validate(spec *JobSpec) error {
	if (spec.Workload == "") == (spec.Source == "") {
		return errors.New("serve: exactly one of workload or source must be set")
	}
	if _, _, err := startRung(spec.Mode); err != nil {
		return err
	}
	if spec.NCPU < 0 || spec.NCPU > s.cfg.MaxNCPU {
		return fmt.Errorf("serve: ncpu %d out of range (1..%d)", spec.NCPU, s.cfg.MaxNCPU)
	}
	if spec.Faults != "" {
		if _, err := parseFaults(spec.Faults); err != nil {
			return err
		}
	}
	if spec.testAttempt == nil {
		if _, _, err := buildProgram(*spec); err != nil {
			return err // unknown workload or unparsable program
		}
	}
	if spec.Name == "" {
		if spec.Workload != "" {
			spec.Name = spec.Workload
		} else {
			spec.Name = "program"
		}
	}
	if spec.DeadlineMS <= 0 {
		spec.DeadlineMS = s.cfg.DefaultDeadline.Milliseconds()
	}
	if max := s.cfg.MaxDeadline.Milliseconds(); spec.DeadlineMS > max {
		spec.DeadlineMS = max
	}
	return nil
}

// Submit validates and enqueues a job, returning its queued view.
// Admission failures are classified: ErrDraining, ErrCircuitOpen and
// ErrQueueFull shed the job (503 at the HTTP layer); validation errors are
// the client's fault (400).
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	if err := s.validate(&spec); err != nil {
		return JobView{}, err
	}
	key := breakerKey(spec)
	b := s.breakerFor(key)
	s.reg.Counter("jrpm_serve_jobs_submitted_total").Inc()
	if !b.Admit() {
		s.reg.Counter("jrpm_serve_jobs_shed_total{reason=\"circuit_open\"}").Inc()
		return JobView{}, fmt.Errorf("%w: %s (retry after ~%d submissions)",
			ErrCircuitOpen, key, b.RetryAfterSubmissions())
	}
	j := &job{
		done: make(chan struct{}),
		bkey: key,
	}
	if spec.Trace {
		j.ring = obs.NewRingMasked(s.cfg.TraceCapacity, obs.MaskDefault)
	}
	now := time.Now()
	j.deadline = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	j.view = JobView{
		Name:        spec.Name,
		Spec:        spec,
		Status:      StatusQueued,
		SubmittedAt: now,
	}

	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		b.OnResult(false, true) // release a granted probe without judging it
		s.reg.Counter("jrpm_serve_jobs_shed_total{reason=\"draining\"}").Inc()
		return JobView{}, ErrDraining
	}
	j.view.ID = s.nextID.Add(1)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		b.OnResult(false, true) // ditto: queue-full is not a probe verdict
		s.reg.Counter("jrpm_serve_jobs_shed_total{reason=\"queue_full\"}").Inc()
		return JobView{}, ErrQueueFull
	}
	s.jobs[j.view.ID] = j
	s.evictLocked()
	s.mu.Unlock()
	s.reg.Gauge("jrpm_serve_queue_depth").Set(float64(len(s.queue)))
	if s.journal != nil {
		// Durability point: the job exists once this record is fsync'd. A
		// failed append is surfaced as a metric, not a shed — the job still
		// runs, it just won't survive a crash.
		if err := s.journal.append(journalRecord{Event: evAccepted, ID: j.view.ID, Spec: &spec}); err != nil {
			s.reg.Counter("jrpm_serve_journal_errors_total").Inc()
		}
	}
	return j.snapshot(), nil
}

// Checkpoint returns the latest encoded checkpoint of a job (codec
// checkpoint envelope). Available while the job runs and after it reaches a
// terminal status — a cancelled job's last checkpoint is exactly what fleet
// migration hands to the next replica.
func (s *Server) Checkpoint(id int64) ([]byte, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	b := j.checkpointBytes()
	if b == nil {
		return nil, fmt.Errorf("serve: job %d has no checkpoint", id)
	}
	return b, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
// Caller holds s.mu.
func (s *Server) evictLocked() {
	for len(s.finished) > s.cfg.MaxFinished {
		id := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, id)
	}
}

// noteFinished records a terminal job for bounded retention.
func (s *Server) noteFinished(id int64) {
	s.mu.Lock()
	s.finished = append(s.finished, id)
	s.evictLocked()
	s.mu.Unlock()
}

// Job returns a snapshot of the job's current state.
func (s *Server) Job(id int64) (JobView, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobView{}, ErrUnknownJob
	}
	return j.snapshot(), nil
}

// Jobs lists known jobs in submission order (bounded by the retention
// policy).
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	s.mu.Unlock()
	views := make([]JobView, len(out))
	for i, j := range out {
		views[i] = j.snapshot()
	}
	sortViews(views)
	return views
}

// Breakers lists per-workload circuit-breaker states, sorted by key.
func (s *Server) Breakers() []BreakerStats {
	s.mu.Lock()
	bs := make([]*Breaker, 0, len(s.breakers))
	for _, b := range s.breakers {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	out := make([]BreakerStats, len(bs))
	for i, b := range bs {
		out[i] = b.Stats()
	}
	sortBreakers(out)
	return out
}

// Wait blocks until the job reaches a terminal status or ctx expires, then
// returns the final (or current) view.
func (s *Server) Wait(ctx context.Context, id int64) (JobView, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobView{}, ErrUnknownJob
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation of a job. A queued job is cancelled
// immediately; a running job is interrupted on hydra's cancellation stride.
// Cancelling a terminal or unknown job reports false.
func (s *Server) Cancel(id int64) bool {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil || j.terminal() {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(ErrJobCancelled)
		return true
	}
	// Still queued: mark terminal now; the worker that eventually dequeues
	// it sees a terminal job and just publishes the outcome.
	j.cancelled(ErrJobCancelled)
	return true
}

// ResultBytes returns the canonical codec encoding of a finished job's full
// core.Result. Only jobs that reached StatusDone carry one; the fleet layer
// uses these bytes for caching and the conformance suite for byte-exact
// comparison.
func (s *Server) ResultBytes(id int64) ([]byte, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	if !j.terminal() {
		return nil, fmt.Errorf("serve: job %d still running; result available at completion", id)
	}
	b := j.wireBytes()
	if b == nil {
		return nil, fmt.Errorf("serve: job %d produced no result", id)
	}
	return b, nil
}

// Trace returns the job's flight-recorder events (nil ring when the job was
// not submitted with Trace).
func (s *Server) Trace(id int64) ([]obs.Event, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	if j.ring == nil {
		return nil, fmt.Errorf("serve: job %d was not submitted with trace=true", id)
	}
	if !j.terminal() {
		return nil, fmt.Errorf("serve: job %d still running; trace available at completion", id)
	}
	return j.ring.Events(), nil
}

// Doctor returns the job's speculation-doctor report (jobs submitted with
// diagnose=true whose speculative rung succeeded).
func (s *Server) Doctor(id int64) (*diagnose.Report, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrUnknownJob
	}
	if !j.snapshotSpec().Diagnose {
		return nil, fmt.Errorf("serve: job %d was not submitted with diagnose=true", id)
	}
	if !j.terminal() {
		return nil, fmt.Errorf("serve: job %d still running; diagnosis available at completion", id)
	}
	rep := j.doctorReport()
	if rep == nil {
		return nil, fmt.Errorf("serve: job %d produced no diagnosis (speculative rung did not complete)", id)
	}
	return rep, nil
}

// Ready reports whether the server accepts submissions.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && !s.draining
}

// QueueDepth reports the current queue occupancy.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Running reports the number of jobs currently executing.
func (s *Server) Running() int64 { return s.running.Load() }

// Shutdown drains the server: admissions stop immediately (readiness goes
// false, submissions shed with ErrDraining), queued and running jobs drain
// until ctx expires, then everything still in flight is cancelled with
// ErrShutdown and the workers are joined (jobs return within hydra's
// cancellation stride). Returns the number of jobs that were force-
// cancelled; 0 means a clean drain. Idempotent calls after the first return
// immediately.
func (s *Server) Shutdown(ctx context.Context) int {
	s.mu.Lock()
	if !s.started || s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return 0
	}
	s.draining = true
	close(s.queue) // workers exit once the backlog drains
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	forced := 0
	select {
	case <-drained:
	case <-ctx.Done():
		// Before cancelling, sweep a final checkpoint from every running job
		// so migration (or the journal) hands off the freshest safepoint
		// instead of one from the periodic schedule.
		s.sweepCheckpoints(500 * time.Millisecond)
		forced = s.forceCancelAll(ErrShutdown)
		<-drained
	}
	if s.journal != nil {
		s.journal.close()
	}
	s.reg.Gauge("jrpm_serve_queue_depth").Set(0)
	return forced
}

// sweepCheckpoints requests a checkpoint-now from every running job's
// controller and waits (bounded) for the deliveries. Best-effort: a job
// between safepoints longer than the budget just keeps its previous
// checkpoint.
func (s *Server) sweepCheckpoints(budget time.Duration) {
	s.mu.Lock()
	pending := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	type wait struct {
		j    *job
		from int64
	}
	var waits []wait
	for _, j := range pending {
		if j.terminal() {
			continue
		}
		cc := j.controller()
		if cc == nil {
			continue
		}
		_, seq := cc.Latest()
		cc.Request()
		waits = append(waits, wait{j: j, from: seq})
	}
	deadline := time.Now().Add(budget)
	for _, w := range waits {
		for time.Now().Before(deadline) && !w.j.terminal() {
			if cc := w.j.controller(); cc != nil {
				if _, seq := cc.Latest(); seq > w.from {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// forceCancelAll cancels every non-terminal job and returns how many were
// hit.
func (s *Server) forceCancelAll(cause error) int {
	s.mu.Lock()
	pending := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	n := 0
	for _, j := range pending {
		if j.terminal() {
			continue
		}
		n++
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(cause)
		} else {
			j.cancelled(cause)
		}
	}
	if n > 0 {
		s.reg.Counter("jrpm_serve_jobs_force_cancelled_total").Add(int64(n))
	}
	return n
}

// sortViews orders job views by id ascending.
func sortViews(v []JobView) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k-1].ID > v[k].ID; k-- {
			v[k-1], v[k] = v[k], v[k-1]
		}
	}
}

// sortBreakers orders breaker stats by key ascending.
func sortBreakers(b []BreakerStats) {
	for i := 1; i < len(b); i++ {
		for k := i; k > 0 && b[k-1].Key > b[k].Key; k-- {
			b[k-1], b[k] = b[k], b[k-1]
		}
	}
}
