package serve

import "sync"

// BreakerConfig parameterizes the per-workload circuit breaker. The breaker
// is the service-level analogue of the tls.Guard violation-storm guard and
// reuses its schedule: a workload that fails Trip consecutive jobs is
// "decertified" (the circuit opens), the next Backoff submissions are shed
// without consuming simulation capacity, then exactly one probe job is
// admitted. A successful probe closes the circuit; a failed probe doubles
// the backoff up to MaxBackoff, exactly like the guard's re-probe schedule.
//
// The schedule is counted in submissions, not wall-clock time, so breaker
// behaviour is deterministic under test and under replay.
type BreakerConfig struct {
	// Trip is the number of consecutive job failures that open the circuit
	// (<=0 = default 3).
	Trip int
	// Backoff is the number of shed submissions before the first probe; it
	// doubles after every failed probe (<=0 = default 4).
	Backoff int64
	// MaxBackoff caps the doubling (<=0 = default 64).
	MaxBackoff int64
}

// DefaultBreakerConfig mirrors the guard's default shape at service scale.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Trip: 3, Backoff: 4, MaxBackoff: 64}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.Trip <= 0 {
		c.Trip = d.Trip
	}
	if c.Backoff <= 0 {
		c.Backoff = d.Backoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = d.MaxBackoff
	}
	return c
}

// BreakerStats is one workload key's breaker state, exposed for reporting.
type BreakerStats struct {
	Key       string `json:"key"`
	Open      bool   `json:"open"`
	Failures  int64  `json:"failures"` // lifetime failed jobs
	Successes int64  `json:"successes"`
	Shed      int64  `json:"shed"`   // submissions rejected while open
	Trips     int64  `json:"trips"`  // times the circuit opened
	Probes    int64  `json:"probes"` // probe jobs admitted while open
	Recloses  int64  `json:"recloses"`
}

// Breaker tracks one key — a workload on jrpm-serve, a replica shard on the
// fleet router. It is exported so the fleet layer reuses the same tested
// schedule per shard. Calls are serialized by the server's
// submit path and the worker completion path, so it carries its own lock.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	BreakerStats
	streak  int   // consecutive failures while closed
	backoff int64 // shed submissions before the next probe
	wait    int64 // countdown of shed submissions remaining
	probing bool  // one probe job is in flight
}

func NewBreaker(key string, cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	b.Key = key
	return b
}

// Admit decides whether a submission for this key may proceed.
// While open, submissions are shed until the backoff expires; then exactly
// one probe is admitted (subsequent submissions shed until the probe
// resolves).
func (b *Breaker) Admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.Open {
		return true
	}
	if b.probing {
		b.Shed++
		return false // one probe at a time
	}
	if b.wait > 0 {
		b.wait--
		b.Shed++
		return false
	}
	b.probing = true
	b.Probes++
	return true
}

// OnResult records a finished job for this key. Cancellations are neutral:
// they resolve a probe (so the circuit does not stay wedged behind a probe
// job the client abandoned) but neither trip nor close the circuit.
func (b *Breaker) OnResult(success, cancelled bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cancelled {
		if b.probing {
			b.probing = false
			b.wait = b.backoff // re-arm the same backoff, no doubling
		}
		return
	}
	if success {
		b.Successes++
		b.streak = 0
		if b.Open {
			b.Open = false
			b.Recloses++
		}
		b.probing = false
		return
	}
	b.Failures++
	if b.Open {
		// Failed probe (or a straggler failure while open): back off harder.
		b.probing = false
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		b.wait = b.backoff
		return
	}
	b.streak++
	if b.streak >= b.cfg.Trip {
		b.Open = true
		b.Trips++
		b.backoff = b.cfg.Backoff
		b.wait = b.backoff
		b.probing = false
	}
}

// Stats snapshots the breaker state.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.BreakerStats
}

// RetryAfterSubmissions estimates how many more submissions will be shed
// before a probe is admitted (0 when closed or probe-ready). The HTTP layer
// maps it to a Retry-After hint.
func (b *Breaker) RetryAfterSubmissions() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.Open {
		return 0
	}
	if b.probing {
		return 1
	}
	return b.wait
}
