package jit

import (
	"fmt"
	"math"
	"sort"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/isa"
)

// reductionISAOp maps a bytecode accumulation operator to the native op used
// for local accumulation and the final merge.
func reductionISAOp(op bytecode.Op) isa.Op {
	switch op {
	case bytecode.IADD:
		return isa.ADD
	case bytecode.IMUL:
		return isa.MUL
	case bytecode.IMIN:
		return isa.MIN
	case bytecode.IMAX:
		return isa.MAX
	case bytecode.FADD:
		return isa.FADD
	case bytecode.FMUL:
		return isa.FMUL
	case bytecode.FMIN:
		return isa.FMIN
	case bytecode.FMAX:
		return isa.FMAX
	}
	panic(fmt.Sprintf("jit: not a reduction op: %s", op.Name()))
}

// reductionIdentity returns the identity element for a reduction operator.
func reductionIdentity(op bytecode.Op) int64 {
	switch op {
	case bytecode.IADD:
		return 0
	case bytecode.IMUL:
		return 1
	case bytecode.IMIN:
		return math.MaxInt64
	case bytecode.IMAX:
		return math.MinInt64
	case bytecode.FADD:
		return int64(math.Float64bits(0))
	case bytecode.FMUL:
		return int64(math.Float64bits(1))
	case bytecode.FMIN:
		return int64(math.Float64bits(math.Inf(1)))
	case bytecode.FMAX:
		return int64(math.Float64bits(math.Inf(-1)))
	}
	panic("jit: no identity")
}

// sortedKeys returns map keys in ascending order for deterministic codegen.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// locateInductorSites records the reset sites of resetable inductors. The
// body's own increment executes unchanged (it is a pure register operation
// on a register-allocated local); STL_INIT computes the start-of-iteration
// value from the hardware iteration register, and STL_EOI advances the
// register by the remaining (NCPU-1)×step so the CPU's next round-robin
// iteration starts correctly. A store to a resetable slot that is not part
// of the increment pattern is a reset site and triggers the forced
// communication of §4.2.3.
func (lw *lowerer) locateInductorSites(ctx *stlCtx) {
	code := lw.m.Code
	l := ctx.loop
	ctx.resetStore = map[int]int{}
	for _, s := range sortedKeys(ctx.resetAt) {
		step := ctx.indStep[s]
		for b := range l.Blocks {
			blk := lw.g.Blocks[b]
			for pc := blk.Start; pc < blk.End; pc++ {
				in := code[pc]
				if st, ok := cfg.IncrementStep(code, pc, s); ok && st == step {
					continue // the inductor increment, not a reset
				}
				if (in.Op == bytecode.STORE || in.Op == bytecode.IINC) && int(in.A) == s {
					ctx.resetStore[pc] = s
				}
			}
		}
	}
}

// incDominates reports whether slot s's inductor increment in the outer
// loop has already executed whenever control reaches block head (an inner
// loop's header). The classification pass guarantees exactly one
// increment-shaped store of the right step on the every-iteration path
// (dominating all back edges, not inside a nested loop); the increment has
// run iff that block dominates head.
func (lw *lowerer) incDominates(outer *stlCtx, s int, head int) bool {
	code := lw.m.Code
	l := outer.loop
	step := outer.indStep[s]
	for b := range l.Blocks {
		if inner := lw.g.InnermostLoopOf(b); inner != l {
			continue
		}
		blk := lw.g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			st, ok := cfg.IncrementStep(code, pc, s)
			if !ok || st != step {
				continue
			}
			dominating := true
			for _, e := range l.Ends {
				if !lw.g.Dominates(b, e) {
					dominating = false
					break
				}
			}
			if dominating {
				return lw.g.Dominates(b, head)
			}
		}
	}
	return false
}

// enclosingSTL finds the selected-loop context of the nearest ancestor of l.
func (lw *lowerer) enclosingSTL(l *cfg.Loop) *stlCtx {
	for p := l.Parent; p != -1; p = lw.g.Loops[p].Parent {
		if ctx := lw.stls[p]; ctx != nil {
			return ctx
		}
	}
	return nil
}

// emitLoopEntry emits whatever must precede a loop header in linear code:
// the sloop annotation in annotated mode, or the full STL prologue —
// Figure 4's master startup sequence plus Figure 5's STL_INIT — when the
// loop was selected for speculation.
func (lw *lowerer) emitLoopEntry(l *cfg.Loop) {
	switch {
	case lw.mode == ModeAnnotated:
		lw.b.Label(lw.lbl("pre", l.Index))
		lw.b.Emit(isa.Instr{Op: isa.SLOOP, Imm: lw.loopID(l), Imm2: int64(len(l.Written))})
	case lw.mode == ModeTLS && lw.stls[l.Index] != nil:
		lw.emitSTLPrologue(lw.stls[l.Index])
	}
}

// emitSTLPrologue emits the master-side setup, STLSTART, the restart target
// (STL_INIT) and the per-iteration top label for one selected loop.
func (lw *lowerer) emitSTLPrologue(ctx *stlCtx) {
	b := lw.b
	i := ctx.loop.Index
	b.Label(lw.lbl("pre", i))

	// Save every register-allocated local to its home slot: slaves and
	// restart handlers reload from here (software shadow register file,
	// §4.2.1).
	for slot := 0; slot < lw.m.NLocals; slot++ {
		if r := lw.place.reg[slot]; r != noReg {
			b.Sw(r, isa.FP, int64(slot))
		}
	}
	// Initialize reduction partials to the operator identity, one slot per
	// CPU (§4.2.5).
	for _, s := range sortedKeys(ctx.redBase) {
		op := ctx.plan.Reductions[s]
		b.Li(isa.AT, reductionIdentity(op))
		for k := 0; k < lw.ncpu; k++ {
			b.Sw(isa.AT, isa.FP, ctx.redBase[s]+int64(k))
		}
	}
	// Clear synchronizing locks (iteration 0 owns them, Figure 6).
	for _, s := range sortedKeys(ctx.lockOf) {
		b.Sw(isa.Zero, isa.FP, ctx.lockOf[s])
	}
	// Resetable inductor base iterations start at zero (§4.2.3).
	for _, s := range sortedKeys(ctx.resetAt) {
		b.Sw(isa.Zero, isa.FP, ctx.resetAt[s])
	}
	startOp := isa.STLSTART
	if ctx.plan.Inner {
		startOp = isa.STLSWSTART
		// Re-base the enclosing STL's inductors: the blanket save above
		// overwrote their homes with this (partial) outer iteration's
		// values, so record a new (home, base) pair. The outer plan's
		// inductors were reclassified base-relative ("resetable") by the
		// analyzer for exactly this reason. The base must name the
		// iteration whose *start-of-iteration* value the home slot now
		// holds: if the inductor's increment has already executed on the
		// path to this inner loop, the saved value belongs to the start of
		// the NEXT iteration, so the base is the current iteration + 1
		// (the same convention emitResetComm uses after a mid-iteration
		// write).
		if outer := lw.enclosingSTL(ctx.loop); outer != nil {
			if len(outer.resetAt) > 0 {
				b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2Iteration})
				b.OpImm(isa.ADDI, isa.AT, isa.T0, 1)
				for _, s := range sortedKeys(outer.resetAt) {
					base := isa.T0
					if lw.incDominates(outer, s, ctx.loop.Header) {
						base = isa.AT
					}
					b.Sw(base, isa.FP, outer.resetAt[s])
				}
			}
		}
	}
	b.Emit(isa.Instr{Op: startOp, Imm: ctx.stlID})

	// STL_INIT: every CPU (re)establishes its register state here; this is
	// also the violation restart target.
	b.Label(lw.lbl("init", i))
	for slot := 0; slot < lw.m.NLocals; slot++ {
		r := lw.place.reg[slot]
		if r == noReg {
			continue
		}
		if _, resetable := ctx.resetAt[slot]; resetable {
			// Resetable inductors recompute at the top of every iteration
			// (below): the per-iteration reads of the base value are what
			// let a reset by an older thread violate this one (§4.2.3).
			continue
		}
		if step, ok := ctx.indStep[slot]; ok {
			// inductor = home + iteration * step, computed from the
			// hardware iteration register (Figure 5).
			b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2Iteration})
			if step != 1 {
				b.Li(isa.AT, step)
				b.Op3(isa.MUL, isa.T0, isa.T0, isa.AT)
			}
			b.Lw(r, isa.FP, int64(slot))
			b.Op3(isa.ADD, r, r, isa.T0)
			continue
		}
		if base, ok := ctx.redBase[slot]; ok {
			// Reload this CPU's partial accumulator.
			b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2CPUID})
			b.Op3(isa.ADD, isa.T0, isa.T0, isa.FP)
			b.Lw(r, isa.T0, base)
			continue
		}
		if ctx.commSet[slot] {
			continue // communicated locals load at the top of every iteration
		}
		b.Lw(r, isa.FP, int64(slot)) // invariants and other locals
	}
	// Per-iteration top: reload communicated locals (Figure 5 base shape)
	// and recompute resetable inductors from (home, baseIter) — the reads
	// are exposed every iteration, so a reset communicates by violation.
	b.Label(lw.lbl("top", i))
	for _, s := range ctx.plan.Comm {
		if r := lw.place.reg[s]; r != noReg {
			b.Lw(r, isa.FP, int64(s))
		}
	}
	for _, s := range sortedKeys(ctx.resetAt) {
		r := lw.place.reg[s]
		step := ctx.indStep[s]
		b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2Iteration})
		b.Lw(isa.AT, isa.FP, ctx.resetAt[s])
		b.Op3(isa.SUB, isa.T0, isa.T0, isa.AT)
		if step != 1 {
			b.Li(isa.AT, step)
			b.Op3(isa.MUL, isa.T0, isa.T0, isa.AT)
		}
		b.Lw(r, isa.FP, int64(s))
		b.Op3(isa.ADD, r, r, isa.T0)
	}
	lw.registerSTLStubs(ctx)
}

// registerSTLStubs defers emission of the end-of-iteration and exit stubs.
func (lw *lowerer) registerSTLStubs(ctx *stlCtx) {
	i := ctx.loop.Index
	lw.stubs = append(lw.stubs, func() {
		b := lw.b
		// STL_EOI: communicate carried locals, bank reduction partials,
		// commit, advance inductors by step×NCPU, next iteration.
		b.Label(lw.lbl("eoi", i))
		for _, s := range ctx.plan.Comm {
			if r := lw.place.reg[s]; r != noReg {
				b.Sw(r, isa.FP, int64(s))
			}
		}
		for _, s := range sortedKeys(ctx.redBase) {
			r := lw.place.reg[s]
			b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2CPUID})
			b.Op3(isa.ADD, isa.T0, isa.T0, isa.FP)
			b.Sw(r, isa.T0, ctx.redBase[s])
		}
		b.Emit(isa.Instr{Op: isa.STLEOI})
		// The body's own increment already advanced the inductor by one
		// step; add the remaining (NCPU-1) steps to reach this CPU's next
		// round-robin iteration (Figure 5: "2×(4 CPUs) = 8"). Resetable
		// inductors skip this: they recompute at the loop top.
		for _, s := range sortedKeys(ctx.indStep) {
			if _, resetable := ctx.resetAt[s]; resetable {
				continue
			}
			if r := lw.place.reg[s]; r != noReg && lw.ncpu > 1 {
				b.OpImm(isa.ADDI, r, r, ctx.indStep[s]*int64(lw.ncpu-1))
			}
		}
		b.Jmp(lw.lbl("top", i))

		// STL_SHUTDOWN: the exiting thread becomes the master; reductions
		// merge the per-CPU partials into the architectural value.
		b.Label(lw.lbl("exit", i))
		endOp := isa.STLSHUTDOWN
		if ctx.plan.Inner {
			endOp = isa.STLSWEND
		}
		b.Emit(isa.Instr{Op: endOp})
		for _, s := range sortedKeys(ctx.redBase) {
			op := reductionISAOp(ctx.plan.Reductions[s])
			b.Lw(isa.T0, isa.FP, int64(s))
			for k := 0; k < lw.ncpu; k++ {
				b.Lw(isa.AT, isa.FP, ctx.redBase[s]+int64(k))
				b.Op3(op, isa.T0, isa.T0, isa.AT)
			}
			if r := lw.place.reg[s]; r != noReg {
				b.Move(r, isa.T0)
			}
			b.Sw(isa.T0, isa.FP, int64(s))
		}
		b.Jmp(fmt.Sprintf("bc_%d", ctx.exitTgt))
	})
}

// emitWait spins on the synchronizing lock until it equals the current
// iteration number (Figure 6, using lwnv so the spin cannot violate).
func (lw *lowerer) emitWait(ctx *stlCtx, slot int) {
	b := lw.b
	t := lw.freshTemp()
	u := lw.freshTemp()
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: t, Imm: isa.CP2Iteration})
	lw.stubSeq++
	lbl := fmt.Sprintf("wait_%d_%d", slot, lw.stubSeq)
	b.Label(lbl)
	b.Emit(isa.Instr{Op: isa.LWNV, Rd: u, Rs: isa.FP, Imm: ctx.lockOf[slot]})
	b.Br(isa.BNE, u, t, lbl)
	lw.freeTemp(t)
	lw.freeTemp(u)
}

// emitSignal writes the next iteration number to the lock, releasing the
// successor thread.
func (lw *lowerer) emitSignal(ctx *stlCtx, slot int) {
	b := lw.b
	t := lw.freshTemp()
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: t, Imm: isa.CP2Iteration})
	b.OpImm(isa.ADDI, t, t, 1)
	b.Sw(t, isa.FP, ctx.lockOf[slot])
	lw.freeTemp(t)
}

// emitResetComm implements the forced communication of a resetable inductor
// reset (§4.2.3): the new value is written to the home slot and the next
// iteration index becomes the new base, violating and restarting every
// later speculative thread so they recompute from the updated base.
func (lw *lowerer) emitResetComm(ctx *stlCtx, slot int) {
	b := lw.b
	r := lw.place.reg[slot]
	b.Sw(r, isa.FP, int64(slot))
	t := lw.freshTemp()
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: t, Imm: isa.CP2Iteration})
	b.OpImm(isa.ADDI, t, t, 1)
	b.Sw(t, isa.FP, ctx.resetAt[slot])
	lw.freeTemp(t)
}
