package jit

import (
	"fmt"
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	fe "jrpm/internal/frontend"
)

// Corner-case lowering tests surfaced by the progen conformance fuzzer:
// degenerate loop shapes must still compile in every mode and the TLS image
// must execute them with sequential semantics.

// runBothModes compiles and runs the program plain and TLS-speculative and
// requires identical output.
func runBothModes(t *testing.T, bp *bytecode.Program) {
	t.Helper()
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, selectLoop(bp, nil), 4)
	expectOutput(t, par, seq.Output...)
}

// TestEmptyLoopBodyTLS: a selected loop whose body is only the inductor
// increment. The STL consists of STL_INIT, the bounds check and STL_EOI —
// nothing else — and must still commit every iteration and exit cleanly.
func TestEmptyLoopBodyTLS(t *testing.T) {
	p := fe.NewProgram("empty")
	p.Func("main", nil, false).Body(
		fe.ForUp("i", fe.I(0), fe.I(40)),
		fe.Print(fe.L("i")),
	)
	runBothModes(t, p.MustBuild())
}

// TestSingleIterationLoopTLS: a selected loop that executes exactly once.
// Every slave speculates past the end immediately; only the head's
// iteration may commit, and the loop-exit state must be architectural.
func TestSingleIterationLoopTLS(t *testing.T) {
	p := fe.NewProgram("once")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(8))),
		fe.ForUp("i", fe.I(0), fe.I(1),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.I(99)),
		),
		fe.Print(fe.Idx(fe.L("a"), fe.I(0))),
		fe.Print(fe.L("i")),
	)
	runBothModes(t, p.MustBuild())
}

// TestZeroIterationLoopTLS: the loop bound is below the start, so the body
// never runs — the head discovers loop end on iteration 0.
func TestZeroIterationLoopTLS(t *testing.T) {
	p := fe.NewProgram("never")
	p.Func("main", nil, false).Body(
		fe.Set("s", fe.I(7)),
		fe.ForUp("i", fe.I(5), fe.I(5),
			fe.Set("s", fe.Add(fe.L("s"), fe.I(1))),
		),
		fe.Print(fe.L("s")),
	)
	runBothModes(t, p.MustBuild())
}

// TestMaxFrameSlots: far more locals than callee-saved registers, so most
// locals live only in their frame home slots. The spilled-local paths of
// the STL prologue (blanket save), STL_INIT reload and violation restart
// must all agree with sequential execution.
func TestMaxFrameSlots(t *testing.T) {
	const nlocals = 120
	p := fe.NewProgram("fat")
	var body []any
	for i := 0; i < nlocals; i++ {
		body = append(body, fe.Set(fmt.Sprintf("x%d", i), fe.I(int64(i*3+1))))
	}
	body = append(body, fe.Set("a", fe.NewArr(fe.I(64))))
	body = append(body, fe.ForUp("i", fe.I(0), fe.I(60),
		// Touch a spread of the locals each iteration.
		fe.SetIdx(fe.L("a"), fe.Rem(fe.L("i"), fe.I(64)),
			fe.Add(fe.L("x7"), fe.Add(fe.L("x63"), fe.L(fmt.Sprintf("x%d", nlocals-1))))),
	))
	sum := fe.Expr(fe.I(0))
	for i := 0; i < nlocals; i += 17 {
		sum = fe.Add(sum, fe.L(fmt.Sprintf("x%d", i)))
	}
	body = append(body, fe.Print(sum), fe.Print(fe.Idx(fe.L("a"), fe.I(5))))
	p.Func("main", nil, false).Body(body...)
	runBothModes(t, p.MustBuild())
}

// TestCompileDeterministic locks in the sorted-plan fix: a plan whose
// optimization maps hold several entries must compile to a byte-identical
// image every time, whatever order the map iterates. The kernel mixes
// inductors, a reduction, communicated carried locals and array traffic to
// populate every map the STL emitters sort.
func TestCompileDeterministic(t *testing.T) {
	p := fe.NewProgram("det")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(128))),
		fe.Set("sum", fe.I(0)),
		fe.Set("carryA", fe.I(1)),
		fe.Set("carryB", fe.I(2)),
		fe.ForUp("i", fe.I(0), fe.I(100),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.Rem(fe.L("i"), fe.I(128))))),
			fe.Set("carryA", fe.BAnd(fe.Add(fe.L("carryA"), fe.L("i")), fe.I(1023))),
			fe.Set("carryB", fe.BXor(fe.L("carryB"), fe.L("carryA"))),
			fe.SetIdx(fe.L("a"), fe.Rem(fe.L("carryB"), fe.I(128)), fe.L("i")),
		),
		fe.Print(fe.L("sum")),
		fe.Print(fe.L("carryB")),
	)
	bp := p.MustBuild()

	render := func() string {
		info := cfg.AnalyzeProgram(bp)
		img, _, err := Compile(bp, info, ModeTLS, selectLoop(bp, nil))
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		out := ""
		for _, m := range img.Methods {
			out += fmt.Sprintf("%s %d\n", m.Name, len(m.Code))
			for pc, in := range m.Code {
				out += fmt.Sprintf("%4d %+v\n", pc, in)
			}
		}
		return out
	}

	first := render()
	for round := 1; round < 6; round++ {
		if got := render(); got != first {
			t.Fatalf("round %d produced a different image (map-order dependent codegen)", round)
		}
	}
}
