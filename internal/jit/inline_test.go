package jit

import (
	"testing"

	"jrpm/internal/bytecode"
	fe "jrpm/internal/frontend"
)

// callHeavy builds a loop invoking a small helper per iteration.
func callHeavy() *bytecode.Program {
	p := fe.NewProgram("callheavy")
	mix := p.Func("mix", []string{"x", "y"}, true)
	mix.Body(fe.Ret(fe.BXor(fe.Mul(fe.L("x"), fe.I(3)), fe.Add(fe.L("y"), fe.I(7)))))
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(64))),
		fe.ForUp("i", fe.I(0), fe.I(64),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.CallE(mix, fe.L("i"), fe.Mul(fe.L("i"), fe.L("i")))),
		),
		fe.Set("s", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(64),
			fe.Set("s", fe.Add(fe.L("s"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("s")),
	)
	return p.MustBuild()
}

func TestInlineRemovesCallSites(t *testing.T) {
	bp := callHeavy()
	inl := Inline(bp)
	if err := bytecode.Verify(inl); err != nil {
		t.Fatalf("inlined program fails verification: %v", err)
	}
	for _, in := range inl.Methods[bp.Main].Code {
		if in.Op == bytecode.INVOKE {
			t.Fatal("small leaf call survived inlining")
		}
	}
	// The original program must be untouched.
	found := false
	for _, in := range bp.Methods[bp.Main].Code {
		if in.Op == bytecode.INVOKE {
			found = true
		}
	}
	if !found {
		t.Fatal("Inline mutated its input")
	}
}

func TestInlinePreservesSemantics(t *testing.T) {
	bp := callHeavy()
	plain := execute(t, bp, ModePlain, nil, 1)
	inl := execute(t, Inline(bp), ModePlain, nil, 1)
	if len(plain.Output) != len(inl.Output) || plain.Output[0] != inl.Output[0] {
		t.Fatalf("inlined output %v, original %v", inl.Output, plain.Output)
	}
	if inl.Clock >= plain.Clock {
		t.Errorf("inlining should remove call overhead: %d vs %d cycles", inl.Clock, plain.Clock)
	}
}

func TestInlineSkipsLargeAndRecursive(t *testing.T) {
	p := fe.NewProgram("skip")
	// Recursive: must not inline.
	rec := p.Func("rec", []string{"n"}, true)
	rec.Body(
		fe.If(fe.Le(fe.L("n"), fe.I(0)), fe.S(fe.Ret(fe.I(0))), nil),
		fe.Ret(fe.Add(fe.L("n"), fe.CallE(rec, fe.Sub(fe.L("n"), fe.I(1))))),
	)
	p.Func("main", nil, false).Body(
		fe.Print(fe.CallE(rec, fe.I(5))),
	)
	bp := p.MustBuild()
	inl := Inline(bp)
	if err := bytecode.Verify(inl); err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range inl.Methods[bp.Main].Code {
		if in.Op == bytecode.INVOKE {
			calls++
		}
	}
	if calls == 0 {
		t.Fatal("recursive callee was inlined")
	}
	m := execute(t, inl, ModePlain, nil, 1)
	if m.Output[0] != 15 {
		t.Fatalf("rec(5) = %v, want 15", m.Output)
	}
}

func TestInlineHandlesMultipleSitesAndBranches(t *testing.T) {
	p := fe.NewProgram("multi")
	abs := p.Func("absv", []string{"x"}, true)
	abs.Body(
		fe.If(fe.Lt(fe.L("x"), fe.I(0)), fe.S(fe.Ret(fe.Neg(fe.L("x")))), nil),
		fe.Ret(fe.L("x")),
	)
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.CallE(abs, fe.I(-4))),
		fe.Set("b", fe.CallE(abs, fe.I(9))),
		fe.Print(fe.Add(fe.L("a"), fe.L("b"))),
	)
	bp := p.MustBuild()
	inl := Inline(bp)
	if err := bytecode.Verify(inl); err != nil {
		t.Fatalf("verification: %v", err)
	}
	m := execute(t, inl, ModePlain, nil, 1)
	if m.Output[0] != 13 {
		t.Fatalf("output %v, want [13]", m.Output)
	}
}

func TestInlinedLoopJoinsCallerNest(t *testing.T) {
	// A helper containing a loop, called from a loop: after inlining the
	// helper loop is a nested loop of main and becomes analyzable.
	p := fe.NewProgram("nesting")
	fill := p.Func("fill", []string{"acc", "k"}, true)
	fill.Body(
		fe.ForUp("t", fe.I(0), fe.I(4),
			fe.Set("acc", fe.Add(fe.L("acc"), fe.Mul(fe.L("k"), fe.L("t")))),
		),
		fe.Ret(fe.L("acc")),
	)
	p.Func("main", nil, false).Body(
		fe.Set("s", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(20),
			fe.Set("s", fe.CallE(fill, fe.L("s"), fe.L("i"))),
		),
		fe.Print(fe.L("s")),
	)
	bp := p.MustBuild()
	inl := Inline(bp)
	if err := bytecode.Verify(inl); err != nil {
		t.Fatal(err)
	}
	plain := execute(t, bp, ModePlain, nil, 1)
	after := execute(t, inl, ModePlain, nil, 1)
	if plain.Output[0] != after.Output[0] {
		t.Fatalf("semantics changed: %v vs %v", plain.Output, after.Output)
	}
}
