package jit

import (
	"fmt"

	"jrpm/internal/isa"
)

// resetStack discards symbolic state and seeds depth d with canonical
// temporaries T0..T(d-1) (the invariant at every basic-block boundary).
func (lw *lowerer) resetStack(d int) {
	lw.stack = lw.stack[:0]
	for i := range lw.tempBusy {
		lw.tempBusy[i] = false
	}
	for i := 0; i < d; i++ {
		lw.tempBusy[i] = true
		lw.stack = append(lw.stack, val{kind: vTemp, reg: isa.T0 + isa.Reg(i)})
	}
}

// flushCanonical materializes every stack entry into its canonical register
// T_i so that control-flow merges observe a consistent machine state.
// Displaced temporaries move register-to-register (a parallel move, cycles
// broken through $at); constants, locals and spills rematerialize directly
// into their targets — no memory round trips.
func (lw *lowerer) flushCanonical() {
	// Fast path: already canonical.
	canonical := true
	for i, v := range lw.stack {
		if v.kind != vTemp || v.reg != isa.T0+isa.Reg(i) {
			canonical = false
			break
		}
	}
	if canonical {
		return
	}

	// Phase 1: the register-to-register parallel move for displaced temps.
	moves := map[isa.Reg]isa.Reg{} // target <- source
	for i, v := range lw.stack {
		want := isa.T0 + isa.Reg(i)
		if v.kind == vTemp && v.reg != want {
			moves[want] = v.reg
		}
	}
	isSource := func(r isa.Reg) bool {
		for _, src := range moves {
			if src == r {
				return true
			}
		}
		return false
	}
	for len(moves) > 0 {
		progress := false
		for tgt, src := range moves {
			if !isSource(tgt) {
				lw.b.Move(tgt, src)
				delete(moves, tgt)
				progress = true
			}
		}
		if !progress {
			// Pure cycle: route one element through $at.
			for tgt, src := range moves {
				lw.b.Move(isa.AT, src)
				moves[tgt] = isa.AT
				break
			}
		}
	}

	// Phase 2: rematerialize everything else straight into its target.
	for i, v := range lw.stack {
		want := isa.T0 + isa.Reg(i)
		switch v.kind {
		case vTemp: // moved above (or already in place)
		case vConst:
			lw.b.Li(want, v.c)
		case vLocal:
			if r := lw.place.reg[v.slot]; r != noReg {
				lw.b.Move(want, r)
			} else {
				lw.b.Lw(want, isa.FP, int64(v.slot))
			}
		case vSpill:
			lw.b.Lw(want, isa.FP, v.spill)
			lw.freeSpillSlot(v.spill)
		}
		lw.stack[i] = val{kind: vTemp, reg: want}
	}
	for i := range lw.tempBusy {
		lw.tempBusy[i] = i < len(lw.stack)
	}
}

// localRead returns a register holding local slot's current value. For
// memory-resident locals the value loads into scratch (which must be free
// for the caller's use).
func (lw *lowerer) localRead(slot int, scratch isa.Reg) isa.Reg {
	if r := lw.place.reg[slot]; r != noReg {
		return r
	}
	lw.b.Lw(scratch, isa.FP, int64(slot))
	return scratch
}

// allocSpill grabs a spill slot from the free list or extends the area.
func (lw *lowerer) allocSpill() int64 {
	if n := len(lw.freeSpill); n > 0 {
		s := lw.freeSpill[n-1]
		lw.freeSpill = lw.freeSpill[:n-1]
		return s
	}
	s := lw.spillBase + lw.spillMax
	lw.spillMax++
	return s
}

func (lw *lowerer) freeSpillSlot(s int64) { lw.freeSpill = append(lw.freeSpill, s) }

// freshTemp returns a free temporary register, spilling the oldest stack
// temporary if all six are busy.
func (lw *lowerer) freshTemp() isa.Reg {
	for i, busy := range lw.tempBusy {
		if !busy {
			lw.tempBusy[i] = true
			return isa.T0 + isa.Reg(i)
		}
	}
	for i := range lw.stack {
		if lw.stack[i].kind == vTemp {
			slot := lw.allocSpill()
			lw.b.Sw(lw.stack[i].reg, isa.FP, slot)
			r := lw.stack[i].reg
			lw.stack[i] = val{kind: vSpill, spill: slot}
			return r // stays busy, new owner
		}
	}
	panic("jit: out of temporaries with nothing to spill")
}

func (lw *lowerer) freeTemp(r isa.Reg) {
	if r >= isa.T0 && r <= isa.T5 {
		lw.tempBusy[r-isa.T0] = false
	}
}

// push/pop manage the symbolic stack.
func (lw *lowerer) push(v val) { lw.stack = append(lw.stack, v) }

func (lw *lowerer) pushTemp(r isa.Reg) { lw.push(val{kind: vTemp, reg: r}) }

func (lw *lowerer) pushConst(c int64) { lw.push(val{kind: vConst, c: c}) }

func (lw *lowerer) pop() val {
	if len(lw.stack) == 0 {
		panic("jit: symbolic stack underflow (verifier should have caught this)")
	}
	v := lw.stack[len(lw.stack)-1]
	lw.stack = lw.stack[:len(lw.stack)-1]
	return v
}

// use materializes a popped value into a register. owned reports whether the
// register belongs to the expression (may be reused/freed); S-registers of
// locals are not owned.
func (lw *lowerer) use(v val) (isa.Reg, bool) {
	switch v.kind {
	case vTemp:
		return v.reg, true
	case vConst:
		r := lw.freshTemp()
		lw.b.Li(r, v.c)
		return r, true
	case vLocal:
		if r := lw.place.reg[v.slot]; r != noReg {
			return r, false
		}
		r := lw.freshTemp()
		lw.b.Lw(r, isa.FP, int64(v.slot))
		return r, true
	case vSpill:
		r := lw.freshTemp()
		lw.b.Lw(r, isa.FP, v.spill)
		lw.freeSpillSlot(v.spill)
		return r, true
	}
	panic(fmt.Sprintf("jit: bad value kind %d", v.kind))
}

// useInto materializes a popped value directly into a specific register
// (used for argument and result moves; reg must not be a busy temporary).
func (lw *lowerer) useInto(v val, reg isa.Reg) {
	switch v.kind {
	case vTemp:
		if v.reg != reg {
			lw.b.Move(reg, v.reg)
		}
		lw.freeTemp(v.reg)
	case vConst:
		lw.b.Li(reg, v.c)
	case vLocal:
		if r := lw.place.reg[v.slot]; r != noReg {
			lw.b.Move(reg, r)
		} else {
			lw.b.Lw(reg, isa.FP, int64(v.slot))
		}
	case vSpill:
		lw.b.Lw(reg, isa.FP, v.spill)
		lw.freeSpillSlot(v.spill)
	}
}

// binop lowers a two-operand computation, reusing an owned operand register
// for the result when possible.
func (lw *lowerer) binop(op isa.Op) {
	rhs := lw.pop()
	lhs := lw.pop()
	// Constant folding.
	if lhs.kind == vConst && rhs.kind == vConst {
		if c, ok := foldConst(op, lhs.c, rhs.c); ok {
			lw.pushConst(c)
			return
		}
	}
	// Immediate forms for integer ops with a constant right operand.
	if rhs.kind == vConst {
		if iop, ok := immediateForm(op); ok {
			ra, oa := lw.use(lhs)
			rd := ra
			if !oa {
				rd = lw.freshTemp()
			}
			imm := rhs.c
			if op == isa.SUB {
				imm = -imm
			}
			lw.b.OpImm(iop, rd, ra, imm)
			lw.pushTemp(rd)
			return
		}
	}
	ra, oa := lw.use(lhs)
	rb, ob := lw.use(rhs)
	var rd isa.Reg
	switch {
	case oa:
		rd = ra
		if ob {
			lw.freeTemp(rb)
		}
	case ob:
		rd = rb
	default:
		rd = lw.freshTemp()
	}
	lw.b.Op3(op, rd, ra, rb)
	lw.pushTemp(rd)
}

// unop lowers a one-operand computation.
func (lw *lowerer) unop(op isa.Op) {
	v := lw.pop()
	ra, oa := lw.use(v)
	rd := ra
	if !oa {
		rd = lw.freshTemp()
	}
	lw.b.Op2(op, rd, ra)
	lw.pushTemp(rd)
}

func immediateForm(op isa.Op) (isa.Op, bool) {
	switch op {
	case isa.ADD, isa.SUB:
		return isa.ADDI, true
	case isa.AND:
		return isa.ANDI, true
	case isa.OR:
		return isa.ORI, true
	case isa.XOR:
		return isa.XORI, true
	case isa.SLL:
		return isa.SLLI, true
	case isa.SRL:
		return isa.SRLI, true
	case isa.SRA:
		return isa.SRAI, true
	}
	return 0, false
}

func foldConst(op isa.Op, a, b int64) (int64, bool) {
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.MUL:
		return a * b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.SLL:
		return a << uint64(b&63), true
	case isa.SRL:
		return int64(uint64(a) >> uint64(b&63)), true
	case isa.SRA:
		return a >> uint64(b&63), true
	case isa.DIV:
		if b != 0 {
			return a / b, true
		}
	case isa.REM:
		if b != 0 {
			return a % b, true
		}
	case isa.MIN:
		if a < b {
			return a, true
		}
		return b, true
	case isa.MAX:
		if a > b {
			return a, true
		}
		return b, true
	}
	return 0, false
}
