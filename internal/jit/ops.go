package jit

import (
	"fmt"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/isa"
)

// intOpMap maps pure two-operand integer bytecodes to native ops.
var intOpMap = map[bytecode.Op]isa.Op{
	bytecode.IADD: isa.ADD, bytecode.ISUB: isa.SUB, bytecode.IMUL: isa.MUL,
	bytecode.IDIV: isa.DIV, bytecode.IREM: isa.REM,
	bytecode.IAND: isa.AND, bytecode.IOR: isa.OR, bytecode.IXOR: isa.XOR,
	bytecode.ISHL: isa.SLL, bytecode.ISHR: isa.SRA, bytecode.IUSHR: isa.SRL,
	bytecode.IMIN: isa.MIN, bytecode.IMAX: isa.MAX,
	bytecode.FADD: isa.FADD, bytecode.FSUB: isa.FSUB,
	bytecode.FMUL: isa.FMUL, bytecode.FDIV: isa.FDIV,
	bytecode.FMIN: isa.FMIN, bytecode.FMAX: isa.FMAX,
}

// unOpMap maps one-operand bytecodes to native ops.
var unOpMap = map[bytecode.Op]isa.Op{
	bytecode.FNEG: isa.FNEG, bytecode.FABS: isa.FABS,
	bytecode.F2I: isa.CVTFI, bytecode.I2F: isa.CVTIF,
	bytecode.FSQRT: isa.FSQRT, bytecode.FSIN: isa.FSIN, bytecode.FCOS: isa.FCOS,
	bytecode.FEXP: isa.FEXP, bytecode.FLOG: isa.FLOG,
}

// cmpBranchMap maps two-operand compare branches to native branch ops.
var cmpBranchMap = map[bytecode.Op]isa.Op{
	bytecode.IFICMPEQ: isa.BEQ, bytecode.IFICMPNE: isa.BNE,
	bytecode.IFICMPLT: isa.BLT, bytecode.IFICMPGE: isa.BGE,
	bytecode.IFICMPGT: isa.BGT, bytecode.IFICMPLE: isa.BLE,
}

// zeroBranchMap maps compare-to-zero branches.
var zeroBranchMap = map[bytecode.Op]isa.Op{
	bytecode.IFEQ: isa.BEQ, bytecode.IFNE: isa.BNE,
	bytecode.IFLT: isa.BLT, bytecode.IFGE: isa.BGE,
	bytecode.IFGT: isa.BGT, bytecode.IFLE: isa.BLE,
}

// ctxAt returns the innermost selected-loop context containing pc, if any.
func (lw *lowerer) ctxAt(pc int) *stlCtx {
	for _, l := range lw.enclosingLoops(lw.g.BlockAt(pc)) {
		if ctx := lw.stls[l.Index]; ctx != nil {
			return ctx
		}
	}
	return nil
}

// interestingCarried reports whether loop l carries slot in a way the
// profiler must observe: carried AND not already removed by a statically
// decided optimization (inductors, resetable inductors and reductions are
// computed locally per CPU, so the analyzer discounts their dependency arcs
// without ever looking at them). This is the paper's "compiler
// optimizations to eliminate unnecessary annotations" (§3.2) — it is what
// keeps the average profiling slowdown below 10%: ordinary loop counters
// and accumulators need no lwl/swl at all.
func interestingCarried(l *cfg.Loop, slot int) bool {
	carried := false
	for _, c := range l.Carried {
		if c == slot {
			carried = true
		}
	}
	if !carried {
		return false
	}
	if _, ok := l.Inductors[slot]; ok {
		return false
	}
	if _, ok := l.Resetable[slot]; ok {
		return false
	}
	if _, ok := l.Reductions[slot]; ok {
		return false
	}
	return true
}

// annotateLoad reports whether a LOAD of slot at pc needs an lwl
// annotation: some enclosing loop must carry it un-optimized.
func (lw *lowerer) annotateLoad(pc, slot int) bool {
	for _, l := range lw.enclosingLoops(lw.g.BlockAt(pc)) {
		if interestingCarried(l, slot) {
			return true
		}
	}
	return false
}

// annotateStore reports whether a STORE/IINC of slot needs an swl
// annotation. Stores must be annotated more broadly than loads: a store
// KILLS earlier timestamps, so if any loop in the method annotates the
// slot's loads, every store must refresh the timestamp — including
// re-initializations outside any loop of this method, which are inside a
// caller's loop whenever the method is invoked from a loop body. A missed
// kill makes an enclosing profiling bank report a false inter-thread
// dependency.
func (lw *lowerer) annotateStore(pc, slot int) bool {
	for _, l := range lw.g.Loops {
		if interestingCarried(l, slot) {
			return true
		}
	}
	return false
}

// localWrite stores a popped value into a local variable.
func (lw *lowerer) localWrite(slot int, v val) {
	if r := lw.place.reg[slot]; r != noReg {
		lw.useInto(v, r)
		return
	}
	rv, owned := lw.use(v)
	lw.b.Sw(rv, isa.FP, int64(slot))
	if owned {
		lw.freeTemp(rv)
	}
}

// lower translates one bytecode instruction.
func (lw *lowerer) lower(pc int) error {
	in := lw.m.Code[pc]
	b := lw.b
	ctx := lw.ctxAt(pc)
	if ctx != nil {
		if s, ok := ctx.waitPC[pc]; ok {
			lw.emitWait(ctx, s)
		}
	}
	ann := lw.mode == ModeAnnotated

	switch in.Op {
	case bytecode.NOP:

	case bytecode.CONST, bytecode.FCONST:
		lw.pushConst(in.A)

	case bytecode.POP:
		v := lw.pop()
		if v.kind == vTemp {
			lw.freeTemp(v.reg)
		} else if v.kind == vSpill {
			lw.freeSpillSlot(v.spill)
		}

	case bytecode.DUP:
		v := lw.pop()
		if v.kind == vTemp {
			r := lw.freshTemp()
			b.Move(r, v.reg)
			lw.push(v)
			lw.pushTemp(r)
		} else {
			lw.push(v)
			lw.push(v)
		}

	case bytecode.LOAD:
		if ann && lw.annotateLoad(pc, int(in.A)) {
			b.Emit(isa.Instr{Op: isa.LWL, Imm: in.A})
		}
		lw.push(val{kind: vLocal, slot: int(in.A)})

	case bytecode.STORE:
		if ann && lw.annotateStore(pc, int(in.A)) {
			b.Emit(isa.Instr{Op: isa.SWL, Imm: in.A})
		}
		v := lw.pop()
		lw.localWrite(int(in.A), v)
		if ctx != nil {
			if s, ok := ctx.resetStore[pc]; ok {
				lw.emitResetComm(ctx, s)
			}
		}

	case bytecode.IINC:
		if ann && lw.annotateLoad(pc, int(in.A)) {
			b.Emit(isa.Instr{Op: isa.LWL, Imm: in.A})
		}
		if ann && lw.annotateStore(pc, int(in.A)) {
			b.Emit(isa.Instr{Op: isa.SWL, Imm: in.A})
		}
		slot := int(in.A)
		if r := lw.place.reg[slot]; r != noReg {
			b.OpImm(isa.ADDI, r, r, in.B)
		} else {
			t := lw.freshTemp()
			b.Lw(t, isa.FP, int64(slot))
			b.OpImm(isa.ADDI, t, t, in.B)
			b.Sw(t, isa.FP, int64(slot))
			lw.freeTemp(t)
		}
		if ctx != nil {
			if s, ok := ctx.resetStore[pc]; ok {
				lw.emitResetComm(ctx, s)
			}
		}

	case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IDIV,
		bytecode.IREM, bytecode.IAND, bytecode.IOR, bytecode.IXOR,
		bytecode.ISHL, bytecode.ISHR, bytecode.IUSHR,
		bytecode.IMIN, bytecode.IMAX,
		bytecode.FADD, bytecode.FSUB, bytecode.FMUL, bytecode.FDIV,
		bytecode.FMIN, bytecode.FMAX:
		lw.binop(intOpMap[in.Op])

	case bytecode.INEG:
		// 0 - x
		v := lw.pop()
		rv, ov := lw.use(v)
		rd := rv
		if !ov {
			rd = lw.freshTemp()
		}
		b.Op3(isa.SUB, rd, isa.Zero, rv)
		lw.pushTemp(rd)

	case bytecode.FNEG, bytecode.FABS, bytecode.F2I, bytecode.I2F,
		bytecode.FSQRT, bytecode.FSIN, bytecode.FCOS, bytecode.FEXP,
		bytecode.FLOG:
		lw.unop(unOpMap[in.Op])

	case bytecode.GOTO:
		lw.flushCanonical()
		b.Jmp(lw.jumpLabel(pc, int(in.A)))

	case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE,
		bytecode.IFGT, bytecode.IFLE:
		lw.flushCanonical()
		v := lw.pop()
		r, _ := v.reg, v.kind // canonical: vTemp
		b.Br(zeroBranchMap[in.Op], r, isa.Zero, lw.jumpLabel(pc, int(in.A)))
		lw.freeTemp(r)

	case bytecode.IFICMPEQ, bytecode.IFICMPNE, bytecode.IFICMPLT,
		bytecode.IFICMPGE, bytecode.IFICMPGT, bytecode.IFICMPLE:
		lw.flushCanonical()
		rhs := lw.pop()
		lhs := lw.pop()
		b.Br(cmpBranchMap[in.Op], lhs.reg, rhs.reg, lw.jumpLabel(pc, int(in.A)))
		lw.freeTemp(lhs.reg)
		lw.freeTemp(rhs.reg)

	case bytecode.IFFCMPLT, bytecode.IFFCMPGE:
		lw.flushCanonical()
		rhs := lw.pop()
		lhs := lw.pop()
		b.Op3(isa.FSLT, lhs.reg, lhs.reg, rhs.reg)
		br := isa.BNE // taken when lhs < rhs
		if in.Op == bytecode.IFFCMPGE {
			br = isa.BEQ
		}
		b.Br(br, lhs.reg, isa.Zero, lw.jumpLabel(pc, int(in.A)))
		lw.freeTemp(lhs.reg)
		lw.freeTemp(rhs.reg)

	case bytecode.NEW:
		r := lw.freshTemp()
		b.Emit(isa.Instr{Op: isa.ALLOC, Rd: r, Imm: in.A})
		lw.pushTemp(r)

	case bytecode.NEWARRAY:
		v := lw.pop()
		rv, ov := lw.use(v)
		rd := rv
		if !ov {
			rd = lw.freshTemp()
		}
		b.Emit(isa.Instr{Op: isa.ALLOCARR, Rd: rd, Rs: rv})
		lw.pushTemp(rd)

	case bytecode.GETFIELD:
		ref := lw.pop()
		rr, or := lw.use(ref)
		b.Emit(isa.Instr{Op: isa.CHKNULL, Rs: rr})
		rd := rr
		if !or {
			rd = lw.freshTemp()
		}
		b.Lw(rd, rr, bytecode.ObjectHeaderWords+in.A)
		lw.pushTemp(rd)

	case bytecode.PUTFIELD:
		v := lw.pop()
		ref := lw.pop()
		rr, or := lw.use(ref)
		b.Emit(isa.Instr{Op: isa.CHKNULL, Rs: rr})
		rv, ov := lw.use(v)
		b.Sw(rv, rr, bytecode.ObjectHeaderWords+in.A)
		if or {
			lw.freeTemp(rr)
		}
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.GETSTATIC:
		r := lw.freshTemp()
		b.Lw(r, isa.GP, in.A)
		lw.pushTemp(r)

	case bytecode.PUTSTATIC:
		v := lw.pop()
		rv, ov := lw.use(v)
		b.Sw(rv, isa.GP, in.A)
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.ALOAD:
		idx := lw.pop()
		ref := lw.pop()
		rr, or := lw.use(ref)
		ri, oi := lw.use(idx)
		b.Emit(isa.Instr{Op: isa.CHKIDX, Rs: rr, Rt: ri})
		var rd isa.Reg
		switch {
		case oi:
			rd = ri
			if or {
				lw.freeTemp(rr)
			}
		case or:
			rd = rr
		default:
			rd = lw.freshTemp()
		}
		b.Op3(isa.ADD, rd, rr, ri)
		b.Lw(rd, rd, bytecode.ArrayHeaderWords)
		lw.pushTemp(rd)

	case bytecode.ASTORE:
		v := lw.pop()
		idx := lw.pop()
		ref := lw.pop()
		rr, or := lw.use(ref)
		ri, oi := lw.use(idx)
		b.Emit(isa.Instr{Op: isa.CHKIDX, Rs: rr, Rt: ri})
		var ra isa.Reg
		if oi {
			ra = ri
		} else if or {
			ra = rr
		} else {
			ra = lw.freshTemp()
		}
		b.Op3(isa.ADD, ra, rr, ri)
		rv, ov := lw.use(v)
		b.Sw(rv, ra, bytecode.ArrayHeaderWords)
		lw.freeTemp(ra)
		if or && ra != rr {
			lw.freeTemp(rr)
		}
		if oi && ra != ri {
			lw.freeTemp(ri)
		}
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.ARRLEN:
		ref := lw.pop()
		rr, or := lw.use(ref)
		b.Emit(isa.Instr{Op: isa.CHKNULL, Rs: rr})
		rd := rr
		if !or {
			rd = lw.freshTemp()
		}
		b.Lw(rd, rr, 2)
		lw.pushTemp(rd)

	case bytecode.INVOKE:
		callee := lw.prog.Method(int(in.A))
		n := callee.NArgs
		if n > len(lw.stack) {
			return fmt.Errorf("invoke arity underflow")
		}
		args := make([]val, n)
		copy(args, lw.stack[len(lw.stack)-n:])
		lw.stack = lw.stack[:len(lw.stack)-n]
		// Spill surviving temporaries: T and A registers are caller-saved.
		for i := range lw.stack {
			if lw.stack[i].kind == vTemp {
				slot := lw.allocSpill()
				b.Sw(lw.stack[i].reg, isa.FP, slot)
				lw.freeTemp(lw.stack[i].reg)
				lw.stack[i] = val{kind: vSpill, spill: slot}
			}
		}
		for i, a := range args {
			lw.useInto(a, isa.A0+isa.Reg(i))
		}
		b.Call(int(in.A))
		if callee.HasResult {
			r := lw.freshTemp()
			b.Move(r, isa.V0)
			lw.pushTemp(r)
		}

	case bytecode.RETURN:
		lw.emitEloopsForEscape(pc)
		lw.epilogue()
		b.Emit(isa.Instr{Op: isa.RET})

	case bytecode.IRETURN:
		v := lw.pop()
		lw.useInto(v, isa.V0)
		lw.emitEloopsForEscape(pc)
		lw.epilogue()
		b.Emit(isa.Instr{Op: isa.RET})

	case bytecode.MONITORENTER:
		v := lw.pop()
		rv, ov := lw.use(v)
		b.Emit(isa.Instr{Op: isa.MONENTER, Rs: rv})
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.MONITOREXIT:
		v := lw.pop()
		rv, ov := lw.use(v)
		b.Emit(isa.Instr{Op: isa.MONEXIT, Rs: rv})
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.ATHROW:
		v := lw.pop()
		rv, ov := lw.use(v)
		b.Emit(isa.Instr{Op: isa.THROW, Rs: rv})
		if ov {
			lw.freeTemp(rv)
		}

	case bytecode.PRINT:
		v := lw.pop()
		rv, ov := lw.use(v)
		b.Emit(isa.Instr{Op: isa.IOPUT, Rs: rv})
		if ov {
			lw.freeTemp(rv)
		}

	default:
		return fmt.Errorf("unimplemented bytecode %s", in.Op.Name())
	}

	if ctx != nil {
		if s, ok := ctx.sigPC[pc]; ok {
			lw.emitSignal(ctx, s)
		}
	}
	return nil
}

// emitEloopsForEscape closes profiling banks for every loop a return exits
// (annotated mode only).
func (lw *lowerer) emitEloopsForEscape(pc int) {
	if lw.mode != ModeAnnotated {
		return
	}
	for _, l := range lw.enclosingLoops(lw.g.BlockAt(pc)) {
		lw.b.Emit(isa.Instr{Op: isa.ELOOP, Imm: lw.loopID(l)})
	}
}
