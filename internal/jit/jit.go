// Package jit implements microJIT — Jrpm's dynamic compiler (paper §4).
//
// The compiler lowers bytecode to the native ISA through a symbolic operand
// stack with on-demand temporaries, assigns the hottest local variables to
// callee-saved registers (every local also has a frame "home" slot), and
// emits one of three code shapes:
//
//   - ModePlain: ordinary sequential code (the baseline measurement).
//   - ModeAnnotated: sequential code instrumented with the TEST annotation
//     instructions of Table 2 (sloop/eoi/eloop around every natural loop,
//     lwl/swl on interesting local variable accesses) — Figure 1 step 1.
//   - ModeTLS: code recompiled with selected loops as speculative thread
//     loops — Figure 1 step 4 — applying the §4.2 optimizations recorded in
//     the per-loop Plan: loop-invariant register allocation with
//     reload-on-restart, non-communicating (and resetable) loop inductors
//     computed from the hardware iteration register, thread synchronizing
//     locks (lwnv spin), per-CPU reduction accumulation with a merge at loop
//     exit, multilevel decomposition switches, and hoisted startup/shutdown.
package jit

import (
	"fmt"
	"sort"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/faultinject"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
)

// Mode selects the compilation shape.
type Mode int

// Compilation modes.
const (
	ModePlain Mode = iota
	ModeAnnotated
	ModeTLS
)

// Plan records the decomposition analyzer's decisions for one selected loop.
type Plan struct {
	LoopID   int64 // cfg global loop id
	MethodID int
	Loop     int // per-method loop index

	// Local variable treatment inside the STL.
	Comm       []int         // carried locals communicated via the stack
	Inductors  map[int]int64 // slot → step (non-communicating inductors)
	Resetable  map[int]int64 // slot → step (resetable inductors, §4.2.3)
	Reductions map[int]bytecode.Op
	SyncSlots  []int // locals protected by a thread synchronizing lock

	// InnerSwitch lists global loop ids compiled as multilevel inner STLs
	// inside this loop (§4.2.6); each must have its own Plan with Inner set.
	InnerSwitch []int64
	Inner       bool // this plan is a multilevel inner STL
	Hoisted     bool // hoisted startup/shutdown (§4.2.7)
}

// Selection is the analyzer's full output: plans keyed by global loop id.
type Selection struct {
	Plans map[int64]*Plan
	// NCPU is the processor count the STL code is specialized for (the
	// non-communicating inductor stride and the number of reduction partial
	// slots depend on it). Zero selects the 4-CPU Hydra.
	NCPU int
}

// Report summarizes a compilation for the Figure 9 overhead accounting.
type Report struct {
	Cycles   int64 // modelled compile time in machine cycles
	Methods  int
	STLs     int
	CodeSize int
}

// Compile lowers a whole program. sel may be nil except in ModeTLS.
func Compile(p *bytecode.Program, info *cfg.ProgramInfo, mode Mode, sel *Selection) (*hydra.Image, *Report, error) {
	return CompileWithFaults(p, info, mode, sel, nil)
}

// CompileWithFaults is Compile with a fault injector attached: the injector
// may declare a deterministic lowering failure for a method (channel "jit"),
// which surfaces as an ErrLowering-wrapped error exactly like a genuine
// compiler defect. A nil injector (or a zero jit rate) never fires.
func CompileWithFaults(p *bytecode.Program, info *cfg.ProgramInfo, mode Mode, sel *Selection, inj *faultinject.Injector) (*hydra.Image, *Report, error) {
	if info == nil {
		info = cfg.AnalyzeProgram(p)
	}
	img := &hydra.Image{
		Name:    p.Name,
		STLs:    map[int64]*hydra.STLDesc{},
		Main:    p.Main,
		Statics: p.Statics,
	}
	rep := &Report{}
	nextSTL := int64(1)
	for mi, m := range p.Methods {
		if inj.JITFailure() {
			return nil, nil, fmt.Errorf("jit: method %q: %w: injected lowering failure", m.Name, ErrLowering)
		}
		lw := newLowerer(p, info.Graphs[mi], m, mode, sel, img, &nextSTL)
		hm, err := safeCompile(lw)
		if err != nil {
			return nil, nil, fmt.Errorf("jit: method %q: %w", m.Name, err)
		}
		hm.ID = mi
		img.Methods = append(img.Methods, hm)
		// microJIT cost model: a fast dataflow compiler, a few hundred
		// cycles of fixed work plus per-bytecode lowering cost; STL
		// recompilation adds per-loop work.
		rep.Cycles += 600 + 130*int64(len(m.Code))
		rep.CodeSize += len(hm.Code)
	}
	rep.Methods = len(p.Methods)
	rep.STLs = len(img.STLs)
	rep.Cycles += int64(rep.STLs) * 900
	return img, rep, nil
}

// safeCompile runs one method lowering with a recover wrapper: the lowerer's
// internal invariant panics (symbolic stack underflow, temporary exhaustion,
// malformed selected loops) become ErrLowering-wrapped errors so a compiler
// defect degrades to a compilation failure instead of crashing the process.
func safeCompile(lw *lowerer) (hm *hydra.Method, err error) {
	defer func() {
		if r := recover(); r != nil {
			hm, err = nil, fmt.Errorf("%w: %v", ErrLowering, r)
		}
	}()
	return lw.compile()
}

// placement maps each local slot to a register, or NoReg for memory-resident
// locals (which live only in their frame home slot).
const noReg = isa.Reg(0)

type placement struct {
	reg   []isa.Reg // per slot; noReg = memory resident
	saved []isa.Reg // registers used, in save order
}

// assignRegisters picks up to NumSaved locals for callee-saved registers.
// Locals needed by STL optimizations (inductors, resetable inductors,
// reductions) are forced into registers; sync-lock-protected locals are
// forced into memory (their accesses must be the real communication);
// everything else competes by loop-depth-weighted use count.
func assignRegisters(g *cfg.Graph, m *bytecode.Method, mode Mode, plans []*Plan) (placement, error) {
	pl := placement{reg: make([]isa.Reg, m.NLocals)}
	forcedReg := map[int]bool{}
	forcedMem := map[int]bool{}
	for _, p := range plans {
		for s := range p.Inductors {
			forcedReg[s] = true
		}
		for s := range p.Resetable {
			forcedReg[s] = true
		}
		for s := range p.Reductions {
			forcedReg[s] = true
		}
		for _, s := range p.SyncSlots {
			forcedMem[s] = true
		}
	}
	for s := range forcedReg {
		if forcedMem[s] {
			return pl, fmt.Errorf("slot %d both register-forced and lock-protected", s)
		}
	}

	// Loop-depth-weighted static use counts.
	weight := make([]int64, m.NLocals)
	for _, b := range g.Blocks {
		w := int64(1)
		if l := g.InnermostLoopOf(b.ID); l != nil {
			for d := 0; d < l.Depth && d < 4; d++ {
				w *= 10
			}
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := m.Code[pc]
			switch in.Op {
			case bytecode.LOAD, bytecode.STORE, bytecode.IINC:
				weight[in.A] += w
			}
		}
	}
	type cand struct {
		slot int
		w    int64
	}
	var cands []cand
	for s := 0; s < m.NLocals; s++ {
		if forcedMem[s] {
			continue
		}
		if forcedReg[s] {
			cands = append(cands, cand{s, 1 << 60})
		} else if weight[s] > 0 {
			cands = append(cands, cand{s, weight[s]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].slot < cands[j].slot
	})
	if len(cands) > isa.NumSaved {
		for _, c := range cands[isa.NumSaved:] {
			if forcedReg[c.slot] {
				return pl, fmt.Errorf("too many register-forced locals (%d candidates)", len(cands))
			}
		}
		cands = cands[:isa.NumSaved]
	}
	// Deterministic register order by slot.
	sort.Slice(cands, func(i, j int) bool { return cands[i].slot < cands[j].slot })
	for i, c := range cands {
		r := isa.S0 + isa.Reg(i)
		pl.reg[c.slot] = r
		pl.saved = append(pl.saved, r)
	}
	return pl, nil
}

// stackDepths computes the operand stack depth at each bytecode pc (the
// program has already passed bytecode.Verify, so depths are consistent).
func stackDepths(p *bytecode.Program, m *bytecode.Method) []int {
	n := len(m.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type item struct{ pc, d int }
	work := []item{{0, 0}}
	for _, h := range m.Handlers {
		work = append(work, item{h.Target, 1})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		for pc < n && depth[pc] == -1 {
			depth[pc] = d
			in := m.Code[pc]
			pops, pushes := bytecode.StackEffect(p, in)
			d = d - pops + pushes
			if in.IsBranch() {
				work = append(work, item{int(in.A), d})
			}
			if in.Terminates() {
				break
			}
			pc++
		}
	}
	return depth
}
