package jit

import "errors"

// ErrLowering is the sentinel every lowering failure unwraps to: an internal
// compiler defect caught by the recover wrapper around method compilation,
// or an injected JIT failure from a fault plan. Callers fall back to the
// plain (sequential) image when TLS recompilation fails with it.
var ErrLowering = errors.New("jit: lowering failed")
