package jit

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	fe "jrpm/internal/frontend"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/tls"
	"jrpm/internal/vm"
)

// execute compiles and runs a program, returning the machine.
func execute(t *testing.T, bp *bytecode.Program, mode Mode, sel *Selection, ncpu int) *hydra.Machine {
	t.Helper()
	info := cfg.AnalyzeProgram(bp)
	img, _, err := Compile(bp, info, mode, sel)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rt := vm.New(bp, vm.DefaultConfig())
	opts := hydra.DefaultOptions()
	opts.NCPU = ncpu
	opts.Profile = mode == ModeAnnotated
	m := hydra.NewMachine(img, rt, opts)
	m.Boot()
	rt.Install(m)
	if err := m.Run(200_000_000); err != nil {
		t.Fatalf("run (%v mode): %v", mode, err)
	}
	return m
}

// sumProgram computes sum(i*i) for i in [0,n) and prints it.
func sumProgram(n int64) *bytecode.Program {
	p := fe.NewProgram("sum")
	p.Func("main", nil, false).Body(
		fe.Set("sum", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(n),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Mul(fe.L("i"), fe.L("i")))),
		),
		fe.Print(fe.L("sum")),
	)
	return p.MustBuild()
}

func expectOutput(t *testing.T, m *hydra.Machine, want ...int64) {
	t.Helper()
	if len(m.Output) != len(want) {
		t.Fatalf("output = %v, want %v", m.Output, want)
	}
	for i := range want {
		if m.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", m.Output, want)
		}
	}
}

func TestPlainSum(t *testing.T) {
	m := execute(t, sumProgram(100), ModePlain, nil, 1)
	expectOutput(t, m, 328350)
}

func TestPlainRecursionFib(t *testing.T) {
	p := fe.NewProgram("fib")
	fib := p.Func("fib", []string{"n"}, true)
	fib.Body(
		fe.If(fe.Lt(fe.L("n"), fe.I(2)), fe.S(fe.Ret(fe.L("n"))), nil),
		fe.Ret(fe.Add(fe.CallE(fib, fe.Sub(fe.L("n"), fe.I(1))),
			fe.CallE(fib, fe.Sub(fe.L("n"), fe.I(2))))),
	)
	p.Func("main", nil, false).Body(fe.Print(fe.CallE(fib, fe.I(12))))
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	expectOutput(t, m, 144)
}

func TestPlainArraysObjectsStatics(t *testing.T) {
	p := fe.NewProgram("obj")
	node := p.Class("Node", "val", "next")
	tot := p.StaticVar("total")
	p.Func("main", nil, false).Body(
		fe.Set("head", fe.I(0)),
		// Build a 5-node list, values 1..5.
		fe.ForUp("i", fe.I(1), fe.I(6),
			fe.Set("n", fe.NewE(node)),
			fe.SetField(fe.L("n"), node, "val", fe.L("i")),
			fe.SetField(fe.L("n"), node, "next", fe.L("head")),
			fe.Set("head", fe.L("n")),
		),
		// Sum the list.
		fe.SetStatic(tot, fe.I(0)),
		fe.Set("p", fe.L("head")),
		fe.While(fe.Ne(fe.L("p"), fe.I(0)),
			fe.SetStatic(tot, fe.Add(fe.StaticE(tot), fe.FieldE(fe.L("p"), node, "val"))),
			fe.Set("p", fe.FieldE(fe.L("p"), node, "next")),
		),
		fe.Print(fe.StaticE(tot)),
		// Array round trip.
		fe.Set("a", fe.NewArr(fe.I(8))),
		fe.SetIdx(fe.L("a"), fe.I(3), fe.I(77)),
		fe.Print(fe.Add(fe.Idx(fe.L("a"), fe.I(3)), fe.Len(fe.L("a")))),
	)
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	expectOutput(t, m, 15, 85)
}

func TestPlainFloatMath(t *testing.T) {
	p := fe.NewProgram("float")
	p.Func("main", nil, false).Body(
		fe.Set("x", fe.F(3.0)),
		fe.Set("y", fe.Sqrt(fe.FMul(fe.L("x"), fe.L("x")))),
		fe.If(fe.AndC(fe.FGt(fe.L("y"), fe.F(2.99)), fe.FLt(fe.L("y"), fe.F(3.01))),
			fe.S(fe.Print(fe.I(1))), fe.S(fe.Print(fe.I(0)))),
		fe.Print(fe.ToInt(fe.FAdd(fe.L("y"), fe.F(0.5)))),
	)
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	expectOutput(t, m, 1, 3)
}

func TestPlainExceptionHandling(t *testing.T) {
	p := fe.NewProgram("exc")
	p.Func("main", nil, false).Body(
		fe.Try(
			fe.S(
				fe.Set("z", fe.I(0)),
				fe.Print(fe.Div(fe.I(10), fe.L("z"))),
			),
			0, "e",
			fe.S(fe.Print(fe.I(99))),
		),
	)
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	expectOutput(t, m, 99)
}

func TestPlainBoundsCheck(t *testing.T) {
	p := fe.NewProgram("oob")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(4))),
		fe.Try(
			fe.S(fe.Print(fe.Idx(fe.L("a"), fe.I(9)))),
			0, "e",
			fe.S(fe.Print(fe.I(-1))),
		),
	)
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	expectOutput(t, m, -1)
}

func TestPlainDeepExpressionSpilling(t *testing.T) {
	// An expression deep enough to exhaust the six temporaries.
	p := fe.NewProgram("deep")
	deep := fe.Add(fe.I(1), fe.Add(fe.I(2), fe.Add(fe.I(3), fe.Add(fe.I(4),
		fe.Add(fe.I(5), fe.Add(fe.I(6), fe.Add(fe.I(7), fe.I(8))))))))
	// Constants fold; force registers with locals.
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.I(1)), fe.Set("b", fe.I(2)), fe.Set("c", fe.I(3)),
		fe.Set("d", fe.I(4)), fe.Set("e", fe.I(5)), fe.Set("f", fe.I(6)),
		fe.Set("g", fe.I(7)), fe.Set("h", fe.I(8)),
		fe.Set("x", fe.Add(fe.Mul(fe.L("a"), fe.L("b")),
			fe.Add(fe.Mul(fe.L("c"), fe.L("d")),
				fe.Add(fe.Mul(fe.L("e"), fe.L("f")),
					fe.Add(fe.Mul(fe.L("g"), fe.L("h")),
						fe.Add(fe.Mul(fe.L("a"), fe.L("h")),
							fe.Add(fe.Mul(fe.L("b"), fe.L("g")),
								fe.Mul(fe.L("c"), fe.L("f"))))))))),
		fe.Print(fe.L("x")),
		fe.Print(deep),
	)
	m := execute(t, p.MustBuild(), ModePlain, nil, 1)
	// 2 + 12 + 30 + 56 + 8 + 14 + 18 = 140
	expectOutput(t, m, 140, 36)
}

func TestAnnotatedModeProfilesLoops(t *testing.T) {
	bp := sumProgram(200)
	m := execute(t, bp, ModeAnnotated, nil, 1)
	expectOutput(t, m, 2646700)
	if m.Tracer == nil {
		t.Fatal("annotated run must attach the tracer")
	}
	loops := m.Tracer.Loops()
	if len(loops) != 1 {
		t.Fatalf("profiled loops = %d, want 1", len(loops))
	}
	for _, ls := range loops {
		if ls.Iterations != 200 || ls.Entries != 1 {
			t.Errorf("iterations/entries = %d/%d, want 200/1", ls.Iterations, ls.Entries)
		}
		// The counter is an inductor and the sum a reduction: both are
		// statically discounted, so the compiler eliminates their
		// annotations and the profile records no local dependencies.
		for k := range ls.Deps {
			if k < 0x10000 {
				t.Errorf("optimized local still annotated: dep key %#x", k)
			}
		}
	}
}

func TestAnnotatedModeRecordsUnoptimizableDeps(t *testing.T) {
	// x = (x*31+i) % m is neither inductor nor reduction: its lwl/swl must
	// survive annotation elimination and produce a local dependency.
	p := fe.NewProgram("lcgdep")
	p.Func("main", nil, false).Body(
		fe.Set("x", fe.I(1)),
		fe.ForUp("i", fe.I(0), fe.I(100),
			fe.Set("x", fe.Rem(fe.Add(fe.Mul(fe.L("x"), fe.I(31)), fe.L("i")), fe.I(9973))),
		),
		fe.Print(fe.L("x")),
	)
	m := execute(t, p.MustBuild(), ModeAnnotated, nil, 1)
	found := false
	for _, ls := range m.Tracer.Loops() {
		for k, ds := range ls.Deps {
			if k < 0x10000 && ds.Iters > 90 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("carried unoptimizable local recorded no dependency arcs")
	}
}

func TestAnnotatedSlowerThanPlain(t *testing.T) {
	bp := sumProgram(500)
	plain := execute(t, bp, ModePlain, nil, 1)
	ann := execute(t, bp, ModeAnnotated, nil, 1)
	if ann.Clock <= plain.Clock {
		t.Fatalf("annotated (%d) should be slower than plain (%d)", ann.Clock, plain.Clock)
	}
	slowdown := float64(ann.Clock)/float64(plain.Clock) - 1
	if slowdown > 0.6 {
		t.Errorf("profiling slowdown %.0f%% unreasonably high", slowdown*100)
	}
}

// selectLoop builds a TLS Selection for every loop of the main method using
// the cfg classification directly (the analyzer does this from profiles).
func selectLoop(bp *bytecode.Program, syncSlots map[int][]int) *Selection {
	info := cfg.AnalyzeProgram(bp)
	sel := &Selection{Plans: map[int64]*Plan{}, NCPU: 4}
	g := info.Graphs[bp.Main]
	for _, l := range g.Loops {
		if l.Depth != 1 {
			continue
		}
		plan := &Plan{
			LoopID:     cfg.GlobalLoopID(bp.Main, l.Index),
			MethodID:   bp.Main,
			Loop:       l.Index,
			Inductors:  l.Inductors,
			Resetable:  l.Resetable,
			Reductions: l.Reductions,
			SyncSlots:  syncSlots[l.Index],
		}
		seen := map[int]bool{}
		for s := range l.Inductors {
			seen[s] = true
		}
		for s := range l.Resetable {
			seen[s] = true
		}
		for s := range l.Reductions {
			seen[s] = true
		}
		for _, s := range plan.SyncSlots {
			seen[s] = true
		}
		for _, s := range l.Carried {
			if !seen[s] {
				plan.Comm = append(plan.Comm, s)
			}
		}
		sel.Plans[plan.LoopID] = plan
	}
	return sel
}

func TestTLSReductionLoopCorrectAndFast(t *testing.T) {
	bp := sumProgram(400)
	sel := selectLoop(bp, nil)
	if len(sel.Plans) != 1 {
		t.Fatalf("plans = %d", len(sel.Plans))
	}
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, sel, 4)
	expectOutput(t, par, seq.Output...)
	if par.TLS.Commits < 390 {
		t.Errorf("commits = %d", par.TLS.Commits)
	}
	speedup := float64(seq.Clock) / float64(par.Clock)
	if speedup < 1.5 {
		t.Errorf("speedup = %.2f, want > 1.5 (reduction removes the carried dep)", speedup)
	}
	if par.TLS.Violations > 10 {
		t.Errorf("violations = %d, want ~0 with reduction optimization", par.TLS.Violations)
	}
}

func TestTLSArrayLoopCorrectAndFast(t *testing.T) {
	// Independent iterations: a[i] = i*i, then checksum serially.
	p := fe.NewProgram("arr")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(256))),
		fe.ForUp("i", fe.I(0), fe.I(256),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.L("i"))),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(256),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("sum")),
	)
	bp := p.MustBuild()
	sel := selectLoop(bp, nil)
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, sel, 4)
	expectOutput(t, par, seq.Output...)
	if sp := float64(seq.Clock) / float64(par.Clock); sp < 1.5 {
		t.Errorf("speedup = %.2f", sp)
	}
}

func TestTLSCommunicatedDependencyStaysCorrect(t *testing.T) {
	// x = (x*1103515245 + 12345) mod m each iteration: a true carried
	// dependency that is neither inductor nor reduction → communicated.
	p := fe.NewProgram("lcg")
	p.Func("main", nil, false).Body(
		fe.Set("x", fe.I(1)),
		fe.ForUp("i", fe.I(0), fe.I(50),
			fe.Set("x", fe.Rem(fe.Add(fe.Mul(fe.L("x"), fe.I(1103515245)), fe.I(12345)), fe.I(1000000007))),
		),
		fe.Print(fe.L("x")),
	)
	bp := p.MustBuild()
	sel := selectLoop(bp, nil)
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, sel, 4)
	expectOutput(t, par, seq.Output...)
	if par.TLS.Violations == 0 {
		t.Error("communicated dependency should cause violations")
	}
}

func TestTLSSyncLockReducesViolations(t *testing.T) {
	// Same LCG dependency, but protected by a thread synchronizing lock.
	build := func() *bytecode.Program {
		p := fe.NewProgram("lcgsync")
		p.Func("main", nil, false).Body(
			fe.Set("x", fe.I(1)),
			fe.Set("work", fe.I(0)),
			fe.ForUp("i", fe.I(0), fe.I(60),
				fe.Set("x", fe.Rem(fe.Add(fe.Mul(fe.L("x"), fe.I(75)), fe.I(74)), fe.I(65537))),
				// Independent tail work widens the window.
				fe.ForUp("k", fe.I(0), fe.I(20),
					fe.Set("work", fe.Add(fe.L("work"), fe.L("k"))),
				),
			),
			fe.Print(fe.L("x")),
			fe.Print(fe.L("work")),
		)
		return p.MustBuild()
	}
	bp := build()
	seq := execute(t, bp, ModePlain, nil, 1)

	// Find slot of x: it is the first declared local (slot 0).
	noLock := execute(t, bp, ModeTLS, selectLoop(bp, nil), 4)
	withLock := execute(t, build(), ModeTLS, selectLoop(bp, map[int][]int{0: {0}}), 4)
	expectOutput(t, noLock, seq.Output...)
	expectOutput(t, withLock, seq.Output...)
	if withLock.TLS.Violations >= noLock.TLS.Violations {
		t.Errorf("lock: %d violations, unlocked: %d — lock should reduce them",
			withLock.TLS.Violations, noLock.TLS.Violations)
	}
}

func TestTLSResetableInductorCorrect(t *testing.T) {
	// ptr walks 0..6 cyclically via conditional reset while summing.
	p := fe.NewProgram("reset")
	p.Func("main", nil, false).Body(
		fe.Set("ptr", fe.I(0)),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(100),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.L("ptr"))),
			fe.Inc("ptr", 1),
			fe.If(fe.Ge(fe.L("ptr"), fe.I(7)), fe.S(fe.Set("ptr", fe.I(0))), nil),
		),
		fe.Print(fe.L("sum")),
		fe.Print(fe.L("ptr")),
	)
	bp := p.MustBuild()
	info := cfg.AnalyzeProgram(bp)
	l := info.Graphs[0].Loops[0]
	if len(l.Resetable) != 1 {
		t.Fatalf("resetable = %v (inductors %v)", l.Resetable, l.Inductors)
	}
	sel := selectLoop(bp, nil)
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, sel, 4)
	expectOutput(t, par, seq.Output...)
}

func TestTLSLoopWithCallsCorrect(t *testing.T) {
	p := fe.NewProgram("calls")
	sq := p.Func("square", []string{"v"}, true)
	sq.Body(fe.Ret(fe.Mul(fe.L("v"), fe.L("v"))))
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(64))),
		fe.ForUp("i", fe.I(0), fe.I(64),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.CallE(sq, fe.L("i"))),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(64),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("sum")),
	)
	bp := p.MustBuild()
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, selectLoop(bp, nil), 4)
	expectOutput(t, par, seq.Output...)
}

func TestTLSAllocationInLoopCorrect(t *testing.T) {
	p := fe.NewProgram("allocloop")
	node := p.Class("Box", "v")
	p.Func("main", nil, false).Body(
		fe.Set("sum", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(64),
			fe.Set("b", fe.NewE(node)),
			fe.SetField(fe.L("b"), node, "v", fe.L("i")),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.FieldE(fe.L("b"), node, "v"))),
		),
		fe.Print(fe.L("sum")),
	)
	bp := p.MustBuild()
	seq := execute(t, bp, ModePlain, nil, 1)
	par := execute(t, bp, ModeTLS, selectLoop(bp, nil), 4)
	expectOutput(t, par, seq.Output...)
}

func TestTLSHandlerCostsAffectRuntime(t *testing.T) {
	bp := sumProgram(200)
	sel := selectLoop(bp, nil)
	info := cfg.AnalyzeProgram(bp)
	img, _, err := Compile(bp, info, ModeTLS, sel)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(h tls.HandlerCosts) int64 {
		rt := vm.New(bp, vm.DefaultConfig())
		opts := hydra.DefaultOptions()
		opts.Handlers = h
		m := hydra.NewMachine(img, rt, opts)
		m.Boot()
		rt.Install(m)
		if err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Clock
	}
	newC := runWith(tls.NewHandlers)
	oldC := runWith(tls.OldHandlers)
	if oldC <= newC {
		t.Errorf("old handlers (%d cycles) should be slower than new (%d)", oldC, newC)
	}
}

func TestCompileReportPopulated(t *testing.T) {
	bp := sumProgram(10)
	_, rep, err := Compile(bp, nil, ModePlain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 || rep.Methods != 1 || rep.CodeSize == 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestAnnotatedCodeShape reproduces Figure 3's structure: the compiled
// annotated loop carries sloop at entry, eoi on the back edge, eloop at the
// exit, and lwl/swl on the interesting (carried, unoptimized) local.
func TestAnnotatedCodeShape(t *testing.T) {
	p := fe.NewProgram("fig3")
	p.Func("main", nil, false).Body(
		fe.Set("lcl", fe.I(10)),
		fe.Set("x", fe.I(0)),
		fe.While(fe.Gt(fe.L("lcl"), fe.I(0)),
			// An unpredictable carried update (neither inductor nor
			// reduction), like Figure 3's lcl_v.
			fe.Set("lcl", fe.Sub(fe.L("lcl"), fe.Sel(fe.Gt(fe.L("x"), fe.I(2)), fe.I(1), fe.I(2)))),
			fe.Set("x", fe.Rem(fe.Add(fe.L("x"), fe.I(1)), fe.I(5))),
		),
		fe.Print(fe.L("lcl")),
	)
	bp := p.MustBuild()
	img, _, err := Compile(bp, nil, ModeAnnotated, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[isa.Op]int{}
	for _, in := range img.Methods[bp.Main].Code {
		counts[in.Op]++
	}
	if counts[isa.SLOOP] != 1 || counts[isa.ELOOP] != 1 {
		t.Fatalf("sloop/eloop = %d/%d, want 1/1", counts[isa.SLOOP], counts[isa.ELOOP])
	}
	if counts[isa.EOI] != 1 {
		t.Fatalf("eoi = %d, want 1 (on the back edge)", counts[isa.EOI])
	}
	if counts[isa.LWL] == 0 || counts[isa.SWL] == 0 {
		t.Fatal("carried unoptimized local lost its lwl/swl annotations")
	}
}

// TestPlainCodeCarriesNoAnnotations: plain and TLS images must not contain
// profiling instructions.
func TestPlainCodeCarriesNoAnnotations(t *testing.T) {
	bp := sumProgram(50)
	for _, mode := range []Mode{ModePlain, ModeTLS} {
		var sel *Selection
		if mode == ModeTLS {
			sel = selectLoop(bp, nil)
		}
		img, _, err := Compile(bp, nil, mode, sel)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range img.Methods {
			for _, in := range m.Code {
				if in.Op.IsAnnotation() {
					t.Fatalf("mode %v emitted annotation %s", mode, in.Op.Name())
				}
			}
		}
	}
}
