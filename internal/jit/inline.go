package jit

import (
	"jrpm/internal/bytecode"
)

// InlineLimit is the maximum callee size (in bytecode instructions)
// considered for inlining.
const InlineLimit = 24

// Inline performs the microJIT's method inlining (§4.1 lists inlining among
// its optimizations) as a bytecode-to-bytecode transform: every INVOKE of a
// small leaf method (no calls, no exception handlers) is replaced by the
// callee's body with locals renamed into fresh caller slots. The input
// program is not modified.
//
// Run it before CFG analysis: callee loops become caller loops, so a hot
// loop inside a helper called from a loop body turns into an ordinary nest
// the decomposition analyzer can reason about — and call overhead inside
// speculative threads disappears.
func Inline(p *bytecode.Program) *bytecode.Program {
	inlinable := map[int]bool{}
	for i, m := range p.Methods {
		inlinable[i] = isInlinable(m)
	}
	out := &bytecode.Program{
		Name:    p.Name,
		Classes: p.Classes,
		Statics: p.Statics,
		Main:    p.Main,
	}
	for _, m := range p.Methods {
		out.Methods = append(out.Methods, inlineInto(p, m, inlinable))
	}
	return out
}

func isInlinable(m *bytecode.Method) bool {
	if len(m.Code) > InlineLimit || len(m.Handlers) > 0 {
		return false
	}
	for _, in := range m.Code {
		if in.Op == bytecode.INVOKE {
			return false // leaf methods only (also excludes recursion)
		}
	}
	return true
}

// inlineInto rewrites one method, expanding inlinable call sites.
func inlineInto(p *bytecode.Program, m *bytecode.Method, inlinable map[int]bool) *bytecode.Method {
	expand := false
	for _, in := range m.Code {
		if in.Op == bytecode.INVOKE && inlinable[int(in.A)] && int(in.A) != m.ID {
			expand = true
			break
		}
	}
	if !expand {
		return m
	}

	nm := &bytecode.Method{
		ID: m.ID, Name: m.Name, NArgs: m.NArgs, NLocals: m.NLocals,
		HasResult: m.HasResult,
	}
	// Pass 1: compute the new pc of every old pc so branches can retarget.
	newPC := make([]int, len(m.Code)+1)
	pc := 0
	for i, in := range m.Code {
		newPC[i] = pc
		if in.Op == bytecode.INVOKE && inlinable[int(in.A)] && int(in.A) != m.ID {
			pc += expandedSize(p.Methods[in.A])
		} else {
			pc++
		}
	}
	newPC[len(m.Code)] = pc

	// Pass 2: emit.
	for i, in := range m.Code {
		if in.Op == bytecode.INVOKE && inlinable[int(in.A)] && int(in.A) != m.ID {
			callee := p.Methods[in.A]
			base := nm.NLocals // fresh slots for this inline site
			nm.NLocals += callee.NLocals
			emitInlined(nm, callee, base, newPC[i+1])
			continue
		}
		out := in
		if in.IsBranch() {
			out.A = int64(newPC[in.A])
		}
		nm.Code = append(nm.Code, out)
	}
	// Handler table pcs move with the code.
	for _, h := range m.Handlers {
		nm.Handlers = append(nm.Handlers, bytecode.Handler{
			Start: newPC[h.Start], End: newPC[h.End],
			Target: newPC[h.Target], Kind: h.Kind,
		})
	}
	return nm
}

// expandedSize is the exact instruction count emitInlined will produce.
func expandedSize(callee *bytecode.Method) int {
	n := callee.NArgs // argument stores
	for _, in := range callee.Code {
		switch in.Op {
		case bytecode.RETURN:
			n++ // becomes GOTO (last one could fall through, but keep exact)
		case bytecode.IRETURN:
			n++ // becomes GOTO; the value stays on the stack
		default:
			n++
		}
	}
	return n
}

// emitInlined appends the callee body with locals rebased and returns
// rewritten as jumps to endPC (the instruction after the call site).
func emitInlined(nm *bytecode.Method, callee *bytecode.Method, base, endPC int) {
	// The call site's operand stack holds the arguments with the last on
	// top: store them into the rebased parameter slots in reverse.
	entry := len(nm.Code)
	for a := callee.NArgs - 1; a >= 0; a-- {
		nm.Code = append(nm.Code, bytecode.Ins{Op: bytecode.STORE, A: int64(base + a)})
	}
	bodyBase := len(nm.Code)
	for _, in := range callee.Code {
		out := in
		switch in.Op {
		case bytecode.LOAD, bytecode.STORE, bytecode.IINC:
			out.A = in.A + int64(base)
		case bytecode.RETURN, bytecode.IRETURN:
			// An ireturn's value is already on the operand stack — exactly
			// what the call site expects; just transfer control past it.
			out = bytecode.Ins{Op: bytecode.GOTO, A: int64(endPC)}
		default:
			if in.IsBranch() {
				out.A = in.A + int64(bodyBase)
			}
		}
		nm.Code = append(nm.Code, out)
	}
	_ = entry
}
