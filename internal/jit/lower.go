package jit

import (
	"fmt"
	"sort"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/obs"
)

// vKind classifies symbolic operand-stack entries.
type vKind int

const (
	vConst vKind = iota // compile-time constant
	vLocal              // a local variable (register- or memory-resident)
	vTemp               // value held in a temporary register
	vSpill              // value spilled to a frame slot
)

type val struct {
	kind  vKind
	c     int64
	slot  int
	reg   isa.Reg
	spill int64
}

// stlCtx carries the per-selected-loop codegen state.
type stlCtx struct {
	plan       *Plan
	loop       *cfg.Loop
	stlID      int64
	lockOf     map[int]int64 // sync slot → frame offset of its lock word
	redBase    map[int]int64 // reduction slot → frame offset of NCPU partials
	resetAt    map[int]int64 // resetable slot → frame offset of base-iter word
	commSet    map[int]bool
	indStep    map[int]int64 // inductors ∪ resetable → step
	waitPC     map[int]int   // bytecode pc → sync slot to wait on before it
	sigPC      map[int]int   // bytecode pc → sync slot to signal after it
	resetStore map[int]int   // bytecode pc → resetable slot (forced comm)
	exitTgt    int           // unique bytecode exit target
	lastPC     int           // last bytecode pc lexically inside the loop
	desc       *hydra.STLDesc
}

type lowerer struct {
	prog    *bytecode.Program
	g       *cfg.Graph
	m       *bytecode.Method
	mode    Mode
	sel     *Selection
	img     *hydra.Image
	nextSTL *int64
	ncpu    int

	b      *isa.Builder
	place  placement
	depths []int
	leader map[int]bool
	hEntry map[int]bool // handler target pcs

	stack    []val
	tempBusy [isa.NumTemps]bool

	nHomes    int64
	saveBase  int64
	extraNext int64
	spillBase int64
	spillMax  int64
	freeSpill []int64

	stls     map[int]*stlCtx // loop index → ctx (selected loops only)
	npcOf    []int
	stubs    []func() // deferred stub emission at method end
	stubSeq  int
	seenStub map[string]bool
}

func newLowerer(p *bytecode.Program, g *cfg.Graph, m *bytecode.Method, mode Mode,
	sel *Selection, img *hydra.Image, nextSTL *int64) *lowerer {
	ncpu := 4
	if sel != nil && sel.NCPU > 0 {
		ncpu = sel.NCPU
	}
	return &lowerer{
		prog: p, g: g, m: m, mode: mode, sel: sel, img: img, nextSTL: nextSTL,
		ncpu: ncpu, b: isa.NewBuilder(),
		leader: map[int]bool{}, hEntry: map[int]bool{}, stls: map[int]*stlCtx{},
	}
}

func (lw *lowerer) compile() (*hydra.Method, error) {
	if lw.m.NArgs > isa.NumArgRegs {
		return nil, fmt.Errorf("more than %d arguments", isa.NumArgRegs)
	}
	var plans []*Plan
	if lw.mode == ModeTLS && lw.sel != nil {
		for _, p := range lw.sel.Plans {
			if p.MethodID == lw.m.ID {
				plans = append(plans, p)
			}
		}
		// Plan order fixes STL ids and frame-slot layout; sort so the
		// emitted image does not depend on map iteration order.
		sort.Slice(plans, func(i, j int) bool { return plans[i].Loop < plans[j].Loop })
	}
	var err error
	lw.place, err = assignRegisters(lw.g, lw.m, lw.mode, plans)
	if err != nil {
		return nil, err
	}
	lw.nHomes = int64(lw.m.NLocals)
	lw.saveBase = lw.nHomes
	lw.extraNext = lw.saveBase + int64(len(lw.place.saved))
	for _, p := range plans {
		if err := lw.prepareSTL(p); err != nil {
			return nil, err
		}
	}
	lw.spillBase = lw.extraNext

	lw.depths = stackDepths(lw.prog, lw.m)
	for _, b := range lw.g.Blocks {
		lw.leader[b.Start] = true
	}
	for _, h := range lw.m.Handlers {
		lw.hEntry[h.Target] = true
	}
	lw.npcOf = make([]int, len(lw.m.Code)+1)

	lw.prologue()
	for pc := 0; pc < len(lw.m.Code); pc++ {
		lw.atBoundary(pc)
		lw.npcOf[pc] = lw.b.PC()
		if lw.depths[pc] == -1 {
			continue // unreachable
		}
		if err := lw.lower(pc); err != nil {
			return nil, fmt.Errorf("pc %d (%s): %w", pc, lw.m.Code[pc].Op.Name(), err)
		}
	}
	lw.npcOf[len(lw.m.Code)] = lw.b.PC()
	for _, stub := range lw.stubs {
		stub()
	}
	code := lw.b.Finish()

	hm := &hydra.Method{
		Name:       lw.m.Name,
		Code:       code,
		FrameWords: lw.spillBase + lw.spillMax + 2,
		SavedRegs:  lw.place.saved,
		SaveBase:   lw.saveBase,
		Frame:      lw.frameTable(),
	}
	for _, h := range lw.m.Handlers {
		hm.Handlers = append(hm.Handlers, hydra.Handler{
			Start:  lw.npcOf[h.Start],
			End:    lw.npcOf[h.End],
			Target: lw.b.LabelPC(fmt.Sprintf("bc_%d", h.Target)),
			Kind:   h.Kind,
		})
	}
	// Finalize STL descriptors.
	for _, ctx := range lw.stls {
		ctx.desc.InitPC = lw.b.LabelPC(lw.lbl("init", ctx.loop.Index))
		ctx.desc.BodyStart = lw.b.LabelPC(lw.lbl("pre", ctx.loop.Index))
		ctx.desc.BodyEnd = lw.npcOf[ctx.lastPC+1]
	}
	return hm, nil
}

func (lw *lowerer) lbl(kind string, loop int) string { return fmt.Sprintf("%s_%d", kind, loop) }

// frameTable builds the per-word debug classification of the frame layout
// just allocated — local homes, callee-save area, per-STL bookkeeping words,
// spill area — so the speculation doctor can symbolize stack-region
// violation addresses back to bytecode slots. Each offset is written exactly
// once, so the stls map iteration order does not matter.
func (lw *lowerer) frameTable() []obs.FrameSlot {
	frame := make([]obs.FrameSlot, lw.spillBase+lw.spillMax+2)
	for i := int64(0); i < lw.nHomes; i++ {
		frame[i] = obs.FrameSlot{Kind: obs.SlotLocal, Index: int32(i)}
	}
	for i := range lw.place.saved {
		frame[lw.saveBase+int64(i)] = obs.FrameSlot{Kind: obs.SlotSaved, Index: int32(i)}
	}
	for _, ctx := range lw.stls {
		for s, off := range ctx.resetAt {
			frame[off] = obs.FrameSlot{Kind: obs.SlotResetBase, Index: int32(s)}
		}
		for s, off := range ctx.lockOf {
			frame[off] = obs.FrameSlot{Kind: obs.SlotLock, Index: int32(s)}
		}
		for s, base := range ctx.redBase {
			for i := 0; i < lw.ncpu; i++ {
				frame[base+int64(i)] = obs.FrameSlot{Kind: obs.SlotRed, Index: int32(s)}
			}
		}
	}
	for i := int64(0); i < lw.spillMax; i++ {
		frame[lw.spillBase+i] = obs.FrameSlot{Kind: obs.SlotSpill}
	}
	return frame
}

// prepareSTL allocates frame slots and builds the codegen context for one
// selected loop.
func (lw *lowerer) prepareSTL(p *Plan) error {
	l := lw.g.Loops[p.Loop]
	if len(l.Exits) != 1 {
		return fmt.Errorf("loop %d has %d exit targets; STL selection requires one", p.Loop, len(l.Exits))
	}
	ctx := &stlCtx{
		plan: p, loop: l,
		lockOf: map[int]int64{}, redBase: map[int]int64{}, resetAt: map[int]int64{},
		commSet: map[int]bool{}, indStep: map[int]int64{},
		waitPC: map[int]int{}, sigPC: map[int]int{},
		exitTgt: lw.g.Blocks[l.Exits[0]].Start,
	}
	ctx.stlID = *lw.nextSTL
	*lw.nextSTL++
	for _, s := range p.Comm {
		ctx.commSet[s] = true
	}
	for s, st := range p.Inductors {
		ctx.indStep[s] = st
	}
	// Frame-slot allocation below must not depend on map iteration order:
	// these offsets are baked into the emitted code.
	for _, s := range sortedKeys(p.Resetable) {
		ctx.indStep[s] = p.Resetable[s]
		ctx.resetAt[s] = lw.extraNext
		lw.extraNext++
	}
	for _, s := range p.SyncSlots {
		ctx.lockOf[s] = lw.extraNext
		lw.extraNext++
	}
	for _, s := range sortedKeys(p.Reductions) {
		ctx.redBase[s] = lw.extraNext
		lw.extraNext += int64(lw.ncpu)
	}
	// Sync lock wait/signal placement: first and last access to each
	// protected slot, in bytecode order within the loop.
	for _, s := range p.SyncSlots {
		first, last := -1, -1
		for b := range l.Blocks {
			blk := lw.g.Blocks[b]
			for pc := blk.Start; pc < blk.End; pc++ {
				in := lw.m.Code[pc]
				if (in.Op == bytecode.LOAD || in.Op == bytecode.STORE || in.Op == bytecode.IINC) && int(in.A) == s {
					if first == -1 || pc < first {
						first = pc
					}
					if pc > last {
						last = pc
					}
				}
			}
		}
		if first == -1 {
			return fmt.Errorf("sync slot %d never accessed in loop", s)
		}
		ctx.waitPC[first] = s
		ctx.sigPC[last] = s
	}
	// Lexical end of the loop for the STL body range.
	for b := range l.Blocks {
		if e := lw.g.Blocks[b].End - 1; e > ctx.lastPC {
			ctx.lastPC = e
		}
	}
	ctx.desc = &hydra.STLDesc{
		ID: ctx.stlID, LoopID: p.LoopID, Method: lw.m.ID,
		Inner: p.Inner, Hoisted: p.Hoisted,
	}
	lw.img.STLs[ctx.stlID] = ctx.desc
	lw.stls[p.Loop] = ctx
	lw.locateInductorSites(ctx)
	return nil
}

// prologue emits callee-saved stores and argument placement.
func (lw *lowerer) prologue() {
	for i, reg := range lw.place.saved {
		lw.b.Sw(reg, isa.FP, lw.saveBase+int64(i))
	}
	for a := 0; a < lw.m.NArgs; a++ {
		src := isa.A0 + isa.Reg(a)
		if r := lw.place.reg[a]; r != noReg {
			lw.b.Move(r, src)
		} else {
			lw.b.Sw(src, isa.FP, int64(a))
		}
	}
}

// epilogue restores callee-saved registers before a return.
func (lw *lowerer) epilogue() {
	for i, reg := range lw.place.saved {
		lw.b.Lw(reg, isa.FP, lw.saveBase+int64(i))
	}
}

// atBoundary handles everything that happens between bytecode instructions:
// canonicalizing the symbolic stack at leaders, loop entry/exit bookkeeping
// (annotations or STL prologues) and label emission.
func (lw *lowerer) atBoundary(pc int) {
	if !lw.leader[pc] {
		return
	}
	lw.flushCanonical()
	// Fallthrough loop exits (annotated mode): previous instruction falls
	// into this block from inside loops that do not contain it.
	if lw.mode == ModeAnnotated && pc > 0 && lw.depths[pc-1] != -1 && !lw.m.Code[pc-1].Terminates() {
		for _, l := range lw.exitedLoops(pc-1, pc) {
			lw.b.Emit(isa.Instr{Op: isa.ELOOP, Imm: lw.loopID(l)})
		}
	}
	// Loop header prologues.
	blk := lw.g.BlockAt(pc)
	for _, l := range lw.g.Loops {
		if l.Header == blk && lw.g.Blocks[blk].Start == pc {
			lw.emitLoopEntry(l)
		}
	}
	lw.b.Label(fmt.Sprintf("bc_%d", pc))
	// Re-seed the symbolic stack for this leader's depth.
	d := lw.depths[pc]
	if d < 0 {
		d = 0
	}
	lw.resetStack(d)
	if lw.hEntry[pc] {
		// Handler entry: the exception object arrives in $v0.
		lw.resetStack(1)
		lw.b.Move(isa.T0, isa.V0)
	}
}

// loopID returns the global loop id for annotations.
func (lw *lowerer) loopID(l *cfg.Loop) int64 { return cfg.GlobalLoopID(lw.m.ID, l.Index) }

// enclosingLoops returns loops containing block b, innermost first.
func (lw *lowerer) enclosingLoops(b int) []*cfg.Loop {
	var out []*cfg.Loop
	for _, l := range lw.g.Loops {
		if l.Blocks[b] {
			out = append(out, l)
		}
	}
	// Innermost (smallest) first.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if len(out[j].Blocks) < len(out[i].Blocks) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// exitedLoops returns loops containing srcPC's block but not tgtPC's block,
// innermost first.
func (lw *lowerer) exitedLoops(srcPC, tgtPC int) []*cfg.Loop {
	src, tgt := lw.g.BlockAt(srcPC), lw.g.BlockAt(tgtPC)
	var out []*cfg.Loop
	for _, l := range lw.enclosingLoops(src) {
		if !l.Blocks[tgt] {
			out = append(out, l)
		}
	}
	return out
}

// jumpLabel routes a lowered branch through the right loop machinery:
// back edges go through end-of-iteration stubs, loop entries through the
// sloop/STL prologue, and exits through eloop/shutdown stubs.
func (lw *lowerer) jumpLabel(srcPC, tgt int) string {
	srcBlk, tgtBlk := lw.g.BlockAt(srcPC), lw.g.BlockAt(tgt)
	final := fmt.Sprintf("bc_%d", tgt)
	var hdr *cfg.Loop
	for _, l := range lw.g.Loops {
		if l.Header == tgtBlk && lw.g.Blocks[tgtBlk].Start == tgt {
			hdr = l
			break
		}
	}
	if hdr != nil {
		if hdr.Blocks[srcBlk] { // back edge
			if ctx := lw.stls[hdr.Index]; ctx != nil {
				final = lw.lbl("eoi", hdr.Index)
			} else if lw.mode == ModeAnnotated {
				final = lw.lbl("aeoi", hdr.Index)
				lw.ensureAnnBackStub(hdr)
			}
		} else { // loop entry
			if lw.stls[hdr.Index] != nil || lw.mode == ModeAnnotated {
				final = lw.lbl("pre", hdr.Index)
			}
		}
	}
	exited := lw.exitedLoops(srcPC, tgt)
	if lw.mode == ModeTLS {
		for _, l := range exited {
			if ctx := lw.stls[l.Index]; ctx != nil {
				if tgt != ctx.exitTgt {
					panic(fmt.Sprintf("jit: selected loop %d exits to %d, expected %d", l.Index, tgt, ctx.exitTgt))
				}
				return lw.lbl("exit", l.Index)
			}
		}
		return final
	}
	if lw.mode == ModeAnnotated && len(exited) > 0 {
		lw.stubSeq++
		name := fmt.Sprintf("x_%d_%d", srcPC, lw.stubSeq)
		loops := exited
		fin := final
		lw.stubs = append(lw.stubs, func() {
			lw.b.Label(name)
			for _, l := range loops {
				lw.b.Emit(isa.Instr{Op: isa.ELOOP, Imm: lw.loopID(l)})
			}
			lw.b.Jmp(fin)
		})
		return name
	}
	return final
}

// ensureAnnBackStub registers the annotated back-edge stub (eoi; jump to
// header) once per loop.
func (lw *lowerer) ensureAnnBackStub(l *cfg.Loop) {
	name := lw.lbl("aeoi", l.Index)
	key := fmt.Sprintf("annback_%d", l.Index)
	if lw.seenStub == nil {
		lw.seenStub = map[string]bool{}
	}
	if lw.seenStub[key] {
		return
	}
	lw.seenStub[key] = true
	hdr := lw.g.Blocks[l.Header].Start
	id := lw.loopID(l)
	lw.stubs = append(lw.stubs, func() {
		lw.b.Label(name)
		lw.b.Emit(isa.Instr{Op: isa.EOI, Imm: id})
		lw.b.Jmp(fmt.Sprintf("bc_%d", hdr))
	})
}
