package difftest

// Host-side performance work must never perturb simulated behaviour. Two
// guards enforce that here: rendered reports must be byte-identical run to
// run (and identical between the sequential and parallel suite harnesses),
// and the hot simulation paths — TLS store-buffer traffic and TEST
// timestamp recording — must not allocate per access.

import (
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/mem"
	"jrpm/internal/report"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
)

// renderAll turns suite results into the full set of paper tables/figures.
func renderAll(results []*report.SuiteResult) string {
	return report.Table3(results) + report.Table4(results) +
		report.Figure8(results) + report.Figure9(results) +
		report.Figure10(results) + report.CategorySummary(results)
}

// TestReportDeterminism renders the full suite twice — once on the
// sequential harness and once on the parallel one — and requires the two
// reports to be byte-identical. Any divergence means simulated state leaked
// across runs (pool reuse, map iteration order, cross-goroutine sharing).
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	seq, err := report.RunSuite(core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := report.RunSuiteParallel(core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(seq), renderAll(par)
	if a != b {
		t.Fatalf("sequential and parallel suite reports differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	again, err := report.RunSuite(core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := renderAll(again); c != a {
		t.Fatalf("two sequential suite runs rendered different reports")
	}
}

// TestTLSFastPathAllocs pins the speculative load/store path to zero
// allocations per access once a speculation region is running.
func TestTLSFastPathAllocs(t *testing.T) {
	m := mem.NewMemory(1 << 16)
	caches := mem.NewCacheSim(mem.DefaultCacheConfig(4))
	u := tls.NewUnit(tls.DefaultConfig(4), m, caches)
	if err := u.Start(1); err != nil {
		t.Fatal(err)
	}
	// Touch a handful of lines first so the steady state is re-access.
	for a := mem.Addr(64); a < 96; a++ {
		if _, _, err := u.Store(1, a, int64(a)); err != nil {
			t.Fatal(err)
		}
		u.Load(2, a+64, false)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := u.Store(1, 80, 7); err != nil {
			t.Fatal(err)
		}
		u.Load(1, 80, false)
		u.Load(2, 128, false)
	})
	if allocs != 0 {
		t.Fatalf("TLS store/load fast path allocates %.1f objects per access group, want 0", allocs)
	}
}

// TestTracerFastPathAllocs pins the TEST heap-access recording path (the
// per-load/per-store timestamp CAM updates) to zero allocations.
func TestTracerFastPathAllocs(t *testing.T) {
	cfg := tracer.DefaultConfig()
	cfg.MemWords = 1 << 16
	tr := tracer.New(cfg)
	defer tr.Release()
	now := int64(0)
	tr.OnSloop(1, now)
	// Warm the structures: first touches may grow slabs.
	for a := mem.Addr(256); a < 512; a++ {
		now++
		tr.OnStore(a, now, tracer.ClassHeap)
		now++
		tr.OnLoad(a, now, tracer.ClassHeap)
	}
	allocs := testing.AllocsPerRun(200, func() {
		now++
		tr.OnStore(300, now, tracer.ClassHeap)
		now++
		tr.OnLoad(300, now, tracer.ClassHeap)
		now++
		tr.OnLocalStore(42, 3, now)
		now++
		tr.OnLocalLoad(42, 3, now)
	})
	if allocs != 0 {
		t.Fatalf("tracer record path allocates %.1f objects per access group, want 0", allocs)
	}
}
