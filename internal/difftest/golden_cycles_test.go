package difftest

// Golden cycle-equivalence suite: the simulated results of every workload —
// cycle counts of all three phases, the Figure 10 state buckets, violation
// and overflow counts — are pinned to the values recorded in
// testdata/golden_cycles.json. Host-side optimizations (hardware-shaped TLS
// buffers, tracer timestamp memories, scheduler fast paths, parallel
// harnesses) must leave every one of these numbers bit-identical: only host
// time is allowed to move. Regenerate with
//
//	go test ./internal/difftest -run TestGoldenCycles -update-golden
//
// and review the diff as carefully as a simulator change: any delta is a
// simulated-behaviour change, not a performance one.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/workloads"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cycles.json from the current simulator")

// GoldenRow pins one configuration's simulated results.
type GoldenRow struct {
	Seq        int64
	Profile    int64
	TLS        int64
	Commits    int64
	Violations int64
	Overflows  int64
	Stats      tls.StateStats
}

func rowOf(res *core.Result) GoldenRow {
	return GoldenRow{
		Seq: res.Seq.Cycles, Profile: res.Profile.Cycles, TLS: res.TLS.Cycles,
		Commits: res.TLS.Commits, Violations: res.TLS.Violations,
		Overflows: res.TLS.Overflows, Stats: res.TLS.Stats,
	}
}

// captureGolden runs the full workload suite (plus ablation spot checks) and
// returns the simulated results keyed by configuration name.
func captureGolden(t *testing.T) map[string]GoldenRow {
	t.Helper()
	out := map[string]GoldenRow{}
	rec := func(key string, res *core.Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if !res.OutputsMatch {
			t.Fatalf("%s: speculative output mismatch", key)
		}
		out[key] = rowOf(res)
	}
	for _, w := range workloads.All() {
		opts := core.DefaultOptions()
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		res, err := core.Run(w.Build(), opts)
		rec(w.Name, res, err)
		if w.BuildTransformed != nil {
			tr, err := core.Run(w.BuildTransformed(), opts)
			rec(w.Name+"/transformed", tr, err)
		}
	}
	// Ablation spot checks: capacity, handler generation, CPU count and
	// comparator banks all reshape the fast-path structures under test.
	{
		o := core.DefaultOptions()
		tc := tls.DefaultConfig(o.NCPU)
		tc.StoreBufferLines = 16
		o.TLS = &tc
		res, err := core.Run(workloads.ByName("fft").Build(), o)
		rec("ablate/stbuf16/fft", res, err)
	}
	{
		o := core.DefaultOptions()
		o.Handlers = tls.OldHandlers
		res, err := core.Run(workloads.ByName("BitOps").Build(), o)
		rec("ablate/oldhandlers/BitOps", res, err)
	}
	{
		o := core.DefaultOptions()
		o.NCPU = 8
		res, err := core.Run(workloads.ByName("FourierTest").Build(), o)
		rec("ablate/cpus8/FourierTest", res, err)
	}
	{
		o := core.DefaultOptions()
		tc := tracer.DefaultConfig()
		tc.NumBanks = 1
		o.Tracer = &tc
		res, err := core.Run(workloads.ByName("LuFactor").Build(), o)
		rec("ablate/banks1/LuFactor", res, err)
	}
	return out
}

func goldenPath() string { return filepath.Join("testdata", "golden_cycles.json") }

func TestGoldenCycles(t *testing.T) {
	got := captureGolden(t)

	if *updateGolden {
		var keys []string
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]GoldenRow, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden rows to %s", len(got), goldenPath())
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	want := map[string]GoldenRow{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d rows, capture produced %d", len(want), len(got))
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from capture", k)
			continue
		}
		if !reflect.DeepEqual(g, want[k]) {
			t.Errorf("%s: simulated results diverged from golden\n got: %s\nwant: %s",
				k, fmtRow(g), fmtRow(want[k]))
		}
	}
}

func fmtRow(r GoldenRow) string {
	return fmt.Sprintf("seq=%d profile=%d tls=%d commits=%d viol=%d ovf=%d stats=%+v",
		r.Seq, r.Profile, r.TLS, r.Commits, r.Violations, r.Overflows, r.Stats)
}
