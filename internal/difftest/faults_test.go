package difftest

import (
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	"jrpm/internal/tls"
)

// TestDifferentialUnderFaultPlan: random programs run under a seeded
// adversarial fault plan with the guard armed. Every run must complete
// (no panics, no storms), pass the post-commit oracle, and match the
// independent AST interpreter.
func TestDifferentialUnderFaultPlan(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 6
	}
	guard := tls.DefaultGuardConfig()
	for seed := int64(300); seed < int64(300+seeds); seed++ {
		c := Generate(seed, DefaultConfig())
		bp, err := c.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := c.Oracle()
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		opts := core.DefaultOptions()
		opts.Faults = &faultinject.Plan{
			Seed: seed, RAW: 0.01, Overflow: 0.05, Bus: 0.1, BusDelay: 6, Heap: 0.005,
		}
		opts.Guard = &guard
		res, err := core.Run(bp, opts)
		if err != nil {
			t.Fatalf("seed %d: pipeline under faults: %v", seed, err)
		}
		if !res.OracleChecked {
			t.Fatalf("seed %d: oracle not checked under an active plan", seed)
		}
		if !equal(res.TLS.Output, want) {
			t.Errorf("seed %d: speculative output %v, oracle %v (faults fired: %v)",
				seed, res.TLS.Output, want, res.TLS.FaultsFired)
		}
	}
}

// TestDifferentialFaultRunsAreReproducible: the same program and plan twice
// must agree cycle for cycle and fault for fault.
func TestDifferentialFaultRunsAreReproducible(t *testing.T) {
	c := Generate(77, DefaultConfig())
	bp, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Faults = &faultinject.Plan{Seed: 77, RAW: 0.02, Overflow: 0.1, Bus: 0.2, BusDelay: 4}
	a, err := core.Run(bp, opts)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Generate(77, DefaultConfig())
	bp2, err := c2.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(bp2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.TLS.Cycles != b.TLS.Cycles {
		t.Fatalf("cycles diverged: %d vs %d", a.TLS.Cycles, b.TLS.Cycles)
	}
	for ch, n := range a.TLS.FaultsFired {
		if b.TLS.FaultsFired[ch] != n {
			t.Fatalf("fault counts diverged on %s: %d vs %d", ch, n, b.TLS.FaultsFired[ch])
		}
	}
}
