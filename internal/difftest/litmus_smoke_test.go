package difftest

// The litmus machine (internal/litmus) is the third leg of the conformance
// stack: the random-program fuzzer here covers large behaviours, the golden
// cycles pin exact numbers, and litmus exhausts every interleaving of tiny
// protocol scenarios. This smoke keeps a representative exhaustive slice in
// tier-1 so a protocol regression fails plain `go test`, not just the
// scheduled deep sweeps.

import (
	"testing"

	"jrpm/internal/litmus"
)

// litmusSmokeFamilies are small enough to exhaust in well under a second
// each while still crossing the interesting protocol axes: basic loads and
// stores, tiny buffers forcing overflow-park/drain, and the special ops
// (CommitPartial, DrainOverflow, ViolateFrom, DemoteSolo, SwitchSTL,
// Shutdown, TrackRead) injected at every script position.
var litmusSmokeFamilies = []litmus.EnumSpec{
	{Threads: 2, Addrs: 2, Len: 2, Vocab: litmus.VocabBasic},
	{Threads: 2, Addrs: 2, Len: 2, Vocab: litmus.VocabBasic, SameLine: true},
	{Threads: 2, Addrs: 2, Len: 2, Vocab: litmus.VocabBasic, StoreLines: 1, LoadLines: 1},
	{Threads: 2, Addrs: 2, Len: 1, Vocab: litmus.VocabTracked, Specials: true},
}

func TestLitmusSmoke(t *testing.T) {
	for _, spec := range litmusSmokeFamilies {
		spec := spec
		ran := int64(0)
		spec.Enumerate(func(tt *litmus.Test) bool {
			res, err := litmus.Explore(tt, litmus.Options{})
			if err != nil {
				t.Fatalf("%s: %v", tt.Name, err)
			}
			if res.Div != nil {
				t.Fatalf("%s diverged %s: %s\n%s", tt.Name, res.Div.Check, res.Div.Detail, res.Div.Timeline)
			}
			if !res.Exhausted {
				t.Fatalf("%s: exploration not exhausted", tt.Name)
			}
			ran++
			return true
		})
		if ran != spec.Count() {
			t.Fatalf("family %+v: ran %d of %d tests", spec, ran, spec.Count())
		}
	}
}
