package difftest

// Fleet drain migration: when the shard that owns a job drains mid-run
// (rolling restart, scale-down), the router must carry the replica's last
// safepoint checkpoint to the next shard in ring order and finish the job
// there — resuming mid-simulation, producing wire bytes identical to an
// undisturbed replica run, and only then admitting the result to the cache.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"jrpm/internal/fleet"
	"jrpm/internal/serve"
)

// migrationSource is a single long loop (~0.7s of wall time) so the drain
// reliably lands while the job is mid-simulation with checkpoints banked.
func migrationSource() string {
	return fmt.Sprintf(`
program migrate
statics 1
method main args=0 locals=2 returns=false
    const 0
    store 1
    const 0
    store 0
  .L:
    load 0
    const %d
    if_icmpge .E
    load 1
    load 0
    const 17
    imul
    iadd
    store 1
    iinc 0 1
    goto .L
  .E:
    load 1
    print
    return
end
`, 1_000_000)
}

func TestFleetDrainMigration(t *testing.T) {
	scfg := serve.Config{
		Workers:         2,
		QueueDepth:      8,
		DefaultDeadline: 60 * time.Second,
		CheckpointEvery: 10 * time.Millisecond,
	}
	h := newFleetHarness(t, 2, fleet.Config{Serve: scfg})
	spec := serve.JobSpec{Name: "migrate", Source: migrationSource()}

	key, err := h.router.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	order := h.router.Ring().Order(key)
	owner, survivor := order[0], order[1]

	type outcome struct {
		out fleet.Outcome
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		out, derr := h.router.Do(ctx, spec)
		done <- outcome{out, derr}
	}()

	// Wait until the owning replica has the job running with at least one
	// checkpoint banked, then drain it with zero grace: the shutdown sweep
	// captures a final safepoint and the job is force-cancelled.
	ownerSrv := h.servers[owner]
	var jobID int64
	deadline := time.Now().Add(20 * time.Second)
	for jobID == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner replica never banked a checkpoint")
		}
		for _, v := range ownerSrv.Jobs() {
			if _, cerr := ownerSrv.Checkpoint(v.ID); cerr == nil {
				jobID = v.ID
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now())
	forced := ownerSrv.Shutdown(dctx)
	dcancel()
	if forced != 1 {
		t.Fatalf("owner drain force-cancelled %d jobs, want 1", forced)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("routed job failed across the drain: %v", r.err)
	}
	survivorName := fmt.Sprintf("replica-%d", survivor)
	if r.out.Replica != survivorName {
		t.Fatalf("job finished on %q, want failover to %q", r.out.Replica, survivorName)
	}
	if !r.out.View.Resumed {
		t.Fatal("migrated job restarted from scratch; want a checkpoint resume")
	}
	if n := h.router.Metrics().Counter("jrpm_fleet_migrations_total").Value(); n != 1 {
		t.Fatalf("jrpm_fleet_migrations_total = %d, want 1", n)
	}

	// The migrated result must be byte-identical to an undisturbed replica
	// run of the same spec.
	mem := serve.New(scfg)
	mem.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mem.Shutdown(ctx)
	}()
	rv, err := mem.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	rview, err := mem.Wait(wctx, rv.ID)
	wcancel()
	if err != nil || rview.Status != serve.StatusDone {
		t.Fatalf("reference run: %+v err=%v", rview, err)
	}
	refWire, err := mem.ResultBytes(rv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.out.Wire, refWire) {
		t.Fatalf("migrated result diverged from undisturbed run (%d vs %d bytes)", len(r.out.Wire), len(refWire))
	}

	// A migrated job that resumed its checkpoint is cache-worthy: the rerun
	// must hit without touching the surviving replica again.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	again, err := h.router.Do(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("resumed migrated result was not cached")
	}
	if !bytes.Equal(again.Wire, refWire) {
		t.Fatal("cached migrated result diverged")
	}
}
