package difftest

// Golden Chrome-trace snapshot: one generated workload runs with the flight
// recorder attached and its exported Perfetto JSON is pinned byte-for-byte.
// The exporter is deterministic (fixed struct field order, sorted map keys,
// no wall-clock input), so any diff here means either the simulator's event
// stream or the trace encoding changed — both need review. Regenerate with
//
//	go test ./internal/difftest -run TestGoldenChromeTrace -update-golden

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/obs"
)

// traceGoldenSeed picks a generated case that actually speculates (commits
// observed) so the golden file pins run/wait/violated spans, not an empty
// timeline.
const traceGoldenSeed = 11

func TestGoldenChromeTrace(t *testing.T) {
	cs := Generate(traceGoldenSeed, DefaultConfig())
	prog, err := cs.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ring := obs.NewRingMasked(1<<16, obs.MaskDefault)
	opts := core.DefaultOptions()
	opts.Recorder = ring
	res, err := core.Run(prog, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.OutputsMatch {
		t.Fatal("speculative output mismatch")
	}
	if res.TLS.Commits == 0 {
		t.Fatalf("seed %d no longer speculates; pick a seed with commits", traceGoldenSeed)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring overflowed (%d dropped); golden trace must be complete", ring.Dropped())
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, ring.Events(), opts.NCPU, "golden"); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}

	path := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("rewrote %s (%d trace events)", path, len(doc.TraceEvents))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from %s (%d bytes vs %d golden); "+
			"regenerate with -update-golden and review the diff", path, buf.Len(), len(want))
	}
}
