package difftest

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"jrpm/internal/codec"
	"jrpm/internal/core"
	"jrpm/internal/workloads"
)

// TestCheckpointConformance proves the crash-durability contract at the
// core level: for every Table 3 workload, (1) running with checkpointing
// armed at every safepoint edge perturbs nothing — the wire result is
// byte-identical to the straight run — and (2) resuming the pipeline from
// each sampled checkpoint reproduces the straight run's final clock,
// violation counts and canonical wire result exactly.
//
// By default three resume points are exercised per workload (the earliest,
// a middle and the latest checkpoint, spanning both the seq and tls
// stages when present); JRPM_CKPT_EXHAUSTIVE=1 resumes from every captured
// safepoint.
func TestCheckpointConformance(t *testing.T) {
	exhaustive := os.Getenv("JRPM_CKPT_EXHAUSTIVE") == "1"
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:8]
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			opts := core.DefaultOptions()
			if w.HeapWords > 0 {
				opts.VM.HeapWords = w.HeapWords
			}
			ref, err := core.Run(w.Build(), opts)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}
			refWire := codec.EncodeResult(ref)

			// Capture run: re-arm at every delivery so a snapshot fires at
			// every safepoint edge; a small stride gives resume points even
			// in the shortest Table 3 kernels.
			var cps []*core.Checkpoint
			cc := &core.CheckpointController{Stride: 2048}
			cc.OnCheckpoint = func(cp *core.Checkpoint, seq int64) {
				cps = append(cps, cp)
				cc.Request()
			}
			copts := opts
			copts.Checkpoint = cc
			cc.Request()
			capRes, err := core.Run(w.Build(), copts)
			if err != nil {
				t.Fatalf("capture run: %v", err)
			}
			if !bytes.Equal(codec.EncodeResult(capRes), refWire) {
				t.Fatalf("checkpointing perturbed the run: wire bytes differ from straight run")
			}
			if len(cps) == 0 {
				t.Fatalf("no checkpoints captured")
			}

			sample := cps
			if !exhaustive && len(cps) > 3 {
				sample = []*core.Checkpoint{cps[0], cps[len(cps)/2], cps[len(cps)-1]}
			}
			for i, cp := range sample {
				res, err := core.ResumeTLS(w.Build(), opts, cp)
				if err != nil {
					t.Fatalf("resume %d (stage %s, clock %d): %v", i, cp.Stage, cp.Machine.Clock, err)
				}
				if res.TLS.Cycles != ref.TLS.Cycles || res.Seq.Cycles != ref.Seq.Cycles {
					t.Errorf("resume %d (stage %s, clock %d): cycles diverged: seq %d/%d tls %d/%d",
						i, cp.Stage, cp.Machine.Clock, res.Seq.Cycles, ref.Seq.Cycles, res.TLS.Cycles, ref.TLS.Cycles)
				}
				if res.TLS.Violations != ref.TLS.Violations {
					t.Errorf("resume %d (stage %s): violations diverged: %d vs %d",
						i, cp.Stage, res.TLS.Violations, ref.TLS.Violations)
				}
				if got := codec.EncodeResult(res); !bytes.Equal(got, refWire) {
					t.Errorf("resume %d (stage %s, clock %d): wire result differs from straight run (%d vs %d bytes)",
						i, cp.Stage, cp.Machine.Clock, len(got), len(refWire))
				}
			}
			if exhaustive {
				t.Logf("%s: %d safepoints resumed bit-identically", w.Name, len(sample))
			}
		})
	}
}

// TestCheckpointStageCoverage asserts the capture machinery sees both
// pipeline stages on at least one workload — a conformance suite that only
// ever snapshots the sequential phase would silently under-test the TLS
// restore path (tier-2 warm state, guard state, speculation counters).
func TestCheckpointStageCoverage(t *testing.T) {
	stages := map[string]int{}
	for _, w := range workloads.All() {
		opts := core.DefaultOptions()
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		cc := &core.CheckpointController{}
		cc.OnCheckpoint = func(cp *core.Checkpoint, seq int64) {
			stages[cp.Stage]++
			cc.Request()
		}
		opts.Checkpoint = cc
		cc.Request()
		if _, err := core.Run(w.Build(), opts); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if stages[core.StageSeq] > 0 && stages[core.StageTLS] > 0 {
			break
		}
	}
	for _, st := range []string{core.StageSeq, core.StageTLS} {
		if stages[st] == 0 {
			t.Errorf("no %s-stage checkpoints captured across the suite", st)
		}
	}
	t.Log(func() string {
		return fmt.Sprintf("stage coverage: seq=%d tls=%d", stages[core.StageSeq], stages[core.StageTLS])
	}())
}
