package difftest

import (
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/tls"
)

// TestDifferentialSuite is the headline differential test: for a spread of
// seeds, the full pipeline's sequential, profiled and speculative runs must
// all match the independent AST interpreter.
func TestDifferentialSuite(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		c := Generate(seed, DefaultConfig())
		bp, err := c.Build()
		if err != nil {
			t.Fatalf("seed %d: generated program fails verification: %v", seed, err)
		}
		want, err := c.Oracle()
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		res, err := core.Run(bp, core.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: pipeline: %v", seed, err)
		}
		for phase, got := range map[string][]int64{
			"sequential":  res.Seq.Output,
			"profiled":    res.Profile.Output,
			"speculative": res.TLS.Output,
		} {
			if !equal(got, want) {
				t.Errorf("seed %d: %s output %v, oracle %v", seed, phase, got, want)
			}
		}
	}
}

// TestDifferentialSmallBuffers repeats a subset of seeds with tiny
// speculative buffers and old handlers: the overflow-stall and restart
// machinery must never change results.
func TestDifferentialSmallBuffers(t *testing.T) {
	opts := core.DefaultOptions()
	cfg := tls.DefaultConfig(opts.NCPU)
	cfg.StoreBufferLines = 3
	cfg.LoadBufferLines = 16
	opts.TLS = &cfg
	opts.Handlers = tls.OldHandlers
	for seed := int64(100); seed < 120; seed++ {
		c := Generate(seed, DefaultConfig())
		bp, err := c.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := c.Oracle()
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		res, err := core.Run(bp, opts)
		if err != nil {
			t.Fatalf("seed %d: pipeline: %v", seed, err)
		}
		if !equal(res.TLS.Output, want) {
			t.Errorf("seed %d: speculative output %v, oracle %v", seed, res.TLS.Output, want)
		}
	}
}

// TestDifferentialCPUCounts verifies sequential semantics hold on 2- and
// 8-CPU machines too.
func TestDifferentialCPUCounts(t *testing.T) {
	for _, ncpu := range []int{2, 8} {
		opts := core.DefaultOptions()
		opts.NCPU = ncpu
		for seed := int64(200); seed < 212; seed++ {
			c := Generate(seed, DefaultConfig())
			bp, err := c.Build()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want, err := c.Oracle()
			if err != nil {
				t.Fatalf("seed %d: oracle: %v", seed, err)
			}
			res, err := core.Run(bp, opts)
			if err != nil {
				t.Fatalf("ncpu %d seed %d: pipeline: %v", ncpu, seed, err)
			}
			if !equal(res.TLS.Output, want) {
				t.Errorf("ncpu %d seed %d: output %v, oracle %v", ncpu, seed, res.TLS.Output, want)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	wa, err := a.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !equal(wa, wb) {
		t.Fatal("same seed produced different programs")
	}
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
