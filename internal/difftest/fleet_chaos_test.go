package difftest

// The chaos storm drives the fleet the way an unlucky operator would: 64
// concurrent clients hammer a 3-replica fleet with a mixed spec workload
// while a chaos goroutine kills and revives one replica at a time. The
// invariant under all of it is *zero cross-job corruption*: every
// successful submission must return wire bytes identical to the expected
// encoding for its spec, precomputed from a direct pipeline run — a result
// served from the wrong cache entry, a torn coalesced flight, or a stale
// failover would all show up as a byte mismatch.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jrpm/internal/fleet"
	"jrpm/internal/progen"
	"jrpm/internal/serve"
)

// chaosBackend gates a live replica behind a kill switch: down replicas
// refuse new submissions (the router sees a transport error and must fail
// over), revived replicas serve again. In-flight jobs on the inner server
// are never torn, matching a replica whose listener died.
type chaosBackend struct {
	inner fleet.Backend
	down  atomic.Bool
}

func (c *chaosBackend) Name() string { return c.inner.Name() }

func (c *chaosBackend) Run(ctx context.Context, spec serve.JobSpec) ([]byte, serve.JobView, error) {
	if c.down.Load() {
		return nil, serve.JobView{}, errors.New("chaos: replica down")
	}
	return c.inner.Run(ctx, spec)
}

func TestFleetChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm of full pipeline runs")
	}
	scfg := serve.Config{}
	servers := make([]*serve.Server, 3)
	chaos := make([]*chaosBackend, 3)
	backends := make([]fleet.Backend, 3)
	for i := range servers {
		servers[i] = serve.New(scfg)
		servers[i].Start()
		chaos[i] = &chaosBackend{inner: &fleet.LocalBackend{
			ReplicaName: fmt.Sprintf("replica-%d", i), Server: servers[i]}}
		backends[i] = chaos[i]
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Shutdown(ctx)
		}
	})
	rt := fleet.New(fleet.Config{Serve: scfg}, backends)

	// A small spec population with precomputed expected wire bytes. Every
	// successful routed result must match its spec's entry exactly. Trace
	// jobs carry the flight recorder (tier-2 disabled), so their expected
	// wire is computed separately.
	const nspecs = 6
	specs := make([]serve.JobSpec, nspecs)
	expected := make([][]byte, nspecs)
	expectedTrace := make([][]byte, nspecs)
	for i := range specs {
		src, err := progen.Asm(progen.Generate(int64(100+i), progen.QuickConfig()))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = serve.JobSpec{Name: fmt.Sprintf("storm-%d", i), Source: src, Mode: "tls"}
		expected[i], _ = directWire(t, scfg, specs[i])
		tspec := specs[i]
		tspec.Trace = true
		expectedTrace[i], _ = directWire(t, scfg, tspec)
	}

	// Deterministic failover before the storm: kill spec 0's owning shard
	// and prove the fleet routes around it (trace jobs bypass the cache, so
	// this dispatches even if the storm later would not).
	key, err := rt.Key(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	owner := rt.Ring().Order(key)[0]
	chaos[owner].down.Store(true)
	traceSpec := specs[0]
	traceSpec.Trace = true
	out, err := rt.Do(context.Background(), traceSpec)
	if err != nil {
		t.Fatalf("failover around killed owner: %v", err)
	}
	if out.Replica == chaos[owner].Name() {
		t.Fatalf("killed owner %s served the job", out.Replica)
	}
	if !bytes.Equal(out.Wire, expectedTrace[0]) {
		t.Fatal("failover result differs from direct run")
	}
	chaos[owner].down.Store(false)
	if v := rt.Metrics().Counter("jrpm_fleet_failovers_total").Value(); v == 0 {
		t.Fatal("no failover recorded for the killed owner")
	}

	// The storm: one chaos goroutine cycles kills across the replicas (at
	// most one down at any instant, so the fleet always has capacity) while
	// 64 clients submit. Odd iterations use trace jobs to force live
	// dispatch under chaos; even iterations exercise cache and coalescing.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			target := chaos[i%len(chaos)]
			target.down.Store(true)
			select {
			case <-stop:
				target.down.Store(false)
				return
			case <-time.After(3 * time.Millisecond):
			}
			target.down.Store(false)
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	const clients = 64
	const iters = 6
	var corrupt, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				idx := (c + it) % nspecs
				spec := specs[idx]
				spec.Trace = it%2 == 1
				want := expected[idx]
				if spec.Trace {
					want = expectedTrace[idx]
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				out, err := rt.Do(ctx, spec)
				cancel()
				if err != nil {
					// With at most one replica down at a time and failover
					// across three shards, submissions must keep succeeding.
					failed.Add(1)
					t.Errorf("client %d iter %d (%s): %v", c, it, spec.Name, err)
					continue
				}
				if !bytes.Equal(out.Wire, want) {
					corrupt.Add(1)
					t.Errorf("client %d iter %d: %s returned foreign bytes (hit=%v coalesced=%v replica=%q)",
						c, it, spec.Name, out.CacheHit, out.Coalesced, out.Replica)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()

	if n := corrupt.Load(); n != 0 {
		t.Fatalf("%d cross-job corruptions under chaos", n)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d submissions failed under chaos", n)
	}
	reg := rt.Metrics()
	if v := reg.Counter("jrpm_fleet_cache_hits_total").Value(); v == 0 {
		t.Fatal("storm produced no cache hits")
	}
	t.Logf("storm: %d jobs, %d hits, %d coalesced joins, %d failovers, %d shed, %d hedges",
		reg.Counter("jrpm_fleet_jobs_total").Value(),
		reg.Counter("jrpm_fleet_cache_hits_total").Value(),
		reg.Counter("jrpm_fleet_coalesce_joined_total").Value(),
		reg.Counter("jrpm_fleet_failovers_total").Value(),
		reg.Counter("jrpm_fleet_breaker_shed_total").Value(),
		reg.Counter("jrpm_fleet_hedges_total").Value())
}
