package difftest

// The differential fleet-conformance suite is the acceptance bar for the
// sharded fleet: for every Table 3 workload, four ways of obtaining a
// result must agree byte for byte on the canonical wire encoding —
//
//   direct     core.Run with the exact options serve derives for the spec
//   routed     through the fleet router across two live replicas
//   cached     a resubmission served from the router's LRU
//   coalesced  concurrent identical submissions collapsed to one execution
//
// — and the decoded wire must render the paper's tables and figures
// identically to the in-process result. Any divergence means the codec,
// the cache key, or the router changed what the pipeline computes.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"jrpm/internal/cfg"
	"jrpm/internal/codec"
	"jrpm/internal/core"
	"jrpm/internal/fleet"
	"jrpm/internal/obs"
	"jrpm/internal/report"
	"jrpm/internal/serve"
	"jrpm/internal/workloads"
)

// fleetHarness is a router over n in-process replicas sharing one serve
// config (the router derives cache keys from the same config the replicas
// run, exactly as a deployed fleet must).
type fleetHarness struct {
	scfg    serve.Config
	servers []*serve.Server
	router  *fleet.Router
}

func newFleetHarness(t testing.TB, n int, fcfg fleet.Config) *fleetHarness {
	t.Helper()
	h := &fleetHarness{scfg: fcfg.Serve}
	backends := make([]fleet.Backend, n)
	for i := 0; i < n; i++ {
		s := serve.New(h.scfg)
		s.Start()
		h.servers = append(h.servers, s)
		backends[i] = &fleet.LocalBackend{ReplicaName: fmt.Sprintf("replica-%d", i), Server: s}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range h.servers {
			s.Shutdown(ctx)
		}
	})
	h.router = fleet.New(fcfg, backends)
	return h
}

// directWire runs the spec the way a replica would — same program build,
// same derived options — and returns the canonical encoding. This is the
// oracle every fleet path is measured against.
func directWire(t testing.TB, scfg serve.Config, spec serve.JobSpec) ([]byte, *core.Result) {
	t.Helper()
	bp, _, err := serve.BuildProgram(spec)
	if err != nil {
		t.Fatalf("%s: build: %v", spec.Name, err)
	}
	first, _, err := serve.ParseMode(spec.Mode)
	if err != nil {
		t.Fatalf("%s: mode: %v", spec.Name, err)
	}
	opts, err := scfg.OptionsForSpec(spec, first)
	if err != nil {
		t.Fatalf("%s: options: %v", spec.Name, err)
	}
	// Replicas run every attempt under a cancellable deadline context. The
	// machine's cancel-polling stride keeps tier-2 blocks from fusing across
	// check boundaries, so the host-side tier counters in the wire result
	// depend on whether a cancellable context is attached (simulated cycles
	// do not). Reproduce the replica environment: a cancellable context that
	// never fires.
	dctx, dcancel := context.WithCancel(context.Background())
	defer dcancel()
	opts.Ctx = dctx
	// Trace jobs run with the flight recorder attached, which disables the
	// tier-2 block engine: their tier counters legitimately differ from
	// untraced runs — the reason the router never caches them. Mirror it.
	// The ring's capacity and mask are pure observation — only the
	// recorder's presence changes the wire (tier counters).
	if spec.Trace {
		opts.Recorder = obs.NewRingMasked(1<<18, obs.MaskDefault)
	}
	res, err := core.Run(bp, opts)
	if err != nil {
		t.Fatalf("%s: direct run: %v", spec.Name, err)
	}
	return codec.EncodeResult(res), res
}

// renderOne renders the single-workload slice of every paper artifact that
// depends only on the result (Table 4 needs the transformed variant, which
// does not travel on the wire).
func renderOne(w *workloads.Workload, res *core.Result) string {
	info := cfg.AnalyzeProgram(w.Build())
	sr := &report.SuiteResult{Workload: w, Result: res,
		LoopCount: info.TotalLoops(), MaxDepth: info.MaxLoopDepth()}
	one := []*report.SuiteResult{sr}
	return report.Table3(one) + report.Figure8(one) + report.Figure9(one) +
		report.Figure10(one) + report.CategorySummary(one)
}

// TestFleetConformance is the differential oracle over the full Table 3
// suite: direct vs routed vs cached, plus render-level equality of the
// decoded wire.
func TestFleetConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	h := newFleetHarness(t, 2, fleet.Config{})
	ctx := context.Background()

	for _, w := range workloads.All() {
		spec := serve.JobSpec{Workload: w.Name, Mode: "tls"}
		want, directRes := directWire(t, h.scfg, spec)

		routed, err := h.router.Do(ctx, spec)
		if err != nil {
			t.Fatalf("%s: routed: %v", w.Name, err)
		}
		if routed.CacheHit {
			t.Fatalf("%s: first routed call claimed a cache hit", w.Name)
		}
		if !bytes.Equal(routed.Wire, want) {
			t.Fatalf("%s: routed wire differs from direct run (%d vs %d bytes)",
				w.Name, len(routed.Wire), len(want))
		}

		cached, err := h.router.Do(ctx, spec)
		if err != nil {
			t.Fatalf("%s: cached resubmit: %v", w.Name, err)
		}
		if !cached.CacheHit {
			t.Fatalf("%s: resubmission was not served from cache", w.Name)
		}
		if !bytes.Equal(cached.Wire, want) {
			t.Fatalf("%s: cached wire differs from direct run", w.Name)
		}

		// Render-level equality: a decoded wire result must reproduce the
		// paper artifacts character for character.
		decoded, err := codec.DecodeResult(routed.Wire)
		if err != nil {
			t.Fatalf("%s: decode routed wire: %v", w.Name, err)
		}
		if got, want := renderOne(w, decoded), renderOne(w, directRes); got != want {
			t.Fatalf("%s: reports from decoded wire differ from direct run:\n--- decoded ---\n%s\n--- direct ---\n%s",
				w.Name, got, want)
		}
	}
}

// TestFleetCoalescedConformance pins the fourth leg: concurrent identical
// submissions collapse — every caller gets bytes identical to the direct
// run, and the replicas execute the job at most a handful of times (one
// flight plus stragglers that arrived after it completed and hit the cache).
func TestFleetCoalescedConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs")
	}
	h := newFleetHarness(t, 2, fleet.Config{})
	spec := serve.JobSpec{Workload: "BitOps", Mode: "tls"}
	want, _ := directWire(t, h.scfg, spec)

	const callers = 16
	var wg sync.WaitGroup
	outs := make([]fleet.Outcome, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = h.router.Do(context.Background(), spec)
		}(i)
	}
	wg.Wait()

	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i].Wire, want) {
			t.Fatalf("caller %d: wire differs from direct run", i)
		}
	}
	executed := 0
	for _, s := range h.servers {
		executed += len(s.Jobs())
	}
	if executed == 0 || executed > callers/2 {
		t.Fatalf("replicas executed %d jobs for %d identical concurrent callers", executed, callers)
	}
	reg := h.router.Metrics()
	if v := reg.Counter("jrpm_fleet_coalesce_executions_total").Value(); int(v) != executed {
		t.Fatalf("coalesce executions metric %d, replicas saw %d jobs", v, executed)
	}
	joined := reg.Counter("jrpm_fleet_coalesce_joined_total").Value()
	hits := reg.Counter("jrpm_fleet_cache_hits_total").Value()
	if int64(executed)+joined+hits != callers {
		t.Fatalf("accounting: %d executed + %d joined + %d hits != %d callers",
			executed, joined, hits, callers)
	}
}
