package difftest

// Golden doctor-report suite: the speculation doctor's full text report for
// two Table 3 workloads is pinned byte-for-byte. The report is a pure
// function of the simulated run (which the golden cycle suite already pins),
// so any diff here is either a simulated-behaviour change or a report-format
// change — both deserve review. Regenerate with
//
//	go test ./internal/difftest -run TestDoctorGolden -update-golden

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/diagnose"
	"jrpm/internal/workloads"
)

// doctorGoldenWorkloads: one violation-free numeric kernel and one
// violation-heavy workload so the golden output exercises both the healthy
// verdict path and site attribution with hints.
var doctorGoldenWorkloads = []string{"FourierTest", "db"}

func doctorReport(t *testing.T, name string) []byte {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %s", name)
	}
	opts := core.DefaultOptions()
	opts.Diagnose = true
	if w.HeapWords > 0 {
		opts.VM.HeapWords = w.HeapWords
	}
	res, err := core.Run(w.Build(), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	res.Name = name
	rep, err := diagnose.Build(res)
	if err != nil {
		t.Fatalf("%s: diagnose: %v", name, err)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	return buf.Bytes()
}

func TestDoctorGolden(t *testing.T) {
	for _, name := range doctorGoldenWorkloads {
		t.Run(name, func(t *testing.T) {
			got := doctorReport(t, name)
			path := filepath.Join("testdata", "doctor_"+name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("doctor report for %s diverged from %s\n--- got ---\n%s",
					name, path, got)
			}
		})
	}
}

// TestDoctorReportDeterministic: two identical diagnosed runs must render
// byte-identical reports — both text and JSON forms feed golden tests and
// CI artifacts, so ordering must never depend on map iteration.
func TestDoctorReportDeterministic(t *testing.T) {
	a := doctorReport(t, "db")
	b := doctorReport(t, "db")
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs rendered different doctor reports")
	}
}
