// Package difftest generates random programs and checks the whole Jrpm
// stack — frontend → bytecode → microJIT → Hydra, in plain, annotated and
// speculative modes — against an independent AST interpreter
// (frontend.Interpret). Any divergence between the oracle and any execution
// mode is a bug somewhere in the stack; the speculative comparison in
// particular exercises TLS correctness (forwarding, violations, commits,
// inductors, reductions, sync locks) on shapes no hand-written test covers.
//
// Generated programs always terminate: loops have constant bounds, array
// indices are range-reduced, divisors are forced nonzero, and recursion is
// not generated. Programs end by printing checksums of every local and
// array so that silent state corruption surfaces.
package difftest

import (
	"fmt"
	"math/rand"

	"jrpm/internal/bytecode"
	fe "jrpm/internal/frontend"
)

// Config bounds the generator.
type Config struct {
	MaxLoops     int // top-level loop statements in main
	MaxBodyStmts int // statements per loop body
	MaxExprDepth int
	MaxLocals    int
	ArrayLen     int64
	LoopIters    int64
}

// DefaultConfig returns generation bounds that produce programs with a few
// hundred thousand simulated cycles.
func DefaultConfig() Config {
	return Config{
		MaxLoops:     3,
		MaxBodyStmts: 6,
		MaxExprDepth: 3,
		MaxLocals:    5,
		ArrayLen:     48,
		LoopIters:    40,
	}
}

// Case is one generated program.
type Case struct {
	Seed    int64
	Program *fe.Program
}

// Generate builds a random program from a seed. The same seed always
// produces the same program.
func Generate(seed int64, cfg Config) *Case {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	return &Case{Seed: seed, Program: g.program(seed)}
}

type gen struct {
	rng     *rand.Rand
	cfg     Config
	locals  []string // int locals available for reads
	arrays  []string
	helper  *fe.FuncRef
	monitor string // a shared object for synchronized blocks
}

func (g *gen) program(seed int64) *fe.Program {
	p := fe.NewProgram(fmt.Sprintf("fuzz-%d", seed))
	// A small helper function: call sites exercise argument passing, the
	// callee frame discipline under speculation, and (since it is a leaf)
	// the microJIT inliner.
	g.helper = p.Func("mix", []string{"x", "y"}, true)
	k1, k2 := g.rng.Int63n(97)+3, g.rng.Int63n(31)+1
	g.helper.Body(
		fe.If(fe.Lt(fe.L("x"), fe.L("y")),
			fe.S(fe.Ret(fe.Add(fe.Mul(fe.L("x"), fe.I(k1)), fe.L("y")))), nil),
		fe.Ret(fe.BXor(fe.L("x"), fe.Add(fe.L("y"), fe.I(k2)))),
	)
	mon := p.Class("Mon", "x")
	main := p.Func("main", nil, false)

	var body []fe.Stmt
	g.monitor = "mon"
	body = append(body, fe.Set("mon", fe.NewE(mon)))
	// Declare locals with seed-derived values.
	n := 2 + g.rng.Intn(g.cfg.MaxLocals-1)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%d", i)
		body = append(body, fe.Set(name, fe.I(g.rng.Int63n(1000)-500)))
		g.locals = append(g.locals, name)
	}
	// One or two arrays, pre-filled deterministically.
	na := 1 + g.rng.Intn(2)
	for i := 0; i < na; i++ {
		name := fmt.Sprintf("a%d", i)
		body = append(body, fe.Set(name, fe.NewArr(fe.I(g.cfg.ArrayLen))))
		g.arrays = append(g.arrays, name)
		idx := fmt.Sprintf("fi%d", i)
		body = append(body, fe.ForUp(idx, fe.I(0), fe.I(g.cfg.ArrayLen),
			fe.SetIdx(fe.L(name), fe.L(idx),
				fe.Rem(fe.Mul(fe.L(idx), fe.I(g.rng.Int63n(97)+3)), fe.I(1009))),
		)...)
		g.locals = append(g.locals, idx)
	}

	// Random loops.
	loops := 1 + g.rng.Intn(g.cfg.MaxLoops)
	for i := 0; i < loops; i++ {
		body = append(body, g.loop(i)...)
	}

	// Checksums: every local and every array.
	for _, l := range g.locals {
		body = append(body, fe.Print(fe.L(l)))
	}
	for ai, a := range g.arrays {
		ck := fmt.Sprintf("ck%d", ai)
		body = append(body, fe.Set(ck, fe.I(0)))
		body = append(body, fe.ForUp("q"+ck, fe.I(0), fe.I(g.cfg.ArrayLen),
			fe.Set(ck, fe.Add(fe.Mul(fe.L(ck), fe.I(31)),
				fe.Idx(fe.L(a), fe.L("q"+ck)))),
		)...)
		body = append(body, fe.Print(fe.L(ck)))
	}
	main.Body(fe.Block(body))
	return p
}

// loop emits one counted loop with a random body. Depending on the draw it
// becomes an independent loop, a reduction, a carried chain, or a nest.
func (g *gen) loop(id int) []fe.Stmt {
	iv := fmt.Sprintf("i%d", id)
	iters := g.cfg.LoopIters/2 + g.rng.Int63n(g.cfg.LoopIters)
	var body []fe.Stmt
	stmts := 1 + g.rng.Intn(g.cfg.MaxBodyStmts)
	for s := 0; s < stmts; s++ {
		body = append(body, g.stmt(iv, id, s))
	}
	// Occasionally nest a small inner loop.
	if g.rng.Intn(3) == 0 {
		jv := fmt.Sprintf("j%d", id)
		inner := []fe.Stmt{g.stmt(jv, id, 99)}
		body = append(body, fe.ForUp(jv, fe.I(0), fe.I(4+g.rng.Int63n(8)), toAny(inner)...)...)
		g.locals = append(g.locals, jv)
	}
	g.locals = append(g.locals, iv)
	return fe.ForUp(iv, fe.I(0), fe.I(iters), toAny(body)...)
}

func toAny(in []fe.Stmt) []any {
	out := make([]any, len(in))
	for i, s := range in {
		out[i] = s
	}
	return out
}

// stmt emits one random statement inside a loop with counter iv.
func (g *gen) stmt(iv string, loopID, sid int) fe.Stmt {
	switch g.rng.Intn(9) {
	case 6: // try/catch around a possibly out-of-range access
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		l := g.pickLocal()
		return fe.Try(
			fe.S(fe.Set(l, fe.Idx(fe.L(a),
				fe.Sub(g.index(iv), fe.I(g.rng.Int63n(3)))))), // may go to -1/-2
			0, fmt.Sprintf("exc%d_%d", loopID, sid),
			fe.S(fe.Set(l, fe.I(-1))),
		)
	case 7: // synchronized update (elided during speculation)
		if g.monitor == "" {
			return fe.Set(g.pickLocal(), g.expr(iv, 1))
		}
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return fe.Synchronized(fe.L(g.monitor),
			fe.SetIdx(fe.L(a), g.index(iv), g.expr(iv, 2)),
		)
	case 8: // float round trip (bit-exact in both implementations)
		l := g.pickLocal()
		return fe.Set(l, fe.ToInt(fe.FMul(fe.ToFloat(fe.BAnd(g.expr(iv, 1), fe.I(0xfff))),
			fe.F(float64(g.rng.Intn(7)+1)))))
	}
	switch g.rng.Intn(6) {
	case 0: // array store at a range-reduced index
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return fe.SetIdx(fe.L(a), g.index(iv), g.expr(iv, g.cfg.MaxExprDepth))
	case 1: // accumulate into a fresh or existing local (reduction shape)
		l := g.pickLocal()
		return fe.Set(l, fe.Add(fe.L(l), g.expr(iv, 2)))
	case 2: // carried chain (unoptimizable dependency)
		l := g.pickLocal()
		return fe.Set(l, fe.Rem(fe.Add(fe.Mul(fe.L(l), fe.I(g.rng.Int63n(29)+3)),
			g.expr(iv, 1)), fe.I(9973)))
	case 3: // conditional update
		return fe.If(g.cond(iv),
			fe.S(fe.Set(g.pickLocal(), g.expr(iv, 2))),
			fe.S(fe.Set(g.pickLocal(), g.expr(iv, 1))))
	case 4: // local from array read, or through the helper function
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		if g.rng.Intn(2) == 0 {
			return fe.Set(g.pickLocal(),
				fe.CallE(g.helper, fe.Idx(fe.L(a), g.index(iv)), g.expr(iv, 1)))
		}
		return fe.Set(g.pickLocal(), fe.Idx(fe.L(a), g.index(iv)))
	default: // plain recompute
		return fe.Set(g.pickLocal(), g.expr(iv, g.cfg.MaxExprDepth))
	}
}

func (g *gen) pickLocal() string {
	return g.locals[g.rng.Intn(len(g.locals))]
}

// index yields an always-in-range array index expression.
func (g *gen) index(iv string) fe.Expr {
	base := g.expr(iv, 1)
	return fe.Rem(fe.BAnd(base, fe.I(0x7fffffff)), fe.I(g.cfg.ArrayLen))
}

func (g *gen) cond(iv string) fe.Cond {
	a, b := g.expr(iv, 1), g.expr(iv, 1)
	switch g.rng.Intn(4) {
	case 0:
		return fe.Lt(a, b)
	case 1:
		return fe.Ge(a, b)
	case 2:
		return fe.Eq(fe.Rem(fe.BAnd(a, fe.I(0xffff)), fe.I(3)), fe.I(0))
	default:
		return fe.AndC(fe.Le(a, b), fe.Ne(a, fe.I(7)))
	}
}

// expr yields a random integer expression over locals, the loop counter and
// constants; division is guarded nonzero.
func (g *gen) expr(iv string, depth int) fe.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fe.I(g.rng.Int63n(200) - 100)
		case 1:
			return fe.L(iv)
		default:
			return fe.L(g.pickLocal())
		}
	}
	a := g.expr(iv, depth-1)
	b := g.expr(iv, depth-1)
	switch g.rng.Intn(8) {
	case 0:
		return fe.Add(a, b)
	case 1:
		return fe.Sub(a, b)
	case 2:
		return fe.Mul(fe.BAnd(a, fe.I(0xffff)), fe.BAnd(b, fe.I(0xff)))
	case 3:
		return fe.Div(a, fe.Add(fe.BAnd(b, fe.I(15)), fe.I(1)))
	case 4:
		return fe.BXor(a, b)
	case 5:
		return fe.BAnd(a, b)
	case 6:
		return fe.MaxI(a, b)
	default:
		return fe.Shr(a, fe.BAnd(b, fe.I(7)))
	}
}

// Build compiles the case to verified bytecode.
func (c *Case) Build() (*bytecode.Program, error) {
	return c.Program.Build()
}

// Oracle interprets the case's AST and returns the expected output.
func (c *Case) Oracle() ([]int64, error) {
	return c.Program.Interpret(50_000_000)
}
