package workloads

import (
	"testing"

	"jrpm/internal/analyzer"
	"jrpm/internal/core"
	"jrpm/internal/tls"
)

// decisions runs the pipeline and returns the analyzer's decisions.
func decisions(t *testing.T, name string, transformed bool) *core.Result {
	t.Helper()
	w := ByName(name)
	build := w.Build
	if transformed {
		build = w.BuildTransformed
	}
	res, err := core.Run(build(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatalf("%s: output mismatch", name)
	}
	return res
}

func anySelected(res *core.Result, pred func(*analyzer.LoopDecision) bool) bool {
	for _, d := range res.Analysis.Decisions {
		if d.Selected && pred(d) {
			return true
		}
	}
	return false
}

// TestBitOpsUsesResetableInductor: §4.2.3's showcase benchmark must apply
// the resetable non-communicating inductor to its cyclic pointer.
func TestBitOpsUsesResetableInductor(t *testing.T) {
	res := decisions(t, "BitOps", false)
	if !anySelected(res, func(d *analyzer.LoopDecision) bool { return d.Resetable > 0 }) {
		t.Fatal("BitOps critical STL does not use a resetable inductor")
	}
}

// TestMp3UsesMultilevel: §4.2.6's showcase — the rare heavy frames run as a
// multilevel inner STL.
func TestMp3UsesMultilevel(t *testing.T) {
	res := decisions(t, "mp3", false)
	inner, outer := false, false
	for _, d := range res.Analysis.Decisions {
		if d.Inner {
			inner = true
		}
		if d.Multilevel {
			outer = true
		}
	}
	if !inner || !outer {
		t.Fatalf("mp3 multilevel decomposition missing (inner=%v outer=%v)", inner, outer)
	}
}

// TestHoistingApplies: NeuralNet's repeatedly entered small-trip layer
// loops are the §4.2.7 hoisting shape and must be selected hoisted;
// LuFactor's row-update loops carry the shape too, though this analyzer
// prefers the outer elimination loop for coverage, so there the shape need
// only be recognized.
func TestHoistingApplies(t *testing.T) {
	res := decisions(t, "NeuralNet", false)
	if !anySelected(res, func(d *analyzer.LoopDecision) bool { return d.Hoisted }) {
		t.Error("NeuralNet: no hoisted STL selected")
	}
	lu := decisions(t, "LuFactor", false)
	found := false
	for _, d := range lu.Analysis.Decisions {
		if d.Hoisted {
			found = true
		}
	}
	if !found {
		t.Error("LuFactor: hoisting shape not recognized on the row-update loops")
	}
}

// TestSyncLockApplies: the transformed db schedules its cursor so the
// automatic thread synchronizing lock takes over (Table 4: compiler
// optimizable).
func TestSyncLockApplies(t *testing.T) {
	res := decisions(t, "db", true)
	if !anySelected(res, func(d *analyzer.LoopDecision) bool { return d.SyncLocks > 0 }) {
		t.Fatal("transformed db does not use a synchronizing lock")
	}
}

// TestCompressViolationLimited: §6.2 names compress as dominated by
// violated time that the prediction cannot foresee.
func TestCompressViolationLimited(t *testing.T) {
	res := decisions(t, "compress", false)
	if res.TLS.Violations < 100 {
		t.Fatalf("compress violations = %d, expected hundreds", res.TLS.Violations)
	}
	st := res.TLS.Stats
	if st.RunViolated == 0 {
		t.Fatal("compress should discard speculative work")
	}
	if res.SpeedupPredicted() <= res.SpeedupActual() {
		t.Errorf("prediction (%.2f) should exceed actual (%.2f) for a violation-limited program",
			res.SpeedupPredicted(), res.SpeedupActual())
	}
}

// TestJLexLoadImbalance: §6.2 attributes jLex's gap to wait-used time from
// load imbalance.
func TestJLexLoadImbalance(t *testing.T) {
	res := decisions(t, "jLex", false)
	st := res.TLS.Stats
	if st.WaitUsed < st.RunUsed/10 {
		t.Fatalf("jLex wait-used (%d) should be a visible share of run-used (%d)",
			st.WaitUsed, st.RunUsed)
	}
}

// TestFFTBufferPressure: fft's late stages pressure the store buffer; at 16
// lines it degrades, matching the §6.2 overflow discussion.
func TestFFTBufferPressure(t *testing.T) {
	w := ByName("fft")
	base, err := core.Run(w.Build(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	small := core.DefaultOptions()
	cfg := tls.DefaultConfig(small.NCPU)
	cfg.StoreBufferLines = 16
	small.TLS = &cfg
	res, err := core.Run(w.Build(), small)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ")
	}
	if res.SpeedupActual() >= base.SpeedupActual() {
		t.Errorf("16-line buffer should hurt fft: %.2f vs %.2f",
			res.SpeedupActual(), base.SpeedupActual())
	}
}

// TestRaytraceOverflowVariantRejected: §6.1 contrasts two raytracers; the
// overflow-prone one is predicted to overflow and must not be selected.
func TestRaytraceOverflowVariantRejected(t *testing.T) {
	w := RaytraceOverflow()
	res, err := core.Run(w.Build(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ")
	}
	for _, d := range res.Analysis.Decisions {
		if !d.Selected || d.Stats == nil {
			continue
		}
		// The pixel loop writes ~80 lines per iteration; anything selected
		// must be a small loop, not the overflowing one.
		if d.Stats.MaxStoreLines > 64 {
			t.Fatalf("overflowing loop selected (max %d store lines)", d.Stats.MaxStoreLines)
		}
	}
}

// TestSerialHeavyBenchmarks: the paper's serial-section benchmarks must
// show large serial fractions in the state breakdown.
func TestSerialHeavyBenchmarks(t *testing.T) {
	for _, name := range []string{"deltaBlue", "MipsSimulator"} {
		res := decisions(t, name, false)
		if res.SerialFraction() < 0.5 {
			t.Errorf("%s: serial fraction %.2f, expected > 0.5", name, res.SerialFraction())
		}
	}
}

// TestTransformsAllImprove: every Table 4 transformation must beat its base
// (the paper: "significantly improve performance and do not slow down the
// original sequential execution").
func TestTransformsAllImprove(t *testing.T) {
	for _, w := range All() {
		if w.BuildTransformed == nil {
			continue
		}
		base := decisions(t, w.Name, false)
		tr := decisions(t, w.Name, true)
		if tr.SpeedupActual() <= base.SpeedupActual() {
			t.Errorf("%s: transform does not improve (%.2f -> %.2f)",
				w.Name, base.SpeedupActual(), tr.SpeedupActual())
		}
	}
}

// TestCategoryBands: the abstract's headline claim, as a regression test
// with generous margins.
func TestCategoryBands(t *testing.T) {
	sums := map[Category]float64{}
	counts := map[Category]int{}
	for _, w := range All() {
		res := decisions(t, w.Name, false)
		sp := res.SpeedupActual()
		if w.BuildTransformed != nil {
			tr := decisions(t, w.Name, true)
			if tr.SpeedupActual() > sp {
				sp = tr.SpeedupActual()
			}
		}
		sums[w.Category] += sp
		counts[w.Category]++
	}
	mean := func(c Category) float64 { return sums[c] / float64(counts[c]) }
	if m := mean(Float); m < 2.5 {
		t.Errorf("floating point mean %.2f, paper band is 3-4", m)
	}
	if m := mean(Multimedia); m < 1.8 {
		t.Errorf("multimedia mean %.2f, paper band is 2-3", m)
	}
	if m := mean(Integer); m < 1.5 {
		t.Errorf("integer mean %.2f, paper band is 1.5-2.5", m)
	}
}
