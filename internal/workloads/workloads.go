// Package workloads implements the paper's benchmark suite (Table 3): all
// 26 programs, rewritten as kernels against the Jrpm frontend, each
// reproducing the loop structure, dependency pattern and data-set shape
// that drives its result in §6 — plus the manually transformed variants of
// Table 4.
//
// The original class files (jBYTEmark, SPECjvm98, Java Grande, internet
// applications) cannot run on this system; what the paper's evaluation
// depends on is each program's dynamic dependency structure, which Table 3,
// Table 4 and the §6 discussion describe precisely enough to reproduce
// kernel by kernel. Data sets are scaled so the full pipeline (baseline +
// profiled + speculative runs) over the whole suite completes in seconds of
// host time while preserving each kernel's qualitative regime; the scaled
// parameters are recorded per workload and in EXPERIMENTS.md.
package workloads

import (
	"jrpm/internal/bytecode"
)

// Category is the paper's benchmark grouping.
type Category int

// Categories, in the paper's presentation order.
const (
	Integer Category = iota
	Float
	Multimedia
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Integer:
		return "Integer"
	case Float:
		return "Floating point"
	case Multimedia:
		return "Multimedia"
	}
	return "?"
}

// PaperRef carries the paper's reported numbers for the workload (Table 3
// and the Figure 8 bars, read to the precision the figures allow) so
// EXPERIMENTS.md can print paper-vs-measured.
type PaperRef struct {
	Speedup    float64 // Figure 8 actual TLS speedup (approximate)
	Analyzable bool    // Table 3 column a
	DataSetDep bool    // Table 3 column b (best STL depends on data size)
	SerialPct  float64 // Table 3 column i, fraction of serial execution
}

// Transform describes a Table 4 manual transformation.
type Transform struct {
	Difficulty   string // Low / Med
	CompilerAuto bool   // Table 4 "compiler optimizable"
	Lines        int    // lines modified in the original source
	Note         string
}

// Workload is one benchmark.
type Workload struct {
	Name        string
	Category    Category
	Description string
	DataSet     string // scaled parameters (paper's in parentheses)

	Paper PaperRef

	// Build constructs the program; BuildTransformed (optional) applies
	// the Table 4 manual transformation.
	Build            func() *bytecode.Program
	BuildTransformed func() *bytecode.Program
	Transformed      *Transform

	// HeapWords overrides the VM heap size (0 = default). Workloads with
	// allocation churn use a small heap so the collector actually runs and
	// its cost shows up in the Figure 9 accounting.
	HeapWords int
}

// All returns the suite in the paper's Table 3 order.
func All() []*Workload {
	return []*Workload{
		// Integer.
		Assignment(), BitOps(), Compress(), DB(), DeltaBlue(), EmFloatPnt(),
		Huffman(), IDEA(), Jess(), JLex(), MipsSimulator(), MonteCarlo(),
		NumHeapSort(), Raytrace(),
		// Floating point.
		Euler(), FFT(), FourierTest(), LuFactor(), MolDyn(), NeuralNet(),
		Shallow(),
		// Multimedia.
		DecJpeg(), EncJpeg(), H263Dec(), MpegVideo(), MP3(),
	}
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
