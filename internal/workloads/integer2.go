package workloads

import (
	"jrpm/internal/bytecode"
	. "jrpm/internal/frontend"
)

// IDEA — block cipher encryption. Blocks are independent, so iterations
// parallelize cleanly; per-block work is a fixed sequence of modular
// multiply/add/xor rounds.
func IDEA() *Workload {
	const blocks = 96
	build := func() *bytecode.Program {
		p := NewProgram("IDEA")
		p.Func("main", nil, false).Body(
			Set("in", NewArr(I(blocks*2))),
			Set("out", NewArr(I(blocks*2))),
			Set("keys", NewArr(I(16))),
			ForUp("k", I(0), I(16),
				SetIdx(L("keys"), L("k"), Add(pseudo(L("k"), 65535), I(1)))),
			ForUp("x", I(0), I(blocks*2),
				SetIdx(L("in"), L("x"), pseudo(L("x"), 65536))),
			ForUp("b", I(0), I(blocks),
				Set("x", Idx(L("in"), Mul(L("b"), I(2)))),
				Set("y", Idx(L("in"), Add(Mul(L("b"), I(2)), I(1)))),
				ForUp("r", I(0), I(8),
					Set("k1", Idx(L("keys"), Mul(L("r"), I(2)))),
					Set("k2", Idx(L("keys"), Add(Mul(L("r"), I(2)), I(1)))),
					Set("x", Rem(Mul(Add(L("x"), I(1)), L("k1")), I(65537))),
					Set("y", BAnd(Add(L("y"), L("k2")), I(65535))),
					Set("t", L("x")),
					Set("x", BXor(L("x"), L("y"))),
					Set("y", BAnd(Add(L("t"), L("y")), I(65535))),
				),
				SetIdx(L("out"), Mul(L("b"), I(2)), L("x")),
				SetIdx(L("out"), Add(Mul(L("b"), I(2)), I(1)), L("y")),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(blocks*2),
				Set("sum", BXor(L("sum"), Add(Idx(L("out"), L("q")), L("q")))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "IDEA", Category: Integer,
		Description: "Block cipher; independent 8-round blocks",
		DataSet:     "96 two-word blocks",
		Paper:       PaperRef{Speedup: 2.8, Analyzable: true, SerialPct: 0},
		Build:       build,
	}
}

// Jess — expert-system rule matching: each rule scans the fact base
// (read-only inside the match loop), with a serial conflict-resolution pass
// between cycles — partial parallelism plus a serial section.
func Jess() *Workload {
	const nfacts, nrules, cycles = 160, 24, 3
	build := func() *bytecode.Program {
		p := NewProgram("jess")
		vec := p.Class("FactVector", "size")
		p.Func("main", nil, false).Body(
			Set("mon", NewE(vec)),
			Set("facts", NewArr(I(nfacts))),
			Set("ra", NewArr(I(nrules))),
			Set("rb", NewArr(I(nrules))),
			Set("act", NewArr(I(nrules))),
			ForUp("x", I(0), I(nfacts),
				SetIdx(L("facts"), L("x"), pseudo(L("x"), 64))),
			ForUp("r", I(0), I(nrules),
				SetIdx(L("ra"), L("r"), pseudo(Add(L("r"), I(100)), 64)),
				SetIdx(L("rb"), L("r"), pseudo(Add(L("r"), I(200)), 8)),
			),
			Set("fired", I(0)),
			ForUp("c", I(0), I(cycles),
				// Match phase: rules scan facts independently.
				ForUp("r", I(0), I(nrules),
					Set("cnt", I(0)),
					Set("pa", Idx(L("ra"), L("r"))),
					Set("pb", Idx(L("rb"), L("r"))),
					// The fact base is a synchronized container: scans
					// enter its monitor (elided during speculation, §5.3).
					Synchronized(L("mon"),
						ForUp("f", I(0), I(nfacts),
							Set("fv", Idx(L("facts"), L("f"))),
							If(AndC(Ge(L("fv"), L("pa")),
								Eq(Rem(L("fv"), I(8)), L("pb"))),
								S(Inc("cnt", 1)), nil),
						),
					),
					SetIdx(L("act"), L("r"), L("cnt")),
				),
				// Conflict resolution: serial scan carrying best-so-far.
				Set("best", I(-1)),
				Set("bestr", I(0)),
				ForUp("r2", I(0), I(nrules),
					If(Gt(Idx(L("act"), L("r2")), L("best")), S(
						Set("best", Idx(L("act"), L("r2"))),
						Set("bestr", L("r2")),
					), nil),
				),
				// Fire: serial fact-base update.
				ForUp("u", I(0), I(8),
					SetIdx(L("facts"), Rem(Add(Mul(L("bestr"), I(19)), L("u")), I(nfacts)),
						pseudo(Add(L("c"), Mul(L("u"), I(31))), 64)),
				),
				Set("fired", Add(L("fired"), L("best"))),
			),
			Print(L("fired")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "jess", Category: Integer,
		Description: "Expert system rule matching with serial conflict resolution",
		DataSet:     "160 facts, 24 rules, 3 cycles (paper: SPEC jess)",
		Paper:       PaperRef{Speedup: 2.4, Analyzable: false, SerialPct: 0.07},
		Build:       build,
	}
}

// JLex — scanner-generator kernel: building DFA transition entries whose
// closure computation has a data-dependent length, so the parallel loop is
// imbalanced (wait-used), plus a serial worklist minimization pass.
func JLex() *Workload {
	const nstates, nsyms = 40, 12
	build := func() *bytecode.Program {
		p := NewProgram("jLex")
		p.Func("main", nil, false).Body(
			Set("trans", NewArr(I(nstates*nsyms))),
			// Transition construction: parallel over states, imbalanced.
			ForUp("s", I(0), I(nstates),
				ForUp("c", I(0), I(nsyms),
					Set("t", Add(Mul(L("s"), I(7)), L("c"))),
					// Closure walk of data-dependent length.
					Set("steps", Add(Add(I(1), Rem(Mul(L("s"), Add(L("c"), I(3))), I(17))),
						Sel(Eq(Rem(L("s"), I(8)), I(0)), I(90), I(0)))),
					Set("k", I(0)),
					While(Lt(L("k"), L("steps")),
						Set("t", Rem(Add(Mul(L("t"), I(5)), I(1)), I(nstates))),
						Inc("k", 1),
					),
					SetIdx(L("trans"), Add(Mul(L("s"), I(nsyms)), L("c")), L("t")),
				),
			),
			// Minimization-ish pass: serial worklist over partitions.
			Set("part", NewArr(I(nstates))),
			ForUp("s2", I(0), I(nstates),
				SetIdx(L("part"), L("s2"), Rem(L("s2"), I(2)))),
			Set("changed", I(1)),
			Set("rounds", I(0)),
			While(AndC(Gt(L("changed"), I(0)), Lt(L("rounds"), I(8))),
				Set("changed", I(0)),
				ForUp("s3", I(0), I(nstates),
					Set("sig", I(0)),
					ForUp("c2", I(0), I(nsyms),
						Set("sig", Add(Mul(L("sig"), I(3)),
							Idx(L("part"), Idx(L("trans"), Add(Mul(L("s3"), I(nsyms)), L("c2")))))),
					),
					Set("np", Rem(L("sig"), I(4))),
					If(Ne(L("np"), Idx(L("part"), L("s3"))), S(
						SetIdx(L("part"), L("s3"), L("np")),
						Set("changed", Add(L("changed"), I(1))),
					), nil),
				),
				Inc("rounds", 1),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(nstates*nsyms),
				Set("sum", Add(L("sum"), Idx(L("trans"), L("q")))),
			),
			Print(L("sum")),
			Print(L("rounds")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "jLex", Category: Integer,
		Description: "Lexical analyzer generator; imbalanced DFA construction",
		DataSet:     "40 states x 12 symbols",
		Paper:       PaperRef{Speedup: 1.4, Analyzable: false, SerialPct: 0.10},
		Build:       build,
	}
}

// MipsSimulator — a CPU interpreter. In the original, the simulated pc and
// the architectural register file in memory carry per-iteration
// dependencies, so speculation mostly serializes; the Table 4
// transformation (the paper's load-delay-slot forwarding rework) is modelled
// as trace-style execution: the instruction index becomes an inductor and
// register conflicts drop to occasional collisions.
func MipsSimulator() *Workload {
	const nins, steps = 128, 640
	prolog := func() []Stmt {
		return Block(
			// Encoded instruction memory: op(2b) rd(4b) rs(4b) rt(4b).
			Set("prog", NewArr(I(nins))),
			ForUp("x", I(0), I(nins),
				SetIdx(L("prog"), L("x"), pseudo(L("x"), 16384))),
			Set("regs", NewArr(I(16))),
			ForUp("r", I(0), I(16),
				SetIdx(L("regs"), L("r"), Add(L("r"), I(1)))),
		)
	}
	decodeExec := func(insVar string) []Stmt {
		return []Stmt{
			Set("op", BAnd(Shr(L(insVar), I(12)), I(3))),
			Set("rd", BAnd(Shr(L(insVar), I(8)), I(15))),
			Set("rs", BAnd(Shr(L(insVar), I(4)), I(15))),
			Set("rt", BAnd(L(insVar), I(15))),
			Set("a", Idx(L("regs"), L("rs"))),
			Set("b", Idx(L("regs"), L("rt"))),
			If(Eq(L("op"), I(0)), S(Set("v", Add(L("a"), L("b")))),
				S(If(Eq(L("op"), I(1)), S(Set("v", Sub(L("a"), L("b")))),
					S(If(Eq(L("op"), I(2)), S(Set("v", BXor(L("a"), L("b")))),
						S(Set("v", BAnd(Add(Mul(L("a"), I(3)), L("b")), I(0xffff))))))))),
			SetIdx(L("regs"), L("rd"), L("v")),
		}
	}
	return &Workload{
		Name: "MipsSimulator", Category: Integer,
		Description: "CPU interpreter; pc and register-file dependencies",
		DataSet:     "128 instructions, 640 simulated steps",
		Paper:       PaperRef{Speedup: 1.0, Analyzable: false, SerialPct: 0.05},
		Build: func() *bytecode.Program {
			p := NewProgram("MipsSimulator")
			p.Func("main", nil, false).Body(
				Block(prolog()),
				Set("pc", I(0)),
				ForUp("st", I(0), I(steps),
					Set("ins", Idx(L("prog"), L("pc"))),
					Block(decodeExec("ins")),
					// Branch: data-dependent next pc, set late.
					If(AndC(Eq(L("op"), I(3)), Eq(BAnd(L("v"), I(7)), I(0))),
						S(Set("pc", Rem(L("v"), I(nins)))),
						S(Set("pc", Rem(Add(L("pc"), I(1)), I(nins))))),
				),
				Set("sum", I(0)),
				ForUp("q", I(0), I(16),
					Set("sum", Add(L("sum"), Idx(L("regs"), L("q")))),
				),
				Print(L("sum")),
				Print(L("pc")),
			)
			return p.MustBuild()
		},
		BuildTransformed: func() *bytecode.Program {
			p := NewProgram("MipsSimulator-trace")
			p.Func("main", nil, false).Body(
				Block(prolog()),
				// Trace execution: instruction index is the loop inductor;
				// destination renaming spreads register writes.
				ForUp("st", I(0), I(steps),
					Set("ins", Idx(L("prog"), Rem(L("st"), I(nins)))),
					Block(decodeExec("ins")),
				),
				Set("sum", I(0)),
				ForUp("q", I(0), I(16),
					Set("sum", Add(L("sum"), Idx(L("regs"), L("q")))),
				),
				Print(L("sum")),
			)
			return p.MustBuild()
		},
		Transformed: &Transform{
			Difficulty: "Med", CompilerAuto: false, Lines: 70,
			Note: "Minimize dependencies for forwarding load delay slot value (trace-style dispatch)",
		},
	}
}

// MonteCarlo — Monte Carlo integration. The RNG seed is a frequent, short
// loop-carried dependency: the automatic thread synchronizing lock (§4.2.4)
// bounds the stall, and the Table 4 transformation pre-generates the seeds
// serially so the sample loop becomes fully parallel.
func MonteCarlo() *Workload {
	const samples = 256
	tail := func() []Stmt {
		return []Stmt{
			// Expensive per-sample function evaluation.
			Set("fx", ToFloat(L("seed"))),
			Set("fx", FDiv(L("fx"), F(1<<20))),
			Set("g", FAdd(Sin(L("fx")), Cos(FMul(L("fx"), F(2.0))))),
			Set("g", FMul(L("g"), Sqrt(FAdd(FMul(L("fx"), L("fx")), F(1.0))))),
			// Stratification adjustment consults the RNG state again.
			Set("acc", FAdd(L("acc"), FAdd(L("g"), FMul(ToFloat(BAnd(L("seed"), I(3))), F(0.001))))),
		}
	}
	return &Workload{
		Name: "monteCarlo", Category: Integer,
		Description: "Monte Carlo simulation; carried RNG seed protected by a sync lock",
		DataSet:     "256 samples",
		Paper:       PaperRef{Speedup: 2.2, Analyzable: false, SerialPct: 0.01},
		Build: func() *bytecode.Program {
			p := NewProgram("monteCarlo")
			p.Func("main", nil, false).Body(
				Set("seed", I(12345)),
				Set("acc", F(0)),
				ForUp("i", I(0), I(samples),
					// Per-sample setup precedes the seed update, so the
					// lock-protected span covers a visible slice of the
					// iteration (the manual transform removes it entirely).
					Set("j", Rem(Mul(L("i"), I(13)), I(64))),
					Set("j", Add(L("j"), Rem(Mul(L("j"), I(11)), I(37)))),
					Set("j", Add(L("j"), Rem(Mul(L("j"), I(7)), I(23)))),
					Set("seed", BAnd(Add(Mul(Add(L("seed"), L("j")), I(1103515245)), I(12345)), I(1<<20-1))),
					Block(tail()),
				),
				Print(ToInt(FMul(L("acc"), F(1000)))),
				Print(L("seed")),
			)
			return p.MustBuild()
		},
		BuildTransformed: func() *bytecode.Program {
			p := NewProgram("monteCarlo-pregen")
			p.Func("main", nil, false).Body(
				// Pre-generate the seed stream serially.
				Set("seeds", NewArr(I(samples))),
				Set("seed", I(12345)),
				ForUp("k", I(0), I(samples),
					Set("seed", BAnd(Add(Mul(L("seed"), I(1103515245)), I(12345)), I(1<<20-1))),
					SetIdx(L("seeds"), L("k"), L("seed")),
				),
				Set("acc", F(0)),
				ForUp("i", I(0), I(samples),
					Set("seed", Idx(L("seeds"), L("i"))),
					Block(tail()),
				),
				Print(ToInt(FMul(L("acc"), F(1000)))),
				Print(L("seed")),
			)
			return p.MustBuild()
		},
		Transformed: &Transform{
			Difficulty: "Med", CompilerAuto: false, Lines: 39,
			Note: "Schedule loop carried dependency (pre-generate the seed stream)",
		},
	}
}

// NumHeapSort — heap sort. The sift-down after each extraction touches the
// heap top, a loop-carried dependency through the array; the Table 4
// transformation sorts independent segments speculatively and merges
// serially ("remove loop carried dependency at top of sorted heap").
func NumHeapSort() *Workload {
	const n = 256
	// sift(a, root, limit) as a helper function shared by both variants.
	addSift := func(p *Program) *FuncRef {
		sift := p.Func("sift", []string{"a", "root", "limit"}, false)
		sift.Body(
			Set("r", L("root")),
			Set("going", I(1)),
			While(AndC(Gt(L("going"), I(0)), Lt(Add(Mul(L("r"), I(2)), I(1)), L("limit"))),
				Set("ch", Add(Mul(L("r"), I(2)), I(1))),
				If(AndC(Lt(Add(L("ch"), I(1)), L("limit")),
					Gt(Idx(L("a"), Add(L("ch"), I(1))), Idx(L("a"), L("ch")))),
					S(Inc("ch", 1)), nil),
				If(Lt(Idx(L("a"), L("r")), Idx(L("a"), L("ch"))), S(
					Set("t", Idx(L("a"), L("r"))),
					SetIdx(L("a"), L("r"), Idx(L("a"), L("ch"))),
					SetIdx(L("a"), L("ch"), L("t")),
					Set("r", L("ch")),
				), S(Set("going", I(0)))),
			),
			RetVoid(),
		)
		return sift
	}
	fill := func() []Stmt {
		return Block(
			Set("a", NewArr(I(n))),
			ForUp("x", I(0), I(n),
				SetIdx(L("a"), L("x"), pseudo(L("x"), 10007))),
		)
	}
	checksum := func() []Stmt {
		return Block(
			Set("sum", I(0)),
			ForUp("q", I(0), I(n),
				Set("sum", Add(L("sum"), Mul(Idx(L("a"), L("q")), Add(L("q"), I(1))))),
			),
			Print(L("sum")),
		)
	}
	return &Workload{
		Name: "NumHeapSort", Category: Integer,
		Description: "Heap sort; carried dependency at the heap top",
		DataSet:     "256 keys",
		Paper:       PaperRef{Speedup: 1.5, Analyzable: false, SerialPct: 0},
		Build: func() *bytecode.Program {
			p := NewProgram("NumHeapSort")
			sift := addSift(p)
			// Floyd's leaf-seeking sift: descend the larger-child path to a
			// leaf, climb to the insertion point, then shift the path
			// values one level up — writing the heap TOP last. This is the
			// classical comparison-optimal sift, and it is exactly why the
			// paper's NumHeapSort serializes: the value the next extraction
			// reads (a[0]) is produced at the very end of each iteration.
			floyd := p.Func("floydSift", []string{"a", "limit", "nodes", "vals"}, false)
			floyd.Body(
				Set("v", Idx(L("a"), I(0))),
				Set("j", I(0)),
				Set("d", I(0)),
				While(Lt(Add(Mul(L("j"), I(2)), I(1)), L("limit")),
					Set("ch", Add(Mul(L("j"), I(2)), I(1))),
					If(AndC(Lt(Add(L("ch"), I(1)), L("limit")),
						Gt(Idx(L("a"), Add(L("ch"), I(1))), Idx(L("a"), L("ch")))),
						S(Inc("ch", 1)), nil),
					SetIdx(L("nodes"), L("d"), L("ch")),
					SetIdx(L("vals"), L("d"), Idx(L("a"), L("ch"))),
					Inc("d", 1),
					Set("j", L("ch")),
				),
				// Climb: find the deepest path node whose value beats v.
				Set("m", L("d")),
				While(AndC(Gt(L("m"), I(0)), Lt(Idx(L("vals"), Sub(L("m"), I(1))), L("v"))),
					Set("m", Sub(L("m"), I(1))),
				),
				// Shift leaf-first; the final write lands on a[0].
				If(Gt(L("m"), I(0)),
					S(SetIdx(L("a"), Idx(L("nodes"), Sub(L("m"), I(1))), L("v"))), nil),
				Set("k", Sub(L("m"), I(1))),
				While(Ge(L("k"), I(0)),
					If(Eq(L("k"), I(0)),
						S(SetIdx(L("a"), I(0), Idx(L("vals"), I(0)))),
						S(SetIdx(L("a"), Idx(L("nodes"), Sub(L("k"), I(1))), Idx(L("vals"), L("k"))))),
					Set("k", Sub(L("k"), I(1))),
				),
				RetVoid(),
			)
			p.Func("main", nil, false).Body(
				Block(fill()),
				Set("nodes", NewArr(I(16))),
				Set("vals", NewArr(I(16))),
				// Heapify.
				Set("h", I(n/2)),
				While(Gt(L("h"), I(0)),
					Set("h", Sub(L("h"), I(1))),
					Do(CallE(sift, L("a"), L("h"), I(n))),
				),
				// Sort-down: every iteration depends on the previous
				// through a[0], produced at the END of Floyd's sift.
				Set("k", I(n-1)),
				While(Gt(L("k"), I(0)),
					Set("t", Idx(L("a"), I(0))),
					SetIdx(L("a"), I(0), Idx(L("a"), L("k"))),
					SetIdx(L("a"), L("k"), L("t")),
					Do(CallE(floyd, L("a"), L("k"), L("nodes"), L("vals"))),
					Set("k", Sub(L("k"), I(1))),
				),
				Block(checksum()),
			)
			return p.MustBuild()
		},
		BuildTransformed: func() *bytecode.Program {
			p := NewProgram("NumHeapSort-segmented")
			sift := addSift(p)
			// Heapsort one segment [base, base+len).
			seg := p.Func("sortseg", []string{"a", "base", "len"}, false)
			seg.Body(
				Set("b", NewArr(L("len"))),
				ForUp("x", I(0), L("len"),
					SetIdx(L("b"), L("x"), Idx(L("a"), Add(L("base"), L("x"))))),
				Set("h", Div(L("len"), I(2))),
				While(Gt(L("h"), I(0)),
					Set("h", Sub(L("h"), I(1))),
					Do(CallE(sift, L("b"), L("h"), L("len"))),
				),
				Set("k", Sub(L("len"), I(1))),
				While(Gt(L("k"), I(0)),
					Set("t", Idx(L("b"), I(0))),
					SetIdx(L("b"), I(0), Idx(L("b"), L("k"))),
					SetIdx(L("b"), L("k"), L("t")),
					Do(CallE(sift, L("b"), I(0), L("k"))),
					Set("k", Sub(L("k"), I(1))),
				),
				ForUp("y", I(0), L("len"),
					SetIdx(L("a"), Add(L("base"), L("y")), Idx(L("b"), L("y")))),
				RetVoid(),
			)
			p.Func("main", nil, false).Body(
				Block(fill()),
				// Sort 8 independent segments (speculatively parallel).
				ForUp("s", I(0), I(8),
					Do(CallE(seg, L("a"), Mul(L("s"), I(n/8)), I(n/8))),
				),
				// Serial 8-way merge into a fresh array, then copy back.
				Set("m", NewArr(I(n))),
				Set("idx", NewArr(I(8))),
				ForUp("s2", I(0), I(8),
					SetIdx(L("idx"), L("s2"), Mul(L("s2"), I(n/8)))),
				ForUp("o", I(0), I(n),
					Set("best", I(1<<30)),
					Set("bs", I(-1)),
					ForUp("s3", I(0), I(8),
						Set("ix", Idx(L("idx"), L("s3"))),
						If(AndC(Lt(L("ix"), Mul(Add(L("s3"), I(1)), I(n/8))),
							Lt(Idx(L("a"), L("ix")), L("best"))), S(
							Set("best", Idx(L("a"), L("ix"))),
							Set("bs", L("s3")),
						), nil),
					),
					SetIdx(L("m"), L("o"), L("best")),
					SetIdx(L("idx"), L("bs"), Add(Idx(L("idx"), L("bs")), I(1))),
				),
				ForUp("z", I(0), I(n),
					SetIdx(L("a"), L("z"), Idx(L("m"), L("z")))),
				Block(checksum()),
			)
			return p.MustBuild()
		},
		Transformed: &Transform{
			Difficulty: "Low", CompilerAuto: false, Lines: 7,
			Note: "Remove loop carried dependency at top of sorted heap (independent segments + merge)",
		},
	}
}

// Raytrace — per-pixel ray casting against spheres. Pixels are independent
// and the per-pixel speculative state fits the buffers; §6.1 contrasts this
// with an overflow-prone raytracer, reproduced by RaytraceOverflow.
func Raytrace() *Workload {
	return &Workload{
		Name: "raytrace", Category: Integer,
		Description: "Per-pixel ray casting; fits speculative buffers",
		DataSet:     "16x10 pixels, 3 spheres",
		Paper:       PaperRef{Speedup: 2.5, Analyzable: false, SerialPct: 0.09},
		Build:       func() *bytecode.Program { return raytraceProgram(16, 10, 1) },
	}
}

// RaytraceOverflow is the §6.1 counterpart: the same tracer written with a
// large per-pixel scratch buffer, which consistently overflows the
// speculative store buffer; TEST predicts the overflow and the analyzer
// rejects the loop. It is not part of the Table 3 suite.
func RaytraceOverflow() *Workload {
	return &Workload{
		Name: "raytraceOverflow", Category: Integer,
		Description: "Raytracer variant whose per-pixel scratch overflows speculative buffers",
		DataSet:     "16x10 pixels, 3 spheres, 320-word per-pixel scratch",
		Paper:       PaperRef{Speedup: 1.0, Analyzable: false},
		Build:       func() *bytecode.Program { return raytraceProgram(16, 10, 320) },
	}
}

// raytraceProgram renders w*h pixels; scratch > 1 adds a per-pixel scratch
// buffer of that many words (the overflow variant).
func raytraceProgram(w, h, scratch int64) *bytecode.Program {
	p := NewProgram("raytrace")
	main := p.Func("main", nil, false)
	var body []Stmt
	body = append(body,
		Set("img", NewArr(I(w*h))),
		Set("sc", NewArr(I(scratch*4))),
		// Sphere table: cx, cy, cz, r^2 per sphere.
		Set("sph", NewArr(I(12))),
	)
	body = append(body, ForUp("s", I(0), I(3),
		SetIdx(L("sph"), Mul(L("s"), I(4)), ToFloat(Sub(pseudo(L("s"), 9), I(4)))),
		SetIdx(L("sph"), Add(Mul(L("s"), I(4)), I(1)), ToFloat(Sub(pseudo(Add(L("s"), I(5)), 9), I(4)))),
		SetIdx(L("sph"), Add(Mul(L("s"), I(4)), I(2)), F(8.0)),
		SetIdx(L("sph"), Add(Mul(L("s"), I(4)), I(3)), F(4.0)),
	)...)
	body = append(body, ForUp("pix", I(0), I(w*h),
		Set("px", ToFloat(Sub(Rem(L("pix"), I(w)), I(w/2)))),
		Set("py", ToFloat(Sub(Div(L("pix"), I(w)), I(h/2)))),
		// Normalize direction.
		Set("norm", Sqrt(FAdd(FAdd(FMul(L("px"), L("px")), FMul(L("py"), L("py"))), F(64.0)))),
		Set("dx", FDiv(L("px"), L("norm"))),
		Set("dy", FDiv(L("py"), L("norm"))),
		Set("dz", FDiv(F(8.0), L("norm"))),
		Set("bestt", F(1e30)),
		Set("hit", I(-1)),
		ForUp("s", I(0), I(3),
			Set("cx", Idx(L("sph"), Mul(L("s"), I(4)))),
			Set("cy", Idx(L("sph"), Add(Mul(L("s"), I(4)), I(1)))),
			Set("cz", Idx(L("sph"), Add(Mul(L("s"), I(4)), I(2)))),
			Set("r2", Idx(L("sph"), Add(Mul(L("s"), I(4)), I(3)))),
			// Ray-sphere: b = d.c; disc = b^2 - (c.c - r^2).
			Set("bq", FAdd(FAdd(FMul(L("dx"), L("cx")), FMul(L("dy"), L("cy"))), FMul(L("dz"), L("cz")))),
			Set("cc", FAdd(FAdd(FMul(L("cx"), L("cx")), FMul(L("cy"), L("cy"))), FMul(L("cz"), L("cz")))),
			Set("disc", FSub(FMul(L("bq"), L("bq")), FSub(L("cc"), L("r2")))),
			If(FGt(L("disc"), F(0)), S(
				Set("tt", FSub(L("bq"), Sqrt(L("disc")))),
				If(AndC(FGt(L("tt"), F(0.01)), FLt(L("tt"), L("bestt"))), S(
					Set("bestt", L("tt")),
					Set("hit", L("s")),
				), nil),
			), nil),
		),
		// The overflow variant writes a wide per-pixel scratch record.
		If(Gt(I(scratch), I(1)),
			Block(ForUp("sw", I(0), I(scratch),
				SetIdx(L("sc"), Rem(Add(Mul(L("pix"), I(scratch)), L("sw")), I(scratch*4)),
					Add(L("pix"), L("sw"))),
			)), nil),
		SetIdx(L("img"), L("pix"),
			Sel(Ge(L("hit"), I(0)),
				Add(Mul(L("hit"), I(80)), ToInt(FMul(L("bestt"), F(10.0)))),
				I(0))),
	)...)
	body = append(body,
		Set("sum", I(0)))
	body = append(body, ForUp("q", I(0), I(w*h),
		Set("sum", Add(L("sum"), Mul(Idx(L("img"), L("q")), Add(Rem(L("q"), I(13)), I(1))))))...)
	body = append(body, Print(L("sum")))
	main.Body(Block(body))
	return p.MustBuild()
}
