package workloads

import (
	"jrpm/internal/bytecode"
	. "jrpm/internal/frontend" // the kernel DSL reads as a language
)

// pseudo returns an AST expression hashing e into [0, mod) — the suite's
// deterministic stand-in for benchmark input data.
func pseudo(e Expr, mod int64) Expr {
	return Rem(BAnd(Add(Mul(e, I(1103515245)), I(12345)), I(0x7fffffff)), I(mod))
}

// Assignment — jBYTEmark's resource allocation kernel: repeated reduction
// sweeps over a cost matrix. Many STLs contribute comparable coverage (the
// paper notes Assignment has many equally weighted decompositions), and the
// best level in each i/j nest depends on the matrix size.
func Assignment() *Workload {
	const n = 32 // paper: 51x51
	build := func() *bytecode.Program {
		p := NewProgram("Assignment")
		p.Func("main", nil, false).Body(
			Set("n", I(n)),
			Set("cost", NewArr(I(n*n))),
			// Fill the cost matrix.
			ForUp("i", I(0), L("n"),
				ForUp("j", I(0), L("n"),
					SetIdx(L("cost"), Add(Mul(L("i"), L("n")), L("j")),
						pseudo(Add(Mul(L("i"), I(131)), L("j")), 100)),
				),
			),
			// Row reduction: subtract each row's minimum.
			ForUp("i", I(0), L("n"),
				Set("rmin", I(1<<30)),
				ForUp("j", I(0), L("n"),
					Set("rmin", MinI(L("rmin"), Idx(L("cost"), Add(Mul(L("i"), L("n")), L("j"))))),
				),
				ForUp("j2", I(0), L("n"),
					SetIdx(L("cost"), Add(Mul(L("i"), L("n")), L("j2")),
						Sub(Idx(L("cost"), Add(Mul(L("i"), L("n")), L("j2"))), L("rmin"))),
				),
			),
			// Column reduction.
			ForUp("j", I(0), L("n"),
				Set("cmin", I(1<<30)),
				ForUp("i", I(0), L("n"),
					Set("cmin", MinI(L("cmin"), Idx(L("cost"), Add(Mul(L("i"), L("n")), L("j"))))),
				),
				ForUp("i2", I(0), L("n"),
					SetIdx(L("cost"), Add(Mul(L("i2"), L("n")), L("j")),
						Sub(Idx(L("cost"), Add(Mul(L("i2"), L("n")), L("j"))), L("cmin"))),
				),
			),
			// Count zero entries per row (greedy assignment proxy).
			Set("assigned", I(0)),
			ForUp("i", I(0), L("n"),
				Set("z", I(0)),
				ForUp("j", I(0), L("n"),
					If(Eq(Idx(L("cost"), Add(Mul(L("i"), L("n")), L("j"))), I(0)),
						S(Inc("z", 1)), nil),
				),
				Set("assigned", Add(L("assigned"), L("z"))),
			),
			// Checksum.
			Set("sum", I(0)),
			ForUp("k", I(0), I(n*n),
				Set("sum", Add(L("sum"), Idx(L("cost"), L("k")))),
			),
			Print(L("assigned")),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "Assignment", Category: Integer,
		Description: "Resource allocation: reduction sweeps over a cost matrix",
		DataSet:     "32x32 (paper: 51x51)",
		Paper:       PaperRef{Speedup: 3.1, Analyzable: true, DataSetDep: true, SerialPct: 0.01},
		Build:       build,
	}
}

// BitOps — bit array operations with tiny loop bodies. The loop pointer
// walks the array cyclically: an inductor with a conditional reset, the
// resetable non-communicating inductor showcase of §4.2.3 (the paper:
// "the resetable non-communicating loop inductor dramatically improves
// BitOps").
func BitOps() *Workload {
	const size, iters = 256, 4100
	build := func() *bytecode.Program {
		p := NewProgram("BitOps")
		p.Func("main", nil, false).Body(
			Set("bits", NewArr(I(size))),
			Set("ptr", I(0)),
			Set("check", I(0)),
			ForUp("i", I(0), I(iters),
				SetIdx(L("bits"), L("ptr"), BXor(Idx(L("bits"), L("ptr")), I(1))),
				Set("check", Add(L("check"), Idx(L("bits"), L("ptr")))),
				Inc("ptr", 1),
				If(Ge(L("ptr"), I(size)), S(Set("ptr", I(0))), nil),
			),
			Print(L("check")),
			Print(L("ptr")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "BitOps", Category: Integer,
		Description: "Bit array operations; cyclic pointer = resetable inductor",
		DataSet:     "256-entry bit array, 4100 operations",
		Paper:       PaperRef{Speedup: 2.9, Analyzable: false, SerialPct: 0},
		Build:       build,
	}
}

// Compress — LZW-style stream compression. The hash-table state carries
// truly dynamic dependencies between nearby iterations: the profile sees
// them as infrequent (so the loop is selected), but actual speculative
// execution suffers run-violated/wait-violated time — the compress story of
// §6.2. The Table 4 transformation compresses independently at guessed
// stream offsets (chunking), removing the cross-chunk dependencies.
func Compress() *Workload {
	const n, tbl = 2048, 16
	common := func(p *Program, chunked bool) {
		main := p.Func("main", nil, false)
		var body []Stmt
		body = append(body,
			Set("input", NewArr(I(n))),
			Set("table", NewArr(I(tbl*16))),
			Set("out", NewArr(I(n))),
		)
		body = append(body, ForUp("x", I(0), I(n),
			SetIdx(L("input"), L("x"), pseudo(L("x"), 97)))...)
		if !chunked {
			body = append(body, ForUp("i", I(0), I(n),
				Set("c", Idx(L("input"), L("i"))),
				Set("h", Rem(Mul(L("c"), L("c")), I(tbl))),
				Set("e", Idx(L("table"), L("h"))), // string-table probe, early
				Set("w", Rem(Add(Mul(L("e"), I(5)), L("c")), I(997))),
				Set("w", Add(L("w"), Rem(Mul(L("w"), I(3)), I(251)))),
				Set("w", Add(L("w"), Rem(Mul(L("w"), I(7)), I(127)))),
				SetIdx(L("out"), L("i"), L("w")),
				SetIdx(L("table"), L("h"), L("w")), // insert, late
			)...)
		} else {
			// Transformed: 8 chunks, each with a private table region.
			body = append(body, ForUp("ch", I(0), I(16),
				Set("base", Mul(L("ch"), I(n/16))),
				Set("tb", Mul(L("ch"), I(tbl))),
				ForUp("k", I(0), I(n/16),
					Set("i", Add(L("base"), L("k"))),
					Set("c", Idx(L("input"), L("i"))),
					Set("h", Add(L("tb"), Rem(Mul(L("c"), L("c")), I(tbl)))),
					Set("e", Idx(L("table"), L("h"))),
					Set("w", Rem(Add(Mul(L("e"), I(5)), L("c")), I(997))),
					Set("w", Add(L("w"), Rem(Mul(L("w"), I(3)), I(251)))),
					Set("w", Add(L("w"), Rem(Mul(L("w"), I(7)), I(127)))),
					SetIdx(L("out"), L("i"), L("w")),
					SetIdx(L("table"), L("h"), L("w")),
				),
			)...)
		}
		body = append(body, Set("sum", I(0)))
		body = append(body, ForUp("q", I(0), I(n),
			Set("sum", Add(L("sum"), Idx(L("out"), L("q")))))...)
		body = append(body, Print(L("sum")))
		main.Body(Block(body))
	}
	return &Workload{
		Name: "compress", Category: Integer,
		Description: "LZW-style compression; dynamic hash-state dependencies",
		DataSet:     "2048 symbols, 16-entry string table (paper: SPEC input)",
		Paper:       PaperRef{Speedup: 1.6, Analyzable: false, SerialPct: 0},
		Build: func() *bytecode.Program {
			p := NewProgram("compress")
			common(p, false)
			return p.MustBuild()
		},
		BuildTransformed: func() *bytecode.Program {
			p := NewProgram("compress-chunked")
			common(p, true)
			return p.MustBuild()
		},
		Transformed: &Transform{
			Difficulty: "Low", CompilerAuto: false, Lines: 13,
			Note: "Guess next offset when compressing/uncompressing data (chunked streams)",
		},
	}
}

// DB — address-book style database operations. The probe cursor is a
// loop-carried local; in the original it updates at the end of the
// iteration (long arc), and the Table 4 transformation schedules it to the
// top, where the automatic thread synchronizing lock (§4.2.4) takes over —
// the paper marks this row compiler-optimizable. An insertion-sort index
// rebuild provides the large serial section Table 3 reports for db.
func DB() *Workload {
	const nrec, nops = 128, 2048
	build := func(scheduled bool) func() *bytecode.Program {
		return func() *bytecode.Program {
			p := NewProgram("db")
			tblC := p.Class("Table", "dirty")
			main := p.Func("main", nil, false)
			var body []Stmt
			body = append(body, Set("tbl", NewE(tblC)))
			body = append(body, Set("rec", NewArr(I(nrec))))
			body = append(body, ForUp("x", I(0), I(nrec),
				SetIdx(L("rec"), L("x"), pseudo(L("x"), 1009)))...)
			// Serial phase: insertion sort of the index (pointer-dependent).
			body = append(body, ForUp("s", I(1), I(nrec),
				Set("v", Idx(L("rec"), L("s"))),
				Set("t", Sub(L("s"), I(1))),
				While(AndC(Ge(L("t"), I(0)), Gt(Idx(L("rec"), L("t")), L("v"))),
					SetIdx(L("rec"), Add(L("t"), I(1)), Idx(L("rec"), L("t"))),
					Set("t", Sub(L("t"), I(1))),
				),
				SetIdx(L("rec"), Add(L("t"), I(1)), L("v")),
			)...)
			// Operation loop.
			var ops []Stmt
			if scheduled {
				ops = ForUp("op", I(0), I(nops),
					// Scheduled: the carried cursor updates first and its
					// last use follows immediately, so the synchronizing
					// lock releases the successor before the heavy tail.
					Set("pos", Rem(Add(Mul(L("pos"), I(13)), Add(L("op"), I(7))), I(nrec))),
					Synchronized(L("tbl"),
						Set("v", Idx(L("rec"), L("pos"))),
						SetIdx(L("rec"), L("pos"), Rem(Add(L("v"), I(1)), I(100000))),
					),
					Set("w", Rem(Add(Mul(L("v"), I(3)), L("op")), I(4099))),
					Set("w", Add(L("w"), Mul(Rem(L("w"), I(17)), I(5)))),
					Set("w", Add(L("w"), Mul(Rem(L("w"), I(23)), I(7)))),
					Set("acc", Add(L("acc"), L("w"))),
				)
			} else {
				ops = ForUp("op", I(0), I(nops),
					Synchronized(L("tbl"),
						Set("v", Idx(L("rec"), L("pos"))),
						SetIdx(L("rec"), L("pos"), Rem(Add(L("v"), I(1)), I(100000))),
					),
					Set("w", Rem(Add(Mul(L("v"), I(3)), L("op")), I(4099))),
					Set("w", Add(L("w"), Mul(Rem(L("w"), I(17)), I(5)))),
					Set("w", Add(L("w"), Mul(Rem(L("w"), I(23)), I(7)))),
					Set("acc", Add(L("acc"), L("w"))),
					// Original: cursor update at the end (long arc).
					Set("pos", Rem(Add(Mul(L("pos"), I(13)), Add(L("op"), I(7))), I(nrec))),
				)
			}
			body = append(body, Set("pos", I(0)), Set("acc", I(0)))
			body = append(body, ops...)
			body = append(body, Print(L("acc")), Print(L("pos")))
			main.Body(Block(body))
			return p.MustBuild()
		}
	}
	return &Workload{
		Name: "db", Category: Integer,
		Description:      "Database operations; short carried cursor dependency + serial index sort",
		DataSet:          "192 records, 768 operations (paper: SPEC db, 5000 ops)",
		Paper:            PaperRef{Speedup: 1.5, Analyzable: false, SerialPct: 0.27},
		Build:            build(false),
		BuildTransformed: build(true),
		Transformed: &Transform{
			Difficulty: "Low", CompilerAuto: true, Lines: 4,
			Note: "Schedule loop carried dependency (cursor update moved to loop top)",
		},
	}
}

// DeltaBlue — the incremental constraint solver: passes of pointer chasing
// along a constraint chain. The chain walk carries both the cursor and the
// propagated value, so almost nothing is selectable; Jrpm gains little
// (the paper's deltaBlue bar is near 1.0 with a visible serial fraction).
func DeltaBlue() *Workload {
	const chain, passes = 96, 12
	build := func() *bytecode.Program {
		p := NewProgram("deltaBlue")
		cons := p.Class("Constraint", "next", "strength", "val")
		p.Func("main", nil, false).Body(
			// Build the chain (serial allocation).
			Set("head", I(0)),
			ForUp("i", I(0), I(chain),
				Set("c", NewE(cons)),
				SetField(L("c"), cons, "strength", pseudo(L("i"), 7)),
				SetField(L("c"), cons, "next", L("head")),
				Set("head", L("c")),
			),
			// Propagation passes: serial pointer chase carrying `val`.
			// Each step churns a short-lived plan object (deltaBlue
			// allocates records as it replans), which keeps the collector
			// busy on the deliberately small heap.
			Set("val", I(1)),
			ForUp("pass", I(0), I(passes),
				Set("cur", L("head")),
				While(Ne(L("cur"), I(0)),
					Set("plan", NewE(cons)),
					SetField(L("plan"), cons, "strength", L("val")),
					Set("val", Rem(Add(Mul(L("val"), I(7)),
						Add(FieldE(L("cur"), cons, "strength"),
							FieldE(L("plan"), cons, "strength"))), I(9973))),
					SetField(L("cur"), cons, "val", L("val")),
					Set("cur", FieldE(L("cur"), cons, "next")),
				),
			),
			// A small parallelizable statistics loop over a flat copy.
			Set("st", NewArr(I(chain))),
			Set("cur", L("head")),
			Set("k", I(0)),
			While(Ne(L("cur"), I(0)),
				SetIdx(L("st"), L("k"), FieldE(L("cur"), cons, "val")),
				Inc("k", 1),
				Set("cur", FieldE(L("cur"), cons, "next")),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(chain),
				Set("sum", Add(L("sum"), Mul(Idx(L("st"), L("q")), Idx(L("st"), L("q"))))),
			),
			Print(L("val")),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "deltaBlue", Category: Integer,
		Description: "Constraint solver; pointer-chasing propagation, mostly serial",
		DataSet:     "96-constraint chain, 12 passes",
		Paper:       PaperRef{Speedup: 1.0, Analyzable: false, SerialPct: 0.22},
		Build:       build,
		HeapWords:   3000, // small heap: the plan-object churn triggers GC
	}
}

// EmFloatPnt — software floating-point emulation over an array. Iterations
// are independent but the normalization loop's trip count is data
// dependent, producing the load imbalance (wait-used time) the paper
// reports for EmFloatPnt.
func EmFloatPnt() *Workload {
	const n = 160
	build := func() *bytecode.Program {
		p := NewProgram("EmFloatPnt")
		p.Func("main", nil, false).Body(
			Set("a", NewArr(I(n))),
			Set("r", NewArr(I(n))),
			ForUp("x", I(0), I(n),
				SetIdx(L("a"), L("x"), Add(pseudo(L("x"), 1<<20), I(3)))),
			ForUp("i", I(0), I(n),
				Set("v", Idx(L("a"), L("i"))),
				Set("sign", BAnd(Shr(L("v"), I(19)), I(1))),
				Set("mant", BAnd(L("v"), I((1<<16)-1))),
				Set("ex", BAnd(Shr(L("v"), I(16)), I(7))),
				// Emulated multiply by 3.5: mant*7 then renormalize.
				Set("mant", Mul(L("mant"), I(7))),
				Set("ex", Sub(L("ex"), I(1))),
				// Data-dependent normalization loop.
				While(Ge(L("mant"), I(1<<16)),
					Set("mant", Shr(L("mant"), I(1))),
					Inc("ex", 1),
				),
				While(AndC(Gt(L("mant"), I(0)), Lt(L("mant"), I(1<<15))),
					Set("mant", Shl(L("mant"), I(1))),
					Set("ex", Sub(L("ex"), I(1))),
				),
				SetIdx(L("r"), L("i"),
					BOr(Shl(L("sign"), I(19)), BOr(Shl(BAnd(L("ex"), I(7)), I(16)), BAnd(L("mant"), I((1<<16)-1))))),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(n),
				Set("sum", BXor(L("sum"), Mul(Idx(L("r"), L("q")), Add(L("q"), I(1))))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "EmFloatPnt", Category: Integer,
		Description: "Software FP emulation; variable-length normalization causes load imbalance",
		DataSet:     "160 emulated operations",
		Paper:       PaperRef{Speedup: 2.9, Analyzable: false, SerialPct: 0},
		Build:       build,
	}
}

// Huffman — bit-stream encoding. The bit buffer is a per-iteration carried
// dependency (sub-word packing), giving violations in the base version; the
// Table 4 transformation merges four independent streams so the carried
// state recurs at distance 4 — beyond the 4-CPU speculation window.
func Huffman() *Workload {
	const n = 1024
	prolog := func() []Stmt {
		return Block(
			Set("input", NewArr(I(n))),
			ForUp("x", I(0), I(n),
				SetIdx(L("input"), L("x"), pseudo(L("x"), 16))),
			// Canonical-ish code table: longer codes for rarer symbols.
			Set("codes", NewArr(I(16))),
			Set("lens", NewArr(I(16))),
			ForUp("s", I(0), I(16),
				SetIdx(L("codes"), L("s"), Add(L("s"), I(2))),
				SetIdx(L("lens"), L("s"), Add(I(3), Rem(L("s"), I(4)))),
			),
			Set("out", NewArr(I(n))),
		)
	}
	return &Workload{
		Name: "Huffman", Category: Integer,
		Description: "Huffman encoding; carried bit-buffer state",
		DataSet:     "1024 symbols over a 16-symbol alphabet",
		Paper:       PaperRef{Speedup: 1.9, Analyzable: false, SerialPct: 0},
		Build: func() *bytecode.Program {
			p := NewProgram("Huffman")
			p.Func("main", nil, false).Body(
				Block(prolog()),
				Set("bitbuf", I(0)),
				Set("nbits", I(0)),
				Set("outp", I(0)),
				ForUp("i", I(0), I(n),
					Set("sym", Idx(L("input"), L("i"))),
					Set("bitbuf", BOr(Shl(L("bitbuf"), Idx(L("lens"), L("sym"))),
						Idx(L("codes"), L("sym")))),
					Set("nbits", Add(L("nbits"), Idx(L("lens"), L("sym")))),
					If(Ge(L("nbits"), I(24)), S(
						SetIdx(L("out"), L("outp"), L("bitbuf")),
						Inc("outp", 1),
						Set("bitbuf", I(0)),
						Set("nbits", I(0)),
					), nil),
				),
				Set("sum", Add(L("bitbuf"), L("outp"))),
				ForUp("q", I(0), I(n),
					Set("sum", BXor(L("sum"), Idx(L("out"), L("q")))),
				),
				Print(L("sum")),
			)
			return p.MustBuild()
		},
		BuildTransformed: func() *bytecode.Program {
			p := NewProgram("Huffman-merged")
			p.Func("main", nil, false).Body(
				Block(prolog()),
				// Four interleaved streams: state recurs at distance 4.
				Set("bufs", NewArr(I(4))),
				Set("cnts", NewArr(I(4))),
				Set("outps", NewArr(I(4))),
				ForUp("s", I(0), I(4),
					SetIdx(L("outps"), L("s"), Mul(L("s"), I(n/4)))),
				ForUp("i", I(0), I(n),
					Set("st", BAnd(L("i"), I(3))),
					Set("sym", Idx(L("input"), L("i"))),
					SetIdx(L("bufs"), L("st"), BOr(Shl(Idx(L("bufs"), L("st")), Idx(L("lens"), L("sym"))),
						Idx(L("codes"), L("sym")))),
					SetIdx(L("cnts"), L("st"), Add(Idx(L("cnts"), L("st")), Idx(L("lens"), L("sym")))),
					If(Ge(Idx(L("cnts"), L("st")), I(24)), S(
						SetIdx(L("out"), Idx(L("outps"), L("st")), Idx(L("bufs"), L("st"))),
						SetIdx(L("outps"), L("st"), Add(Idx(L("outps"), L("st")), I(1))),
						SetIdx(L("bufs"), L("st"), I(0)),
						SetIdx(L("cnts"), L("st"), I(0)),
					), nil),
				),
				Set("sum", I(0)),
				ForUp("s2", I(0), I(4),
					Set("sum", Add(L("sum"), Add(Idx(L("bufs"), L("s2")), Idx(L("outps"), L("s2"))))),
				),
				ForUp("q", I(0), I(n),
					Set("sum", BXor(L("sum"), Idx(L("out"), L("q")))),
				),
				Print(L("sum")),
			)
			return p.MustBuild()
		},
		Transformed: &Transform{
			Difficulty: "Med", CompilerAuto: false, Lines: 22,
			Note: "Merge independent streams to prevent sub-word dependencies during compression",
		},
	}
}
