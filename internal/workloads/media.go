package workloads

import (
	"jrpm/internal/bytecode"
	. "jrpm/internal/frontend"
)

// DecJpeg — image decoding: per-block dequantization and a separable
// inverse transform. Blocks are independent, the classic multimedia STL.
func DecJpeg() *Workload {
	const blocks, bsz = 28, 16 // 4x4 coefficient blocks
	build := func() *bytecode.Program {
		p := NewProgram("decJpeg")
		p.Func("main", nil, false).Body(
			Set("coef", NewArr(I(blocks*bsz))),
			Set("quant", NewArr(I(bsz))),
			Set("img", NewArr(I(blocks*bsz))),
			ForUp("q0", I(0), I(bsz),
				SetIdx(L("quant"), L("q0"), Add(pseudo(L("q0"), 14), I(2)))),
			// Serial entropy decode: the bit cursor carries across symbols.
			Set("cursor", I(7)),
			ForUp("x", I(0), I(blocks*bsz),
				Set("cursor", Rem(Add(Mul(L("cursor"), I(33)), I(11)), I(4093))),
				SetIdx(L("coef"), L("x"), Sub(Rem(L("cursor"), I(256)), I(128))),
			),
			ForUp("b", I(0), I(blocks),
				// Dequantize into locals via a scratch row pass.
				ForUp("r", I(0), I(4),
					// Row butterfly on dequantized coefficients.
					Set("base", Add(Mul(L("b"), I(bsz)), Mul(L("r"), I(4)))),
					Set("c0", Mul(Idx(L("coef"), L("base")), Idx(L("quant"), Mul(L("r"), I(4))))),
					Set("c1", Mul(Idx(L("coef"), Add(L("base"), I(1))), Idx(L("quant"), Add(Mul(L("r"), I(4)), I(1))))),
					Set("c2", Mul(Idx(L("coef"), Add(L("base"), I(2))), Idx(L("quant"), Add(Mul(L("r"), I(4)), I(2))))),
					Set("c3", Mul(Idx(L("coef"), Add(L("base"), I(3))), Idx(L("quant"), Add(Mul(L("r"), I(4)), I(3))))),
					Set("s0", Add(L("c0"), L("c2"))),
					Set("s1", Sub(L("c0"), L("c2"))),
					Set("s2", Add(Shr(Mul(L("c1"), I(7)), I(3)), Shr(Mul(L("c3"), I(3)), I(3)))),
					Set("s3", Sub(Shr(Mul(L("c1"), I(3)), I(3)), Shr(Mul(L("c3"), I(7)), I(3)))),
					SetIdx(L("img"), L("base"), Add(L("s0"), L("s2"))),
					SetIdx(L("img"), Add(L("base"), I(1)), Add(L("s1"), L("s3"))),
					SetIdx(L("img"), Add(L("base"), I(2)), Sub(L("s1"), L("s3"))),
					SetIdx(L("img"), Add(L("base"), I(3)), Sub(L("s0"), L("s2"))),
				),
				// Clamp pass.
				ForUp("k", I(0), I(bsz),
					Set("v", Idx(L("img"), Add(Mul(L("b"), I(bsz)), L("k")))),
					SetIdx(L("img"), Add(Mul(L("b"), I(bsz)), L("k")),
						MaxI(I(-255), MinI(I(255), L("v")))),
				),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(blocks*bsz),
				Set("sum", Add(L("sum"), Mul(Idx(L("img"), L("q")), Add(Rem(L("q"), I(5)), I(1))))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "decJpeg", Category: Multimedia,
		Description: "Image decoding; independent block transforms",
		DataSet:     "28 blocks of 4x4 coefficients",
		Paper:       PaperRef{Speedup: 2.5, Analyzable: false, SerialPct: 0.13},
		Build:       build,
	}
}

// EncJpeg — image compression: a parallel forward transform + quantization
// stage, then a serial entropy-coding stage carrying the bit buffer.
func EncJpeg() *Workload {
	const blocks, bsz = 24, 16
	build := func() *bytecode.Program {
		p := NewProgram("encJpeg")
		p.Func("main", nil, false).Body(
			Set("img", NewArr(I(blocks*bsz))),
			Set("coef", NewArr(I(blocks*bsz))),
			Set("out", NewArr(I(blocks*bsz))),
			ForUp("x", I(0), I(blocks*bsz),
				SetIdx(L("img"), L("x"), Sub(pseudo(L("x"), 256), I(128)))),
			// Forward transform + quantization: parallel over blocks.
			ForUp("b", I(0), I(blocks),
				ForUp("r", I(0), I(4),
					Set("base", Add(Mul(L("b"), I(bsz)), Mul(L("r"), I(4)))),
					Set("c0", Idx(L("img"), L("base"))),
					Set("c1", Idx(L("img"), Add(L("base"), I(1)))),
					Set("c2", Idx(L("img"), Add(L("base"), I(2)))),
					Set("c3", Idx(L("img"), Add(L("base"), I(3)))),
					Set("s0", Add(Add(L("c0"), L("c1")), Add(L("c2"), L("c3")))),
					Set("s1", Sub(Add(L("c0"), L("c1")), Add(L("c2"), L("c3")))),
					Set("s2", Sub(L("c0"), L("c3"))),
					Set("s3", Sub(L("c1"), L("c2"))),
					SetIdx(L("coef"), L("base"), Div(L("s0"), I(4))),
					SetIdx(L("coef"), Add(L("base"), I(1)), Div(L("s1"), I(4))),
					SetIdx(L("coef"), Add(L("base"), I(2)), Div(L("s2"), I(2))),
					SetIdx(L("coef"), Add(L("base"), I(3)), Div(L("s3"), I(2))),
				),
				// Column pass over the block.
				ForUp("cl", I(0), I(4),
					Set("base", Add(Mul(L("b"), I(bsz)), L("cl"))),
					Set("c0", Idx(L("coef"), L("base"))),
					Set("c1", Idx(L("coef"), Add(L("base"), I(4)))),
					Set("c2", Idx(L("coef"), Add(L("base"), I(8)))),
					Set("c3", Idx(L("coef"), Add(L("base"), I(12)))),
					SetIdx(L("coef"), L("base"), Add(L("c0"), L("c2"))),
					SetIdx(L("coef"), Add(L("base"), I(4)), Sub(L("c0"), L("c2"))),
					SetIdx(L("coef"), Add(L("base"), I(8)), Add(L("c1"), L("c3"))),
					SetIdx(L("coef"), Add(L("base"), I(12)), Sub(L("c1"), L("c3"))),
				),
			),
			// Entropy coding: serial bit packing over all coefficients.
			Set("bitbuf", I(0)),
			Set("nbits", I(0)),
			Set("outp", I(0)),
			ForUp("i", I(0), I(blocks*bsz),
				Set("v", BAnd(Idx(L("coef"), L("i")), I(63))),
				Set("bitbuf", BOr(Shl(L("bitbuf"), I(6)), L("v"))),
				Set("nbits", Add(L("nbits"), I(6))),
				If(Ge(L("nbits"), I(24)), S(
					SetIdx(L("out"), L("outp"), L("bitbuf")),
					Inc("outp", 1),
					Set("bitbuf", I(0)),
					Set("nbits", I(0)),
				), nil),
			),
			Set("sum", Add(L("bitbuf"), L("outp"))),
			ForUp("q", I(0), I(blocks*bsz),
				Set("sum", BXor(L("sum"), Idx(L("out"), L("q")))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "encJpeg", Category: Multimedia,
		Description: "Image compression; parallel transform, serial entropy coding",
		DataSet:     "24 blocks of 4x4 samples",
		Paper:       PaperRef{Speedup: 2.2, Analyzable: false, SerialPct: 0.01},
		Build:       build,
	}
}

// H263Dec — video decoding: per-macroblock motion compensation from a
// reference frame plus residual reconstruction; macroblocks independent.
func H263Dec() *Workload {
	const mbs, msz, frame = 24, 24, 768
	build := func() *bytecode.Program {
		p := NewProgram("h263dec")
		p.Func("main", nil, false).Body(
			Set("ref", NewArr(I(frame))),
			Set("cur", NewArr(I(frame))),
			Set("mv", NewArr(I(mbs))),
			Set("res", NewArr(I(mbs*msz))),
			ForUp("x", I(0), I(frame),
				SetIdx(L("ref"), L("x"), pseudo(L("x"), 256))),
			ForUp("m0", I(0), I(mbs),
				SetIdx(L("mv"), L("m0"), Sub(pseudo(Add(L("m0"), I(77)), 17), I(8)))),
			ForUp("r0", I(0), I(mbs*msz),
				SetIdx(L("res"), L("r0"), Sub(pseudo(Add(L("r0"), I(555)), 32), I(16)))),
			ForUp("m", I(0), I(mbs),
				Set("base", Mul(L("m"), I(msz))),
				Set("off", Idx(L("mv"), L("m"))),
				ForUp("k", I(0), I(msz),
					Set("src", Rem(Add(Add(L("base"), L("k")), Add(L("off"), I(frame))), I(frame))),
					Set("pred", Idx(L("ref"), L("src"))),
					Set("v", Add(L("pred"), Idx(L("res"), Add(L("base"), L("k"))))),
					SetIdx(L("cur"), Add(L("base"), L("k")),
						MaxI(I(0), MinI(I(255), L("v")))),
				),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(frame),
				Set("sum", Add(L("sum"), Mul(Idx(L("cur"), L("q")), Add(Rem(L("q"), I(7)), I(1))))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "h263dec", Category: Multimedia,
		Description: "Video decoding; independent macroblock motion compensation",
		DataSet:     "24 macroblocks over a 768-sample frame",
		Paper:       PaperRef{Speedup: 2.9, Analyzable: false, SerialPct: 0.03},
		Build:       build,
	}
}

// MpegVideo — video decoding with data-dependent intra prediction: some
// blocks read the previous block's reconstruction. The profile sees an
// infrequent dependency and predicts well, but actual execution loses whole
// threads to violations — §6.2's "truly dynamic" violations that neither
// synchronization nor value prediction can remove.
func MpegVideo() *Workload {
	const mbs, msz = 24, 16
	build := func() *bytecode.Program {
		p := NewProgram("mpegVideo")
		p.Func("main", nil, false).Body(
			Set("rec", NewArr(I(mbs*msz))),
			Set("res", NewArr(I(mbs*msz))),
			Set("mode", NewArr(I(mbs))),
			ForUp("r0", I(0), I(mbs*msz),
				SetIdx(L("res"), L("r0"), Sub(pseudo(L("r0"), 64), I(32)))),
			ForUp("m0", I(0), I(mbs),
				SetIdx(L("mode"), L("m0"), pseudo(Add(L("m0"), I(31)), 10))),
			ForUp("m", I(0), I(mbs),
				Set("base", Mul(L("m"), I(msz))),
				// ~30% of blocks intra-predict from the previous block's
				// reconstruction (data dependent, late in the iteration).
				Set("dc", I(128)),
				If(AndC(Gt(L("m"), I(0)), Lt(Idx(L("mode"), L("m")), I(2))),
					S(Set("dc", Idx(L("rec"), Sub(L("base"), I(1))))), nil),
				ForUp("k", I(0), I(msz),
					Set("v", Add(L("dc"), Idx(L("res"), Add(L("base"), L("k"))))),
					// Inverse-transform-ish mixing work.
					Set("v", Add(L("v"), Shr(Mul(Sub(L("v"), I(64)), I(3)), I(4)))),
					SetIdx(L("rec"), Add(L("base"), L("k")),
						MaxI(I(0), MinI(I(255), L("v")))),
				),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(mbs*msz),
				Set("sum", Add(L("sum"), Mul(Idx(L("rec"), L("q")), Add(Rem(L("q"), I(11)), I(1))))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "mpegVideo", Category: Multimedia,
		Description: "Video decoding with dynamic intra-prediction violations",
		DataSet:     "24 macroblocks, ~20% intra predicted",
		Paper:       PaperRef{Speedup: 1.4, Analyzable: false, SerialPct: 0.47},
		Build:       build,
	}
}

// MP3 — audio decoding: a serial bitstream phase, then a frame loop whose
// rare "long block" frames run a heavy synthesis loop — the multilevel STL
// decomposition shape of §4.2.6 (the paper: "multilevel STL decompositions
// improve mp3"). A notable fraction of the program stays serial.
func MP3() *Workload {
	const frames, coefs, heavy = 48, 12, 40
	build := func() *bytecode.Program {
		p := NewProgram("mp3")
		p.Func("main", nil, false).Body(
			Set("stream", NewArr(I(frames*coefs))),
			Set("pcm", NewArr(I(frames*coefs))),
			Set("synth", NewArr(I(frames*heavy))),
			// Serial bitstream decode: carried bit position.
			Set("bitpos", I(1)),
			ForUp("x", I(0), I(frames*coefs),
				Set("bitpos", Rem(Add(Mul(L("bitpos"), I(29)), I(17)), I(509))),
				SetIdx(L("stream"), L("x"), L("bitpos")),
			),
			// Frame loop: light dequantization per frame; every 8th frame
			// is a long block running the heavy synthesis inner loop.
			ForUp("f", I(0), I(frames),
				Set("fb", Mul(L("f"), I(coefs))),
				ForUp("c", I(0), I(coefs),
					SetIdx(L("pcm"), Add(L("fb"), L("c")),
						Sub(Idx(L("stream"), Add(L("fb"), L("c"))), I(254))),
				),
				If(Eq(Rem(L("f"), I(8)), I(0)),
					Block(ForUp("w", I(0), I(heavy),
						Set("acc", F(0)),
						ForUp("c2", I(0), I(coefs),
							Set("acc", FAdd(L("acc"),
								FMul(ToFloat(Idx(L("pcm"), Add(L("fb"), L("c2")))),
									Cos(FMul(ToFloat(Mul(L("w"), L("c2"))), F(0.13)))))),
						),
						SetIdx(L("synth"), Add(Mul(L("f"), I(heavy)), L("w")),
							ToInt(FDiv(L("acc"), F(64.0)))),
					)), nil),
			),
			Set("sum", I(0)),
			ForUp("q", I(0), I(frames*coefs),
				Set("sum", Add(L("sum"), Idx(L("pcm"), L("q")))),
			),
			ForUp("q2", I(0), I(frames*heavy),
				Set("sum", Add(L("sum"), Idx(L("synth"), L("q2")))),
			),
			Print(L("sum")),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "mp3", Category: Multimedia,
		Description: "Audio decoding; rare heavy frames via multilevel STL",
		DataSet:     "48 frames x 12 coefficients, heavy synthesis every 8th frame",
		Paper:       PaperRef{Speedup: 1.5, Analyzable: false, SerialPct: 0.27},
		Build:       build,
	}
}
