package workloads

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/core"
)

// runPipeline runs one program through the full Jrpm pipeline.
func runPipeline(t *testing.T, bp *bytecode.Program) *core.Result {
	t.Helper()
	res, err := core.Run(bp, core.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: pipeline: %v", bp.Name, err)
	}
	if !res.OutputsMatch {
		t.Fatalf("%s: speculative output differs from sequential: seq=%v tls=%v",
			bp.Name, res.Seq.Output, res.TLS.Output)
	}
	return res
}

// TestSuiteCorrectness is the headline invariant: for every workload (and
// every transformed variant) the profiled run and the speculative run must
// produce byte-identical output to the sequential run.
func TestSuiteCorrectness(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := runPipeline(t, w.Build())
			t.Logf("%s: seq=%d cycles, speedup=%.2f (pred %.2f), profiling +%.1f%%, violations=%d",
				w.Name, res.Seq.Cycles, res.SpeedupActual(), res.SpeedupPredicted(),
				res.ProfileSlowdown()*100, res.TLS.Violations)
			if w.BuildTransformed != nil {
				rt := runPipeline(t, w.BuildTransformed())
				t.Logf("%s (transformed): speedup=%.2f", w.Name, rt.SpeedupActual())
			}
		})
	}
}

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("suite has %d workloads, want 26 (Table 3)", len(all))
	}
	counts := map[Category]int{}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		counts[w.Category]++
		if w.Build == nil || w.Description == "" || w.DataSet == "" {
			t.Errorf("%s: incomplete definition", w.Name)
		}
		if (w.BuildTransformed == nil) != (w.Transformed == nil) {
			t.Errorf("%s: transform metadata/build mismatch", w.Name)
		}
	}
	if counts[Integer] != 14 || counts[Float] != 7 || counts[Multimedia] != 5 {
		t.Errorf("category counts = %v, want 14/7/5", counts)
	}
	// Table 4 lists exactly six manual transformations.
	transforms := 0
	for _, w := range all {
		if w.Transformed != nil {
			transforms++
		}
	}
	if transforms != 6 {
		t.Errorf("manual transforms = %d, want 6 (Table 4)", transforms)
	}
}

func TestByName(t *testing.T) {
	if ByName("fft") == nil || ByName("nosuch") != nil {
		t.Fatal("ByName lookup broken")
	}
}
