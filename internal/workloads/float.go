package workloads

import (
	"jrpm/internal/bytecode"
	. "jrpm/internal/frontend"
)

// Euler — 2D fluid-dynamics sweeps over a grid: flux computation reads the
// old grid and writes the new one, row by row. Several distinct sweeps give
// Euler its many similar-coverage STLs; the best loop level in each nest
// depends on the grid dimensions (data-set sensitive).
func Euler() *Workload {
	const nx, ny, steps = 24, 9, 3 // paper: 33x9
	build := func() *bytecode.Program {
		p := NewProgram("euler")
		idx := func(i, j Expr) Expr { return Add(Mul(i, I(ny)), j) }
		p.Func("main", nil, false).Body(
			Set("u", NewArr(I(nx*ny))),
			Set("v", NewArr(I(nx*ny))),
			ForUp("i0", I(0), I(nx),
				ForUp("j0", I(0), I(ny),
					SetIdx(L("u"), idx(L("i0"), L("j0")),
						FAdd(Sin(ToFloat(L("i0"))), Cos(ToFloat(L("j0"))))),
				),
			),
			ForUp("t", I(0), I(steps),
				// Flux sweep: interior rows independent.
				ForUp("i", I(1), I(nx-1),
					ForUp("j", I(1), I(ny-1),
						Set("c", Idx(L("u"), idx(L("i"), L("j")))),
						Set("l", Idx(L("u"), idx(Sub(L("i"), I(1)), L("j")))),
						Set("r", Idx(L("u"), idx(Add(L("i"), I(1)), L("j")))),
						Set("d", Idx(L("u"), idx(L("i"), Sub(L("j"), I(1))))),
						Set("up", Idx(L("u"), idx(L("i"), Add(L("j"), I(1))))),
						SetIdx(L("v"), idx(L("i"), L("j")),
							FAdd(FMul(L("c"), F(0.6)),
								FMul(FAdd(FAdd(L("l"), L("r")), FAdd(L("d"), L("up"))), F(0.1)))),
					),
				),
				// Copy-back sweep.
				ForUp("i2", I(1), I(nx-1),
					ForUp("j2", I(1), I(ny-1),
						SetIdx(L("u"), idx(L("i2"), L("j2")), Idx(L("v"), idx(L("i2"), L("j2")))),
					),
				),
				// Dissipation sweep.
				ForUp("i3", I(1), I(nx-1),
					ForUp("j3", I(1), I(ny-1),
						SetIdx(L("u"), idx(L("i3"), L("j3")),
							FMul(Idx(L("u"), idx(L("i3"), L("j3"))), F(0.999))),
					),
				),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(nx*ny),
				Set("sum", FAdd(L("sum"), FAbs(Idx(L("u"), L("q"))))),
			),
			Print(ToInt(FMul(L("sum"), F(1000)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "euler", Category: Float,
		Description: "Fluid dynamics grid sweeps",
		DataSet:     "24x9 grid, 3 timesteps (paper: 33x9)",
		Paper:       PaperRef{Speedup: 2.5, Analyzable: true, DataSetDep: true, SerialPct: 0.13},
		Build:       build,
	}
}

// FFT — iterative radix-2 FFT. Inner butterfly loops are parallel; the late
// stages have few, very large iterations whose speculative footprint leads
// to overflow stalls — the wait-used time the paper attributes to fft.
func FFT() *Workload {
	const logn = 8 // 256 complex points (paper: 1024)
	const n = 1 << logn
	build := func() *bytecode.Program {
		p := NewProgram("fft")
		p.Func("main", nil, false).Body(
			Set("re", NewArr(I(n))),
			Set("im", NewArr(I(n))),
			ForUp("x", I(0), I(n),
				SetIdx(L("re"), L("x"), Sin(ToFloat(Mul(L("x"), I(3))))),
				SetIdx(L("im"), L("x"), F(0)),
			),
			// Stages: span doubles each stage.
			Set("span", I(1)),
			While(Lt(L("span"), I(n)),
				Set("groups", Div(I(n), Mul(L("span"), I(2)))),
				// Parallel over groups; group work grows with span.
				ForUp("g", I(0), L("groups"),
					Set("base", Mul(L("g"), Mul(L("span"), I(2)))),
					Set("ang0", FDiv(F(-3.141592653589793), ToFloat(L("span")))),
					ForUp("k", I(0), L("span"),
						Set("ang", FMul(L("ang0"), ToFloat(L("k")))),
						Set("wr", Cos(L("ang"))),
						Set("wi", Sin(L("ang"))),
						Set("i1", Add(L("base"), L("k"))),
						Set("i2", Add(L("i1"), L("span"))),
						Set("tr", FSub(FMul(L("wr"), Idx(L("re"), L("i2"))),
							FMul(L("wi"), Idx(L("im"), L("i2"))))),
						Set("ti", FAdd(FMul(L("wr"), Idx(L("im"), L("i2"))),
							FMul(L("wi"), Idx(L("re"), L("i2"))))),
						SetIdx(L("re"), L("i2"), FSub(Idx(L("re"), L("i1")), L("tr"))),
						SetIdx(L("im"), L("i2"), FSub(Idx(L("im"), L("i1")), L("ti"))),
						SetIdx(L("re"), L("i1"), FAdd(Idx(L("re"), L("i1")), L("tr"))),
						SetIdx(L("im"), L("i1"), FAdd(Idx(L("im"), L("i1")), L("ti"))),
					),
				),
				Set("span", Mul(L("span"), I(2))),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(n),
				Set("sum", FAdd(L("sum"), FAdd(FAbs(Idx(L("re"), L("q"))), FAbs(Idx(L("im"), L("q")))))),
			),
			Print(ToInt(FMul(L("sum"), F(100)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "fft", Category: Float,
		Description: "Radix-2 FFT; large late-stage iterations pressure the buffers",
		DataSet:     "256 complex points (paper: 1024)",
		Paper:       PaperRef{Speedup: 2.6, Analyzable: true, SerialPct: 0.01},
		Build:       build,
	}
}

// FourierTest — Fourier coefficient computation: outer loop over
// coefficients, each integrating numerically with heavy trigonometry — an
// ideal STL with a per-coefficient reduction.
func FourierTest() *Workload {
	const ncoef, nstep = 24, 40
	build := func() *bytecode.Program {
		p := NewProgram("FourierTest")
		p.Func("main", nil, false).Body(
			Set("coef", NewArr(I(ncoef))),
			ForUp("k", I(0), I(ncoef),
				Set("acc", F(0)),
				ForUp("s", I(0), I(nstep),
					Set("x", FMul(ToFloat(L("s")), F(0.05))),
					Set("acc", FAdd(L("acc"),
						FMul(FMul(FAdd(L("x"), F(1.0)), Cos(FMul(ToFloat(L("k")), L("x")))), F(0.05)))),
				),
				SetIdx(L("coef"), L("k"), L("acc")),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(ncoef),
				Set("sum", FAdd(L("sum"), FAbs(Idx(L("coef"), L("q"))))),
			),
			Print(ToInt(FMul(L("sum"), F(10000)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "FourierTest", Category: Float,
		Description: "Fourier coefficients; heavy independent outer iterations",
		DataSet:     "24 coefficients x 40 integration steps",
		Paper:       PaperRef{Speedup: 3.5, Analyzable: true, SerialPct: 0},
		Build:       build,
	}
}

// LuFactor — LU decomposition. Each elimination step has a short serial
// pivot phase and a parallel row-update loop; the row-update STL is entered
// once per pivot with a shrinking trip count, the natural home for the
// hoisted startup/shutdown optimization (§4.2.7).
func LuFactor() *Workload {
	const n = 20 // paper: 101x101
	build := func() *bytecode.Program {
		p := NewProgram("LuFactor")
		at := func(i, j Expr) Expr { return Add(Mul(i, I(n)), j) }
		p.Func("main", nil, false).Body(
			Set("a", NewArr(I(n*n))),
			ForUp("i0", I(0), I(n),
				ForUp("j0", I(0), I(n),
					SetIdx(L("a"), at(L("i0"), L("j0")),
						FAdd(ToFloat(Add(pseudo(Add(Mul(L("i0"), I(31)), L("j0")), 19), I(1))),
							Sel(Eq(L("i0"), L("j0")), F(40.0), F(0.0)))),
				),
			),
			ForUp("k", I(0), I(n-1),
				Set("piv", Idx(L("a"), at(L("k"), L("k")))),
				// Parallel row updates below the pivot.
				ForUp("i", Add(L("k"), I(1)), I(n),
					Set("f", FDiv(Idx(L("a"), at(L("i"), L("k"))), L("piv"))),
					SetIdx(L("a"), at(L("i"), L("k")), L("f")),
					ForUp("j", Add(L("k"), I(1)), I(n),
						SetIdx(L("a"), at(L("i"), L("j")),
							FSub(Idx(L("a"), at(L("i"), L("j"))),
								FMul(L("f"), Idx(L("a"), at(L("k"), L("j")))))),
					),
				),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(n),
				Set("sum", FAdd(L("sum"), FAbs(Idx(L("a"), at(L("q"), L("q")))))),
			),
			Print(ToInt(FMul(L("sum"), F(100)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "LuFactor", Category: Float,
		Description: "LU factorization; per-pivot parallel row updates (hoisting applies)",
		DataSet:     "20x20 matrix (paper: 101x101)",
		Paper:       PaperRef{Speedup: 2.8, Analyzable: true, DataSetDep: true, SerialPct: 0.10},
		Build:       build,
	}
}

// MolDyn — molecular dynamics. Each particle's force sums interactions with
// every other particle (reads only), so the outer force loop parallelizes;
// the potential-energy accumulator is a reduction.
func MolDyn() *Workload {
	const np = 40
	build := func() *bytecode.Program {
		p := NewProgram("moldyn")
		p.Func("main", nil, false).Body(
			Set("x", NewArr(I(np))),
			Set("f", NewArr(I(np))),
			ForUp("i0", I(0), I(np),
				SetIdx(L("x"), L("i0"), FMul(ToFloat(Add(pseudo(L("i0"), 100), I(1))), F(0.01))),
			),
			Set("pot", F(0)),
			ForUp("i", I(0), I(np),
				Set("fi", F(0)),
				Set("xi", Idx(L("x"), L("i"))),
				ForUp("j", I(0), I(np),
					If(Ne(L("j"), L("i")), S(
						Set("dx", FSub(L("xi"), Idx(L("x"), L("j")))),
						Set("r2", FAdd(FMul(L("dx"), L("dx")), F(0.01))),
						Set("inv", FDiv(F(1.0), L("r2"))),
						Set("fi", FAdd(L("fi"), FMul(L("dx"), FMul(L("inv"), L("inv"))))),
						Set("pot", FAdd(L("pot"), L("inv"))),
					), nil),
				),
				SetIdx(L("f"), L("i"), L("fi")),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(np),
				Set("sum", FAdd(L("sum"), FAbs(Idx(L("f"), L("q"))))),
			),
			Print(ToInt(L("sum"))),
			Print(ToInt(FMul(L("pot"), F(0.001)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "moldyn", Category: Float,
		Description: "Molecular dynamics pair forces with an energy reduction",
		DataSet:     "40 particles",
		Paper:       PaperRef{Speedup: 3.3, Analyzable: true, SerialPct: 0},
		Build:       build,
	}
}

// NeuralNet — layered feed-forward evaluation and a delta-rule update. The
// per-layer neuron loops have few iterations but are entered once per
// sample: exactly the shape where hoisting the STL startup/shutdown to the
// outer loop pays (§4.2.7, which the paper notes helps two NeuralNet loops).
func NeuralNet() *Workload {
	const nin, nhid, nout, samples = 5, 10, 10, 10 // paper: 35x8x8
	build := func() *bytecode.Program {
		p := NewProgram("NeuralNet")
		p.Func("main", nil, false).Body(
			Set("w1", NewArr(I(nin*nhid))),
			Set("w2", NewArr(I(nhid*nout))),
			Set("hid", NewArr(I(nhid))),
			Set("out", NewArr(I(nout))),
			ForUp("a", I(0), I(nin*nhid),
				SetIdx(L("w1"), L("a"), FMul(ToFloat(Sub(pseudo(L("a"), 200), I(100))), F(0.01)))),
			ForUp("b", I(0), I(nhid*nout),
				SetIdx(L("w2"), L("b"), FMul(ToFloat(Sub(pseudo(Add(L("b"), I(999)), 200), I(100))), F(0.01)))),
			Set("err", F(0)),
			ForUp("s", I(0), I(samples),
				// Hidden layer: parallel over neurons.
				ForUp("h", I(0), I(nhid),
					Set("acc", F(0)),
					ForUp("i", I(0), I(nin),
						Set("xv", FMul(ToFloat(Add(Rem(Add(L("s"), L("i")), I(7)), I(1))), F(0.1))),
						Set("acc", FAdd(L("acc"), FMul(L("xv"),
							Idx(L("w1"), Add(Mul(L("i"), I(nhid)), L("h")))))),
					),
					// Sigmoid-ish squashing.
					SetIdx(L("hid"), L("h"), FDiv(L("acc"), FAdd(F(1.0), FAbs(L("acc"))))),
				),
				// Output layer.
				ForUp("o", I(0), I(nout),
					Set("acc", F(0)),
					ForUp("h2", I(0), I(nhid),
						Set("acc", FAdd(L("acc"), FMul(Idx(L("hid"), L("h2")),
							Idx(L("w2"), Add(Mul(L("h2"), I(nout)), L("o")))))),
					),
					SetIdx(L("out"), L("o"), L("acc")),
				),
				// Delta update of w2: parallel over output neurons.
				ForUp("o2", I(0), I(nout),
					Set("d", FSub(F(0.5), Idx(L("out"), L("o2")))),
					ForUp("h3", I(0), I(nhid),
						SetIdx(L("w2"), Add(Mul(L("h3"), I(nout)), L("o2")),
							FAdd(Idx(L("w2"), Add(Mul(L("h3"), I(nout)), L("o2"))),
								FMul(FMul(L("d"), Idx(L("hid"), L("h3"))), F(0.05)))),
					),
					Set("err", FAdd(L("err"), FAbs(L("d")))),
				),
			),
			Print(ToInt(FMul(L("err"), F(1000)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "NeuralNet", Category: Float,
		Description: "Layered network; small per-layer loops entered per sample (hoisting)",
		DataSet:     "5x10x10 network, 10 samples (paper: 35x8x8)",
		Paper:       PaperRef{Speedup: 3.0, Analyzable: true, DataSetDep: true, SerialPct: 0.02},
		Build:       build,
	}
}

// Shallow — shallow-water simulation: independent row sweeps over 2D
// fields, the friendliest of the FP kernels.
func Shallow() *Workload {
	const nx, ny, steps = 26, 26, 2 // paper: 256x256
	build := func() *bytecode.Program {
		p := NewProgram("shallow")
		at := func(i, j Expr) Expr { return Add(Mul(i, I(ny)), j) }
		p.Func("main", nil, false).Body(
			Set("hf", NewArr(I(nx*ny))),
			Set("uf", NewArr(I(nx*ny))),
			ForUp("i0", I(0), I(nx),
				ForUp("j0", I(0), I(ny),
					SetIdx(L("hf"), at(L("i0"), L("j0")),
						FAdd(F(10.0), Sin(ToFloat(Add(L("i0"), L("j0")))))),
				),
			),
			ForUp("t", I(0), I(steps),
				ForUp("i", I(1), I(nx-1),
					ForUp("j", I(1), I(ny-1),
						Set("gradx", FSub(Idx(L("hf"), at(Add(L("i"), I(1)), L("j"))),
							Idx(L("hf"), at(Sub(L("i"), I(1)), L("j"))))),
						Set("grady", FSub(Idx(L("hf"), at(L("i"), Add(L("j"), I(1)))),
							Idx(L("hf"), at(L("i"), Sub(L("j"), I(1)))))),
						SetIdx(L("uf"), at(L("i"), L("j")),
							FMul(FAdd(L("gradx"), L("grady")), F(-0.12))),
					),
				),
				ForUp("i2", I(1), I(nx-1),
					ForUp("j2", I(1), I(ny-1),
						SetIdx(L("hf"), at(L("i2"), L("j2")),
							FAdd(Idx(L("hf"), at(L("i2"), L("j2"))),
								Idx(L("uf"), at(L("i2"), L("j2"))))),
					),
				),
			),
			Set("sum", F(0)),
			ForUp("q", I(0), I(nx*ny),
				Set("sum", FAdd(L("sum"), Idx(L("hf"), L("q")))),
			),
			Print(ToInt(FMul(L("sum"), F(100)))),
		)
		return p.MustBuild()
	}
	return &Workload{
		Name: "shallow", Category: Float,
		Description: "Shallow water stencil sweeps",
		DataSet:     "26x26 grid, 2 timesteps (paper: 256x256)",
		Paper:       PaperRef{Speedup: 3.7, Analyzable: true, DataSetDep: true, SerialPct: 0.06},
		Build:       build,
	}
}
