package cfg

import (
	"testing"

	bc "jrpm/internal/bytecode"
)

// buildRaw wraps a hand-written instruction sequence into a verified
// one-method program and its graph.
func buildRaw(t *testing.T, name string, nlocals int, code []bc.Ins) *Graph {
	t.Helper()
	m := &bc.Method{Name: name, NArgs: 1, NLocals: nlocals, Code: code}
	p := &bc.Program{Methods: []*bc.Method{m}, Main: 0}
	if err := bc.Verify(p); err != nil {
		t.Fatal(err)
	}
	return Build(p, m)
}

// blockAt returns the block whose code starts at pc.
func blockAt(t *testing.T, g *Graph, pc int) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Start == pc {
			return b
		}
	}
	t.Fatalf("no block starts at pc %d", pc)
	return nil
}

// TestDiamondDominators: if/else — neither arm dominates the join, the
// entry dominates everything, and dominance is not symmetric.
func TestDiamondDominators(t *testing.T) {
	code := []bc.Ins{
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFEQ, A: 5},
		{Op: bc.CONST, A: 1}, // 2: then arm
		{Op: bc.STORE, A: 1},
		{Op: bc.GOTO, A: 7},
		{Op: bc.CONST, A: 2}, // 5: else arm
		{Op: bc.STORE, A: 1},
		{Op: bc.RETURN}, // 7: join
	}
	g := buildRaw(t, "diamond", 2, code)
	entry := blockAt(t, g, 0)
	then := blockAt(t, g, 2)
	els := blockAt(t, g, 5)
	join := blockAt(t, g, 7)
	for _, b := range g.Blocks {
		if !g.Dominates(entry.ID, b.ID) {
			t.Errorf("entry does not dominate block %d", b.ID)
		}
	}
	if g.Dominates(then.ID, join.ID) || g.Dominates(els.ID, join.ID) {
		t.Error("a conditional arm must not dominate the join")
	}
	if g.Dominates(then.ID, els.ID) || g.Dominates(els.ID, then.ID) {
		t.Error("sibling arms must not dominate each other")
	}
	if !g.Dominates(join.ID, join.ID) {
		t.Error("dominance must be reflexive")
	}
	if g.Dominates(join.ID, entry.ID) {
		t.Error("dominance must not be symmetric")
	}
	if len(g.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(g.Loops))
	}
}

// TestContinueMergesBackEdges: a loop whose body rejoins the header from
// two places (a continue shape) is discovered as ONE natural loop whose
// header dominates every back-edge source.
func TestContinueMergesBackEdges(t *testing.T) {
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 13},
		{Op: bc.IINC, A: 1, B: 1},
		{Op: bc.LOAD, A: 1}, // parity test
		{Op: bc.CONST, A: 1},
		{Op: bc.IAND},
		{Op: bc.IFEQ, A: 12}, // even → skip the NOP ("continue")
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2}, // odd back edge
		{Op: bc.GOTO, A: 2}, // 12: even back edge
		{Op: bc.RETURN},     // 13
	}
	g := buildRaw(t, "continue", 2, code)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (back edges to one header merge)", len(g.Loops))
	}
	l := g.Loops[0]
	if len(l.Ends) != 2 {
		t.Fatalf("back-edge sources = %d, want 2", len(l.Ends))
	}
	for _, e := range l.Ends {
		if !g.Dominates(l.Header, e) {
			t.Error("header must dominate every back-edge source")
		}
	}
	if step, ok := l.Inductors[1]; !ok || step != 1 {
		t.Errorf("slot 1 inductor step = %d/%v, want 1/true (increment dominates both ends)",
			step, ok)
	}
}

// TestSiblingLoopsAreIndependent: two sequential loops share no blocks,
// have no parent, and neither dominates the other's body.
func TestSiblingLoopsAreIndependent(t *testing.T) {
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: first header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 7},
		{Op: bc.IINC, A: 1, B: 1},
		{Op: bc.GOTO, A: 2},
		{Op: bc.CONST, A: 0}, // 7
		{Op: bc.STORE, A: 2},
		{Op: bc.LOAD, A: 2}, // 9: second header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 14},
		{Op: bc.IINC, A: 2, B: 1},
		{Op: bc.GOTO, A: 9},
		{Op: bc.RETURN}, // 14
	}
	g := buildRaw(t, "siblings", 3, code)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(g.Loops))
	}
	a, b := g.Loops[0], g.Loops[1]
	if a.Parent != -1 || b.Parent != -1 || a.Depth != 1 || b.Depth != 1 {
		t.Errorf("parents %d/%d depths %d/%d, want -1/-1 and 1/1",
			a.Parent, b.Parent, a.Depth, b.Depth)
	}
	for blk := range a.Blocks {
		if b.Blocks[blk] {
			t.Fatalf("block %d belongs to both sibling loops", blk)
		}
	}
	if g.MaxDepth() != 1 {
		t.Errorf("max depth = %d, want 1", g.MaxDepth())
	}
}

// TestInnermostLoopOf: header and body of a nested pair resolve to the
// tightest enclosing loop; blocks outside every loop resolve to nil.
func TestInnermostLoopOf(t *testing.T) {
	// Reuse the shape of TestNestedLoopsAndDepth.
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: outer header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 16},
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 2},
		{Op: bc.LOAD, A: 2}, // 7: inner header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 13},
		{Op: bc.IINC, A: 2, B: 1},
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 7},
		{Op: bc.IINC, A: 1, B: 1}, // 13
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2},
		{Op: bc.RETURN}, // 16
	}
	g := buildRaw(t, "innermost", 3, code)
	outer, inner := g.Loops[0], g.Loops[1]
	if outer.Depth != 1 {
		outer, inner = inner, outer
	}
	if got := g.InnermostLoopOf(inner.Header); got != inner {
		t.Errorf("InnermostLoopOf(inner header) = %v, want the inner loop", got)
	}
	// The outer increment block is in the outer loop only.
	incBlk := blockAt(t, g, 13)
	if got := g.InnermostLoopOf(incBlk.ID); got != outer {
		t.Errorf("InnermostLoopOf(outer latch) = %v, want the outer loop", got)
	}
	exitBlk := blockAt(t, g, 16)
	if got := g.InnermostLoopOf(exitBlk.ID); got != nil {
		t.Errorf("InnermostLoopOf(exit) = %v, want nil", got)
	}
}

// TestBreakKeepsSingleExitTarget: a conditional break that jumps to the
// same block the header exits to keeps the loop a one-exit STL candidate;
// a break to a DIFFERENT target makes it multi-exit.
func TestBreakKeepsSingleExitTarget(t *testing.T) {
	same := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 10},
		{Op: bc.LOAD, A: 1},
		{Op: bc.IFEQ, A: 10}, // break to the common exit
		{Op: bc.IINC, A: 1, B: 1},
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2},
		{Op: bc.RETURN}, // 10
	}
	g := buildRaw(t, "break-same", 2, same)
	if len(g.Loops) != 1 || len(g.Loops[0].Exits) != 1 {
		t.Fatalf("same-target break: loops=%d exits=%v, want one loop with one exit",
			len(g.Loops), g.Loops[0].Exits)
	}

	diff := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 12},
		{Op: bc.LOAD, A: 1},
		{Op: bc.IFEQ, A: 10}, // break to a distinct landing pad
		{Op: bc.IINC, A: 1, B: 1},
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2},
		{Op: bc.CONST, A: 9}, // 10: landing pad
		{Op: bc.STORE, A: 1},
		{Op: bc.RETURN}, // 12
	}
	g = buildRaw(t, "break-diff", 2, diff)
	if len(g.Loops) != 1 || len(g.Loops[0].Exits) != 2 {
		t.Fatalf("distinct-target break: loops=%d exits=%v, want one loop with two exits",
			len(g.Loops), g.Loops[0].Exits)
	}
}
