package cfg

import (
	"testing"

	bc "jrpm/internal/bytecode"
)

// loopMethod builds: for (i = 0; i < arg; i++) { body... } with the counter
// in slot 1 and a sum in slot 2 when withSum.
//
//	0: const 0        ; i = 0
//	1: store 1
//	2: load 1         ; header
//	3: load 0
//	4: if_icmpge exit
//	   <body>
//	   iinc 1, 1
//	   goto 2
//	exit: ...
func buildCountedLoop(body []bc.Ins, tail []bc.Ins, nlocals int, result bool) (*bc.Program, *bc.Method) {
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1},
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 0}, // patched below
	}
	code = append(code, body...)
	code = append(code, bc.Ins{Op: bc.IINC, A: 1, B: 1}, bc.Ins{Op: bc.GOTO, A: 2})
	exit := len(code)
	code[4].A = int64(exit)
	code = append(code, tail...)
	m := &bc.Method{ID: 0, Name: "loop", NArgs: 1, NLocals: nlocals, HasResult: result, Code: code}
	p := &bc.Program{Methods: []*bc.Method{m}, Main: 0}
	if err := bc.Verify(p); err != nil {
		panic(err)
	}
	return p, m
}

func TestSimpleLoopDiscovery(t *testing.T) {
	p, m := buildCountedLoop(nil, []bc.Ins{{Op: bc.RETURN}}, 2, false)
	g := Build(p, m)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if g.Blocks[l.Header].Start != 2 {
		t.Errorf("loop header starts at pc %d, want 2", g.Blocks[l.Header].Start)
	}
	if l.Depth != 1 || l.Parent != -1 {
		t.Errorf("depth/parent = %d/%d", l.Depth, l.Parent)
	}
	if len(l.Exits) != 1 {
		t.Errorf("exits = %v", l.Exits)
	}
}

func TestInductorDetection(t *testing.T) {
	p, m := buildCountedLoop(nil, []bc.Ins{{Op: bc.RETURN}}, 2, false)
	g := Build(p, m)
	l := g.Loops[0]
	if step, ok := l.Inductors[1]; !ok || step != 1 {
		t.Fatalf("slot 1 inductor step = %d (ok=%v), want 1", step, ok)
	}
	if len(l.Carried) != 1 || l.Carried[0] != 1 {
		t.Errorf("carried = %v, want [1]", l.Carried)
	}
	// Slot 0 (the bound) is invariant.
	if len(l.Invariant) != 1 || l.Invariant[0] != 0 {
		t.Errorf("invariant = %v, want [0]", l.Invariant)
	}
}

func TestLoadConstAddStoreInductor(t *testing.T) {
	// i += 2 spelled as load/const/iadd/store.
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 9},
		{Op: bc.LOAD, A: 1}, // 5
		{Op: bc.CONST, A: 2},
		{Op: bc.IADD},
		{Op: bc.STORE, A: 1},
		{Op: bc.GOTO, A: 2}, // oops: store is pc 8, goto at 9 targets 2... fix below
	}
	// Rebuild with correct targets: exit at 10.
	code[4].A = 10
	code[9] = bc.Ins{Op: bc.GOTO, A: 2}
	code = append(code, bc.Ins{Op: bc.RETURN})
	m := &bc.Method{Name: "l", NArgs: 1, NLocals: 2, Code: code}
	p := &bc.Program{Methods: []*bc.Method{m}, Main: 0}
	if err := bc.Verify(p); err != nil {
		t.Fatal(err)
	}
	g := Build(p, m)
	if step, ok := g.Loops[0].Inductors[1]; !ok || step != 2 {
		t.Fatalf("inductor step = %d ok=%v, want 2", step, ok)
	}
}

func TestReductionDetection(t *testing.T) {
	// sum (slot 2) += i (slot 1) each iteration.
	body := []bc.Ins{
		{Op: bc.LOAD, A: 2},
		{Op: bc.LOAD, A: 1},
		{Op: bc.IADD},
		{Op: bc.STORE, A: 2},
	}
	tail := []bc.Ins{{Op: bc.LOAD, A: 2}, {Op: bc.IRETURN}}
	p, m := buildCountedLoop(body, tail, 3, true)
	g := Build(p, m)
	l := g.Loops[0]
	if op, ok := l.Reductions[2]; !ok || op != bc.IADD {
		t.Fatalf("reduction = %v (ok=%v), want iadd", op, ok)
	}
	// The sum is live out of the loop.
	found := false
	for _, s := range l.LiveOut {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("live-out = %v, want to include 2", l.LiveOut)
	}
}

func TestNonReductionWhenValueEscapes(t *testing.T) {
	// sum += i, but sum is also printed inside the loop: not a reduction.
	body := []bc.Ins{
		{Op: bc.LOAD, A: 2},
		{Op: bc.LOAD, A: 1},
		{Op: bc.IADD},
		{Op: bc.STORE, A: 2},
		{Op: bc.LOAD, A: 2},
		{Op: bc.PRINT},
	}
	p, _ := buildCountedLoop(body, []bc.Ins{{Op: bc.RETURN}}, 3, false)
	info := AnalyzeProgram(p)
	l := info.Graphs[0].Loops[0]
	if _, ok := l.Reductions[2]; ok {
		t.Fatal("escaping accumulator misclassified as reduction")
	}
	if !l.HasIO {
		t.Error("loop with print should be flagged HasIO")
	}
}

func TestResetableInductor(t *testing.T) {
	// ptr (slot 2) increments every iteration but is conditionally reset:
	//   ptr++ ; if (i == 5) ptr = 0
	body := []bc.Ins{
		{Op: bc.IINC, A: 2, B: 1},
		{Op: bc.LOAD, A: 1},
		{Op: bc.CONST, A: 5},
		{Op: bc.IFICMPNE, A: 0}, // patched to skip the reset
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 2},
	}
	// Branch target = pc after the reset: body starts at 5, so the reset
	// store is at pc 10, branch target is 11 (the iinc of the for-loop).
	body[3].A = 11
	tail := []bc.Ins{{Op: bc.LOAD, A: 2}, {Op: bc.IRETURN}}
	p, m := buildCountedLoop(body, tail, 3, true)
	g := Build(p, m)
	l := g.Loops[0]
	if step, ok := l.Resetable[2]; !ok || step != 1 {
		t.Fatalf("resetable inductor step = %d ok=%v; inductors=%v resetable=%v",
			step, ok, l.Inductors, l.Resetable)
	}
	if _, plain := l.Inductors[2]; plain {
		t.Error("reset inductor must not classify as a plain inductor")
	}
}

func TestNestedLoopsAndDepth(t *testing.T) {
	// for i { for j { } }
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: outer header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 16},
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 2},
		{Op: bc.LOAD, A: 2}, // 7: inner header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 13},
		{Op: bc.IINC, A: 2, B: 1},
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 7},
		{Op: bc.IINC, A: 1, B: 1}, // 13
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2},
		{Op: bc.RETURN}, // 16
	}
	m := &bc.Method{Name: "nest", NArgs: 1, NLocals: 3, Code: code}
	p := &bc.Program{Methods: []*bc.Method{m}, Main: 0}
	if err := bc.Verify(p); err != nil {
		t.Fatal(err)
	}
	g := Build(p, m)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	if g.Blocks[outer.Header].Start != 2 {
		outer, inner = inner, outer
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d/%d, want 1/2", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer.Index {
		t.Errorf("inner parent = %d, want %d", inner.Parent, outer.Index)
	}
	if !outer.HasInner || outer.CondInner {
		t.Errorf("outer flags: HasInner=%v CondInner=%v, want true/false", outer.HasInner, outer.CondInner)
	}
	if g.MaxDepth() != 2 {
		t.Errorf("max depth = %d", g.MaxDepth())
	}
}

func TestConditionalInnerLoopFlagged(t *testing.T) {
	// for i { if (i&1) { for j {} } }  — multilevel candidate shape.
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2: outer header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 19},
		{Op: bc.LOAD, A: 1}, // 5: condition
		{Op: bc.CONST, A: 1},
		{Op: bc.IAND},
		{Op: bc.IFEQ, A: 16}, // skip inner loop
		{Op: bc.CONST, A: 0}, // 9
		{Op: bc.STORE, A: 2},
		{Op: bc.LOAD, A: 2}, // 11: inner header
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 16},
		{Op: bc.IINC, A: 2, B: 1},
		{Op: bc.GOTO, A: 11},
		{Op: bc.IINC, A: 1, B: 1}, // 16
		{Op: bc.NOP},
		{Op: bc.GOTO, A: 2},
		{Op: bc.RETURN}, // 19
	}
	m := &bc.Method{Name: "cond", NArgs: 1, NLocals: 3, Code: code}
	p := &bc.Program{Methods: []*bc.Method{m}, Main: 0}
	if err := bc.Verify(p); err != nil {
		t.Fatal(err)
	}
	g := Build(p, m)
	var outer *Loop
	for _, l := range g.Loops {
		if l.Depth == 1 {
			outer = l
		}
	}
	if outer == nil || !outer.CondInner {
		t.Fatal("conditionally-executed inner loop not flagged as multilevel candidate")
	}
}

func TestTransitiveIOFlag(t *testing.T) {
	// main loops calling helper, helper prints.
	helper := &bc.Method{ID: 1, Name: "helper", NArgs: 1, NLocals: 1, Code: []bc.Ins{
		{Op: bc.LOAD, A: 0}, {Op: bc.PRINT}, {Op: bc.RETURN},
	}}
	code := []bc.Ins{
		{Op: bc.CONST, A: 0},
		{Op: bc.STORE, A: 1},
		{Op: bc.LOAD, A: 1}, // 2
		{Op: bc.LOAD, A: 0},
		{Op: bc.IFICMPGE, A: 9},
		{Op: bc.LOAD, A: 1},
		{Op: bc.INVOKE, A: 1},
		{Op: bc.IINC, A: 1, B: 1},
		{Op: bc.GOTO, A: 2},
		{Op: bc.RETURN}, // 9
	}
	main := &bc.Method{ID: 0, Name: "main", NArgs: 1, NLocals: 2, Code: code}
	p := &bc.Program{Methods: []*bc.Method{main, helper}, Main: 0}
	if err := bc.Verify(p); err != nil {
		t.Fatal(err)
	}
	info := AnalyzeProgram(p)
	if !info.DoesIO[0] {
		t.Error("main should transitively do IO")
	}
	if !info.Graphs[0].Loops[0].HasIO {
		t.Error("loop calling an IO method must be flagged HasIO")
	}
	if !info.Graphs[0].Loops[0].HasCall {
		t.Error("loop should be flagged HasCall")
	}
	if info.TotalLoops() != 1 {
		t.Errorf("total loops = %d", info.TotalLoops())
	}
}

func TestGlobalLoopIDRoundTrip(t *testing.T) {
	id := GlobalLoopID(7, 13)
	m, l := SplitLoopID(id)
	if m != 7 || l != 13 {
		t.Fatalf("round trip = %d/%d", m, l)
	}
}

func TestDominates(t *testing.T) {
	p, m := buildCountedLoop(nil, []bc.Ins{{Op: bc.RETURN}}, 2, false)
	g := Build(p, m)
	// Entry block dominates everything.
	for _, b := range g.Blocks {
		if !g.Dominates(0, b.ID) {
			t.Errorf("entry should dominate block %d", b.ID)
		}
	}
	l := g.Loops[0]
	for _, e := range l.Ends {
		if !g.Dominates(l.Header, e) {
			t.Error("loop header must dominate back-edge sources")
		}
	}
}
