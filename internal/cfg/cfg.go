// Package cfg derives control-flow graphs from bytecode and identifies
// natural loops — the prospective speculative thread loops of Figure 1 step
// 1 — together with the per-loop local-variable classification that the
// microJIT's speculative optimizations (§4.2) rely on:
//
//   - carried locals: written in the loop and live into the next iteration
//     (these must be communicated through the runtime stack unless an
//     optimization below removes the communication);
//   - invariant locals: read but never written in the loop (register
//     allocated with reload-on-restart, §4.2.1);
//   - inductors: incremented by a constant exactly once per iteration
//     (computed locally per CPU, §4.2.2);
//   - resetable inductors: inductors with additional, conditionally executed
//     stores (§4.2.3);
//   - reductions: locals whose only use is an associative accumulation
//     (computed per CPU and merged at loop exit, §4.2.5).
//
// Natural loops follow the textbook definition [Muchnick]: a back edge
// t→h where h dominates t defines the loop of all blocks that reach t
// without passing through h.
package cfg

import (
	"sort"

	"jrpm/internal/bytecode"
)

// Block is a basic block of bytecode instructions [Start, End).
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Loop is one natural loop.
type Loop struct {
	Index    int // per-method loop index
	Header   int // block id
	Blocks   map[int]bool
	Ends     []int // back-edge source block ids
	Exits    []int // target block ids outside the loop
	Parent   int   // enclosing loop index, or -1
	Depth    int   // nesting depth; outermost = 1
	Children []int

	// Local-variable classification (slot ids).
	Written    map[int]bool
	Read       map[int]bool
	Carried    []int
	Invariant  []int
	LiveOut    []int               // locals live after the loop exits
	Inductors  map[int]int64       // slot → per-iteration step
	Resetable  map[int]int64       // slot → step (extra conditional stores)
	Reductions map[int]bytecode.Op // slot → accumulation op

	// Behaviour flags (transitive through calls).
	HasIO      bool // contains a system call; cannot be speculated
	HasAlloc   bool
	HasMonitor bool
	HasCall    bool
	HasInner   bool // contains a nested loop
	HasEscape  bool // contains return/throw: control can leave non-locally
	// CondInner reports a nested loop whose header is conditionally executed
	// (the §4.2.6 multilevel decomposition candidate shape).
	CondInner bool
}

// Graph is the CFG and loop forest of one method.
type Graph struct {
	Method  *bytecode.Method
	Blocks  []*Block
	blockAt []int // pc → block id
	Idom    []int // immediate dominator per block; entry = -1
	Loops   []*Loop

	liveIn  []map[int]bool // per block
	liveOut []map[int]bool
}

// BlockAt returns the id of the block containing pc.
func (g *Graph) BlockAt(pc int) int { return g.blockAt[pc] }

// Build constructs the CFG for m, including exception-handler edges, and
// runs dominator, loop, liveness and local-classification analyses.
func Build(p *bytecode.Program, m *bytecode.Method) *Graph {
	g := &Graph{Method: m}
	g.buildBlocks(m)
	g.computeDominators()
	g.findLoops()
	g.computeLiveness(p)
	g.classifyLocals(p)
	return g
}

// buildBlocks splits the code at leaders and wires edges.
func (g *Graph) buildBlocks(m *bytecode.Method) {
	n := len(m.Code)
	leader := make([]bool, n+1)
	leader[0] = true
	for pc, in := range m.Code {
		if in.IsBranch() {
			leader[in.A] = true
			leader[pc+1] = true
		} else if in.Terminates() || in.Op == bytecode.ATHROW {
			leader[pc+1] = true
		}
	}
	for _, h := range m.Handlers {
		leader[h.Start] = true
		leader[h.Target] = true
		if h.End <= n {
			leader[h.End] = true
		}
	}
	g.blockAt = make([]int, n)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			b := &Block{ID: len(g.Blocks), Start: start, End: pc}
			g.Blocks = append(g.Blocks, b)
			for i := start; i < pc; i++ {
				g.blockAt[i] = b.ID
			}
			start = pc
		}
	}
	addEdge := func(from, to int) {
		for _, s := range g.Blocks[from].Succs {
			if s == to {
				return
			}
		}
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for _, b := range g.Blocks {
		last := m.Code[b.End-1]
		if last.IsBranch() {
			addEdge(b.ID, g.blockAt[last.A])
		}
		if !last.Terminates() && b.End < n {
			addEdge(b.ID, g.blockAt[b.End])
		}
	}
	// Exception edges: any block overlapping a protected range may transfer
	// to the handler.
	for _, h := range m.Handlers {
		for _, b := range g.Blocks {
			if b.Start < h.End && b.End > h.Start {
				addEdge(b.ID, g.blockAt[h.Target])
			}
		}
	}
}

// computeDominators runs the iterative dominator algorithm.
func (g *Graph) computeDominators() {
	n := len(g.Blocks)
	g.Idom = make([]int, n)
	for i := range g.Idom {
		g.Idom[i] = -2 // unreached
	}
	g.Idom[0] = -1
	// Reverse postorder.
	order := g.reversePostorder()
	pos := make([]int, n)
	for i, b := range order {
		pos[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = g.Idom[a]
			}
			for pos[b] > pos[a] {
				b = g.Idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -2
			for _, p := range g.Blocks[b].Preds {
				if g.Idom[p] == -2 {
					continue // unreached so far
				}
				if newIdom == -2 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -2 && g.Idom[b] != newIdom {
				g.Idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) reversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether block a dominates block b.
func (g *Graph) Dominates(a, b int) bool {
	for b != -1 && b != -2 {
		if a == b {
			return true
		}
		b = g.Idom[b]
	}
	return false
}

// findLoops discovers natural loops from back edges, merging loops that
// share a header, then computes nesting.
func (g *Graph) findLoops() {
	byHeader := make(map[int]*Loop)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.Idom[b.ID] != -2 && g.Dominates(s, b.ID) { // back edge b→s
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}, Parent: -1}
					byHeader[s] = l
				}
				l.Ends = append(l.Ends, b.ID)
				// Natural loop: all blocks reaching b without passing s.
				var stack []int
				if !l.Blocks[b.ID] {
					l.Blocks[b.ID] = true
					stack = append(stack, b.ID)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.Blocks[x].Preds {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Deterministic order: by header pc.
	var headers []int
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool {
		return g.Blocks[headers[i]].Start < g.Blocks[headers[j]].Start
	})
	for i, h := range headers {
		l := byHeader[h]
		l.Index = i
		g.Loops = append(g.Loops, l)
	}
	// Exits.
	for _, l := range g.Loops {
		seen := map[int]bool{}
		for b := range l.Blocks {
			for _, s := range g.Blocks[b].Succs {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Ints(l.Exits)
	}
	// Nesting: parent is the smallest strictly-containing loop.
	for i, l := range g.Loops {
		best := -1
		for j, o := range g.Loops {
			if i == j || len(o.Blocks) <= len(l.Blocks) {
				continue
			}
			contains := true
			for b := range l.Blocks {
				if !o.Blocks[b] {
					contains = false
					break
				}
			}
			if contains && (best == -1 || len(o.Blocks) > 0 && len(g.Loops[best].Blocks) > len(o.Blocks)) {
				best = j
			}
		}
		l.Parent = best
	}
	for _, l := range g.Loops {
		if l.Parent >= 0 {
			g.Loops[l.Parent].Children = append(g.Loops[l.Parent].Children, l.Index)
			g.Loops[l.Parent].HasInner = true
		}
	}
	var depth func(*Loop) int
	depth = func(l *Loop) int {
		if l.Parent == -1 {
			return 1
		}
		return depth(g.Loops[l.Parent]) + 1
	}
	for _, l := range g.Loops {
		l.Depth = depth(l)
	}
	// Conditionally-executed inner loops (multilevel candidates): the child
	// header does not dominate any of the parent's back-edge sources.
	for _, l := range g.Loops {
		for _, ci := range l.Children {
			c := g.Loops[ci]
			dominatesAll := true
			for _, e := range l.Ends {
				if !g.Dominates(c.Header, e) {
					dominatesAll = false
					break
				}
			}
			if !dominatesAll {
				l.CondInner = true
			}
		}
	}
}

// MaxDepth returns the deepest loop nesting in the method.
func (g *Graph) MaxDepth() int {
	d := 0
	for _, l := range g.Loops {
		if l.Depth > d {
			d = l.Depth
		}
	}
	return d
}

// ExecutesEveryIteration reports whether block b runs exactly once per
// iteration of loop l: it belongs to l (and no nested loop) and dominates
// every back-edge source. Sync-lock placement requires this of the protected
// local's access blocks, or a skipped signal would deadlock the successor.
func (g *Graph) ExecutesEveryIteration(l *Loop, b int) bool {
	if !l.Blocks[b] || g.InnermostLoopOf(b) != l {
		return false
	}
	for _, e := range l.Ends {
		if !g.Dominates(b, e) {
			return false
		}
	}
	return true
}

// InnermostLoopOf returns the innermost loop containing block b, or nil.
func (g *Graph) InnermostLoopOf(b int) *Loop {
	var best *Loop
	for _, l := range g.Loops {
		if l.Blocks[b] && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}
