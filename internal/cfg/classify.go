package cfg

import (
	"sort"

	"jrpm/internal/bytecode"
)

// computeLiveness runs backward liveness dataflow for local slots.
func (g *Graph) computeLiveness(p *bytecode.Program) {
	n := len(g.Blocks)
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	for _, b := range g.Blocks {
		u, d := map[int]bool{}, map[int]bool{}
		for pc := b.Start; pc < b.End; pc++ {
			in := g.Method.Code[pc]
			switch in.Op {
			case bytecode.LOAD:
				if !d[int(in.A)] {
					u[int(in.A)] = true
				}
			case bytecode.IINC:
				if !d[int(in.A)] {
					u[int(in.A)] = true
				}
				d[int(in.A)] = true
			case bytecode.STORE:
				d[int(in.A)] = true
			}
		}
		use[b.ID], def[b.ID] = u, d
	}
	g.liveIn = make([]map[int]bool, n)
	g.liveOut = make([]map[int]bool, n)
	for i := range g.liveIn {
		g.liveIn[i] = map[int]bool{}
		g.liveOut[i] = map[int]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			out := g.liveOut[i]
			for _, s := range b.Succs {
				for slot := range g.liveIn[s] {
					if !out[slot] {
						out[slot] = true
						changed = true
					}
				}
			}
			in := g.liveIn[i]
			for slot := range use[i] {
				if !in[slot] {
					in[slot] = true
					changed = true
				}
			}
			for slot := range out {
				if !def[i][slot] && !in[slot] {
					in[slot] = true
					changed = true
				}
			}
		}
	}
}

// LiveIn returns the locals live on entry to block b.
func (g *Graph) LiveIn(b int) map[int]bool { return g.liveIn[b] }

// classifyLocals fills each loop's local-variable classification.
func (g *Graph) classifyLocals(p *bytecode.Program) {
	for _, l := range g.Loops {
		g.classifyLoop(p, l)
	}
}

func (g *Graph) classifyLoop(p *bytecode.Program, l *Loop) {
	code := g.Method.Code
	l.Written = map[int]bool{}
	l.Read = map[int]bool{}
	l.Inductors = map[int]int64{}
	l.Resetable = map[int]int64{}
	l.Reductions = map[int]bytecode.Op{}

	type storeSite struct{ block, pc int }
	stores := map[int][]storeSite{}
	for b := range l.Blocks {
		blk := g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			in := code[pc]
			switch in.Op {
			case bytecode.LOAD:
				l.Read[int(in.A)] = true
			case bytecode.STORE:
				l.Written[int(in.A)] = true
				stores[int(in.A)] = append(stores[int(in.A)], storeSite{b, pc})
			case bytecode.IINC:
				l.Read[int(in.A)] = true
				l.Written[int(in.A)] = true
				stores[int(in.A)] = append(stores[int(in.A)], storeSite{b, pc})
			case bytecode.RETURN, bytecode.IRETURN, bytecode.ATHROW:
				l.HasEscape = true
			}
		}
	}

	// Carried: written in the loop and live around the back edge.
	for s := range l.Written {
		if g.liveIn[l.Header][s] {
			l.Carried = append(l.Carried, s)
		}
	}
	sort.Ints(l.Carried)

	// Invariant: read but never written.
	for s := range l.Read {
		if !l.Written[s] {
			l.Invariant = append(l.Invariant, s)
		}
	}
	sort.Ints(l.Invariant)

	// LiveOut: written locals live at some loop exit.
	liveExit := map[int]bool{}
	for _, e := range l.Exits {
		for s := range g.liveIn[e] {
			liveExit[s] = true
		}
	}
	for s := range l.Written {
		if liveExit[s] {
			l.LiveOut = append(l.LiveOut, s)
		}
	}
	sort.Ints(l.LiveOut)

	// dominatesEnds: does block b execute on every iteration path?
	dominatesEnds := func(b int) bool {
		if inner := g.InnermostLoopOf(b); inner != l {
			return false // inside a nested loop: executes 0..n times
		}
		for _, e := range l.Ends {
			if !g.Dominates(b, e) {
				return false
			}
		}
		return true
	}

	// Inductors and resetable inductors.
	for _, s := range l.Carried {
		var incSites, otherSites []storeSite
		var step int64
		ok := true
		for _, site := range stores[s] {
			if st, isInc := incrementStep(code, site.pc, s); isInc {
				if dominatesEnds(site.block) {
					incSites = append(incSites, site)
					step = st
					continue
				}
			}
			otherSites = append(otherSites, site)
		}
		if len(incSites) != 1 {
			ok = false
		}
		if !ok {
			continue
		}
		if len(otherSites) == 0 {
			l.Inductors[s] = step
		} else {
			// Extra stores must all be conditional (off the dominating path).
			conditional := true
			for _, site := range otherSites {
				if dominatesEnds(site.block) {
					conditional = false
					break
				}
			}
			if conditional {
				l.Resetable[s] = step
			}
		}
	}

	// Reductions: carried locals whose every access is an associative
	// accumulation, excluding inductors.
	for _, s := range l.Carried {
		if _, isInd := l.Inductors[s]; isInd {
			continue
		}
		if _, isRes := l.Resetable[s]; isRes {
			continue
		}
		if op, ok := g.reductionOp(p, l, s); ok {
			l.Reductions[s] = op
		}
	}
}

// IncrementStep recognizes the two inductor increment shapes ending at pc
// for slot s (exported for the JIT, which must locate and elide the
// increment when applying the non-communicating inductor optimization).
func IncrementStep(code []bytecode.Ins, pc, s int) (int64, bool) {
	return incrementStep(code, pc, s)
}

// incrementStep recognizes the two increment shapes at pc for slot s:
// IINC s, c and the sequence LOAD s; CONST c; IADD|ISUB; STORE s (pc is the
// STORE or IINC). It returns the signed step.
func incrementStep(code []bytecode.Ins, pc int, s int) (int64, bool) {
	in := code[pc]
	if in.Op == bytecode.IINC && int(in.A) == s {
		return in.B, true
	}
	if in.Op != bytecode.STORE || int(in.A) != s || pc < 3 {
		return 0, false
	}
	ld, c, op := code[pc-3], code[pc-2], code[pc-1]
	if ld.Op != bytecode.LOAD || int(ld.A) != s || c.Op != bytecode.CONST {
		return 0, false
	}
	switch op.Op {
	case bytecode.IADD:
		return c.A, true
	case bytecode.ISUB:
		return -c.A, true
	}
	return 0, false
}

// reductionOps are the associative, commutative accumulation operators.
var reductionOps = map[bytecode.Op]bool{
	bytecode.IADD: true, bytecode.IMUL: true,
	bytecode.IMIN: true, bytecode.IMAX: true,
	bytecode.FADD: true, bytecode.FMUL: true,
	bytecode.FMIN: true, bytecode.FMAX: true,
}

// taint values for the reduction scan.
const (
	clean = iota
	loadedS
	updatedS
)

// reductionOp checks whether every access to slot s inside the loop is part
// of an `s = s op expr` accumulation with a single consistent operator. The
// scan is a per-block abstract interpretation of the operand stack tracking
// values derived from LOAD s.
func (g *Graph) reductionOp(p *bytecode.Program, l *Loop, s int) (bytecode.Op, bool) {
	var op bytecode.Op
	updates := 0
	for b := range l.Blocks {
		blk := g.Blocks[b]
		var stack []int
		for pc := blk.Start; pc < blk.End; pc++ {
			in := g.Method.Code[pc]
			switch {
			case in.Op == bytecode.LOAD && int(in.A) == s:
				stack = append(stack, loadedS)
			case in.Op == bytecode.IINC && int(in.A) == s:
				// A constant bump is an additive reduction update.
				if op != 0 && op != bytecode.IADD {
					return 0, false
				}
				op = bytecode.IADD
				updates++
			case in.Op == bytecode.STORE && int(in.A) == s:
				if len(stack) == 0 {
					return 0, false
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top != updatedS {
					return 0, false
				}
				updates++
			case reductionOps[in.Op]:
				if len(stack) < 2 {
					return 0, false
				}
				a, bb := stack[len(stack)-2], stack[len(stack)-1]
				stack = stack[:len(stack)-2]
				switch {
				case a == clean && bb == clean:
					stack = append(stack, clean)
				case (a == loadedS && bb == clean) || (a == clean && bb == loadedS):
					if op != 0 && op != in.Op {
						return 0, false
					}
					op = in.Op
					stack = append(stack, updatedS)
				default:
					return 0, false
				}
			default:
				pops, pushes := bytecode.StackEffect(p, in)
				if pops > len(stack) {
					// Block boundary mismatch (values flowed in); be safe.
					return 0, false
				}
				for i := 0; i < pops; i++ {
					if stack[len(stack)-1] != clean {
						return 0, false
					}
					stack = stack[:len(stack)-1]
				}
				for i := 0; i < pushes; i++ {
					stack = append(stack, clean)
				}
			}
		}
		for _, v := range stack {
			if v != clean {
				return 0, false // taint escapes the block
			}
		}
	}
	if updates == 0 || op == 0 {
		return 0, false
	}
	return op, true
}
