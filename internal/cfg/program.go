package cfg

import "jrpm/internal/bytecode"

// MaxLoopsPerMethod bounds the per-method loop index used in global loop
// ids communicated to the TEST hardware.
const MaxLoopsPerMethod = 256

// GlobalLoopID composes the loop id carried by sloop/eoi/eloop annotations.
func GlobalLoopID(methodID, loopIndex int) int64 {
	return int64(methodID)*MaxLoopsPerMethod + int64(loopIndex)
}

// SplitLoopID recovers (methodID, loopIndex) from a global loop id.
func SplitLoopID(id int64) (methodID, loopIndex int) {
	return int(id / MaxLoopsPerMethod), int(id % MaxLoopsPerMethod)
}

// ProgramInfo bundles the CFGs of every method with transitive behaviour
// flags derived from the call graph.
type ProgramInfo struct {
	Program *bytecode.Program
	Graphs  []*Graph

	// Per-method flags, transitive through calls.
	DoesIO     []bool
	Allocs     []bool
	HasMonitor []bool
}

// AnalyzeProgram builds the CFG for every method and computes transitive
// call-graph flags, then folds them into each loop's behaviour flags.
func AnalyzeProgram(p *bytecode.Program) *ProgramInfo {
	info := &ProgramInfo{Program: p}
	for _, m := range p.Methods {
		info.Graphs = append(info.Graphs, Build(p, m))
	}
	n := len(p.Methods)
	info.DoesIO = make([]bool, n)
	info.Allocs = make([]bool, n)
	info.HasMonitor = make([]bool, n)

	// Direct flags.
	callees := make([][]int, n)
	for i, m := range p.Methods {
		for _, in := range m.Code {
			switch in.Op {
			case bytecode.PRINT:
				info.DoesIO[i] = true
			case bytecode.NEW, bytecode.NEWARRAY:
				info.Allocs[i] = true
			case bytecode.MONITORENTER:
				info.HasMonitor[i] = true
			case bytecode.INVOKE:
				callees[i] = append(callees[i], int(in.A))
			}
		}
	}
	// Transitive closure over the call graph.
	changed := true
	for changed {
		changed = false
		for i := range p.Methods {
			for _, c := range callees[i] {
				if info.DoesIO[c] && !info.DoesIO[i] {
					info.DoesIO[i] = true
					changed = true
				}
				if info.Allocs[c] && !info.Allocs[i] {
					info.Allocs[i] = true
					changed = true
				}
				if info.HasMonitor[c] && !info.HasMonitor[i] {
					info.HasMonitor[i] = true
					changed = true
				}
			}
		}
	}
	// Fold into loop flags.
	for mi, g := range info.Graphs {
		_ = mi
		for _, l := range g.Loops {
			for b := range l.Blocks {
				blk := g.Blocks[b]
				for pc := blk.Start; pc < blk.End; pc++ {
					in := g.Method.Code[pc]
					switch in.Op {
					case bytecode.PRINT:
						l.HasIO = true
					case bytecode.NEW, bytecode.NEWARRAY:
						l.HasAlloc = true
					case bytecode.MONITORENTER:
						l.HasMonitor = true
					case bytecode.INVOKE:
						l.HasCall = true
						c := int(in.A)
						l.HasIO = l.HasIO || info.DoesIO[c]
						l.HasAlloc = l.HasAlloc || info.Allocs[c]
						l.HasMonitor = l.HasMonitor || info.HasMonitor[c]
					}
				}
			}
		}
	}
	return info
}

// TotalLoops counts loops across all methods (Table 3 column c).
func (info *ProgramInfo) TotalLoops() int {
	n := 0
	for _, g := range info.Graphs {
		n += len(g.Loops)
	}
	return n
}

// MaxLoopDepth returns the deepest loop nest in the program, counting call
// nesting only within single methods (Table 3 column d reports the lexical
// nest depth).
func (info *ProgramInfo) MaxLoopDepth() int {
	d := 0
	for _, g := range info.Graphs {
		if md := g.MaxDepth(); md > d {
			d = md
		}
	}
	return d
}
