package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"jrpm/internal/progen"
	"jrpm/internal/serve"
)

// stubBackend is a scriptable replica: fixed response bytes, optional
// latency, and a kill switch. The response encodes the replica name so
// tests can tell which shard served a request.
type stubBackend struct {
	name     string
	calls    atomic.Int64
	delay    time.Duration
	down     atomic.Bool
	degraded bool
	jobFail  bool
}

func (s *stubBackend) Name() string { return s.name }

func (s *stubBackend) Run(ctx context.Context, spec serve.JobSpec) ([]byte, serve.JobView, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, serve.JobView{}, ctx.Err()
		}
	}
	if s.down.Load() {
		return nil, serve.JobView{}, errors.New("stub: connection refused")
	}
	if s.jobFail {
		return nil, serve.JobView{Status: serve.StatusFailed},
			fmt.Errorf("%w: status failed: divide by zero", ErrJobFailed)
	}
	view := serve.JobView{Status: serve.StatusDone, Name: spec.Name, Degraded: s.degraded}
	return []byte("result:" + s.name + ":" + spec.Name), view, nil
}

// testSpec builds a valid routed submission from a progen program.
func testSpec(t testing.TB, seed int64) serve.JobSpec {
	t.Helper()
	src, err := progen.Asm(progen.Generate(seed, progen.QuickConfig()))
	if err != nil {
		t.Fatalf("seed %d: asm: %v", seed, err)
	}
	return serve.JobSpec{Name: fmt.Sprintf("prog-%d", seed), Source: src, Mode: "tls"}
}

// newTestRouter wires n stub replicas into a router and returns both.
func newTestRouter(t testing.TB, n int, cfg Config) (*Router, []*stubBackend) {
	t.Helper()
	stubs := make([]*stubBackend, n)
	backends := make([]Backend, n)
	for i := range stubs {
		stubs[i] = &stubBackend{name: fmt.Sprintf("replica-%d", i)}
		backends[i] = stubs[i]
	}
	return New(cfg, backends), stubs
}

// shardOrder resolves the spec's shard preference as stub indices.
func shardOrder(t testing.TB, rt *Router, spec serve.JobSpec) []int {
	t.Helper()
	key, err := rt.Key(spec)
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return rt.Ring().Order(key)
}

func TestRouterCacheHit(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	spec := testSpec(t, 1)

	first, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.Replica == "" {
		t.Fatalf("first call: %+v, want a dispatched miss", first)
	}
	second, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("second call missed the cache: %+v", second)
	}
	if !bytes.Equal(first.Wire, second.Wire) {
		t.Fatal("cache hit returned different bytes")
	}
	if total := stubs[0].calls.Load() + stubs[1].calls.Load(); total != 1 {
		t.Fatalf("replicas saw %d calls, want 1", total)
	}
	if v := rt.Metrics().Counter("jrpm_fleet_cache_hits_total").Value(); v != 1 {
		t.Fatalf("hit metric = %d, want 1", v)
	}
}

func TestRouterDegradedResultNotCached(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	for _, s := range stubs {
		s.degraded = true
	}
	spec := testSpec(t, 2)
	for i := 0; i < 2; i++ {
		out, err := rt.Do(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if out.CacheHit {
			t.Fatalf("call %d: degraded result served from cache", i)
		}
	}
	if total := stubs[0].calls.Load() + stubs[1].calls.Load(); total != 2 {
		t.Fatalf("replicas saw %d calls, want 2 (degraded results must not be memoized)", total)
	}
}

func TestRouterTraceBypassesCache(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	spec := testSpec(t, 3)
	spec.Trace = true
	for i := 0; i < 2; i++ {
		if out, err := rt.Do(context.Background(), spec); err != nil {
			t.Fatal(err)
		} else if out.CacheHit || out.Coalesced {
			t.Fatalf("call %d: trace job was cached/coalesced: %+v", i, out)
		}
	}
	if total := stubs[0].calls.Load() + stubs[1].calls.Load(); total != 2 {
		t.Fatalf("replicas saw %d calls, want 2", total)
	}
}

func TestRouterHedgeFiresOnlyPastThreshold(t *testing.T) {
	spec := testSpec(t, 4)

	// Owner slower than the hedge threshold: the hedge fires and the next
	// shard's answer wins.
	rt, stubs := newTestRouter(t, 2, Config{HedgeAfter: 20 * time.Millisecond})
	order := shardOrder(t, rt, spec)
	stubs[order[0]].delay = 300 * time.Millisecond
	out, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Replica != stubs[order[1]].name {
		t.Fatalf("winner %q, want the hedge target %q", out.Replica, stubs[order[1]].name)
	}
	if v := rt.Metrics().Counter("jrpm_fleet_hedges_total").Value(); v != 1 {
		t.Fatalf("hedges = %d, want 1", v)
	}

	// Owner faster than the threshold: no hedge, the owner serves.
	rt2, stubs2 := newTestRouter(t, 2, Config{HedgeAfter: 500 * time.Millisecond})
	order2 := shardOrder(t, rt2, spec)
	stubs2[order2[0]].delay = 10 * time.Millisecond
	out2, err := rt2.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Replica != stubs2[order2[0]].name {
		t.Fatalf("winner %q, want the owner %q", out2.Replica, stubs2[order2[0]].name)
	}
	if v := rt2.Metrics().Counter("jrpm_fleet_hedges_total").Value(); v != 0 {
		t.Fatalf("hedges = %d below threshold, want 0", v)
	}
	if c := stubs2[order2[1]].calls.Load(); c != 0 {
		t.Fatalf("hedge target called %d times below threshold", c)
	}

	// Hedging disabled entirely: a slow owner still serves alone.
	rt3, stubs3 := newTestRouter(t, 2, Config{})
	order3 := shardOrder(t, rt3, spec)
	stubs3[order3[0]].delay = 30 * time.Millisecond
	if _, err := rt3.Do(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if c := stubs3[order3[1]].calls.Load(); c != 0 {
		t.Fatalf("hedge fired with hedging disabled (%d calls)", c)
	}
}

func TestRouterFailoverWithoutCachePoisoning(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	spec := testSpec(t, 5)
	order := shardOrder(t, rt, spec)
	owner, backup := stubs[order[0]], stubs[order[1]]

	owner.down.Store(true)
	out, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("failover dispatch failed: %v", err)
	}
	if out.Replica != backup.name {
		t.Fatalf("served by %q, want failover to %q", out.Replica, backup.name)
	}
	if v := rt.Metrics().Counter("jrpm_fleet_failovers_total").Value(); v != 1 {
		t.Fatalf("failovers = %d, want 1", v)
	}

	// The owner revives. The cached entry must be the backup's good result,
	// served as a hit — not a stale record of the failure, and not a
	// re-dispatch to the flaky owner.
	owner.down.Store(false)
	again, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !bytes.Equal(again.Wire, out.Wire) {
		t.Fatalf("post-revival call: hit=%v, bytes equal=%v", again.CacheHit, bytes.Equal(again.Wire, out.Wire))
	}

	// Shard health was recorded on the right breakers.
	bs := rt.Breakers()
	if bs[order[0]].Failures != 1 {
		t.Fatalf("owner breaker failures = %d, want 1", bs[order[0]].Failures)
	}
	if bs[order[1]].Successes != 1 || bs[order[1]].Failures != 0 {
		t.Fatalf("backup breaker %+v, want one clean success", bs[order[1]])
	}
}

func TestRouterBreakersIndependentPerShard(t *testing.T) {
	// Trip after one failure; long backoff so the circuit stays open for
	// the whole test. Caching off so every Do dispatches.
	rt, stubs := newTestRouter(t, 2, Config{
		CacheBytes: -1,
		Breaker:    serve.BreakerConfig{Trip: 1, Backoff: 100, MaxBackoff: 100},
	})
	spec := testSpec(t, 6)
	order := shardOrder(t, rt, spec)
	owner, backup := stubs[order[0]], stubs[order[1]]

	owner.down.Store(true)
	if _, err := rt.Do(context.Background(), spec); err != nil {
		t.Fatalf("first dispatch should fail over: %v", err)
	}
	bs := rt.Breakers()
	if !bs[order[0]].Open {
		t.Fatal("owner breaker did not open after its trip threshold")
	}
	if bs[order[1]].Open {
		t.Fatal("backup breaker opened although the backup is healthy")
	}

	// With the owner's circuit open, its shard is shed without a dispatch
	// attempt: the owner sees no further traffic even though it is the
	// ring owner for this key.
	ownerCalls := owner.calls.Load()
	out, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Replica != backup.name {
		t.Fatalf("served by %q while owner circuit open, want %q", out.Replica, backup.name)
	}
	if owner.calls.Load() != ownerCalls {
		t.Fatal("open circuit still dispatched to the owner")
	}
	if v := rt.Metrics().Counter("jrpm_fleet_breaker_shed_total").Value(); v == 0 {
		t.Fatal("no shed recorded for the open shard")
	}
}

func TestRouterDeterministicJobFailureDoesNotFailOver(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	spec := testSpec(t, 7)
	order := shardOrder(t, rt, spec)
	stubs[order[0]].jobFail = true

	_, err := rt.Do(context.Background(), spec)
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("got %v, want ErrJobFailed", err)
	}
	if c := stubs[order[1]].calls.Load(); c != 0 {
		t.Fatalf("deterministic program failure failed over (%d calls to backup)", c)
	}
	// The shard did its work; its breaker must not count the program's
	// deterministic failure against the replica.
	if bs := rt.Breakers(); bs[order[0]].Failures != 0 || bs[order[0]].Open {
		t.Fatalf("breaker charged the shard for a program failure: %+v", bs[order[0]])
	}
	if v := rt.Metrics().Counter("jrpm_fleet_failovers_total").Value(); v != 0 {
		t.Fatalf("failovers = %d, want 0", v)
	}
}

func TestRouterAllShardsShedFailsOpen(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{
		CacheBytes: -1,
		Breaker:    serve.BreakerConfig{Trip: 1, Backoff: 100, MaxBackoff: 100},
	})
	spec := testSpec(t, 8)
	for _, s := range stubs {
		s.down.Store(true)
	}
	// First call fails on every shard and opens both breakers.
	if _, err := rt.Do(context.Background(), spec); err == nil {
		t.Fatal("dispatch with every replica down succeeded")
	}
	// Every circuit is open, but the fleet fails open instead of rejecting:
	// forced probes reach the (still-down) replicas and the replica error —
	// not ErrNoReplicas — comes back.
	calls := stubs[0].calls.Load() + stubs[1].calls.Load()
	_, err := rt.Do(context.Background(), spec)
	if err == nil || errors.Is(err, ErrNoReplicas) {
		t.Fatalf("got %v, want the probed replica's own error", err)
	}
	if n := stubs[0].calls.Load() + stubs[1].calls.Load(); n <= calls {
		t.Fatal("all-shed dispatch never probed a replica")
	}
	if v := rt.Metrics().Counter("jrpm_fleet_forced_probes_total").Value(); v == 0 {
		t.Fatal("no forced probe recorded for the all-shed dispatch")
	}

	// Revive the replicas: the very next submission's forced probe must
	// succeed and reclose the probed shard's circuit — recovery costs one
	// request, not a backoff schedule.
	for _, s := range stubs {
		s.down.Store(false)
	}
	out, err := rt.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("forced probe after revival failed: %v", err)
	}
	if out.Replica == "" {
		t.Fatal("revived dispatch served from nowhere")
	}
	order := shardOrder(t, rt, spec)
	if bs := rt.Breakers(); bs[order[0]].Open {
		t.Fatalf("successful forced probe left the preferred breaker open: %+v", bs[order[0]])
	}
}

func TestRouterCallerTimeout(t *testing.T) {
	rt, stubs := newTestRouter(t, 2, Config{})
	spec := testSpec(t, 9)
	for _, s := range stubs {
		s.delay = 200 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := rt.Do(ctx, spec); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context deadline", err)
	}
}
