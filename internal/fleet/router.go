// Package fleet scales jrpm-serve from a single node to a sharded fleet
// without touching the pipeline underneath: a consistent-hash router spreads
// submissions over N replicas, a byte-budgeted LRU memoizes results by
// content address (the pipeline is deterministic, so (program, options) is
// a perfect key), singleflight coalescing collapses identical in-flight
// jobs, per-shard circuit breakers shed traffic to dead replicas, and
// hedged retries bound tail latency when the owning shard is slow.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jrpm/internal/cache"
	"jrpm/internal/codec"
	"jrpm/internal/obs"
	"jrpm/internal/serve"
)

// Config parameterizes a Router. Zero values select the documented
// defaults.
type Config struct {
	// CacheBytes budgets the result cache (default cache.DefaultMaxBytes;
	// negative disables caching entirely).
	CacheBytes int64
	// VNodes is the virtual-node count per replica on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// HedgeAfter launches a hedge attempt on the next preferred replica
	// when the current attempt has not finished within this duration —
	// deadline risk, in submissions-per-second terms. 0 disables hedging.
	HedgeAfter time.Duration
	// Breaker configures the per-shard circuit breakers (serve's
	// submission-counted schedule; defaults from serve.DefaultBreakerConfig).
	Breaker serve.BreakerConfig
	// Serve mirrors the replicas' serve.Config. The router derives each
	// submission's effective core.Options from it for the cache key, so it
	// must match what the replicas run — a drift would make the key
	// describe a different simulation than the one memoized.
	Serve serve.Config
}

// Outcome is one routed submission's result.
type Outcome struct {
	// Wire is the canonical codec encoding of the full core.Result.
	Wire []byte
	// Key is the submission's content address (program hash + options
	// digest).
	Key string
	// CacheHit reports the result came from the router cache — no replica
	// was touched.
	CacheHit bool
	// Coalesced reports this caller joined another caller's in-flight run.
	// The view and replica belong to the initiating caller and are not
	// populated here.
	Coalesced bool
	// Replica names the replica that executed the job ("" for cache hits
	// and coalesced joiners).
	Replica string
	// View is the terminal job view from the executing replica (zero for
	// cache hits and coalesced joiners).
	View serve.JobView
}

// Routing errors.
var (
	// ErrNoReplicas rejects a submission because the fleet has no candidate
	// shards at all. Open breakers alone never produce it: an all-shed
	// fleet fails open with a forced probe on the preferred shard instead.
	ErrNoReplicas = errors.New("fleet: no replica available")
)

// Router is the fleet front door. Create with New; Do routes one
// submission.
type Router struct {
	cfg      Config
	reg      *obs.Registry
	ring     *Ring
	backends []Backend
	breakers []*serve.Breaker
	shards   []shardHealth
	cache    *cache.LRU
	group    *cache.Group

	jobs, hedges, failovers, migrations, shed, forced, errs *obs.Counter
}

// shardHealth tracks per-shard dispatch liveness for /replicas and /readyz.
type shardHealth struct {
	mu           sync.Mutex
	lastDispatch time.Time
	lastResult   time.Time
	lastErr      string
}

func (h *shardHealth) noteDispatch() {
	h.mu.Lock()
	h.lastDispatch = time.Now()
	h.mu.Unlock()
}

func (h *shardHealth) noteResult(err error) {
	h.mu.Lock()
	h.lastResult = time.Now()
	if err != nil {
		h.lastErr = err.Error()
	} else {
		h.lastErr = ""
	}
	h.mu.Unlock()
}

func (h *shardHealth) snapshot() (dispatch, result time.Time, lastErr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastDispatch, h.lastResult, h.lastErr
}

// New builds a router over the given replicas. Replica order fixes shard
// indices; ring positions depend only on replica names.
func New(cfg Config, backends []Backend) *Router {
	reg := obs.NewRegistry()
	names := make([]string, len(backends))
	breakers := make([]*serve.Breaker, len(backends))
	for i, b := range backends {
		names[i] = b.Name()
		breakers[i] = serve.NewBreaker(b.Name(), cfg.Breaker)
	}
	var lru *cache.LRU
	if cfg.CacheBytes >= 0 {
		lru = cache.NewLRU(cfg.CacheBytes, reg)
	}
	rt := &Router{
		cfg:      cfg,
		reg:      reg,
		ring:     NewRing(names, cfg.VNodes),
		backends: backends,
		breakers: breakers,
		shards:   make([]shardHealth, len(backends)),
		cache:    lru,
		group:    cache.NewGroup(reg),

		jobs:       reg.Counter("jrpm_fleet_jobs_total"),
		hedges:     reg.Counter("jrpm_fleet_hedges_total"),
		failovers:  reg.Counter("jrpm_fleet_failovers_total"),
		migrations: reg.Counter("jrpm_fleet_migrations_total"),
		shed:       reg.Counter("jrpm_fleet_breaker_shed_total"),
		forced:     reg.Counter("jrpm_fleet_forced_probes_total"),
		errs:       reg.Counter("jrpm_fleet_errors_total"),
	}
	reg.Gauge("jrpm_fleet_replicas").Set(float64(len(backends)))
	return rt
}

// Metrics exposes the router's registry (live; safe for concurrent reads).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Breakers snapshots the per-shard circuit breakers in shard order.
func (rt *Router) Breakers() []serve.BreakerStats {
	out := make([]serve.BreakerStats, len(rt.breakers))
	for i, b := range rt.breakers {
		out[i] = b.Stats()
	}
	return out
}

// Ring exposes the hash ring (immutable).
func (rt *Router) Ring() *Ring { return rt.ring }

// Key computes the submission's content address: the program hash combined
// with the digest of the exact core.Options a replica would run the spec
// with at its starting rung. Auto-mode and pinned-tls submissions share a
// key deliberately — both start at the TLS rung with identical options, and
// only undegraded results (which are rung-identical) enter the cache.
func (rt *Router) Key(spec serve.JobSpec) (string, error) {
	key, _, err := rt.key(spec)
	return key, err
}

func (rt *Router) key(spec serve.JobSpec) (key string, cacheable bool, err error) {
	bp, _, err := serve.BuildProgram(spec)
	if err != nil {
		return "", false, err
	}
	first, _, err := serve.ParseMode(spec.Mode)
	if err != nil {
		return "", false, err
	}
	opts, err := rt.cfg.Serve.OptionsForSpec(spec, first)
	if err != nil {
		return "", false, err
	}
	// Trace jobs carry a flight-recorder ring that does not travel in the
	// wire result, so a cached answer would silently lose the trace: bypass.
	return codec.CacheKey(codec.ProgramHash(bp), codec.EncodeOptions(opts)), !spec.Trace, nil
}

// Do routes one submission: cache lookup, then singleflight coalescing,
// then consistent-hash dispatch with per-shard breakers, hedging and
// failover. ctx bounds this caller's wait; a coalesced run shared with
// other callers is not cancelled when one caller gives up.
func (rt *Router) Do(ctx context.Context, spec serve.JobSpec) (Outcome, error) {
	rt.jobs.Inc()
	key, cacheable, err := rt.key(spec)
	if err != nil {
		rt.errs.Inc()
		return Outcome{}, err
	}
	cacheable = cacheable && rt.cache != nil
	if cacheable {
		if wire, ok := rt.cache.Get(key); ok {
			return Outcome{Wire: wire, Key: key, CacheHit: true}, nil
		}
	} else {
		// Uncacheable jobs are also not coalesced: each caller needs its own
		// server-side job (e.g. its own trace ring).
		wire, view, replica, _, derr := rt.dispatch(ctx, spec, key)
		if derr != nil {
			rt.errs.Inc()
			return Outcome{Key: key, View: view}, derr
		}
		return Outcome{Wire: wire, Key: key, Replica: replica, View: view}, nil
	}

	// execView/execReplica are written by this call's flight function and
	// read only when this caller was the initiator and the flight finished
	// (err == nil && !shared), which the group's done-channel ordering makes
	// safe.
	var execView serve.JobView
	var execReplica string
	wire, shared, err := rt.group.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		w, view, replica, migrated, derr := rt.dispatch(fctx, spec, key)
		if derr != nil {
			return nil, derr
		}
		// Only undegraded done results are memoized: a degraded outcome is a
		// deadline artifact of this submission, not a property of
		// (program, options) — caching it would poison every future hit. A
		// migrated job must additionally have resumed its checkpoint: a
		// migrated-degraded restart is double timing-noise, never cached.
		if view.Status == serve.StatusDone && !view.Degraded && (!migrated || view.Resumed) {
			rt.cache.Put(key, w)
		}
		execView = view
		execReplica = replica
		return w, nil
	})
	if err != nil {
		rt.errs.Inc()
		return Outcome{Key: key, Coalesced: shared}, err
	}
	out := Outcome{Wire: wire, Key: key, Coalesced: shared}
	if !shared {
		out.View = execView
		out.Replica = execReplica
	}
	return out, nil
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	wire []byte
	view serve.JobView
	err  error
	idx  int
}

// dispatch runs the spec on the key's preferred shard, hedging to the next
// shard past the deadline-risk threshold and failing over on error; when
// every candidate is shed it fails open with forced probes in preference
// order rather than rejecting the submission. It returns the first
// successful attempt; losers are cancelled and their breaker outcomes
// recorded neutrally. migrated reports that some attempt was interrupted
// (e.g. a draining replica) and the job moved shards — possibly resuming
// from the interrupted replica's checkpoint.
func (rt *Router) dispatch(ctx context.Context, spec serve.JobSpec, key string) (_ []byte, _ serve.JobView, _ string, migrated bool, _ error) {
	order := rt.ring.Order(key)
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()

	resCh := make(chan attemptResult, len(order))
	inflight, next := 0, 0
	var skipped []int
	// start dispatches one attempt to shard i. The spec is passed by value:
	// a later migration rewrites the local copy's Checkpoint without racing
	// attempts already in flight.
	start := func(i int) {
		rt.reg.Counter(fmt.Sprintf("jrpm_fleet_dispatch_total{replica=%q}", rt.backends[i].Name())).Inc()
		rt.shards[i].noteDispatch()
		inflight++
		go func(i int, spec serve.JobSpec) {
			w, v, err := rt.backends[i].Run(dctx, spec)
			resCh <- attemptResult{wire: w, view: v, err: err, idx: i}
		}(i, spec)
	}
	// launch starts the next breaker-admitted candidate, remembering shed
	// shards; it reports whether an attempt actually started.
	launch := func() bool {
		for next < len(order) {
			i := order[next]
			next++
			if !rt.breakers[i].Admit() {
				rt.shed.Inc()
				skipped = append(skipped, i)
				continue
			}
			start(i)
			return true
		}
		return false
	}
	// forceLaunch fails open when every remaining candidate was shed: the
	// most-preferred shed shard gets a forced probe, breaker notwithstanding.
	// A fleet whose breakers are all open is indistinguishable from one whose
	// replicas all just recovered — brownout (one probe attempt) beats
	// blackout (rejecting the submission outright). The attempt's outcome
	// feeds the shard's breaker like any probe: success recloses the circuit.
	forceLaunch := func() bool {
		if len(skipped) == 0 {
			return false
		}
		i := skipped[0]
		skipped = skipped[1:]
		rt.forced.Inc()
		start(i)
		return true
	}
	// reap drains n straggler attempts in the background after dispatch
	// returns (dcancel interrupts them), recording each as a neutral
	// cancellation so no shard breaker wedges behind an unresolved probe.
	reap := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for k := 0; k < n; k++ {
				r := <-resCh
				rt.breakers[r.idx].OnResult(false, true)
			}
		}()
	}

	if !launch() && !forceLaunch() {
		return nil, serve.JobView{}, "", false, fmt.Errorf("%w: %d shard(s)", ErrNoReplicas, len(order))
	}
	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		hedge = time.After(rt.cfg.HedgeAfter)
	}
	var lastErr error
	for inflight > 0 {
		select {
		case r := <-resCh:
			inflight--
			name := rt.backends[r.idx].Name()
			rt.shards[r.idx].noteResult(r.err)
			if r.err == nil {
				rt.breakers[r.idx].OnResult(true, false)
				reap(inflight)
				return r.wire, r.view, name, migrated, nil
			}
			if errors.Is(r.err, ErrJobFailed) {
				// The shard worked; the program failed deterministically.
				// Every replica would reproduce it, so failing over would
				// just burn capacity — and the shard stays certified.
				rt.breakers[r.idx].OnResult(true, false)
				reap(inflight)
				return nil, r.view, name, migrated, r.err
			}
			if errors.Is(r.err, ErrInterrupted) {
				// The replica drained under us (shutdown, operator cancel):
				// neutral for its breaker — nothing is wrong with the shard's
				// capacity to simulate. Carry its last checkpoint to the next
				// shard so the job continues mid-simulation instead of
				// restarting.
				rt.breakers[r.idx].OnResult(false, true)
				migrated = true
				if f, ok := rt.backends[r.idx].(CheckpointFetcher); ok && r.view.ID != 0 {
					if ckpt, cerr := f.Checkpoint(ctx, r.view.ID); cerr == nil && len(ckpt) > 0 {
						spec.Checkpoint = ckpt
					}
				}
				lastErr = fmt.Errorf("fleet: replica %s: %w", name, r.err)
				if ctx.Err() == nil && (launch() || forceLaunch()) {
					rt.migrations.Inc()
				}
				continue
			}
			rt.breakers[r.idx].OnResult(false, ctx.Err() != nil)
			lastErr = fmt.Errorf("fleet: replica %s: %w", name, r.err)
			if ctx.Err() == nil && (launch() || forceLaunch()) {
				rt.failovers.Inc()
			}
		case <-hedge:
			hedge = nil
			if launch() {
				rt.hedges.Inc()
			}
		case <-ctx.Done():
			reap(inflight)
			return nil, serve.JobView{}, "", migrated, context.Cause(ctx)
		}
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return nil, serve.JobView{}, "", migrated, lastErr
}
