// Package fleet scales jrpm-serve from a single node to a sharded fleet
// without touching the pipeline underneath: a consistent-hash router spreads
// submissions over N replicas, a byte-budgeted LRU memoizes results by
// content address (the pipeline is deterministic, so (program, options) is
// a perfect key), singleflight coalescing collapses identical in-flight
// jobs, per-shard circuit breakers shed traffic to dead replicas, and
// hedged retries bound tail latency when the owning shard is slow.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"jrpm/internal/cache"
	"jrpm/internal/codec"
	"jrpm/internal/obs"
	"jrpm/internal/serve"
)

// Config parameterizes a Router. Zero values select the documented
// defaults.
type Config struct {
	// CacheBytes budgets the result cache (default cache.DefaultMaxBytes;
	// negative disables caching entirely).
	CacheBytes int64
	// VNodes is the virtual-node count per replica on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// HedgeAfter launches a hedge attempt on the next preferred replica
	// when the current attempt has not finished within this duration —
	// deadline risk, in submissions-per-second terms. 0 disables hedging.
	HedgeAfter time.Duration
	// Breaker configures the per-shard circuit breakers (serve's
	// submission-counted schedule; defaults from serve.DefaultBreakerConfig).
	Breaker serve.BreakerConfig
	// Serve mirrors the replicas' serve.Config. The router derives each
	// submission's effective core.Options from it for the cache key, so it
	// must match what the replicas run — a drift would make the key
	// describe a different simulation than the one memoized.
	Serve serve.Config
}

// Outcome is one routed submission's result.
type Outcome struct {
	// Wire is the canonical codec encoding of the full core.Result.
	Wire []byte
	// Key is the submission's content address (program hash + options
	// digest).
	Key string
	// CacheHit reports the result came from the router cache — no replica
	// was touched.
	CacheHit bool
	// Coalesced reports this caller joined another caller's in-flight run.
	// The view and replica belong to the initiating caller and are not
	// populated here.
	Coalesced bool
	// Replica names the replica that executed the job ("" for cache hits
	// and coalesced joiners).
	Replica string
	// View is the terminal job view from the executing replica (zero for
	// cache hits and coalesced joiners).
	View serve.JobView
}

// Routing errors.
var (
	// ErrNoReplicas sheds a submission because every candidate shard was
	// shed by its breaker (or the fleet is empty).
	ErrNoReplicas = errors.New("fleet: no replica available")
)

// Router is the fleet front door. Create with New; Do routes one
// submission.
type Router struct {
	cfg      Config
	reg      *obs.Registry
	ring     *Ring
	backends []Backend
	breakers []*serve.Breaker
	cache    *cache.LRU
	group    *cache.Group

	jobs, hedges, failovers, shed, errs *obs.Counter
}

// New builds a router over the given replicas. Replica order fixes shard
// indices; ring positions depend only on replica names.
func New(cfg Config, backends []Backend) *Router {
	reg := obs.NewRegistry()
	names := make([]string, len(backends))
	breakers := make([]*serve.Breaker, len(backends))
	for i, b := range backends {
		names[i] = b.Name()
		breakers[i] = serve.NewBreaker(b.Name(), cfg.Breaker)
	}
	var lru *cache.LRU
	if cfg.CacheBytes >= 0 {
		lru = cache.NewLRU(cfg.CacheBytes, reg)
	}
	rt := &Router{
		cfg:      cfg,
		reg:      reg,
		ring:     NewRing(names, cfg.VNodes),
		backends: backends,
		breakers: breakers,
		cache:    lru,
		group:    cache.NewGroup(reg),

		jobs:      reg.Counter("jrpm_fleet_jobs_total"),
		hedges:    reg.Counter("jrpm_fleet_hedges_total"),
		failovers: reg.Counter("jrpm_fleet_failovers_total"),
		shed:      reg.Counter("jrpm_fleet_breaker_shed_total"),
		errs:      reg.Counter("jrpm_fleet_errors_total"),
	}
	reg.Gauge("jrpm_fleet_replicas").Set(float64(len(backends)))
	return rt
}

// Metrics exposes the router's registry (live; safe for concurrent reads).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Breakers snapshots the per-shard circuit breakers in shard order.
func (rt *Router) Breakers() []serve.BreakerStats {
	out := make([]serve.BreakerStats, len(rt.breakers))
	for i, b := range rt.breakers {
		out[i] = b.Stats()
	}
	return out
}

// Ring exposes the hash ring (immutable).
func (rt *Router) Ring() *Ring { return rt.ring }

// Key computes the submission's content address: the program hash combined
// with the digest of the exact core.Options a replica would run the spec
// with at its starting rung. Auto-mode and pinned-tls submissions share a
// key deliberately — both start at the TLS rung with identical options, and
// only undegraded results (which are rung-identical) enter the cache.
func (rt *Router) Key(spec serve.JobSpec) (string, error) {
	key, _, err := rt.key(spec)
	return key, err
}

func (rt *Router) key(spec serve.JobSpec) (key string, cacheable bool, err error) {
	bp, _, err := serve.BuildProgram(spec)
	if err != nil {
		return "", false, err
	}
	first, _, err := serve.ParseMode(spec.Mode)
	if err != nil {
		return "", false, err
	}
	opts, err := rt.cfg.Serve.OptionsForSpec(spec, first)
	if err != nil {
		return "", false, err
	}
	// Trace jobs carry a flight-recorder ring that does not travel in the
	// wire result, so a cached answer would silently lose the trace: bypass.
	return codec.CacheKey(codec.ProgramHash(bp), codec.EncodeOptions(opts)), !spec.Trace, nil
}

// Do routes one submission: cache lookup, then singleflight coalescing,
// then consistent-hash dispatch with per-shard breakers, hedging and
// failover. ctx bounds this caller's wait; a coalesced run shared with
// other callers is not cancelled when one caller gives up.
func (rt *Router) Do(ctx context.Context, spec serve.JobSpec) (Outcome, error) {
	rt.jobs.Inc()
	key, cacheable, err := rt.key(spec)
	if err != nil {
		rt.errs.Inc()
		return Outcome{}, err
	}
	cacheable = cacheable && rt.cache != nil
	if cacheable {
		if wire, ok := rt.cache.Get(key); ok {
			return Outcome{Wire: wire, Key: key, CacheHit: true}, nil
		}
	} else {
		// Uncacheable jobs are also not coalesced: each caller needs its own
		// server-side job (e.g. its own trace ring).
		wire, view, replica, derr := rt.dispatch(ctx, spec, key)
		if derr != nil {
			rt.errs.Inc()
			return Outcome{Key: key, View: view}, derr
		}
		return Outcome{Wire: wire, Key: key, Replica: replica, View: view}, nil
	}

	// execView/execReplica are written by this call's flight function and
	// read only when this caller was the initiator and the flight finished
	// (err == nil && !shared), which the group's done-channel ordering makes
	// safe.
	var execView serve.JobView
	var execReplica string
	wire, shared, err := rt.group.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		w, view, replica, derr := rt.dispatch(fctx, spec, key)
		if derr != nil {
			return nil, derr
		}
		// Only undegraded done results are memoized: a degraded outcome is a
		// deadline artifact of this submission, not a property of
		// (program, options) — caching it would poison every future hit.
		if view.Status == serve.StatusDone && !view.Degraded {
			rt.cache.Put(key, w)
		}
		execView = view
		execReplica = replica
		return w, nil
	})
	if err != nil {
		rt.errs.Inc()
		return Outcome{Key: key, Coalesced: shared}, err
	}
	out := Outcome{Wire: wire, Key: key, Coalesced: shared}
	if !shared {
		out.View = execView
		out.Replica = execReplica
	}
	return out, nil
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	wire []byte
	view serve.JobView
	err  error
	idx  int
}

// dispatch runs the spec on the key's preferred shard, hedging to the next
// shard past the deadline-risk threshold and failing over on error. It
// returns the first successful attempt; losers are cancelled and their
// breaker outcomes recorded neutrally.
func (rt *Router) dispatch(ctx context.Context, spec serve.JobSpec, key string) ([]byte, serve.JobView, string, error) {
	order := rt.ring.Order(key)
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()

	resCh := make(chan attemptResult, len(order))
	inflight, next := 0, 0
	// launch starts the next breaker-admitted candidate, skipping shed
	// shards; it reports whether an attempt actually started.
	launch := func() bool {
		for next < len(order) {
			i := order[next]
			next++
			if !rt.breakers[i].Admit() {
				rt.shed.Inc()
				continue
			}
			rt.reg.Counter(fmt.Sprintf("jrpm_fleet_dispatch_total{replica=%q}", rt.backends[i].Name())).Inc()
			inflight++
			go func(i int) {
				w, v, err := rt.backends[i].Run(dctx, spec)
				resCh <- attemptResult{wire: w, view: v, err: err, idx: i}
			}(i)
			return true
		}
		return false
	}
	// reap drains n straggler attempts in the background after dispatch
	// returns (dcancel interrupts them), recording each as a neutral
	// cancellation so no shard breaker wedges behind an unresolved probe.
	reap := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for k := 0; k < n; k++ {
				r := <-resCh
				rt.breakers[r.idx].OnResult(false, true)
			}
		}()
	}

	if !launch() {
		return nil, serve.JobView{}, "", fmt.Errorf("%w: %d shard(s), all shed", ErrNoReplicas, len(order))
	}
	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		hedge = time.After(rt.cfg.HedgeAfter)
	}
	var lastErr error
	for inflight > 0 {
		select {
		case r := <-resCh:
			inflight--
			name := rt.backends[r.idx].Name()
			if r.err == nil {
				rt.breakers[r.idx].OnResult(true, false)
				reap(inflight)
				return r.wire, r.view, name, nil
			}
			if errors.Is(r.err, ErrJobFailed) {
				// The shard worked; the program failed deterministically.
				// Every replica would reproduce it, so failing over would
				// just burn capacity — and the shard stays certified.
				rt.breakers[r.idx].OnResult(true, false)
				reap(inflight)
				return nil, r.view, name, r.err
			}
			rt.breakers[r.idx].OnResult(false, ctx.Err() != nil)
			lastErr = fmt.Errorf("fleet: replica %s: %w", name, r.err)
			if ctx.Err() == nil && launch() {
				rt.failovers.Inc()
			}
		case <-hedge:
			hedge = nil
			if launch() {
				rt.hedges.Inc()
			}
		case <-ctx.Done():
			reap(inflight)
			return nil, serve.JobView{}, "", context.Cause(ctx)
		}
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return nil, serve.JobView{}, "", lastErr
}
