package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"jrpm/internal/serve"
)

// Backend is one jrpm-serve replica as the router sees it: submit a job,
// block until it is terminal, and return the canonical codec encoding of
// its full result together with the terminal JobView. A non-done terminal
// status is an error.
type Backend interface {
	// Name identifies the replica (ring position, metrics label).
	Name() string
	// Run executes the spec to completion. ctx bounds the whole call.
	Run(ctx context.Context, spec serve.JobSpec) ([]byte, serve.JobView, error)
}

// ErrJobFailed reports a replica job that reached a terminal status other
// than done; the view travels in the error text.
var ErrJobFailed = errors.New("fleet: job did not complete")

// ErrInterrupted reports a replica job that was cancelled by the replica —
// typically a shutdown drain — rather than failing deterministically. Unlike
// ErrJobFailed it is retryable: the router fetches the replica's last
// checkpoint and migrates the job to the next shard in the ring.
var ErrInterrupted = errors.New("fleet: job interrupted on replica")

// CheckpointFetcher is the optional backend capability fleet migration needs:
// fetch a job's latest safepoint checkpoint envelope. Both built-in backends
// implement it; a backend without it migrates by restarting from the program.
type CheckpointFetcher interface {
	Checkpoint(ctx context.Context, id int64) ([]byte, error)
}

// LocalBackend adapts an in-process serve.Server — the form the
// conformance and chaos suites drive so replica behaviour is exercised
// without socket noise.
type LocalBackend struct {
	ReplicaName string
	Server      *serve.Server
}

// Name identifies the replica.
func (b *LocalBackend) Name() string { return b.ReplicaName }

// Run submits, waits for a terminal status, and fetches the result bytes.
func (b *LocalBackend) Run(ctx context.Context, spec serve.JobSpec) ([]byte, serve.JobView, error) {
	view, err := b.Server.Submit(spec)
	if err != nil {
		return nil, serve.JobView{}, err
	}
	view, err = b.Server.Wait(ctx, view.ID)
	if err != nil {
		return nil, view, err
	}
	if view.Status != serve.StatusDone {
		if ctx.Err() != nil {
			return nil, view, context.Cause(ctx)
		}
		if view.Status == serve.StatusCancelled {
			return nil, view, fmt.Errorf("%w: %s", ErrInterrupted, view.Error)
		}
		return nil, view, fmt.Errorf("%w: status %s: %s", ErrJobFailed, view.Status, view.Error)
	}
	wire, err := b.Server.ResultBytes(view.ID)
	if err != nil {
		return nil, view, err
	}
	return wire, view, nil
}

// Checkpoint fetches the job's latest safepoint checkpoint from the embedded
// server.
func (b *LocalBackend) Checkpoint(_ context.Context, id int64) ([]byte, error) {
	return b.Server.Checkpoint(id)
}

// HTTPBackend drives a remote jrpm-serve replica over its HTTP surface:
// POST /jobs, GET /jobs/{id}?wait=..., GET /jobs/{id}/result.
type HTTPBackend struct {
	ReplicaName string
	BaseURL     string // e.g. http://127.0.0.1:8081
	Client      *http.Client
}

// Name identifies the replica.
func (b *HTTPBackend) Name() string { return b.ReplicaName }

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// Run submits the spec, polls with server-side waits until the job is
// terminal, and fetches the canonical result bytes.
func (b *HTTPBackend) Run(ctx context.Context, spec serve.JobSpec) ([]byte, serve.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, serve.JobView{}, err
	}
	var view serve.JobView
	if err := b.doJSON(ctx, http.MethodPost, "/jobs", bytes.NewReader(body), http.StatusAccepted, &view); err != nil {
		return nil, serve.JobView{}, err
	}
	for !terminal(view.Status) {
		if err := ctx.Err(); err != nil {
			return nil, view, context.Cause(ctx)
		}
		// Server-side wait bounded well under typical client deadlines so a
		// dead replica is noticed quickly.
		path := fmt.Sprintf("/jobs/%d?wait=%s", view.ID, waitSlice(ctx))
		if err := b.doJSON(ctx, http.MethodGet, path, nil, http.StatusOK, &view); err != nil {
			return nil, view, err
		}
	}
	if view.Status != serve.StatusDone {
		if view.Status == serve.StatusCancelled {
			return nil, view, fmt.Errorf("%w: %s", ErrInterrupted, view.Error)
		}
		return nil, view, fmt.Errorf("%w: status %s: %s", ErrJobFailed, view.Status, view.Error)
	}
	wire, err := b.fetchBytes(ctx, fmt.Sprintf("/jobs/%d/result", view.ID))
	if err != nil {
		return nil, view, err
	}
	return wire, view, nil
}

// Checkpoint fetches the job's latest safepoint checkpoint over HTTP.
func (b *HTTPBackend) Checkpoint(ctx context.Context, id int64) ([]byte, error) {
	return b.fetchBytes(ctx, fmt.Sprintf("/jobs/%d/checkpoint", id))
}

// fetchBytes GETs an octet-stream endpoint.
func (b *HTTPBackend) fetchBytes(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s %s: %s", b.ReplicaName, path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// doJSON issues one request and decodes the JSON response into out.
func (b *HTTPBackend) doJSON(ctx context.Context, method, path string, body io.Reader, want int, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, b.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s %s %s: %s: %s", b.ReplicaName, method, path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func terminal(st serve.Status) bool {
	return st == serve.StatusDone || st == serve.StatusFailed || st == serve.StatusCancelled
}

// waitSlice picks the server-side wait for one poll: a second, or less when
// the caller's deadline is closer.
func waitSlice(ctx context.Context) time.Duration {
	slice := time.Second
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < slice {
			slice = rem
		}
	}
	if slice < 10*time.Millisecond {
		slice = 10 * time.Millisecond
	}
	return slice
}
