package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"jrpm/internal/codec"
	"jrpm/internal/serve"
)

// Handler exposes the router over HTTP:
//
//	POST /run       submit a serve.JobSpec and run it to completion through
//	                the fleet. Responds with the canonical codec result
//	                bytes (application/octet-stream) plus X-Jrpm-Cache
//	                (hit|miss), X-Jrpm-Coalesced and X-Jrpm-Replica headers;
//	                ?format=json returns a JSON summary instead.
//	GET  /replicas  shard list with per-shard breaker state and last
//	                dispatch/result probe times
//	GET  /healthz   liveness      GET /readyz  readiness (503 with the
//	                per-shard breaker detail when every shard's breaker is
//	                open, i.e. no submission would be admitted anywhere)
//	GET  /metrics   Prometheus text exposition (jrpm_fleet_*)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", rt.handleRun)
	mux.HandleFunc("GET /replicas", rt.handleReplicas)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.reg.WritePrometheus(w)
	})
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runSummary is the JSON rendering of a routed result for ?format=json.
type runSummary struct {
	Name      string  `json:"name"`
	Key       string  `json:"key"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	Replica   string  `json:"replica,omitempty"`
	SeqCycles int64   `json:"seq_cycles"`
	TLSCycles int64   `json:"tls_cycles,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	WireBytes int     `json:"wire_bytes"`
}

func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec serve.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job spec: " + err.Error()})
		return
	}
	out, err := rt.Do(r.Context(), spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrNoReplicas):
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		case errors.Is(err, ErrJobFailed):
			writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		}
		return
	}
	cacheHeader := "miss"
	if out.CacheHit {
		cacheHeader = "hit"
	}
	w.Header().Set("X-Jrpm-Cache", cacheHeader)
	if out.Coalesced {
		w.Header().Set("X-Jrpm-Coalesced", "true")
	}
	if out.Replica != "" {
		w.Header().Set("X-Jrpm-Replica", out.Replica)
	}
	if r.URL.Query().Get("format") == "json" {
		res, derr := codec.DecodeResult(out.Wire)
		if derr != nil {
			writeJSON(w, http.StatusInternalServerError, httpError{Error: "decode result: " + derr.Error()})
			return
		}
		writeJSON(w, http.StatusOK, runSummary{
			Name:      res.Name,
			Key:       out.Key,
			CacheHit:  out.CacheHit,
			Coalesced: out.Coalesced,
			Replica:   out.Replica,
			SeqCycles: res.Seq.Cycles,
			TLSCycles: res.TLS.Cycles,
			Speedup:   res.SpeedupActual(),
			WireBytes: len(out.Wire),
		})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out.Wire)
}

// replicaView is one shard's state for GET /replicas and the degraded
// /readyz body: breaker state plus the shard's last dispatch/result probe
// times (zero until the shard has been touched).
type replicaView struct {
	Index        int                `json:"index"`
	Name         string             `json:"name"`
	Breaker      serve.BreakerStats `json:"breaker"`
	LastDispatch *time.Time         `json:"last_dispatch,omitempty"`
	LastResult   *time.Time         `json:"last_result,omitempty"`
	LastError    string             `json:"last_error,omitempty"`
}

// replicaViews snapshots every shard's health.
func (rt *Router) replicaViews() []replicaView {
	stats := rt.Breakers()
	views := make([]replicaView, len(rt.backends))
	for i, b := range rt.backends {
		v := replicaView{Index: i, Name: b.Name(), Breaker: stats[i]}
		dispatch, result, lastErr := rt.shards[i].snapshot()
		if !dispatch.IsZero() {
			v.LastDispatch = &dispatch
		}
		if !result.IsZero() {
			v.LastResult = &result
		}
		v.LastError = lastErr
		views[i] = v
	}
	return views
}

func (rt *Router) handleReplicas(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.replicaViews())
}

// handleReady reports fleet-level readiness: 200 while at least one shard's
// breaker would admit a submission, 503 with the per-shard detail once every
// breaker is open (an empty fleet is also unready).
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	views := rt.replicaViews()
	admitting := 0
	for _, v := range views {
		if !v.Breaker.Open {
			admitting++
		}
	}
	if admitting == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "degraded",
			"replicas": views,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ready",
		"admitting": admitting,
		"replicas":  len(views),
	})
}
