package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default virtual-node count per replica. 64 points
// per replica keeps the maximum load imbalance across a handful of shards
// within a few percent while the ring stays tiny.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over replica names with virtual nodes.
// Keys map to a preference order of replicas: the owner first, then the
// distinct successors clockwise. Adding or removing one replica moves only
// the keys whose owning arc changed — the property the router's cache
// affinity and the failover tests rely on.
//
// A Ring is immutable after New; rebuilding on membership change is cheap
// (the ring is a few thousand points at most).
type Ring struct {
	vnodes int
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into names
}

// NewRing builds a ring over the given replica names (vnodes <= 0 selects
// DefaultVNodes). Order of names fixes replica indices; the hash positions
// depend only on the names, so every process building a ring from the same
// membership sees the same ownership.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		vnodes: vnodes,
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range r.names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", name, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Len reports the number of replicas.
func (r *Ring) Len() int { return len(r.names) }

// Name returns the replica name at index i.
func (r *Ring) Name(i int) string { return r.names[i] }

// Owner returns the replica index owning the key (-1 on an empty ring).
func (r *Ring) Owner(key string) int {
	order := r.Order(key)
	if len(order) == 0 {
		return -1
	}
	return order[0]
}

// Order returns every replica index in the key's preference order: the
// clockwise owner first, then each further distinct replica as the walk
// continues around the ring. The router uses the tail for hedging and
// failover, so a key's traffic lands on stable, deterministic shards.
func (r *Ring) Order(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, len(r.names))
	seen := make(map[int]bool, len(r.names))
	for i := 0; i < len(r.points) && len(order) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}
	return order
}

// ringHash is 64-bit FNV-1a pushed through a splitmix64-style finalizer.
// Raw FNV avalanches poorly on short, similar strings (replica vnode labels
// and sequential job keys differ in a few trailing bytes), which clusters
// points and unbalances the ring; the multiply/xor-shift mix spreads them.
// Both stages are fixed arithmetic — deterministic across processes, which
// keeps shard ownership stable fleet-wide.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
