package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	a, b := NewRing(names, 0), NewRing(names, 0)
	for _, k := range keys(200) {
		oa, ob := a.Order(k), b.Order(k)
		if len(oa) != len(names) || len(ob) != len(names) {
			t.Fatalf("order for %q missing replicas: %v %v", k, oa, ob)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("two rings over the same membership disagree on %q: %v vs %v", k, oa, ob)
			}
		}
	}
}

func TestRingOrderCoversAllReplicasOnce(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 16)
	for _, k := range keys(100) {
		seen := map[int]bool{}
		for _, i := range r.Order(k) {
			if seen[i] {
				t.Fatalf("duplicate replica %d in order for %q", i, k)
			}
			seen[i] = true
		}
		if len(seen) != 4 {
			t.Fatalf("order for %q covers %d replicas, want 4", k, len(seen))
		}
	}
}

// TestRingRemovalMovesOnlyOwnedKeys pins the consistent-hashing contract:
// dropping a replica relocates exactly the keys it owned — every other
// key keeps its owner.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	full := NewRing([]string{"r0", "r1", "r2"}, 0)
	reduced := NewRing([]string{"r0", "r1"}, 0)
	moved := 0
	for _, k := range keys(2000) {
		ownerFull := full.Name(full.Owner(k))
		ownerReduced := reduced.Name(reduced.Owner(k))
		if ownerFull == "r2" {
			moved++
			continue // these keys had to move somewhere
		}
		if ownerFull != ownerReduced {
			t.Fatalf("key %q moved from %s to %s although its replica survived", k, ownerFull, ownerReduced)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed replica — ring badly unbalanced")
	}
}

// TestRingAdditionBoundedMovement: adding one replica to N steals roughly
// 1/(N+1) of the keys; everything else stays put.
func TestRingAdditionBoundedMovement(t *testing.T) {
	before := NewRing([]string{"r0", "r1", "r2"}, 0)
	after := NewRing([]string{"r0", "r1", "r2", "r3"}, 0)
	const n = 2000
	moved := 0
	for _, k := range keys(n) {
		oldOwner := before.Name(before.Owner(k))
		newOwner := after.Name(after.Owner(k))
		if oldOwner == newOwner {
			continue
		}
		if newOwner != "r3" {
			t.Fatalf("key %q moved %s→%s: only the new replica may steal keys", k, oldOwner, newOwner)
		}
		moved++
	}
	// Expected share is n/4 = 500; allow generous slack for hash variance
	// but fail on gross imbalance (which would break cache affinity).
	if moved < n/10 || moved > n/2 {
		t.Fatalf("added replica stole %d/%d keys; want roughly %d", moved, n, n/4)
	}
}

func TestRingBalance(t *testing.T) {
	names := []string{"r0", "r1", "r2", "r3"}
	r := NewRing(names, 0)
	counts := make([]int, len(names))
	const n = 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for i, c := range counts {
		// Perfect share is 1000; virtual nodes should keep every replica
		// within a factor of two of it.
		if c < n/8 || c > n/2 {
			t.Fatalf("replica %s owns %d/%d keys — ring unbalanced: %v", names[i], c, n, counts)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Order("anything"); got != nil {
		t.Fatalf("empty ring returned order %v", got)
	}
	if r.Owner("anything") != -1 {
		t.Fatal("empty ring claimed an owner")
	}
}
