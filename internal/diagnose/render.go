package diagnose

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"jrpm/internal/obs"
)

// JSON renders the report as indented JSON. The output is byte-deterministic
// for a given report: every collection is an ordered slice and encoding/json
// emits struct fields in declaration order.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A Report contains only plain data; marshalling cannot fail.
		panic(err)
	}
	return append(b, '\n')
}

// WriteText renders the human-readable doctor report. The layout is stable:
// golden tests diff it byte-for-byte.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "speculation doctor: %s\n", r.Name)
	fmt.Fprintf(w, "%s\n", strings.Repeat("=", 20+len(r.Name)))
	fmt.Fprintf(w, "cpus %d  seq %d  tls %d  speedup %.2fx  predicted %.2fx\n",
		r.NCPU, r.SeqCycles, r.TLSCycles, r.Speedup, r.Predicted)
	cons := "exact"
	if !r.Conserved {
		cons = "VIOLATED"
	}
	fmt.Fprintf(w, "cycle conservation: %s (%d wall cycles x %d cpus)\n\n",
		cons, r.WallCycles, r.NCPU)

	fmt.Fprintf(w, "machine cycles outside STLs\n")
	writeMachine(w, &r.Machine)

	for i := range r.Loops {
		writeLoop(w, &r.Loops[i])
	}

	if len(r.Decisions) > 0 {
		fmt.Fprintf(w, "\ndecomposition decisions\n")
		for i := range r.Decisions {
			writeDecision(w, &r.Decisions[i])
		}
	}
}

func writeMachine(w io.Writer, m *obs.MachineBuckets) {
	rows := []struct {
		name string
		v    int64
	}{
		{"serial (interp)", m.SerialInterp},
		{"serial (tier-2)", m.SerialTier2},
		{"serial gc", m.SerialGC},
		{"serial exception", m.SerialException},
		{"idle", m.Idle},
		{"cancelled", m.Cancelled},
		{"leaked", m.Leaked},
		{"in flight", m.InFlight},
	}
	for _, row := range rows {
		if row.v != 0 {
			fmt.Fprintf(w, "  %-18s %12d\n", row.name, row.v)
		}
	}
}

func writeLoop(w io.Writer, l *LoopReport) {
	where := l.Where
	if where == "" {
		where = "(unmapped)"
	}
	fmt.Fprintf(w, "\nloop %d  %s  entries %d  cycles %d  useful %.1f%%\n",
		l.LoopID, where, l.Entries, l.Cycles, l.UsefulPct)
	fmt.Fprintf(w, "  verdict: %s\n", l.Verdict)
	b := &l.Buckets
	rows := []struct {
		name string
		v    int64
	}{
		{"run used", b.RunUsed},
		{"wait commit", b.WaitCommit},
		{"wait overflow", b.WaitOverflow},
		{"run violated", b.RunViolated},
		{"wait violated", b.WaitViolated},
		{"handler startup", b.HandlerStartup},
		{"handler shutdown", b.HandlerShutdown},
		{"handler eoi", b.HandlerEOI},
		{"handler restart", b.HandlerRestart},
		{"switch cost", b.SwitchCost},
		{"overflow drain", b.OverflowDrain},
		{"io commit", b.IOCommit},
		{"gc", b.GC},
		{"exception", b.Exception},
		{"guard solo", b.GuardSolo},
		{"guard probe", b.GuardProbe},
	}
	for _, row := range rows {
		if row.v != 0 {
			fmt.Fprintf(w, "  %-18s %12d\n", row.name, row.v)
		}
	}
	for i := range l.Sites {
		s := &l.Sites[i]
		fmt.Fprintf(w, "  site %-34s kills %-6d discarded %d+%d\n",
			s.Symbol, s.Count, s.DiscardedRun, s.DiscardedWait)
		if s.DistHist != nil {
			fmt.Fprintf(w, "       arc dist: min %d avg %.1f hist %s\n",
				s.MinDist, s.AvgDist, sparkline(s.DistHist))
		}
		fmt.Fprintf(w, "       hint: %s\n", s.Hint)
	}
}

func writeDecision(w io.Writer, d *Decision) {
	mark := "-"
	if d.Selected {
		mark = "+"
		if d.Inner {
			mark = "*"
		}
	}
	fmt.Fprintf(w, "  %s loop %-4d %-22s depth %d  cover %5.1f%%  pred %5.2fx  %s\n",
		mark, d.LoopID, d.Where, d.Depth, 100*d.Coverage, d.Speedup, d.Reason)
	if d.Selected {
		var opt []string
		if d.Inductors > 0 {
			opt = append(opt, fmt.Sprintf("inductors %d", d.Inductors))
		}
		if d.Resetable > 0 {
			opt = append(opt, fmt.Sprintf("resetable %d", d.Resetable))
		}
		if d.Reductions > 0 {
			opt = append(opt, fmt.Sprintf("reductions %d", d.Reductions))
		}
		if d.SyncLocks > 0 {
			opt = append(opt, fmt.Sprintf("sync %d", d.SyncLocks))
		}
		if d.Comm > 0 {
			opt = append(opt, fmt.Sprintf("comm %d", d.Comm))
		}
		if d.Hoisted {
			opt = append(opt, "hoisted")
		}
		if d.Multilevel {
			opt = append(opt, "multilevel")
		}
		if len(opt) > 0 {
			fmt.Fprintf(w, "      transforms: %s\n", strings.Join(opt, ", "))
		}
	}
}

// sparkline renders a log₂-bucket histogram as a compact bar string.
func sparkline(h []int64) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var max int64
	last := 0
	for i, v := range h {
		if v > max {
			max = v
		}
		if v > 0 {
			last = i
		}
	}
	if max == 0 {
		return "[]"
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i <= last; i++ {
		g := int64(0)
		if h[i] > 0 {
			// Scale 1..8 so any non-zero bucket is visible.
			g = 1 + (h[i]*7)/max
			if g > 8 {
				g = 8
			}
		}
		sb.WriteRune(glyphs[g])
	}
	sb.WriteByte(']')
	return sb.String()
}
