// Package diagnose is the speculation doctor: it turns the raw telemetry of
// a pipeline run — the cycle-conservation ledger, the tracer's dependence
// profile, and the analyzer's selection reasoning — into verdicts a user can
// act on. The paper's §4.2 catalogue of manual feedback-driven
// transformations (code motion, resetable inductors, reduction expansion,
// explicit sync) becomes a deterministic hint engine keyed by the
// symbolized violation sites.
//
// The doctor is a pure consumer: it reads core.Result and never touches the
// machine, so building a report cannot perturb timing.
package diagnose

import (
	"fmt"
	"sort"

	"jrpm/internal/analyzer"
	"jrpm/internal/core"
	"jrpm/internal/obs"
	"jrpm/internal/tracer"
)

// Report is the doctor's full diagnosis for one program run.
type Report struct {
	Name string `json:"name"`
	NCPU int    `json:"ncpu"`

	SeqCycles     int64   `json:"seq_cycles"`
	ProfileCycles int64   `json:"profile_cycles"`
	TLSCycles     int64   `json:"tls_cycles"`
	WallCycles    int64   `json:"wall_cycles"` // TLS phase wall clock (== TLSCycles)
	Speedup       float64 `json:"speedup"`     // actual, Seq/TLS
	Predicted     float64 `json:"predicted"`   // analyzer's estimate

	// Machine is the TLS phase's non-STL attribution; Conserved records
	// that the snapshot passed the hard conservation check.
	Machine   obs.MachineBuckets `json:"machine"`
	Conserved bool               `json:"conserved"`

	Loops     []LoopReport `json:"loops"`
	Decisions []Decision   `json:"decisions"`
}

// LoopReport is the diagnosis of one speculatively executed STL.
type LoopReport struct {
	LoopID  int64  `json:"loop_id"`
	Where   string `json:"where"` // method/loop position from the analyzer
	Entries int64  `json:"entries"`

	Cycles    int64           `json:"cycles"` // sum over all buckets
	Buckets   obs.LoopBuckets `json:"buckets"`
	UsefulPct float64         `json:"useful_pct"` // committed run work share

	Verdict string       `json:"verdict"`
	Sites   []SiteReport `json:"sites,omitempty"`
}

// SiteReport is one ranked violation site with its §4.2 hint and, when the
// profile saw the same dependence source, the arc-distance evidence.
type SiteReport struct {
	Symbol        string `json:"symbol"`
	Kind          string `json:"kind"`
	Count         int64  `json:"count"`
	DiscardedRun  int64  `json:"discarded_run"`
	DiscardedWait int64  `json:"discarded_wait"`
	Hint          string `json:"hint"`

	// Profile evidence (zero when the tracer never saw this source).
	AvgDist  float64 `json:"avg_dist,omitempty"`
	MinDist  int64   `json:"min_dist,omitempty"`
	DistHist []int64 `json:"dist_hist,omitempty"`
}

// Decision is the analyzer's per-loop selection reasoning, exported in a
// machine-readable form so "why was my loop not parallelized" has a direct
// answer.
type Decision struct {
	LoopID   int64  `json:"loop_id"`
	Where    string `json:"where"`
	Depth    int    `json:"depth"`
	Selected bool   `json:"selected"`
	Inner    bool   `json:"inner,omitempty"`
	Reason   string `json:"reason"`

	Coverage float64 `json:"coverage"`
	Speedup  float64 `json:"predicted_speedup"`
	SeqCyc   int64   `json:"seq_cycles"`
	ParCyc   int64   `json:"par_cycles"`
	DepBound float64 `json:"dep_bound"`
	CPUBound float64 `json:"cpu_bound"`
	Overflow float64 `json:"overflow"`

	Inductors  int  `json:"inductors,omitempty"`
	Resetable  int  `json:"resetable,omitempty"`
	Reductions int  `json:"reductions,omitempty"`
	SyncLocks  int  `json:"sync_locks,omitempty"`
	Comm       int  `json:"comm,omitempty"`
	Hoisted    bool `json:"hoisted,omitempty"`
	Multilevel bool `json:"multilevel,omitempty"`
}

// Build assembles the doctor's report from a completed pipeline run. The
// run must have executed with core.Options.Diagnose set; Build returns an
// error otherwise, since there is no ledger to diagnose.
func Build(res *core.Result) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("diagnose: nil result")
	}
	led := res.TLS.Ledger
	if led == nil {
		return nil, fmt.Errorf("diagnose: run has no ledger (set Options.Diagnose)")
	}
	r := &Report{
		Name:          res.Name,
		NCPU:          led.NCPU,
		SeqCycles:     res.Seq.Cycles,
		ProfileCycles: res.Profile.Cycles,
		TLSCycles:     res.TLS.Cycles,
		WallCycles:    led.WallCycles,
		Speedup:       res.SpeedupActual(),
		Machine:       led.Machine,
		Conserved:     led.CheckConservation() == nil,
	}
	if res.Analysis != nil {
		r.Predicted = float64(res.Analysis.ProfiledCycles) / float64(max64(res.Analysis.PredictedCycles, 1))
	}

	where := map[int64]string{}
	if res.Analysis != nil {
		for _, d := range res.Analysis.Decisions {
			where[d.LoopID] = fmt.Sprintf("method#%d loop#%d", d.MethodID, d.LoopIndex)
			r.Decisions = append(r.Decisions, buildDecision(d))
		}
		sort.Slice(r.Decisions, func(i, j int) bool { return r.Decisions[i].LoopID < r.Decisions[j].LoopID })
	}

	for _, ll := range led.Loops {
		r.Loops = append(r.Loops, buildLoop(&ll, where[ll.LoopID], res.Loops))
	}
	return r, nil
}

func buildDecision(d *analyzer.LoopDecision) Decision {
	return Decision{
		LoopID:     d.LoopID,
		Where:      fmt.Sprintf("method#%d loop#%d", d.MethodID, d.LoopIndex),
		Depth:      d.Depth,
		Selected:   d.Selected,
		Inner:      d.Inner,
		Reason:     d.Reason,
		Coverage:   d.Coverage,
		Speedup:    d.Prediction.Speedup,
		SeqCyc:     d.Prediction.SeqCycles,
		ParCyc:     d.Prediction.ParCycles,
		DepBound:   d.Prediction.DepBound,
		CPUBound:   d.Prediction.CPUBound,
		Overflow:   d.Prediction.Overflow,
		Inductors:  d.Inductors,
		Resetable:  d.Resetable,
		Reductions: d.Reductions,
		SyncLocks:  d.SyncLocks,
		Comm:       d.Comm,
		Hoisted:    d.Hoisted,
		Multilevel: d.Multilevel,
	}
}

func buildLoop(ll *obs.LoopLedger, where string, loops map[int64]*tracer.LoopStats) LoopReport {
	lr := LoopReport{
		LoopID:  ll.LoopID,
		Where:   where,
		Entries: ll.Entries,
		Cycles:  ll.Buckets.Total(),
		Buckets: ll.Buckets,
	}
	if lr.Cycles > 0 {
		lr.UsefulPct = 100 * float64(ll.Buckets.RunUsed) / float64(lr.Cycles)
	}
	var ls *tracer.LoopStats
	if loops != nil {
		ls = loops[ll.LoopID]
	}
	for i := range ll.Sites {
		lr.Sites = append(lr.Sites, buildSite(&ll.Sites[i], ls))
	}
	lr.Verdict = verdict(&ll.Buckets, lr.Cycles)
	return lr
}

// depFor finds the tracer dependence record that matches a symbolized
// violation site: bytecode-local slots (and the STL bookkeeping words the
// JIT derives from them) key by gslot = method*256 + slot, exactly as the
// machine composed them when feeding the tracer; memory sites collapse to
// the tracer's whole-heap source.
func depFor(s *obs.SiteStats, ls *tracer.LoopStats) *tracer.DepStats {
	if ls == nil {
		return nil
	}
	switch s.Key.Kind {
	case obs.SiteHeap, obs.SiteStatic:
		return ls.Deps[tracer.HeapDepKey]
	case obs.SiteFrame:
		switch s.Slot {
		case obs.SlotLocal, obs.SlotResetBase, obs.SlotLock, obs.SlotRed:
			return ls.Deps[uint32(s.Key.Method)*256+uint32(s.SlotIndex)]
		}
	}
	return nil
}

func buildSite(s *obs.SiteStats, ls *tracer.LoopStats) SiteReport {
	sr := SiteReport{
		Symbol:        s.Symbol,
		Kind:          kindName(s),
		Count:         s.Count,
		DiscardedRun:  s.DiscardedRun,
		DiscardedWait: s.DiscardedWait,
	}
	dep := depFor(s, ls)
	if dep != nil && dep.Iters > 0 {
		sr.AvgDist = float64(dep.SumDist) / float64(dep.Iters)
		sr.MinDist = dep.MinDist
		sr.DistHist = make([]int64, len(dep.DistHist))
		copy(sr.DistHist, dep.DistHist[:])
	}
	var avgThread float64
	if ls != nil {
		avgThread = ls.AvgThreadSize()
	}
	sr.Hint = hint(s, dep, avgThread)
	return sr
}

func kindName(s *obs.SiteStats) string {
	switch s.Key.Kind {
	case obs.SiteStatic:
		return "static"
	case obs.SiteFrame:
		return "frame"
	case obs.SiteHeap:
		return "heap"
	case obs.SiteGC:
		return "gc"
	case obs.SiteInjected:
		return "injected"
	case obs.SiteOther:
		return "other"
	}
	return "none"
}

// hint maps a violation site to the paper's §4.2 transformation menu. The
// rules are deliberately simple and deterministic: slot class first, then
// the profiled arc shape when the tracer saw the same source.
func hint(s *obs.SiteStats, dep *tracer.DepStats, avgThread float64) string {
	switch s.Key.Kind {
	case obs.SiteGC:
		return "GC quiesce killed speculative threads — reduce allocation inside the loop body"
	case obs.SiteInjected:
		return "synthetic violation from the fault-injection plan (test harness)"
	case obs.SiteOther:
		return "aggregate of cold sites past the per-loop tracking limit"
	case obs.SiteStatic:
		return "static field written across iterations — reduction expansion (§4.2.4) or privatization candidate"
	case obs.SiteHeap:
		return "shared heap word — privatize per CPU or guard with explicit synchronization (§4.2.5)"
	case obs.SiteFrame:
		switch s.Slot {
		case obs.SlotLock:
			return "explicit-sync lock word — critical section is still contended; shrink the synchronized span (§4.2.5)"
		case obs.SlotRed:
			return "per-CPU reduction partial collided — reduction expansion layout is being defeated (§4.2.4)"
		case obs.SlotResetBase:
			return "resetable-inductor base raced — loop body rewrites the inductor outside the reset protocol (§4.2.3)"
		case obs.SlotSaved, obs.SlotSpill:
			return "compiler temporary — the arc is a register-allocation artifact, not program data"
		case obs.SlotLocal:
			return localHint(dep, avgThread)
		}
		return "frame word outside the compiled method's slot map"
	}
	return ""
}

func localHint(dep *tracer.DepStats, avgThread float64) string {
	if dep == nil || dep.Iters == 0 {
		return "loop-carried local (arc unseen by the profile) — inspect the producing store"
	}
	if dep.MinDist >= 2 {
		return "loop-carried local with arc distance ≥ 2 — resetable inductor candidate (§4.2.3)"
	}
	avgStore := float64(dep.SumStoreOff) / float64(dep.Iters)
	avgLoad := float64(dep.SumLoadOff) / float64(dep.Iters)
	if avgThread > 0 && avgStore > avgLoad {
		return "value produced late and consumed early — hoist the store or sink the load (code motion, §4.2.2)"
	}
	return "serializing scalar updated every iteration — reduction expansion candidate (§4.2.4)"
}

// verdict condenses a loop's bucket profile into one sentence: healthy when
// committed work dominates, otherwise named after the dominant loss.
func verdict(b *obs.LoopBuckets, total int64) string {
	if total == 0 {
		return "no cycles attributed"
	}
	pct := func(v int64) float64 { return 100 * float64(v) / float64(total) }
	useful := b.RunUsed
	guard := b.GuardSolo + b.GuardProbe
	violated := b.RunViolated + b.WaitViolated + b.HandlerRestart
	overflow := b.WaitOverflow + b.OverflowDrain
	handler := b.HandlerStartup + b.HandlerShutdown + b.HandlerEOI + b.SwitchCost
	imbalance := b.WaitCommit

	if guard > total/2 {
		return fmt.Sprintf("decertified: guard demoted the loop to sequential execution for %.1f%% of its cycles", pct(guard))
	}
	if float64(useful) >= 0.75*float64(total) {
		return fmt.Sprintf("healthy: %.1f%% of cycles committed useful work", pct(useful))
	}
	type loss struct {
		v    int64
		text string
	}
	losses := []loss{
		{violated, fmt.Sprintf("violation-bound: %.1f%% of cycles discarded — see the ranked sites", pct(violated))},
		{imbalance, fmt.Sprintf("imbalance-bound: %.1f%% of cycles spent waiting to commit", pct(imbalance))},
		{overflow, fmt.Sprintf("overflow-bound: %.1f%% of cycles stalled on speculative buffers", pct(overflow))},
		{handler, fmt.Sprintf("overhead-bound: %.1f%% of cycles in STL handlers (threads too small)", pct(handler))},
	}
	best := losses[0]
	for _, l := range losses[1:] {
		if l.v > best.v {
			best = l
		}
	}
	if best.v == 0 {
		return fmt.Sprintf("mixed: %.1f%% useful work with no dominant loss", pct(useful))
	}
	return best.text
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
