package litmus

import (
	"fmt"
	"strings"
)

// renderTimeline pretty-prints a trace as aligned per-CPU columns: one row
// per schedule step, each op in its CPU's column with the executing
// iteration, the divergence step marked ">>" and its related (conflicting)
// step marked " +".
func renderTimeline(t *Test, trace []stepRec, div *Divergence) string {
	if len(trace) == 0 {
		if div != nil {
			return fmt.Sprintf("(no steps) %s: %s\n", div.Check, div.Detail)
		}
		return "(no steps)\n"
	}
	cols := make([]int, t.NCPU)
	cells := make([]string, len(trace))
	for i, s := range trace {
		cells[i] = fmt.Sprintf("i%d %s", s.Iter, s.Text)
		if s.CPU >= 0 && s.CPU < t.NCPU && len(cells[i]) > cols[s.CPU] {
			cols[s.CPU] = len(cells[i])
		}
	}
	for c := range cols {
		if w := len(fmt.Sprintf("cpu%d", c)); w > cols[c] {
			cols[c] = w
		}
	}
	var b strings.Builder
	b.WriteString("     ")
	for c := 0; c < t.NCPU; c++ {
		fmt.Fprintf(&b, " %-*s", cols[c], fmt.Sprintf("cpu%d", c))
	}
	b.WriteByte('\n')
	for i, s := range trace {
		mark := "  "
		if div != nil && i == div.Step {
			mark = ">>"
		} else if div != nil && i == div.Related {
			mark = " +"
		}
		fmt.Fprintf(&b, "%s%3d", mark, i)
		for c := 0; c < t.NCPU; c++ {
			cell := ""
			if c == s.CPU {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s", cols[c], cell)
		}
		b.WriteByte('\n')
	}
	if div != nil {
		fmt.Fprintf(&b, "%s: %s\n", div.Check, div.Detail)
	}
	return b.String()
}
