package litmus

// seqResult is the sequential-consistency oracle's verdict: what the scripts
// must produce when executed one iteration at a time, in iteration order,
// with no speculation at all.
type seqResult struct {
	mem       []int64            // final memory by footprint index
	committed []int64            // iterations whose effects reach memory, in order
	obs       map[int64][]obsRec // tracked-load observations per committed iteration
}

// runSeq executes the test sequentially. Only memory-semantic kinds have an
// effect: Ld observes, St writes, Stop ends the whole loop mid-iteration
// (the iteration still commits its prefix, exactly as Shutdown drains the
// head's partial buffer). LdNV is deliberately not recorded — an untracked
// load is allowed to observe non-sequential values under speculation, which
// is the point of the lwnv instruction. All other kinds are protocol
// plumbing with no sequential meaning.
func runSeq(t *Test) *seqResult {
	r := &seqResult{
		mem: make([]int64, t.Addrs),
		obs: make(map[int64][]obsRec),
	}
	for i := 0; i < t.Addrs; i++ {
		r.mem[i] = t.InitialValue(i)
	}
	for i := 0; i < t.Iters(); i++ {
		iter := int64(i)
		var log []obsRec
		stopped := false
		for pc, op := range t.Scripts[i] {
			switch op.K {
			case KLoad:
				log = append(log, obsRec{PC: pc, AddrIdx: op.A, Val: r.mem[op.A]})
			case KStore:
				r.mem[op.A] = op.value(iter, pc)
			case KStop:
				stopped = true
			}
			if stopped {
				break
			}
		}
		r.committed = append(r.committed, iter)
		r.obs[iter] = log
		if stopped {
			break
		}
	}
	return r
}
