package litmus

import (
	"encoding/binary"
	"sort"

	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// shadow is the independent step-wise protocol oracle: a from-scratch
// re-implementation of the TLS coherence semantics over naive Go maps. It
// shares no code with internal/tls — store buffers are map[addr]value, read
// sets are map[addr]bool, line occupancy is re-derived by counting distinct
// lines among the keys — so a bug in the unit's generation-stamped CAMs,
// forwarding order, violation broadcast, or Figure-10 accounting shows up as
// a unit-versus-shadow mismatch at the exact step it first becomes
// observable.
//
// The shadow never models ChaosNoWordValid: it always implements the correct
// word-granularity semantics, which is what lets a Chaos test act as an
// oracle self-check (the checker must diverge with "load-value").
type shadow struct {
	t    *Test
	ncpu int
	h    tls.HandlerCosts

	storeCap int // store buffer line capacity (stall threshold)
	loadCap  int // load buffer line capacity

	mem map[mem.Addr]int64 // committed memory (pre-filled with initial values)
	th  []shadowThread

	active bool
	solo   bool
	stl    int64
	head   int64 // iteration holding the head token (nextCommit)
	spawn  int64 // next iteration to hand out (nextSpawn)

	stats      tls.StateStats
	commits    int64
	violations int64
	overflows  int64
	maxStore   int
	maxLoad    int
	sumStore   int64
	sumLoad    int64
	nCommitted int64

	// Conservation ledger: every cycle the driver charges plus every handler
	// cost the protocol incurs. At a clean terminal state
	// stats.Total() == chargedWork + chargedHandlers exactly.
	chargedWork     int64
	chargedHandlers int64
}

type shadowThread struct {
	iter       int64
	stores     map[mem.Addr]int64
	reads      map[mem.Addr]bool
	overflowed bool

	run, wait, overhead int64
}

func newShadow(t *Test) *shadow {
	s := &shadow{
		t:        t,
		ncpu:     t.NCPU,
		h:        tls.NewHandlers,
		storeCap: t.storeLines(),
		loadCap:  t.loadLines(),
		mem:      make(map[mem.Addr]int64),
		th:       make([]shadowThread, t.NCPU),
	}
	for i := 0; i < t.Addrs; i++ {
		s.mem[t.AddrOf(i)] = t.InitialValue(i)
	}
	for c := range s.th {
		s.th[c] = shadowThread{iter: -1, stores: map[mem.Addr]int64{}, reads: map[mem.Addr]bool{}}
	}
	return s
}

func (t *shadowThread) clearSpec() {
	clear(t.stores)
	clear(t.reads)
	t.overflowed = false
}

// storeLines counts the distinct lines among buffered stores — the quantity
// the hardware store buffer's occupancy counter tracks.
func (t *shadowThread) storeLines() int {
	lines := map[mem.Addr]bool{}
	for a := range t.stores {
		lines[mem.Line(a)] = true
	}
	return len(lines)
}

// readLines counts the distinct lines among tracked reads (load buffer use).
func (t *shadowThread) readLines() int {
	lines := map[mem.Addr]bool{}
	for a := range t.reads {
		lines[mem.Line(a)] = true
	}
	return len(lines)
}

func (s *shadow) isHead(c int) bool { return s.active && s.th[c].iter == s.head }

func (s *shadow) soloActive() bool { return s.active && s.solo }

func (s *shadow) storeOverflow(c int) bool { return s.th[c].storeLines() > s.storeCap }

func (s *shadow) loadOverflow(c int) bool { return s.th[c].readLines() > s.loadCap }

// charge mirrors Unit.ChargeAttempt for the active case (the driver never
// charges while inactive) and feeds the conservation ledger.
func (s *shadow) charge(c int, kind tls.ChargeKind, cycles int64) {
	t := &s.th[c]
	switch kind {
	case tls.ChargeRun:
		t.run += cycles
	case tls.ChargeWait:
		t.wait += cycles
	case tls.ChargeOverhead:
		t.overhead += cycles
	}
	s.chargedWork += cycles
}

func (s *shadow) flush(c int, used bool) {
	t := &s.th[c]
	if used {
		s.stats.RunUsed += t.run
		s.stats.WaitUsed += t.wait
	} else {
		s.stats.RunViolated += t.run
		s.stats.WaitViolated += t.wait
	}
	s.stats.Overhead += t.overhead
	t.run, t.wait, t.overhead = 0, 0, 0
}

// load predicts Load's value and applies its read-tracking side effect
// (track=false models lwnv). Forwarding order is the protocol's: own buffer,
// then the nearest older alive thread that buffered the word, then memory.
func (s *shadow) load(c int, a mem.Addr, track bool) int64 {
	t := &s.th[c]
	if v, ok := t.stores[a]; ok {
		return v
	}
	if track {
		t.reads[a] = true
	}
	my := t.iter
	var bestIter int64 = -1
	var bestVal int64
	for i := range s.th {
		ot := &s.th[i]
		if ot.iter >= 0 && ot.iter < my && ot.iter > bestIter {
			if v, ok := ot.stores[a]; ok {
				bestIter = ot.iter
				bestVal = v
			}
		}
	}
	if bestIter >= 0 {
		return bestVal
	}
	return s.mem[a]
}

// track mirrors Unit.TrackRead: expose a read with no data transfer.
func (s *shadow) track(c int, a mem.Addr) {
	t := &s.th[c]
	if _, ok := t.stores[a]; ok {
		return
	}
	t.reads[a] = true
}

// store predicts Store's violation set: buffer the write, then violate from
// the oldest younger thread with an exposed read of a.
func (s *shadow) store(c int, a mem.Addr, v int64) []int {
	t := &s.th[c]
	t.stores[a] = v
	my := t.iter
	var oldest int64 = -1
	for i := range s.th {
		ot := &s.th[i]
		if ot.iter > my && ot.reads[a] {
			if oldest < 0 || ot.iter < oldest {
				oldest = ot.iter
			}
		}
	}
	if oldest < 0 {
		return nil
	}
	return s.violateFrom(oldest)
}

// violateFrom mirrors Unit.ViolateFrom: every thread at or past fromIter is
// restarted — violation counted, attempt flushed to the violated buckets,
// speculative state discarded, restart handler charged to the new attempt.
func (s *shadow) violateFrom(fromIter int64) []int {
	var cpus []int
	for c := range s.th {
		t := &s.th[c]
		if t.iter >= fromIter {
			s.violations++
			s.flush(c, false)
			t.clearSpec()
			t.overhead += s.h.Restart
			s.chargedHandlers += s.h.Restart
			cpus = append(cpus, c)
		}
	}
	return cpus
}

// killYounger mirrors Unit.KillYounger: younger threads are discarded into
// the violated buckets with no violation count and no restart charge.
func (s *shadow) killYounger(c int) []int {
	my := s.th[c].iter
	var killed []int
	for i := range s.th {
		t := &s.th[i]
		if t.iter > my {
			s.flush(i, false)
			t.clearSpec()
			t.iter = -1
			killed = append(killed, i)
		}
	}
	return killed
}

func (s *shadow) noteUsage(c int) {
	t := &s.th[c]
	sl := t.storeLines()
	ll := t.readLines()
	if sl > s.maxStore {
		s.maxStore = sl
	}
	if ll > s.maxLoad {
		s.maxLoad = ll
	}
	s.sumStore += int64(sl)
	s.sumLoad += int64(ll)
	s.nCommitted++
}

func (s *shadow) drain(c int) {
	t := &s.th[c]
	for a, v := range t.stores {
		s.mem[a] = v
	}
	clear(t.stores)
}

// commitEOI mirrors Unit.CommitEOI: usage noted, attempt flushed used,
// buffer drained, tracking cleared, head token advanced, the CPU handed the
// next spawn iteration, and the EOI handler charged to the new attempt.
func (s *shadow) commitEOI(c int) {
	t := &s.th[c]
	s.noteUsage(c)
	s.flush(c, true)
	s.drain(c)
	clear(t.reads)
	t.overflowed = false
	s.commits++
	s.head++
	t.iter = s.spawn
	s.spawn++
	t.overhead += s.h.EOI
	s.chargedHandlers += s.h.EOI
}

// partial mirrors Unit.CommitPartial: the head drains mid-iteration and
// clears tracking; the overflow-episode flag is deliberately preserved.
func (s *shadow) partial(c int) {
	t := &s.th[c]
	s.drain(c)
	clear(t.reads)
}

// drainOverflow mirrors Unit.DrainOverflow, returning whether this drain
// opened a new overflow episode.
func (s *shadow) drainOverflow(c int) bool {
	t := &s.th[c]
	newEpisode := !t.overflowed
	t.overflowed = true
	if newEpisode {
		s.overflows++
	}
	s.drain(c)
	clear(t.reads)
	return newEpisode
}

// demote mirrors Unit.DemoteSolo.
func (s *shadow) demote(c int) []int {
	killed := s.killYounger(c)
	s.solo = true
	s.spawn = s.th[c].iter + 1
	return killed
}

// switchSTL mirrors the fixed Unit.SwitchSTL: the head's pending attempt
// cycles flush to the used buckets (its partial work was published by the
// mandatory CommitPartial), then iterations reassign from its own.
func (s *shadow) switchSTL(stl int64, c int) {
	s.flush(c, true)
	s.assign(stl, c, s.th[c].iter)
}

// assign mirrors Unit.assign.
func (s *shadow) assign(stl int64, headCPU int, baseIter int64) {
	s.stl = stl
	s.head = baseIter
	if s.solo {
		s.spawn = baseIter + 1
		for c := range s.th {
			t := &s.th[c]
			if c == headCPU {
				t.iter = baseIter
			} else {
				t.iter = -1
			}
			t.clearSpec()
			t.run, t.wait, t.overhead = 0, 0, 0
		}
		return
	}
	s.spawn = baseIter + int64(s.ncpu)
	for off := 0; off < s.ncpu; off++ {
		t := &s.th[(headCPU+off)%s.ncpu]
		t.iter = baseIter + int64(off)
		t.clearSpec()
		t.run, t.wait, t.overhead = 0, 0, 0
	}
}

// startAt mirrors Unit.StartAt.
func (s *shadow) startAt(stl int64, headCPU int, baseIter int64) {
	s.active = true
	s.solo = false
	s.stats.Overhead += s.h.Startup
	s.chargedHandlers += s.h.Startup
	s.assign(stl, headCPU, baseIter)
}

// shutdown mirrors Unit.Shutdown.
func (s *shadow) shutdown(c int) []int {
	s.noteUsage(c)
	s.flush(c, true)
	s.drain(c)
	s.stats.Overhead += s.h.Shutdown
	s.chargedHandlers += s.h.Shutdown
	var killed []int
	for i := range s.th {
		t := &s.th[i]
		if i == c {
			t.iter = -1
			continue
		}
		if t.iter >= 0 {
			s.flush(i, false)
			t.clearSpec()
			t.iter = -1
			killed = append(killed, i)
		}
	}
	s.active = false
	s.solo = false
	return killed
}

func (s *shadow) avgBufferLines() (store, load float64) {
	if s.nCommitted == 0 {
		return 0, 0
	}
	return float64(s.sumStore) / float64(s.nCommitted), float64(s.sumLoad) / float64(s.nCommitted)
}

// appendState serializes the shadow's protocol-relevant state (canonically:
// footprint addresses in index order, map keys sorted) for the explorer's
// abstract-state hash. Cumulative counters are excluded for the same reason
// as in Unit.DebugAppendState — they are compared step-wise instead.
func (s *shadow) appendState(b []byte) []byte {
	b = appendBool(b, s.active)
	b = appendBool(b, s.solo)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.stl))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.head))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.spawn))
	for i := 0; i < s.t.Addrs; i++ {
		b = binary.LittleEndian.AppendUint64(b, uint64(s.mem[s.t.AddrOf(i)]))
	}
	for c := range s.th {
		t := &s.th[c]
		b = binary.LittleEndian.AppendUint64(b, uint64(t.iter))
		b = appendBool(b, t.overflowed)
		b = binary.LittleEndian.AppendUint64(b, uint64(t.run))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.wait))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.overhead))
		b = appendSortedAddrStores(b, t.stores)
		b = appendSortedAddrSet(b, t.reads)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendSortedAddrStores(b []byte, m map[mem.Addr]int64) []byte {
	keys := make([]mem.Addr, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, a := range keys {
		b = binary.LittleEndian.AppendUint32(b, uint32(a))
		b = binary.LittleEndian.AppendUint64(b, uint64(m[a]))
	}
	return b
}

func appendSortedAddrSet(b []byte, m map[mem.Addr]bool) []byte {
	keys := make([]mem.Addr, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, a := range keys {
		b = binary.LittleEndian.AppendUint32(b, uint32(a))
	}
	return b
}
