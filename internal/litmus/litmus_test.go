package litmus

import (
	"testing"
)

// mpTest is the classic message-passing litmus shape: iteration 0 writes
// data then flag, iteration 1 reads flag then data.
func mpTest() *Test {
	return &Test{
		Name:  "mp",
		NCPU:  2,
		Addrs: 2,
		Scripts: [][]Op{
			{{K: KStore, A: 0}, {K: KStore, A: 1}},
			{{K: KLoad, A: 1}, {K: KLoad, A: 0}},
		},
	}
}

func TestExploreMessagePassing(t *testing.T) {
	res, err := Explore(mpTest(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("unexpected divergence %s: %s\n%s", res.Div.Check, res.Div.Detail, res.Div.Timeline)
	}
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %+v", res)
	}
	if res.Schedules == 0 {
		t.Fatalf("no schedules ran: %+v", res)
	}
}

// TestExploreNoPruneAgrees cross-checks that pruning changes only the work
// done, never the verdict, on a config small enough to exhaust both ways.
func TestExploreNoPruneAgrees(t *testing.T) {
	pruned, err := Explore(mpTest(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Explore(mpTest(), Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if (pruned.Div == nil) != (full.Div == nil) || !pruned.Exhausted || !full.Exhausted {
		t.Fatalf("prune changed the verdict: pruned %+v, full %+v", pruned, full)
	}
	if full.Schedules < pruned.Schedules {
		t.Fatalf("pruning ran more complete schedules (%d) than the full walk (%d)", pruned.Schedules, full.Schedules)
	}
}

// TestViolationCascade pins the three-thread violation cascade: an older
// store must kill the exposed reader and, transitively, everything younger.
func TestViolationCascade(t *testing.T) {
	tt := &Test{
		Name:  "cascade",
		NCPU:  3,
		Addrs: 2,
		Scripts: [][]Op{
			{{K: KStore, A: 0}},
			{{K: KLoad, A: 0}, {K: KStore, A: 1}},
			{{K: KLoad, A: 1}},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("unexpected divergence %s: %s\n%s", res.Div.Check, res.Div.Detail, res.Div.Timeline)
	}
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %+v", res)
	}
}

// TestTinyBuffersOverflowPark forces the overflow-park/drain protocol with
// one-line buffers and a multi-line footprint.
func TestTinyBuffersOverflowPark(t *testing.T) {
	tt := &Test{
		Name:       "tiny-overflow",
		NCPU:       2,
		Addrs:      3,
		StoreLines: 1,
		LoadLines:  1,
		Scripts: [][]Op{
			{{K: KStore, A: 0}, {K: KStore, A: 1}, {K: KStore, A: 2}},
			{{K: KLoad, A: 0}, {K: KLoad, A: 2}},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("unexpected divergence %s: %s\n%s", res.Div.Check, res.Div.Detail, res.Div.Timeline)
	}
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %+v", res)
	}
}

// TestSpecialsExplore exercises every protocol special op under exhaustive
// interleaving on a small base.
func TestSpecialsExplore(t *testing.T) {
	spec := EnumSpec{Threads: 2, Addrs: 2, Len: 1, Specials: true}
	n := 0
	spec.Enumerate(func(tt *Test) bool {
		res, err := Explore(tt, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tt.Name, err)
		}
		if res.Div != nil {
			t.Fatalf("%s diverged %s: %s\n%s", tt.Name, res.Div.Check, res.Div.Detail, res.Div.Timeline)
		}
		if !res.Exhausted {
			t.Fatalf("%s not exhausted", tt.Name)
		}
		n++
		return true
	})
	if int64(n) != spec.Count() {
		t.Fatalf("enumerated %d tests, Count says %d", n, spec.Count())
	}
}

// TestChaosSelfTest proves the oracle can catch a real forwarding bug: with
// the word-valid bits chaos-disabled, a load of an unwritten word in a
// buffered line returns data-array garbage instead of memory, and the
// checker must diverge with load-value.
func TestChaosSelfTest(t *testing.T) {
	tt := &Test{
		Name:     "chaos-word-valid",
		NCPU:     2,
		Addrs:    2,
		SameLine: true,
		Chaos:    true,
		Scripts: [][]Op{
			{{K: KStore, A: 0}, {K: KLoad, A: 1}},
			{},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("chaos config did not diverge; the oracle is blind to the word-valid bug")
	}
	if res.Div.Check != CheckLoadValue {
		t.Fatalf("expected %s, got %s: %s", CheckLoadValue, res.Div.Check, res.Div.Detail)
	}
}

// TestMinimizeChaos shrinks a padded chaos test back to its two-op core.
func TestMinimizeChaos(t *testing.T) {
	tt := &Test{
		Name:     "chaos-padded",
		NCPU:     2,
		Addrs:    2,
		SameLine: true,
		Chaos:    true,
		Scripts: [][]Op{
			{{K: KLoad, A: 0}, {K: KStore, A: 0}, {K: KLoad, A: 1}, {K: KTrack, A: 1}},
			{{K: KLoad, A: 0}, {K: KLoad, A: 1}},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("padded chaos test did not diverge")
	}
	min, ce := Minimize(tt, res.Div.Check, Options{}, 200)
	if ce == nil {
		t.Fatal("minimization lost the divergence")
	}
	if ce.Check != res.Div.Check {
		t.Fatalf("minimization changed the check: %s -> %s", res.Div.Check, ce.Check)
	}
	ops := 0
	for _, s := range min.Scripts {
		ops += len(s)
	}
	if ops > 2 {
		t.Fatalf("minimized test still has %d ops:\n%+v", ops, min.Scripts)
	}
}

// TestDeepSeeded runs the random-schedule mode and checks determinism of the
// seed.
func TestDeepSeeded(t *testing.T) {
	a, err := Deep(mpTest(), 42, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Deep(mpTest(), 42, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Div != nil {
		t.Fatalf("unexpected divergence: %s", a.Div.Detail)
	}
	if a.Steps != b.Steps || a.Schedules != b.Schedules {
		t.Fatalf("deep mode not deterministic per seed: %+v vs %+v", a, b)
	}
}

// TestReplayRoundTrip replays the exact schedule of a found divergence and
// expects the same check to fire.
func TestReplayRoundTrip(t *testing.T) {
	tt := &Test{
		Name:     "chaos-roundtrip",
		NCPU:     2,
		Addrs:    2,
		SameLine: true,
		Chaos:    true,
		Scripts: [][]Op{
			{{K: KStore, A: 0}, {K: KLoad, A: 1}},
			{},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("no divergence to round-trip")
	}
	ce, err := Replay(&res.Div.Test, res.Div.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil || ce.Check != res.Div.Check {
		t.Fatalf("replay did not reproduce %s: got %+v", res.Div.Check, ce)
	}
}

// TestEnumerateCount sanity-checks the odometer.
func TestEnumerateCount(t *testing.T) {
	spec := EnumSpec{Threads: 2, Addrs: 2, Len: 2}
	n := int64(0)
	spec.Enumerate(func(*Test) bool { n++; return true })
	if n != spec.Count() || n != 256 { // (2*2 ops)^(2*2 slots)
		t.Fatalf("enumerated %d, Count %d, want 256", n, spec.Count())
	}
}
