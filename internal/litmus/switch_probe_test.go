package litmus

import "testing"

// TestSwitchAccountingExhaustive exhaustively explores the multilevel-switch
// scenario whose cycle accounting the litmus machine originally caught
// broken: SwitchSTL used to zero the head's tentative attempt cycles without
// flushing them, so every partial outer iteration's work vanished from the
// Figure-10 buckets (divergence category "stats" at the Switch step). The
// fix flushes the head's attempt to the used buckets before reassignment;
// this test — and the pinned replay case switch_stl_accounting.json — keep
// it that way.
func TestSwitchAccountingExhaustive(t *testing.T) {
	tt := &Test{
		Name:  "switch-accounting",
		NCPU:  2,
		Addrs: 2,
		Scripts: [][]Op{
			{{K: KStore, A: 0}, {K: KSwitch}, {K: KStore, A: 1}},
			{{K: KLoad, A: 0}},
		},
	}
	res, err := Explore(tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("diverged %s: %s\n%s", res.Div.Check, res.Div.Detail, res.Div.Timeline)
	}
	if !res.Exhausted {
		t.Fatal("not exhausted")
	}
}
