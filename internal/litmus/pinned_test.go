package litmus

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var regenPinned = flag.Bool("regen-pinned", false, "regenerate the pinned litmus cases under internal/tls/testdata/litmus")

// pinnedDir is where minimized litmus cases are pinned, per the repo layout:
// they are regression fixtures for internal/tls, replayed on every go test.
const pinnedDir = "../tls/testdata/litmus"

// youngestFirst drives t scheduling the youngest (highest-CPU-index, which
// under round-robin assignment is most-speculative at STL entry) runnable
// thread first — the schedule shape that maximizes exposure of forwarding,
// violation, and park/drain paths. Returns the schedule and any divergence.
func youngestFirst(t *Test) ([]int, *Counterexample) {
	r := &rig{}
	m := newMachine(t, r)
	var schedule []int
	for m.div == nil && !m.done && len(schedule) < 4096 {
		rn := m.runnable()
		if len(rn) == 0 {
			m.diverge(CheckDeadlock, "no runnable CPU but the STL never shut down", -1)
			break
		}
		cpu := rn[len(rn)-1]
		m.step(cpu)
		schedule = append(schedule, cpu)
	}
	if m.done && m.div == nil {
		m.finish()
	}
	return schedule, m.counterexample(schedule)
}

// pinnedSeeds are the protocol scenarios pinned as replayable cases. Each
// non-chaos case must explore clean (exhaustively) and replay clean; the
// chaos case must diverge with its recorded check (oracle self-test).
func pinnedSeeds() []PinnedCase {
	return []PinnedCase{
		{
			Counterexample: Counterexample{
				Check: CheckLoadValue,
				Test: Test{
					Name: "mp_forwarding", NCPU: 2, Addrs: 2,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KStore, A: 1}},
						{{K: KLoad, A: 1}, {K: KLoad, A: 0}},
					},
				},
			},
			Note: "message passing: speculative reads of stale flag/data must be violated and re-forwarded",
		},
		{
			Counterexample: Counterexample{
				Check: CheckViolationSet,
				Test: Test{
					Name: "sb_violation_cascade", NCPU: 3, Addrs: 2,
					Scripts: [][]Op{
						{{K: KStore, A: 0}},
						{{K: KLoad, A: 0}, {K: KStore, A: 1}},
						{{K: KLoad, A: 1}},
					},
				},
			},
			Note: "store-buffering cascade: violating iteration 1 must transitively restart iteration 2",
		},
		{
			Counterexample: Counterexample{
				Check: CheckEpisode,
				Test: Test{
					Name: "overflow_park_tiny_buffers", NCPU: 2, Addrs: 3,
					StoreLines: 1, LoadLines: 1,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KStore, A: 1}, {K: KStore, A: 2}},
						{{K: KLoad, A: 0}, {K: KLoad, A: 2}},
					},
				},
			},
			Note: "one-line buffers: threads must park on overflow and drain only as head, one episode per stretch",
		},
		{
			Counterexample: Counterexample{
				Check: CheckStats,
				Test: Test{
					Name: "switch_stl_accounting", NCPU: 2, Addrs: 2,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KSwitch}, {K: KStore, A: 1}},
						{{K: KLoad, A: 0}},
					},
				},
			},
			Note: "regression: SwitchSTL zeroed the head's unflushed attempt cycles instead of flushing them to the used buckets (Figure-10 leak)",
		},
		{
			Counterexample: Counterexample{
				Check: CheckCommitted,
				Test: Test{
					Name: "demote_solo_midstream", NCPU: 2, Addrs: 2,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KDemote}, {K: KStore, A: 1}},
						{{K: KLoad, A: 0}},
						{{K: KLoad, A: 1}},
					},
				},
			},
			Note: "demote to solo mid-iteration: killed speculation must re-execute sequentially with identical outcome",
		},
		{
			Counterexample: Counterexample{
				Check: CheckFinalMemory,
				Test: Test{
					Name: "early_shutdown", NCPU: 2, Addrs: 2,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KStop}},
						{{K: KStore, A: 1}, {K: KLoad, A: 0}},
					},
				},
			},
			Note: "early STL exit: the head's partial prefix commits, killed younger stores must never reach memory",
		},
		{
			Counterexample: Counterexample{
				Check: CheckLoadValue,
				Test: Test{
					Name: "chaos_word_valid", NCPU: 2, Addrs: 2,
					SameLine: true, Chaos: true,
					Scripts: [][]Op{
						{{K: KStore, A: 0}, {K: KLoad, A: 1}},
						{},
					},
				},
			},
			ExpectDiverge: true,
			Note:          "oracle self-test: with word-valid bits chaos-disabled the checker must catch the line-granularity forwarding bug",
		},
	}
}

// TestRegeneratePinned rewrites the testdata cases when -regen-pinned is
// set; otherwise it only validates that the seeds still behave as pinned
// (exhaustively clean, or divergent for the chaos self-test).
func TestRegeneratePinned(t *testing.T) {
	for _, seed := range pinnedSeeds() {
		seed := seed
		t.Run(seed.Test.Name, func(t *testing.T) {
			res, err := Explore(&seed.Test, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if seed.ExpectDiverge {
				if res.Div == nil {
					t.Fatal("expected divergence, exhaustive exploration was clean")
				}
				if res.Div.Check != seed.Check {
					t.Fatalf("expected %s, got %s: %s", seed.Check, res.Div.Check, res.Div.Detail)
				}
				seed.Schedule = res.Div.Schedule
				seed.Detail = res.Div.Detail
				seed.Timeline = res.Div.Timeline
			} else {
				if res.Div != nil {
					t.Fatalf("pinned scenario diverged %s: %s\n%s", res.Div.Check, res.Div.Detail, res.Div.Timeline)
				}
				schedule, ce := youngestFirst(&seed.Test)
				if ce != nil {
					t.Fatalf("youngest-first replay diverged: %s: %s", ce.Check, ce.Detail)
				}
				seed.Schedule = schedule
			}
			seed.Version = 1
			if !*regenPinned {
				return
			}
			if err := os.MkdirAll(pinnedDir, 0o755); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(pinnedDir, seed.Test.Name+".json")
			if err := WritePinnedCase(path, &seed); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d-step schedule)", path, len(seed.Schedule))
		})
	}
}

// TestPinnedCases is the table-driven replay of every checked-in case
// against the live tls.Unit — the regression gate the ISSUE requires on
// every go test.
func TestPinnedCases(t *testing.T) {
	paths, err := ListPinnedCases(pinnedDir)
	if err != nil {
		t.Fatalf("pinned litmus cases unreadable (run with -regen-pinned to create): %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no pinned litmus cases found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			pc, err := ReadPinnedCase(path)
			if err != nil {
				t.Fatal(err)
			}
			if ok, msg := CheckPinnedCase(pc, Options{}); !ok {
				t.Fatal(msg)
			}
		})
	}
}
