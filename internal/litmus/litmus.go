// Package litmus is an exhaustive small-state model checker for the TLS
// coherence protocol (internal/tls). It drives a real tls.Unit with short
// scripted operation sequences on 2–4 speculative threads over a handful of
// shared addresses, enumerating every thread interleaving by depth-first
// search over schedules, and checks each step and each terminal state against
// two independent oracles:
//
//   - a shadow protocol model (shadow.go): naive maps instead of
//     generation-stamped CAMs, re-deriving forwarding, violation sets,
//     overflow predicates, and Figure-10 cycle accounting from first
//     principles, compared after every step;
//   - a sequential-consistency executor (seq.go): the scripts run one
//     iteration at a time in program order, defining the required final
//     memory, committed-iteration set, and per-committed-iteration observed
//     load values.
//
// The state space is pruned by hashing abstract states (unit structural
// snapshot + shadow + driver state) and cutting revisited subtrees; because
// every unit-versus-shadow observable is re-checked each step before the
// pruning decision, the pruning is sound (see explore.go). Divergences are
// minimized by greedy delta debugging (minimize.go), rendered as aligned
// per-CPU timelines (render.go), and persisted as replayable JSON
// counterexamples (counterexample.go, pinned under
// internal/tls/testdata/litmus/).
package litmus

import (
	"fmt"

	"jrpm/internal/mem"
)

// Kind names one scripted litmus operation. The string values are the JSON
// encoding used in persisted counterexamples.
type Kind string

// Scripted operation kinds. Ld/LdNV/St/Track take an address operand (an
// index into the test's footprint). Partial, Drain, Demote, Switch and Stop
// are head-only: the driver parks the issuing thread until it holds the head
// token, exactly as the hydra machine serializes those handlers.
const (
	KLoad    Kind = "Ld"      // tracked speculative load (exposed read)
	KLoadNV  Kind = "LdNV"    // lwnv: untracked load, can never violate
	KStore   Kind = "St"      // speculative store (write-bus broadcast)
	KTrack   Kind = "Track"   // TrackRead: expose a read without data transfer
	KPartial Kind = "Partial" // CommitPartial: head drains mid-iteration
	KDrain   Kind = "Drain"   // DrainOverflow: head drains an overflow episode
	KVioY    Kind = "VioY"    // ViolateFrom(iter+1): kill all younger threads
	KDemote  Kind = "Demote"  // DemoteSolo: fall back to sequential mode
	KSwitch  Kind = "Switch"  // CommitPartial + KillYounger + SwitchSTL composite
	KStop    Kind = "Stop"    // Shutdown mid-iteration (early STL exit)
)

// headOnly reports whether the kind may only execute on the head thread.
func headOnly(k Kind) bool {
	switch k {
	case KPartial, KDrain, KDemote, KSwitch, KStop:
		return true
	}
	return false
}

// usesAddr reports whether the kind takes an address operand.
func usesAddr(k Kind) bool {
	switch k {
	case KLoad, KLoadNV, KStore, KTrack:
		return true
	}
	return false
}

// validKind reports whether k is a known operation kind.
func validKind(k Kind) bool {
	switch k {
	case KLoad, KLoadNV, KStore, KTrack, KPartial, KDrain, KVioY, KDemote, KSwitch, KStop:
		return true
	}
	return false
}

// Op is one scripted operation. A is the footprint address index for kinds
// that take one; V overrides the stored value when nonzero (zero means the
// deterministic default derived from iteration and pc).
type Op struct {
	K Kind  `json:"k"`
	A int   `json:"a,omitempty"`
	V int64 `json:"v,omitempty"`
}

func (o Op) value(iter int64, pc int) int64 {
	if o.V != 0 {
		return o.V
	}
	return (iter+1)*100 + int64(pc) + 1
}

// Test is one litmus test: scripted operation sequences per loop iteration,
// executed by NCPU speculative threads round-robin (iteration i may run on
// any CPU after restarts and switches; the scripts are indexed by iteration,
// not by CPU). The zero buffer capacities mean the paper's Figure-2 values;
// tiny explicit capacities force the overflow-park/drain paths.
type Test struct {
	Name       string `json:"name,omitempty"`
	NCPU       int    `json:"ncpu"`
	Addrs      int    `json:"addrs"`                 // footprint size (1–4 shared words)
	SameLine   bool   `json:"same_line,omitempty"`   // pack the footprint into one cache line
	StoreLines int    `json:"store_lines,omitempty"` // store buffer lines; 0 = paper (64)
	LoadLines  int    `json:"load_lines,omitempty"`  // load buffer lines; 0 = paper (512)
	Chaos      bool   `json:"chaos,omitempty"`       // ChaosNoWordValid (oracle self-test)
	Scripts    [][]Op `json:"scripts"`               // Scripts[i] = iteration i's ops
}

// footprintBase is the first footprint word address. Line 0 is the memory
// model's null page (never cached) and line 1 is left as a guard, so the
// footprint starts at line 2.
const footprintBase = 2 * mem.LineWords

// memWords sizes the backing memory; the footprint never exceeds a few lines.
const memWords = 1024

// Iters returns the number of scripted iterations.
func (t *Test) Iters() int { return len(t.Scripts) }

// AddrOf maps a footprint index to its word address: consecutive words of
// one line when SameLine, else the first word of consecutive lines.
func (t *Test) AddrOf(i int) mem.Addr {
	if t.SameLine {
		return footprintBase + mem.Addr(i)
	}
	return footprintBase + mem.Addr(i)*mem.LineWords
}

// InitialValue is the pre-test memory value of footprint index i; negative so
// it can never collide with a stored value.
func (t *Test) InitialValue(i int) int64 { return -int64(i) - 1 }

func (t *Test) storeLines() int {
	if t.StoreLines > 0 {
		return t.StoreLines
	}
	return 64
}

func (t *Test) loadLines() int {
	if t.LoadLines > 0 {
		return t.LoadLines
	}
	return 512
}

// Validate checks the test's structural constraints.
func (t *Test) Validate() error {
	if t.NCPU < 2 || t.NCPU > 4 {
		return fmt.Errorf("litmus: NCPU %d out of range [2,4]", t.NCPU)
	}
	if t.Addrs < 1 || t.Addrs > 4 {
		return fmt.Errorf("litmus: Addrs %d out of range [1,4]", t.Addrs)
	}
	if t.SameLine && t.Addrs > mem.LineWords {
		return fmt.Errorf("litmus: %d same-line addrs exceed the %d-word line", t.Addrs, mem.LineWords)
	}
	if len(t.Scripts) < 1 {
		return fmt.Errorf("litmus: no scripted iterations")
	}
	if t.StoreLines < 0 || t.LoadLines < 0 {
		return fmt.Errorf("litmus: negative buffer capacity")
	}
	for i, script := range t.Scripts {
		for pc, op := range script {
			if !validKind(op.K) {
				return fmt.Errorf("litmus: iteration %d pc %d: unknown op kind %q", i, pc, op.K)
			}
			if usesAddr(op.K) && (op.A < 0 || op.A >= t.Addrs) {
				return fmt.Errorf("litmus: iteration %d pc %d: addr index %d out of footprint [0,%d)", i, pc, op.A, t.Addrs)
			}
		}
	}
	return nil
}

// obsRec is one observed tracked-load value: iteration-relative program
// counter, footprint address index, and the value the load returned.
type obsRec struct {
	PC      int   `json:"pc"`
	AddrIdx int   `json:"a"`
	Val     int64 `json:"v"`
}

// clone returns a deep copy of the test (scripts included), for minimization.
func (t *Test) clone() *Test {
	c := *t
	c.Scripts = make([][]Op, len(t.Scripts))
	for i, s := range t.Scripts {
		c.Scripts[i] = append([]Op(nil), s...)
	}
	return &c
}

// fnv64 hashes b with FNV-1a.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// splitmix64 advances x and returns the next value of the splitmix64
// sequence (the seeding PRNG used across the repo's deterministic tools).
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
