package litmus

import "fmt"

// Vocab selects the operation vocabulary the enumerator draws from.
type Vocab int

const (
	// VocabBasic is loads and stores over every footprint address — the
	// classic litmus alphabet (2·Addrs ops).
	VocabBasic Vocab = iota
	// VocabTracked adds TrackRead and the untracked lwnv load (4·Addrs ops).
	VocabTracked
)

// EnumSpec describes one exhaustive enumeration family: every assignment of
// Len vocabulary ops to each of Threads scripted iterations, optionally
// crossed with one special (head-only/protocol) op inserted at every
// position of iteration 0's script.
type EnumSpec struct {
	Threads    int  // scripted iterations (= NCPU; threads run them round-robin)
	Addrs      int  // footprint size
	Len        int  // ops per script
	SameLine   bool // pack the footprint into one line
	StoreLines int  // 0 = paper capacity
	LoadLines  int  // 0 = paper capacity
	Chaos      bool
	Vocab      Vocab
	Specials   bool // cross with one inserted special op per position
}

// vocabulary returns the scripted-op alphabet.
func (s EnumSpec) vocabulary() []Op {
	var ops []Op
	for a := 0; a < s.Addrs; a++ {
		ops = append(ops, Op{K: KLoad, A: a}, Op{K: KStore, A: a})
	}
	if s.Vocab == VocabTracked {
		for a := 0; a < s.Addrs; a++ {
			ops = append(ops, Op{K: KTrack, A: a}, Op{K: KLoadNV, A: a})
		}
	}
	return ops
}

// specials returns the protocol ops the Specials cross inserts: one exposed
// read per address plus every head-only/control op. Bare KillYounger is
// deliberately absent — without the reassignment that Demote/Switch/Shutdown
// pair it with, the head token would land on an unowned iteration.
func (s EnumSpec) specials() []Op {
	ops := []Op{{K: KPartial}, {K: KDrain}, {K: KVioY}, {K: KDemote}, {K: KSwitch}, {K: KStop}}
	for a := 0; a < s.Addrs; a++ {
		ops = append(ops, Op{K: KTrack, A: a})
	}
	return ops
}

// Count returns the number of tests the spec enumerates.
func (s EnumSpec) Count() int64 {
	v := int64(len(s.vocabulary()))
	base := int64(1)
	for i := 0; i < s.Threads*s.Len; i++ {
		base *= v
	}
	if !s.Specials {
		return base
	}
	return base * int64(len(s.specials())) * int64(s.Len+1)
}

// Enumerate yields every test of the family in odometer order, stopping
// early if yield returns false. The yielded *Test is reused across calls;
// clone it to retain.
func (s EnumSpec) Enumerate(yield func(*Test) bool) {
	vocab := s.vocabulary()
	slots := s.Threads * s.Len
	idx := make([]int, slots)
	t := &Test{
		NCPU:       s.Threads,
		Addrs:      s.Addrs,
		SameLine:   s.SameLine,
		StoreLines: s.StoreLines,
		LoadLines:  s.LoadLines,
		Chaos:      s.Chaos,
	}
	seq := 0
	for {
		scripts := make([][]Op, s.Threads)
		for i := 0; i < s.Threads; i++ {
			script := make([]Op, s.Len)
			for j := 0; j < s.Len; j++ {
				script[j] = vocab[idx[i*s.Len+j]]
			}
			scripts[i] = script
		}
		if s.Specials {
			for _, sp := range s.specials() {
				for pos := 0; pos <= s.Len; pos++ {
					t.Scripts = insertOp(scripts, 0, pos, sp)
					t.Name = fmt.Sprintf("e%dt%da-%d-%s@%d", s.Threads, s.Addrs, seq, sp.K, pos)
					if !yield(t) {
						return
					}
				}
			}
		} else {
			t.Scripts = scripts
			t.Name = fmt.Sprintf("e%dt%da-%d", s.Threads, s.Addrs, seq)
			if !yield(t) {
				return
			}
		}
		seq++
		// Odometer increment.
		k := 0
		for ; k < slots; k++ {
			idx[k]++
			if idx[k] < len(vocab) {
				break
			}
			idx[k] = 0
		}
		if k == slots {
			return
		}
	}
}

// insertOp returns scripts with op inserted at position pos of script i
// (scripts themselves are not mutated).
func insertOp(scripts [][]Op, i, pos int, op Op) [][]Op {
	out := make([][]Op, len(scripts))
	copy(out, scripts)
	s := scripts[i]
	ns := make([]Op, 0, len(s)+1)
	ns = append(ns, s[:pos]...)
	ns = append(ns, op)
	ns = append(ns, s[pos:]...)
	out[i] = ns
	return out
}
