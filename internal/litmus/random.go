package litmus

import "fmt"

// RandomTest samples one test of the spec's shape with splitmix64: every
// script slot drawn uniformly from the vocabulary, plus (when Specials) one
// uniformly chosen protocol op inserted at a uniform position of iteration
// 0's script. Deterministic per rng state; idx only names the test.
func RandomTest(spec EnumSpec, rng *uint64, idx int) *Test {
	vocab := spec.vocabulary()
	t := &Test{
		Name:       fmt.Sprintf("d%dt%da-%d", spec.Threads, spec.Addrs, idx),
		NCPU:       spec.Threads,
		Addrs:      spec.Addrs,
		SameLine:   spec.SameLine,
		StoreLines: spec.StoreLines,
		LoadLines:  spec.LoadLines,
		Chaos:      spec.Chaos,
		Scripts:    make([][]Op, spec.Threads),
	}
	for i := range t.Scripts {
		script := make([]Op, spec.Len)
		for j := range script {
			script[j] = vocab[splitmix64(rng)%uint64(len(vocab))]
		}
		t.Scripts[i] = script
	}
	if spec.Specials {
		sp := spec.specials()
		op := sp[splitmix64(rng)%uint64(len(sp))]
		pos := int(splitmix64(rng) % uint64(spec.Len+1))
		t.Scripts = insertOp(t.Scripts, 0, pos, op)
		t.Name = fmt.Sprintf("%s-%s@%d", t.Name, op.K, pos)
	}
	return t
}
