package litmus

import (
	"fmt"
	"time"
)

// Options bounds an exploration.
type Options struct {
	// MaxSteps caps one schedule's length; exceeding it is itself a
	// divergence (a runaway protocol never reaching shutdown). 0 = 4096.
	MaxSteps int
	// MaxSchedules stops after this many completed schedules (0 = no cap);
	// the result then reports Exhausted=false.
	MaxSchedules int
	// NoPrune disables abstract-state revisit pruning (the zero value prunes).
	NoPrune bool
	// Deadline stops the exploration when passed (zero = none).
	Deadline time.Time
}

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 4096
}

// Result summarizes an exploration.
type Result struct {
	Schedules int             // complete schedules executed to termination
	Pruned    int             // schedules cut at a revisited abstract state
	Steps     int64           // total steps executed across all replays
	Exhausted bool            // every interleaving was covered (or pruned as revisited)
	Div       *Counterexample // first divergence found, nil if none
}

// frame is one DFS decision point: which runnable CPU was chosen, out of how
// many. The recorded count doubles as a replay-determinism check.
type frame struct {
	chosen, n int
}

// Explore enumerates every interleaving of t's scripts by stateless DFS:
// each schedule is replayed from a fresh machine following the decision
// stack, then extended first-choice-first until the run terminates, diverges,
// or reaches an abstract state already fully explored (the prune). Soundness
// of the prune rests on the driver re-checking every unit-versus-shadow
// observable each step before the hash is taken — two states with equal
// hashes are equal in everything that can influence any future check.
func Explore(t *Test, opt Options) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	var stack []frame
	visited := make(map[uint64]struct{})
	r := &rig{}
	schedule := make([]int, 0, 64)
	freshFrom := 1 // depth from which states were not visited by a previous replay
	for {
		if opt.MaxSchedules > 0 && res.Schedules+res.Pruned >= opt.MaxSchedules {
			return res, nil
		}
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) {
			return res, nil
		}
		m := newMachine(t, r)
		schedule = schedule[:0]
		depth := 0
		pruned := false
		for m.div == nil && !m.done {
			rn := m.runnable()
			if len(rn) == 0 {
				m.diverge(CheckDeadlock, "no runnable CPU but the STL never shut down", -1)
				break
			}
			var f frame
			if depth < len(stack) {
				f = stack[depth]
				if f.n != len(rn) {
					m.diverge(CheckNondet,
						fmt.Sprintf("replay depth %d: runnable count %d, recorded %d", depth, len(rn), f.n), -1)
					break
				}
			} else {
				f = frame{chosen: 0, n: len(rn)}
				stack = append(stack, f)
			}
			cpu := rn[f.chosen]
			m.step(cpu)
			schedule = append(schedule, cpu)
			depth++
			res.Steps++
			if m.div != nil {
				break
			}
			if depth >= opt.maxSteps() && !m.done {
				m.diverge(CheckStepBound, fmt.Sprintf("schedule exceeded %d steps without shutdown", opt.maxSteps()), -1)
				break
			}
			if !opt.NoPrune && depth >= freshFrom {
				h := m.hash()
				if _, seen := visited[h]; seen {
					pruned = true
					break
				}
				visited[h] = struct{}{}
			}
		}
		if m.done && m.div == nil {
			m.finish()
		}
		if m.div != nil {
			res.Div = m.counterexample(schedule)
			return res, nil
		}
		if pruned {
			res.Pruned++
		} else {
			res.Schedules++
			r.dirty = false // clean shutdown: the rig is reusable as-is
		}
		// Backtrack: pop exhausted decision points, advance the deepest
		// still-open one. States at or past the new stack depth are fresh.
		for len(stack) > 0 && stack[len(stack)-1].chosen == stack[len(stack)-1].n-1 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			res.Exhausted = true
			return res, nil
		}
		stack[len(stack)-1].chosen++
		freshFrom = len(stack)
	}
}

// Deep runs random schedules: at every step a splitmix64-seeded pick among
// the runnable CPUs. No pruning, no exhaustion — a sampling sweep for
// configurations too large to enumerate.
func Deep(t *Test, seed uint64, schedules int, opt Options) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	r := &rig{}
	rng := seed
	schedule := make([]int, 0, 64)
	for s := 0; s < schedules; s++ {
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) {
			return res, nil
		}
		m := newMachine(t, r)
		schedule = schedule[:0]
		for m.div == nil && !m.done {
			rn := m.runnable()
			if len(rn) == 0 {
				m.diverge(CheckDeadlock, "no runnable CPU but the STL never shut down", -1)
				break
			}
			cpu := rn[int(splitmix64(&rng)%uint64(len(rn)))]
			m.step(cpu)
			schedule = append(schedule, cpu)
			res.Steps++
			if len(schedule) >= opt.maxSteps() && !m.done {
				m.diverge(CheckStepBound, fmt.Sprintf("schedule exceeded %d steps without shutdown", opt.maxSteps()), -1)
				break
			}
		}
		if m.done && m.div == nil {
			m.finish()
		}
		if m.div != nil {
			res.Div = m.counterexample(schedule)
			return res, nil
		}
		res.Schedules++
		r.dirty = false
	}
	return res, nil
}

// Replay re-executes a persisted schedule against the live unit. Each
// scheduled CPU must be runnable at its step (a stale schedule after a
// protocol change reports as nondeterminism); once the schedule is consumed,
// the run continues first-runnable-first to termination so the terminal
// oracles still apply. Returns the divergence found, or nil for a clean run.
func Replay(t *Test, schedule []int, opt Options) (*Counterexample, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := &rig{}
	m := newMachine(t, r)
	executed := make([]int, 0, len(schedule))
	steps := 0
	for i := 0; m.div == nil && !m.done; i++ {
		rn := m.runnable()
		if len(rn) == 0 {
			m.diverge(CheckDeadlock, "no runnable CPU but the STL never shut down", -1)
			break
		}
		var cpu int
		if i < len(schedule) {
			cpu = schedule[i]
			ok := false
			for _, c := range rn {
				if c == cpu {
					ok = true
					break
				}
			}
			if !ok {
				m.diverge(CheckNondet,
					fmt.Sprintf("replay step %d: scheduled cpu %d not runnable (runnable %v)", i, cpu, rn), -1)
				break
			}
		} else {
			cpu = rn[0]
		}
		m.step(cpu)
		executed = append(executed, cpu)
		steps++
		if steps >= opt.maxSteps() && !m.done {
			m.diverge(CheckStepBound, fmt.Sprintf("replay exceeded %d steps without shutdown", opt.maxSteps()), -1)
			break
		}
	}
	if m.done && m.div == nil {
		m.finish()
	}
	return m.counterexample(executed), nil
}
