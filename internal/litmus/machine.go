package litmus

import (
	"encoding/binary"
	"fmt"

	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// Divergence categories, in the order the checks run. Every category names
// one specific oracle disagreement so minimization can preserve the failure
// mode while shrinking the test.
const (
	CheckLoadValue    = "load-value"         // Load returned a different value than the shadow forwards
	CheckViolationSet = "violation-set"      // Store/ViolateFrom violated a different CPU set
	CheckKilledSet    = "killed-set"         // KillYounger/Shutdown killed a different CPU set
	CheckEpisode      = "episode"            // DrainOverflow's new-episode verdict differs
	CheckStepError    = "step-error"         // the unit refused an operation the protocol allows
	CheckIteration    = "iteration-state"    // per-CPU iteration assignment differs
	CheckHeadState    = "head-state"         // head token / active / solo / STL id differs
	CheckOverflowPred = "overflow-predicate" // StoreOverflow/LoadOverflow differs
	CheckMemory       = "memory"             // committed memory differs mid-run
	CheckStats        = "stats"              // Figure-10 StateStats buckets differ
	CheckCounters     = "counters"           // commit/violation/overflow/buffer-usage counters differ
	CheckDeadlock     = "deadlock"           // no runnable CPU but the STL never shut down
	CheckNondet       = "nondeterminism"     // a replayed prefix produced a different runnable set
	CheckStepBound    = "step-bound"         // a schedule exceeded MaxSteps (runaway protocol)
	CheckFinalMemory  = "final-memory"       // terminal memory differs from the sequential oracle
	CheckObserved     = "observed-loads"     // a committed iteration observed non-sequential values
	CheckCommitted    = "committed-set"      // the committed-iteration sequence differs
)

// Divergence describes one oracle disagreement, anchored to the trace step
// where it surfaced and (when meaningful) the earlier step it conflicts with.
type Divergence struct {
	Check   string `json:"check"`
	Detail  string `json:"detail"`
	Step    int    `json:"step"`    // trace index, -1 for terminal-only checks
	Related int    `json:"related"` // earlier conflicting trace index, -1 if none
}

// stepRec is one executed schedule step, for timeline rendering and for
// locating the offending read/write pair of a divergence.
type stepRec struct {
	CPU     int    `json:"cpu"`
	Iter    int64  `json:"iter"`
	AddrIdx int    `json:"a"`           // footprint index touched, -1 if none
	Read    bool   `json:"r,omitempty"` // step observed the address
	Write   bool   `json:"w,omitempty"` // step published to the address
	Text    string `json:"text"`
}

// cpuState is the driver's per-CPU script cursor.
type cpuState struct {
	pc  int
	obs []obsRec // tracked loads of the current attempt
}

// machine drives one litmus test execution: a real tls.Unit and the shadow
// oracle in lockstep, one scheduled CPU step at a time.
type machine struct {
	t      *Test
	unit   *tls.Unit
	memory *mem.Memory
	sh     *shadow

	cpus      []cpuState
	committed []int64
	commObs   map[int64][]obsRec
	stl       int64
	done      bool
	div       *Divergence

	trace   []stepRec
	scratch []byte
}

// rig caches a tls.Unit (plus memory and caches) across runs with the same
// hardware shape. After a clean shutdown the unit is structurally pristine —
// generation-stamped buffers self-clean, ResetStats clears the counters, and
// only the footprint words need rewriting. Cache LRU state carries over, but
// the driver charges fixed per-op cycles and never observes latencies, so it
// cannot influence any check. A run that diverged (or was abandoned
// mid-schedule) marks the rig dirty and the next run rebuilds from scratch.
type rig struct {
	key    rigKey
	unit   *tls.Unit
	memory *mem.Memory
	dirty  bool
}

type rigKey struct {
	ncpu, storeLines, loadLines int
	chaos                       bool
}

func (t *Test) rigKey() rigKey {
	return rigKey{ncpu: t.NCPU, storeLines: t.storeLines(), loadLines: t.loadLines(), chaos: t.Chaos}
}

func newMachine(t *Test, r *rig) *machine {
	key := t.rigKey()
	// A rig abandoned mid-run (pruned schedule) is restored by shutting down
	// its head: Shutdown flushes and generation-clears every thread, leaving
	// the unit structurally pristine for ResetStats. Only a unit that has
	// already diverged is untrusted — and a divergence ends the exploration,
	// so such a rig is never offered for reuse.
	if r.unit != nil && r.key == key && r.dirty && r.unit.Active() {
		for c := 0; c < key.ncpu; c++ {
			if r.unit.IsHead(c) {
				if _, err := r.unit.Shutdown(c); err == nil {
					r.dirty = false
				}
				break
			}
		}
	} else if r.unit != nil && r.key == key && r.dirty && !r.unit.Active() {
		// Inactive means the last run reached Shutdown; structurally clean.
		r.dirty = false
	}
	if r.unit == nil || r.key != key || r.dirty {
		memory := mem.NewMemory(memWords)
		caches := mem.NewCacheSim(mem.DefaultCacheConfig(t.NCPU))
		cfg := tls.Config{
			NCPU:             t.NCPU,
			StoreBufferLines: key.storeLines,
			LoadBufferLines:  key.loadLines,
			Handlers:         tls.NewHandlers,
			ChaosNoWordValid: t.Chaos,
		}
		r.unit = tls.NewUnit(cfg, memory, caches)
		r.memory = memory
		r.key = key
	}
	r.dirty = true
	r.unit.ResetStats()
	for i := 0; i < t.Addrs; i++ {
		r.memory.Write(t.AddrOf(i), t.InitialValue(i))
	}
	m := &machine{
		t:       t,
		unit:    r.unit,
		memory:  r.memory,
		sh:      newShadow(t),
		cpus:    make([]cpuState, t.NCPU),
		commObs: make(map[int64][]obsRec),
		stl:     1,
	}
	if err := m.unit.StartAt(1, 0, 0); err != nil {
		m.diverge(CheckStepError, fmt.Sprintf("StartAt: %v", err), -1)
		return m
	}
	m.sh.startAt(1, 0, 0)
	m.postChecks()
	return m
}

func (m *machine) diverge(check, detail string, related int) {
	if m.div != nil {
		return
	}
	m.div = &Divergence{Check: check, Detail: detail, Step: len(m.trace) - 1, Related: related}
}

// runnable returns the CPUs that may take a step, in ascending CPU order.
// The rules encode the protocol's own serialization: dead threads never run;
// an overflowed thread parks until it is head (its only move is the drain); a
// phantom thread (iteration past the last script) waits to become head and
// shut the STL down; a thread done with its script waits to become head and
// commit; head-only scripted ops park the thread until it holds the token.
func (m *machine) runnable() []int {
	var r []int
	for c := 0; c < m.t.NCPU; c++ {
		iter := m.sh.th[c].iter
		if iter < 0 || !m.sh.active {
			continue
		}
		isHead := m.sh.isHead(c)
		if m.sh.storeOverflow(c) || m.sh.loadOverflow(c) {
			if isHead {
				r = append(r, c)
			}
			continue
		}
		if iter >= int64(m.t.Iters()) {
			if isHead {
				r = append(r, c)
			}
			continue
		}
		script := m.t.Scripts[iter]
		if m.cpus[c].pc >= len(script) {
			if isHead {
				r = append(r, c)
			}
			continue
		}
		if headOnly(script[m.cpus[c].pc].K) && !isHead {
			continue
		}
		r = append(r, c)
	}
	return r
}

func (m *machine) chargeRun(c int) {
	m.unit.ChargeAttempt(c, tls.ChargeRun, 1)
	m.sh.charge(c, tls.ChargeRun, 1)
}

func (m *machine) record(c int, iter int64, addrIdx int, read, write bool, text string) {
	m.trace = append(m.trace, stepRec{CPU: c, Iter: iter, AddrIdx: addrIdx, Read: read, Write: write, Text: text})
}

// relatedStep scans backwards from the end of the trace for the most recent
// earlier step that touched addrIdx with the given access direction — the
// other half of the offending read/write pair.
func (m *machine) relatedStep(addrIdx int, write bool) int {
	for i := len(m.trace) - 2; i >= 0; i-- {
		s := m.trace[i]
		if s.AddrIdx == addrIdx && ((write && s.Write) || (!write && s.Read)) {
			return i
		}
	}
	return -1
}

// onViolated resets the driver cursors of restarted CPUs: the protocol
// redirects their PCs to the STL restart point, discarding the attempt.
func (m *machine) onViolated(cpus []int) {
	for _, c := range cpus {
		m.cpus[c].pc = 0
		m.cpus[c].obs = nil
	}
}

// resetOthers resets every cursor except keep's (after a Switch reassigns
// iterations, or after kills).
func (m *machine) resetOthers(keep int) {
	for c := range m.cpus {
		if c != keep {
			m.cpus[c].pc = 0
			m.cpus[c].obs = nil
		}
	}
}

// step executes one schedule step on CPU c. The caller guarantees c was in
// runnable(). Every step ends with the full unit-versus-shadow check sweep.
func (m *machine) step(c int) {
	iter := m.sh.th[c].iter
	cs := &m.cpus[c]

	// Parked head: the forced move is the overflow drain, charged as a wait
	// cycle (the thread is stalled, not computing).
	if m.sh.storeOverflow(c) || m.sh.loadOverflow(c) {
		m.unit.ChargeAttempt(c, tls.ChargeWait, 1)
		m.sh.charge(c, tls.ChargeWait, 1)
		gotEp, err := m.unit.DrainOverflow(c)
		wantEp := m.sh.drainOverflow(c)
		text := "drain"
		if wantEp {
			text = "drain(ep)"
		}
		m.record(c, iter, -1, false, true, text)
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("DrainOverflow: %v", err), -1)
			return
		}
		if gotEp != wantEp {
			m.diverge(CheckEpisode, fmt.Sprintf("DrainOverflow new-episode: unit %v, shadow %v", gotEp, wantEp), -1)
			return
		}
		m.postChecks()
		return
	}

	// Phantom head: every scripted iteration has committed; the STL exits.
	if iter >= int64(m.t.Iters()) {
		gotKilled, err := m.unit.Shutdown(c)
		wantKilled := m.sh.shutdown(c)
		m.record(c, iter, -1, false, false, "shutdown")
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("Shutdown: %v", err), -1)
			return
		}
		if !equalInts(gotKilled, wantKilled) {
			m.diverge(CheckKilledSet, fmt.Sprintf("Shutdown killed: unit %v, shadow %v", gotKilled, wantKilled), -1)
			return
		}
		m.done = true
		m.postChecks()
		return
	}

	script := m.t.Scripts[iter]

	// Script finished: the head commits and picks up the next iteration.
	if cs.pc >= len(script) {
		err := m.unit.CommitEOI(c)
		m.sh.commitEOI(c)
		m.record(c, iter, -1, false, true, fmt.Sprintf("commit #%d", iter))
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("CommitEOI: %v", err), -1)
			return
		}
		m.committed = append(m.committed, iter)
		m.commObs[iter] = cs.obs
		cs.obs = nil
		cs.pc = 0
		m.postChecks()
		return
	}

	op := script[cs.pc]
	switch op.K {
	case KLoad, KLoadNV:
		m.chargeRun(c)
		a := m.t.AddrOf(op.A)
		got, _ := m.unit.Load(c, a, op.K == KLoadNV)
		want := m.sh.load(c, a, op.K == KLoad)
		m.record(c, iter, op.A, true, false, fmt.Sprintf("%s x%d=%d", op.K, op.A, got))
		if got != want {
			m.diverge(CheckLoadValue,
				fmt.Sprintf("cpu %d iter %d pc %d: Load x%d: unit %d, shadow %d", c, iter, cs.pc, op.A, got, want),
				m.relatedStep(op.A, true))
			return
		}
		if op.K == KLoad {
			cs.obs = append(cs.obs, obsRec{PC: cs.pc, AddrIdx: op.A, Val: got})
		}
		cs.pc++

	case KStore:
		m.chargeRun(c)
		a := m.t.AddrOf(op.A)
		v := op.value(iter, cs.pc)
		_, gotVio, err := m.unit.Store(c, a, v)
		wantVio := m.sh.store(c, a, v)
		text := fmt.Sprintf("St x%d=%d", op.A, v)
		if len(wantVio) > 0 {
			text += fmt.Sprintf(" viol%v", wantVio)
		}
		m.record(c, iter, op.A, false, true, text)
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("Store: %v", err), -1)
			return
		}
		if !equalInts(gotVio, wantVio) {
			m.diverge(CheckViolationSet,
				fmt.Sprintf("cpu %d iter %d pc %d: St x%d violated: unit %v, shadow %v", c, iter, cs.pc, op.A, gotVio, wantVio),
				m.relatedStep(op.A, false))
			return
		}
		m.onViolated(gotVio)
		cs.pc++

	case KTrack:
		m.chargeRun(c)
		a := m.t.AddrOf(op.A)
		m.unit.TrackRead(c, a)
		m.sh.track(c, a)
		m.record(c, iter, op.A, true, false, fmt.Sprintf("Track x%d", op.A))
		cs.pc++

	case KPartial:
		m.chargeRun(c)
		err := m.unit.CommitPartial(c)
		m.sh.partial(c)
		m.record(c, iter, -1, false, true, "partial")
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("CommitPartial: %v", err), -1)
			return
		}
		cs.pc++

	case KDrain:
		m.chargeRun(c)
		gotEp, err := m.unit.DrainOverflow(c)
		wantEp := m.sh.drainOverflow(c)
		text := "Drain"
		if wantEp {
			text = "Drain(ep)"
		}
		m.record(c, iter, -1, false, true, text)
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("DrainOverflow: %v", err), -1)
			return
		}
		if gotEp != wantEp {
			m.diverge(CheckEpisode, fmt.Sprintf("scripted Drain new-episode: unit %v, shadow %v", gotEp, wantEp), -1)
			return
		}
		cs.pc++

	case KVioY:
		m.chargeRun(c)
		gotVio := m.unit.ViolateFrom(iter + 1)
		wantVio := m.sh.violateFrom(iter + 1)
		m.record(c, iter, -1, false, false, fmt.Sprintf("VioY viol%v", wantVio))
		if !equalInts(gotVio, wantVio) {
			m.diverge(CheckViolationSet,
				fmt.Sprintf("cpu %d iter %d: ViolateFrom(%d): unit %v, shadow %v", c, iter, iter+1, gotVio, wantVio), -1)
			return
		}
		m.onViolated(gotVio)
		cs.pc++

	case KDemote:
		m.chargeRun(c)
		gotKilled, err := m.unit.DemoteSolo(c)
		wantKilled := m.sh.demote(c)
		m.record(c, iter, -1, false, false, fmt.Sprintf("Demote kill%v", wantKilled))
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("DemoteSolo: %v", err), -1)
			return
		}
		if !equalInts(gotKilled, wantKilled) {
			m.diverge(CheckKilledSet, fmt.Sprintf("DemoteSolo killed: unit %v, shadow %v", gotKilled, wantKilled), -1)
			return
		}
		m.onViolated(gotKilled) // dead cursors are inert, but keep them clean
		cs.pc++

	case KSwitch:
		// The multilevel-switch composite, exactly as hydra's doSwitchIn/Out
		// issue it: publish the head's partial buffer, kill the younger
		// threads, then reassign the active unit to a new STL id with the
		// head keeping its iteration.
		m.chargeRun(c)
		if err := m.unit.CommitPartial(c); err != nil {
			m.record(c, iter, -1, false, true, "Switch")
			m.diverge(CheckStepError, fmt.Sprintf("Switch/CommitPartial: %v", err), -1)
			return
		}
		m.sh.partial(c)
		gotKilled := m.unit.KillYounger(c)
		wantKilled := m.sh.killYounger(c)
		m.record(c, iter, -1, false, true, fmt.Sprintf("Switch kill%v", wantKilled))
		if !equalInts(gotKilled, wantKilled) {
			m.diverge(CheckKilledSet, fmt.Sprintf("Switch killed: unit %v, shadow %v", gotKilled, wantKilled), -1)
			return
		}
		m.stl++
		err := m.unit.SwitchSTL(m.stl, c, iter)
		m.sh.switchSTL(m.stl, c)
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("SwitchSTL: %v", err), -1)
			return
		}
		// Iterations were reassigned; every other cursor restarts.
		m.resetOthers(c)
		cs.pc++

	case KStop:
		// Early STL exit: the head shuts down mid-iteration. Its partial
		// attempt commits (the prefix before Stop reached memory), every
		// younger thread dies with its work discarded.
		m.chargeRun(c)
		gotKilled, err := m.unit.Shutdown(c)
		wantKilled := m.sh.shutdown(c)
		m.record(c, iter, -1, false, true, fmt.Sprintf("stop kill%v", wantKilled))
		if err != nil {
			m.diverge(CheckStepError, fmt.Sprintf("Stop/Shutdown: %v", err), -1)
			return
		}
		if !equalInts(gotKilled, wantKilled) {
			m.diverge(CheckKilledSet, fmt.Sprintf("Stop killed: unit %v, shadow %v", gotKilled, wantKilled), -1)
			return
		}
		m.committed = append(m.committed, iter)
		m.commObs[iter] = cs.obs
		cs.obs = nil
		m.done = true

	default:
		m.diverge(CheckStepError, fmt.Sprintf("unknown op kind %q", op.K), -1)
		return
	}
	m.postChecks()
}

// postChecks is the full unit-versus-shadow sweep run after every step:
// per-CPU iteration/head/overflow state, activation mode, committed memory
// over the footprint, and every cumulative counter. Catching drift at the
// step it first appears is what makes the explorer's state-hash pruning
// sound — no unverified difference can hide behind an equal hash.
func (m *machine) postChecks() {
	if m.div != nil {
		return
	}
	for c := 0; c < m.t.NCPU; c++ {
		if got, want := m.unit.Iteration(c), m.sh.th[c].iter; got != want {
			m.diverge(CheckIteration, fmt.Sprintf("cpu %d iteration: unit %d, shadow %d", c, got, want), -1)
			return
		}
		if got, want := m.unit.IsHead(c), m.sh.isHead(c); got != want {
			m.diverge(CheckHeadState, fmt.Sprintf("cpu %d IsHead: unit %v, shadow %v", c, got, want), -1)
			return
		}
		if got, want := m.unit.StoreOverflow(c), m.sh.storeOverflow(c); got != want {
			m.diverge(CheckOverflowPred, fmt.Sprintf("cpu %d StoreOverflow: unit %v, shadow %v", c, got, want), -1)
			return
		}
		if got, want := m.unit.LoadOverflow(c), m.sh.loadOverflow(c); got != want {
			m.diverge(CheckOverflowPred, fmt.Sprintf("cpu %d LoadOverflow: unit %v, shadow %v", c, got, want), -1)
			return
		}
	}
	if got, want := m.unit.Active(), m.sh.active; got != want {
		m.diverge(CheckHeadState, fmt.Sprintf("Active: unit %v, shadow %v", got, want), -1)
		return
	}
	if got, want := m.unit.Solo(), m.sh.soloActive(); got != want {
		m.diverge(CheckHeadState, fmt.Sprintf("Solo: unit %v, shadow %v", got, want), -1)
		return
	}
	if m.sh.active && m.unit.STL() != m.sh.stl {
		m.diverge(CheckHeadState, fmt.Sprintf("STL id: unit %d, shadow %d", m.unit.STL(), m.sh.stl), -1)
		return
	}
	for i := 0; i < m.t.Addrs; i++ {
		a := m.t.AddrOf(i)
		if got, want := m.memory.Read(a), m.sh.mem[a]; got != want {
			m.diverge(CheckMemory, fmt.Sprintf("memory x%d: unit %d, shadow %d", i, got, want), m.relatedStep(i, true))
			return
		}
	}
	if m.unit.Stats != m.sh.stats {
		m.diverge(CheckStats, fmt.Sprintf("StateStats: unit %+v, shadow %+v", m.unit.Stats, m.sh.stats), -1)
		return
	}
	if m.unit.Commits != m.sh.commits || m.unit.Violations != m.sh.violations || m.unit.Overflows != m.sh.overflows {
		m.diverge(CheckCounters, fmt.Sprintf("commits/violations/overflows: unit %d/%d/%d, shadow %d/%d/%d",
			m.unit.Commits, m.unit.Violations, m.unit.Overflows, m.sh.commits, m.sh.violations, m.sh.overflows), -1)
		return
	}
	if m.unit.MaxStoreLines != m.sh.maxStore || m.unit.MaxLoadLines != m.sh.maxLoad {
		m.diverge(CheckCounters, fmt.Sprintf("max buffer lines: unit %d/%d, shadow %d/%d",
			m.unit.MaxStoreLines, m.unit.MaxLoadLines, m.sh.maxStore, m.sh.maxLoad), -1)
		return
	}
	gotAvgS, gotAvgL := m.unit.AvgBufferLines()
	wantAvgS, wantAvgL := m.sh.avgBufferLines()
	if gotAvgS != wantAvgS || gotAvgL != wantAvgL {
		m.diverge(CheckCounters, fmt.Sprintf("avg buffer lines: unit %g/%g, shadow %g/%g",
			gotAvgS, gotAvgL, wantAvgS, wantAvgL), -1)
		return
	}
}

// finish runs the terminal sequential-consistency checks after a clean
// shutdown: committed-iteration sequence, final memory, per-committed
// tracked-load observations, and exact cycle conservation.
func (m *machine) finish() {
	if m.div != nil || !m.done {
		return
	}
	seq := runSeq(m.t)
	if !equalInt64s(m.committed, seq.committed) {
		m.diverge(CheckCommitted, fmt.Sprintf("committed iterations: tls %v, sequential %v", m.committed, seq.committed), -1)
		return
	}
	for i := 0; i < m.t.Addrs; i++ {
		if got, want := m.memory.Read(m.t.AddrOf(i)), seq.mem[i]; got != want {
			m.diverge(CheckFinalMemory, fmt.Sprintf("final memory x%d: tls %d, sequential %d", i, got, want), m.relatedStep(i, true))
			return
		}
	}
	for _, iter := range m.committed {
		got, want := m.commObs[iter], seq.obs[iter]
		if len(got) != len(want) {
			m.diverge(CheckObserved, fmt.Sprintf("iteration %d observed %d tracked loads, sequential %d", iter, len(got), len(want)), -1)
			return
		}
		for j := range got {
			if got[j] != want[j] {
				m.diverge(CheckObserved,
					fmt.Sprintf("iteration %d pc %d: observed x%d=%d, sequential %d", iter, got[j].PC, got[j].AddrIdx, got[j].Val, want[j].Val),
					m.relatedStep(got[j].AddrIdx, true))
				return
			}
		}
	}
	// Cycle conservation: every charged cycle and handler cost — and nothing
	// else — must land in exactly one Figure-10 bucket.
	if total, want := m.unit.Stats.Total(), m.sh.chargedWork+m.sh.chargedHandlers; total != want {
		m.diverge(CheckStats, fmt.Sprintf("cycle conservation: buckets total %d, charged %d", total, want), -1)
		return
	}
	for c := range m.sh.th {
		t := &m.sh.th[c]
		if t.run != 0 || t.wait != 0 || t.overhead != 0 {
			m.diverge(CheckStats, fmt.Sprintf("cpu %d has unflushed attempt cycles at shutdown: %d/%d/%d", c, t.run, t.wait, t.overhead), -1)
			return
		}
	}
}

// hash digests the full abstract state — unit structural snapshot, shadow,
// and driver cursors/observations/committed history — for revisit pruning.
func (m *machine) hash() uint64 {
	b := m.scratch[:0]
	b = m.unit.DebugAppendState(b)
	b = m.sh.appendState(b)
	for c := range m.cpus {
		cs := &m.cpus[c]
		b = binary.LittleEndian.AppendUint32(b, uint32(cs.pc))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(cs.obs)))
		for _, o := range cs.obs {
			b = binary.LittleEndian.AppendUint32(b, uint32(o.PC))
			b = binary.LittleEndian.AppendUint32(b, uint32(o.AddrIdx))
			b = binary.LittleEndian.AppendUint64(b, uint64(o.Val))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.committed)))
	for _, iter := range m.committed {
		b = binary.LittleEndian.AppendUint64(b, uint64(iter))
		obs := m.commObs[iter]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(obs)))
		for _, o := range obs {
			b = binary.LittleEndian.AppendUint32(b, uint32(o.PC))
			b = binary.LittleEndian.AppendUint32(b, uint32(o.AddrIdx))
			b = binary.LittleEndian.AppendUint64(b, uint64(o.Val))
		}
	}
	m.scratch = b
	return fnv64(b)
}

// counterexample packages the machine's divergence for persistence/replay.
func (m *machine) counterexample(schedule []int) *Counterexample {
	if m.div == nil {
		return nil
	}
	return &Counterexample{
		Version:  1,
		Check:    m.div.Check,
		Detail:   m.div.Detail,
		Test:     *m.t,
		Schedule: append([]int(nil), schedule...),
		Timeline: renderTimeline(m.t, m.trace, m.div),
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
