package litmus

import "testing"

// TestCrossCheckPruneFamily verifies over a whole (small, overflow-forcing)
// enumeration family that abstract-state pruning never changes a verdict:
// pruned and full exploration agree on every test. The larger families run
// the same cross-check in the CI litmus step.
func TestCrossCheckPruneFamily(t *testing.T) {
	spec := EnumSpec{Threads: 2, Addrs: 2, Len: 2, StoreLines: 1, LoadLines: 1}
	n := 0
	spec.Enumerate(func(tt *Test) bool {
		p, err := Explore(tt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Explore(tt.clone(), Options{NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if (p.Div == nil) != (f.Div == nil) {
			t.Fatalf("%s: prune verdict mismatch: pruned %+v vs full %+v", tt.Name, p.Div, f.Div)
		}
		if !p.Exhausted || !f.Exhausted {
			t.Fatalf("%s: not exhausted", tt.Name)
		}
		if f.Schedules < p.Schedules {
			t.Fatalf("%s: full walk ran fewer schedules (%d) than pruned (%d)", tt.Name, f.Schedules, p.Schedules)
		}
		n++
		return true
	})
	if n != 256 {
		t.Fatalf("cross-checked %d tests, want 256", n)
	}
}
