package litmus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Counterexample is a replayable divergence record: the test, the exact
// schedule (CPU id per step) that exposed it, the oracle check that fired,
// and a rendered timeline for humans. Persisted as JSON under
// internal/tls/testdata/litmus/ (regression pins) and by jrpm-litmus -out.
type Counterexample struct {
	Version  int    `json:"version"`
	Check    string `json:"check"`
	Detail   string `json:"detail"`
	Test     Test   `json:"test"`
	Schedule []int  `json:"schedule"`
	Timeline string `json:"timeline,omitempty"`
}

// PinnedCase is a counterexample checked into testdata: ExpectDiverge=false
// pins a fixed protocol bug (replay must now be clean; Check/Detail document
// what used to fail), ExpectDiverge=true pins an oracle self-test (a Chaos
// configuration the checker must still be able to catch).
type PinnedCase struct {
	Counterexample
	ExpectDiverge bool   `json:"expect_diverge"`
	Note          string `json:"note,omitempty"`
}

// WriteCounterexample persists ce as indented JSON.
func WriteCounterexample(path string, ce *Counterexample) error {
	data, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPinnedCase loads one testdata case.
func ReadPinnedCase(path string) (*PinnedCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pc PinnedCase
	if err := json.Unmarshal(data, &pc); err != nil {
		return nil, fmt.Errorf("litmus: %s: %w", path, err)
	}
	return &pc, nil
}

// WritePinnedCase persists a testdata case.
func WritePinnedCase(path string, pc *PinnedCase) error {
	data, err := json.MarshalIndent(pc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ListPinnedCases returns the sorted .json case paths under dir.
func ListPinnedCases(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// CheckPinnedCase replays one pinned case against the live unit and reports
// whether the outcome matches its expectation; the returned string describes
// any mismatch.
func CheckPinnedCase(pc *PinnedCase, opt Options) (bool, string) {
	ce, err := Replay(&pc.Test, pc.Schedule, opt)
	if err != nil {
		return false, fmt.Sprintf("invalid pinned test: %v", err)
	}
	if pc.ExpectDiverge {
		if ce == nil {
			return false, fmt.Sprintf("expected %s divergence, replay was clean", pc.Check)
		}
		if ce.Check != pc.Check {
			return false, fmt.Sprintf("expected %s divergence, got %s: %s", pc.Check, ce.Check, ce.Detail)
		}
		return true, ""
	}
	if ce != nil {
		return false, fmt.Sprintf("pinned regression reproduced %s: %s\n%s", ce.Check, ce.Detail, ce.Timeline)
	}
	return true, ""
}
