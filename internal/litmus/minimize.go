package litmus

// Minimize shrinks a diverging test by greedy delta debugging: repeatedly
// try dropping a whole scripted iteration, dropping a single op, or removing
// a CPU, accepting any candidate whose re-exploration still finds a
// divergence of the same check category. budget caps the number of Explore
// calls (each is itself a bounded exhaustive search). Returns the smallest
// accepted test and its counterexample.
func Minimize(t *Test, check string, opt Options, budget int) (*Test, *Counterexample) {
	cur := t.clone()
	var curCE *Counterexample
	improved := true
	for improved && budget > 0 {
		improved = false
		for _, cand := range shrinkCandidates(cur) {
			if budget <= 0 {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			budget--
			res, err := Explore(cand, opt)
			if err != nil || res.Div == nil || res.Div.Check != check {
				continue
			}
			cur = cand
			curCE = res.Div
			improved = true
			break
		}
	}
	if curCE == nil {
		// Nothing shrank (or budget ran dry before the first accept):
		// re-derive the counterexample for the original.
		if res, err := Explore(cur, opt); err == nil && res.Div != nil && res.Div.Check == check {
			curCE = res.Div
		}
	}
	return cur, curCE
}

// shrinkCandidates generates the one-step shrinks of t, smallest-first:
// iteration drops, then op drops, then a CPU drop.
func shrinkCandidates(t *Test) []*Test {
	var out []*Test
	for i := range t.Scripts {
		c := t.clone()
		c.Scripts = append(c.Scripts[:i], c.Scripts[i+1:]...)
		out = append(out, c)
	}
	for i, script := range t.Scripts {
		for j := range script {
			c := t.clone()
			c.Scripts[i] = append(c.Scripts[i][:j], c.Scripts[i][j+1:]...)
			out = append(out, c)
		}
	}
	if t.NCPU > 2 {
		c := t.clone()
		c.NCPU--
		out = append(out, c)
	}
	return out
}
