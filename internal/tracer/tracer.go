// Package tracer implements TEST — the Tracer for Extracting Speculative
// Threads (paper §3 and the companion CGO'03 paper).
//
// During an annotated sequential run, the memory system communicates every
// heap load/store and every annotation instruction (lwl, swl, sloop, eoi,
// eloop) to an array of comparator banks. One bank tracks one active
// prospective STL; eight banks cover typical loop-nest depths. The idle
// speculative store buffers hold the timestamp tables:
//
//   - a heap store-timestamp table (word address → cycle of last store),
//   - a cache-line timestamp table (line → cycle of last access) driving the
//     speculative-state overflow analysis, and
//   - a local-variable store-timestamp table keyed by annotation slot.
//
// Load dependency analysis: a load whose address was last stored after the
// enclosing loop was entered but before the current thread (iteration)
// started reveals an inter-thread (loop-carried) dependency. The arc with
// the smallest iteration distance in each thread is the critical arc; its
// length statistics feed the performance predictor.
//
// Overflow analysis: a memory access whose line timestamp predates the
// current thread start is new speculative state for the thread; per-thread
// counters against the hardware buffer limits predict TLS overflow stalls.
package tracer

import (
	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// Config parameterizes the profiling hardware.
type Config struct {
	NumBanks         int // comparator banks (paper: 8)
	StoreBufferLines int // store buffer capacity used by overflow analysis
	LoadBufferLines  int // L1 speculative line capacity
	StartRing        int // thread-start timestamps retained per bank

	// MemWords sizes the flat timestamp tables; the machine passes its
	// simulated-memory size. Zero selects a default large enough for the
	// standard Hydra image.
	MemWords int
}

// defaultMemWords mirrors the hydra image's memory size for tracers built
// without an explicit geometry (unit tests); the machine always passes its
// own size.
const defaultMemWords = 1<<22 + 4096

// DefaultConfig returns the paper's TEST configuration. The overflow
// analysis models the real TLS buffer capacities, so it shares the Figure 2
// constants with the speculation hardware.
func DefaultConfig() Config {
	return Config{
		NumBanks:         PaperComparatorBanks,
		StoreBufferLines: tls.PaperStoreBufferLines,
		LoadBufferLines:  tls.PaperLoadBufferLines,
		StartRing:        32,
	}
}

// Dependency source keys for non-local dependencies in per-loop stats.
// Allocator free-list and object-lock-word dependencies are tracked
// separately because the VM modifications of §5.2 (per-CPU speculative free
// lists) and §5.3 (speculation-aware object locks) remove them during
// speculative execution; the decomposition analyzer must be able to discount
// them when those modifications are enabled.
const (
	HeapDepKey  = uint32(0xFFFFFFFF)
	AllocDepKey = uint32(0xFFFFFFFE)
	LockDepKey  = uint32(0xFFFFFFFD)
)

// AddrClass tags observed memory traffic by what kind of state it touches.
type AddrClass int

// Address classes. ClassStack marks runtime-stack traffic (frame homes of
// memory-resident locals, expression spills, callee-saved saves): it is
// excluded from the dependency analysis — local variables are tracked
// precisely through the lwl/swl annotations, and stack discipline makes
// frame slots define-before-use within an iteration — but it still counts
// toward speculative buffer occupancy in the overflow analysis.
const (
	ClassHeap AddrClass = iota
	ClassAlloc
	ClassLock
	ClassStack
)

func (c AddrClass) depKey() uint32 {
	switch c {
	case ClassAlloc:
		return AllocDepKey
	case ClassLock:
		return LockDepKey
	}
	return HeapDepKey
}

// DepDistBuckets is the size of the DepStats dependence-distance histogram:
// bucket i counts arcs with distance in [2^i, 2^(i+1)) iterations (bucket 0
// is distance 1, the tightest possible loop-carried arc). 16 buckets cover
// distances past 32 Ki iterations, far beyond any speculation window.
const DepDistBuckets = 16

// DepStats accumulates inter-thread dependency observations for one
// dependency source (a local-variable slot, or the heap as a whole).
type DepStats struct {
	Iters       int64 // iterations in which this dependency occurred
	SumDist     int64 // sum of critical arc distances (iterations)
	MinDist     int64 // smallest arc distance seen
	SumStoreOff int64 // sum of store offsets from the storing thread's start
	MaxStoreOff int64 // latest store offset seen (violation risk estimate)
	SumLoadOff  int64 // sum of load offsets from the loading thread's start

	// DistHist is the log₂ histogram of observed arc distances (see
	// DepDistBuckets); the doctor reports it so a user can tell a uniformly
	// tight dependence from an occasional long-range one with the same mean.
	DistHist [DepDistBuckets]int64
}

func (d *DepStats) note(dist, storeOff, loadOff int64) {
	d.Iters++
	d.SumDist += dist
	d.SumStoreOff += storeOff
	d.SumLoadOff += loadOff
	if d.MinDist == 0 || dist < d.MinDist {
		d.MinDist = dist
	}
	if storeOff > d.MaxStoreOff {
		d.MaxStoreOff = storeOff
	}
	b := 0
	for v := dist; v > 1 && b < DepDistBuckets-1; v >>= 1 {
		b++
	}
	d.DistHist[b]++
}

// AvgDist returns the mean critical arc distance.
func (d *DepStats) AvgDist() float64 {
	if d.Iters == 0 {
		return 0
	}
	return float64(d.SumDist) / float64(d.Iters)
}

// AvgStoreOff returns the mean store offset within the storing thread.
func (d *DepStats) AvgStoreOff() float64 {
	if d.Iters == 0 {
		return 0
	}
	return float64(d.SumStoreOff) / float64(d.Iters)
}

// AvgLoadOff returns the mean load offset within the loading thread.
func (d *DepStats) AvgLoadOff() float64 {
	if d.Iters == 0 {
		return 0
	}
	return float64(d.SumLoadOff) / float64(d.Iters)
}

// LoopStats is the accumulated TEST profile of one prospective STL.
type LoopStats struct {
	LoopID      int64
	Entries     int64
	Iterations  int64
	TotalCycles int64 // cycles spent inside the loop, summed over entries

	// Deps maps dependency source (local slot id, or HeapDepKey) to stats.
	Deps map[uint32]*DepStats

	// CriticalIters counts iterations with at least one inter-thread
	// dependency of any source (frequency of the per-iteration critical arc).
	CriticalIters int64
	SumCritDist   int64
	SumCritStore  int64
	SumCritLoad   int64

	// Overflow analysis results.
	OverflowIters     int64 // iterations predicted to overflow a buffer
	SumLoadLines      int64 // per-iteration distinct lines loaded, summed
	SumStoreLines     int64 // per-iteration distinct lines stored, summed
	MaxLoadLines      int64
	MaxStoreLines     int64
	Unprofiled        int64 // entries skipped for lack of a comparator bank
	AbandonedOverflow bool  // bank was stolen after persistent overflow prediction
}

// AvgThreadSize returns the mean iteration length in cycles.
func (ls *LoopStats) AvgThreadSize() float64 {
	if ls.Iterations == 0 {
		return 0
	}
	return float64(ls.TotalCycles) / float64(ls.Iterations)
}

// ItersPerEntry returns the mean iterations per loop entry.
func (ls *LoopStats) ItersPerEntry() float64 {
	if ls.Entries == 0 {
		return 0
	}
	return float64(ls.Iterations) / float64(ls.Entries)
}

// DepFreq returns the fraction of iterations carrying a dependency.
func (ls *LoopStats) DepFreq() float64 {
	if ls.Iterations == 0 {
		return 0
	}
	return float64(ls.CriticalIters) / float64(ls.Iterations)
}

// OverflowFreq returns the fraction of iterations predicted to overflow.
func (ls *LoopStats) OverflowFreq() float64 {
	if ls.Iterations == 0 {
		return 0
	}
	return float64(ls.OverflowIters) / float64(ls.Iterations)
}

// arcInfo is the per-iteration minimum-distance arc for one source.
type arcInfo struct {
	dist     int64
	storeOff int64
	loadOff  int64
}

// bank is one comparator bank tracking one active prospective STL.
type bank struct {
	loopID      int64
	stats       *LoopStats
	entryTS     int64
	threadStart int64
	starts      *startRing // recent thread-start timestamps, newest last

	// Per-iteration state.
	iterDeps   *depCAM
	loadLines  int64
	storeLines int64
	overflowed bool

	// Consecutive-overflow run used by the bank-stealing policy.
	consecOverflow int64
	itersThisEntry int64
}

// Tracer is the TEST profiling unit.
type Tracer struct {
	cfg   Config
	banks []*bank

	storeTS *tsSlab   // heap word → last store cycle (flat, word-indexed)
	lineTS  *tsSlab   // cache line → last access cycle (flat, line-indexed)
	localTS *localCAM // composite local key → last store cycle

	freeBanks []*bank // retired comparator banks, recycled on sloop

	loops map[int64]*LoopStats

	// AnnotationCount counts executed annotation instructions (each costs
	// one cycle during profiling; Figure 8 "Profiling" overhead).
	AnnotationCount int64
}

// New returns an idle tracer.
func New(cfg Config) *Tracer {
	if cfg.MemWords <= 0 {
		cfg.MemWords = defaultMemWords
	}
	t := &Tracer{
		cfg:     cfg,
		storeTS: newSlab(cfg.MemWords),
		lineTS:  newSlab(cfg.MemWords/mem.LineWords + 1),
		localTS: newLocalCAM(1 << 12),
		loops:   make(map[int64]*LoopStats),
	}
	for i := 0; i < cfg.NumBanks; i++ {
		t.banks = append(t.banks, nil)
	}
	return t
}

// Release returns the tracer's flat timestamp tables to the shared pool. The
// accumulated loop statistics stay valid; the tracer must not observe any
// further traffic.
func (t *Tracer) Release() {
	t.storeTS.release()
	t.lineTS.release()
	t.storeTS, t.lineTS = nil, nil
}

// Loops returns the accumulated per-loop statistics.
func (t *Tracer) Loops() map[int64]*LoopStats { return t.loops }

// Loop returns stats for one loop id (nil if never profiled).
func (t *Tracer) Loop(id int64) *LoopStats { return t.loops[id] }

func (t *Tracer) loopStats(id int64) *LoopStats {
	ls, ok := t.loops[id]
	if !ok {
		ls = &LoopStats{LoopID: id, Deps: make(map[uint32]*DepStats)}
		t.loops[id] = ls
	}
	return ls
}

// OnSloop handles a sloop annotation: allocate a comparator bank for the
// prospective STL. If all banks are busy, a bank whose loop persistently
// predicts overflow is stolen (the paper's policy of freeing outer-loop
// banks that will be rejected anyway); otherwise the entry goes unprofiled.
func (t *Tracer) OnSloop(loopID int64, now int64) {
	t.AnnotationCount++
	ls := t.loopStats(loopID)
	slot := -1
	for i, b := range t.banks {
		if b == nil {
			slot = i
			break
		}
		if b.loopID == loopID {
			// Recursive re-entry of an already-profiled loop: skip.
			ls.Unprofiled++
			return
		}
	}
	if slot == -1 {
		// Try to steal a bank from a hopeless (persistently overflowing) loop.
		for i, b := range t.banks {
			if b.consecOverflow >= 4 {
				b.stats.AbandonedOverflow = true
				t.closeBank(b, now)
				slot = i
				break
			}
		}
	}
	if slot == -1 {
		ls.Unprofiled++
		return
	}
	var b *bank
	if n := len(t.freeBanks); n > 0 {
		b = t.freeBanks[n-1]
		t.freeBanks = t.freeBanks[:n-1]
		b.starts.reset()
		b.iterDeps.reset()
		b.loadLines, b.storeLines, b.overflowed = 0, 0, false
		b.consecOverflow, b.itersThisEntry = 0, 0
	} else {
		b = &bank{starts: newStartRing(t.cfg.StartRing), iterDeps: newDepCAM(64)}
	}
	b.loopID = loopID
	b.stats = ls
	b.entryTS = now
	b.threadStart = now
	b.starts.push(now)
	t.banks[slot] = b
	ls.Entries++
}

// OnEOI handles an eoi annotation: finalize the current iteration of the
// loop's bank.
func (t *Tracer) OnEOI(loopID int64, now int64) {
	t.AnnotationCount++
	b := t.findBank(loopID)
	if b == nil {
		return
	}
	t.finishIteration(b, now)
	b.threadStart = now
	b.starts.push(now)
}

// OnEloop handles an eloop annotation: accumulate and free the bank (the
// runtime reads the collected statistics at this point, per the paper).
func (t *Tracer) OnEloop(loopID int64, now int64) {
	t.AnnotationCount++
	b := t.findBank(loopID)
	if b == nil {
		return
	}
	t.closeBank(b, now)
	for i, bb := range t.banks {
		if bb == b {
			t.banks[i] = nil
		}
	}
	b.stats = nil
	t.freeBanks = append(t.freeBanks, b)
}

func (t *Tracer) closeBank(b *bank, now int64) {
	b.stats.TotalCycles += now - b.entryTS
}

func (t *Tracer) findBank(loopID int64) *bank {
	for _, b := range t.banks {
		if b != nil && b.loopID == loopID {
			return b
		}
	}
	return nil
}

// finishIteration folds the per-iteration arc and overflow state into the
// loop's accumulated statistics.
func (t *Tracer) finishIteration(b *bank, now int64) {
	ls := b.stats
	ls.Iterations++
	b.itersThisEntry++

	// Fold per-source arcs; the minimum-distance arc is the critical arc.
	// The arcs are visited in insertion order, so the tie-break between
	// equal arcs is deterministic (a map iteration here was not).
	var crit arcInfo
	haveCrit := false
	for _, slot := range b.iterDeps.order {
		key, arc := b.iterDeps.keys[slot], b.iterDeps.arcs[slot]
		ds, ok := ls.Deps[key]
		if !ok {
			ds = &DepStats{}
			ls.Deps[key] = ds
		}
		ds.note(arc.dist, arc.storeOff, arc.loadOff)
		if !haveCrit || arc.dist < crit.dist ||
			(arc.dist == crit.dist && arc.storeOff-arc.loadOff > crit.storeOff-crit.loadOff) {
			crit = arc
			haveCrit = true
		}
	}
	if haveCrit {
		ls.CriticalIters++
		ls.SumCritDist += crit.dist
		ls.SumCritStore += crit.storeOff
		ls.SumCritLoad += crit.loadOff
	}
	b.iterDeps.reset()

	// Overflow bookkeeping.
	ls.SumLoadLines += b.loadLines
	ls.SumStoreLines += b.storeLines
	if b.loadLines > ls.MaxLoadLines {
		ls.MaxLoadLines = b.loadLines
	}
	if b.storeLines > ls.MaxStoreLines {
		ls.MaxStoreLines = b.storeLines
	}
	if b.overflowed {
		ls.OverflowIters++
		b.consecOverflow++
	} else {
		b.consecOverflow = 0
	}
	b.loadLines, b.storeLines, b.overflowed = 0, 0, false
}

// noteDep records an inter-thread dependency arc for a source key in every
// bank where the stored timestamp falls inside the loop but before the
// current thread.
func (t *Tracer) noteDep(key uint32, storedAt, now int64) {
	for _, b := range t.banks {
		if b == nil {
			continue
		}
		if storedAt < b.entryTS || storedAt >= b.threadStart {
			continue // outside the loop, or intra-thread
		}
		dist, storeOff := b.arcDistance(storedAt)
		arc := arcInfo{dist: dist, storeOff: storeOff, loadOff: now - b.threadStart}
		if old, ok := b.iterDeps.get(key); !ok || arc.dist < old.dist {
			b.iterDeps.put(key, arc)
		}
	}
}

// arcDistance computes how many thread boundaries separate storedAt from the
// current thread, and the store's offset within its thread.
func (b *bank) arcDistance(storedAt int64) (dist, storeOff int64) {
	// The ring holds recent starts; index 0 is the current thread start.
	d := int64(0)
	for i := 0; i < b.starts.n; i++ {
		if s := b.starts.at(i); s <= storedAt {
			return d, storedAt - s
		}
		d++
	}
	// Store predates the oldest retained start: distance saturates.
	return d, 0
}

// noteLine runs the overflow analysis for one heap access.
func (t *Tracer) noteLine(a mem.Addr, isStore bool, now int64) {
	line := mem.Line(a)
	old := t.lineTS.getRaw(int(line))
	for _, b := range t.banks {
		if b == nil {
			continue
		}
		if old < b.threadStart { // new speculative state for this thread
			if isStore {
				b.storeLines++
				if b.storeLines > int64(t.cfg.StoreBufferLines) {
					b.overflowed = true
				}
			} else {
				b.loadLines++
				if b.loadLines > int64(t.cfg.LoadBufferLines) {
					b.overflowed = true
				}
			}
		}
	}
	t.lineTS.setRaw(int(line), now)
}

// OnLoad observes a heap load at address a with address class cls.
func (t *Tracer) OnLoad(a mem.Addr, now int64, cls AddrClass) {
	if cls != ClassStack {
		if ts, ok := t.storeTS.getTS(int(a)); ok {
			t.noteDep(cls.depKey(), ts, now)
		}
	}
	t.noteLine(a, false, now)
}

// OnStore observes a heap store at address a with address class cls.
func (t *Tracer) OnStore(a mem.Addr, now int64, cls AddrClass) {
	if cls != ClassStack {
		t.storeTS.setTS(int(a), now)
	}
	t.noteLine(a, true, now)
}

// OnLocalLoad observes an lwl annotation. key identifies the local variable
// (composed by the machine from frame pointer and slot id); slot is the
// per-method slot id used for optimization decisions.
func (t *Tracer) OnLocalLoad(key uint64, slot uint32, now int64) {
	t.AnnotationCount++
	if ts, ok := t.localTS.get(key); ok {
		t.noteDep(slot, ts, now)
	}
}

// OnLocalStore observes an swl annotation.
func (t *Tracer) OnLocalStore(key uint64, slot uint32, now int64) {
	t.AnnotationCount++
	t.localTS.put(key, now)
}

// Sufficient implements the paper's data-collection heuristic: a loop's
// profile is sufficient once at least 1000 iterations have executed, or once
// the loop consistently predicts speculative overflow.
func (ls *LoopStats) Sufficient() bool {
	if ls.Iterations >= 1000 {
		return true
	}
	return ls.Iterations >= 16 && ls.OverflowIters == ls.Iterations
}
