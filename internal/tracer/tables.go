// Hardware-shaped TEST timestamp memories.
//
// The paper holds TEST's timestamp state in the idle speculative store
// buffers — fixed hardware RAM, not an associative software map. This file
// models the three timestamp tables the same way on the host:
//
//   - the heap store-timestamp and cache-line timestamp tables are flat
//     arrays indexed directly by word/line address (the simulated memory is
//     small enough that a direct-mapped table with no tags is exact), and
//   - the local-variable table and the per-bank arc registers are
//     generation-stamped open-addressed CAMs.
//
// Every entry is generation-tagged, so "clearing" a table between profiling
// runs is a single counter bump, and the two large flat tables are recycled
// through a sync.Pool — a fresh Tracer costs neither a 33 MB allocation nor
// a 33 MB memclr. Nothing on the per-access record path allocates.
package tracer

import "sync"

// PaperComparatorBanks is the number of TEST comparator banks (paper §3,
// Figure 2): eight banks cover typical loop-nest depths. DefaultConfig and
// DESIGN.md both quote this constant.
const PaperComparatorBanks = 8

// tsEntry layout: the top 24 bits hold the slab generation, the low 40 bits
// the stored value. 2^40 cycles is far beyond any configured budget; a slab
// is retired and reallocated before its generation counter can wrap.
const (
	tsValBits = 40
	tsValMask = (1 << tsValBits) - 1
	tsGenMax  = 1 << (64 - tsValBits)
)

// tsSlab is one flat generation-tagged timestamp table.
type tsSlab struct {
	entries []uint64
	gen     uint64
}

// tsPool recycles the two big flat tables across Tracer instances. Slabs of
// the wrong size (a non-default machine geometry) are simply not reused.
var tsPool = sync.Pool{}

func newSlab(size int) *tsSlab {
	if v := tsPool.Get(); v != nil {
		s := v.(*tsSlab)
		if len(s.entries) == size {
			s.gen++
			if s.gen >= tsGenMax {
				clear(s.entries)
				s.gen = 1
			}
			return s
		}
	}
	return &tsSlab{entries: make([]uint64, size), gen: 1}
}

func (s *tsSlab) release() {
	if s != nil {
		tsPool.Put(s)
	}
}

// setRaw stores v (absent ≡ 0 semantics: a stored zero is indistinguishable
// from an empty entry, exactly like reading a missing map key).
func (s *tsSlab) setRaw(i int, v int64) {
	if uint(i) < uint(len(s.entries)) {
		s.entries[i] = s.gen<<tsValBits | uint64(v)&tsValMask
	}
}

// getRaw returns the stored value, zero when the entry is stale or unset.
func (s *tsSlab) getRaw(i int) int64 {
	if uint(i) >= uint(len(s.entries)) {
		return 0
	}
	e := s.entries[i]
	if e>>tsValBits != s.gen {
		return 0
	}
	return int64(e & tsValMask)
}

// setTS / getTS store v+1 so that presence is distinguishable from a
// timestamp of zero (map comma-ok semantics).
func (s *tsSlab) setTS(i int, v int64) { s.setRaw(i, v+1) }

func (s *tsSlab) getTS(i int) (int64, bool) {
	v := s.getRaw(i)
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// localCAM is a growable generation-stamped open-addressed map from
// composite local-variable keys to store timestamps.
type localCAM struct {
	mask   uint32
	keys   []uint64
	gen    []uint32
	vals   []int64
	n      int
	curGen uint32
}

func newLocalCAM(capacity int) *localCAM {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	return &localCAM{
		mask:   uint32(size - 1),
		keys:   make([]uint64, size),
		gen:    make([]uint32, size),
		vals:   make([]int64, size),
		curGen: 1,
	}
}

func hashKey64(k uint64) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	return uint32(k >> 32)
}

func (c *localCAM) get(k uint64) (int64, bool) {
	for slot := hashKey64(k) & c.mask; ; slot = (slot + 1) & c.mask {
		if c.gen[slot] != c.curGen {
			return 0, false
		}
		if c.keys[slot] == k {
			return c.vals[slot], true
		}
	}
}

func (c *localCAM) put(k uint64, v int64) {
	for slot := hashKey64(k) & c.mask; ; slot = (slot + 1) & c.mask {
		if c.gen[slot] != c.curGen {
			c.gen[slot] = c.curGen
			c.keys[slot] = k
			c.vals[slot] = v
			c.n++
			if uint32(c.n)*2 > c.mask {
				c.grow()
			}
			return
		}
		if c.keys[slot] == k {
			c.vals[slot] = v
			return
		}
	}
}

func (c *localCAM) grow() {
	oldKeys, oldGen, oldVals, oldCur := c.keys, c.gen, c.vals, c.curGen
	size := 2 * len(oldKeys)
	c.mask = uint32(size - 1)
	c.keys = make([]uint64, size)
	c.gen = make([]uint32, size)
	c.vals = make([]int64, size)
	c.curGen = 1
	c.n = 0
	for i, g := range oldGen {
		if g == oldCur {
			c.put(oldKeys[i], oldVals[i])
		}
	}
}

// depCAM holds one bank's per-iteration minimum-distance arcs, keyed by
// dependency source. Iteration (for folding into LoopStats) follows
// insertion order, so the critical-arc tie-break is deterministic — a Go map
// here made tied arcs race on iteration order.
type depCAM struct {
	mask   uint32
	keys   []uint32
	gen    []uint32
	arcs   []arcInfo
	order  []int32
	curGen uint32
}

func newDepCAM(capacity int) *depCAM {
	size := 1
	for size < 2*capacity {
		size <<= 1
	}
	return &depCAM{
		mask:   uint32(size - 1),
		keys:   make([]uint32, size),
		gen:    make([]uint32, size),
		arcs:   make([]arcInfo, size),
		order:  make([]int32, 0, capacity),
		curGen: 1,
	}
}

func (c *depCAM) reset() {
	c.order = c.order[:0]
	c.curGen++
	if c.curGen == 0 {
		clear(c.gen)
		c.curGen = 1
	}
}

func hashKey32(k uint32) uint32 { return k * 0x9E3779B1 }

func (c *depCAM) get(k uint32) (arcInfo, bool) {
	for slot := hashKey32(k) & c.mask; ; slot = (slot + 1) & c.mask {
		if c.gen[slot] != c.curGen {
			return arcInfo{}, false
		}
		if c.keys[slot] == k {
			return c.arcs[slot], true
		}
	}
}

func (c *depCAM) put(k uint32, a arcInfo) {
	for slot := hashKey32(k) & c.mask; ; slot = (slot + 1) & c.mask {
		if c.gen[slot] != c.curGen {
			c.gen[slot] = c.curGen
			c.keys[slot] = k
			c.arcs[slot] = a
			c.order = append(c.order, int32(slot))
			if 2*len(c.order) > len(c.keys) {
				c.grow()
			}
			return
		}
		if c.keys[slot] == k {
			c.arcs[slot] = a
			return
		}
	}
}

func (c *depCAM) grow() {
	oldKeys, oldArcs, oldOrder := c.keys, c.arcs, c.order
	size := 2 * len(oldKeys)
	c.mask = uint32(size - 1)
	c.keys = make([]uint32, size)
	c.gen = make([]uint32, size)
	c.arcs = make([]arcInfo, size)
	c.order = make([]int32, 0, len(oldOrder)*2)
	c.curGen = 1
	for _, slot := range oldOrder {
		c.put(oldKeys[slot], oldArcs[slot])
	}
}

// startRing retains the most recent thread-start timestamps of a bank
// (cfg.StartRing deep) without the reallocation churn of a sliding slice.
type startRing struct {
	buf  []int64
	head int // index of the oldest retained start
	n    int
}

func newStartRing(depth int) *startRing {
	if depth < 1 {
		depth = 1
	}
	return &startRing{buf: make([]int64, depth)}
}

func (r *startRing) reset() { r.head, r.n = 0, 0 }

func (r *startRing) push(v int64) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th newest start (i = 0 is the current thread start).
func (r *startRing) at(i int) int64 {
	return r.buf[(r.head+r.n-1-i)%len(r.buf)]
}
