package tracer

import "jrpm/internal/mem"

// PredictParams carries the machine parameters the predictor needs.
type PredictParams struct {
	NCPU         int
	StartupCost  int64 // STL_STARTUP handler cycles
	ShutdownCost int64 // STL_SHUTDOWN handler cycles
	EOICost      int64 // STL_EOI handler cycles
	CommPerIter  int64 // extra per-iteration cycles for communicated locals
	ForwardLat   int64 // inter-processor forwarding latency
	// ExtraBound is an additional serialization bound (cycles between
	// consecutive thread starts) computed by the analyzer for effects the
	// raw arc statistics miss — e.g. communicated locals load at the top
	// of each iteration regardless of where the profiled load occurred.
	ExtraBound float64
}

// SourceBound computes the serialization bound a single dependency source
// imposes, optionally treating the consuming load as happening at thread
// start (zeroLoad) — the codegen reality for communicated locals.
func (ls *LoopStats) SourceBound(key uint32, fwd int64, zeroLoad bool) float64 {
	ds := ls.Deps[key]
	if ds == nil || ls.Iterations == 0 {
		return 0
	}
	f := float64(ds.Iters) / float64(ls.Iterations)
	dist := ds.AvgDist()
	if dist < 1 {
		dist = 1
	}
	load := ds.AvgLoadOff()
	if zeroLoad {
		load = 0
	}
	gap := ds.AvgStoreOff() - load + float64(fwd)
	if gap <= 0 {
		return 0
	}
	return f * gap / dist
}

// Prediction is the TEST performance estimate for running a loop as an STL.
// All times are in cycles, comparable to the loop's measured sequential time.
type Prediction struct {
	SeqCycles int64   // measured sequential time of the loop
	ParCycles int64   // estimated speculative time
	Speedup   float64 // SeqCycles / ParCycles
	Interval  float64 // estimated cycles between thread commits
	DepBound  float64 // serialization bound from the critical dependency
	CPUBound  float64 // throughput bound from CPU count
	Overflow  float64 // overflow frequency folded into the estimate
}

// Predict estimates the speculative performance of the loop on a machine
// with the given parameters, following §3.1: average dependency arc
// frequencies, thread sizes, critical arc lengths, overflow frequencies and
// speculative overheads combine into an idealized schedule (violations and
// commit-wait load imbalance are deliberately not modelled — the paper's
// Figure 10 discussion attributes the predicted-vs-actual gap to exactly
// those effects).
func (ls *LoopStats) Predict(p PredictParams) Prediction {
	return ls.PredictExcluding(p, nil)
}

// PredictExcluding is Predict with some dependency sources discounted —
// the analyzer excludes dependencies that a selected optimization removes
// (inductors, reductions, per-CPU allocation, lock elision) before
// estimating the speculative schedule.
func (ls *LoopStats) PredictExcluding(p PredictParams, exclude func(key uint32) bool) Prediction {
	pred := Prediction{SeqCycles: ls.TotalCycles}
	if ls.Iterations == 0 || p.NCPU <= 0 {
		pred.ParCycles = ls.TotalCycles
		pred.Speedup = 1
		return pred
	}
	avgT := ls.AvgThreadSize()
	perIter := avgT + float64(p.EOICost) + float64(p.CommPerIter)

	// Throughput bound: N CPUs retire one iteration every perIter/N cycles.
	pred.CPUBound = perIter / float64(p.NCPU)

	// Dependency bound: for an arc of distance d, the consumer thread
	// cannot issue its dependent load before the producer's store, i.e.
	// consecutive thread starts are at least (storeOff - loadOff +
	// forwarding) / d apart, weighted by how often the arc occurs. For the
	// sources surviving here (heap dependencies that no optimization can
	// remove) the LATEST observed store offset is used rather than the
	// mean: an arc that occasionally stores late costs a whole violated
	// thread, so the risk estimate must be pessimistic. The tightest
	// surviving source governs.
	for key, ds := range ls.Deps {
		if exclude != nil && exclude(key) {
			continue
		}
		f := float64(ds.Iters) / float64(ls.Iterations)
		dist := ds.AvgDist()
		if dist < 1 {
			dist = 1
		}
		gap := float64(ds.MaxStoreOff) - ds.AvgLoadOff() + float64(p.ForwardLat)
		if gap > 0 {
			if b := f * gap / dist; b > pred.DepBound {
				pred.DepBound = b
			}
		}
	}

	if p.ExtraBound > pred.DepBound {
		pred.DepBound = p.ExtraBound
	}
	interval := pred.CPUBound
	if pred.DepBound > interval {
		interval = pred.DepBound
	}
	// An overflowing iteration stalls until it becomes the head, which
	// serializes it against the other CPUs' work.
	pred.Overflow = ls.OverflowFreq()
	interval += pred.Overflow * avgT * float64(p.NCPU-1) / float64(p.NCPU)
	pred.Interval = interval

	par := float64(ls.Entries)*float64(p.StartupCost+p.ShutdownCost) +
		float64(ls.Iterations)*interval
	if par < 1 {
		par = 1
	}
	pred.ParCycles = int64(par)
	pred.Speedup = float64(pred.SeqCycles) / par
	return pred
}

// DefaultPredictParams builds predictor parameters from handler costs.
func DefaultPredictParams(ncpu int, startup, shutdown, eoi, commPerIter int64) PredictParams {
	return PredictParams{
		NCPU:         ncpu,
		StartupCost:  startup,
		ShutdownCost: shutdown,
		EOICost:      eoi,
		CommPerIter:  commPerIter,
		ForwardLat:   mem.LatInterproc,
	}
}
