package tracer

import (
	"testing"

	"jrpm/internal/mem"
)

// driveLoop simulates a simple annotated loop execution against the tracer:
// iters iterations of size iterCycles, invoking body(iterIndex, startCycle)
// to emit events inside each iteration. Returns the final cycle.
func driveLoop(t *Tracer, loopID int64, iters int, iterCycles int64,
	body func(i int, start int64)) int64 {
	now := int64(1000)
	t.OnSloop(loopID, now)
	for i := 0; i < iters; i++ {
		start := now
		if body != nil {
			body(i, start)
		}
		now += iterCycles
		t.OnEOI(loopID, now)
	}
	now += 2
	t.OnEloop(loopID, now)
	return now
}

func TestIterationAndEntryCounting(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 10, 100, nil)
	driveLoop(tr, 1, 5, 100, nil)
	ls := tr.Loop(1)
	if ls.Entries != 2 || ls.Iterations != 15 {
		t.Fatalf("entries=%d iters=%d, want 2/15", ls.Entries, ls.Iterations)
	}
	if got := ls.ItersPerEntry(); got != 7.5 {
		t.Errorf("iters/entry = %v", got)
	}
	if ls.AvgThreadSize() < 99 || ls.AvgThreadSize() > 102 {
		t.Errorf("avg thread size = %v, want ~100", ls.AvgThreadSize())
	}
}

func TestInterThreadHeapDependencyDetected(t *testing.T) {
	tr := New(DefaultConfig())
	// Each iteration stores to address 500 at offset 80, and loads it at
	// offset 10 — a distance-1 loop-carried dependency.
	driveLoop(tr, 1, 20, 100, func(i int, start int64) {
		tr.OnLoad(500, start+10, ClassHeap)
		tr.OnStore(500, start+80, ClassHeap)
	})
	ls := tr.Loop(1)
	ds := ls.Deps[HeapDepKey]
	if ds == nil {
		t.Fatal("no heap dependency recorded")
	}
	// First iteration has no prior store; 19 carry the dependency.
	if ds.Iters != 19 {
		t.Fatalf("dep iterations = %d, want 19", ds.Iters)
	}
	if ds.AvgDist() != 1 {
		t.Errorf("avg arc distance = %v, want 1", ds.AvgDist())
	}
	if ds.AvgStoreOff() != 80 || ds.AvgLoadOff() != 10 {
		t.Errorf("offsets = %v/%v, want 80/10", ds.AvgStoreOff(), ds.AvgLoadOff())
	}
	if ls.CriticalIters != 19 {
		t.Errorf("critical iterations = %d", ls.CriticalIters)
	}
}

func TestIntraThreadDependencyIgnored(t *testing.T) {
	tr := New(DefaultConfig())
	// Store then load within the same iteration: no inter-thread arc.
	driveLoop(tr, 1, 10, 100, func(i int, start int64) {
		tr.OnStore(600, start+10, ClassHeap)
		tr.OnLoad(600, start+20, ClassHeap)
	})
	if ds := tr.Loop(1).Deps[HeapDepKey]; ds != nil {
		t.Fatalf("intra-thread access misclassified: %+v", ds)
	}
}

func TestPreLoopStoreIgnored(t *testing.T) {
	tr := New(DefaultConfig())
	tr.OnStore(700, 10, ClassHeap) // store long before the loop: read-only inside it
	driveLoop(tr, 1, 10, 100, func(i int, start int64) {
		tr.OnLoad(700, start+5, ClassHeap)
	})
	if ds := tr.Loop(1).Deps[HeapDepKey]; ds != nil {
		t.Fatalf("loop-invariant load misclassified as dependency: %+v", ds)
	}
}

func TestDistanceTwoArc(t *testing.T) {
	tr := New(DefaultConfig())
	// Iterations alternate between two addresses: each address is re-read
	// two iterations after it was stored (distance 2).
	driveLoop(tr, 1, 20, 100, func(i int, start int64) {
		a := mem.Addr(800 + i%2)
		tr.OnLoad(a, start+10, ClassHeap)
		tr.OnStore(a, start+50, ClassHeap)
	})
	ds := tr.Loop(1).Deps[HeapDepKey]
	if ds == nil || ds.AvgDist() != 2 {
		t.Fatalf("distance = %v, want 2", ds.AvgDist())
	}
}

func TestLocalVariableDependency(t *testing.T) {
	tr := New(DefaultConfig())
	const key, slot = 0x10002, 2
	driveLoop(tr, 1, 10, 100, func(i int, start int64) {
		tr.OnLocalLoad(key, slot, start+5)
		tr.OnLocalStore(key, slot, start+90)
	})
	ds := tr.Loop(1).Deps[slot]
	if ds == nil || ds.Iters != 9 {
		t.Fatalf("local dep = %+v, want 9 iterations", ds)
	}
	if ds.AvgStoreOff() != 90 || ds.AvgLoadOff() != 5 {
		t.Errorf("local arc offsets wrong: %v/%v", ds.AvgStoreOff(), ds.AvgLoadOff())
	}
}

func TestNestedLoopsSeparateBanks(t *testing.T) {
	tr := New(DefaultConfig())
	now := int64(0)
	tr.OnSloop(1, now)
	for outer := 0; outer < 4; outer++ {
		tr.OnSloop(2, now)
		for inner := 0; inner < 8; inner++ {
			now += 50
			tr.OnEOI(2, now)
		}
		tr.OnEloop(2, now)
		now += 10
		tr.OnEOI(1, now)
	}
	tr.OnEloop(1, now)
	outer, inner := tr.Loop(1), tr.Loop(2)
	if outer.Iterations != 4 || inner.Iterations != 32 {
		t.Fatalf("iterations outer=%d inner=%d", outer.Iterations, inner.Iterations)
	}
	if inner.Entries != 4 {
		t.Errorf("inner entries = %d", inner.Entries)
	}
	if outer.AvgThreadSize() != 410 {
		t.Errorf("outer thread size = %v, want 410", outer.AvgThreadSize())
	}
}

func TestOverflowAnalysis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferLines = 4
	tr := New(cfg)
	// Each iteration stores to 6 distinct lines — exceeds a 4-line buffer.
	driveLoop(tr, 1, 10, 1000, func(i int, start int64) {
		for l := 0; l < 6; l++ {
			tr.OnStore(mem.Addr(10000+i*100+l*mem.LineWords), start+int64(l), ClassHeap)
		}
	})
	ls := tr.Loop(1)
	if ls.OverflowIters != 10 {
		t.Fatalf("overflow iterations = %d, want 10", ls.OverflowIters)
	}
	if ls.OverflowFreq() != 1 {
		t.Errorf("overflow frequency = %v", ls.OverflowFreq())
	}
	if ls.MaxStoreLines != 6 {
		t.Errorf("max store lines = %d, want 6", ls.MaxStoreLines)
	}
}

func TestNoOverflowWhenLinesReused(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 10, 100, func(i int, start int64) {
		for k := 0; k < 100; k++ { // same line every time
			tr.OnStore(20000, start+int64(k), ClassHeap)
		}
	})
	ls := tr.Loop(1)
	if ls.OverflowIters != 0 {
		t.Fatalf("reused line should not overflow, got %d", ls.OverflowIters)
	}
	if ls.SumStoreLines != 10 { // one new line per iteration
		t.Errorf("sum store lines = %d, want 10", ls.SumStoreLines)
	}
}

func TestBankExhaustionCountsUnprofiled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBanks = 2
	tr := New(cfg)
	tr.OnSloop(1, 0)
	tr.OnSloop(2, 10)
	tr.OnSloop(3, 20) // no bank available
	if tr.Loop(3).Unprofiled != 1 {
		t.Fatalf("unprofiled = %d, want 1", tr.Loop(3).Unprofiled)
	}
	if tr.Loop(3).Entries != 0 {
		t.Error("unprofiled entry must not count as a profiled entry")
	}
}

func TestBankStealingFromOverflowingOuterLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBanks = 1
	cfg.StoreBufferLines = 2
	tr := New(cfg)
	now := int64(0)
	tr.OnSloop(1, now)
	// Outer loop overflows on 5 consecutive iterations.
	for i := 0; i < 5; i++ {
		for l := 0; l < 4; l++ {
			tr.OnStore(mem.Addr(30000+i*1000+l*mem.LineWords), now+int64(l), ClassHeap)
		}
		now += 100
		tr.OnEOI(1, now)
	}
	// Inner loop now wants a bank; the hopeless outer bank is stolen.
	tr.OnSloop(2, now)
	if tr.Loop(2).Entries != 1 {
		t.Fatal("inner loop did not get a stolen bank")
	}
	if !tr.Loop(1).AbandonedOverflow {
		t.Error("outer loop should be marked abandoned-for-overflow")
	}
}

func TestPredictParallelLoop(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 1000, 200, nil) // no dependencies, no overflow
	p := tr.Loop(1).Predict(DefaultPredictParams(4, 23, 16, 5, 0))
	if p.Speedup < 3.5 || p.Speedup > 4.0 {
		t.Fatalf("independent loop predicted speedup = %v, want ~3.9", p.Speedup)
	}
}

func TestPredictSerializedLoop(t *testing.T) {
	tr := New(DefaultConfig())
	// Store at the very end, load at the very start: fully serialized.
	driveLoop(tr, 1, 1000, 200, func(i int, start int64) {
		tr.OnLoad(900, start+1, ClassHeap)
		tr.OnStore(900, start+195, ClassHeap)
	})
	p := tr.Loop(1).Predict(DefaultPredictParams(4, 23, 16, 5, 0))
	if p.Speedup > 1.2 {
		t.Fatalf("serialized loop predicted speedup = %v, want ~1", p.Speedup)
	}
	if p.DepBound <= p.CPUBound {
		t.Error("dependency bound should dominate")
	}
}

func TestPredictOverflowPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferLines = 2
	tr := New(cfg)
	driveLoop(tr, 1, 1000, 200, func(i int, start int64) {
		for l := 0; l < 4; l++ {
			tr.OnStore(mem.Addr(40000+i*100+l*mem.LineWords), start+int64(l), ClassHeap)
		}
	})
	p := tr.Loop(1).Predict(DefaultPredictParams(4, 23, 16, 5, 0))
	if p.Speedup > 1.5 {
		t.Fatalf("always-overflowing loop predicted speedup = %v, want ~1", p.Speedup)
	}
}

func TestPredictEmptyLoop(t *testing.T) {
	ls := &LoopStats{Deps: map[uint32]*DepStats{}}
	p := ls.Predict(DefaultPredictParams(4, 23, 16, 5, 0))
	if p.Speedup != 1 {
		t.Errorf("empty loop speedup = %v, want 1", p.Speedup)
	}
}

func TestSufficientHeuristic(t *testing.T) {
	ls := &LoopStats{Iterations: 999}
	if ls.Sufficient() {
		t.Error("999 iterations should not yet be sufficient")
	}
	ls.Iterations = 1000
	if !ls.Sufficient() {
		t.Error("1000 iterations should be sufficient")
	}
	ovf := &LoopStats{Iterations: 20, OverflowIters: 20}
	if !ovf.Sufficient() {
		t.Error("consistent overflow should be sufficient")
	}
}

func TestAnnotationCounting(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 3, 10, func(i int, start int64) {
		tr.OnLocalLoad(1, 1, start)
		tr.OnLocalStore(1, 1, start+1)
	})
	// sloop + 3*eoi + eloop + 3*(lwl+swl) = 11
	if tr.AnnotationCount != 11 {
		t.Fatalf("annotation count = %d, want 11", tr.AnnotationCount)
	}
}

func TestSourceBound(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 100, 200, func(i int, start int64) {
		tr.OnLocalLoad(0x42, 0x42, start+150)
		tr.OnLocalStore(0x42, 0x42, start+180)
	})
	ls := tr.Loop(1)
	// Measured load offset: bound uses 180-150+fwd over distance 1.
	b1 := ls.SourceBound(0x42, 10, false)
	if b1 < 35 || b1 > 45 {
		t.Errorf("measured-offset bound = %.1f, want ~40", b1)
	}
	// Zero-load (comm codegen reality): 180-0+fwd.
	b2 := ls.SourceBound(0x42, 10, true)
	if b2 < 180 || b2 > 195 {
		t.Errorf("zero-load bound = %.1f, want ~188", b2)
	}
	if ls.SourceBound(0x99, 10, false) != 0 {
		t.Error("unknown source should bound at 0")
	}
}

func TestPredictExcludingRemovesSources(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 500, 200, func(i int, start int64) {
		// A tight serializing local dependency...
		tr.OnLocalLoad(7, 7, start+5)
		tr.OnLocalStore(7, 7, start+190)
	})
	ls := tr.Loop(1)
	p := DefaultPredictParams(4, 23, 16, 5, 0)
	with := ls.PredictExcluding(p, nil)
	without := ls.PredictExcluding(p, func(k uint32) bool { return k == 7 })
	if with.Speedup >= 1.5 {
		t.Errorf("serialized loop predicted %.2f with the dep included", with.Speedup)
	}
	if without.Speedup < 3.0 {
		t.Errorf("excluding the optimized dep should predict ~3.9, got %.2f", without.Speedup)
	}
}

func TestExtraBoundDominates(t *testing.T) {
	tr := New(DefaultConfig())
	driveLoop(tr, 1, 500, 200, nil)
	p := DefaultPredictParams(4, 23, 16, 5, 0)
	p.ExtraBound = 150 // analyzer-computed serialization
	pred := tr.Loop(1).Predict(p)
	if pred.Interval < 150 {
		t.Errorf("interval %.1f ignores the extra bound", pred.Interval)
	}
}
