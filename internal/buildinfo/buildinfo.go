// Package buildinfo renders the one-line version banner every jrpm binary
// prints for -version: the module version (from the embedded Go build info,
// "devel" for plain `go build` trees), the VCS revision when stamped, and the
// codec wire version — the compatibility contract a fleet operator actually
// cares about when mixing binaries, since replicas exchange results and
// checkpoints in codec envelopes.
package buildinfo

import (
	"fmt"
	"runtime/debug"

	"jrpm/internal/codec"
)

// Version returns the module version string ("devel" when the binary was
// built without module version stamping).
func Version() string {
	v := "devel"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		v = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return v + "+" + s.Value[:12]
		}
	}
	return v
}

// Banner renders the -version line for the named command.
func Banner(cmd string) string {
	return fmt.Sprintf("%s %s (codec wire v%d)", cmd, Version(), codec.Version)
}
