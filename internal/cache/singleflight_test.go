package cache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jrpm/internal/obs"
)

// TestCoalescingRace is the satellite coalescing test: 128 goroutines
// submit the identical key concurrently and exactly one backend execution
// happens; every caller that waits gets the same bytes.
func TestCoalescingRace(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGroup(reg)
	var executions atomic.Int64
	release := make(chan struct{})

	const callers = 128
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, _, err := g.Do(context.Background(), "job", func(ctx context.Context) ([]byte, error) {
				executions.Add(1)
				<-release // hold the flight open until every caller has joined or run
				return []byte("the result"), nil
			})
			results[i], errs[i] = val, err
		}(i)
	}
	// Wait until one flight is in progress, then let it finish. Callers that
	// arrive after close(release) may start fresh flights, so releasing only
	// after all 128 goroutines have launched keeps the count meaningful: we
	// poll the execution counter, then release.
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], []byte("the result")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	// Every caller that joined before the release shares one execution;
	// stragglers that arrived after completion may have started another.
	// With the flight held open until release, joins dominate: require far
	// fewer executions than callers and assert the metric agrees.
	n := executions.Load()
	if n == 0 || n > callers/8 {
		t.Fatalf("executions = %d for %d concurrent callers", n, callers)
	}
	if v := reg.Counter("jrpm_fleet_coalesce_executions_total").Value(); v != n {
		t.Fatalf("execution metric %d != counter %d", v, n)
	}
	if v := reg.Counter("jrpm_fleet_coalesce_joined_total").Value(); v != callers-n {
		t.Fatalf("joined metric %d, want %d", v, callers-n)
	}
}

// TestCoalescingExactlyOne pins the strict case: every caller provably
// overlaps one flight, so the backend runs exactly once.
func TestCoalescingExactlyOne(t *testing.T) {
	g := NewGroup(nil)
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	// Initiator opens the flight and blocks.
	var initVal []byte
	var initErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		initVal, _, initErr = g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			executions.Add(1)
			close(started)
			<-release
			return []byte("once"), nil
		})
	}()
	<-started

	const joiners = 127
	var wg sync.WaitGroup
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				executions.Add(1)
				return nil, errors.New("joiner executed")
			})
			if err != nil || !shared || string(val) != "once" {
				t.Errorf("joiner: val=%q shared=%v err=%v", val, shared, err)
			}
		}()
	}
	// Joiners enqueue against the open flight; give them a moment to call
	// Do before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	<-done

	if initErr != nil || string(initVal) != "once" {
		t.Fatalf("initiator: val=%q err=%v", initVal, initErr)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1", n)
	}
}

// TestCoalescingCancelOneCaller pins the detachment property: a caller
// abandoning its wait gets its own context error while the shared run
// keeps going and serves the remaining callers.
func TestCoalescingCancelOneCaller(t *testing.T) {
	g := NewGroup(nil)
	var executions, cancelled atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	run := func(ctx context.Context) ([]byte, error) {
		executions.Add(1)
		close(started)
		select {
		case <-release:
			return []byte("survived"), nil
		case <-ctx.Done():
			cancelled.Add(1)
			return nil, ctx.Err()
		}
	}

	initCtx, initCancel := context.WithCancel(context.Background())
	initDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(initCtx, "k", run)
		initDone <- err
	}()
	<-started

	joinDone := make(chan error, 1)
	go func() {
		val, _, err := g.Do(context.Background(), "k", run)
		if err == nil && string(val) != "survived" {
			err = fmt.Errorf("joiner got %q", val)
		}
		joinDone <- err
	}()

	// Cancel the INITIATING caller mid-flight. The run must keep going —
	// its context is detached — and the joiner must still get the result.
	time.Sleep(10 * time.Millisecond)
	initCancel()
	if err := <-initDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled initiator returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-joinDone; err != nil {
		t.Fatalf("joiner after initiator cancel: %v", err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (cancel must not respawn the run)", n)
	}
	if c := cancelled.Load(); c != 0 {
		t.Fatalf("shared run observed cancellation %d time(s); it must be detached", c)
	}
}

// TestFlightCompletionStartsFresh ensures a finished flight does not pin
// its result: the next caller re-executes.
func TestFlightCompletionStartsFresh(t *testing.T) {
	g := NewGroup(nil)
	var n atomic.Int64
	for i := 0; i < 3; i++ {
		val, shared, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			return []byte(fmt.Sprintf("run-%d", n.Add(1))), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
		want := fmt.Sprintf("run-%d", i+1)
		if string(val) != want {
			t.Fatalf("call %d: got %q, want %q", i, val, want)
		}
	}
}
