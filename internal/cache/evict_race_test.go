package cache

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLRUEvictionRacesDetachedFlight drives the exact interleaving the fleet
// router produces under churn: singleflight executions keep completing after
// their initiating callers abandoned them (detached flights), each completion
// Puts into a byte-budgeted LRU that is simultaneously evicting under
// pressure from other writers and being read by cache-hit traffic. Run under
// -race this is the memory-safety proof; the invariant checks catch logical
// corruption (budget overshoot, index/list divergence, a Get observing bytes
// that were never Put for that key).
func TestLRUEvictionRacesDetachedFlight(t *testing.T) {
	const (
		budget  = 1 << 12 // tiny: every writer forces evictions
		writers = 8
		rounds  = 200
	)
	lru := NewLRU(budget, nil)
	g := NewGroup(nil)

	valFor := func(key string) []byte {
		// Deterministic per-key content so readers can verify integrity.
		return bytes.Repeat([]byte{key[len(key)-1]}, 256)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k-%d-%d", w, i%7)
				// Abandon the flight immediately: ctx is cancelled before the
				// detached execution finishes, so the Put below races this
				// caller's exit and every other goroutine's evictions.
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				g.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
					time.Sleep(time.Microsecond)
					v := valFor(key)
					lru.Put(key, v)
					return v, nil
				})
				// Reader leg: any hit must carry exactly the bytes the key's
				// flight produced.
				if v, ok := lru.Get(key); ok && !bytes.Equal(v, valFor(key)) {
					t.Errorf("key %s: cache returned foreign bytes", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Detached flights may still be draining; wait for the group to empty so
	// every Put has landed before the final invariant check.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		inflight := len(g.flight)
		g.mu.Unlock()
		if inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d flights still pending after writers exited", inflight)
		}
		time.Sleep(time.Millisecond)
	}
	if s := lru.Size(); s > budget {
		t.Fatalf("cache size %d exceeds budget %d after churn", s, budget)
	}
	lru.mu.Lock()
	if len(lru.index) != lru.ll.Len() {
		t.Fatalf("index/list diverged: %d vs %d entries", len(lru.index), lru.ll.Len())
	}
	var walked int64
	for el := lru.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if lru.index[e.key] != el {
			t.Fatalf("index points away from list element for %s", e.key)
		}
		walked += int64(len(e.val))
	}
	if walked != lru.size {
		t.Fatalf("accounted size %d != walked size %d", lru.size, walked)
	}
	lru.mu.Unlock()
}
