package cache

import (
	"context"
	"sync"

	"jrpm/internal/obs"
)

// Group coalesces concurrent calls for the same key into one execution:
// while a call for key k is in flight, every other Do(k) waits for its
// outcome instead of running fn again.
//
// The execution is detached from any single caller: fn runs on its own
// goroutine under context.WithoutCancel of the initiating caller's context,
// so one caller abandoning its wait (its ctx expiring) never cancels the
// run the other callers share. A caller that stops waiting gets its own
// ctx.Err(); the flight completes and the remaining waiters get the result.
type Group struct {
	mu     sync.Mutex
	flight map[string]*flight

	executions, coalesced *obs.Counter
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewGroup builds a coalescing group, registering jrpm_fleet_coalesce_*
// metrics on reg.
func NewGroup(reg *obs.Registry) *Group {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Group{
		flight:     make(map[string]*flight),
		executions: reg.Counter("jrpm_fleet_coalesce_executions_total"),
		coalesced:  reg.Counter("jrpm_fleet_coalesce_joined_total"),
	}
}

// Do returns the result of fn for key, executing fn at most once per flight
// of concurrent callers. shared reports whether this caller joined a flight
// another caller initiated. The value is shared by every caller in the
// flight and must be treated as immutable.
//
// ctx bounds only this caller's wait. The execution itself runs detached;
// see the type comment.
func (g *Group) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flight[key]; ok {
		g.mu.Unlock()
		g.coalesced.Inc()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, context.Cause(ctx)
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flight[key] = f
	g.mu.Unlock()

	g.executions.Inc()
	go func() {
		f.val, f.err = fn(context.WithoutCancel(ctx))
		g.mu.Lock()
		delete(g.flight, key) // later callers start a fresh flight
		g.mu.Unlock()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		return nil, false, context.Cause(ctx)
	}
}
