// Package cache is the fleet layer's result memoization: a byte-budgeted
// LRU over canonical codec encodings, plus singleflight coalescing so
// identical in-flight requests run the pipeline once.
//
// The cache stores opaque byte slices under opaque string keys. The fleet
// router keys it by codec.CacheKey(programHash, optionsWire) — two entries
// collide exactly when the simulations they memoize are bit-identical, which
// the Jrpm pipeline's determinism (enforced by the golden-cycle and litmus
// suites) makes safe.
package cache

import (
	"container/list"
	"sync"

	"jrpm/internal/obs"
)

// DefaultMaxBytes is the default cache budget: 64 MiB of encoded results.
const DefaultMaxBytes = 64 << 20

// LRU is a byte-budgeted least-recently-used cache. Values are treated as
// immutable: Put keeps the slice and Get returns it uncopied, so callers
// must never mutate a value after inserting or reading it. All methods are
// safe for concurrent use.
type LRU struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recent
	index map[string]*list.Element

	hits, misses, evictions, rejected *obs.Counter
	bytes, entries                    *obs.Gauge
}

type entry struct {
	key string
	val []byte
}

// NewLRU builds a cache with the given byte budget (<=0 selects
// DefaultMaxBytes), registering jrpm_fleet_cache_* metrics on reg.
func NewLRU(maxBytes int64, reg *obs.Registry) *LRU {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &LRU{
		max:       maxBytes,
		ll:        list.New(),
		index:     make(map[string]*list.Element),
		hits:      reg.Counter("jrpm_fleet_cache_hits_total"),
		misses:    reg.Counter("jrpm_fleet_cache_misses_total"),
		evictions: reg.Counter("jrpm_fleet_cache_evictions_total"),
		rejected:  reg.Counter("jrpm_fleet_cache_rejected_total"),
		bytes:     reg.Gauge("jrpm_fleet_cache_bytes"),
		entries:   reg.Gauge("jrpm_fleet_cache_entries"),
	}
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used on a hit.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*entry).val, true
}

// Put inserts or refreshes a value, evicting least-recently-used entries
// until the budget holds. A value larger than the whole budget is rejected
// rather than evicting everything for an entry that cannot fit.
func (c *LRU) Put(key string, val []byte) {
	n := int64(len(val))
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.max {
		c.rejected.Inc()
		return
	}
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		c.size += n - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&entry{key: key, val: val})
		c.size += n
	}
	for c.size > c.max {
		c.evictOldestLocked()
	}
	c.publishLocked()
}

// evictOldestLocked drops the least-recently-used entry. Caller holds mu.
func (c *LRU) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.size -= int64(len(e.val))
	c.evictions.Inc()
}

func (c *LRU) publishLocked() {
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(c.ll.Len()))
}

// Len reports the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Size reports the cached bytes.
func (c *LRU) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
