package cache

import (
	"fmt"
	"sync"
	"testing"

	"jrpm/internal/obs"
)

func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}

func TestLRUHitMiss(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRU(1024, reg)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("got %q, %v", v, ok)
	}
	if h := counterValue(t, reg, "jrpm_fleet_cache_hits_total"); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if m := counterValue(t, reg, "jrpm_fleet_cache_misses_total"); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
}

func TestLRUByteBudgetEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRU(100, reg)
	val := make([]byte, 40)
	c.Put("a", val)
	c.Put("b", val)
	c.Put("c", val) // 120 bytes > 100: evict the LRU entry, "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU entry survived the budget")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recent entry %q evicted", k)
		}
	}
	if e := counterValue(t, reg, "jrpm_fleet_cache_evictions_total"); e != 1 {
		t.Fatalf("evictions = %d, want 1", e)
	}
	if c.Size() != 80 {
		t.Fatalf("size = %d, want 80", c.Size())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(100, nil)
	val := make([]byte, 40)
	c.Put("a", val)
	c.Put("b", val)
	c.Get("a")      // promote "a": now "b" is LRU
	c.Put("c", val) // evicts "b"
	if _, ok := c.Get("b"); ok {
		t.Fatal("promoted entry evicted instead of the cold one")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRU(64, reg)
	c.Put("small", make([]byte, 10))
	c.Put("huge", make([]byte, 65))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert evicted existing entries")
	}
	if rej := counterValue(t, reg, "jrpm_fleet_cache_rejected_total"); rej != 1 {
		t.Fatalf("rejected = %d, want 1", rej)
	}
}

func TestLRUUpdateExistingKey(t *testing.T) {
	c := NewLRU(100, nil)
	c.Put("a", make([]byte, 30))
	c.Put("a", make([]byte, 50))
	if c.Size() != 50 || c.Len() != 1 {
		t.Fatalf("size=%d len=%d after refresh, want 50/1", c.Size(), c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1<<16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("key %q returned %q", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
