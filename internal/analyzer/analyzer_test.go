package analyzer

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	fe "jrpm/internal/frontend"
	"jrpm/internal/hydra"
	"jrpm/internal/jit"
	"jrpm/internal/tracer"
	"jrpm/internal/vm"
)

// profile compiles a program in annotated mode, runs it, and returns the
// analysis inputs.
func profile(t *testing.T, bp *bytecode.Program) (*cfg.ProgramInfo, map[int64]*tracer.LoopStats, int64) {
	t.Helper()
	info := cfg.AnalyzeProgram(bp)
	img, _, err := jit.Compile(bp, info, jit.ModeAnnotated, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := vm.New(bp, vm.DefaultConfig())
	opts := hydra.DefaultOptions()
	opts.Profile = true
	m := hydra.NewMachine(img, rt, opts)
	m.Boot()
	rt.Install(m)
	if err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	return info, m.Tracer.Loops(), m.Clock
}

func analyze(t *testing.T, bp *bytecode.Program, mod func(*Config)) *Result {
	t.Helper()
	info, loops, cycles := profile(t, bp)
	cfgc := DefaultConfig()
	if mod != nil {
		mod(&cfgc)
	}
	return Select(info, loops, cycles, cfgc)
}

func decisionFor(res *Result, loopID int64) *LoopDecision {
	for _, d := range res.Decisions {
		if d.LoopID == loopID {
			return d
		}
	}
	return nil
}

// parallelLoop is a simple selectable kernel.
func parallelLoop(n int64) *bytecode.Program {
	p := fe.NewProgram("par")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(n))),
		fe.ForUp("i", fe.I(0), fe.I(n),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.L("i"))),
		),
		fe.Print(fe.Idx(fe.L("a"), fe.I(0))),
	)
	return p.MustBuild()
}

func TestSelectsParallelLoop(t *testing.T) {
	res := analyze(t, parallelLoop(300), nil)
	found := false
	for _, d := range res.Decisions {
		if d.Selected {
			found = true
			if d.Prediction.Speedup < 1.2 {
				t.Errorf("selected loop with speedup %.2f", d.Prediction.Speedup)
			}
		}
	}
	if !found {
		t.Fatal("parallel loop not selected")
	}
	if len(res.Selection.Plans) == 0 {
		t.Fatal("no plans emitted")
	}
	if res.PredictedCycles >= res.ProfiledCycles {
		t.Errorf("prediction %d should beat serial %d", res.PredictedCycles, res.ProfiledCycles)
	}
}

func TestRejectsIOLoop(t *testing.T) {
	p := fe.NewProgram("io")
	p.Func("main", nil, false).Body(
		fe.ForUp("i", fe.I(0), fe.I(50),
			fe.Print(fe.L("i")),
		),
	)
	res := analyze(t, p.MustBuild(), nil)
	for _, d := range res.Decisions {
		if d.Selected {
			t.Fatalf("loop with system calls selected: %+v", d)
		}
		if d.Reason != "system calls in loop body" {
			t.Errorf("reason = %q", d.Reason)
		}
	}
}

func TestRejectsFewIterations(t *testing.T) {
	res := analyze(t, parallelLoop(2), nil)
	for _, d := range res.Decisions {
		if d.Selected {
			t.Fatalf("2-iteration loop selected")
		}
	}
}

func TestRejectsOverflowingLoop(t *testing.T) {
	// Each iteration writes 600 distinct words (~150 lines > 64).
	p := fe.NewProgram("ovf")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(16*600))),
		fe.ForUp("i", fe.I(0), fe.I(16),
			fe.ForUp("j", fe.I(0), fe.I(600),
				fe.SetIdx(fe.L("a"), fe.Add(fe.Mul(fe.L("i"), fe.I(600)), fe.L("j")), fe.L("j")),
			),
		),
		fe.Print(fe.Idx(fe.L("a"), fe.I(0))),
	)
	res := analyze(t, p.MustBuild(), nil)
	// The outer loop must be rejected for overflow; the inner may be chosen.
	for _, d := range res.Decisions {
		if d.Depth == 1 && d.Selected {
			t.Fatalf("overflowing outer loop selected (ovf=%.2f)", d.Stats.OverflowFreq())
		}
	}
}

func TestInductorAblationFallsBackToComm(t *testing.T) {
	bp := parallelLoop(300)
	on := analyze(t, bp, nil)
	off := analyze(t, parallelLoop(300), func(c *Config) { c.NoInductors = true })
	var planOn, planOff *jit.Plan
	for _, pl := range on.Selection.Plans {
		planOn = pl
	}
	for _, pl := range off.Selection.Plans {
		planOff = pl
	}
	if planOn == nil || len(planOn.Inductors) == 0 {
		t.Fatal("baseline should use the inductor optimization")
	}
	if planOff == nil {
		// Without the inductor the loop may be rejected outright — also a
		// valid outcome of the ablation (the dependency now serializes).
		return
	}
	if len(planOff.Inductors) != 0 {
		t.Fatal("ablation left inductors enabled")
	}
	if len(planOff.Comm) == 0 {
		t.Fatal("disabled inductor should fall back to communication")
	}
}

func TestSyncLockSelection(t *testing.T) {
	p := fe.NewProgram("sync")
	p.Func("main", nil, false).Body(
		fe.Set("x", fe.I(1)),
		fe.Set("acc", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(200),
			// Short carried update at the top.
			fe.Set("x", fe.Rem(fe.Add(fe.Mul(fe.L("x"), fe.I(13)), fe.I(7)), fe.I(1009))),
			// Heavy independent tail.
			fe.ForUp("k", fe.I(0), fe.I(12),
				fe.Set("acc", fe.Add(fe.L("acc"), fe.Mul(fe.L("k"), fe.L("k")))),
			),
		),
		fe.Print(fe.Add(fe.L("x"), fe.L("acc"))),
	)
	res := analyze(t, p.MustBuild(), nil)
	foundSync := false
	for _, pl := range res.Selection.Plans {
		if len(pl.SyncSlots) > 0 {
			foundSync = true
		}
	}
	if !foundSync {
		for _, d := range res.Decisions {
			t.Logf("loop %d: sel=%v %s sync=%d", d.LoopID, d.Selected, d.Reason, d.SyncLocks)
		}
		t.Fatal("frequent short dependency should get a synchronizing lock")
	}
	// Ablated: no sync slots anywhere.
	res2 := analyze(t, p.MustBuild(), func(c *Config) { c.NoSyncLocks = true })
	for _, pl := range res2.Selection.Plans {
		if len(pl.SyncSlots) > 0 {
			t.Fatal("NoSyncLocks ablation ignored")
		}
	}
}

func TestNestLevelChoiceIsExclusive(t *testing.T) {
	p := fe.NewProgram("nest")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(32*32))),
		fe.ForUp("i", fe.I(0), fe.I(32),
			fe.ForUp("j", fe.I(0), fe.I(32),
				fe.SetIdx(fe.L("a"), fe.Add(fe.Mul(fe.L("i"), fe.I(32)), fe.L("j")),
					fe.Mul(fe.L("i"), fe.L("j"))),
			),
		),
		fe.Print(fe.Idx(fe.L("a"), fe.I(5))),
	)
	res := analyze(t, p.MustBuild(), nil)
	selByDepth := map[int]int{}
	for _, d := range res.Decisions {
		if d.Selected && !d.Inner {
			selByDepth[d.Depth]++
		}
	}
	if selByDepth[1] > 0 && selByDepth[2] > 0 {
		t.Fatal("both levels of a nest selected — only one STL may be active")
	}
}

func TestCallConflictResolution(t *testing.T) {
	// main's loop calls worker, which has its own selectable loop: only one
	// of the two may be selected.
	p := fe.NewProgram("conflict")
	worker := p.Func("worker", []string{"a", "base"}, false)
	worker.Body(
		fe.ForUp("j", fe.I(0), fe.I(16),
			fe.SetIdx(fe.L("a"), fe.Add(fe.L("base"), fe.L("j")), fe.Mul(fe.L("j"), fe.I(3))),
		),
		fe.RetVoid(),
	)
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(16*16))),
		fe.ForUp("i", fe.I(0), fe.I(16),
			fe.Do(fe.CallE(worker, fe.L("a"), fe.Mul(fe.L("i"), fe.I(16)))),
		),
		fe.Print(fe.Idx(fe.L("a"), fe.I(7))),
	)
	res := analyze(t, p.MustBuild(), nil)
	var selected []*LoopDecision
	for _, d := range res.Decisions {
		if d.Selected {
			selected = append(selected, d)
		}
	}
	if len(selected) != 1 {
		for _, d := range res.Decisions {
			t.Logf("loop %d m%d: sel=%v %s", d.LoopID, d.MethodID, d.Selected, d.Reason)
		}
		t.Fatalf("selected %d loops; dynamic nesting allows only one", len(selected))
	}
}

func TestMultilevelAblation(t *testing.T) {
	// Outer loop with a rare heavy inner loop (the mp3 shape).
	build := func() *bytecode.Program {
		p := fe.NewProgram("ml")
		p.Func("main", nil, false).Body(
			fe.Set("a", fe.NewArr(fe.I(64))),
			fe.Set("b", fe.NewArr(fe.I(64*32))),
			fe.ForUp("i", fe.I(0), fe.I(64),
				fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.I(3))),
				fe.If(fe.Eq(fe.Rem(fe.L("i"), fe.I(16)), fe.I(0)),
					fe.Block(fe.ForUp("w", fe.I(0), fe.I(32),
						fe.SetIdx(fe.L("b"), fe.Add(fe.Mul(fe.L("i"), fe.I(32)), fe.L("w")),
							fe.Mul(fe.L("w"), fe.L("w"))),
					)), nil),
			),
			fe.Print(fe.Idx(fe.L("b"), fe.I(33))),
		)
		return p.MustBuild()
	}
	on := analyze(t, build(), nil)
	multilevel := 0
	for _, d := range on.Decisions {
		if d.Inner {
			multilevel++
		}
	}
	if multilevel == 0 {
		for _, d := range on.Decisions {
			t.Logf("loop %d depth=%d: sel=%v inner=%v %s", d.LoopID, d.Depth, d.Selected, d.Inner, d.Reason)
		}
		t.Fatal("conditional heavy inner loop should pair as multilevel")
	}
	off := analyze(t, build(), func(c *Config) { c.NoMultilevel = true })
	for _, d := range off.Decisions {
		if d.Inner {
			t.Fatal("NoMultilevel ablation ignored")
		}
	}
}

func TestReconcileDropsConflictingSync(t *testing.T) {
	// Construct a selection where one plan sync-locks a slot another plan
	// register-forces; reconcile must drop the lock.
	sel := &jit.Selection{Plans: map[int64]*jit.Plan{
		1: {LoopID: 1, MethodID: 0, Inductors: map[int]int64{3: 1},
			Resetable: map[int]int64{}, Reductions: map[int]bytecode.Op{}},
		2: {LoopID: 2, MethodID: 0, SyncSlots: []int{3},
			Inductors: map[int]int64{}, Resetable: map[int]int64{}, Reductions: map[int]bytecode.Op{}},
	}}
	s := &selector{cfg: DefaultConfig(), decisions: map[int64]*LoopDecision{}}
	s.reconcilePlans(sel)
	if len(sel.Plans[2].SyncSlots) != 0 {
		t.Fatal("conflicting sync slot not dropped")
	}
	if len(sel.Plans[2].Comm) != 1 || sel.Plans[2].Comm[0] != 3 {
		t.Fatal("dropped sync slot should become communicated")
	}
}
