// Package analyzer implements Figure 1 step 3: post-processing the TEST
// profile statistics and choosing the thread decompositions that provide
// the best speedups (paper §3.1).
//
// A loop becomes a speculative thread loop when:
//
//   - it has no disqualifying structure (system calls, non-local exits,
//     multiple exit targets);
//   - average iterations per entry >> 1;
//   - speculative buffer overflow frequency << 1;
//   - the predicted speedup — after discounting dependencies removed by
//     compiler optimizations and VM modifications — exceeds 1.2.
//
// Because only one STL may be active at a time, the analyzer chooses one
// level per loop nest (the level with the largest estimated cycle savings),
// resolves cross-method conflicts through the call graph, and optionally
// pairs an outer STL with a conditionally executed inner loop as a
// multilevel decomposition (§4.2.6).
package analyzer

import (
	"sort"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/jit"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
)

// Config tunes selection.
type Config struct {
	NCPU             int
	Handlers         tls.HandlerCosts
	MinItersPerEntry float64 // ">> 1"; default 3
	MaxOverflowFreq  float64 // "<< 1"; default 0.25
	MinSpeedup       float64 // default 1.2 (paper)
	SyncDepFreq      float64 // default 0.8 (paper: "e.g. > 80%")
	SyncMaxSpanFrac  float64 // arc span must be below this fraction of thread size
	MultilevelRatio  float64 // inner entries per outer iteration threshold
	ParallelAlloc    bool    // VM provides per-CPU speculative free lists
	ElideLocks       bool    // VM elides object locks during speculation
	HoistMaxIters    float64 // iterations/entry below which hoisting applies
	HoistMinEntries  int64

	// Ablation switches: disable individual §4.2 optimizations (the
	// affected locals fall back to stack communication). Used by the
	// design-choice benchmarks; all false in the real system.
	NoInductors  bool
	NoResetable  bool
	NoReductions bool
	NoSyncLocks  bool
	NoMultilevel bool
	NoHoisting   bool

	// ExcludeLoops rejects specific loops (by cfg global loop id): the
	// adaptive-reprofiling feedback path of §6.2 feeds loops whose selected
	// STLs consistently overflowed the speculative buffers at run time.
	ExcludeLoops map[int64]bool
}

// DefaultConfig matches the paper's thresholds on the 4-CPU Hydra.
func DefaultConfig() Config {
	return Config{
		NCPU:             4,
		Handlers:         tls.NewHandlers,
		MinItersPerEntry: 3,
		MaxOverflowFreq:  0.25,
		MinSpeedup:       1.2,
		SyncDepFreq:      0.8,
		SyncMaxSpanFrac:  0.6,
		MultilevelRatio:  0.25,
		ParallelAlloc:    true,
		ElideLocks:       true,
		HoistMaxIters:    20,
		HoistMinEntries:  4,
	}
}

// LoopDecision records why a loop was or was not selected (Table 3 and the
// §6.1 discussion are built from these).
type LoopDecision struct {
	LoopID    int64
	MethodID  int
	LoopIndex int
	Depth     int

	Selected   bool
	Reason     string // rejection reason, or "selected"
	Inner      bool   // selected as a multilevel inner STL
	Prediction tracer.Prediction
	Coverage   float64 // loop cycles / profiled program cycles
	Stats      *tracer.LoopStats

	// Optimization decisions.
	Inductors  int
	Resetable  int
	Reductions int
	SyncLocks  int
	Comm       int
	Hoisted    bool
	Multilevel bool
}

// Result is the analyzer output.
type Result struct {
	Selection *jit.Selection
	Decisions []*LoopDecision
	// PredictedCycles estimates whole-program TLS time: the profiled
	// serial time minus the predicted savings of every selected STL.
	PredictedCycles int64
	ProfiledCycles  int64
}

// Select chooses decompositions from the program analysis and profile.
func Select(info *cfg.ProgramInfo, loops map[int64]*tracer.LoopStats,
	programCycles int64, cfgc Config) *Result {
	s := &selector{info: info, loops: loops, total: programCycles, cfg: cfgc}
	return s.run()
}

type selector struct {
	info  *cfg.ProgramInfo
	loops map[int64]*tracer.LoopStats
	total int64
	cfg   Config

	decisions map[int64]*LoopDecision
	plans     map[int64]*jit.Plan
}

func (s *selector) run() *Result {
	s.decisions = map[int64]*LoopDecision{}
	s.plans = map[int64]*jit.Plan{}

	// Phase 1: per-loop candidacy and prediction.
	for mi, g := range s.info.Graphs {
		for _, l := range g.Loops {
			s.evaluate(mi, g, l)
		}
	}
	// Phase 2: per-nest level choice (maximum savings over the forest).
	for mi, g := range s.info.Graphs {
		s.chooseNestLevels(mi, g)
	}
	// Phase 3: cross-method conflicts via the call graph.
	s.resolveCallConflicts()
	// Phase 4: multilevel pairing and final plan assembly.
	sel := &jit.Selection{Plans: map[int64]*jit.Plan{}, NCPU: s.cfg.NCPU}
	for id, d := range s.decisions {
		if d.Selected {
			sel.Plans[id] = s.plans[id]
		}
	}
	s.pairMultilevel(sel)
	s.reconcilePlans(sel)

	res := &Result{Selection: sel, ProfiledCycles: s.total}
	var ids []int64
	for id := range s.decisions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	predicted := s.total
	for _, id := range ids {
		d := s.decisions[id]
		res.Decisions = append(res.Decisions, d)
		if d.Selected && !d.Inner {
			saving := d.Prediction.SeqCycles - d.Prediction.ParCycles
			if saving > 0 {
				predicted -= saving
			}
		}
	}
	if predicted < 1 {
		predicted = 1
	}
	res.PredictedCycles = predicted
	return res
}

// evaluate builds the decision and tentative plan for one loop.
func (s *selector) evaluate(mi int, g *cfg.Graph, l *cfg.Loop) {
	id := cfg.GlobalLoopID(mi, l.Index)
	d := &LoopDecision{LoopID: id, MethodID: mi, LoopIndex: l.Index, Depth: l.Depth}
	s.decisions[id] = d
	ls := s.loops[id]
	d.Stats = ls

	reject := func(r string) { d.Reason = r }
	switch {
	case s.cfg.ExcludeLoops[id]:
		reject("runtime overflow feedback (adaptive reprofiling)")
		return
	case ls == nil || ls.Iterations == 0:
		reject("never profiled")
		return
	case l.HasIO:
		reject("system calls in loop body")
		return
	case l.HasEscape:
		reject("non-local exit (return/throw) in loop body")
		return
	case len(l.Exits) != 1:
		reject("multiple exit targets")
		return
	case ls.AbandonedOverflow:
		reject("persistent speculative buffer overflow")
		return
	case ls.ItersPerEntry() < s.cfg.MinItersPerEntry:
		reject("too few iterations per entry")
		return
	case ls.OverflowFreq() > s.cfg.MaxOverflowFreq:
		reject("speculative buffer overflow")
		return
	}
	d.Coverage = float64(ls.TotalCycles) / float64(s.total)

	// Optimization decisions remove dependency sources before prediction.
	// The classification maps are copied: plans may be adjusted later
	// (multilevel pairing, conflict reconciliation) without mutating the
	// shared CFG analysis.
	plan := &jit.Plan{
		LoopID:     id,
		MethodID:   mi,
		Loop:       l.Index,
		Inductors:  copyMap(l.Inductors),
		Resetable:  copyMap(l.Resetable),
		Reductions: copyMap(l.Reductions),
	}
	if s.cfg.NoInductors {
		plan.Inductors = map[int]int64{}
	}
	if s.cfg.NoResetable {
		plan.Resetable = map[int]int64{}
	}
	if s.cfg.NoReductions {
		plan.Reductions = map[int]bytecode.Op{}
	}
	removed := map[uint32]bool{}
	slotKey := func(slot int) uint32 { return uint32(mi)*256 + uint32(slot) }
	for slot := range plan.Inductors {
		removed[slotKey(slot)] = true
	}
	for slot := range plan.Resetable {
		removed[slotKey(slot)] = true
	}
	for slot := range plan.Reductions {
		removed[slotKey(slot)] = true
	}
	if s.cfg.ParallelAlloc {
		removed[tracer.AllocDepKey] = true
	}
	if s.cfg.ElideLocks {
		removed[tracer.LockDepKey] = true
	}

	// Thread synchronizing locks (§4.2.4): frequent, short local arcs.
	optimized := map[int]bool{}
	for slot := range plan.Inductors {
		optimized[slot] = true
	}
	for slot := range plan.Resetable {
		optimized[slot] = true
	}
	for slot := range plan.Reductions {
		optimized[slot] = true
	}
	avgT := ls.AvgThreadSize()
	for _, slot := range l.Carried {
		if optimized[slot] || s.cfg.NoSyncLocks {
			continue
		}
		ds := ls.Deps[slotKey(slot)]
		if ds == nil || ls.Iterations == 0 {
			continue
		}
		freq := float64(ds.Iters) / float64(ls.Iterations)
		span := ds.AvgStoreOff() - ds.AvgLoadOff()
		if freq > s.cfg.SyncDepFreq && span < s.cfg.SyncMaxSpanFrac*avgT &&
			s.syncEligible(g, l, slot) {
			plan.SyncSlots = append(plan.SyncSlots, slot)
			optimized[slot] = true
			removed[slotKey(slot)] = true
			// A lock converts the violation into a bounded stall; the
			// remaining serialization is the arc span itself, which the
			// predictor keeps by NOT removing... it is removed here and
			// folded back through CommPerIter below.
		}
	}
	for _, slot := range l.Carried {
		if !optimized[slot] {
			plan.Comm = append(plan.Comm, slot)
		}
	}
	sort.Ints(plan.SyncSlots)
	sort.Ints(plan.Comm)

	// Hoisted startup/shutdown (§4.2.7).
	if !s.cfg.NoHoisting &&
		ls.ItersPerEntry() < s.cfg.HoistMaxIters && ls.Entries >= s.cfg.HoistMinEntries {
		plan.Hoisted = true
	}

	params := tracer.DefaultPredictParams(s.cfg.NCPU, s.cfg.Handlers.Startup,
		s.cfg.Handlers.Shutdown, s.cfg.Handlers.EOI,
		int64(2*len(plan.Comm)+6*len(plan.SyncSlots)))
	// Communicated locals are loaded at the top of every iteration in the
	// generated STL code (Figure 5 base shape), so their serialization
	// bound must use a zero load offset, whatever the profiled offset was.
	// A frequent comm dependency also violates: the consumer restarts after
	// the producer's store and re-executes its prefix, so the effective gap
	// grows by roughly the frequency-weighted store offset plus the restart
	// handler. A sync lock keeps the profiled span but stalls instead.
	for _, slot := range plan.Comm {
		ds := ls.Deps[slotKey(slot)]
		if ds == nil {
			continue
		}
		f := float64(ds.Iters) / float64(ls.Iterations)
		dist := ds.AvgDist()
		if dist < 1 {
			dist = 1
		}
		gap := ds.AvgStoreOff()*(1+f) + float64(params.ForwardLat) + float64(s.cfg.Handlers.Restart)
		if b := f * gap / dist; b > params.ExtraBound {
			params.ExtraBound = b
		}
	}
	for _, slot := range plan.SyncSlots {
		if b := ls.SourceBound(slotKey(slot), params.ForwardLat, false); b > params.ExtraBound {
			params.ExtraBound = b
		}
	}
	pred := ls.PredictExcluding(params, func(k uint32) bool { return removed[k] })
	d.Prediction = pred
	d.Inductors = len(plan.Inductors)
	d.Resetable = len(plan.Resetable)
	d.Reductions = len(plan.Reductions)
	d.SyncLocks = len(plan.SyncSlots)
	d.Comm = len(plan.Comm)
	d.Hoisted = plan.Hoisted
	if pred.Speedup < s.cfg.MinSpeedup {
		reject("predicted speedup below threshold")
		return
	}
	d.Selected = true
	d.Reason = "selected"
	s.plans[id] = plan
}

// syncEligible requires the protected slot's first and last accesses to
// execute on every iteration (otherwise a skipped signal deadlocks).
func (s *selector) syncEligible(g *cfg.Graph, l *cfg.Loop, slot int) bool {
	first, last := -1, -1
	var firstBlk, lastBlk int
	for b := range l.Blocks {
		blk := g.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			in := g.Method.Code[pc]
			if (in.Op == bytecode.LOAD || in.Op == bytecode.STORE || in.Op == bytecode.IINC) && int(in.A) == slot {
				if first == -1 || pc < first {
					first, firstBlk = pc, b
				}
				if pc > last {
					last, lastBlk = pc, b
				}
			}
		}
	}
	if first == -1 {
		return false
	}
	return g.ExecutesEveryIteration(l, firstBlk) && g.ExecutesEveryIteration(l, lastBlk)
}

// chooseNestLevels keeps at most one selected loop per nest, maximizing
// estimated savings (selecting a loop deselects its ancestors and
// descendants).
func (s *selector) chooseNestLevels(mi int, g *cfg.Graph) {
	saving := func(l *cfg.Loop) int64 {
		d := s.decisions[cfg.GlobalLoopID(mi, l.Index)]
		if !d.Selected {
			return 0
		}
		sv := d.Prediction.SeqCycles - d.Prediction.ParCycles
		if sv < 0 {
			return 0
		}
		return sv
	}
	// best(l): either select l (its own saving) or the sum of the best of
	// its children.
	var best func(l *cfg.Loop) (int64, bool) // (value, selectSelf)
	memo := map[int]int64{}
	var childSum func(l *cfg.Loop) int64
	childSum = func(l *cfg.Loop) int64 {
		sum := int64(0)
		for _, ci := range l.Children {
			v, _ := best(g.Loops[ci])
			sum += v
		}
		return sum
	}
	best = func(l *cfg.Loop) (int64, bool) {
		if v, ok := memo[l.Index]; ok {
			return v, v == saving(l) && v > 0
		}
		own := saving(l)
		sub := childSum(l)
		v := own
		selectSelf := true
		if sub > own {
			v = sub
			selectSelf = false
		}
		memo[l.Index] = v
		return v, selectSelf && own > 0
	}
	// Walk top-level loops; deselect according to the DP choice.
	var apply func(l *cfg.Loop, ancestorSelected bool)
	apply = func(l *cfg.Loop, ancestorSelected bool) {
		d := s.decisions[cfg.GlobalLoopID(mi, l.Index)]
		_, selfBest := best(l)
		if ancestorSelected {
			if d.Selected {
				d.Selected = false
				d.Reason = "outer loop selected instead"
			}
			for _, ci := range l.Children {
				apply(g.Loops[ci], true)
			}
			return
		}
		if d.Selected && !selfBest {
			d.Selected = false
			d.Reason = "inner decomposition estimated better"
		}
		for _, ci := range l.Children {
			apply(g.Loops[ci], ancestorSelected || d.Selected)
		}
	}
	for _, l := range g.Loops {
		if l.Parent == -1 {
			apply(l, false)
		}
	}
}

// resolveCallConflicts drops the lesser selection when one selected loop's
// body can transitively invoke a method containing another selected loop
// (only one STL may be active at a time).
func (s *selector) resolveCallConflicts() {
	// methodsCalledFrom[m] = transitive callee set.
	n := len(s.info.Program.Methods)
	callees := make([]map[int]bool, n)
	for i, m := range s.info.Program.Methods {
		callees[i] = map[int]bool{}
		for _, in := range m.Code {
			if in.Op == bytecode.INVOKE {
				callees[i][int(in.A)] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := range callees {
			for c := range callees[i] {
				for cc := range callees[c] {
					if !callees[i][cc] {
						callees[i][cc] = true
						changed = true
					}
				}
			}
		}
	}
	// Methods a loop body can reach.
	loopReaches := func(d *LoopDecision) map[int]bool {
		g := s.info.Graphs[d.MethodID]
		l := g.Loops[d.LoopIndex]
		out := map[int]bool{}
		for b := range l.Blocks {
			blk := g.Blocks[b]
			for pc := blk.Start; pc < blk.End; pc++ {
				in := g.Method.Code[pc]
				if in.Op == bytecode.INVOKE {
					out[int(in.A)] = true
					for cc := range callees[int(in.A)] {
						out[cc] = true
					}
				}
			}
		}
		return out
	}
	var selected []*LoopDecision
	for _, d := range s.decisions {
		if d.Selected {
			selected = append(selected, d)
		}
	}
	sort.Slice(selected, func(i, j int) bool {
		si := selected[i].Prediction.SeqCycles - selected[i].Prediction.ParCycles
		sj := selected[j].Prediction.SeqCycles - selected[j].Prediction.ParCycles
		return si > sj
	})
	kept := []*LoopDecision{}
	for _, d := range selected {
		reach := loopReaches(d)
		conflict := false
		for _, k := range kept {
			if reach[k.MethodID] || loopReaches(k)[d.MethodID] {
				conflict = true
				break
			}
		}
		if conflict {
			d.Selected = false
			d.Reason = "dynamic nesting with a better selected STL"
			continue
		}
		kept = append(kept, d)
	}
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// reconcilePlans resolves cross-loop conflicts within a method: register
// allocation is method-wide, so a slot cannot be register-forced by one
// loop's optimization (inductor/reduction) and memory-forced by another
// loop's synchronizing lock. The lock is the weaker optimization and is
// dropped back to plain communication. Additionally, the outer inductors of
// a multilevel loop become base-iteration-relative ("resetable" codegen):
// the inner STL prologue re-bases them, which the plain INIT-time formula
// cannot express.
func (s *selector) reconcilePlans(sel *jit.Selection) {
	forcedReg := map[int]map[int]bool{} // methodID → slot set
	mark := func(mi, slot int) {
		if forcedReg[mi] == nil {
			forcedReg[mi] = map[int]bool{}
		}
		forcedReg[mi][slot] = true
	}
	for _, p := range sel.Plans {
		for slot := range p.Inductors {
			mark(p.MethodID, slot)
		}
		for slot := range p.Resetable {
			mark(p.MethodID, slot)
		}
		for slot := range p.Reductions {
			mark(p.MethodID, slot)
		}
	}
	for _, p := range sel.Plans {
		var keep []int
		for _, slot := range p.SyncSlots {
			if forcedReg[p.MethodID][slot] {
				p.Comm = append(p.Comm, slot)
				if d := s.decisions[p.LoopID]; d != nil {
					d.SyncLocks--
					d.Comm++
				}
				continue
			}
			keep = append(keep, slot)
		}
		p.SyncSlots = keep
		sort.Ints(p.Comm)
		if len(p.InnerSwitch) > 0 {
			for slot, step := range p.Inductors {
				p.Resetable[slot] = step
				delete(p.Inductors, slot)
			}
		}
	}
}

// pairMultilevel attaches conditionally executed inner loops to selected
// outer STLs when the inner loop is entered far less often than the outer
// iterates and is itself parallel (§4.2.6).
func (s *selector) pairMultilevel(sel *jit.Selection) {
	if s.cfg.NoMultilevel {
		return
	}
	// Snapshot and sort the plan ids: the loop inserts inner plans into
	// sel.Plans, and ranging a map under mutation is nondeterministic.
	ids := make([]int64, 0, len(sel.Plans))
	for id := range sel.Plans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		plan := sel.Plans[id]
		d := s.decisions[id]
		g := s.info.Graphs[d.MethodID]
		l := g.Loops[d.LoopIndex]
		if !l.CondInner {
			continue
		}
		outerStats := s.loops[id]
		for _, ci := range l.Children {
			c := g.Loops[ci]
			cid := cfg.GlobalLoopID(d.MethodID, c.Index)
			cd := s.decisions[cid]
			cs := s.loops[cid]
			if cs == nil || outerStats == nil || cd == nil {
				continue
			}
			// Conditionally executed, rarely entered, itself speedable.
			condChild := true
			for _, e := range l.Ends {
				if g.Dominates(c.Header, e) {
					condChild = false
				}
			}
			if !condChild {
				continue
			}
			if float64(cs.Entries) > s.cfg.MultilevelRatio*float64(outerStats.Iterations) {
				continue
			}
			if cd.Prediction.Speedup < s.cfg.MinSpeedup || len(c.Exits) != 1 ||
				c.HasIO || c.HasEscape {
				continue
			}
			// Build an inner plan.
			inner := &jit.Plan{
				LoopID:     cid,
				MethodID:   d.MethodID,
				Loop:       c.Index,
				Inductors:  copyMap(c.Inductors),
				Resetable:  copyMap(c.Resetable),
				Reductions: copyMap(c.Reductions),
				Inner:      true,
			}
			opt := map[int]bool{}
			for slot := range c.Inductors {
				opt[slot] = true
			}
			for slot := range c.Resetable {
				opt[slot] = true
			}
			for slot := range c.Reductions {
				opt[slot] = true
			}
			for _, slot := range c.Carried {
				if !opt[slot] {
					inner.Comm = append(inner.Comm, slot)
				}
			}
			sort.Ints(inner.Comm)
			sel.Plans[cid] = inner
			plan.InnerSwitch = append(plan.InnerSwitch, cid)
			cd.Selected = true
			cd.Inner = true
			cd.Reason = "multilevel inner STL"
			d.Multilevel = true
		}
	}
}
