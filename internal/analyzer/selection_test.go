package analyzer

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	fe "jrpm/internal/frontend"
)

// TestSelectionReasons is the table-driven map of the selector's verdicts:
// each row is one program shape, the loop to inspect, and the exact
// decision reason the analyzer must give. The reasons are part of the
// report surface (jrpm -loops), so their wording is pinned here.
func TestSelectionReasons(t *testing.T) {
	cases := []struct {
		name   string
		build  func() *bytecode.Program
		loop   int64 // global loop id to inspect (method 0)
		mod    func(*Config)
		reason string
	}{
		{
			name:   "parallel-loop-selected",
			build:  func() *bytecode.Program { return parallelLoop(300) },
			reason: "selected",
		},
		{
			name: "io-in-body",
			build: func() *bytecode.Program {
				p := fe.NewProgram("io")
				p.Func("main", nil, false).Body(
					fe.ForUp("i", fe.I(0), fe.I(50),
						fe.Print(fe.L("i")),
					),
				)
				return p.MustBuild()
			},
			reason: "system calls in loop body",
		},
		{
			// A return inside the loop body compiles to a branch whose
			// IRETURN block lies outside the natural loop (it cannot reach
			// the back edge), so the loop is rejected for having a second
			// exit target rather than via the HasEscape flag.
			name: "return-in-body",
			build: func() *bytecode.Program {
				p := fe.NewProgram("esc")
				f := p.Func("find", []string{"n"}, true)
				f.Body(
					fe.ForUp("i", fe.I(0), fe.L("n"),
						fe.If(fe.Eq(fe.L("i"), fe.I(17)), []fe.Stmt{fe.Ret(fe.L("i"))}, nil),
					),
					fe.Ret(fe.I(-1)),
				)
				p.Func("main", nil, false).Body(
					fe.Print(fe.CallE(f, fe.I(40))),
				)
				return p.MustBuild()
			},
			// "find" is declared first, so its loop is loop 0 of method 0.
			reason: "multiple exit targets",
		},
		{
			name: "too-few-iterations",
			build: func() *bytecode.Program {
				p := fe.NewProgram("short")
				p.Func("main", nil, false).Body(
					fe.Set("a", fe.NewArr(fe.I(8))),
					fe.ForUp("i", fe.I(0), fe.I(2),
						fe.SetIdx(fe.L("a"), fe.L("i"), fe.L("i")),
					),
					fe.Print(fe.Idx(fe.L("a"), fe.I(0))),
				)
				return p.MustBuild()
			},
			reason: "too few iterations per entry",
		},
		{
			name: "never-profiled",
			build: func() *bytecode.Program {
				p := fe.NewProgram("dead")
				p.Func("main", nil, false).Body(
					fe.Set("n", fe.I(0)),
					fe.If(fe.Ne(fe.L("n"), fe.I(0)), []fe.Stmt{
						fe.While(fe.Lt(fe.L("n"), fe.I(100)),
							fe.Inc("n", 1),
						),
					}, nil),
					fe.Print(fe.L("n")),
				)
				return p.MustBuild()
			},
			reason: "never profiled",
		},
		{
			name:  "adaptive-exclusion",
			build: func() *bytecode.Program { return parallelLoop(300) },
			mod: func(c *Config) {
				c.ExcludeLoops = map[int64]bool{cfg.GlobalLoopID(0, 0): true}
			},
			reason: "runtime overflow feedback (adaptive reprofiling)",
		},
		{
			name: "speedup-below-threshold",
			build: func() *bytecode.Program {
				// Every iteration reads the previous iteration's s at the top
				// and stores it at the bottom: the carried arc spans the whole
				// body, so the serialization bound caps the predicted speedup
				// below the 1.2 threshold.
				p := fe.NewProgram("serial")
				p.Func("main", nil, false).Body(
					fe.Set("a", fe.NewArr(fe.I(64))),
					fe.Set("s", fe.I(1)),
					fe.ForUp("i", fe.I(0), fe.I(200),
						fe.Set("t", fe.Add(fe.L("s"), fe.Idx(fe.L("a"), fe.Rem(fe.L("i"), fe.I(64))))),
						fe.SetIdx(fe.L("a"), fe.Rem(fe.L("t"), fe.I(64)), fe.L("t")),
						fe.SetIdx(fe.L("a"), fe.Rem(fe.Add(fe.L("t"), fe.I(7)), fe.I(64)), fe.L("t")),
						fe.Set("s", fe.L("t")),
					),
					fe.Print(fe.L("s")),
				)
				return p.MustBuild()
			},
			reason: "predicted speedup below threshold",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := analyze(t, tc.build(), tc.mod)
			d := decisionFor(res, tc.loop)
			if d == nil {
				t.Fatalf("no decision recorded for loop %d: %+v", tc.loop, res.Decisions)
			}
			if d.Reason != tc.reason {
				t.Errorf("reason = %q, want %q (selected=%v)", d.Reason, tc.reason, d.Selected)
			}
			if wantSel := tc.reason == "selected"; d.Selected != wantSel {
				t.Errorf("Selected = %v, want %v", d.Selected, wantSel)
			}
		})
	}
}
