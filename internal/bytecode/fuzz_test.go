package bytecode

import (
	"strings"
	"testing"
)

// FuzzAsm throws arbitrary text at the assembly parser. Parse must never
// panic; when it does accept an input, the program must verify and survive
// a Format/Parse round trip (Parse returns only verified programs, so a
// crash or an unverifiable accept is a parser bug).
func FuzzAsm(f *testing.F) {
	f.Add(sampleAsm)
	f.Add("program p\nmethod main args=0 locals=0 returns=false\n    return\nend\n")
	f.Add("program p\nstatics 2\nclass C 1\nmethod main args=0 locals=1 returns=false\n" +
		"    new C\n    store 0\n    load 0\n    const 7\n    putfield 0\n    return\nend\n")
	f.Add("program p\nmethod main args=0 locals=1 returns=false\n  .L0:\n    goto .L0\nend\n")
	f.Add("program x\nmethod main args=0 locals=0 returns=false\n  catch 0 .L0 .L0 .L0\nend\n")
	f.Add("method orphan args=0 locals=0 returns=false\nend\n")
	f.Add("program p\nstatics -1\n")
	f.Add("fconst 0.5\niinc 3 -2\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		out := Format(p)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted program did not round trip: %v\ninput:\n%s\nformatted:\n%s",
				err, truncate(src), truncate(out))
		}
		// Format normalizes names (empty -> "_"), so compare structure only.
		if len(p2.Methods) != len(p.Methods) || len(p2.Classes) != len(p.Classes) {
			t.Fatalf("round trip changed shape: %d methods/%d classes vs %d/%d",
				len(p.Methods), len(p.Classes), len(p2.Methods), len(p2.Classes))
		}
	})
}

func truncate(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return strings.ToValidUTF8(s, "?")
}
