package bytecode

import (
	"strings"
	"testing"
)

func onearg(name string, code []Ins, nlocals int, result bool) *Program {
	m := &Method{ID: 0, Name: name, NArgs: 1, NLocals: nlocals, HasResult: result, Code: code}
	return &Program{Name: "t", Methods: []*Method{m}, Main: 0}
}

func TestVerifyAcceptsSimpleLoop(t *testing.T) {
	// sum = 0; for i = arg; i > 0; i-- { sum += i }; return sum
	code := []Ins{
		{Op: CONST, A: 0}, // 0
		{Op: STORE, A: 1}, // 1  sum
		{Op: LOAD, A: 0},  // 2  top: i = arg
		{Op: IFLE, A: 10}, // 3
		{Op: LOAD, A: 1},  // 4
		{Op: LOAD, A: 0},  // 5
		{Op: IADD},        // 6
		{Op: STORE, A: 1}, // 7
		{Op: IINC, A: 0, B: -1},
		{Op: GOTO, A: 2}, // 9
		{Op: LOAD, A: 1}, // 10
		{Op: IRETURN},
	}
	p := onearg("sum", code, 2, true)
	if err := Verify(p); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
}

func TestVerifyCatchesStackUnderflow(t *testing.T) {
	p := onearg("bad", []Ins{{Op: IADD}, {Op: IRETURN}}, 1, true)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("want underflow error, got %v", err)
	}
}

func TestVerifyCatchesInconsistentDepth(t *testing.T) {
	// Two paths reach pc 4 with different stack depths.
	code := []Ins{
		{Op: LOAD, A: 0},  // 0
		{Op: IFEQ, A: 3},  // 1 -> target depth 0
		{Op: CONST, A: 1}, // 2 push (depth 1 falls into 3)
		{Op: RETURN},      // 3
	}
	p := onearg("bad", code, 1, false)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("want inconsistency error, got %v", err)
	}
}

func TestVerifyCatchesBadSlot(t *testing.T) {
	p := onearg("bad", []Ins{{Op: LOAD, A: 5}, {Op: IRETURN}}, 2, true)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "slot") {
		t.Fatalf("want slot error, got %v", err)
	}
}

func TestVerifyCatchesBranchOutOfRange(t *testing.T) {
	p := onearg("bad", []Ins{{Op: GOTO, A: 99}}, 1, false)
	if err := Verify(p); err == nil {
		t.Fatal("want branch range error")
	}
}

func TestVerifyCatchesWrongReturnKind(t *testing.T) {
	p := onearg("bad", []Ins{{Op: RETURN}}, 1, true)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "void return") {
		t.Fatalf("want return-kind error, got %v", err)
	}
}

func TestVerifyHandlerEntryDepth(t *testing.T) {
	code := []Ins{
		{Op: CONST, A: 7}, // 0 protected region
		{Op: POP},         // 1
		{Op: RETURN},      // 2
		{Op: POP},         // 3 handler: pops the exception object
		{Op: RETURN},      // 4
	}
	m := &Method{Name: "h", NLocals: 1, Code: code,
		Handlers: []Handler{{Start: 0, End: 2, Target: 3, Kind: 0}}}
	p := &Program{Methods: []*Method{m}, Main: 0}
	if err := Verify(p); err != nil {
		t.Fatalf("handler verification failed: %v", err)
	}
}

func TestVerifyInvokeArity(t *testing.T) {
	callee := &Method{ID: 1, Name: "f", NArgs: 2, NLocals: 2, HasResult: true,
		Code: []Ins{{Op: CONST, A: 0}, {Op: IRETURN}}}
	caller := &Method{ID: 0, Name: "main", NLocals: 1, Code: []Ins{
		{Op: CONST, A: 1},
		{Op: CONST, A: 2},
		{Op: INVOKE, A: 1},
		{Op: POP},
		{Op: RETURN},
	}}
	p := &Program{Methods: []*Method{caller, callee}, Main: 0}
	if err := Verify(p); err != nil {
		t.Fatalf("invoke arity: %v", err)
	}
	// Calling with too few stacked arguments underflows.
	caller.Code = []Ins{{Op: CONST, A: 1}, {Op: INVOKE, A: 1}, {Op: POP}, {Op: RETURN}}
	if err := Verify(p); err == nil {
		t.Fatal("want underflow on short invoke")
	}
}

func TestStackEffectTotals(t *testing.T) {
	p := &Program{Methods: []*Method{{ID: 0, NArgs: 3, HasResult: false,
		Code: []Ins{{Op: RETURN}}}}}
	pops, pushes := StackEffect(p, Ins{Op: INVOKE, A: 0})
	if pops != 3 || pushes != 0 {
		t.Errorf("invoke effect = %d/%d", pops, pushes)
	}
	pops, pushes = StackEffect(p, Ins{Op: ASTORE})
	if pops != 3 || pushes != 0 {
		t.Errorf("astore effect = %d/%d", pops, pushes)
	}
}

func TestPredicates(t *testing.T) {
	if !(Ins{Op: GOTO}).IsBranch() || (Ins{Op: GOTO}).IsConditional() {
		t.Error("goto classification")
	}
	if !(Ins{Op: IFICMPLT}).IsConditional() {
		t.Error("if_icmplt should be conditional")
	}
	for _, op := range []Op{GOTO, RETURN, IRETURN, ATHROW} {
		if !(Ins{Op: op}).Terminates() {
			t.Errorf("%s should terminate", op.Name())
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	m := &Method{Name: "d", NLocals: 1, Code: []Ins{
		{Op: CONST, A: 3}, {Op: STORE, A: 0}, {Op: GOTO, A: 3}, {Op: RETURN},
	}, Handlers: []Handler{{Start: 0, End: 3, Target: 3, Kind: 1}}}
	text := Disassemble(m)
	for _, want := range []string{"const", "store", "goto", "@3", "catch kind=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for op := NOP; op <= PRINT; op++ {
		if strings.HasPrefix(op.Name(), "op(") {
			t.Errorf("opcode %d unnamed", op)
		}
	}
}
