package bytecode

import "fmt"

// Verify checks a program for structural well-formedness: branch targets in
// range, local slots within NLocals, consistent operand stack depths at
// every merge point, valid method and class references, and exception tables
// with in-range pcs. It returns the first problem found.
//
// This is the moral equivalent of the JVM's bytecode verifier, scoped to
// what the JIT relies on.
func Verify(p *Program) error {
	if p.Main < 0 || p.Main >= len(p.Methods) {
		return fmt.Errorf("program %q: main method id %d out of range", p.Name, p.Main)
	}
	for _, m := range p.Methods {
		if err := verifyMethod(p, m); err != nil {
			return fmt.Errorf("method %q: %w", m.Name, err)
		}
	}
	return nil
}

func verifyMethod(p *Program, m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	if m.NArgs > m.NLocals {
		return fmt.Errorf("NArgs %d exceeds NLocals %d", m.NArgs, m.NLocals)
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type workItem struct{ pc, d int }
	work := []workItem{{0, 0}}
	for _, h := range m.Handlers {
		if h.Start < 0 || h.End > n || h.Start >= h.End {
			return fmt.Errorf("handler range [%d,%d) invalid", h.Start, h.End)
		}
		if h.Target < 0 || h.Target >= n {
			return fmt.Errorf("handler target %d out of range", h.Target)
		}
		// The handler entry sees exactly the exception object.
		work = append(work, workItem{h.Target, 1})
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		for {
			if pc < 0 || pc >= n {
				return fmt.Errorf("pc %d out of range", pc)
			}
			if depth[pc] >= 0 {
				if depth[pc] != d {
					return fmt.Errorf("pc %d: inconsistent stack depth %d vs %d", pc, depth[pc], d)
				}
				break
			}
			depth[pc] = d
			in := m.Code[pc]
			if err := checkOperands(p, m, in); err != nil {
				return fmt.Errorf("pc %d: %w", pc, err)
			}
			pops, pushes := StackEffect(p, in)
			if d < pops {
				return fmt.Errorf("pc %d (%s): stack underflow (depth %d, pops %d)", pc, in.Op.Name(), d, pops)
			}
			d = d - pops + pushes
			if in.IsBranch() {
				t := int(in.A)
				if t < 0 || t >= n {
					return fmt.Errorf("pc %d: branch target %d out of range", pc, t)
				}
				work = append(work, workItem{t, d})
			}
			if in.Terminates() {
				if in.Op == IRETURN && !m.HasResult {
					return fmt.Errorf("pc %d: ireturn in void method", pc)
				}
				if in.Op == RETURN && m.HasResult {
					return fmt.Errorf("pc %d: void return in value method", pc)
				}
				break
			}
			pc++
		}
	}
	return nil
}

func checkOperands(p *Program, m *Method, in Ins) error {
	switch in.Op {
	case LOAD, STORE, IINC:
		if in.A < 0 || int(in.A) >= m.NLocals {
			return fmt.Errorf("local slot %d out of range (NLocals %d)", in.A, m.NLocals)
		}
	case INVOKE:
		if in.A < 0 || int(in.A) >= len(p.Methods) {
			return fmt.Errorf("invoke of unknown method %d", in.A)
		}
	case NEW:
		if in.A < 0 || int(in.A) >= len(p.Classes) {
			return fmt.Errorf("new of unknown class %d", in.A)
		}
	case GETSTATIC, PUTSTATIC:
		if in.A < 0 || int(in.A) >= p.Statics {
			return fmt.Errorf("static index %d out of range (%d)", in.A, p.Statics)
		}
	case GETFIELD, PUTFIELD:
		if in.A < 0 {
			return fmt.Errorf("negative field offset")
		}
	}
	return nil
}
