package bytecode

import (
	"fmt"
	"math"
	"strings"
)

var opNames = map[Op]string{
	NOP: "nop", CONST: "const", FCONST: "fconst", POP: "pop", DUP: "dup",
	LOAD: "load", STORE: "store", IINC: "iinc",
	IADD: "iadd", ISUB: "isub", IMUL: "imul", IDIV: "idiv", IREM: "irem",
	INEG: "ineg", IAND: "iand", IOR: "ior", IXOR: "ixor",
	ISHL: "ishl", ISHR: "ishr", IUSHR: "iushr", IMIN: "imin", IMAX: "imax",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FNEG: "fneg", FABS: "fabs", FMIN: "fmin", FMAX: "fmax",
	F2I: "f2i", I2F: "i2f",
	FSQRT: "fsqrt", FSIN: "fsin", FCOS: "fcos", FEXP: "fexp", FLOG: "flog",
	GOTO: "goto", IFEQ: "ifeq", IFNE: "ifne", IFLT: "iflt", IFGE: "ifge",
	IFGT: "ifgt", IFLE: "ifle",
	IFICMPEQ: "if_icmpeq", IFICMPNE: "if_icmpne", IFICMPLT: "if_icmplt",
	IFICMPGE: "if_icmpge", IFICMPGT: "if_icmpgt", IFICMPLE: "if_icmple",
	IFFCMPLT: "if_fcmplt", IFFCMPGE: "if_fcmpge",
	NEW: "new", GETFIELD: "getfield", PUTFIELD: "putfield",
	GETSTATIC: "getstatic", PUTSTATIC: "putstatic",
	NEWARRAY: "newarray", ALOAD: "aload", ASTORE: "astore", ARRLEN: "arrlen",
	INVOKE: "invoke", RETURN: "return", IRETURN: "ireturn",
	MONITORENTER: "monitorenter", MONITOREXIT: "monitorexit", ATHROW: "athrow",
	PRINT: "print",
}

// Name returns the mnemonic for op.
func (op Op) Name() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// String renders one instruction.
func (in Ins) String() string {
	switch in.Op {
	case CONST, LOAD, STORE, NEW, GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC,
		INVOKE:
		return fmt.Sprintf("%-12s %d", in.Op.Name(), in.A)
	case FCONST:
		return fmt.Sprintf("%-12s %g", in.Op.Name(), math.Float64frombits(uint64(in.A)))
	case IINC:
		return fmt.Sprintf("%-12s %d, %d", in.Op.Name(), in.A, in.B)
	default:
		if in.IsBranch() {
			return fmt.Sprintf("%-12s @%d", in.Op.Name(), in.A)
		}
		return in.Op.Name()
	}
}

// Disassemble renders a method's code with pc labels and handler table.
func Disassemble(m *Method) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "method %q (id %d, args %d, locals %d, result %v)\n",
		m.Name, m.ID, m.NArgs, m.NLocals, m.HasResult)
	for pc, in := range m.Code {
		fmt.Fprintf(&sb, "%5d: %s\n", pc, in.String())
	}
	for _, h := range m.Handlers {
		fmt.Fprintf(&sb, "  catch kind=%d [%d,%d) -> %d\n", h.Kind, h.Start, h.End, h.Target)
	}
	return sb.String()
}
