// Package bytecode defines the portable, platform-independent program
// representation that Jrpm consumes — the stand-in for Java class files.
//
// It is a typed stack bytecode over 64-bit values (floats travel as IEEE-754
// bits), with local variable slots, objects with word-sized fields, arrays,
// static fields, monitors, exceptions, and static method invocation. Virtual
// dispatch is omitted: the paper's microJIT inlines and devirtualizes
// aggressively, and none of the reproduced experiments depend on dynamic
// dispatch itself (its cost shows up as call overhead, which INVOKE models).
//
// The microJIT (package jit) compiles this bytecode to the native ISA; the
// CFG analyses (package cfg) identify natural loops — the prospective
// speculative thread loops — directly from it, as the paper's Figure 1 step
// 1 does from Java bytecodes.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// Opcodes. A is the primary immediate (constant, slot, target, id); B is the
// secondary immediate where noted.
const (
	NOP Op = iota

	// Constants and stack manipulation.
	CONST  // push A (int64)
	FCONST // push A interpreted as float64 bits
	POP
	DUP

	// Local variables.
	LOAD  // push local[A]
	STORE // local[A] = pop
	IINC  // local[A] += B

	// Integer arithmetic (operate on the top of stack).
	IADD
	ISUB
	IMUL
	IDIV // ArithmeticException on zero divisor
	IREM
	INEG
	IAND
	IOR
	IXOR
	ISHL
	ISHR
	IUSHR
	IMIN
	IMAX

	// Floating point.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMIN
	FMAX
	F2I
	I2F
	FSQRT
	FSIN
	FCOS
	FEXP
	FLOG

	// Control flow. Branch targets are instruction indices (A).
	GOTO
	IFEQ // pop; branch if == 0
	IFNE
	IFLT
	IFGE
	IFGT
	IFLE
	IFICMPEQ // pop b, a; branch if a == b
	IFICMPNE
	IFICMPLT
	IFICMPGE
	IFICMPGT
	IFICMPLE
	IFFCMPLT // float compares
	IFFCMPGE

	// Objects. Field offsets (A) are word offsets within the object body.
	NEW       // push new instance of class A
	GETFIELD  // pop ref; push ref.field[A]; NullPointerException on null
	PUTFIELD  // pop val, ref; ref.field[A] = val
	GETSTATIC // push statics[A]
	PUTSTATIC // statics[A] = pop

	// Arrays. Element kind is untyped words.
	NEWARRAY // pop length; push new array
	ALOAD    // pop idx, ref; push ref[idx]; bounds-checked
	ASTORE   // pop val, idx, ref; ref[idx] = val
	ARRLEN   // pop ref; push length

	// Calls. INVOKE pops the callee's NArgs values (last argument on top)
	// and pushes a result if the callee HasResult.
	INVOKE  // call method A
	RETURN  // return void
	IRETURN // return pop

	// Monitors (the synchronized keyword) and exceptions.
	MONITORENTER // pop ref
	MONITOREXIT  // pop ref
	ATHROW       // pop ref; throw

	// Output (a system call; cannot execute speculatively).
	PRINT // pop; append to program output
)

// Ins is one bytecode instruction.
type Ins struct {
	Op Op
	A  int64
	B  int64
}

// Handler is one exception-table entry: if an exception of kind Kind (or any
// kind, when Kind == 0) is raised at pc in [Start, End), control transfers
// to Target with the exception object pushed.
type Handler struct {
	Start  int
	End    int
	Target int
	Kind   int64 // matches isa exception kinds; 0 = catch all
}

// Method is one compiled unit.
type Method struct {
	ID        int
	Name      string
	NArgs     int
	NLocals   int // locals include the arguments in slots [0, NArgs)
	HasResult bool
	Code      []Ins
	Handlers  []Handler
}

// Class describes an object layout.
type Class struct {
	ID        int
	Name      string
	NumFields int
}

// Program is a complete loadable unit.
type Program struct {
	Name    string
	Methods []*Method
	Classes []*Class
	Statics int // number of static field words
	Main    int // method id of the entry point
}

// Method returns the method with the given id.
func (p *Program) Method(id int) *Method { return p.Methods[id] }

// StackEffect returns (pops, pushes) for in, given the program (needed for
// INVOKE arity).
func StackEffect(p *Program, in Ins) (int, int) {
	switch in.Op {
	case CONST, FCONST, LOAD, GETSTATIC, NEW:
		return 0, 1
	case POP, STORE, PUTSTATIC, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE, PRINT,
		MONITORENTER, MONITOREXIT, ATHROW, IRETURN:
		return 1, 0
	case DUP:
		return 1, 2
	case IINC, NOP, GOTO, RETURN:
		return 0, 0
	case IADD, ISUB, IMUL, IDIV, IREM, IAND, IOR, IXOR, ISHL, ISHR, IUSHR,
		IMIN, IMAX, FADD, FSUB, FMUL, FDIV, FMIN, FMAX:
		return 2, 1
	case INEG, FNEG, FABS, F2I, I2F, FSQRT, FSIN, FCOS, FEXP, FLOG, ARRLEN,
		GETFIELD, NEWARRAY:
		return 1, 1
	case IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE,
		IFFCMPLT, IFFCMPGE:
		return 2, 0
	case PUTFIELD:
		return 2, 0
	case ALOAD:
		return 2, 1
	case ASTORE:
		return 3, 0
	case INVOKE:
		m := p.Method(int(in.A))
		push := 0
		if m.HasResult {
			push = 1
		}
		return m.NArgs, push
	}
	panic(fmt.Sprintf("bytecode: unknown op %d", in.Op))
}

// IsBranch reports whether in can transfer control to in.A.
func (in Ins) IsBranch() bool {
	switch in.Op {
	case GOTO, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE,
		IFICMPEQ, IFICMPNE, IFICMPLT, IFICMPGE, IFICMPGT, IFICMPLE,
		IFFCMPLT, IFFCMPGE:
		return true
	}
	return false
}

// IsConditional reports whether in is a conditional branch (falls through).
func (in Ins) IsConditional() bool { return in.IsBranch() && in.Op != GOTO }

// Terminates reports whether control never falls through in.
func (in Ins) Terminates() bool {
	switch in.Op {
	case GOTO, RETURN, IRETURN, ATHROW:
		return true
	}
	return false
}

// ObjectHeaderWords is the number of header words preceding object fields:
// word 0 holds the class id and GC mark, word 1 is the monitor lock word.
const ObjectHeaderWords = 2

// ArrayHeaderWords is the header size of arrays: class/mark, lock, length.
const ArrayHeaderWords = 3
