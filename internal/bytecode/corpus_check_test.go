package bytecode

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFuzzAsmCorpusSeedsParse guards the checked-in corpus: every seed-*
// file whose name does not mark it as a rejection case must parse, so the
// corpus keeps exercising the Format round-trip rather than bailing at the
// first parse error.
func TestFuzzAsmCorpusSeedsParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", "FuzzAsm", "seed-*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus seeds found: %v", err)
	}
	rejections := map[string]bool{
		"seed-bad-attribute":  true,
		"seed-orphan-label":   true,
		"seed-missing-label":  true,
		"seed-dup-class-args": true,
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Errorf("%s: not a go fuzz corpus file", f)
			continue
		}
		src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(lines[1], "string("), ")"))
		if err != nil {
			t.Errorf("%s: bad corpus encoding: %v", f, err)
			continue
		}
		_, perr := Parse(src)
		name := filepath.Base(f)
		if rejections[name] {
			if perr == nil {
				t.Errorf("%s: rejection seed unexpectedly parsed", name)
			}
			continue
		}
		if perr != nil {
			t.Errorf("%s: %v", name, perr)
		}
	}
}
