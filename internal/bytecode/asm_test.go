package bytecode

import (
	"math"
	"strings"
	"testing"
)

const sampleAsm = `
# sum of squares
program sample
statics 1
class Box 2
method helper args=1 locals=1 returns=true
    load 0
    load 0
    imul
    ireturn
end
method main args=0 locals=3 returns=false
    const 0
    store 1
    const 0
    store 0
  .L4:
    load 0
    const 10
    if_icmpge .L14
    load 1
    load 0
    invoke helper
    iadd
    store 1
    iinc 0 1
    goto .L4
  .L14:
    load 1
    print
    return
end
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" || p.Statics != 1 || len(p.Classes) != 1 || len(p.Methods) != 2 {
		t.Fatalf("parsed shape wrong: %+v", p)
	}
	if p.Main != 1 {
		t.Fatalf("main = %d, want 1 (the method named main)", p.Main)
	}
	m := p.Methods[1]
	// The invoke resolved to the helper's index.
	found := false
	for _, in := range m.Code {
		if in.Op == INVOKE && in.A == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("invoke did not resolve by name")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p1, err := Parse(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, Format(p2))
	}
	// Structural equality of the code streams.
	for mi := range p1.Methods {
		a, b := p1.Methods[mi], p2.Methods[mi]
		if len(a.Code) != len(b.Code) {
			t.Fatalf("method %d code length differs", mi)
		}
		for pc := range a.Code {
			if a.Code[pc] != b.Code[pc] {
				t.Fatalf("method %d pc %d: %v != %v", mi, pc, a.Code[pc], b.Code[pc])
			}
		}
	}
}

func TestParseHandlers(t *testing.T) {
	src := `
program h
method main args=0 locals=2 returns=false
  .L0:
    const 1
    const 0
    idiv
    store 0
  .L4:
    return
  .L5:
    store 1
    return
  catch 3 .L0 .L4 .L5
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Methods[0].Handlers[0]
	if h.Start != 0 || h.End != 4 || h.Target != 5 || h.Kind != 3 {
		t.Fatalf("handler = %+v", h)
	}
	// Round trip keeps the handler.
	p2, err := Parse(Format(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Methods[0].Handlers) != 1 || p2.Methods[0].Handlers[0] != h {
		t.Fatalf("handler lost in round trip: %+v", p2.Methods[0].Handlers)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "program x\nmethod main args=0 locals=1 returns=false\n    frobnicate\nend\n",
		"undefined label":  "program x\nmethod main args=0 locals=1 returns=false\n    goto .L9\nend\n",
		"unknown method":   "program x\nmethod main args=0 locals=1 returns=false\n    invoke ghost\nend\n",
		"outside method":   "program x\n    nop\n",
		"verification":     "program x\nmethod main args=0 locals=1 returns=false\n    iadd\n    return\nend\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestFormatFloatPrecision(t *testing.T) {
	p := &Program{Name: "f", Methods: []*Method{{
		Name: "main", NLocals: 1, Code: []Ins{
			{Op: FCONST, A: int64(f64bits(3.141592653589793))},
			{Op: PRINT},
			{Op: RETURN},
		},
	}}}
	p2, err := Parse(Format(p))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Methods[0].Code[0].A != p.Methods[0].Code[0].A {
		t.Fatal("float constant lost precision in round trip")
	}
}

func TestFormatWorkloadScale(t *testing.T) {
	// A program with nested control flow survives the round trip.
	p, err := Parse(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	if !strings.Contains(text, "if_icmpge .L") || !strings.Contains(text, "invoke helper") {
		t.Fatalf("formatted text unexpected:\n%s", text)
	}
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }
