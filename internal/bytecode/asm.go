package bytecode

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Format serializes a program to the textual assembly form that Parse
// accepts. The format is line-oriented:
//
//	program <name>
//	statics <n>
//	class <name> <numFields>
//	method <name> args=<n> locals=<n> returns=<true|false>
//	  .L12:
//	    if_icmpge .L12
//	    invoke <methodName>
//	    new <className>
//	  catch <kind> .Lstart .Lend .Ltarget
//	end
//
// Labels are emitted only where something refers to them (branch targets
// and handler boundaries).
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", ident(p.Name))
	if p.Statics > 0 {
		fmt.Fprintf(&b, "statics %d\n", p.Statics)
	}
	for _, c := range p.Classes {
		fmt.Fprintf(&b, "class %s %d\n", ident(c.Name), c.NumFields)
	}
	for _, m := range p.Methods {
		formatMethod(&b, p, m)
	}
	return b.String()
}

func ident(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ReplaceAll(s, " ", "_")
}

func formatMethod(b *strings.Builder, p *Program, m *Method) {
	fmt.Fprintf(b, "method %s args=%d locals=%d returns=%v\n",
		ident(m.Name), m.NArgs, m.NLocals, m.HasResult)
	labeled := map[int]bool{}
	for _, in := range m.Code {
		if in.IsBranch() {
			labeled[int(in.A)] = true
		}
	}
	for _, h := range m.Handlers {
		labeled[h.Start] = true
		labeled[h.End] = true
		labeled[h.Target] = true
	}
	for pc, in := range m.Code {
		if labeled[pc] {
			fmt.Fprintf(b, "  .L%d:\n", pc)
		}
		fmt.Fprintf(b, "    %s\n", formatIns(p, in))
	}
	if labeled[len(m.Code)] {
		fmt.Fprintf(b, "  .L%d:\n", len(m.Code))
	}
	for _, h := range m.Handlers {
		fmt.Fprintf(b, "  catch %d .L%d .L%d .L%d\n", h.Kind, h.Start, h.End, h.Target)
	}
	fmt.Fprintln(b, "end")
}

func formatIns(p *Program, in Ins) string {
	switch in.Op {
	case INVOKE:
		return fmt.Sprintf("invoke %s", ident(p.Methods[in.A].Name))
	case NEW:
		return fmt.Sprintf("new %s", ident(p.Classes[in.A].Name))
	case FCONST:
		return fmt.Sprintf("fconst %s",
			strconv.FormatFloat(math.Float64frombits(uint64(in.A)), 'g', -1, 64))
	case IINC:
		return fmt.Sprintf("iinc %d %d", in.A, in.B)
	case CONST, LOAD, STORE, GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC:
		return fmt.Sprintf("%s %d", in.Op.Name(), in.A)
	default:
		if in.IsBranch() {
			return fmt.Sprintf("%s .L%d", in.Op.Name(), in.A)
		}
		return in.Op.Name()
	}
}

// nameToOp inverts the mnemonic table once.
var nameToOp = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// Parse reads the textual assembly form back into a verified Program.
func Parse(src string) (*Program, error) {
	p := &Program{}
	methodIdx := map[string]int{}
	classIdx := map[string]int{}

	type pendingIns struct {
		op    Op
		a, b  int64
		label string // branch target / invoke name / class name
		line  int
	}
	type pendingMethod struct {
		m        *Method
		code     []pendingIns
		labels   map[string]int
		handlers []struct {
			kind               int64
			start, end, target string
			line               int
		}
	}
	var methods []*pendingMethod
	var cur *pendingMethod

	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "program":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: program wants a name", lineNo)
			}
			p.Name = fields[1]
		case fields[0] == "statics":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: statics wants a count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			p.Statics = n
		case fields[0] == "class":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: class wants name and field count", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			classIdx[fields[1]] = len(p.Classes)
			p.Classes = append(p.Classes, &Class{ID: len(p.Classes), Name: fields[1], NumFields: n})
		case fields[0] == "method":
			m := &Method{ID: len(methods)}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: method wants a name", lineNo)
			}
			m.Name = fields[1]
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: bad attribute %q", lineNo, f)
				}
				switch k {
				case "args":
					m.NArgs, _ = strconv.Atoi(v)
				case "locals":
					m.NLocals, _ = strconv.Atoi(v)
				case "returns":
					m.HasResult = v == "true"
				default:
					return nil, fmt.Errorf("line %d: unknown attribute %q", lineNo, k)
				}
			}
			methodIdx[m.Name] = len(methods)
			cur = &pendingMethod{m: m, labels: map[string]int{}}
			methods = append(methods, cur)
		case fields[0] == "end":
			cur = nil
		case strings.HasPrefix(fields[0], ".") && strings.HasSuffix(fields[0], ":"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: label outside method", lineNo)
			}
			cur.labels[strings.TrimSuffix(fields[0], ":")] = len(cur.code)
		case fields[0] == "catch":
			if cur == nil || len(fields) != 5 {
				return nil, fmt.Errorf("line %d: catch <kind> <start> <end> <target>", lineNo)
			}
			kind, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			cur.handlers = append(cur.handlers, struct {
				kind               int64
				start, end, target string
				line               int
			}{kind, fields[2], fields[3], fields[4], lineNo})
		default:
			if cur == nil {
				return nil, fmt.Errorf("line %d: instruction outside method", lineNo)
			}
			ins, err := parseIns(fields, lineNo)
			if err != nil {
				return nil, err
			}
			cur.code = append(cur.code, ins)
		}
	}

	// Resolve.
	for _, pm := range methods {
		m := pm.m
		resolve := func(label string, line int) (int, error) {
			pc, ok := pm.labels[label]
			if !ok {
				return 0, fmt.Errorf("line %d: undefined label %s in %s", line, label, m.Name)
			}
			return pc, nil
		}
		for _, pi := range pm.code {
			in := Ins{Op: pi.op, A: pi.a, B: pi.b}
			switch {
			case pi.op == INVOKE:
				idx, ok := methodIdx[pi.label]
				if !ok {
					return nil, fmt.Errorf("line %d: unknown method %q", pi.line, pi.label)
				}
				in.A = int64(idx)
			case pi.op == NEW:
				idx, ok := classIdx[pi.label]
				if !ok {
					return nil, fmt.Errorf("line %d: unknown class %q", pi.line, pi.label)
				}
				in.A = int64(idx)
			case in.IsBranch():
				pc, err := resolve(pi.label, pi.line)
				if err != nil {
					return nil, err
				}
				in.A = int64(pc)
			}
			m.Code = append(m.Code, in)
		}
		for _, h := range pm.handlers {
			start, err := resolve(h.start, h.line)
			if err != nil {
				return nil, err
			}
			end, err := resolve(h.end, h.line)
			if err != nil {
				return nil, err
			}
			target, err := resolve(h.target, h.line)
			if err != nil {
				return nil, err
			}
			m.Handlers = append(m.Handlers, Handler{Start: start, End: end, Target: target, Kind: h.kind})
		}
		p.Methods = append(p.Methods, m)
	}
	// Entry point: a method named main, else method 0.
	if idx, ok := methodIdx["main"]; ok {
		p.Main = idx
	}
	// Deterministic field order aids tests.
	sort.SliceStable(p.Classes, func(i, j int) bool { return p.Classes[i].ID < p.Classes[j].ID })
	if err := Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

func parseIns(fields []string, line int) (struct {
	op    Op
	a, b  int64
	label string
	line  int
}, error) {
	out := struct {
		op    Op
		a, b  int64
		label string
		line  int
	}{line: line}
	op, ok := nameToOp[fields[0]]
	if !ok {
		return out, fmt.Errorf("line %d: unknown mnemonic %q", line, fields[0])
	}
	out.op = op
	switch op {
	case INVOKE, NEW:
		if len(fields) != 2 {
			return out, fmt.Errorf("line %d: %s wants a name", line, fields[0])
		}
		out.label = fields[1]
	case FCONST:
		if len(fields) != 2 {
			return out, fmt.Errorf("line %d: fconst wants a value", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return out, fmt.Errorf("line %d: %v", line, err)
		}
		out.a = int64(math.Float64bits(v))
	case IINC:
		if len(fields) != 3 {
			return out, fmt.Errorf("line %d: iinc wants slot and delta", line)
		}
		a, err1 := strconv.ParseInt(fields[1], 10, 64)
		b, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return out, fmt.Errorf("line %d: bad iinc operands", line)
		}
		out.a, out.b = a, b
	case CONST, LOAD, STORE, GETFIELD, PUTFIELD, GETSTATIC, PUTSTATIC:
		if len(fields) != 2 {
			return out, fmt.Errorf("line %d: %s wants an operand", line, fields[0])
		}
		a, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return out, fmt.Errorf("line %d: %v", line, err)
		}
		out.a = a
	default:
		if (Ins{Op: op}).IsBranch() {
			if len(fields) != 2 {
				return out, fmt.Errorf("line %d: branch wants a label", line)
			}
			out.label = fields[1]
		} else if len(fields) != 1 {
			return out, fmt.Errorf("line %d: %s takes no operands", line, fields[0])
		}
	}
	return out, nil
}
