// Package isa defines the MIPS-like register instruction set executed by the
// simulated Hydra chip multiprocessor.
//
// The IR plays the role of the MIPS machine code emitted by the paper's
// microJIT compiler. Registers are 64-bit; floating point operations act on
// the same register file, interpreting register bits as IEEE-754 float64
// (the paper's separate FP coprocessor register file is a detail that does
// not affect any reported result). Memory is word addressed, one word = 8
// bytes, one cache line = 4 words = 32 bytes, matching the paper's 32-byte
// lines.
//
// Besides ordinary computation instructions the ISA carries:
//
//   - the TEST annotation instructions of Table 2 (lwl, swl, sloop, eoi,
//     eloop), which are no-ops for architectural state but are observed by
//     the hardware profiler;
//   - TLS control markers (STL startup / end-of-iteration / shutdown and the
//     multilevel switch handlers), whose cycle costs follow Table 1;
//   - lwnv, the "load word, non-violating" instruction used by thread
//     synchronizing locks (§4.2.4);
//   - VM runtime instructions (allocation, monitors, throw) whose memory
//     traffic is issued through the simulated memory system so that TLS and
//     TEST observe the dependencies the paper describes (free-list heads,
//     object lock words).
package isa

// Reg names a general-purpose register. Register 0 is hardwired to zero.
type Reg uint8

// Register conventions (loosely MIPS o32-flavoured).
const (
	Zero Reg = 0 // always reads as 0
	AT   Reg = 1 // assembler temporary (immediate materialization)
	V0   Reg = 2 // return value
	V1   Reg = 3 // secondary return value
	A0   Reg = 4 // first argument register; A0..A5 carry arguments
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	A4   Reg = 8
	A5   Reg = 9
	T0   Reg = 10 // T0..T5: expression temporaries (caller saved)
	T1   Reg = 11
	T2   Reg = 12
	T3   Reg = 13
	T4   Reg = 14
	T5   Reg = 15
	S0   Reg = 16 // S0..S11: callee-saved; microJIT assigns locals here
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	S8   Reg = 24
	S9   Reg = 25
	S10  Reg = 26
	S11  Reg = 27
	GP   Reg = 28 // globals (static field area) base
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

// NumRegs is the architectural register count.
const NumRegs = 32

// NumSaved is how many callee-saved registers are available for locals.
const NumSaved = int(S11-S0) + 1

// NumTemps is the depth of the expression temporary stack (T0..T5).
const NumTemps = int(T5-T0) + 1

// NumArgRegs is how many arguments are passed in registers.
const NumArgRegs = int(A5-A0) + 1

// Op is an instruction opcode.
type Op uint8

// Opcodes. Three-register ALU forms compute Rd = Rs op Rt; immediate forms
// compute Rd = Rs op Imm.
const (
	NOP Op = iota

	// Integer ALU, register forms.
	ADD
	SUB
	MUL
	DIV // traps on divide by zero (ArithmeticException)
	REM // traps on divide by zero
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT // Rd = (Rs < Rt) ? 1 : 0, signed
	SLE
	SEQ
	SNE
	MIN // Rd = min(Rs, Rt), signed
	MAX

	// Integer ALU, immediate forms.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LI // Rd = Imm (64-bit immediate materialization)

	// Floating point; register bits are float64. CVT ops convert in place
	// between the integer and float interpretations.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMIN
	FMAX
	FSLT // integer 0/1 result
	FSLE
	FSEQ
	CVTIF // Rd = float64(int64(Rs))
	CVTFI // Rd = int64(trunc(float64bits(Rs)))
	FSQRT
	FSIN
	FCOS
	FEXP
	FLOG

	// Memory. Effective address is Rs + Imm (word offset).
	LW   // Rd = mem[Rs+Imm]
	SW   // mem[Rs+Imm] = Rt
	LWNV // like LW but never raises a speculation violation (§4.2.4)

	// Control flow. Target is an instruction index within the method.
	BEQ
	BNE
	BLT
	BGE
	BLE
	BGT
	J
	CALL // call method Target; arguments in A0..; result in V0
	RET  // return from method; result already in V0

	// TEST annotation instructions (Table 2). Architectural no-ops that the
	// profiler observes. They cost one cycle when annotation mode is on,
	// zero otherwise (they are only present in annotation-mode code).
	LWL   // local variable load annotation; Imm = local slot id
	SWL   // local variable store annotation; Imm = local slot id
	SLOOP // start of prospective STL; Imm = loop id, Imm2 = local slot count
	EOI   // end of iteration of prospective STL; Imm = loop id
	ELOOP // exit of prospective STL; Imm = loop id

	// TLS control markers. Costs follow Table 1 and are charged by the
	// simulator as handler overhead (Figure 10 "Overhead" bucket).
	STLSTART    // master enters an STL; Imm = STL id
	STLEOI      // end of speculative iteration; wait-for-head + commit
	STLSHUTDOWN // loop exit; wait-for-head, kill slaves, resume serial
	STLSWSTART  // multilevel decomposition: switch STL to inner loop (§4.2.6)
	STLSWEND    // multilevel decomposition: restore outer STL
	MFC2        // Rd = coprocessor register Imm (see CP2 constants)

	// VM runtime instructions. These perform their memory traffic through
	// the simulated memory hierarchy so dependencies are architecturally
	// visible (free-list words, lock words, object headers).
	ALLOC    // Rd = new object of class Imm
	ALLOCARR // Rd = new array, length in Rs; Imm = element kind tag
	MONENTER // acquire monitor of object in Rs
	MONEXIT  // release monitor of object in Rs
	THROW    // throw the exception object in Rs
	CHKNULL  // trap NullPointerException if Rs == 0
	CHKIDX   // bounds check: array ref in Rs, index in Rt (reads length word)
	IOPUT    // write Rs to the output stream (system call; never speculative)
	HALT     // end of program (main method only)
)

// CP2 coprocessor registers readable through MFC2.
const (
	CP2Iteration = 0 // per-CPU speculative iteration counter (§4.2.2)
	CP2CPUID     = 1 // id of the executing CPU
)

// Exception kinds carried by trap-raising instructions and Instr.Imm of
// exception table entries.
const (
	ExNullPointer = 1
	ExArrayBounds = 2
	ExArithmetic  = 3
	ExUser        = 4 // programmatic throw of a user exception class
)

// Instr is one instruction. The operand fields used depend on Op; unused
// fields are zero.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int64 // immediate, word offset, id, or coprocessor register
	Imm2   int64 // secondary immediate (e.g. slot count for SLOOP)
	Target int   // branch target pc, or callee method id for CALL
}

// Code is the instruction stream of one compiled method.
type Code []Instr

// numOps is the opcode count, for the static cost table.
const numOps = int(HALT) + 1

// costTable holds the static per-opcode latency, precomputed once so the
// dispatch loop pays an array load instead of a switch per instruction.
var costTable = func() [numOps]int64 {
	var t [numOps]int64
	for op := 0; op < numOps; op++ {
		t[op] = 1
	}
	set := func(c int64, ops ...Op) {
		for _, op := range ops {
			t[op] = c
		}
	}
	set(3, MUL)
	set(10, DIV, REM)
	set(3, FADD, FSUB, FMUL, FMIN, FMAX, FNEG, FABS, FSLT, FSLE, FSEQ, CVTIF, CVTFI)
	set(12, FDIV)
	set(20, FSQRT)
	set(30, FSIN, FCOS, FEXP, FLOG)
	// Allocator bookkeeping beyond its explicit memory traffic.
	set(8, ALLOC, ALLOCARR)
	set(2, MONENTER, MONEXIT)
	set(40, IOPUT) // system call entry/exit
	return t
}()

// Cost returns the base execution latency in cycles for op, excluding memory
// stalls (which the cache model adds) and excluding TLS handler costs (which
// the TLS unit charges per Table 1). Single-issue cores execute one
// instruction per cycle; multi-cycle ops model the longer functional units.
func Cost(op Op) int64 { return costTable[op] }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLE, BGT:
		return true
	}
	return false
}

// IsAnnotation reports whether op is a TEST annotation instruction.
func (op Op) IsAnnotation() bool {
	switch op {
	case LWL, SWL, SLOOP, EOI, ELOOP:
		return true
	}
	return false
}

// Terminates reports whether control never falls through op.
func (op Op) Terminates() bool {
	switch op {
	case J, RET, THROW, HALT:
		return true
	}
	return false
}
