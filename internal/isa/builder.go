package isa

import "fmt"

// Builder assembles instruction streams with symbolic labels. The microJIT
// backend uses it to emit code without tracking instruction indices by hand.
type Builder struct {
	code   Code
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Emit appends an instruction and returns its pc.
func (b *Builder) Emit(in Instr) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Op3 emits a three-register instruction.
func (b *Builder) Op3(op Op, rd, rs, rt Reg) { b.Emit(Instr{Op: op, Rd: rd, Rs: rs, Rt: rt}) }

// Op2 emits a two-register instruction (rd, rs).
func (b *Builder) Op2(op Op, rd, rs Reg) { b.Emit(Instr{Op: op, Rd: rd, Rs: rs}) }

// OpImm emits an immediate-form instruction rd = rs op imm.
func (b *Builder) OpImm(op Op, rd, rs Reg, imm int64) {
	b.Emit(Instr{Op: op, Rd: rd, Rs: rs, Imm: imm})
}

// Li emits a load-immediate.
func (b *Builder) Li(rd Reg, imm int64) { b.Emit(Instr{Op: LI, Rd: rd, Imm: imm}) }

// Move emits rd = rs as an ADD with the zero register.
func (b *Builder) Move(rd, rs Reg) { b.Op3(ADD, rd, rs, Zero) }

// Lw emits rd = mem[rs+off].
func (b *Builder) Lw(rd, rs Reg, off int64) { b.Emit(Instr{Op: LW, Rd: rd, Rs: rs, Imm: off}) }

// Sw emits mem[rs+off] = rt.
func (b *Builder) Sw(rt, rs Reg, off int64) { b.Emit(Instr{Op: SW, Rt: rt, Rs: rs, Imm: off}) }

// Label binds name to the next instruction. Binding the same name twice
// panics: label names are compiler-generated and must be unique.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
}

// Br emits a conditional branch to a label resolved at Finish time.
func (b *Builder) Br(op Op, rs, rt Reg, label string) {
	pc := b.Emit(Instr{Op: op, Rs: rs, Rt: rt, Target: -1})
	b.fixups = append(b.fixups, fixup{pc: pc, label: label})
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	pc := b.Emit(Instr{Op: J, Target: -1})
	b.fixups = append(b.fixups, fixup{pc: pc, label: label})
}

// Call emits a call to method id.
func (b *Builder) Call(method int) { b.Emit(Instr{Op: CALL, Target: method}) }

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.code) }

// LabelPC returns the bound pc of a label, or -1 if unbound.
func (b *Builder) LabelPC(name string) int {
	if pc, ok := b.labels[name]; ok {
		return pc
	}
	return -1
}

// Finish resolves all label references and returns the code. It panics on an
// undefined label, which indicates a compiler bug.
func (b *Builder) Finish() Code {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q", f.label))
		}
		b.code[f.pc].Target = pc
	}
	return b.code
}
