package isa

// OpTraits classifies an opcode for the tier-2 block engine: which
// instructions may be folded into a straight-line superinstruction block, and
// which side channels (memory traffic, traps, data faults) each one can
// touch. The table is the single source of truth for block-boundary
// decisions — an opcode not marked TraitFusable always executes in the
// cycle-accurate interpreter, so scheduler transitions (STL markers, calls,
// allocation, monitors, I/O) can never happen mid-block.
type OpTraits uint8

const (
	// TraitFusable marks an op the block compiler may fold into a tier-2
	// block. Everything else is a block boundary and always interprets.
	TraitFusable OpTraits = 1 << iota
	// TraitWritesRd marks an op that writes the Rd register.
	TraitWritesRd
	// TraitMem marks an op that issues data-memory traffic through
	// loadWord/storeWord (and therefore charges cache latency).
	TraitMem
	// TraitTrap marks an op that can raise a software exception
	// (divide-by-zero, null check, bounds check).
	TraitTrap
	// TraitFault marks an op that can data-fault on a wild effective
	// address.
	TraitFault
	// TraitBranch marks a conditional branch (a block terminator with two
	// successors). J is the one-successor terminator and is detected by
	// opcode, not by trait.
	TraitBranch
)

// Has reports whether t contains every flag in f.
func (t OpTraits) Has(f OpTraits) bool { return t&f == f }

var traitTable = func() [numOps]OpTraits {
	var t [numOps]OpTraits
	set := func(tr OpTraits, ops ...Op) {
		for _, op := range ops {
			t[op] = tr
		}
	}
	set(TraitFusable, NOP)
	// Pure integer and FP ALU: fusable register writes, no side channels.
	set(TraitFusable|TraitWritesRd,
		ADD, SUB, MUL, AND, OR, XOR, NOR, SLL, SRL, SRA,
		SLT, SLE, SEQ, SNE, MIN, MAX,
		ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LI,
		FADD, FSUB, FMUL, FDIV, FNEG, FABS, FMIN, FMAX,
		FSLT, FSLE, FSEQ, CVTIF, CVTFI, FSQRT, FSIN, FCOS, FEXP, FLOG)
	// Integer division traps on a zero divisor.
	set(TraitFusable|TraitWritesRd|TraitTrap, DIV, REM)
	// Loads and stores go through loadWord/storeWord and may fault.
	set(TraitFusable|TraitWritesRd|TraitMem|TraitFault, LW, LWNV)
	set(TraitFusable|TraitMem|TraitFault, SW)
	// Conditional branches terminate a block.
	set(TraitFusable|TraitBranch, BEQ, BNE, BLT, BGE, BLE, BGT)
	set(TraitFusable, J)
	// TEST annotations are architectural no-ops observed by the profiler;
	// the fused handlers replay the same Tracer hooks at the same clocks.
	set(TraitFusable, LWL, SWL, SLOOP, EOI, ELOOP)
	// Coprocessor reads are pure given a valid register index (the block
	// compiler rejects unknown indices so badProgram stays interpreted).
	set(TraitFusable|TraitWritesRd, MFC2)
	// Null and bounds checks trap; the bounds check also loads the array
	// length word through the cache model.
	set(TraitFusable|TraitTrap, CHKNULL)
	set(TraitFusable|TraitTrap|TraitMem|TraitFault, CHKIDX)
	// Everything else — calls, returns, STL markers, allocation, monitors,
	// throw, I/O, halt — stays interpreted: each one can reschedule CPUs,
	// enter the runtime, or flip TLS.Active, and the demotion matrix in
	// internal/hydra relies on the interpreter owning those transitions.
	return t
}()

// Traits returns the tier-2 classification of op.
func Traits(op Op) OpTraits { return traitTable[op] }
