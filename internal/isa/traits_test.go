package isa

import "testing"

// Every opcode must be classified: either fusable (block-compiled by the
// tier-2 engine) or an explicit boundary. This test pins the boundary set so
// a new opcode cannot silently join tier-2 blocks without a deliberate edit
// here.
func TestTraitsBoundarySet(t *testing.T) {
	boundary := map[Op]bool{
		CALL: true, RET: true,
		STLSTART: true, STLEOI: true, STLSHUTDOWN: true,
		STLSWSTART: true, STLSWEND: true,
		ALLOC: true, ALLOCARR: true,
		MONENTER: true, MONEXIT: true,
		THROW: true, IOPUT: true, HALT: true,
	}
	for op := Op(0); op < Op(numOps); op++ {
		fusable := Traits(op).Has(TraitFusable)
		if boundary[op] && fusable {
			t.Errorf("%s: scheduler/runtime op must not be fusable", op.Name())
		}
		if !boundary[op] && !fusable {
			t.Errorf("%s: expected fusable (not in the boundary set)", op.Name())
		}
	}
}

// Side-channel flags must agree with the interpreter's semantics in
// internal/hydra/exec.go: ops that trap, touch memory, or fault carry the
// matching trait so the block compiler and the demotion accounting stay
// honest.
func TestTraitsSideChannels(t *testing.T) {
	cases := []struct {
		op   Op
		want OpTraits
	}{
		{ADD, TraitFusable | TraitWritesRd},
		{LI, TraitFusable | TraitWritesRd},
		{FDIV, TraitFusable | TraitWritesRd},
		{DIV, TraitFusable | TraitWritesRd | TraitTrap},
		{REM, TraitFusable | TraitWritesRd | TraitTrap},
		{LW, TraitFusable | TraitWritesRd | TraitMem | TraitFault},
		{LWNV, TraitFusable | TraitWritesRd | TraitMem | TraitFault},
		{SW, TraitFusable | TraitMem | TraitFault},
		{BEQ, TraitFusable | TraitBranch},
		{BGT, TraitFusable | TraitBranch},
		{J, TraitFusable},
		{LWL, TraitFusable},
		{SLOOP, TraitFusable},
		{MFC2, TraitFusable | TraitWritesRd},
		{CHKNULL, TraitFusable | TraitTrap},
		{CHKIDX, TraitFusable | TraitTrap | TraitMem | TraitFault},
		{NOP, TraitFusable},
		{CALL, 0},
		{STLEOI, 0},
		{HALT, 0},
	}
	for _, c := range cases {
		if got := Traits(c.op); got != c.want {
			t.Errorf("Traits(%s) = %b, want %b", c.op.Name(), got, c.want)
		}
	}
	// Conditional branches are exactly the IsBranch set.
	for op := Op(0); op < Op(numOps); op++ {
		if Traits(op).Has(TraitBranch) != op.IsBranch() {
			t.Errorf("%s: TraitBranch disagrees with IsBranch", op.Name())
		}
	}
}
