package isa

import (
	"strings"
	"testing"
)

func TestOpNamesComplete(t *testing.T) {
	for op := NOP; op <= HALT; op++ {
		if strings.HasPrefix(op.Name(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestRegisterNames(t *testing.T) {
	cases := map[Reg]string{
		Zero: "$zero", V0: "$v0", A0: "$a0", T0: "$t0",
		S0: "$s0", S11: "$s11", GP: "$gp", SP: "$sp", FP: "$fp", RA: "$ra",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegisterPartition(t *testing.T) {
	// The calling convention partitions must not overlap and must cover
	// what the JIT assumes.
	if NumSaved != 12 {
		t.Errorf("NumSaved = %d, want 12", NumSaved)
	}
	if NumTemps != 6 {
		t.Errorf("NumTemps = %d, want 6", NumTemps)
	}
	if NumArgRegs != 6 {
		t.Errorf("NumArgRegs = %d, want 6", NumArgRegs)
	}
	if A5 >= T0 || T5 >= S0 || S11 >= GP {
		t.Error("register class boundaries overlap")
	}
}

func TestCostBaseline(t *testing.T) {
	if Cost(ADD) != 1 || Cost(LW) != 1 || Cost(BEQ) != 1 {
		t.Error("simple ops must cost one cycle")
	}
	if Cost(DIV) <= Cost(MUL) || Cost(MUL) <= Cost(ADD) {
		t.Error("latency ordering add < mul < div violated")
	}
	if Cost(FSQRT) <= Cost(FDIV) {
		t.Error("fsqrt should be slower than fdiv")
	}
}

func TestPredicates(t *testing.T) {
	for _, op := range []Op{BEQ, BNE, BLT, BGE, BLE, BGT} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op.Name())
		}
	}
	for _, op := range []Op{J, RET, THROW, HALT} {
		if !op.Terminates() {
			t.Errorf("%s should terminate a block", op.Name())
		}
		if op.IsBranch() {
			t.Errorf("%s should not be a conditional branch", op.Name())
		}
	}
	for _, op := range []Op{LWL, SWL, SLOOP, EOI, ELOOP} {
		if !op.IsAnnotation() {
			t.Errorf("%s should be an annotation", op.Name())
		}
	}
	if LW.IsAnnotation() || ADD.IsBranch() {
		t.Error("predicate false positives")
	}
}

func TestBuilderResolvesLabels(t *testing.T) {
	b := NewBuilder()
	b.Li(T0, 5)
	b.Label("top")
	b.OpImm(ADDI, T0, T0, -1)
	b.Br(BGT, T0, Zero, "top")
	b.Jmp("done")
	b.Op3(ADD, T1, T1, T1) // dead
	b.Label("done")
	b.Emit(Instr{Op: HALT})
	code := b.Finish()

	if code[2].Target != 1 {
		t.Errorf("backward branch target = %d, want 1", code[2].Target)
	}
	if code[3].Target != 5 {
		t.Errorf("forward jump target = %d, want 5", code[3].Target)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Finish with undefined label should panic")
		}
	}()
	b := NewBuilder()
	b.Jmp("nowhere")
	b.Finish()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label should panic")
		}
	}()
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
}

func TestDisassembleSmoke(t *testing.T) {
	b := NewBuilder()
	b.Li(T0, 42)
	b.Lw(T1, FP, 3)
	b.Sw(T1, GP, 7)
	b.Emit(Instr{Op: SLOOP, Imm: 2, Imm2: 1})
	b.Emit(Instr{Op: LWL, Imm: 0})
	b.Emit(Instr{Op: HALT})
	text := Disassemble(b.Finish())
	for _, want := range []string{"li", "lw", "sw", "sloop", "L2", "lwl", "v0", "halt", "3($fp)", "7($gp)"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestLabelPC(t *testing.T) {
	b := NewBuilder()
	if b.LabelPC("missing") != -1 {
		t.Error("unbound label should report -1")
	}
	b.Li(T0, 1)
	b.Label("here")
	if b.LabelPC("here") != 1 {
		t.Errorf("LabelPC = %d, want 1", b.LabelPC("here"))
	}
}
