package isa

import "fmt"

var opNames = map[Op]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", NOR: "nor",
	SLL: "sll", SRL: "srl", SRA: "sra",
	SLT: "slt", SLE: "sle", SEQ: "seq", SNE: "sne", MIN: "min", MAX: "max",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LI: "li",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FNEG: "fneg", FABS: "fabs", FMIN: "fmin", FMAX: "fmax",
	FSLT: "fslt", FSLE: "fsle", FSEQ: "fseq",
	CVTIF: "cvtif", CVTFI: "cvtfi",
	FSQRT: "fsqrt", FSIN: "fsin", FCOS: "fcos", FEXP: "fexp", FLOG: "flog",
	LW: "lw", SW: "sw", LWNV: "lwnv",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLE: "ble", BGT: "bgt",
	J: "j", CALL: "call", RET: "ret",
	LWL: "lwl", SWL: "swl", SLOOP: "sloop", EOI: "eoi", ELOOP: "eloop",
	STLSTART: "stl_startup", STLEOI: "stl_eoi", STLSHUTDOWN: "stl_shutdown",
	STLSWSTART: "stl_switch_startup", STLSWEND: "stl_switch_shutdown",
	MFC2:  "mfc2",
	ALLOC: "alloc", ALLOCARR: "allocarr",
	MONENTER: "monenter", MONEXIT: "monexit",
	THROW: "throw", CHKNULL: "chknull", CHKIDX: "chkidx",
	IOPUT: "ioput", HALT: "halt",
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "a4", "a5",
	"t0", "t1", "t2", "t3", "t4", "t5",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
	"gp", "sp", "fp", "ra",
}

// String returns the conventional register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// String disassembles one instruction.
func (in Instr) String() string {
	op := in.Op
	switch op {
	case NOP, RET, HALT, STLEOI, STLSHUTDOWN, STLSWEND:
		return op.Name()
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLL, SRL, SRA,
		SLT, SLE, SEQ, SNE, MIN, MAX,
		FADD, FSUB, FMUL, FDIV, FMIN, FMAX, FSLT, FSLE, FSEQ:
		return fmt.Sprintf("%-8s %s, %s, %s", op.Name(), in.Rd, in.Rs, in.Rt)
	case FNEG, FABS, CVTIF, CVTFI, FSQRT, FSIN, FCOS, FEXP, FLOG:
		return fmt.Sprintf("%-8s %s, %s", op.Name(), in.Rd, in.Rs)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%-8s %s, %s, %d", op.Name(), in.Rd, in.Rs, in.Imm)
	case LI:
		return fmt.Sprintf("%-8s %s, %d", op.Name(), in.Rd, in.Imm)
	case LW, LWNV:
		return fmt.Sprintf("%-8s %s, %d(%s)", op.Name(), in.Rd, in.Imm, in.Rs)
	case SW:
		return fmt.Sprintf("%-8s %s, %d(%s)", op.Name(), in.Rt, in.Imm, in.Rs)
	case BEQ, BNE, BLT, BGE, BLE, BGT:
		return fmt.Sprintf("%-8s %s, %s, @%d", op.Name(), in.Rs, in.Rt, in.Target)
	case J:
		return fmt.Sprintf("%-8s @%d", op.Name(), in.Target)
	case CALL:
		return fmt.Sprintf("%-8s m%d", op.Name(), in.Target)
	case LWL, SWL:
		return fmt.Sprintf("%-8s v%d", op.Name(), in.Imm)
	case SLOOP:
		return fmt.Sprintf("%-8s L%d, %d", op.Name(), in.Imm, in.Imm2)
	case EOI, ELOOP:
		return fmt.Sprintf("%-8s L%d", op.Name(), in.Imm)
	case STLSTART, STLSWSTART:
		return fmt.Sprintf("%-8s stl%d", op.Name(), in.Imm)
	case MFC2:
		return fmt.Sprintf("%-8s %s, cp2:%d", op.Name(), in.Rd, in.Imm)
	case ALLOC:
		return fmt.Sprintf("%-8s %s, class%d", op.Name(), in.Rd, in.Imm)
	case ALLOCARR:
		return fmt.Sprintf("%-8s %s, %s", op.Name(), in.Rd, in.Rs)
	case MONENTER, MONEXIT, THROW, CHKNULL, IOPUT:
		return fmt.Sprintf("%-8s %s", op.Name(), in.Rs)
	case CHKIDX:
		return fmt.Sprintf("%-8s %s[%s]", op.Name(), in.Rs, in.Rt)
	default:
		return fmt.Sprintf("%-8s rd=%s rs=%s rt=%s imm=%d tgt=%d",
			op.Name(), in.Rd, in.Rs, in.Rt, in.Imm, in.Target)
	}
}

// Disassemble renders code with instruction indices, one per line.
func Disassemble(code Code) string {
	out := ""
	for i, in := range code {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}
