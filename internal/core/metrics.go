package core

import (
	"fmt"
	"sort"

	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
)

// GuardLoopEntry pairs a loop id with its guard statistics for ordered
// iteration.
type GuardLoopEntry struct {
	LoopID int64
	Stats  tls.GuardLoopStats
}

// SortedGuardStats returns the phase's per-loop guard statistics in
// ascending loop-id order. GuardStats itself is a map, so ranging over it
// directly gives a different order every run; report and trace output must
// go through this accessor to stay deterministic.
func (p *Phase) SortedGuardStats() []GuardLoopEntry {
	if len(p.GuardStats) == 0 {
		return nil
	}
	out := make([]GuardLoopEntry, 0, len(p.GuardStats))
	for id, st := range p.GuardStats {
		out = append(out, GuardLoopEntry{LoopID: id, Stats: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoopID < out[j].LoopID })
	return out
}

// FillMetrics snapshots the phase's counters into reg under the given label
// set (comma form, e.g. `phase="tls",workload="BitOps"`).
func (p *Phase) FillMetrics(reg *obs.Registry, labels string) {
	add := func(name string, v int64) {
		reg.Counter(obs.Name(name, labels)).Add(v)
	}
	add("jrpm_cycles_total", p.Cycles)
	add("jrpm_instructions_total", p.Instructions)
	add("jrpm_gc_cycles_total", p.GCCycles)
	add("jrpm_gc_runs_total", p.GCRuns)
	add("jrpm_tls_commits_total", p.Commits)
	add("jrpm_tls_violations_total", p.Violations)
	add("jrpm_tls_overflows_total", p.Overflows)
	add("jrpm_cache_l1_hits_total", p.L1Hits)
	add("jrpm_cache_l1_misses_total", p.L1Misses)
	add("jrpm_cache_l2_hits_total", p.L2Hits)
	add("jrpm_cache_l2_misses_total", p.L2Misses)

	// The paper's Figure 6/7 state breakdown, one labeled counter per
	// bucket.
	state := func(bucket string, v int64) {
		reg.Counter(obs.Name("jrpm_state_cycles_total",
			obs.JoinLabels(fmt.Sprintf("state=%q", bucket), labels))).Add(v)
	}
	state("serial", p.Stats.Serial)
	state("run_used", p.Stats.RunUsed)
	state("wait_used", p.Stats.WaitUsed)
	state("overhead", p.Stats.Overhead)
	state("run_violated", p.Stats.RunViolated)
	state("wait_violated", p.Stats.WaitViolated)

	// Tier-2 block-engine activity. Demotions get one labeled counter per
	// reason so a dashboard can tell a trap-heavy workload from one that
	// simply lives inside speculative regions.
	add("jrpm_tier_promotions_total", p.Tier.Promotions)
	add("jrpm_tier_blocks_compiled_total", p.Tier.BlocksCompiled)
	add("jrpm_tier_cache_hits_total", p.Tier.CacheHits)
	add("jrpm_tier_cache_misses_total", p.Tier.CacheMisses)
	add("jrpm_tier_links_total", p.Tier.Linked)
	add("jrpm_tier_interp_steps_total", p.Tier.InterpSteps)
	for r := hydra.DemoteReason(0); r < hydra.NumDemoteReasons; r++ {
		if v := p.Tier.Demote[r]; v != 0 {
			reg.Counter(obs.Name("jrpm_tier_demotions_total",
				obs.JoinLabels(fmt.Sprintf("reason=%q", r), labels))).Add(v)
		}
	}

	reg.Gauge(obs.Name("jrpm_tls_store_buffer_lines_avg", labels)).Set(p.AvgStoreBuf)
	reg.Gauge(obs.Name("jrpm_tls_load_buffer_lines_avg", labels)).Set(p.AvgLoadBuf)

	for _, e := range p.SortedGuardStats() {
		gl := obs.JoinLabels(fmt.Sprintf("loop=\"%d\"", e.LoopID), labels)
		reg.Counter(obs.Name("jrpm_guard_decerts_total", gl)).Add(e.Stats.Decerts)
		reg.Counter(obs.Name("jrpm_guard_probes_total", gl)).Add(e.Stats.Probes)
		reg.Counter(obs.Name("jrpm_guard_recerts_total", gl)).Add(e.Stats.Recerts)
	}
}

// FillMetrics snapshots the whole pipeline result into reg: one metric set
// per phase (labelled phase="seq"/"profile"/"tls") plus pipeline-level
// compile costs and speedup gauges. labels is appended to every metric.
func (r *Result) FillMetrics(reg *obs.Registry, labels string) {
	r.Seq.FillMetrics(reg, obs.JoinLabels(`phase="seq"`, labels))
	r.Profile.FillMetrics(reg, obs.JoinLabels(`phase="profile"`, labels))
	r.TLS.FillMetrics(reg, obs.JoinLabels(`phase="tls"`, labels))

	reg.Counter(obs.Name("jrpm_compile_cycles_total", labels)).Add(r.CompileCycles)
	reg.Counter(obs.Name("jrpm_recompile_cycles_total", labels)).Add(r.RecompileCycles)
	reg.Gauge(obs.Name("jrpm_speedup_actual", labels)).Set(r.SpeedupActual())
	reg.Gauge(obs.Name("jrpm_speedup_predicted", labels)).Set(r.SpeedupPredicted())
	reg.Gauge(obs.Name("jrpm_profile_slowdown", labels)).Set(r.ProfileSlowdown())
	reg.Gauge(obs.Name("jrpm_guard_decertified_loops", labels)).
		Set(float64(len(r.TLS.DecertifiedLoops)))
}

// Metrics snapshots the result into a fresh registry with no extra labels.
func (r *Result) Metrics() *obs.Registry {
	reg := obs.NewRegistry()
	r.FillMetrics(reg, "")
	return reg
}
