package core

import (
	"strings"
	"testing"

	"jrpm/internal/bytecode"
	fe "jrpm/internal/frontend"
	"jrpm/internal/tls"
	"jrpm/internal/vm"
)

// vectorKernel: a[i] = i*i + i over n elements, checksummed — embarrassingly
// parallel, the pipeline should select and speed it up.
func vectorKernel(n int64) *bytecode.Program {
	p := fe.NewProgram("vector")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(n))),
		fe.ForUp("i", fe.I(0), fe.I(n),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.Add(fe.Mul(fe.L("i"), fe.L("i")), fe.L("i"))),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(n),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("sum")),
	)
	return p.MustBuild()
}

// serialKernel: pointer-chasing accumulator with an early-read/late-write
// carried dependency that no optimization removes; the analyzer should
// refuse to select it (or at most gain nothing).
func serialKernel(n int64) *bytecode.Program {
	p := fe.NewProgram("serial")
	p.Func("main", nil, false).Body(
		fe.Set("x", fe.I(7)),
		fe.ForUp("i", fe.I(0), fe.I(n),
			fe.Set("t", fe.Rem(fe.Mul(fe.L("x"), fe.L("x")), fe.I(1000003))),
			fe.Set("u", fe.Add(fe.L("t"), fe.Mul(fe.L("t"), fe.I(3)))),
			fe.Set("x", fe.Add(fe.Rem(fe.L("u"), fe.I(999983)), fe.I(1))),
		),
		fe.Print(fe.L("x")),
	)
	return p.MustBuild()
}

func TestPipelineSelectsAndSpeedsUpParallelLoop(t *testing.T) {
	res, err := Run(vectorKernel(400), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatalf("outputs differ: seq %v, tls %v", res.Seq.Output, res.TLS.Output)
	}
	selected := 0
	for _, d := range res.Analysis.Decisions {
		if d.Selected {
			selected++
		}
	}
	if selected == 0 {
		for _, d := range res.Analysis.Decisions {
			t.Logf("loop %d: %s (pred %.2f)", d.LoopID, d.Reason, d.Prediction.Speedup)
		}
		t.Fatal("no loops selected for a parallel kernel")
	}
	if sp := res.SpeedupActual(); sp < 1.5 {
		t.Errorf("actual speedup = %.2f, want > 1.5", sp)
	}
	if sp := res.SpeedupPredicted(); sp < 1.2 {
		t.Errorf("predicted speedup = %.2f", sp)
	}
	if res.ProfileSlowdown() < 0 || res.ProfileSlowdown() > 0.6 {
		t.Errorf("profiling slowdown = %.2f", res.ProfileSlowdown())
	}
}

func TestTotalSpeedupPositiveOnLongRun(t *testing.T) {
	// Figure 9's point: compile/profile/recompile overheads amortize over
	// realistic run lengths. A longer kernel must show net total speedup.
	res, err := Run(vectorKernel(4000), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSpeedup() <= 1.0 {
		t.Errorf("total speedup = %.2f (overheads swamped the gain)", res.TotalSpeedup())
	}
}

func TestPipelineRespectsSerialLoop(t *testing.T) {
	res, err := Run(serialKernel(300), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ")
	}
	// Whatever the analyzer decided, the run must not be much slower than
	// sequential, and the prediction must not promise a big win.
	if sp := res.SpeedupPredicted(); sp > 2.0 {
		t.Errorf("predicted speedup %.2f for a serial chain is wrong", sp)
	}
	if res.TLS.Cycles > res.Seq.Cycles*3 {
		t.Errorf("TLS run %.1fx slower than sequential", float64(res.TLS.Cycles)/float64(res.Seq.Cycles))
	}
}

func TestPipelineNestedLoopSelectsOneLevel(t *testing.T) {
	// Classic 2D sweep: outer over rows, inner over columns.
	p := fe.NewProgram("nest")
	p.Func("main", nil, false).Body(
		fe.Set("n", fe.I(24)),
		fe.Set("a", fe.NewArr(fe.Mul(fe.L("n"), fe.L("n")))),
		fe.ForUp("i", fe.I(0), fe.L("n"),
			fe.ForUp("j", fe.I(0), fe.L("n"),
				fe.SetIdx(fe.L("a"), fe.Add(fe.Mul(fe.L("i"), fe.L("n")), fe.L("j")),
					fe.Mul(fe.L("i"), fe.L("j"))),
			),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("k", fe.I(0), fe.Mul(fe.L("n"), fe.L("n")),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("k")))),
		),
		fe.Print(fe.L("sum")),
	)
	res, err := Run(p.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ")
	}
	// In the i/j nest at most one level may be selected.
	byMethod := map[int][]int{}
	for _, d := range res.Analysis.Decisions {
		if d.Selected && !d.Inner {
			byMethod[d.MethodID] = append(byMethod[d.MethodID], d.LoopIndex)
		}
	}
	// The two nested loops are indices of the same method; ensure no
	// ancestor/descendant pair is selected together by checking depths.
	depthCount := map[int]int{}
	for _, d := range res.Analysis.Decisions {
		if d.Selected && !d.Inner {
			depthCount[d.Depth]++
		}
	}
	if res.SpeedupActual() < 1.2 {
		t.Errorf("speedup = %.2f", res.SpeedupActual())
	}
}

func TestPipelineWithAllocationAndVMModifications(t *testing.T) {
	// Per-iteration allocation: with per-CPU free lists the loop
	// parallelizes; with the shared list it serializes on the allocator.
	build := func() *bytecode.Program {
		p := fe.NewProgram("alloc")
		box := p.Class("Box", "v", "w", "x", "y")
		p.Func("main", nil, false).Body(
			fe.Set("sum", fe.I(0)),
			fe.ForUp("i", fe.I(0), fe.I(200),
				fe.Set("b", fe.NewE(box)),
				fe.SetField(fe.L("b"), box, "v", fe.Mul(fe.L("i"), fe.I(3))),
				fe.Set("sum", fe.Add(fe.L("sum"), fe.FieldE(fe.L("b"), box, "v"))),
			),
			fe.Print(fe.L("sum")),
		)
		return p.MustBuild()
	}
	optsOn := DefaultOptions()
	resOn, err := Run(build(), optsOn)
	if err != nil {
		t.Fatal(err)
	}
	optsOff := DefaultOptions()
	optsOff.VM = vm.Config{ParallelAlloc: false, ElideLocks: true}
	resOff, err := Run(build(), optsOff)
	if err != nil {
		t.Fatal(err)
	}
	if !resOn.OutputsMatch || !resOff.OutputsMatch {
		t.Fatal("outputs differ")
	}
	if resOn.SpeedupActual() <= resOff.SpeedupActual() {
		t.Errorf("parallel allocator should help: with %.2f, without %.2f",
			resOn.SpeedupActual(), resOff.SpeedupActual())
	}
}

func TestPipelineSynchronizedLoop(t *testing.T) {
	// A synchronized block per iteration: lock elision keeps it parallel.
	build := func() *bytecode.Program {
		p := fe.NewProgram("synced")
		obj := p.Class("Shared", "slot")
		p.Func("main", nil, false).Body(
			fe.Set("o", fe.NewE(obj)),
			fe.Set("a", fe.NewArr(fe.I(160))),
			fe.ForUp("i", fe.I(0), fe.I(160),
				fe.Synchronized(fe.L("o"),
					fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.L("i"))),
				),
			),
			fe.Set("s", fe.I(0)),
			fe.ForUp("j", fe.I(0), fe.I(160),
				fe.Set("s", fe.Add(fe.L("s"), fe.Idx(fe.L("a"), fe.L("j")))),
			),
			fe.Print(fe.L("s")),
		)
		return p.MustBuild()
	}
	on := DefaultOptions()
	resOn, err := Run(build(), on)
	if err != nil {
		t.Fatal(err)
	}
	off := DefaultOptions()
	off.VM = vm.Config{ParallelAlloc: true, ElideLocks: false}
	resOff, err := Run(build(), off)
	if err != nil {
		t.Fatal(err)
	}
	if !resOn.OutputsMatch || !resOff.OutputsMatch {
		t.Fatal("outputs differ")
	}
	if resOn.TLS.Violations > resOff.TLS.Violations {
		t.Errorf("lock elision should not increase violations (%d vs %d)",
			resOn.TLS.Violations, resOff.TLS.Violations)
	}
	if resOn.SpeedupActual() < resOff.SpeedupActual() {
		t.Errorf("elision should help: on %.2f off %.2f", resOn.SpeedupActual(), resOff.SpeedupActual())
	}
}

func TestOldHandlersSlower(t *testing.T) {
	newOpts := DefaultOptions()
	resNew, err := Run(vectorKernel(300), newOpts)
	if err != nil {
		t.Fatal(err)
	}
	oldOpts := DefaultOptions()
	oldOpts.Handlers = tls.OldHandlers
	resOld, err := Run(vectorKernel(300), oldOpts)
	if err != nil {
		t.Fatal(err)
	}
	if resOld.TLS.Cycles <= resNew.TLS.Cycles {
		t.Errorf("old handlers should be slower: old %d, new %d",
			resOld.TLS.Cycles, resNew.TLS.Cycles)
	}
}

func TestResultAccessorsOnEmpty(t *testing.T) {
	r := &Result{}
	if r.SpeedupActual() != 0 || r.SpeedupPredicted() != 0 || r.TotalSpeedup() != 0 {
		t.Error("zero-value result accessors should be 0")
	}
	if r.ProfileSlowdown() != 0 || r.SerialFraction() != 0 {
		t.Error("zero-value fractions should be 0")
	}
}

func TestExceptionCaughtInsideSelectedLoop(t *testing.T) {
	// A conditional throw caught within the same iteration: speculative
	// threads defer the exception until they become the head (§5.1), then
	// take the in-STL handler without ending speculation.
	p := fe.NewProgram("excloop")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(200))),
		fe.Set("errs", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(200),
			fe.Try(
				fe.S(
					// Every 7th iteration divides by zero.
					fe.Set("d", fe.Sel(fe.Eq(fe.Rem(fe.L("i"), fe.I(7)), fe.I(0)), fe.I(0), fe.I(2))),
					fe.SetIdx(fe.L("a"), fe.L("i"), fe.Div(fe.Mul(fe.L("i"), fe.I(6)), fe.L("d"))),
				),
				0, "e",
				fe.S(fe.Inc("errs", 1)),
			),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(200),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("sum")),
		fe.Print(fe.L("errs")),
	)
	res, err := Run(p.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatalf("outputs differ: seq=%v tls=%v", res.Seq.Output, res.TLS.Output)
	}
	if res.TLS.Output[1] != 29 { // ceil(200/7)
		t.Fatalf("errs = %d, want 29", res.TLS.Output[1])
	}
}

func TestPrintInsideLoopExcludedButCorrect(t *testing.T) {
	p := fe.NewProgram("io")
	p.Func("main", nil, false).Body(
		fe.ForUp("i", fe.I(0), fe.I(10),
			fe.Print(fe.Mul(fe.L("i"), fe.L("i"))),
		),
	)
	res, err := Run(p.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ")
	}
	if len(res.TLS.Output) != 10 || res.TLS.Output[9] != 81 {
		t.Fatalf("output = %v", res.TLS.Output)
	}
	for _, d := range res.Analysis.Decisions {
		if d.Selected {
			t.Fatal("IO loop must not be selected")
		}
	}
}

func TestRuntimeOverflowStallsStayCorrect(t *testing.T) {
	// Tiny store buffer: threads overflow and stall until they are the
	// head; results must still be exact.
	opts := DefaultOptions()
	cfg := tls.DefaultConfig(opts.NCPU)
	cfg.StoreBufferLines = 4
	opts.TLS = &cfg
	res, err := Run(vectorKernel(300), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatal("outputs differ under overflow stalls")
	}
}

func TestGCDuringSpeculation(t *testing.T) {
	// A selected loop allocating every iteration on a tiny heap: the
	// collection request arrives from a speculative thread, which must
	// quiesce the machine (violating younger threads) before collecting.
	p := fe.NewProgram("gcspec")
	box := p.Class("Box", "v", "w")
	p.Func("main", nil, false).Body(
		fe.Set("sum", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(400),
			fe.Set("b", fe.NewE(box)),
			fe.SetField(fe.L("b"), box, "v", fe.L("i")),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.FieldE(fe.L("b"), box, "v"))),
		),
		fe.Print(fe.L("sum")),
	)
	opts := DefaultOptions()
	opts.VM.HeapWords = 800 // forces multiple collections mid-loop
	res, err := Run(p.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatalf("outputs differ: seq=%v tls=%v", res.Seq.Output, res.TLS.Output)
	}
	if res.TLS.GCRuns == 0 {
		t.Fatal("expected collections during the speculative run")
	}
}

func TestAdaptiveReprofileOnOverflow(t *testing.T) {
	// The profiled footprint is two heap lines per iteration — exactly at a
	// 2-line buffer's capacity, so TEST predicts no overflow. The TLS code
	// additionally banks the reduction partial in the runtime stack every
	// iteration (profile-invisible state), so every committed thread
	// overflows at run time — the §6.2 gap the adaptive path watches for.
	//
	// The contract under test: the overflow feedback signal is collected
	// per loop, the adaptive pipeline re-evaluates the selection, and it
	// never produces a slower (or incorrect) run than the plain pipeline —
	// it only swaps in the reselected code when that is actually faster.
	// (Overflow stalls are pure waiting in this machine, so the stalled
	// run often remains the best available choice.)
	build := func() *bytecode.Program {
		p := fe.NewProgram("adaptive")
		p.Func("main", nil, false).Body(
			fe.Set("b", fe.NewArr(fe.I(256))),
			fe.Set("c", fe.NewArr(fe.I(256))),
			fe.Set("sum", fe.I(0)),
			fe.ForUp("i", fe.I(0), fe.I(256),
				fe.SetIdx(fe.L("b"), fe.L("i"), fe.Mul(fe.L("i"), fe.I(3))),
				fe.SetIdx(fe.L("c"), fe.L("i"), fe.Add(fe.L("i"), fe.I(7))),
				fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("b"), fe.L("i")))),
			),
			fe.Print(fe.L("sum")),
		)
		return p.MustBuild()
	}
	opts := DefaultOptions()
	cfg := tls.DefaultConfig(opts.NCPU)
	cfg.StoreBufferLines = 2
	opts.TLS = &cfg
	plain, err := Run(build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TLS.Overflows < 16 {
		t.Fatalf("scenario produced only %d overflow stalls", plain.TLS.Overflows)
	}
	if len(plain.TLS.OverflowBySTL) == 0 {
		t.Fatal("per-STL overflow attribution missing")
	}
	opts.AdaptiveReprofile = true
	adapted, err := Run(build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !adapted.OutputsMatch {
		t.Fatal("outputs differ after adaptation")
	}
	if adapted.TLS.Cycles > plain.TLS.Cycles {
		t.Errorf("adaptation made the run slower: %d vs %d", adapted.TLS.Cycles, plain.TLS.Cycles)
	}
	if adapted.Adapted && len(adapted.ExcludedLoops) == 0 {
		t.Error("Adapted set without excluded loops")
	}
}

func TestOutOfMemoryDetected(t *testing.T) {
	// Every allocation stays reachable through a live array, so collection
	// can never free anything: the machine must fail with an out-of-memory
	// error instead of collecting forever.
	p := fe.NewProgram("oom")
	box := p.Class("Box", "a", "b", "c", "d", "e", "f")
	p.Func("main", nil, false).Body(
		fe.Set("keep", fe.NewArr(fe.I(512))),
		fe.ForUp("i", fe.I(0), fe.I(512),
			fe.SetIdx(fe.L("keep"), fe.L("i"), fe.NewE(box)),
		),
		fe.Print(fe.Len(fe.L("keep"))),
	)
	opts := DefaultOptions()
	opts.VM.HeapWords = 900 // 512 live 8-word objects cannot fit
	_, err := Run(p.MustBuild(), opts)
	if err == nil {
		t.Fatal("expected an out-of-memory error")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("unexpected error: %v", err)
	}
}
