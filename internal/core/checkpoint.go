// Checkpoint/resume support for pipeline runs.
//
// A Checkpoint is one safepoint snapshot of a snapshotable pipeline phase —
// the baseline sequential run or the speculative TLS run (the profiling run
// carries the TEST tracer, whose flat timestamp tables are not worth
// serializing). Because every phase is deterministic, a resumed pipeline
// re-runs the phases before the snapshot from scratch and restores only the
// snapshot's own phase; the final Result is bit-identical to the
// uninterrupted run's.
package core

import (
	"errors"
	"fmt"
	"sync"

	"jrpm/internal/bytecode"
	"jrpm/internal/hydra"
	"jrpm/internal/vm"
)

// Checkpoint stage labels.
const (
	StageSeq = "seq" // the plain sequential baseline phase
	StageTLS = "tls" // the speculative run
)

// ErrBadCheckpoint reports a checkpoint that cannot resume the requested
// run: wrong stage for the rung, wrong program, or incompatible options.
var ErrBadCheckpoint = errors.New("core: checkpoint does not match the requested run")

// Checkpoint is a resumable mid-phase state of a pipeline run.
type Checkpoint struct {
	Name  string // program name, advisory (the image fingerprint decides)
	Stage string // StageSeq or StageTLS: which phase the snapshot belongs to
	// Label is an opaque caller-owned tag travelling with the checkpoint
	// (the service stores its degradation-ladder rung here, so a resume
	// attempt can tell which entry point the checkpoint belongs to).
	Label   string
	Machine *hydra.MachineSnapshot
	VM      *vm.State
}

// CheckpointController connects a pipeline run to checkpoint consumers. The
// controller outlives individual phases: the pipeline attaches a
// hydra.Checkpointer for each snapshotable phase, and Request (callable from
// any goroutine, any time) arms whichever phase is live — or the next one to
// attach, if none is.
type CheckpointController struct {
	mu      sync.Mutex
	pending bool
	active  *hydra.Checkpointer
	latest  *Checkpoint
	seq     int64

	// Label is copied into every delivered Checkpoint.
	Label string
	// Stride overrides the safepoint poll stride in simulated cycles
	// (0 = hydra.CancelCheckStride).
	Stride int64
	// OnCheckpoint, when non-nil, observes each delivered checkpoint with
	// its sequence number. Called on the run goroutine at the safepoint —
	// keep it cheap or hand off.
	OnCheckpoint func(cp *Checkpoint, seq int64)
}

// Request asks the running pipeline for one checkpoint at its next
// safepoint. Requests made between snapshotable phases are carried forward;
// repeated requests collapse.
func (cc *CheckpointController) Request() {
	cc.mu.Lock()
	cc.pending = true
	a := cc.active
	cc.mu.Unlock()
	if a != nil {
		a.Request()
	}
}

// Latest returns the most recent checkpoint and its sequence number (nil, 0
// when none has been captured yet).
func (cc *CheckpointController) Latest() (*Checkpoint, int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.latest, cc.seq
}

// SetLabel updates the label stamped onto subsequent checkpoints.
func (cc *CheckpointController) SetLabel(l string) {
	cc.mu.Lock()
	cc.Label = l
	cc.mu.Unlock()
}

func (cc *CheckpointController) attach(k *hydra.Checkpointer) {
	cc.mu.Lock()
	cc.active = k
	p := cc.pending
	cc.mu.Unlock()
	if p {
		k.Request()
	}
}

func (cc *CheckpointController) detach(k *hydra.Checkpointer) {
	cc.mu.Lock()
	if cc.active == k {
		cc.active = nil
	}
	cc.mu.Unlock()
}

func (cc *CheckpointController) deliver(cp *Checkpoint) {
	cc.mu.Lock()
	cp.Label = cc.Label
	cc.latest = cp
	cc.seq++
	n := cc.seq
	cc.pending = false
	fn := cc.OnCheckpoint
	cc.mu.Unlock()
	if fn != nil {
		fn(cp, n)
	}
}

// ResumeSequential resumes a RunSequential from cp (Stage must be StageSeq).
func ResumeSequential(bp *bytecode.Program, opts Options, cp *Checkpoint) (*Result, error) {
	return resume(bp, opts, stageSeq, cp)
}

// ResumeProfile resumes a RunProfile from cp. Only the baseline leg is
// snapshotable (the profiled run carries the tracer), so Stage must be
// StageSeq; the profiling run re-executes deterministically.
func ResumeProfile(bp *bytecode.Program, opts Options, cp *Checkpoint) (*Result, error) {
	return resume(bp, opts, stageProfile, cp)
}

// ResumeTLS resumes a full Run from cp (Stage StageSeq or StageTLS). Phases
// before the snapshot's re-execute deterministically; the snapshot's phase
// continues from the safepoint.
func ResumeTLS(bp *bytecode.Program, opts Options, cp *Checkpoint) (*Result, error) {
	return resume(bp, opts, stageTLS, cp)
}

func resume(bp *bytecode.Program, opts Options, st stage, cp *Checkpoint) (*Result, error) {
	if cp == nil || cp.Machine == nil || cp.VM == nil {
		return nil, fmt.Errorf("%w: empty checkpoint", ErrBadCheckpoint)
	}
	switch cp.Stage {
	case StageSeq:
	case StageTLS:
		if st != stageTLS {
			return nil, fmt.Errorf("%w: stage %q checkpoint for a non-TLS run", ErrBadCheckpoint, cp.Stage)
		}
	default:
		return nil, fmt.Errorf("%w: unknown stage %q", ErrBadCheckpoint, cp.Stage)
	}
	if opts.Faults != nil || opts.Recorder != nil || opts.Diagnose {
		return nil, fmt.Errorf("%w: fault/recorder/diagnose runs are not snapshotable", ErrBadCheckpoint)
	}
	return run(bp, opts, st, cp)
}

// checkpointable reports whether the phase execute is about to run supports
// snapshotting: no tracer, no fault injector, no recorder, no ledger.
func checkpointable(opts Options, profile, spec bool) bool {
	if profile || opts.Diagnose {
		return false
	}
	if spec && (opts.Faults != nil || opts.Recorder != nil) {
		return false
	}
	return true
}

// phaseStage is the checkpoint stage label of a (profile, spec) execute.
func phaseStage(spec bool) string {
	if spec {
		return StageTLS
	}
	return StageSeq
}

// executeResume is execute for a restored phase: instead of booting CPU 0 it
// installs the runtime services (whose simulated-memory writes the memory
// restore overwrites) and writes the snapshot into the fresh machine, then
// runs to completion.
func executeResume(bp *bytecode.Program, img *hydra.Image, opts Options, spec bool, cp *Checkpoint) (Phase, error) {
	rt := vm.New(bp, opts.VM)
	mopts := hydra.Options{
		NCPU:     opts.NCPU,
		Handlers: opts.Handlers,
		TLS:      opts.TLS,
		Cache:    opts.Cache,
		Tier2Off: opts.Tier2Off,
		Ctx:      opts.Ctx,
	}
	if spec {
		mopts.Guard = opts.Guard
		mopts.StormLimit = opts.StormLimit
	}
	cc := opts.Checkpoint
	if cc != nil {
		ckpt := &hydra.Checkpointer{Sink: checkpointSink(cc, rt, bp.Name, phaseStage(spec)), Stride: cc.Stride}
		mopts.Checkpoint = ckpt
		cc.attach(ckpt)
		defer cc.detach(ckpt)
	}
	m := hydra.NewMachine(img, rt, mopts)
	rt.Install(m)
	if err := m.Restore(cp.Machine); err != nil {
		m.Release()
		return Phase{}, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	rt.RestoreState(*cp.VM)
	maxC := opts.MaxCycles
	if maxC == 0 {
		maxC = 2_000_000_000
	}
	err := m.Run(maxC)
	ph := extractPhase(m, img)
	m.Release()
	return ph, err
}

// checkpointSink builds the Checkpointer sink for one phase: capture the
// VM's registry alongside the machine snapshot and deliver through the
// controller. Runs on the phase's run goroutine at a safepoint, where the
// VM state is quiescent.
func checkpointSink(cc *CheckpointController, rt *vm.VM, name, stg string) func(*hydra.MachineSnapshot) {
	return func(s *hydra.MachineSnapshot) {
		vs := rt.CaptureState()
		cc.deliver(&Checkpoint{Name: name, Stage: stg, Machine: s, VM: &vs})
	}
}
