// Package core is the Jrpm controller: it drives the five-step pipeline of
// the paper's Figure 1 over a bytecode program.
//
//  1. Identify prospective thread decompositions (cfg) and compile natively
//     with annotation instructions (jit, ModeAnnotated).
//  2. Run the annotated program sequentially, collecting TEST profile
//     statistics (hydra with the tracer attached).
//  3. Post-process the statistics and choose the decompositions with the
//     best predicted speedups (analyzer).
//  4. Recompile the selected loops into speculative threads
//     (jit, ModeTLS).
//  5. Run the native TLS code (hydra, all CPUs).
//
// A plain sequential run provides the normalization baseline, and every
// run's program output is compared for equality — thread speculation must
// preserve sequential semantics exactly.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"

	"jrpm/internal/analyzer"
	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/faultinject"
	"jrpm/internal/hydra"
	"jrpm/internal/jit"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/vm"
)

// ErrOracleMismatch reports that the speculative run's architectural state
// (program output or final static fields) diverged from the clean sequential
// run while fault injection was active — the safety net failed to preserve
// sequential semantics under the injected adversity.
var ErrOracleMismatch = errors.New("core: speculative state diverged from sequential oracle")

// Options configures a pipeline run.
type Options struct {
	NCPU      int
	Handlers  tls.HandlerCosts
	VM        vm.Config
	Analyzer  *analyzer.Config // nil = defaults matched to NCPU/Handlers
	TLS       *tls.Config      // buffer-capacity ablations
	Cache     *mem.CacheConfig
	Tracer    *tracer.Config // comparator-bank ablations
	MaxCycles int64

	// AdaptiveReprofile implements the reselection the paper sketches in
	// §6.2: when a selected STL consistently experiences unexpected buffer
	// overflows during speculative execution, the decomposition is redone
	// with that loop excluded and the program recompiled; the faster of the
	// two runs wins.
	AdaptiveReprofile bool

	// NoInline disables microJIT method inlining (a §4.1 optimization,
	// applied before loop analysis so helper loops join their caller's
	// nest). Inlining is on by default.
	NoInline bool

	// Faults attaches a deterministic fault plan to the speculative phases
	// (TLS recompilation and run). The baseline and profiling runs always
	// execute clean, so the sequential result remains a trustworthy oracle
	// reference; when the plan can fire, the speculative run's output and
	// final static state are cross-checked against it (ErrOracleMismatch).
	// A nil or zero plan injects nothing and leaves timing untouched.
	Faults *faultinject.Plan

	// Guard enables the runtime STL violation-storm guard on the
	// speculative run: a thrashing loop is decertified after K bad windows
	// and falls back to sequential execution with exponential re-probing.
	Guard *tls.GuardConfig

	// StormLimit caps violations between two commits in the speculative run
	// before it fails with tls.ErrSpecViolationStorm (0 = simulator
	// default).
	StormLimit int64

	// Recorder attaches the speculation flight recorder to the TLS phase
	// (the baseline and profiling runs stay uninstrumented, mirroring how
	// Faults/Guard attach). nil disables recording at zero cost.
	Recorder obs.Recorder

	// Diagnose attaches the speculation doctor's cycle-conservation ledger
	// to every phase: each Phase then carries a LedgerSnapshot attributing
	// all simulated cycles to per-loop and machine buckets, with the
	// conservation invariant (Σ buckets == wall cycles × CPUs) enforced as a
	// hard error. Cycle counts are bit-identical with or without it.
	Diagnose bool

	// Tier2Off disables the tier-2 block engine on every phase, forcing
	// pure switch-dispatch interpretation (the `-tier=off` ablation). The
	// zero value — tier on — is right for everything else: results are
	// bit-identical either way, only host-time changes.
	Tier2Off bool

	// Ctx, when non-nil, bounds every run of the pipeline in wall-clock
	// terms: each simulated phase polls cancellation on a coarse cycle
	// stride (hydra.CancelCheckStride) and the pipeline aborts between
	// phases. Cancellation surfaces as an error wrapping
	// hydra.ErrCancelled and the context's cause; cycle counts of
	// uncancelled runs are bit-identical to runs with no context.
	Ctx context.Context

	// Checkpoint, when non-nil, lets other goroutines request safepoint
	// snapshots of the snapshotable phases (see CheckpointController).
	// Runtime-only: it does not participate in the wire encoding of
	// options, exactly like Ctx and Recorder. Zero cost when nil.
	Checkpoint *CheckpointController
}

// DefaultOptions is the paper's configuration: 4 CPUs, new handlers, both
// VM modifications enabled.
func DefaultOptions() Options {
	o := Options{
		NCPU:      4,
		Handlers:  tls.NewHandlers,
		VM:        vm.DefaultConfig(),
		MaxCycles: 2_000_000_000,
	}
	// JRPM_TIER=off forces pure interpretation for every default-options
	// caller. CI uses it to re-run the golden/litmus/oracle conformance
	// suites with the tier-2 block engine ablated, proving the engine is
	// invisible to simulated behaviour without threading a flag through
	// each test.
	if os.Getenv("JRPM_TIER") == "off" {
		o.Tier2Off = true
	}
	return o
}

// ParseTierFlag maps a -tier flag value to Options.Tier2Off. The natural
// spellings are "on" and "off" (bool flags would reject "off"); the usual
// boolean spellings are accepted too so scripts can pass true/false.
func ParseTierFlag(v string) (off bool, err error) {
	switch v {
	case "on", "true", "1":
		return false, nil
	case "off", "false", "0":
		return true, nil
	}
	return false, fmt.Errorf("invalid -tier value %q (want on or off)", v)
}

// Phase captures one execution of the program.
type Phase struct {
	Cycles        int64
	GCCycles      int64
	GCRuns        int64
	Instructions  int64
	Output        []int64
	Stats         tls.StateStats
	Commits       int64
	Violations    int64
	Overflows     int64
	AvgStoreBuf   float64
	AvgLoadBuf    float64
	OverflowBySTL map[int64]int64

	// Cache-hierarchy counters for the phase's machine.
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64

	// Tier counts tier-2 block-engine activity (all zero when the engine
	// was disabled for the phase).
	Tier hydra.TierStats

	// Statics snapshots the final static field words — part of the
	// architectural state the fault-injection oracle compares.
	Statics []int64
	// FaultsFired counts injected faults by channel during this phase.
	FaultsFired map[string]int64
	// GuardStats is the per-loop guard state after this phase (nil when the
	// guard is disabled).
	GuardStats map[int64]tls.GuardLoopStats
	// DecertifiedLoops lists loops still decertified at the end of the run.
	DecertifiedLoops []int64

	// Ledger is the doctor's cycle-conservation snapshot for this phase
	// (nil unless Options.Diagnose was set). Symbols are already resolved
	// against the phase's image.
	Ledger *obs.LedgerSnapshot
}

// Result is the full pipeline outcome for one program.
type Result struct {
	Name string

	Seq     Phase // plain sequential baseline
	Profile Phase // annotated run with TEST
	TLS     Phase // speculative run

	CompileCycles   int64 // initial (annotated) compilation
	RecompileCycles int64 // TLS recompilation of selected loops

	Analysis        *analyzer.Result
	PredictedCycles int64 // predicted TLS time, normalized to baseline cycles

	OutputsMatch bool
	Loops        map[int64]*tracer.LoopStats

	// Adapted reports that the §6.2 overflow-feedback path fired: the
	// decompositions were reselected and the program recompiled once more.
	Adapted       bool
	ExcludedLoops []int64

	// JITFallback reports that the TLS recompilation failed (an injected or
	// genuine lowering fault) and the speculative phase ran the plain
	// sequential image instead.
	JITFallback bool
	// OracleChecked reports that fault injection was active and the
	// speculative architectural state was verified against the sequential
	// run.
	OracleChecked bool
}

// SpeedupActual is baseline time over speculative time (Figure 8 "Actual").
func (r *Result) SpeedupActual() float64 {
	if r.TLS.Cycles == 0 {
		return 0
	}
	return float64(r.Seq.Cycles) / float64(r.TLS.Cycles)
}

// SpeedupPredicted is baseline over TEST-predicted time (Figure 8
// "Predicted").
func (r *Result) SpeedupPredicted() float64 {
	if r.PredictedCycles == 0 {
		return 0
	}
	return float64(r.Seq.Cycles) / float64(r.PredictedCycles)
}

// ProfileSlowdown is the relative profiling overhead (Figure 8
// "Profiling"): annotated time over baseline time, minus one.
func (r *Result) ProfileSlowdown() float64 {
	if r.Seq.Cycles == 0 {
		return 0
	}
	return float64(r.Profile.Cycles)/float64(r.Seq.Cycles) - 1
}

// TotalSpeedup is the Figure 9 metric: baseline time over the sum of
// speculative execution plus compilation, profiling and recompilation
// overheads (garbage collection is inside the phase cycle counts).
func (r *Result) TotalSpeedup() float64 {
	total := r.TLS.Cycles + r.CompileCycles + r.RecompileCycles + r.ProfilingOverheadCycles()
	if total == 0 {
		return 0
	}
	return float64(r.Seq.Cycles) / float64(total)
}

// ProfilingOverheadCycles is the extra time the annotated run cost over the
// baseline (the profile run performs the program's real work once).
func (r *Result) ProfilingOverheadCycles() int64 {
	d := r.Profile.Cycles - r.Seq.Cycles
	if d < 0 {
		return 0
	}
	return d
}

// SerialFraction is the share of speculative-run machine time spent outside
// STLs (Table 3 column i).
func (r *Result) SerialFraction() float64 {
	if r.TLS.Cycles == 0 {
		return 0
	}
	return float64(r.TLS.Stats.Serial) / float64(r.TLS.Cycles)
}

// stage names how far down the pipeline a run goes. The stages are the
// rungs of the service's graceful-degradation ladder: full speculation,
// profiling without speculation, and the plain sequential VM.
type stage int

const (
	stageSeq     stage = iota // plain sequential baseline only
	stageProfile              // baseline + annotated profiling + analysis
	stageTLS                  // the full five-step pipeline
)

// Run drives the full pipeline.
func Run(bp *bytecode.Program, opts Options) (*Result, error) {
	return run(bp, opts, stageTLS, nil)
}

// RunProfile drives the pipeline through profiling and decomposition
// analysis but never recompiles or runs speculative code: the result carries
// the baseline, the profiled run, the analyzer's selection and the predicted
// speedup, with a zero TLS phase. It is the middle rung of the degradation
// ladder — cheaper than Run (no TLS recompile, no speculative machine) yet
// still answering "what would speculation buy".
func RunProfile(bp *bytecode.Program, opts Options) (*Result, error) {
	return run(bp, opts, stageProfile, nil)
}

// RunSequential runs only the plain sequential baseline — the bottom rung of
// the degradation ladder, unconditionally safe: no annotations, no
// speculation, no analyzer.
func RunSequential(bp *bytecode.Program, opts Options) (*Result, error) {
	return run(bp, opts, stageSeq, nil)
}

// ctxErr reports pending cancellation of the pipeline context (nil context =
// never cancelled).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cancelled: %w", context.Cause(ctx))
	}
	return nil
}

func run(bp *bytecode.Program, opts Options, st stage, cp *Checkpoint) (*Result, error) {
	if opts.NCPU == 0 {
		ctx, cc := opts.Ctx, opts.Checkpoint
		opts = DefaultOptions()
		opts.Ctx, opts.Checkpoint = ctx, cc
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res := &Result{Name: bp.Name}
	if !opts.NoInline {
		bp = jit.Inline(bp)
	}
	info := cfg.AnalyzeProgram(bp)

	// Baseline sequential run (plain code, no annotations). The baseline and
	// the profiling leg below are independent machines over independent
	// images, so the baseline runs on its own goroutine while the annotated
	// compile and profiled run proceed; the legs join before the analyzer,
	// which needs both cycle counts.
	plainImg, _, err := jit.Compile(bp, info, jit.ModePlain, nil)
	if err != nil {
		return nil, fmt.Errorf("core: plain compile: %w", err)
	}
	// The baseline leg either runs fresh or — when resuming a StageSeq
	// checkpoint — continues from the restored safepoint; both paths yield
	// the identical Phase.
	runSeq := func() (Phase, error) {
		if cp != nil && cp.Stage == StageSeq {
			return executeResume(bp, plainImg, opts, false, cp)
		}
		ph, _, err := execute(bp, plainImg, opts, false, false)
		return ph, err
	}
	if st == stageSeq {
		seq, err := runSeq()
		if err != nil {
			return nil, fmt.Errorf("core: sequential run: %w", err)
		}
		res.Seq = seq
		res.OutputsMatch = true // only one run: trivially consistent
		return res, nil
	}
	type seqOutcome struct {
		ph  Phase
		err error
	}
	seqCh := make(chan seqOutcome, 1)
	go func() {
		ph, err := runSeq()
		seqCh <- seqOutcome{ph, err}
	}()

	// Step 1-2: annotated compile, profiled sequential run.
	annImg, annRep, err := jit.Compile(bp, info, jit.ModeAnnotated, nil)
	if err != nil {
		<-seqCh // never abandon the baseline leg mid-flight
		return nil, fmt.Errorf("core: annotated compile: %w", err)
	}
	res.CompileCycles = annRep.Cycles
	prof, tr, err := execute(bp, annImg, opts, true, false)
	so := <-seqCh // join the baseline leg before touching its results
	if so.err != nil {
		return nil, fmt.Errorf("core: sequential run: %w", so.err)
	}
	seq := so.ph
	res.Seq = seq
	if err != nil {
		return nil, fmt.Errorf("core: profiling run: %w", err)
	}
	res.Profile = prof
	res.Loops = tr.Loops()

	// Step 3: choose decompositions.
	acfg := analyzer.DefaultConfig()
	if opts.Analyzer != nil {
		acfg = *opts.Analyzer
	} else {
		acfg.NCPU = opts.NCPU
		acfg.Handlers = opts.Handlers
		acfg.ParallelAlloc = opts.VM.ParallelAlloc
		acfg.ElideLocks = opts.VM.ElideLocks
	}
	res.Analysis = analyzer.Select(info, tr.Loops(), prof.Cycles, acfg)
	// The prediction is in profiled-run cycles; normalize to baseline.
	if prof.Cycles > 0 {
		res.PredictedCycles = res.Analysis.PredictedCycles * seq.Cycles / prof.Cycles
	}
	if st == stageProfile {
		res.OutputsMatch = equalOutputs(res.Seq.Output, res.Profile.Output)
		return res, nil
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Step 4-5: recompile selected loops, run speculative code. The
	// compile-time fault injector draws from the same plan as the run-time
	// one; an injected (or genuine) lowering failure degrades to the plain
	// sequential image instead of aborting the pipeline.
	tlsImg, tlsRep, err := jit.CompileWithFaults(bp, info, jit.ModeTLS,
		res.Analysis.Selection, faultinject.New(faultPlan(opts)))
	if err != nil {
		if !errors.Is(err, jit.ErrLowering) {
			return nil, fmt.Errorf("core: TLS recompile: %w", err)
		}
		tlsImg, tlsRep = plainImg, &jit.Report{}
		res.JITFallback = true
	}
	res.RecompileCycles = tlsRep.Cycles
	var spec Phase
	if cp != nil && cp.Stage == StageTLS {
		spec, err = executeResume(bp, tlsImg, opts, true, cp)
	} else {
		spec, _, err = execute(bp, tlsImg, opts, false, true)
	}
	if err != nil {
		return nil, fmt.Errorf("core: TLS run: %w", err)
	}
	res.TLS = spec

	// Post-commit oracle: with an active fault plan, the speculative run's
	// architectural state — program output plus final static fields — must
	// match the clean sequential run exactly.
	if !faultPlan(opts).Zero() {
		res.OracleChecked = true
		if !equalOutputs(seq.Output, spec.Output) || !equalOutputs(seq.Statics, spec.Statics) {
			return nil, fmt.Errorf("%w: program %s under plan %q (faults fired: %v)",
				ErrOracleMismatch, bp.Name, faultPlan(opts).String(), spec.FaultsFired)
		}
	}

	// §6.2 feedback: a selected STL whose threads keep overflowing the
	// speculative buffers at run time (something the averaged profile can
	// underestimate) triggers reselection without it.
	if opts.AdaptiveReprofile {
		if err := adapt(bp, info, res, acfg, opts); err != nil {
			return nil, err
		}
	}

	res.OutputsMatch = equalOutputs(res.Seq.Output, res.Profile.Output) &&
		equalOutputs(res.Seq.Output, res.TLS.Output)
	return res, nil
}

// adapt reselects decompositions excluding loops with heavy runtime
// overflow, recompiles and reruns; the faster correct run is kept.
func adapt(bp *bytecode.Program, info *cfg.ProgramInfo, res *Result,
	acfg analyzer.Config, opts Options) error {
	// The adapted rerun compiles a different image (loops excluded), so its
	// snapshots could never restore against the primary pipeline's phases;
	// checkpointing covers the primary phases only.
	opts.Checkpoint = nil
	var excluded []int64
	threshold := res.TLS.Commits / 8
	if threshold < 16 {
		threshold = 16
	}
	for loopID, n := range res.TLS.OverflowBySTL {
		if n >= threshold {
			excluded = append(excluded, loopID)
		}
	}
	if len(excluded) == 0 {
		return nil
	}
	// Map iteration order is random; the exclusion list is user-visible
	// (reports, CLI) and must not vary between identical runs.
	sort.Slice(excluded, func(i, j int) bool { return excluded[i] < excluded[j] })
	acfg.ExcludeLoops = map[int64]bool{}
	for _, id := range excluded {
		acfg.ExcludeLoops[id] = true
	}
	analysis := analyzer.Select(info, res.Loops, res.Profile.Cycles, acfg)
	img, rep, err := jit.Compile(bp, info, jit.ModeTLS, analysis.Selection)
	if err != nil {
		return fmt.Errorf("core: adaptive recompile: %w", err)
	}
	spec, _, err := execute(bp, img, opts, false, true)
	if err != nil {
		return fmt.Errorf("core: adaptive TLS run: %w", err)
	}
	res.RecompileCycles += rep.Cycles // the second recompilation is real cost
	if equalOutputs(res.Seq.Output, spec.Output) && spec.Cycles < res.TLS.Cycles {
		res.TLS = spec
		res.Analysis = analysis
		res.Adapted = true
		res.ExcludedLoops = excluded
	}
	return nil
}

func equalOutputs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// faultPlan returns the effective fault plan (zero when none configured).
func faultPlan(opts Options) faultinject.Plan {
	if opts.Faults == nil {
		return faultinject.Plan{}
	}
	return *opts.Faults
}

// execute runs one image on a fresh machine. Fault injection and the STL
// guard attach only to speculative (spec) phases so the sequential and
// profiling runs stay clean.
func execute(bp *bytecode.Program, img *hydra.Image, opts Options, profile, spec bool) (Phase, *tracer.Tracer, error) {
	rt := vm.New(bp, opts.VM)
	mopts := hydra.Options{
		NCPU:     opts.NCPU,
		Handlers: opts.Handlers,
		TLS:      opts.TLS,
		Cache:    opts.Cache,
		Tracer:   opts.Tracer,
		Profile:  profile,
		Tier2Off: opts.Tier2Off,
		Ctx:      opts.Ctx,
	}
	if spec {
		mopts.Faults = opts.Faults
		mopts.Guard = opts.Guard
		mopts.StormLimit = opts.StormLimit
		mopts.Recorder = opts.Recorder
	}
	var led *obs.Ledger
	if opts.Diagnose {
		n := mopts.NCPU
		if n == 0 {
			n = 4 // hydra's own default
		}
		led = obs.NewLedger(n)
		mopts.Ledger = led
	}
	if cc := opts.Checkpoint; cc != nil && checkpointable(opts, profile, spec) {
		ckpt := &hydra.Checkpointer{Sink: checkpointSink(cc, rt, bp.Name, phaseStage(spec)), Stride: cc.Stride}
		mopts.Checkpoint = ckpt
		cc.attach(ckpt)
		defer cc.detach(ckpt)
	}
	m := hydra.NewMachine(img, rt, mopts)
	m.Boot()
	rt.Install(m)
	maxC := opts.MaxCycles
	if maxC == 0 {
		maxC = 2_000_000_000
	}
	err := m.Run(maxC)
	ph := extractPhase(m, img)
	if led != nil {
		led.Close(m.Clock)
		snap := led.Snapshot()
		// Symbolize while the image is alive; the snapshot must outlive it.
		hydra.AnnotateLedger(img, snap)
		ph.Ledger = snap
		// Conservation is a hard invariant of the ledger implementation. Only
		// enforce it on runs that finished cleanly: a cancelled or
		// budget-stopped run legitimately carries in-flight cycles, which the
		// invariant already accounts for, but its primary error must win.
		if cerr := snap.CheckConservation(); cerr != nil && err == nil {
			err = cerr
		}
	}
	// Everything the caller needs is extracted; recycle the machine's big
	// pooled allocations (simulated memory, tracer timestamp slabs). The
	// returned tracer's loop statistics remain valid after release.
	tr := m.Tracer
	m.Release()
	return ph, tr, err
}

// extractPhase reads one finished machine into a Phase (everything except
// the ledger snapshot, which only execute's diagnose path attaches).
func extractPhase(m *hydra.Machine, img *hydra.Image) Phase {
	ph := Phase{
		Cycles:        m.Clock,
		GCCycles:      m.GCCycles,
		GCRuns:        m.GCRuns,
		Instructions:  m.Instructions,
		Output:        m.Output,
		Stats:         m.TLS.Stats,
		Commits:       m.TLS.Commits,
		Violations:    m.TLS.Violations,
		Overflows:     m.TLS.Overflows,
		OverflowBySTL: m.OverflowBySTL,
		Tier:          m.Tier,
	}
	ph.AvgStoreBuf, ph.AvgLoadBuf = m.TLS.AvgBufferLines()
	ph.L1Hits, ph.L1Misses = m.Caches.L1Hits, m.Caches.L1Misses
	ph.L2Hits, ph.L2Misses = m.Caches.L2Hits, m.Caches.L2Misses
	for i := 0; i < img.Statics; i++ {
		ph.Statics = append(ph.Statics, m.RawRead(hydra.GlobalBase+mem.Addr(i)))
	}
	ph.FaultsFired = m.Injector().Fired()
	if m.Guard != nil {
		ph.GuardStats = m.Guard.Stats()
		ph.DecertifiedLoops = m.Guard.DecertifiedLoops()
	}
	return ph
}
