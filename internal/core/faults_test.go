package core

import (
	"testing"

	"jrpm/internal/faultinject"
	"jrpm/internal/tls"
)

// TestZeroFaultPlanLeavesCyclesUnchanged: plumbing a zero plan through the
// whole pipeline must not move a single cycle — the guarantee that lets the
// benchmark binaries keep the flag wiring always installed.
func TestZeroFaultPlanLeavesCyclesUnchanged(t *testing.T) {
	base, err := Run(vectorKernel(400), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Faults = &faultinject.Plan{Seed: 7} // all rates zero
	zeroed, err := Run(vectorKernel(400), opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.TLS.Cycles != zeroed.TLS.Cycles || base.Seq.Cycles != zeroed.Seq.Cycles {
		t.Fatalf("zero plan moved cycles: tls %d vs %d, seq %d vs %d",
			base.TLS.Cycles, zeroed.TLS.Cycles, base.Seq.Cycles, zeroed.Seq.Cycles)
	}
	if zeroed.OracleChecked {
		t.Error("zero plan should not trigger the oracle cross-check")
	}
}

// TestFaultPlanOracleChecksSpeculativeState: under an active plan the
// speculative run is cross-checked (outputs and final static state) against
// the sequential run, and survives the injected adversity.
func TestFaultPlanOracleChecksSpeculativeState(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = &faultinject.Plan{
		Seed: 3, RAW: 0.02, Overflow: 0.1, Bus: 0.3, BusDelay: 6, Heap: 0.01,
	}
	res, err := Run(vectorKernel(400), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OracleChecked {
		t.Fatal("active plan must run the post-commit oracle")
	}
	if !res.OutputsMatch {
		t.Fatalf("outputs differ under faults: seq %v, tls %v", res.Seq.Output, res.TLS.Output)
	}
	if len(res.TLS.FaultsFired) == 0 {
		t.Error("plan with these rates should have fired at least one fault")
	}
}

// TestJITFailurePlanFallsBackToSequentialImage: when every TLS lowering is
// made to fail, the controller keeps the plain image for the speculative
// phase and the run still completes with the right answer.
func TestJITFailurePlanFallsBackToSequentialImage(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = &faultinject.Plan{Seed: 1, JIT: 1}
	res, err := Run(vectorKernel(200), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.JITFallback {
		t.Fatal("jit=1 plan must force the sequential-image fallback")
	}
	if !res.OutputsMatch {
		t.Fatalf("fallback outputs differ: seq %v, tls %v", res.Seq.Output, res.TLS.Output)
	}
	if !res.OracleChecked {
		t.Error("oracle should still cross-check the fallback run")
	}
}

// TestGuardDecertifiesUnderViolationStorm: heavy injected RAW pressure makes
// a healthy loop thrash; with the guard on, the run demotes it to sequential
// execution, finishes correctly, and reports the decertification.
func TestGuardDecertifiesUnderViolationStorm(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = &faultinject.Plan{Seed: 13, RAW: 0.5}
	cfg := tls.GuardConfig{Window: 8, Decertify: 2, Backoff: 1 << 30, MaxBackoff: 1 << 30}
	opts.Guard = &cfg
	res, err := Run(vectorKernel(400), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsMatch {
		t.Fatalf("outputs differ: seq %v, tls %v", res.Seq.Output, res.TLS.Output)
	}
	if len(res.TLS.DecertifiedLoops) == 0 {
		t.Fatalf("no loop decertified under raw=0.5; guard stats: %+v", res.TLS.GuardStats)
	}
	var decerts int64
	for _, st := range res.TLS.GuardStats {
		decerts += st.Decerts
	}
	if decerts == 0 {
		t.Errorf("guard stats show no decertifications: %+v", res.TLS.GuardStats)
	}
}

// TestCycleBudgetSurfacesFromOptions: a tiny budget fails the run with a
// typed error instead of hanging or panicking.
func TestCycleBudgetSurfacesFromOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxCycles = 100
	if _, err := Run(vectorKernel(400), opts); err == nil {
		t.Fatal("100-cycle budget should fail the run")
	}
}
