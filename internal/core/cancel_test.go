package core

import (
	"context"
	"errors"
	"testing"
)

// TestRunCancelledContextPropagates: a pre-cancelled context aborts the
// pipeline before any simulation and the error classifies as both the
// hydra sentinel family and the stdlib context errors.
func TestRunCancelledContextPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	for name, run := range map[string]func() (*Result, error){
		"Run":           func() (*Result, error) { return Run(vectorKernel(100), opts) },
		"RunProfile":    func() (*Result, error) { return RunProfile(vectorKernel(100), opts) },
		"RunSequential": func() (*Result, error) { return RunSequential(vectorKernel(100), opts) },
	} {
		if _, err := run(); err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestRunStagesAgree: the degradation rungs compute the same architectural
// output — RunSequential and RunProfile are prefixes of the full pipeline,
// not different semantics.
func TestRunStagesAgree(t *testing.T) {
	full, err := Run(vectorKernel(400), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := RunProfile(vectorKernel(400), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(vectorKernel(400), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !prof.OutputsMatch || !seq.OutputsMatch {
		t.Fatal("profile/sequential rungs must self-report matching outputs")
	}
	if len(seq.Seq.Output) == 0 {
		t.Fatal("sequential rung produced no output")
	}
	for i, v := range full.Seq.Output {
		if prof.Seq.Output[i] != v || seq.Seq.Output[i] != v {
			t.Fatalf("output[%d] differs across rungs: full %d, profile %d, seq %d",
				i, v, prof.Seq.Output[i], seq.Seq.Output[i])
		}
	}
	// Sequential cycle counts are one deterministic simulation: identical
	// across rungs.
	if full.Seq.Cycles != prof.Seq.Cycles || full.Seq.Cycles != seq.Seq.Cycles {
		t.Fatalf("sequential cycles differ across rungs: %d / %d / %d",
			full.Seq.Cycles, prof.Seq.Cycles, seq.Seq.Cycles)
	}
	// The lighter rungs stop where they promise to: no TLS phase, and no
	// profile phase for the sequential rung.
	if prof.TLS.Cycles != 0 || seq.TLS.Cycles != 0 {
		t.Fatalf("lighter rungs ran a TLS phase: profile %d, seq %d", prof.TLS.Cycles, seq.TLS.Cycles)
	}
	if seq.Profile.Cycles != 0 {
		t.Fatalf("sequential rung ran a profile phase: %d cycles", seq.Profile.Cycles)
	}
	if prof.Profile.Cycles == 0 || len(prof.Analysis.Decisions) == 0 {
		t.Fatal("profile rung must still profile and analyze")
	}
}

// TestRunCancelMidPipeline: cancelling during the run aborts with the hydra
// sentinel and never fabricates a result.
func TestRunCancelMidPipeline(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	opts := DefaultOptions()
	opts.Ctx = ctx
	want := errors.New("operator pulled the plug")
	cancel(want)
	res, err := Run(vectorKernel(4000), opts)
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}
