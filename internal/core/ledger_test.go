package core

import (
	"testing"

	"jrpm/internal/faultinject"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

// TestDiagnoseConservesAndIsInvisible runs a few suite workloads through the
// full pipeline with the doctor's ledger attached and checks (a) the
// conservation invariant holds on every phase (core enforces it as a hard
// error, so a clean run is itself the assertion — but re-check explicitly),
// and (b) cycle counts are bit-identical to an undiagnosed run.
func TestDiagnoseConservesAndIsInvisible(t *testing.T) {
	for _, name := range []string{"BitOps", "compress", "monteCarlo"} {
		w := workloads.ByName(name)
		if w == nil {
			t.Fatalf("unknown workload %s", name)
		}
		opts := DefaultOptions()
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		base, err := Run(w.Build(), opts)
		if err != nil {
			t.Fatalf("%s: baseline run: %v", name, err)
		}
		opts.Diagnose = true
		diag, err := Run(w.Build(), opts)
		if err != nil {
			t.Fatalf("%s: diagnosed run: %v", name, err)
		}
		for phase, pair := range map[string][2]*Phase{
			"seq":     {&base.Seq, &diag.Seq},
			"profile": {&base.Profile, &diag.Profile},
			"tls":     {&base.TLS, &diag.TLS},
		} {
			b, d := pair[0], pair[1]
			if b.Cycles != d.Cycles {
				t.Errorf("%s/%s: diagnosis changed cycles: %d vs %d", name, phase, b.Cycles, d.Cycles)
			}
			if d.Ledger == nil {
				t.Fatalf("%s/%s: no ledger snapshot", name, phase)
			}
			if err := d.Ledger.CheckConservation(); err != nil {
				t.Errorf("%s/%s: %v", name, phase, err)
			}
			if d.Ledger.Machine.InFlight != 0 {
				t.Errorf("%s/%s: clean run left %d cycles in flight", name, phase, d.Ledger.Machine.InFlight)
			}
			if d.Ledger.Machine.Leaked != 0 {
				t.Errorf("%s/%s: %d cycles leaked", name, phase, d.Ledger.Machine.Leaked)
			}
			if b.Ledger != nil {
				t.Errorf("%s/%s: undiagnosed run grew a ledger", name, phase)
			}
		}
		// The speculative phase of a suite workload must attribute loop work.
		if len(diag.TLS.Ledger.Loops) == 0 {
			t.Errorf("%s: speculative ledger has no loops", name)
		}
	}
}

// TestDiagnoseGuardDemotedConserves drives the guard's solo demotion path
// with the ledger attached: injected RAW pressure makes a healthy loop
// thrash until it decertifies mid-flight, exercising DemoteSolo kills, mode
// switching, solo commits, and the synthetic injected-violation site.
func TestDiagnoseGuardDemotedConserves(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = &faultinject.Plan{Seed: 13, RAW: 0.5}
	cfg := tls.GuardConfig{Window: 8, Decertify: 2, Backoff: 1 << 30, MaxBackoff: 1 << 30}
	opts.Guard = &cfg
	opts.Diagnose = true
	res, err := Run(vectorKernel(400), opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	led := res.TLS.Ledger
	if led == nil {
		t.Fatal("no ledger")
	}
	if err := led.CheckConservation(); err != nil {
		t.Error(err)
	}
	if len(res.TLS.DecertifiedLoops) == 0 {
		t.Fatal("no loop decertified under raw=0.5")
	}
	var solo, injected int64
	for _, l := range led.Loops {
		solo += l.Buckets.GuardSolo + l.Buckets.GuardProbe
		for _, s := range l.Sites {
			if s.Key.Kind == obs.SiteInjected {
				injected += s.Count
			}
		}
	}
	if solo == 0 {
		t.Error("loops were decertified but no guard solo/probe cycles were attributed")
	}
	if injected == 0 {
		t.Error("injected RAW violations were not attributed to the synthetic site")
	}
}
