package codec

import (
	"bytes"
	"encoding/json"
	"sort"

	"jrpm/internal/analyzer"
	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
)

// EncodeResult renders a pipeline outcome in canonical wire form: the name
// and pipeline scalars, the three phases (sequential, profiled,
// speculative) with their full metric payloads, the analyzer's decision
// records, and the per-loop TEST profile statistics.
//
// One field is deliberately not carried: Analysis.Selection, the compiled
// decomposition plan. A serialized result is terminal — it renders every
// report and feeds every metric, but it is not a compilation input — and
// the plan holds pointers into compiler state that has no stable wire
// meaning. DecodeResult leaves it nil.
//
// The optional ledger snapshot (Options.Diagnose runs) travels as a
// length-prefixed canonical JSON blob: the snapshot is already
// deterministically ordered (loops by id, sites by discarded cycles) and
// contains no maps, so its JSON is byte-stable; the envelope version
// guards its schema like every binary section's.
func EncodeResult(r *core.Result) []byte {
	return envelope(KindResult, func(e *enc) {
		var meta enc
		meta.str(r.Name)
		meta.i64(r.CompileCycles)
		meta.i64(r.RecompileCycles)
		meta.i64(r.PredictedCycles)
		meta.bool(r.OutputsMatch)
		meta.bool(r.Adapted)
		meta.i64s(r.ExcludedLoops)
		meta.bool(r.JITFallback)
		meta.bool(r.OracleChecked)
		e.section(meta.b)

		for _, ph := range []*core.Phase{&r.Seq, &r.Profile, &r.TLS} {
			var p enc
			encPhase(&p, ph)
			e.section(p.b)
		}

		var an enc
		an.bool(r.Analysis != nil)
		if r.Analysis != nil {
			encAnalysis(&an, r.Analysis)
		}
		e.section(an.b)

		var lp enc
		encLoops(&lp, r.Loops)
		e.section(lp.b)
	})
}

// DecodeResult parses a canonical result encoding. Malformed input returns
// an error wrapping one of the typed sentinels; it never panics.
func DecodeResult(b []byte) (*core.Result, error) {
	d, err := openEnvelope(b, KindResult)
	if err != nil {
		return nil, err
	}
	r := &core.Result{}

	meta := d.section()
	r.Name = meta.str()
	r.CompileCycles = meta.i64()
	r.RecompileCycles = meta.i64()
	r.PredictedCycles = meta.i64()
	r.OutputsMatch = meta.bool()
	r.Adapted = meta.bool()
	r.ExcludedLoops = meta.i64s()
	r.JITFallback = meta.bool()
	r.OracleChecked = meta.bool()
	if err := meta.finish("result meta"); err != nil {
		return nil, err
	}

	for _, ph := range []*core.Phase{&r.Seq, &r.Profile, &r.TLS} {
		p := d.section()
		decPhase(p, ph)
		if err := p.finish("result phase"); err != nil {
			return nil, err
		}
	}

	an := d.section()
	if an.bool() {
		r.Analysis = decAnalysis(an)
	}
	if err := an.finish("result analysis"); err != nil {
		return nil, err
	}

	lp := d.section()
	r.Loops = decLoops(lp)
	if err := lp.finish("result loops"); err != nil {
		return nil, err
	}
	if err := d.finish("result"); err != nil {
		return nil, err
	}
	return r, nil
}

func encPhase(e *enc, p *core.Phase) {
	e.i64(p.Cycles)
	e.i64(p.GCCycles)
	e.i64(p.GCRuns)
	e.i64(p.Instructions)
	e.i64s(p.Output)
	e.i64(p.Stats.Serial)
	e.i64(p.Stats.RunUsed)
	e.i64(p.Stats.WaitUsed)
	e.i64(p.Stats.Overhead)
	e.i64(p.Stats.RunViolated)
	e.i64(p.Stats.WaitViolated)
	e.i64(p.Commits)
	e.i64(p.Violations)
	e.i64(p.Overflows)
	e.f64(p.AvgStoreBuf)
	e.f64(p.AvgLoadBuf)
	encI64Map(e, p.OverflowBySTL)
	e.i64(p.L1Hits)
	e.i64(p.L1Misses)
	e.i64(p.L2Hits)
	e.i64(p.L2Misses)
	encTier(e, &p.Tier)
	e.i64s(p.Statics)
	encStrMap(e, p.FaultsFired)
	encGuardStats(e, p.GuardStats)
	e.i64s(p.DecertifiedLoops)
	encLedger(e, p.Ledger)
}

func decPhase(d *dec, p *core.Phase) {
	p.Cycles = d.i64()
	p.GCCycles = d.i64()
	p.GCRuns = d.i64()
	p.Instructions = d.i64()
	p.Output = d.i64s()
	p.Stats = tls.StateStats{
		Serial: d.i64(), RunUsed: d.i64(), WaitUsed: d.i64(),
		Overhead: d.i64(), RunViolated: d.i64(), WaitViolated: d.i64(),
	}
	p.Commits = d.i64()
	p.Violations = d.i64()
	p.Overflows = d.i64()
	p.AvgStoreBuf = d.f64()
	p.AvgLoadBuf = d.f64()
	p.OverflowBySTL = decI64Map(d)
	p.L1Hits = d.i64()
	p.L1Misses = d.i64()
	p.L2Hits = d.i64()
	p.L2Misses = d.i64()
	decTier(d, &p.Tier)
	p.Statics = d.i64s()
	p.FaultsFired = decStrMap(d)
	p.GuardStats = decGuardStats(d)
	p.DecertifiedLoops = d.i64s()
	p.Ledger = decLedger(d)
}

func encTier(e *enc, t *hydra.TierStats) {
	e.i64(t.Promotions)
	e.i64(t.BlocksCompiled)
	e.i64(t.CacheHits)
	e.i64(t.CacheMisses)
	e.i64(t.Linked)
	e.i64(t.InterpSteps)
	e.u64(uint64(len(t.Demote)))
	for _, v := range t.Demote {
		e.i64(v)
	}
}

func decTier(d *dec, t *hydra.TierStats) {
	t.Promotions = d.i64()
	t.BlocksCompiled = d.i64()
	t.CacheHits = d.i64()
	t.CacheMisses = d.i64()
	t.Linked = d.i64()
	t.InterpSteps = d.i64()
	n := d.count(1)
	if d.err == nil && n != len(t.Demote) {
		d.fail(ErrCorrupt, "tier demote reasons %d, want %d", n, len(t.Demote))
		return
	}
	for i := 0; i < n && d.err == nil; i++ {
		t.Demote[i] = d.i64()
	}
}

// encI64Map emits an int64-keyed map in ascending key order; nil and empty
// encode identically.
func encI64Map(e *enc, m map[int64]int64) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.i64(k)
		e.i64(m[k])
	}
}

func decI64Map(d *dec) map[int64]int64 {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	m := make(map[int64]int64, n)
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		k := d.i64()
		if i > 0 && k <= prev {
			d.fail(ErrCorrupt, "map keys not strictly ascending")
			return nil
		}
		prev = k
		m[k] = d.i64()
	}
	return m
}

func encStrMap(e *enc, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.i64(m[k])
	}
}

func decStrMap(d *dec) map[string]int64 {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	prev := ""
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		if i > 0 && k <= prev {
			d.fail(ErrCorrupt, "map keys not strictly ascending")
			return nil
		}
		prev = k
		m[k] = d.i64()
	}
	return m
}

func encGuardStats(e *enc, m map[int64]tls.GuardLoopStats) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		g := m[k]
		e.i64(k)
		e.i64(g.Commits)
		e.i64(g.Violations)
		e.i64(g.Overflows)
		e.bool(g.Decertified)
		e.i64(g.Decerts)
		e.i64(g.Probes)
		e.i64(g.Recerts)
	}
}

func decGuardStats(d *dec) map[int64]tls.GuardLoopStats {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	m := make(map[int64]tls.GuardLoopStats, n)
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		k := d.i64()
		if i > 0 && k <= prev {
			d.fail(ErrCorrupt, "map keys not strictly ascending")
			return nil
		}
		prev = k
		m[k] = tls.GuardLoopStats{
			Commits: d.i64(), Violations: d.i64(), Overflows: d.i64(),
			Decertified: d.bool(), Decerts: d.i64(), Probes: d.i64(), Recerts: d.i64(),
		}
	}
	return m
}

func encLedger(e *enc, snap *obs.LedgerSnapshot) {
	e.bool(snap != nil)
	if snap == nil {
		return
	}
	// The snapshot is deterministically ordered and map-free; its JSON is
	// canonical by construction.
	b, err := json.Marshal(snap)
	if err != nil {
		// A snapshot is plain data; Marshal cannot fail on it. Encode an
		// empty blob rather than corrupting the stream.
		b = nil
	}
	e.u64(uint64(len(b)))
	e.raw(b)
}

func decLedger(d *dec) *obs.LedgerSnapshot {
	if !d.bool() {
		return nil
	}
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(ErrTruncated, "ledger blob of %d bytes", n)
		return nil
	}
	blob := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	snap := &obs.LedgerSnapshot{}
	if err := json.Unmarshal(blob, snap); err != nil {
		d.fail(ErrCorrupt, "ledger json: %v", err)
		return nil
	}
	// Canonical form is exactly what encLedger emits; accepting any other
	// JSON spelling would break the decode∘encode identity the cache and
	// the conformance fuzzing rely on.
	if canon, err := json.Marshal(snap); err != nil || !bytes.Equal(canon, blob) {
		d.fail(ErrCorrupt, "non-canonical ledger json")
		return nil
	}
	return snap
}

func encAnalysis(e *enc, a *analyzer.Result) {
	e.i64(a.PredictedCycles)
	e.i64(a.ProfiledCycles)
	e.u64(uint64(len(a.Decisions)))
	for _, dn := range a.Decisions {
		e.i64(dn.LoopID)
		e.int(dn.MethodID)
		e.int(dn.LoopIndex)
		e.int(dn.Depth)
		e.bool(dn.Selected)
		e.str(dn.Reason)
		e.bool(dn.Inner)
		encPrediction(e, dn.Prediction)
		e.f64(dn.Coverage)
		e.bool(dn.Stats != nil)
		if dn.Stats != nil {
			encLoopStats(e, dn.Stats)
		}
		e.int(dn.Inductors)
		e.int(dn.Resetable)
		e.int(dn.Reductions)
		e.int(dn.SyncLocks)
		e.int(dn.Comm)
		e.bool(dn.Hoisted)
		e.bool(dn.Multilevel)
	}
}

func decAnalysis(d *dec) *analyzer.Result {
	a := &analyzer.Result{}
	a.PredictedCycles = d.i64()
	a.ProfiledCycles = d.i64()
	n := d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		dn := &analyzer.LoopDecision{}
		dn.LoopID = d.i64()
		dn.MethodID = d.int()
		dn.LoopIndex = d.int()
		dn.Depth = d.int()
		dn.Selected = d.bool()
		dn.Reason = d.str()
		dn.Inner = d.bool()
		dn.Prediction = decPrediction(d)
		dn.Coverage = d.f64()
		if d.bool() {
			dn.Stats = decLoopStats(d)
		}
		dn.Inductors = d.int()
		dn.Resetable = d.int()
		dn.Reductions = d.int()
		dn.SyncLocks = d.int()
		dn.Comm = d.int()
		dn.Hoisted = d.bool()
		dn.Multilevel = d.bool()
		a.Decisions = append(a.Decisions, dn)
	}
	return a
}

func encPrediction(e *enc, p tracer.Prediction) {
	e.i64(p.SeqCycles)
	e.i64(p.ParCycles)
	e.f64(p.Speedup)
	e.f64(p.Interval)
	e.f64(p.DepBound)
	e.f64(p.CPUBound)
	e.f64(p.Overflow)
}

func decPrediction(d *dec) tracer.Prediction {
	return tracer.Prediction{
		SeqCycles: d.i64(), ParCycles: d.i64(),
		Speedup: d.f64(), Interval: d.f64(), DepBound: d.f64(),
		CPUBound: d.f64(), Overflow: d.f64(),
	}
}

func encLoops(e *enc, loops map[int64]*tracer.LoopStats) {
	keys := make([]int64, 0, len(loops))
	for k := range loops {
		if loops[k] != nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.i64(k)
		encLoopStats(e, loops[k])
	}
}

func decLoops(d *dec) map[int64]*tracer.LoopStats {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	m := make(map[int64]*tracer.LoopStats, n)
	var prev int64
	for i := 0; i < n && d.err == nil; i++ {
		k := d.i64()
		if i > 0 && k <= prev {
			d.fail(ErrCorrupt, "map keys not strictly ascending")
			return nil
		}
		prev = k
		m[k] = decLoopStats(d)
	}
	return m
}

func encLoopStats(e *enc, ls *tracer.LoopStats) {
	e.i64(ls.LoopID)
	e.i64(ls.Entries)
	e.i64(ls.Iterations)
	e.i64(ls.TotalCycles)
	keys := make([]uint32, 0, len(ls.Deps))
	for k := range ls.Deps {
		if ls.Deps[k] != nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		ds := ls.Deps[k]
		e.u64(uint64(k))
		e.i64(ds.Iters)
		e.i64(ds.SumDist)
		e.i64(ds.MinDist)
		e.i64(ds.SumStoreOff)
		e.i64(ds.MaxStoreOff)
		e.i64(ds.SumLoadOff)
		for _, v := range ds.DistHist {
			e.i64(v)
		}
	}
	e.i64(ls.CriticalIters)
	e.i64(ls.SumCritDist)
	e.i64(ls.SumCritStore)
	e.i64(ls.SumCritLoad)
	e.i64(ls.OverflowIters)
	e.i64(ls.SumLoadLines)
	e.i64(ls.SumStoreLines)
	e.i64(ls.MaxLoadLines)
	e.i64(ls.MaxStoreLines)
	e.i64(ls.Unprofiled)
	e.bool(ls.AbandonedOverflow)
}

func decLoopStats(d *dec) *tracer.LoopStats {
	ls := &tracer.LoopStats{}
	ls.LoopID = d.i64()
	ls.Entries = d.i64()
	ls.Iterations = d.i64()
	ls.TotalCycles = d.i64()
	n := d.count(7 + tracer.DepDistBuckets)
	var prev uint64
	for i := 0; i < n && d.err == nil; i++ {
		ku := d.u64()
		if ku > 1<<32-1 || (i > 0 && ku <= prev) {
			d.fail(ErrCorrupt, "dep keys not strictly ascending uint32")
			break
		}
		prev = ku
		k := uint32(ku)
		ds := &tracer.DepStats{
			Iters: d.i64(), SumDist: d.i64(), MinDist: d.i64(),
			SumStoreOff: d.i64(), MaxStoreOff: d.i64(), SumLoadOff: d.i64(),
		}
		for b := range ds.DistHist {
			ds.DistHist[b] = d.i64()
		}
		if ls.Deps == nil {
			ls.Deps = make(map[uint32]*tracer.DepStats, n)
		}
		ls.Deps[k] = ds
	}
	ls.CriticalIters = d.i64()
	ls.SumCritDist = d.i64()
	ls.SumCritStore = d.i64()
	ls.SumCritLoad = d.i64()
	ls.OverflowIters = d.i64()
	ls.SumLoadLines = d.i64()
	ls.SumStoreLines = d.i64()
	ls.MaxLoadLines = d.i64()
	ls.MaxStoreLines = d.i64()
	ls.Unprofiled = d.i64()
	ls.AbandonedOverflow = d.bool()
	return ls
}
