package codec

import (
	"bytes"
	"errors"
	"testing"

	"jrpm/internal/analyzer"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/progen"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
)

// testProgram lowers a deterministic progen program.
func testProgram(t testing.TB, seed int64) *bytecode.Program {
	t.Helper()
	_, bp, err := progen.Lower(progen.Generate(seed, progen.QuickConfig()))
	if err != nil {
		t.Fatalf("seed %d: lower: %v", seed, err)
	}
	return bp
}

// fullOptions populates every options field the codec carries, including
// all six optional sub-configurations.
func fullOptions() core.Options {
	o := core.DefaultOptions()
	o.NCPU = 8
	o.MaxCycles = 123_456_789
	o.AdaptiveReprofile = true
	o.NoInline = true
	o.StormLimit = 77
	o.Diagnose = true
	o.Tier2Off = true
	o.VM.ParallelAlloc = true
	o.VM.HeapWords = 1 << 14

	ac := analyzer.DefaultConfig()
	ac.ExcludeLoops = map[int64]bool{9: true, 3: true, 27: true}
	o.Analyzer = &ac
	tc := tls.DefaultConfig(8)
	o.TLS = &tc
	cc := mem.DefaultCacheConfig(8)
	o.Cache = &cc
	trc := tracer.DefaultConfig()
	o.Tracer = &trc
	o.Faults = &faultinject.Plan{Seed: 42, RAW: 0.25, Overflow: 0.5, Bus: 0.125, BusDelay: 9, Heap: 0.0625, JIT: 0.03125}
	gc := tls.DefaultGuardConfig()
	o.Guard = &gc
	return o
}

// runResult produces a real pipeline result with the diagnosis ledger
// attached, so the encoding exercises the full metric payload.
func runResult(t testing.TB, seed int64) *core.Result {
	t.Helper()
	bp := testProgram(t, seed)
	opts := core.DefaultOptions()
	gc := tls.DefaultGuardConfig()
	opts.Guard = &gc
	opts.Diagnose = true
	res, err := core.Run(bp, opts)
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	return res
}

// syntheticResult fills every field the pipeline may leave empty on small
// programs — all three per-phase maps, guard stats, analysis decisions with
// inline loop stats, and dep histograms.
func syntheticResult() *core.Result {
	ds := &tracer.DepStats{Iters: 5, SumDist: 11, MinDist: 2, SumStoreOff: 3, MaxStoreOff: 7, SumLoadOff: 4}
	for i := range ds.DistHist {
		ds.DistHist[i] = int64(i * i)
	}
	ls := &tracer.LoopStats{
		LoopID: 12, Entries: 3, Iterations: 90, TotalCycles: 4096,
		Deps:          map[uint32]*tracer.DepStats{7: ds, 2: {Iters: 1, MinDist: 1}},
		CriticalIters: 8, SumCritDist: 16, SumCritStore: 5, SumCritLoad: 6,
		OverflowIters: 1, SumLoadLines: 20, SumStoreLines: 21,
		MaxLoadLines: 4, MaxStoreLines: 5, Unprofiled: 2, AbandonedOverflow: true,
	}
	r := &core.Result{
		Name:            "synthetic",
		CompileCycles:   1000,
		RecompileCycles: 250,
		PredictedCycles: 5_000,
		OutputsMatch:    true,
		Adapted:         true,
		ExcludedLoops:   []int64{4, 1, 9},
		JITFallback:     true,
		OracleChecked:   true,
		Loops:           map[int64]*tracer.LoopStats{12: ls, 3: {LoopID: 3, Entries: 1}},
		Analysis: &analyzer.Result{
			PredictedCycles: 5_000,
			ProfiledCycles:  6_000,
			Decisions: []*analyzer.LoopDecision{
				{
					LoopID: 12, MethodID: 1, LoopIndex: 0, Depth: 1, Selected: true,
					Reason: "selected", Inner: true,
					Prediction: tracer.Prediction{SeqCycles: 6_000, ParCycles: 2_000, Speedup: 3, Interval: 0.5, DepBound: 1.5, CPUBound: 2.5, Overflow: 0.125},
					Coverage:   0.75, Stats: ls, Inductors: 2, Resetable: 1, Reductions: 1,
					SyncLocks: 1, Comm: 3, Hoisted: true, Multilevel: true,
				},
				{LoopID: 3, Reason: "too-small"},
			},
		},
	}
	for i, p := range []*core.Phase{&r.Seq, &r.Profile, &r.TLS} {
		base := int64(i+1) * 1000
		p.Cycles = base
		p.GCCycles = base / 10
		p.GCRuns = int64(i)
		p.Instructions = base * 3
		p.Output = []int64{base, -base, 0}
		p.Stats = tls.StateStats{Serial: 1, RunUsed: 2, WaitUsed: 3, Overhead: 4, RunViolated: 5, WaitViolated: 6}
		p.Commits = 7
		p.Violations = 8
		p.Overflows = 9
		p.AvgStoreBuf = 1.25
		p.AvgLoadBuf = 2.5
		p.OverflowBySTL = map[int64]int64{12: 2, -3: 1, 44: 9}
		p.L1Hits, p.L1Misses, p.L2Hits, p.L2Misses = 10, 11, 12, 13
		p.Tier.Promotions = 14
		p.Tier.InterpSteps = 15
		for d := range p.Tier.Demote {
			p.Tier.Demote[d] = int64(d + i)
		}
		p.Statics = []int64{5, -6, 7}
		p.FaultsFired = map[string]int64{"raw": 2, "bus": 1, "overflow": 3}
		p.GuardStats = map[int64]tls.GuardLoopStats{
			12: {Commits: 9, Violations: 1, Overflows: 0, Decertified: true, Decerts: 1, Probes: 2, Recerts: 1},
			3:  {Commits: 4},
		}
		p.DecertifiedLoops = []int64{12}
	}
	r.TLS.Ledger = &obs.LedgerSnapshot{NCPU: 4, WallCycles: 4096}
	return r
}

func TestProgramRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		bp := testProgram(t, seed)
		wire := EncodeProgram(bp)
		got, err := DecodeProgram(wire)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		again := EncodeProgram(got)
		if !bytes.Equal(wire, again) {
			t.Fatalf("seed %d: decode∘encode is not the identity (%d vs %d bytes)", seed, len(wire), len(again))
		}
		if ProgramHash(bp) != ProgramHash(got) {
			t.Fatalf("seed %d: hash changed across round-trip", seed)
		}
		if got.Name != bp.Name || len(got.Methods) != len(bp.Methods) || got.Main != bp.Main || got.Statics != bp.Statics {
			t.Fatalf("seed %d: structure changed across round-trip", seed)
		}
	}
}

func TestProgramHashDistinguishes(t *testing.T) {
	if ProgramHash(testProgram(t, 1)) == ProgramHash(testProgram(t, 2)) {
		t.Fatal("different programs hashed equal")
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	for _, o := range []core.Options{core.DefaultOptions(), fullOptions(), {}} {
		wire := EncodeOptions(o)
		got, err := DecodeOptions(wire)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		again := EncodeOptions(got)
		if !bytes.Equal(wire, again) {
			t.Fatalf("decode∘encode is not the identity")
		}
		if got.NCPU != o.NCPU || got.MaxCycles != o.MaxCycles || got.Diagnose != o.Diagnose {
			t.Fatalf("scalars changed across round-trip: %+v vs %+v", got, o)
		}
		if (got.Analyzer == nil) != (o.Analyzer == nil) || (got.Faults == nil) != (o.Faults == nil) {
			t.Fatalf("presence flags changed across round-trip")
		}
	}
	// The exclude-loop set must canonicalize: map order cannot leak.
	o := fullOptions()
	w1 := EncodeOptions(o)
	for i := 0; i < 16; i++ {
		if !bytes.Equal(w1, EncodeOptions(fullOptions())) {
			t.Fatal("options encoding depends on map iteration order")
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	results := []*core.Result{syntheticResult(), runResult(t, 3)}
	for i, res := range results {
		wire := EncodeResult(res)
		got, err := DecodeResult(wire)
		if err != nil {
			t.Fatalf("result %d: decode: %v", i, err)
		}
		again := EncodeResult(got)
		if !bytes.Equal(wire, again) {
			t.Fatalf("result %d: decode∘encode is not the identity", i)
		}
		if got.Name != res.Name || got.TLS.Cycles != res.TLS.Cycles || got.Seq.Cycles != res.Seq.Cycles {
			t.Fatalf("result %d: fields changed across round-trip", i)
		}
		if (got.TLS.Ledger == nil) != (res.TLS.Ledger == nil) {
			t.Fatalf("result %d: ledger presence changed", i)
		}
		if (got.Analysis == nil) != (res.Analysis == nil) {
			t.Fatalf("result %d: analysis presence changed", i)
		}
	}
	// Map-heavy encodings must be stable call to call.
	w := EncodeResult(syntheticResult())
	for i := 0; i < 16; i++ {
		if !bytes.Equal(w, EncodeResult(syntheticResult())) {
			t.Fatal("result encoding depends on map iteration order")
		}
	}
}

func TestVersionSkew(t *testing.T) {
	for _, wire := range [][]byte{
		EncodeProgram(testProgram(t, 1)),
		EncodeOptions(fullOptions()),
		EncodeResult(syntheticResult()),
	} {
		skewed := append([]byte(nil), wire...)
		skewed[4] = Version + 1
		var err error
		switch Kind(skewed[5]) {
		case KindProgram:
			_, err = DecodeProgram(skewed)
		case KindOptions:
			_, err = DecodeOptions(skewed)
		case KindResult:
			_, err = DecodeResult(skewed)
		}
		if !errors.Is(err, ErrCodecVersion) {
			t.Fatalf("version skew on kind %s: got %v, want ErrCodecVersion", Kind(wire[5]), err)
		}
	}
}

func TestWrongKindRejected(t *testing.T) {
	if _, err := DecodeProgram(EncodeOptions(core.DefaultOptions())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("options bytes accepted as a program: %v", err)
	}
	if _, err := DecodeResult(EncodeProgram(testProgram(t, 1))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("program bytes accepted as a result: %v", err)
	}
}

// typedCodecError reports whether err wraps exactly the sentinels decode is
// allowed to return.
func typedCodecError(err error) bool {
	return errors.Is(err, ErrCodecVersion) || errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt)
}

func TestTruncationNeverPanics(t *testing.T) {
	wire := EncodeResult(runResult(t, 5))
	for n := 0; n < len(wire); n++ {
		_, err := DecodeResult(wire[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(wire))
		}
		if !typedCodecError(err) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
}

func TestCorruptionTypedOrCanonical(t *testing.T) {
	wire := EncodeOptions(fullOptions())
	for i := 0; i < len(wire); i++ {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x41
		got, err := DecodeOptions(mut)
		if err != nil {
			if !typedCodecError(err) {
				t.Fatalf("flip at %d: untyped error %v", i, err)
			}
			continue
		}
		// A flip that still decodes must land on another canonical value.
		if !bytes.Equal(EncodeOptions(got), mut) {
			t.Fatalf("flip at %d: accepted a non-canonical encoding", i)
		}
	}
}

func TestCacheKey(t *testing.T) {
	bp := testProgram(t, 1)
	h := ProgramHash(bp)
	k1 := CacheKey(h, EncodeOptions(core.DefaultOptions()))
	k2 := CacheKey(h, EncodeOptions(fullOptions()))
	if k1 == k2 {
		t.Fatal("different options produced the same cache key")
	}
	if k1 != CacheKey(h, EncodeOptions(core.DefaultOptions())) {
		t.Fatal("cache key is not stable")
	}
	if len(k1) != 64+1+64 {
		t.Fatalf("unexpected key shape %q", k1)
	}
}
