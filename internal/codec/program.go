package codec

import (
	"crypto/sha256"
	"fmt"

	"jrpm/internal/bytecode"
)

// EncodeProgram renders a program in canonical wire form. The layout is
// three length-prefixed sections behind the envelope:
//
//	meta    name, statics, main
//	methods per method: id, name, nargs, nlocals, hasResult, code, handlers
//	classes per class: id, name, numFields
func EncodeProgram(p *bytecode.Program) []byte {
	return envelope(KindProgram, func(e *enc) {
		var meta enc
		meta.str(p.Name)
		meta.int(p.Statics)
		meta.int(p.Main)
		e.section(meta.b)

		var ms enc
		ms.u64(uint64(len(p.Methods)))
		for _, m := range p.Methods {
			ms.int(m.ID)
			ms.str(m.Name)
			ms.int(m.NArgs)
			ms.int(m.NLocals)
			ms.bool(m.HasResult)
			ms.u64(uint64(len(m.Code)))
			for _, in := range m.Code {
				ms.byte(byte(in.Op))
				ms.i64(in.A)
				ms.i64(in.B)
			}
			ms.u64(uint64(len(m.Handlers)))
			for _, h := range m.Handlers {
				ms.int(h.Start)
				ms.int(h.End)
				ms.int(h.Target)
				ms.i64(h.Kind)
			}
		}
		e.section(ms.b)

		var cs enc
		cs.u64(uint64(len(p.Classes)))
		for _, c := range p.Classes {
			cs.int(c.ID)
			cs.str(c.Name)
			cs.int(c.NumFields)
		}
		e.section(cs.b)
	})
}

// DecodeProgram parses a canonical program encoding. Malformed input
// returns an error wrapping one of the typed sentinels; it never panics.
func DecodeProgram(b []byte) (*bytecode.Program, error) {
	d, err := openEnvelope(b, KindProgram)
	if err != nil {
		return nil, err
	}
	p := &bytecode.Program{}

	meta := d.section()
	p.Name = meta.str()
	p.Statics = meta.int()
	p.Main = meta.int()
	if err := meta.finish("program meta"); err != nil {
		return nil, err
	}

	ms := d.section()
	nm := ms.count(6)
	for i := 0; i < nm && ms.err == nil; i++ {
		m := &bytecode.Method{}
		m.ID = ms.int()
		m.Name = ms.str()
		m.NArgs = ms.int()
		m.NLocals = ms.int()
		m.HasResult = ms.bool()
		nc := ms.count(3)
		for k := 0; k < nc && ms.err == nil; k++ {
			m.Code = append(m.Code, bytecode.Ins{
				Op: bytecode.Op(ms.byteVal()), A: ms.i64(), B: ms.i64(),
			})
		}
		nh := ms.count(4)
		for k := 0; k < nh && ms.err == nil; k++ {
			m.Handlers = append(m.Handlers, bytecode.Handler{
				Start: ms.int(), End: ms.int(), Target: ms.int(), Kind: ms.i64(),
			})
		}
		p.Methods = append(p.Methods, m)
	}
	if err := ms.finish("program methods"); err != nil {
		return nil, err
	}

	cs := d.section()
	ncl := cs.count(3)
	for i := 0; i < ncl && cs.err == nil; i++ {
		p.Classes = append(p.Classes, &bytecode.Class{
			ID: cs.int(), Name: cs.str(), NumFields: cs.int(),
		})
	}
	if err := cs.finish("program classes"); err != nil {
		return nil, err
	}
	if err := d.finish("program"); err != nil {
		return nil, err
	}
	// Structural floor so a decoded program cannot crash downstream
	// consumers that index Methods[Main] unconditionally.
	if p.Main < 0 || p.Main >= len(p.Methods) {
		return nil, fmt.Errorf("%w: main method %d of %d", ErrCorrupt, p.Main, len(p.Methods))
	}
	return p, nil
}

// ProgramHash is the content address of a program: SHA-256 over its
// canonical encoding. Equal programs hash equally in every process — the
// encoding has no map-order or pointer-identity dependence.
func ProgramHash(p *bytecode.Program) Hash {
	return sha256.Sum256(EncodeProgram(p))
}
