package codec

import (
	"bytes"
	"errors"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
	"jrpm/internal/vm"
)

// vmStateForTest is a synthetic VM registry with a few heap blocks.
var vmStateForTest = vm.State{
	Blocks:     []vm.BlockSpan{{Addr: 64, Words: 8}, {Addr: 96, Words: 16}},
	Allocs:     5,
	AllocWords: 24,
	GCs:        1,
	LastLive:   20,
	LastFreed:  4,
}

// syntheticSnapshot fills every optional branch of the snapshot encoding:
// overflow counts, call frames, guard state, a warm tier-2 cache with a
// resume marker, and both memory spans.
func syntheticSnapshot() *hydra.MachineSnapshot {
	s := &hydra.MachineSnapshot{
		ImageFP:      0xdeadbeefcafef00d,
		NCPU:         4,
		Clock:        1_234_567,
		Master:       2,
		Output:       []int64{9, -4, 0, 77},
		GCCycles:     4096,
		Instructions: 999_999,
		GCRuns:       3,
		OverflowBySTL: []hydra.STLCount{
			{LoopID: -7, Count: 2}, {LoopID: 3, Count: 11}, {LoopID: 90, Count: 1},
		},
		StormCount:   5,
		LastHoisted:  12,
		HadCtx:       true,
		NextCtxCheck: 1_300_000,
		Mem: mem.State{
			Size: 64, Split: 32, LoMax: 3, HiMin: 60,
			Low: []int64{1, -2, 3}, High: []int64{4, 0, -6, 7},
		},
		Caches: mem.CacheState{
			L1: []mem.SetState{
				{Tags: []mem.Addr{1, 2}, LRU: []uint32{3, 4}, Clock: 5},
				{Tags: []mem.Addr{6}, LRU: []uint32{7}, Clock: 8},
			},
			L2:     mem.SetState{Tags: []mem.Addr{9, 10, 11}, LRU: []uint32{1, 2, 3}, Clock: 99},
			L1Hits: 100, L1Misses: 10, L2Hits: 8, L2Misses: 2,
		},
		TLS: tls.UnitState{
			Stats:   tls.StateStats{Serial: 1, RunUsed: 2, WaitUsed: 3, Overhead: 4, RunViolated: 5, WaitViolated: 6},
			Commits: 7, Violations: 8, Overflows: 9,
			MaxStoreLines: 10, MaxLoadLines: 11,
			SumStoreLines: 12, SumLoadLines: 13,
			CommittedLoads: 14, CommittedStores: 15,
		},
		HasGuard: true,
		Guard: []tls.GuardLoopState{
			{
				LoopID:   3,
				Stats:    tls.GuardLoopStats{Commits: 20, Violations: 2, Overflows: 1, Decertified: true, Decerts: 1, Probes: 4, Recerts: 1},
				WCommits: 5, WViolations: 1, WOverflows: 0,
				BadStreak: 2, Backoff: 64, Wait: 32, Probing: true,
			},
			{LoopID: 44},
		},
		T2: &hydra.TierCacheSnapshot{
			Resume:    true,
			LastEntry: 17,
			Methods: []hydra.TierMethodSnapshot{
				{Method: 0, Blocks: []hydra.TierBlockSnapshot{{Entry: 0, Succ0: 9, Succ1: -1}, {Entry: 9, Succ0: -1, Succ1: -1}}},
				{Method: 3, Blocks: []hydra.TierBlockSnapshot{{Entry: 17, Succ0: -1, Succ1: 17}}},
			},
		},
	}
	s.Tier = hydra.TierStats{Promotions: 1, BlocksCompiled: 2, CacheHits: 3, CacheMisses: 4, Linked: 5, InterpSteps: 6}
	for i := range s.Tier.Demote {
		s.Tier.Demote[i] = int64(i * 3)
	}
	for i := 0; i < 4; i++ {
		c := hydra.CPUSnapshot{
			PC: i * 7, MethodID: i, State: 1, ReadyAt: int64(i) * 100,
			SnapDepth: i, SnapSP: int64(40 - i), SnapFP: int64(30 - i),
			PendingExKind: int64(i % 2), PendingExRef: 5, PendingIO: 6,
			OverflowPending: i == 2, GCAttempts: i, Extra: int64(-i),
		}
		for r := range c.Regs {
			c.Regs[r] = int64(r*i) - 3
		}
		if i > 0 {
			c.Frames = []hydra.FrameSnapshot{
				{RetMethod: 0, RetPC: 4, SavedFP: 8, SavedSP: 16},
				{RetMethod: i, RetPC: 2, SavedFP: 24, SavedSP: 32},
			}
		}
		s.CPUs = append(s.CPUs, c)
	}
	return s
}

// capturedCheckpoints runs a progen pipeline with checkpointing armed at
// every safepoint edge and returns the captured checkpoints plus the
// straight-run wire result they must reproduce.
func capturedCheckpoints(t testing.TB, seed int64) ([]*core.Checkpoint, []byte) {
	t.Helper()
	bp := testProgram(t, seed)
	opts := core.DefaultOptions()
	ref, err := core.Run(bp, opts)
	if err != nil {
		t.Fatalf("seed %d: straight run: %v", seed, err)
	}
	var cps []*core.Checkpoint
	cc := &core.CheckpointController{Stride: 2048, Label: "rung-test"}
	cc.OnCheckpoint = func(cp *core.Checkpoint, _ int64) {
		cps = append(cps, cp)
		cc.Request()
	}
	copts := opts
	copts.Checkpoint = cc
	cc.Request()
	if _, err := core.Run(bp, copts); err != nil {
		t.Fatalf("seed %d: capture run: %v", seed, err)
	}
	if len(cps) == 0 {
		t.Fatalf("seed %d: no checkpoints captured", seed)
	}
	return cps, EncodeResult(ref)
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := syntheticSnapshot()
	wire := EncodeSnapshot(s)
	got, err := DecodeSnapshot(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(wire, EncodeSnapshot(got)) {
		t.Fatal("snapshot decode∘encode is not the identity")
	}
	if got.Clock != s.Clock || got.ImageFP != s.ImageFP || len(got.CPUs) != len(s.CPUs) {
		t.Fatal("snapshot fields changed across round-trip")
	}
	if got.T2 == nil || !got.T2.Resume || got.T2.LastEntry != 17 {
		t.Fatalf("tier-2 state changed across round-trip: %+v", got.T2)
	}
	if len(got.Guard) != 2 || !got.Guard[0].Stats.Decertified {
		t.Fatal("guard state changed across round-trip")
	}

	// Optional branches off: no guard, no tier-2, no frames, no overflow.
	bare := &hydra.MachineSnapshot{NCPU: 1, CPUs: make([]hydra.CPUSnapshot, 1)}
	bw := EncodeSnapshot(bare)
	bg, err := DecodeSnapshot(bw)
	if err != nil {
		t.Fatalf("bare decode: %v", err)
	}
	if !bytes.Equal(bw, EncodeSnapshot(bg)) {
		t.Fatal("bare snapshot decode∘encode is not the identity")
	}
	if bg.T2 != nil || bg.Guard != nil {
		t.Fatal("bare snapshot grew optional state across round-trip")
	}
}

// TestCheckpointRoundTrip proves a captured checkpoint survives the wire:
// decode∘encode is the identity, and — the property the durable job layer
// rests on — resuming from the decoded copy reproduces the straight run's
// wire result bit-identically.
func TestCheckpointRoundTrip(t *testing.T) {
	cps, refWire := capturedCheckpoints(t, 3)
	bp := testProgram(t, 3)
	sample := []*core.Checkpoint{cps[0], cps[len(cps)/2], cps[len(cps)-1]}
	for i, cp := range sample {
		wire := EncodeCheckpoint(cp)
		got, err := DecodeCheckpoint(wire)
		if err != nil {
			t.Fatalf("checkpoint %d: decode: %v", i, err)
		}
		if !bytes.Equal(wire, EncodeCheckpoint(got)) {
			t.Fatalf("checkpoint %d: decode∘encode is not the identity", i)
		}
		if got.Name != cp.Name || got.Stage != cp.Stage || got.Label != "rung-test" {
			t.Fatalf("checkpoint %d: header changed: %q/%q/%q", i, got.Name, got.Stage, got.Label)
		}
		res, err := core.ResumeTLS(bp, core.DefaultOptions(), got)
		if err != nil {
			t.Fatalf("checkpoint %d (stage %s, clock %d): resume from decoded copy: %v",
				i, got.Stage, got.Machine.Clock, err)
		}
		if !bytes.Equal(EncodeResult(res), refWire) {
			t.Fatalf("checkpoint %d (stage %s): resume from decoded copy diverged from straight run", i, got.Stage)
		}
	}
}

// TestCheckpointHashRejectsCorruption flips every byte of an encoded
// checkpoint and asserts each flip is rejected with a typed error — the
// content hash makes a torn or bit-rotted checkpoint file detectable before
// any restore is attempted.
func TestCheckpointHashRejectsCorruption(t *testing.T) {
	wire := EncodeCheckpoint(&core.Checkpoint{
		Name: "synthetic", Stage: core.StageTLS, Label: "rung",
		Machine: syntheticSnapshot(),
		VM:      &vmStateForTest,
	})
	got, err := DecodeCheckpoint(wire)
	if err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	if !bytes.Equal(wire, EncodeCheckpoint(got)) {
		t.Fatal("checkpoint decode∘encode is not the identity")
	}
	for i := 0; i < len(wire); i++ {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x41
		if _, err := DecodeCheckpoint(mut); err == nil {
			t.Fatalf("flip at byte %d/%d decoded cleanly", i, len(wire))
		} else if !typedCodecError(err) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
	for n := 0; n < len(wire); n++ {
		if _, err := DecodeCheckpoint(wire[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(wire))
		} else if !typedCodecError(err) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
	if _, err := DecodeSnapshot(wire); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checkpoint bytes accepted as a snapshot: %v", err)
	}
	if _, err := DecodeCheckpoint(EncodeSnapshot(syntheticSnapshot())); !typedCodecError(err) {
		t.Fatalf("snapshot bytes accepted as a checkpoint: %v", err)
	}
	skew := append([]byte(nil), wire...)
	skew[4] = Version + 1
	if _, err := DecodeCheckpoint(skew); !typedCodecError(err) {
		t.Fatalf("version skew: got %v", err)
	}
}
