package codec

import (
	"sort"

	"jrpm/internal/analyzer"
	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/vm"
)

// EncodeOptions renders the simulation-relevant subset of core.Options in
// canonical wire form. Everything that can change the bytes of a Result is
// covered: machine shape, handler costs, VM modifications, the optional
// analyzer/TLS/cache/tracer configs, fault plan, guard, storm limit,
// cycle budget, the pipeline toggles, Diagnose (it adds the ledger payload
// to the result) and Tier2Off (it changes the result's tier counters).
//
// The two runtime-only fields — Ctx and Recorder — are deliberately not
// carried: they parameterize host-side execution, not the simulated
// outcome, and a flight-recorder ring cannot meaningfully travel in a
// cache key. Decode returns them zero.
func EncodeOptions(o core.Options) []byte {
	return envelope(KindOptions, func(e *enc) {
		var p enc
		p.int(o.NCPU)
		encHandlers(&p, o.Handlers)
		encVMConfig(&p, o.VM)
		p.i64(o.MaxCycles)
		p.bool(o.AdaptiveReprofile)
		p.bool(o.NoInline)
		p.i64(o.StormLimit)
		p.bool(o.Diagnose)
		p.bool(o.Tier2Off)
		e.section(p.b)

		// Optional sub-configurations, one presence-flagged section each.
		var sub enc
		sub.bool(o.Analyzer != nil)
		if o.Analyzer != nil {
			encAnalyzerConfig(&sub, *o.Analyzer)
		}
		sub.bool(o.TLS != nil)
		if o.TLS != nil {
			encTLSConfig(&sub, *o.TLS)
		}
		sub.bool(o.Cache != nil)
		if o.Cache != nil {
			encCacheConfig(&sub, *o.Cache)
		}
		sub.bool(o.Tracer != nil)
		if o.Tracer != nil {
			encTracerConfig(&sub, *o.Tracer)
		}
		sub.bool(o.Faults != nil)
		if o.Faults != nil {
			encFaultPlan(&sub, *o.Faults)
		}
		sub.bool(o.Guard != nil)
		if o.Guard != nil {
			encGuardConfig(&sub, *o.Guard)
		}
		e.section(sub.b)
	})
}

// DecodeOptions parses a canonical options encoding.
func DecodeOptions(b []byte) (core.Options, error) {
	var o core.Options
	d, err := openEnvelope(b, KindOptions)
	if err != nil {
		return o, err
	}

	p := d.section()
	o.NCPU = p.int()
	o.Handlers = decHandlers(p)
	o.VM = decVMConfig(p)
	o.MaxCycles = p.i64()
	o.AdaptiveReprofile = p.bool()
	o.NoInline = p.bool()
	o.StormLimit = p.i64()
	o.Diagnose = p.bool()
	o.Tier2Off = p.bool()
	if err := p.finish("options scalars"); err != nil {
		return core.Options{}, err
	}

	sub := d.section()
	if sub.bool() {
		a := decAnalyzerConfig(sub)
		o.Analyzer = &a
	}
	if sub.bool() {
		t := decTLSConfig(sub)
		o.TLS = &t
	}
	if sub.bool() {
		c := decCacheConfig(sub)
		o.Cache = &c
	}
	if sub.bool() {
		t := decTracerConfig(sub)
		o.Tracer = &t
	}
	if sub.bool() {
		f := decFaultPlan(sub)
		o.Faults = &f
	}
	if sub.bool() {
		g := decGuardConfig(sub)
		o.Guard = &g
	}
	if err := sub.finish("options subconfigs"); err != nil {
		return core.Options{}, err
	}
	if err := d.finish("options"); err != nil {
		return core.Options{}, err
	}
	return o, nil
}

func encHandlers(e *enc, h tls.HandlerCosts) {
	e.i64(h.Startup)
	e.i64(h.Shutdown)
	e.i64(h.EOI)
	e.i64(h.Restart)
}

func decHandlers(d *dec) tls.HandlerCosts {
	return tls.HandlerCosts{Startup: d.i64(), Shutdown: d.i64(), EOI: d.i64(), Restart: d.i64()}
}

func encVMConfig(e *enc, c vm.Config) {
	e.bool(c.ParallelAlloc)
	e.bool(c.ElideLocks)
	e.int(c.HeapWords)
	e.int(c.ChunkWords)
}

func decVMConfig(d *dec) vm.Config {
	return vm.Config{
		ParallelAlloc: d.bool(), ElideLocks: d.bool(),
		HeapWords: d.int(), ChunkWords: d.int(),
	}
}

func encTLSConfig(e *enc, c tls.Config) {
	e.int(c.NCPU)
	e.int(c.StoreBufferLines)
	e.int(c.LoadBufferLines)
	encHandlers(e, c.Handlers)
	e.bool(c.ChaosNoWordValid)
}

func decTLSConfig(d *dec) tls.Config {
	return tls.Config{
		NCPU: d.int(), StoreBufferLines: d.int(), LoadBufferLines: d.int(),
		Handlers: decHandlers(d), ChaosNoWordValid: d.bool(),
	}
}

func encCacheConfig(e *enc, c mem.CacheConfig) {
	e.int(c.NCPU)
	e.int(c.L1Lines)
	e.int(c.L1Assoc)
	e.int(c.L2Lines)
	e.int(c.L2Assoc)
	e.i64(c.LatL1)
	e.i64(c.LatL2)
	e.i64(c.LatMem)
	e.i64(c.LatInter)
}

func decCacheConfig(d *dec) mem.CacheConfig {
	return mem.CacheConfig{
		NCPU: d.int(), L1Lines: d.int(), L1Assoc: d.int(),
		L2Lines: d.int(), L2Assoc: d.int(),
		LatL1: d.i64(), LatL2: d.i64(), LatMem: d.i64(), LatInter: d.i64(),
	}
}

func encTracerConfig(e *enc, c tracer.Config) {
	e.int(c.NumBanks)
	e.int(c.StoreBufferLines)
	e.int(c.LoadBufferLines)
	e.int(c.StartRing)
	e.int(c.MemWords)
}

func decTracerConfig(d *dec) tracer.Config {
	return tracer.Config{
		NumBanks: d.int(), StoreBufferLines: d.int(), LoadBufferLines: d.int(),
		StartRing: d.int(), MemWords: d.int(),
	}
}

func encFaultPlan(e *enc, p faultinject.Plan) {
	e.i64(p.Seed)
	e.f64(p.RAW)
	e.f64(p.Overflow)
	e.f64(p.Bus)
	e.i64(p.BusDelay)
	e.f64(p.Heap)
	e.f64(p.JIT)
}

func decFaultPlan(d *dec) faultinject.Plan {
	return faultinject.Plan{
		Seed: d.i64(), RAW: d.f64(), Overflow: d.f64(),
		Bus: d.f64(), BusDelay: d.i64(), Heap: d.f64(), JIT: d.f64(),
	}
}

func encGuardConfig(e *enc, g tls.GuardConfig) {
	e.i64(g.Window)
	e.f64(g.BadViolationRatio)
	e.f64(g.BadOverflowRatio)
	e.int(g.Decertify)
	e.i64(g.Backoff)
	e.i64(g.MaxBackoff)
}

func decGuardConfig(d *dec) tls.GuardConfig {
	return tls.GuardConfig{
		Window: d.i64(), BadViolationRatio: d.f64(), BadOverflowRatio: d.f64(),
		Decertify: d.int(), Backoff: d.i64(), MaxBackoff: d.i64(),
	}
}

func encAnalyzerConfig(e *enc, c analyzer.Config) {
	e.int(c.NCPU)
	encHandlers(e, c.Handlers)
	e.f64(c.MinItersPerEntry)
	e.f64(c.MaxOverflowFreq)
	e.f64(c.MinSpeedup)
	e.f64(c.SyncDepFreq)
	e.f64(c.SyncMaxSpanFrac)
	e.f64(c.MultilevelRatio)
	e.bool(c.ParallelAlloc)
	e.bool(c.ElideLocks)
	e.f64(c.HoistMaxIters)
	e.i64(c.HoistMinEntries)
	e.bool(c.NoInductors)
	e.bool(c.NoResetable)
	e.bool(c.NoReductions)
	e.bool(c.NoSyncLocks)
	e.bool(c.NoMultilevel)
	e.bool(c.NoHoisting)
	// ExcludeLoops is a set; only members matter, and canonical form emits
	// the true members sorted.
	ids := make([]int64, 0, len(c.ExcludeLoops))
	for id, on := range c.ExcludeLoops {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.i64s(ids)
}

func decAnalyzerConfig(d *dec) analyzer.Config {
	c := analyzer.Config{
		NCPU:             d.int(),
		Handlers:         decHandlers(d),
		MinItersPerEntry: d.f64(),
		MaxOverflowFreq:  d.f64(),
		MinSpeedup:       d.f64(),
		SyncDepFreq:      d.f64(),
		SyncMaxSpanFrac:  d.f64(),
		MultilevelRatio:  d.f64(),
		ParallelAlloc:    d.bool(),
		ElideLocks:       d.bool(),
		HoistMaxIters:    d.f64(),
		HoistMinEntries:  d.i64(),
		NoInductors:      d.bool(),
		NoResetable:      d.bool(),
		NoReductions:     d.bool(),
		NoSyncLocks:      d.bool(),
		NoMultilevel:     d.bool(),
		NoHoisting:       d.bool(),
	}
	if ids := d.i64s(); len(ids) > 0 {
		c.ExcludeLoops = make(map[int64]bool, len(ids))
		for i, id := range ids {
			if i > 0 && id <= ids[i-1] {
				d.fail(ErrCorrupt, "exclude-loop set not strictly ascending")
				return analyzer.Config{}
			}
			c.ExcludeLoops[id] = true
		}
	}
	return c
}
