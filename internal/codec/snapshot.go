// Snapshot and checkpoint wire encodings.
//
// A snapshot envelope (KindSnapshot) carries one hydra.MachineSnapshot; a
// checkpoint envelope (KindCheckpoint) carries a core.Checkpoint — the
// snapshot plus the VM registry and the pipeline stage/label — and ends
// with a SHA-256 content hash over the payload, so a torn or bit-rotted
// checkpoint file is detected before a restore is attempted (a journal
// replayed after kill -9 must never resume from a half-written file).
// Both follow the codec's canonical rules: minimal varints, ascending
// collections as produced by the capture paths, decode∘encode identity.
package codec

import (
	"crypto/sha256"
	"fmt"

	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
	"jrpm/internal/vm"
)

// Snapshot/checkpoint envelope kinds (3 and below are program/options/result).
const (
	KindSnapshot   Kind = 4
	KindCheckpoint Kind = 5
)

// checkpointHashSize is the trailing content-hash length of a checkpoint
// envelope.
const checkpointHashSize = sha256.Size

// EncodeSnapshot renders a machine snapshot canonically.
func EncodeSnapshot(s *hydra.MachineSnapshot) []byte {
	return envelope(KindSnapshot, func(e *enc) { encSnapshot(e, s) })
}

// DecodeSnapshot parses a snapshot envelope.
func DecodeSnapshot(b []byte) (*hydra.MachineSnapshot, error) {
	d, err := openEnvelope(b, KindSnapshot)
	if err != nil {
		return nil, err
	}
	s := decSnapshot(d)
	if err := d.finish("snapshot"); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeCheckpoint renders a pipeline checkpoint canonically, with a
// trailing SHA-256 content hash over the payload.
func EncodeCheckpoint(cp *core.Checkpoint) []byte {
	b := envelope(KindCheckpoint, func(e *enc) {
		e.str(cp.Name)
		e.str(cp.Stage)
		e.str(cp.Label)
		encSnapshot(e, cp.Machine)
		encVMState(e, cp.VM)
	})
	sum := sha256.Sum256(b[envelopeHeaderSize:])
	return append(b, sum[:]...)
}

// DecodeCheckpoint parses and hash-verifies a checkpoint envelope.
func DecodeCheckpoint(b []byte) (*core.Checkpoint, error) {
	if len(b) < envelopeHeaderSize+checkpointHashSize {
		return nil, fmt.Errorf("%w: checkpoint envelope", ErrTruncated)
	}
	payload, tail := b[:len(b)-checkpointHashSize], b[len(b)-checkpointHashSize:]
	sum := sha256.Sum256(payload[envelopeHeaderSize:])
	if sum != [checkpointHashSize]byte(tail) {
		return nil, fmt.Errorf("%w: checkpoint content hash mismatch", ErrCorrupt)
	}
	d, err := openEnvelope(payload, KindCheckpoint)
	if err != nil {
		return nil, err
	}
	cp := &core.Checkpoint{
		Name:  d.str(),
		Stage: d.str(),
		Label: d.str(),
	}
	cp.Machine = decSnapshot(d)
	cp.VM = decVMState(d)
	if err := d.finish("checkpoint"); err != nil {
		return nil, err
	}
	return cp, nil
}

// envelopeHeaderSize is magic + version + kind.
const envelopeHeaderSize = 6

func encSnapshot(e *enc, s *hydra.MachineSnapshot) {
	e.u64(s.ImageFP)
	e.int(s.NCPU)
	e.i64(s.Clock)
	e.int(s.Master)
	e.i64s(s.Output)
	e.i64(s.GCCycles)
	e.i64(s.Instructions)
	e.i64(s.GCRuns)
	e.u64(uint64(len(s.OverflowBySTL)))
	for _, o := range s.OverflowBySTL {
		e.i64(o.LoopID)
		e.i64(o.Count)
	}
	e.i64(s.StormCount)
	e.i64(s.LastHoisted)
	e.bool(s.HadCtx)
	e.i64(s.NextCtxCheck)
	e.u64(uint64(len(s.CPUs)))
	for i := range s.CPUs {
		encCPUSnapshot(e, &s.CPUs[i])
	}
	encMemState(e, &s.Mem)
	encCacheState(e, &s.Caches)
	encUnitState(e, &s.TLS)
	e.bool(s.HasGuard)
	e.u64(uint64(len(s.Guard)))
	for i := range s.Guard {
		encGuardLoopState(e, &s.Guard[i])
	}
	encTierStats(e, &s.Tier)
	e.bool(s.T2 != nil)
	if s.T2 != nil {
		encTierCache(e, s.T2)
	}
}

func decSnapshot(d *dec) *hydra.MachineSnapshot {
	s := &hydra.MachineSnapshot{
		ImageFP:      d.u64(),
		NCPU:         d.int(),
		Clock:        d.i64(),
		Master:       d.int(),
		Output:       d.i64s(),
		GCCycles:     d.i64(),
		Instructions: d.i64(),
		GCRuns:       d.i64(),
	}
	if n := d.count(2); n > 0 {
		s.OverflowBySTL = make([]hydra.STLCount, n)
		for i := range s.OverflowBySTL {
			s.OverflowBySTL[i] = hydra.STLCount{LoopID: d.i64(), Count: d.i64()}
		}
	}
	s.StormCount = d.i64()
	s.LastHoisted = d.i64()
	s.HadCtx = d.bool()
	s.NextCtxCheck = d.i64()
	if n := d.count(8); n > 0 {
		s.CPUs = make([]hydra.CPUSnapshot, n)
		for i := range s.CPUs {
			decCPUSnapshot(d, &s.CPUs[i])
		}
	}
	decMemState(d, &s.Mem)
	decCacheState(d, &s.Caches)
	decUnitState(d, &s.TLS)
	s.HasGuard = d.bool()
	if n := d.count(8); n > 0 {
		s.Guard = make([]tls.GuardLoopState, n)
		for i := range s.Guard {
			decGuardLoopState(d, &s.Guard[i])
		}
	}
	decTierStats(d, &s.Tier)
	if d.bool() {
		s.T2 = decTierCache(d)
	}
	return s
}

func encCPUSnapshot(e *enc, c *hydra.CPUSnapshot) {
	for _, r := range c.Regs {
		e.i64(r)
	}
	e.int(c.PC)
	e.int(c.MethodID)
	e.u64(uint64(len(c.Frames)))
	for _, f := range c.Frames {
		e.int(f.RetMethod)
		e.int(f.RetPC)
		e.i64(f.SavedFP)
		e.i64(f.SavedSP)
	}
	e.int(c.State)
	e.i64(c.ReadyAt)
	e.int(c.SnapDepth)
	e.i64(c.SnapSP)
	e.i64(c.SnapFP)
	e.i64(c.PendingExKind)
	e.i64(c.PendingExRef)
	e.i64(c.PendingIO)
	e.bool(c.OverflowPending)
	e.int(c.GCAttempts)
	e.i64(c.Extra)
}

func decCPUSnapshot(d *dec, c *hydra.CPUSnapshot) {
	for i := range c.Regs {
		c.Regs[i] = d.i64()
	}
	c.PC = d.int()
	c.MethodID = d.int()
	if n := d.count(4); n > 0 {
		c.Frames = make([]hydra.FrameSnapshot, n)
		for i := range c.Frames {
			c.Frames[i] = hydra.FrameSnapshot{
				RetMethod: d.int(), RetPC: d.int(), SavedFP: d.i64(), SavedSP: d.i64(),
			}
		}
	}
	c.State = d.int()
	c.ReadyAt = d.i64()
	c.SnapDepth = d.int()
	c.SnapSP = d.i64()
	c.SnapFP = d.i64()
	c.PendingExKind = d.i64()
	c.PendingExRef = d.i64()
	c.PendingIO = d.i64()
	c.OverflowPending = d.bool()
	c.GCAttempts = d.int()
	c.Extra = d.i64()
}

func encMemState(e *enc, st *mem.State) {
	e.int(st.Size)
	e.u64(uint64(st.Split))
	e.u64(uint64(st.LoMax))
	e.u64(uint64(st.HiMin))
	e.i64s(st.Low)
	e.i64s(st.High)
}

func decMemState(d *dec, st *mem.State) {
	st.Size = d.int()
	st.Split = mem.Addr(d.u64())
	st.LoMax = mem.Addr(d.u64())
	st.HiMin = mem.Addr(d.u64())
	st.Low = d.i64s()
	st.High = d.i64s()
}

func encSetState(e *enc, st *mem.SetState) {
	e.u64(uint64(len(st.Tags)))
	for _, t := range st.Tags {
		e.u64(uint64(t))
	}
	e.u64(uint64(len(st.LRU)))
	for _, v := range st.LRU {
		e.u64(uint64(v))
	}
	e.u64(uint64(st.Clock))
}

func decSetState(d *dec, st *mem.SetState) {
	if n := d.count(1); n > 0 {
		st.Tags = make([]mem.Addr, n)
		for i := range st.Tags {
			st.Tags[i] = mem.Addr(d.u64())
		}
	}
	if n := d.count(1); n > 0 {
		st.LRU = make([]uint32, n)
		for i := range st.LRU {
			st.LRU[i] = uint32(d.u64())
		}
	}
	st.Clock = uint32(d.u64())
}

func encCacheState(e *enc, st *mem.CacheState) {
	e.u64(uint64(len(st.L1)))
	for i := range st.L1 {
		encSetState(e, &st.L1[i])
	}
	encSetState(e, &st.L2)
	e.i64(st.L1Hits)
	e.i64(st.L1Misses)
	e.i64(st.L2Hits)
	e.i64(st.L2Misses)
}

func decCacheState(d *dec, st *mem.CacheState) {
	if n := d.count(3); n > 0 {
		st.L1 = make([]mem.SetState, n)
		for i := range st.L1 {
			decSetState(d, &st.L1[i])
		}
	}
	decSetState(d, &st.L2)
	st.L1Hits = d.i64()
	st.L1Misses = d.i64()
	st.L2Hits = d.i64()
	st.L2Misses = d.i64()
}

func encUnitState(e *enc, st *tls.UnitState) {
	e.i64(st.Stats.Serial)
	e.i64(st.Stats.RunUsed)
	e.i64(st.Stats.WaitUsed)
	e.i64(st.Stats.Overhead)
	e.i64(st.Stats.RunViolated)
	e.i64(st.Stats.WaitViolated)
	e.i64(st.Commits)
	e.i64(st.Violations)
	e.i64(st.Overflows)
	e.int(st.MaxStoreLines)
	e.int(st.MaxLoadLines)
	e.i64(st.SumStoreLines)
	e.i64(st.SumLoadLines)
	e.i64(st.CommittedLoads)
	e.i64(st.CommittedStores)
}

func decUnitState(d *dec, st *tls.UnitState) {
	st.Stats.Serial = d.i64()
	st.Stats.RunUsed = d.i64()
	st.Stats.WaitUsed = d.i64()
	st.Stats.Overhead = d.i64()
	st.Stats.RunViolated = d.i64()
	st.Stats.WaitViolated = d.i64()
	st.Commits = d.i64()
	st.Violations = d.i64()
	st.Overflows = d.i64()
	st.MaxStoreLines = d.int()
	st.MaxLoadLines = d.int()
	st.SumStoreLines = d.i64()
	st.SumLoadLines = d.i64()
	st.CommittedLoads = d.i64()
	st.CommittedStores = d.i64()
}

func encGuardLoopState(e *enc, g *tls.GuardLoopState) {
	e.i64(g.LoopID)
	e.i64(g.Stats.Commits)
	e.i64(g.Stats.Violations)
	e.i64(g.Stats.Overflows)
	e.bool(g.Stats.Decertified)
	e.i64(g.Stats.Decerts)
	e.i64(g.Stats.Probes)
	e.i64(g.Stats.Recerts)
	e.i64(g.WCommits)
	e.i64(g.WViolations)
	e.i64(g.WOverflows)
	e.int(g.BadStreak)
	e.i64(g.Backoff)
	e.i64(g.Wait)
	e.bool(g.Probing)
}

func decGuardLoopState(d *dec, g *tls.GuardLoopState) {
	g.LoopID = d.i64()
	g.Stats.Commits = d.i64()
	g.Stats.Violations = d.i64()
	g.Stats.Overflows = d.i64()
	g.Stats.Decertified = d.bool()
	g.Stats.Decerts = d.i64()
	g.Stats.Probes = d.i64()
	g.Stats.Recerts = d.i64()
	g.WCommits = d.i64()
	g.WViolations = d.i64()
	g.WOverflows = d.i64()
	g.BadStreak = d.int()
	g.Backoff = d.i64()
	g.Wait = d.i64()
	g.Probing = d.bool()
}

func encTierStats(e *enc, t *hydra.TierStats) {
	e.i64(t.Promotions)
	e.i64(t.BlocksCompiled)
	e.i64(t.CacheHits)
	e.i64(t.CacheMisses)
	e.i64(t.Linked)
	e.i64(t.InterpSteps)
	e.u64(uint64(len(t.Demote)))
	for _, v := range t.Demote {
		e.i64(v)
	}
}

func decTierStats(d *dec, t *hydra.TierStats) {
	t.Promotions = d.i64()
	t.BlocksCompiled = d.i64()
	t.CacheHits = d.i64()
	t.CacheMisses = d.i64()
	t.Linked = d.i64()
	t.InterpSteps = d.i64()
	n := d.count(1)
	if d.err == nil && n != len(t.Demote) {
		d.fail(ErrCorrupt, "demote-reason count %d, want %d", n, len(t.Demote))
		return
	}
	for i := 0; i < n && i < len(t.Demote); i++ {
		t.Demote[i] = d.i64()
	}
}

func encTierCache(e *enc, t *hydra.TierCacheSnapshot) {
	e.bool(t.Resume)
	e.i64(int64(t.LastEntry))
	e.u64(uint64(len(t.Methods)))
	for i := range t.Methods {
		m := &t.Methods[i]
		e.int(m.Method)
		e.u64(uint64(len(m.Blocks)))
		for _, b := range m.Blocks {
			e.i64(int64(b.Entry))
			e.i64(int64(b.Succ0))
			e.i64(int64(b.Succ1))
		}
	}
}

func decTierCache(d *dec) *hydra.TierCacheSnapshot {
	t := &hydra.TierCacheSnapshot{
		Resume:    d.bool(),
		LastEntry: int32(d.i64()),
	}
	if n := d.count(2); n > 0 {
		t.Methods = make([]hydra.TierMethodSnapshot, n)
		for i := range t.Methods {
			m := &t.Methods[i]
			m.Method = d.int()
			if bn := d.count(3); bn > 0 {
				m.Blocks = make([]hydra.TierBlockSnapshot, bn)
				for j := range m.Blocks {
					m.Blocks[j] = hydra.TierBlockSnapshot{
						Entry: int32(d.i64()), Succ0: int32(d.i64()), Succ1: int32(d.i64()),
					}
				}
			}
		}
	}
	return t
}

func encVMState(e *enc, st *vm.State) {
	e.u64(uint64(len(st.Blocks)))
	for _, b := range st.Blocks {
		e.u64(uint64(b.Addr))
		e.i64(b.Words)
	}
	e.i64(st.Allocs)
	e.i64(st.AllocWords)
	e.i64(st.GCs)
	e.i64(st.LastLive)
	e.i64(st.LastFreed)
}

func decVMState(d *dec) *vm.State {
	st := &vm.State{}
	if n := d.count(2); n > 0 {
		st.Blocks = make([]vm.BlockSpan, n)
		for i := range st.Blocks {
			st.Blocks[i] = vm.BlockSpan{Addr: mem.Addr(d.u64()), Words: d.i64()}
		}
	}
	st.Allocs = d.i64()
	st.AllocWords = d.i64()
	st.GCs = d.i64()
	st.LastLive = d.i64()
	st.LastFreed = d.i64()
	return st
}

// CPUSnapshot encodes exactly isa.NumRegs registers with no count on the
// wire; tie the two at compile time.
var _ [isa.NumRegs]int64 = hydra.CPUSnapshot{}.Regs
