// Package codec is the fleet layer's versioned, deterministic binary wire
// format for the three values that cross process boundaries: programs
// (bytecode.Program), run configurations (core.Options) and run outcomes
// (core.Result with its metrics payload).
//
// Every Jrpm simulation is deterministic and bit-identical, which makes
// (program, options) a perfect memoization key — but only if the encoding
// itself is canonical. The format therefore guarantees that the same value
// always encodes to the same bytes:
//
//   - integers are minimal-length varints (non-minimal encodings are
//     rejected on decode, so decode∘encode is the identity on accepted
//     inputs);
//   - floats are fixed 8-byte little-endian IEEE-754 bit patterns;
//   - maps are emitted in ascending key order;
//   - nil and empty slices/maps encode identically (count 0);
//   - the payload is a sequence of length-prefixed sections behind a
//     4-byte magic, an explicit version byte and a kind byte.
//
// Decoding never panics: corrupted, truncated or oversized inputs return
// errors wrapping the typed sentinels below (ErrCodecVersion for version
// skew, ErrTruncated for short input, ErrCorrupt for everything else).
//
// The content-addressed ProgramHash (SHA-256 over the canonical program
// encoding) and the options digest combine into the fleet cache key; see
// CacheKey.
package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Version is the current wire-format version. Bump it on any change to the
// encoded shape of programs, options or results; decoders reject every
// other version with ErrCodecVersion.
const Version = 1

// magic brands every codec envelope.
var magic = [4]byte{'J', 'R', 'P', 'C'}

// Kind tags the envelope payload type.
type Kind byte

// Envelope kinds.
const (
	KindProgram Kind = 1
	KindOptions Kind = 2
	KindResult  Kind = 3
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindProgram:
		return "program"
	case KindOptions:
		return "options"
	case KindResult:
		return "result"
	case KindSnapshot:
		return "snapshot"
	case KindCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Typed decode errors. Every decoder failure wraps exactly one of these,
// so callers classify with errors.Is.
var (
	// ErrCodecVersion rejects an envelope whose version byte is not
	// Version — the peer speaks a different wire format.
	ErrCodecVersion = errors.New("codec: unsupported wire version")
	// ErrTruncated reports input that ends before the value does.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrCorrupt reports structurally invalid input: bad magic, wrong
	// kind, non-minimal varints, impossible counts, trailing bytes.
	ErrCorrupt = errors.New("codec: corrupt input")
)

// enc is the canonical encoder: an append-only byte builder.
type enc struct {
	b []byte
}

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) int(v int)     { e.i64(int64(v)) }
func (e *enc) byte(v byte)   { e.b = append(e.b, v) }
func (e *enc) raw(p []byte)  { e.b = append(e.b, p...) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) i64s(vs []int64) {
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.i64(v)
	}
}

// section appends a length-prefixed sub-payload.
func (e *enc) section(payload []byte) {
	e.u64(uint64(len(payload)))
	e.raw(payload)
}

// envelope wraps a payload-building function in magic/version/kind.
func envelope(kind Kind, build func(*enc)) []byte {
	e := &enc{b: make([]byte, 0, 256)}
	e.raw(magic[:])
	e.byte(Version)
	e.byte(byte(kind))
	build(e)
	return e.b
}

// dec is the strict canonical decoder. The first error sticks; every
// accessor after a failure returns the zero value, so decode functions can
// read linearly and check err once per structural boundary.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error, format string, a ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (at offset %d)", err, fmt.Sprintf(format, a...), d.off)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

// u64 reads a minimal-length uvarint. Non-minimal encodings (e.g. 0x80 0x00
// for zero) are rejected so that every accepted input re-encodes to itself.
func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated, "uvarint")
		} else {
			d.fail(ErrCorrupt, "uvarint overflow")
		}
		return 0
	}
	if n != uvarintLen(v) {
		d.fail(ErrCorrupt, "non-minimal uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	u := d.u64()
	return int64(u>>1) ^ -int64(u&1) // zigzag, matching binary.AppendVarint
}

func (d *dec) int() int { return int(d.i64()) }

func (d *dec) byteVal() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail(ErrTruncated, "byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bool() bool {
	v := d.byteVal()
	if v > 1 {
		d.fail(ErrCorrupt, "bool byte %d", v)
		return false
	}
	return v == 1
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail(ErrTruncated, "float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail(ErrTruncated, "string of %d bytes", n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and bounds it by the bytes remaining
// (every element costs at least minBytes on the wire), so corrupted counts
// can never drive huge allocations.
func (d *dec) count(minBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.remaining()/minBytes) {
		d.fail(ErrCorrupt, "count %d exceeds remaining input", n)
		return 0
	}
	return int(n)
}

func (d *dec) i64s() []int64 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.i64()
	}
	return vs
}

// section reads a length-prefixed sub-payload and returns a decoder over
// it; the parent decoder skips past it.
func (d *dec) section() *dec {
	n := d.u64()
	if d.err != nil {
		return &dec{err: d.err}
	}
	if n > uint64(d.remaining()) {
		d.fail(ErrTruncated, "section of %d bytes", n)
		return &dec{err: d.err}
	}
	s := &dec{b: d.b[d.off : d.off+int(n)]}
	d.off += int(n)
	return s
}

// finish rejects trailing garbage: a canonical value consumes its input
// exactly.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		d.fail(ErrCorrupt, "%d trailing bytes after %s", d.remaining(), what)
	}
	return d.err
}

// openEnvelope validates magic, version and kind, returning a decoder
// positioned at the payload.
func openEnvelope(b []byte, want Kind) (*dec, error) {
	if len(b) < len(magic)+2 {
		return nil, fmt.Errorf("%w: envelope header", ErrTruncated)
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if b[4] != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, b[4], Version)
	}
	if Kind(b[5]) != want {
		return nil, fmt.Errorf("%w: kind %s, want %s", ErrCorrupt, Kind(b[5]), want)
	}
	return &dec{b: b, off: len(magic) + 2}, nil
}

// uvarintLen is the minimal encoded length of v.
func uvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}

// Hash is a content address: SHA-256 over a canonical encoding.
type Hash [sha256.Size]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short renders the leading 12 hex digits — enough to be unique in any
// realistic fleet, short enough for logs and metrics labels.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

// CacheKey combines a program hash with the canonical options encoding into
// the fleet cache/coalescing key. Two submissions collide exactly when the
// simulation they request is bit-identical.
func CacheKey(program Hash, optionsWire []byte) string {
	o := sha256.Sum256(optionsWire)
	return program.String() + ":" + hex.EncodeToString(o[:])
}
