package codec

import (
	"bytes"
	"testing"

	"jrpm/internal/core"
	"jrpm/internal/progen"
)

// FuzzCodec drives the two properties the wire format promises:
//
//  1. Round-trip: for progen-derived programs (and the options/results the
//     seed selects), decode(encode(x)) re-encodes byte-identically, and a
//     version-skewed copy is rejected with ErrCodecVersion.
//  2. Robustness: arbitrary bytes fed to every decoder either fail with a
//     typed sentinel (never a panic) or decode to a value whose canonical
//     re-encoding is the input itself — the codec accepts nothing it would
//     not have produced.
func FuzzCodec(f *testing.F) {
	junk := [][]byte{
		nil,
		[]byte("JRPC"),
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		append([]byte("JRPC\x01\x01"), 0x80), // dangling varint
	}
	for _, j := range junk {
		f.Add(int64(1), j)
	}
	f.Add(int64(2), EncodeOptions(fullOptions()))
	f.Add(int64(3), EncodeResult(syntheticResult()))
	f.Add(int64(4), EncodeSnapshot(syntheticSnapshot()))
	f.Add(int64(5), EncodeCheckpoint(&core.Checkpoint{
		Name: "fuzz", Stage: core.StageSeq, Machine: syntheticSnapshot(), VM: &vmStateForTest,
	}))
	for seed := int64(1); seed <= 4; seed++ {
		_, bp, err := progen.Lower(progen.Generate(seed, progen.QuickConfig()))
		if err == nil {
			f.Add(seed, EncodeProgram(bp))
		}
	}

	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		// Property 1: seed-derived round-trips.
		if _, bp, err := progen.Lower(progen.Generate(seed, progen.QuickConfig())); err == nil {
			wire := EncodeProgram(bp)
			got, derr := DecodeProgram(wire)
			if derr != nil {
				t.Fatalf("seed %d: decode of fresh encoding failed: %v", seed, derr)
			}
			if !bytes.Equal(wire, EncodeProgram(got)) {
				t.Fatalf("seed %d: program decode∘encode is not the identity", seed)
			}
			skew := append([]byte(nil), wire...)
			skew[4] ^= 0x7f
			if _, serr := DecodeProgram(skew); !typedCodecError(serr) {
				t.Fatalf("seed %d: version skew: got %v", seed, serr)
			}
		}
		opts := optionsFromSeed(seed)
		owire := EncodeOptions(opts)
		if got, derr := DecodeOptions(owire); derr != nil {
			t.Fatalf("seed %d: options decode failed: %v", seed, derr)
		} else if !bytes.Equal(owire, EncodeOptions(got)) {
			t.Fatalf("seed %d: options decode∘encode is not the identity", seed)
		}

		// Property 2: arbitrary bytes never panic, and anything accepted is
		// canonical.
		if got, err := DecodeProgram(data); err == nil {
			if !bytes.Equal(EncodeProgram(got), data) {
				t.Fatalf("program decoder accepted a non-canonical encoding")
			}
		} else if !typedCodecError(err) {
			t.Fatalf("program decoder returned untyped error %v", err)
		}
		if got, err := DecodeOptions(data); err == nil {
			if !bytes.Equal(EncodeOptions(got), data) {
				t.Fatalf("options decoder accepted a non-canonical encoding")
			}
		} else if !typedCodecError(err) {
			t.Fatalf("options decoder returned untyped error %v", err)
		}
		if got, err := DecodeResult(data); err == nil {
			if !bytes.Equal(EncodeResult(got), data) {
				t.Fatalf("result decoder accepted a non-canonical encoding")
			}
		} else if !typedCodecError(err) {
			t.Fatalf("result decoder returned untyped error %v", err)
		}
		if got, err := DecodeSnapshot(data); err == nil {
			if !bytes.Equal(EncodeSnapshot(got), data) {
				t.Fatalf("snapshot decoder accepted a non-canonical encoding")
			}
		} else if !typedCodecError(err) {
			t.Fatalf("snapshot decoder returned untyped error %v", err)
		}
		if got, err := DecodeCheckpoint(data); err == nil {
			if !bytes.Equal(EncodeCheckpoint(got), data) {
				t.Fatalf("checkpoint decoder accepted a non-canonical encoding")
			}
		} else if !typedCodecError(err) {
			t.Fatalf("checkpoint decoder returned untyped error %v", err)
		}
	})
}

// optionsFromSeed varies the optional sub-configurations with the seed bits
// so the fuzzer walks the presence-flag lattice.
func optionsFromSeed(seed int64) core.Options {
	o := fullOptions()
	if seed&1 == 0 {
		o.Analyzer = nil
	}
	if seed&2 == 0 {
		o.TLS = nil
	}
	if seed&4 == 0 {
		o.Cache = nil
	}
	if seed&8 == 0 {
		o.Tracer = nil
	}
	if seed&16 == 0 {
		o.Faults = nil
	}
	if seed&32 == 0 {
		o.Guard = nil
	}
	o.MaxCycles = seed
	return o
}
