package codec

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"jrpm/internal/progen"
	"jrpm/internal/tls"

	"jrpm/internal/core"
)

// The cross-process determinism test guards the codec's central promise:
// the canonical encoding has no map-iteration-order, pointer-identity or
// per-process dependence. It re-executes this test binary as a subprocess
// helper (twice), has each child generate the same program, run the same
// pipeline and print digests of the three encodings, and requires all
// processes — both children and this one — to agree byte for byte. A
// nondeterministic encoder would still pass in-process round-trips; it
// cannot pass this.

const crossProcEnv = "JRPM_CODEC_CROSSPROC_SEED"

// crossDigests computes the three wire digests for a seed the way the
// fleet would: program hash, options digest, digest of the encoded result
// of a full diagnosed pipeline run.
func crossDigests(seed int64) (string, error) {
	_, bp, err := progen.Lower(progen.Generate(seed, progen.QuickConfig()))
	if err != nil {
		return "", err
	}
	opts := core.DefaultOptions()
	gc := tls.DefaultGuardConfig()
	opts.Guard = &gc
	opts.Diagnose = true
	res, err := core.Run(bp, opts)
	if err != nil {
		return "", err
	}
	owire := EncodeOptions(opts)
	rwire := EncodeResult(res)
	od := sha256.Sum256(owire)
	rd := sha256.Sum256(rwire)
	return fmt.Sprintf("program=%s options=%x result=%x", ProgramHash(bp), od, rd), nil
}

// TestCrossProcessHelper is the subprocess body: inert unless the env var
// selects a seed.
func TestCrossProcessHelper(t *testing.T) {
	seedSpec := os.Getenv(crossProcEnv)
	if seedSpec == "" {
		t.Skip("subprocess helper; driven by TestCrossProcessDeterminism")
	}
	var seed int64
	if _, err := fmt.Sscan(seedSpec, &seed); err != nil {
		t.Fatalf("bad %s=%q: %v", crossProcEnv, seedSpec, err)
	}
	line, err := crossDigests(seed)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("CROSSPROC %s\n", line)
}

func TestCrossProcessDeterminism(t *testing.T) {
	if os.Getenv(crossProcEnv) != "" {
		t.Skip("already inside the helper")
	}
	const seed = int64(7)
	want, err := crossDigests(seed)
	if err != nil {
		t.Fatal(err)
	}
	for child := 0; child < 2; child++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrossProcessHelper$", "-test.v")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", crossProcEnv, seed))
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child %d: %v\n%s", child, err, out)
		}
		var got string
		for _, line := range strings.Split(string(out), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "CROSSPROC "); ok {
				got = rest
				break
			}
		}
		if got == "" {
			t.Fatalf("child %d printed no CROSSPROC line:\n%s", child, out)
		}
		if got != want {
			t.Fatalf("child %d disagrees with parent:\nchild:  %s\nparent: %s", child, got, want)
		}
	}
}
