// Package faultinject provides a deterministic, seedable fault plan for
// adversarial testing of the speculation machinery. A Plan names the fault
// channels and their rates; an Injector threads through the simulator
// (hydra.Machine, tls.Unit, the microJIT) and answers, at each potential
// fault point, whether the fault fires.
//
// Decisions are derived from a counter-mode hash of (seed, channel, event
// index), so a plan is reproducible: the same program on the same
// configuration sees exactly the same fault sequence, independent of host
// state. A zero-rate plan never fires and never perturbs timing, so runs
// with a zero plan are cycle-identical to runs with no injector at all.
//
// The channels model the failure classes the speculation safety net must
// absorb (ISSUE: speculation must be safe to be wrong about):
//
//   - raw: spurious RAW violations delivered to speculative non-head
//     threads, as if the write bus had matched an exposed read.
//   - overflow: spurious store-buffer/exposed-read capacity pressure — the
//     buffer-full signal asserts early, forcing overflow stalls and drains.
//   - bus: delayed write-bus arbitration — speculative stores pay extra
//     arbitration cycles.
//   - heap: spurious allocation failure, forcing the GC-at-head path.
//   - jit: lowering failure in the microJIT, forcing the controller to fall
//     back to sequential code.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Channel identifies one fault class.
type Channel int

// Fault channels.
const (
	ChRAW Channel = iota
	ChOverflow
	ChBus
	ChHeap
	ChJIT
	numChannels
)

// String names the channel as it appears in a plan spec.
func (c Channel) String() string {
	switch c {
	case ChRAW:
		return "raw"
	case ChOverflow:
		return "overflow"
	case ChBus:
		return "bus"
	case ChHeap:
		return "heap"
	case ChJIT:
		return "jit"
	}
	return "?"
}

// Plan is a complete fault-injection configuration. Rates are per-event
// probabilities in [0,1]; an event is one query at the corresponding fault
// point (one speculative instruction, one capacity check, one store, one
// allocation, one method lowering).
type Plan struct {
	Seed int64

	RAW      float64 // spurious violation per speculative non-head instruction
	Overflow float64 // spurious capacity pressure per overflow query
	Bus      float64 // delayed arbitration per speculative store
	BusDelay int64   // extra cycles charged when the bus channel fires
	Heap     float64 // spurious exhaustion per allocation
	JIT      float64 // lowering failure per method compiled
}

// Zero reports whether the plan can never fire a fault.
func (p Plan) Zero() bool {
	return p.RAW <= 0 && p.Overflow <= 0 && p.Bus <= 0 && p.Heap <= 0 && p.JIT <= 0
}

// rate returns the firing probability of a channel.
func (p Plan) rate(c Channel) float64 {
	switch c {
	case ChRAW:
		return p.RAW
	case ChOverflow:
		return p.Overflow
	case ChBus:
		return p.Bus
	case ChHeap:
		return p.Heap
	case ChJIT:
		return p.JIT
	}
	return 0
}

// String renders the plan in the spec form Parse accepts.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("raw", p.RAW)
	add("overflow", p.Overflow)
	add("bus", p.Bus)
	if p.Bus > 0 && p.BusDelay > 0 {
		parts = append(parts, fmt.Sprintf("busdelay=%d", p.BusDelay))
	}
	add("heap", p.Heap)
	add("jit", p.JIT)
	return strings.Join(parts, ",")
}

// Parse reads a plan spec of comma-separated key=value pairs, e.g.
//
//	seed=42,raw=0.01,overflow=0.005,bus=0.02,busdelay=12,heap=0.001,jit=0
//
// Unknown keys and malformed values are errors. An empty spec is the zero
// plan.
func Parse(spec string) (Plan, error) {
	p := Plan{BusDelay: 8}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed", "busdelay":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return p, fmt.Errorf("faultinject: bad %s %q: %v", k, v, err)
			}
			if k == "seed" {
				p.Seed = n
			} else {
				p.BusDelay = n
			}
		case "raw", "overflow", "bus", "heap", "jit":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("faultinject: bad rate %s=%q (want 0..1)", k, v)
			}
			switch k {
			case "raw":
				p.RAW = f
			case "overflow":
				p.Overflow = f
			case "bus":
				p.Bus = f
			case "heap":
				p.Heap = f
			case "jit":
				p.JIT = f
			}
		default:
			return p, fmt.Errorf("faultinject: unknown key %q", k)
		}
	}
	return p, nil
}

// Injector makes fault decisions for one run. A nil *Injector is valid and
// never fires, so call sites need no nil checks. The zero value of each
// channel counter makes decision sequences reproducible per channel
// regardless of interleaving with other channels.
type Injector struct {
	plan  Plan
	count [numChannels]uint64
	fired [numChannels]int64
}

// New builds an injector for plan. Returns nil for a zero plan so that the
// zero-fault fast path is a nil-receiver no-op.
func New(plan Plan) *Injector {
	if plan.Zero() {
		return nil
	}
	return &Injector{plan: plan}
}

// Plan returns the injector's plan (zero Plan for a nil injector).
func (j *Injector) Plan() Plan {
	if j == nil {
		return Plan{}
	}
	return j.plan
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed counter hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide draws the next decision on channel c.
func (j *Injector) decide(c Channel) bool {
	if j == nil {
		return false
	}
	rate := j.plan.rate(c)
	if rate <= 0 {
		return false
	}
	j.count[c]++
	x := splitmix64(uint64(j.plan.Seed)<<8 ^ uint64(c)<<56 ^ j.count[c])
	if float64(x>>11)/(1<<53) < rate {
		j.fired[c]++
		return true
	}
	return false
}

// SpuriousRAW reports whether a spurious RAW violation fires at this
// speculative instruction.
func (j *Injector) SpuriousRAW() bool { return j.decide(ChRAW) }

// OverflowPressure reports whether spurious buffer-capacity pressure fires
// at this overflow query.
func (j *Injector) OverflowPressure() bool { return j.decide(ChOverflow) }

// BusDelayCycles returns extra write-bus arbitration cycles for this
// speculative store (0 when the channel does not fire).
func (j *Injector) BusDelayCycles() int64 {
	if j.decide(ChBus) {
		d := j.plan.BusDelay
		if d <= 0 {
			d = 8
		}
		return d
	}
	return 0
}

// HeapExhausted reports whether this allocation spuriously fails, forcing
// the garbage-collection-at-head path.
func (j *Injector) HeapExhausted() bool { return j.decide(ChHeap) }

// JITFailure reports whether this method lowering spuriously fails.
func (j *Injector) JITFailure() bool { return j.decide(ChJIT) }

// Fired returns per-channel counts of faults that actually fired.
func (j *Injector) Fired() map[string]int64 {
	out := map[string]int64{}
	if j == nil {
		return out
	}
	for c := Channel(0); c < numChannels; c++ {
		if j.fired[c] > 0 {
			out[c.String()] = j.fired[c]
		}
	}
	return out
}

// FiredTotal returns the total number of faults fired on all channels.
func (j *Injector) FiredTotal() int64 {
	if j == nil {
		return 0
	}
	var n int64
	for c := Channel(0); c < numChannels; c++ {
		n += j.fired[c]
	}
	return n
}

// Summary renders fired counts as a stable one-line string for logs.
func (j *Injector) Summary() string {
	m := j.Fired()
	if len(m) == 0 {
		return "no faults fired"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
