package faultinject

import "testing"

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=42,raw=0.01,overflow=0.005,bus=0.02,busdelay=12,heap=0.001,jit=0.5"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 42 || p.RAW != 0.01 || p.Overflow != 0.005 || p.Bus != 0.02 ||
		p.BusDelay != 12 || p.Heap != 0.001 || p.JIT != 0.5 {
		t.Fatalf("parsed plan = %+v", p)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", p.String(), err)
	}
	if p2 != p {
		t.Fatalf("round trip changed plan: %+v -> %+v", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"raw",          // no value
		"raw=2",        // rate out of range
		"raw=-0.1",     // negative rate
		"seed=x",       // malformed int
		"warp=0.5",     // unknown key
		"raw=0.1,,y=1", // malformed tail
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestParseEmptyIsZeroPlan(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Zero() {
		t.Fatalf("empty spec plan = %+v, want zero", p)
	}
	if New(p) != nil {
		t.Fatal("zero plan must build a nil injector (nil-receiver no-op)")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var j *Injector
	for i := 0; i < 1000; i++ {
		if j.SpuriousRAW() || j.OverflowPressure() || j.HeapExhausted() || j.JITFailure() {
			t.Fatal("nil injector fired")
		}
		if j.BusDelayCycles() != 0 {
			t.Fatal("nil injector delayed the bus")
		}
	}
	if j.FiredTotal() != 0 || len(j.Fired()) != 0 {
		t.Fatal("nil injector counted faults")
	}
	if j.Summary() != "no faults fired" {
		t.Fatalf("summary = %q", j.Summary())
	}
}

// Determinism: two injectors with the same plan produce identical decision
// sequences, channel by channel, regardless of how the channels interleave.
func TestDecisionsAreDeterministicAndChannelIndependent(t *testing.T) {
	plan := Plan{Seed: 7, RAW: 0.3, Overflow: 0.2, Heap: 0.1, Bus: 0.25, BusDelay: 5, JIT: 0.15}
	a := New(plan)
	b := New(plan)
	var seqA, seqB []bool
	// a: all RAW draws first, then all heap draws.
	for i := 0; i < 500; i++ {
		seqA = append(seqA, a.SpuriousRAW())
	}
	for i := 0; i < 500; i++ {
		seqA = append(seqA, a.HeapExhausted())
	}
	// b: interleaved with other channels consuming their own counters.
	for i := 0; i < 500; i++ {
		seqB = append(seqB, b.SpuriousRAW())
		b.OverflowPressure()
		b.BusDelayCycles()
		b.JITFailure()
	}
	for i := 0; i < 500; i++ {
		seqB = append(seqB, b.HeapExhausted())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d diverged across interleavings", i)
		}
	}
	if a.fired[ChRAW] != b.fired[ChRAW] {
		t.Fatal("fired counts diverged")
	}
}

func TestRatesAreRoughlyHonored(t *testing.T) {
	j := New(Plan{Seed: 3, RAW: 0.5})
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if j.SpuriousRAW() {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.45 || got > 0.55 {
		t.Fatalf("rate 0.5 fired %.3f of draws", got)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(Plan{Seed: 1, RAW: 0.5}), New(Plan{Seed: 2, RAW: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		if a.SpuriousRAW() != b.SpuriousRAW() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-decision prefixes")
	}
}

func TestBusDelayDefaultsWhenUnset(t *testing.T) {
	j := New(Plan{Seed: 1, Bus: 1}) // always fires
	if d := j.BusDelayCycles(); d != 8 {
		t.Fatalf("unset BusDelay = %d cycles, want default 8", d)
	}
	j2 := New(Plan{Seed: 1, Bus: 1, BusDelay: 3})
	if d := j2.BusDelayCycles(); d != 3 {
		t.Fatalf("BusDelay = %d, want 3", d)
	}
}

func TestSummaryIsStable(t *testing.T) {
	j := New(Plan{Seed: 9, RAW: 1, Heap: 1})
	j.SpuriousRAW()
	j.HeapExhausted()
	if got := j.Summary(); got != "heap=1 raw=1" {
		t.Fatalf("summary = %q", got)
	}
}
