// Package obs is the simulator's observability layer: a speculation flight
// recorder (fixed-capacity, generation-stamped event ring in the same
// hardware-shaped style as tls/buffers.go), a typed metrics registry with
// Prometheus text export, and a Chrome trace-event exporter that renders the
// paper's Figure 6/7 run/wait/violated breakdown as a per-CPU timeline.
//
// The recorder is wired into the simulator behind a nil-check interface:
// with a nil Recorder the instrumented sites reduce to a single predicted
// branch — no allocation, no timing change — so the golden cycle suite stays
// bit-identical whether or not the package is linked in.
package obs

// EventKind identifies one cycle-stamped simulator event. Kinds are dense
// small integers so a KindMask bit per kind fits in a uint64.
type EventKind uint8

// Event kinds. Arg/Aux payloads are documented per kind; CPU is always the
// CPU the event happened on (the victim for violations and kills).
const (
	// EvSTLStart: an STL region was entered. Arg=loop ID, Aux=mode
	// (0 parallel, 1 solo/decertified, 2 guard probe).
	EvSTLStart EventKind = iota
	// EvSTLShutdown: the STL region exited. Arg=loop ID.
	EvSTLShutdown
	// EvSTLSwitch: control switched between nested STLs without a full
	// shutdown. Arg=new loop ID, Aux=0 switch-in, 1 switch-out.
	EvSTLSwitch
	// EvThreadSpawn: a speculative thread began an iteration.
	// Arg=iteration index, Aux=loop ID.
	EvThreadSpawn
	// EvThreadWait: the CPU parked waiting for head status or a resource.
	// Arg=wait reason (Wait* constants), Aux=loop ID.
	EvThreadWait
	// EvCommit: the head thread committed its iteration. Arg=iteration
	// index, Aux=loop ID.
	EvCommit
	// EvViolation: a RAW violation killed this CPU's work. Arg=violating
	// word address (-1 injected spurious, -2 GC quiesce), Aux=writer CPU.
	EvViolation
	// EvRestart: a violated thread restarted its iteration. Arg=iteration
	// index, Aux=loop ID.
	EvRestart
	// EvKill: speculative work was discarded at region exit or guard
	// demotion. Arg=loop ID.
	EvKill
	// EvStoreOverflow: the speculative store buffer exceeded its paper
	// capacity. Arg=iteration index, Aux=loop ID.
	EvStoreOverflow
	// EvLoadOverflow: the load-address set exceeded its paper capacity.
	// Arg=iteration index, Aux=loop ID.
	EvLoadOverflow
	// EvOverflowDrain: an overflowed thread became head and drained its
	// buffered state. Arg=iteration index, Aux=loop ID.
	EvOverflowDrain
	// EvHandlerStartup: the STL_STARTUP control handler ran. Arg=charged
	// cycles, Aux=loop ID.
	EvHandlerStartup
	// EvHandlerShutdown: the STL_SHUTDOWN handler ran. Arg=charged cycles,
	// Aux=loop ID.
	EvHandlerShutdown
	// EvHandlerEOI: the end-of-iteration handler ran. Arg=charged cycles,
	// Aux=loop ID.
	EvHandlerEOI
	// EvHandlerRestart: the violation-restart handler ran. Arg=charged
	// cycles, Aux=loop ID.
	EvHandlerRestart
	// EvGuardDemote: the storm guard decertified a loop mid-region.
	// Arg=loop ID.
	EvGuardDemote
	// EvGuardProbe: a decertified loop re-entered as a parallel probe.
	// Arg=loop ID.
	EvGuardProbe
	// EvGuardSolo: a decertified loop entered in sequential-fallback mode.
	// Arg=loop ID.
	EvGuardSolo
	// EvGC: a stop-the-world garbage collection completed. Arg=GC run
	// index.
	EvGC
	// EvL1Miss: a load missed L1 and hit L2. Arg=word address.
	EvL1Miss
	// EvL2Miss: a load missed both caches and went to memory. Arg=word
	// address.
	EvL2Miss
	// EvBusTransfer: a load was forwarded over the interprocessor bus from
	// an earlier thread's store buffer. Arg=word address.
	EvBusTransfer

	numEventKinds
)

// kindNames is indexed by EventKind.
var kindNames = [numEventKinds]string{
	EvSTLStart:        "stl_start",
	EvSTLShutdown:     "stl_shutdown",
	EvSTLSwitch:       "stl_switch",
	EvThreadSpawn:     "thread_spawn",
	EvThreadWait:      "thread_wait",
	EvCommit:          "commit",
	EvViolation:       "violation",
	EvRestart:         "restart",
	EvKill:            "kill",
	EvStoreOverflow:   "store_overflow",
	EvLoadOverflow:    "load_overflow",
	EvOverflowDrain:   "overflow_drain",
	EvHandlerStartup:  "handler_startup",
	EvHandlerShutdown: "handler_shutdown",
	EvHandlerEOI:      "handler_eoi",
	EvHandlerRestart:  "handler_restart",
	EvGuardDemote:     "guard_demote",
	EvGuardProbe:      "guard_probe",
	EvGuardSolo:       "guard_solo",
	EvGC:              "gc",
	EvL1Miss:          "l1_miss",
	EvL2Miss:          "l2_miss",
	EvBusTransfer:     "bus_transfer",
}

// String names the kind for metrics labels and trace export.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Wait reasons carried in EvThreadWait.Arg, mirroring the machine's
// head-wait states.
const (
	WaitEOI int64 = iota
	WaitShutdown
	WaitOverflow
	WaitException
	WaitIO
	WaitGC
	WaitSwitchIn
	WaitSwitchOut
)

// waitNames is indexed by the Wait* constants.
var waitNames = [...]string{
	"eoi", "shutdown", "overflow", "exception", "io", "gc",
	"switch_in", "switch_out",
}

// WaitName names a wait reason for trace export.
func WaitName(reason int64) string {
	if reason >= 0 && int(reason) < len(waitNames) {
		return waitNames[reason]
	}
	return "unknown"
}

// Event is one cycle-stamped occurrence inside the simulator. The struct is
// a flat value — recording one is a copy into a preallocated slot, never an
// allocation.
type Event struct {
	Cycle int64
	Arg   int64
	Aux   int64
	CPU   int32
	Kind  EventKind
}

// Recorder receives cycle-stamped events from the simulator. The disabled
// path is a nil interface value — instrumented sites check `rec != nil`
// before building the event, so a machine without a recorder pays one
// predicted branch per site. Callers must pass a nil interface (not a typed
// nil pointer) to disable recording.
//
// Implementations are not required to be goroutine-safe: a Machine is
// single-goroutine, and each machine gets its own Recorder.
type Recorder interface {
	Record(ev Event)
}

// KindMask selects which event kinds a ring stores; bit k gates EventKind k.
type KindMask uint64

// MaskAll admits every event kind.
const MaskAll KindMask = 1<<numEventKinds - 1

// MaskDefault admits everything except the per-access cache events
// (L1/L2 miss, bus transfer), which dominate event volume and would evict
// the speculation timeline from a bounded ring long before the run ends.
const MaskDefault = MaskAll &^ (1<<EvL1Miss | 1<<EvL2Miss | 1<<EvBusTransfer)

// MaskOf builds a mask admitting exactly the given kinds.
func MaskOf(kinds ...EventKind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Ring is the flight recorder: a fixed-capacity event ring in the same
// hardware-shaped style as the tls speculative buffers — all state is
// preallocated at construction, Record is O(1) with zero allocations, and
// Reset is an O(1) generation bump rather than a sweep. When the ring is
// full the oldest event is overwritten (flight-recorder semantics: the tail
// of the run is always retained) and Dropped counts the evictions.
type Ring struct {
	slots   []Event
	stamp   []uint32 // generation stamp per slot; valid iff == gen
	gen     uint32
	mask    KindMask
	next    int    // next slot to write
	count   int    // live events, <= len(slots)
	total   uint64 // events admitted by the mask since Reset
	dropped uint64 // admitted events that overwrote an older one
}

// NewRing builds a recorder ring holding up to capacity events of any kind.
func NewRing(capacity int) *Ring { return NewRingMasked(capacity, MaskAll) }

// NewRingMasked builds a recorder ring that stores only kinds admitted by
// mask. Capacity is clamped to at least 1.
func NewRingMasked(capacity int, mask KindMask) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		slots: make([]Event, capacity),
		stamp: make([]uint32, capacity),
		gen:   1,
		mask:  mask,
	}
}

// Record stores one event, overwriting the oldest when full. Zero-alloc.
func (r *Ring) Record(ev Event) {
	if r.mask&(1<<ev.Kind) == 0 {
		return
	}
	r.total++
	if r.count == len(r.slots) {
		r.dropped++
	} else {
		r.count++
	}
	r.slots[r.next] = ev
	r.stamp[r.next] = r.gen
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
}

// Len reports the number of live events (≤ Cap).
func (r *Ring) Len() int { return r.count }

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total reports events admitted by the mask since the last Reset, including
// ones later overwritten.
func (r *Ring) Total() uint64 { return r.total }

// Dropped reports how many admitted events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Mask reports the ring's kind filter.
func (r *Ring) Mask() KindMask { return r.mask }

// Reset discards all recorded events in O(1) by bumping the generation, as
// the tls buffers do — no slot is touched until it is next written.
func (r *Ring) Reset() {
	r.gen++
	if r.gen == 0 { // wrapped: stale stamps could alias, so clear them once
		for i := range r.stamp {
			r.stamp[i] = 0
		}
		r.gen = 1
	}
	r.next = 0
	r.count = 0
	r.total = 0
	r.dropped = 0
}

// Events returns the live events in chronological order (oldest first).
// The returned slice is a fresh copy.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.slots)
	}
	for i := 0; i < r.count; i++ {
		j := start + i
		if j >= len(r.slots) {
			j -= len(r.slots)
		}
		if r.stamp[j] == r.gen {
			out = append(out, r.slots[j])
		}
	}
	return out
}
