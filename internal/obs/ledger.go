package obs

import (
	"fmt"
	"sort"
)

// Ledger is the per-loop cycle-conservation ledger behind the speculation
// doctor (internal/diagnose): every simulated cycle of every CPU is
// attributed to exactly one bucket, and the sum over all buckets must equal
// wall cycles × CPUs (plus the in-flight overrun of a run cut short
// mid-instruction — see InFlight).
//
// The ledger is passive: it never touches the machine clock, readyAt
// scheduling, or tls.StateStats, so cycle counts are bit-identical whether
// it is attached or not. It is fed two ways:
//
//   - delta charges mirrored one-for-one from the tls unit's attempt
//     accounting (ChargeRun/ChargeWait/handler hooks), which advance a
//     per-CPU watermark by exactly the cycles the machine charged; and
//   - clamped absolute spans from hydra at the scheduling points the tls
//     unit cannot see (startup/shutdown parking, multilevel switches, GC,
//     deferred IO and exceptions, overflow drains), which charge the gap
//     between the watermark and a target cycle.
//
// Because every charge advances the watermark by what it claims, and Close
// sweeps the remaining gap on every CPU into Idle, conservation holds by
// construction; CheckConservation then guards the implementation itself
// (double charges, missed sweeps) rather than the caller's usage.
//
// Run/wait cycles of a speculative attempt are held tentative per CPU and
// move to used or violated buckets when the tls unit flushes the attempt —
// mirroring how StateStats defers the same judgment.
type Ledger struct {
	ncpu int

	acct      []int64 // per-CPU watermark: cycles attributed so far
	tentRun   []int64 // tentative attempt run cycles (flush decides bucket)
	tentWaitC []int64 // tentative commit-wait cycles
	tentWaitO []int64 // tentative overflow-stall wait cycles

	mach  MachineBuckets
	loops map[int64]*loopState
	cur   *loopState
	mode  LoopMode
	tier2 bool // inside a tier-2 block charge (splits the serial bucket)

	symbolize func(cpu int, addr int64) SiteKey
	curSite   *SiteStats // pending violation site during one write-bus broadcast

	closed bool
	wall   int64
}

// LoopMode tags how the active STL entry is executing; it routes used
// run/wait cycles either to the ordinary parallel buckets or to the guard's
// solo/probe buckets.
type LoopMode uint8

// Loop execution modes.
const (
	LoopParallel LoopMode = iota
	LoopSolo              // guard sequential-fallback (decertified loop)
	LoopProbe             // guard re-probe entry after decertification
)

// MachineBuckets attribute cycles spent outside any STL, plus the ledger's
// closing sweeps.
type MachineBuckets struct {
	SerialInterp    int64 `json:"serial_interp"`    // serial phase, interpreter dispatch
	SerialTier2     int64 `json:"serial_tier2"`     // serial phase, tier-2 block engine
	SerialGC        int64 `json:"serial_gc"`        // stop-the-world collection outside STLs
	SerialException int64 `json:"serial_exception"` // exception dispatch outside STLs
	Idle            int64 `json:"idle"`             // CPU parked with no thread assigned
	Cancelled       int64 `json:"cancelled"`        // tentative attempt cycles left in flight when the run stopped
	Leaked          int64 `json:"leaked"`           // tentatives found stale at an STL boundary (must stay 0)
	// InFlight is the watermark overrun past the final clock: cycles of the
	// last charged instruction spans that the halted/cancelled run never
	// reached. It is zero on every cleanly halted run and is the correction
	// term of the conservation identity (see LedgerSnapshot.Attributed).
	InFlight int64 `json:"in_flight"`
}

// LoopBuckets attribute the cycles of one STL (keyed by cfg global loop id)
// following the paper's Figure 9/10 state taxonomy, refined by handler and
// guard mode.
type LoopBuckets struct {
	RunUsed      int64 `json:"run_used"`      // committed iteration work
	WaitCommit   int64 `json:"wait_commit"`   // waiting to become head (committed attempts)
	WaitOverflow int64 `json:"wait_overflow"` // buffer-overflow stall (committed attempts)
	RunViolated  int64 `json:"run_violated"`  // discarded iteration work
	WaitViolated int64 `json:"wait_violated"` // discarded wait time

	HandlerStartup  int64 `json:"handler_startup"`  // STL_STARTUP parking (hoist-adjusted)
	HandlerShutdown int64 `json:"handler_shutdown"` // STL_SHUTDOWN parking (hoist-adjusted)
	HandlerEOI      int64 `json:"handler_eoi"`      // STL_EOI per committed iteration
	HandlerRestart  int64 `json:"handler_restart"`  // STL_RESTART per violation
	SwitchCost      int64 `json:"switch_cost"`      // multilevel switch handlers (§4.2.6)

	OverflowDrain int64 `json:"overflow_drain"` // head store-buffer drain steps
	IOCommit      int64 `json:"io_commit"`      // deferred IO performed at the head
	GC            int64 `json:"gc"`             // collection quiesce + run inside the STL
	Exception     int64 `json:"exception"`      // exception dispatch inside the STL

	GuardSolo  int64 `json:"guard_solo"`  // sequential-fallback execution (decertified)
	GuardProbe int64 `json:"guard_probe"` // re-probe execution after decertification
}

// Total sums every bucket.
func (b *LoopBuckets) Total() int64 {
	return b.RunUsed + b.WaitCommit + b.WaitOverflow + b.RunViolated + b.WaitViolated +
		b.HandlerStartup + b.HandlerShutdown + b.HandlerEOI + b.HandlerRestart +
		b.SwitchCost + b.OverflowDrain + b.IOCommit + b.GC + b.Exception +
		b.GuardSolo + b.GuardProbe
}

// SiteKind classifies a symbolized violation address.
type SiteKind uint8

// Violation site kinds.
const (
	SiteNone     SiteKind = iota
	SiteStatic            // static field word (Off = static index)
	SiteFrame             // stack frame word (Method + Off = frame offset)
	SiteHeap              // heap word (Off = raw address)
	SiteGC                // synthetic: threads discarded to quiesce for GC
	SiteInjected          // synthetic: fault-injected spurious violation
	SiteOther             // overflow bucket once a loop's site table is full
)

// SiteKey identifies one violation source after address symbolization.
type SiteKey struct {
	Kind   SiteKind `json:"kind"`
	Method int32    `json:"method"` // meaningful for SiteFrame
	Off    int64    `json:"off"`
}

// SiteStats aggregates the damage attributed to one violation site.
type SiteStats struct {
	Key           SiteKey  `json:"key"`
	Count         int64    `json:"count"`          // violated attempts
	DiscardedRun  int64    `json:"discarded_run"`  // run cycles thrown away
	DiscardedWait int64    `json:"discarded_wait"` // wait cycles thrown away
	Symbol        string   `json:"symbol"`         // resolved by hydra.AnnotateLedger
	Slot          SlotKind `json:"slot"`           // frame-slot class for SiteFrame
	SlotIndex     int32    `json:"slot_index"`     // bytecode local index for classified frame slots
}

// Discarded is the total cycles this site cost.
func (s *SiteStats) Discarded() int64 { return s.DiscardedRun + s.DiscardedWait }

// SlotKind classifies one word of a compiled method's stack frame; the JIT
// records a per-method table (hydra.Method.Frame) so the doctor can
// symbolize frame addresses back to bytecode locals and STL bookkeeping
// slots.
type SlotKind uint8

// Frame slot kinds.
const (
	SlotUnknown   SlotKind = iota
	SlotLocal              // home of bytecode local (Index = local slot)
	SlotSaved              // callee-saved register save area
	SlotResetBase          // resetable-inductor base word (Index = local slot, §4.2.3)
	SlotLock               // explicit-sync lock word (Index = protected slot, §4.2.5)
	SlotRed                // per-CPU reduction partial (Index = reduced slot, §4.2.4)
	SlotSpill              // expression spill
)

// FrameSlot describes one frame word for symbolization.
type FrameSlot struct {
	Kind  SlotKind
	Index int32 // bytecode local slot for Local/ResetBase/Lock/Red
}

// maxSitesPerLoop bounds the per-loop violation site table; further sites
// aggregate under SiteOther so the enabled hot path stays O(1) memory.
const maxSitesPerLoop = 64

type loopState struct {
	id      int64
	entries int64
	b       LoopBuckets
	sites   map[SiteKey]*SiteStats
}

// NewLedger builds a ledger for an ncpu machine.
func NewLedger(ncpu int) *Ledger {
	return &Ledger{
		ncpu:      ncpu,
		acct:      make([]int64, ncpu),
		tentRun:   make([]int64, ncpu),
		tentWaitC: make([]int64, ncpu),
		tentWaitO: make([]int64, ncpu),
		loops:     map[int64]*loopState{},
	}
}

// SetSymbolizer installs the address-to-site resolver (hydra installs a
// closure over the machine so frame addresses resolve against the violating
// CPU's frame pointer at broadcast time).
func (l *Ledger) SetSymbolizer(fn func(cpu int, addr int64) SiteKey) { l.symbolize = fn }

// --- delta charges (mirror tls attempt accounting 1:1) ---

// ChargeSerial attributes non-speculative execution cycles.
func (l *Ledger) ChargeSerial(cpu int, cycles int64) {
	l.acct[cpu] += cycles
	if l.tier2 {
		l.mach.SerialTier2 += cycles
	} else {
		l.mach.SerialInterp += cycles
	}
}

// ChargeRun adds tentative speculative run cycles for cpu's attempt.
func (l *Ledger) ChargeRun(cpu int, cycles int64) {
	l.acct[cpu] += cycles
	l.tentRun[cpu] += cycles
}

// ChargeWait adds tentative head-wait cycles; overflow distinguishes
// buffer-overflow stalls from ordinary commit waiting.
func (l *Ledger) ChargeWait(cpu int, cycles int64, overflow bool) {
	l.acct[cpu] += cycles
	if overflow {
		l.tentWaitO[cpu] += cycles
	} else {
		l.tentWaitC[cpu] += cycles
	}
}

// ChargeEOI attributes the end-of-iteration handler cost.
func (l *Ledger) ChargeEOI(cpu int, cycles int64) {
	l.acct[cpu] += cycles
	if l.cur != nil {
		l.cur.b.HandlerEOI += cycles
	} else {
		l.mach.Leaked += cycles
	}
}

// ChargeRestart attributes the restart handler cost charged to a violated
// thread's next attempt.
func (l *Ledger) ChargeRestart(cpu int, cycles int64) {
	l.acct[cpu] += cycles
	if l.cur != nil {
		l.cur.b.HandlerRestart += cycles
	} else {
		l.mach.Leaked += cycles
	}
}

// FlushAttempt resolves cpu's tentative run/wait cycles: committed attempts
// land in the used buckets of the current mode, discarded attempts land in
// the violated buckets and feed the pending violation site, if any.
func (l *Ledger) FlushAttempt(cpu int, used bool) {
	run, wc, wo := l.tentRun[cpu], l.tentWaitC[cpu], l.tentWaitO[cpu]
	l.tentRun[cpu], l.tentWaitC[cpu], l.tentWaitO[cpu] = 0, 0, 0
	if run == 0 && wc == 0 && wo == 0 && (used || l.curSite == nil) {
		return
	}
	lb := &l.mach
	if l.cur != nil {
		switch {
		case !used:
			l.cur.b.RunViolated += run
			l.cur.b.WaitViolated += wc + wo
			if l.curSite != nil {
				l.curSite.Count++
				l.curSite.DiscardedRun += run
				l.curSite.DiscardedWait += wc + wo
			}
		case l.mode == LoopSolo:
			l.cur.b.GuardSolo += run + wc + wo
		case l.mode == LoopProbe:
			l.cur.b.GuardProbe += run + wc + wo
		default:
			l.cur.b.RunUsed += run
			l.cur.b.WaitCommit += wc
			l.cur.b.WaitOverflow += wo
		}
		return
	}
	lb.Leaked += run + wc + wo
}

// --- violation attribution ---

// BeginViolation opens a site-attribution window for one write-bus
// broadcast: attempts flushed as violated until EndViolation are charged to
// the site of the given store address (symbolized against the writer CPU).
func (l *Ledger) BeginViolation(writerCPU int, addr int64) {
	if l.cur == nil {
		return
	}
	key := SiteKey{Kind: SiteHeap, Off: addr}
	if l.symbolize != nil {
		key = l.symbolize(writerCPU, addr)
	}
	l.curSite = l.site(key)
}

// BeginSyntheticViolation opens an attribution window for violations with no
// store address (GC quiesce, injected spurious RAW).
func (l *Ledger) BeginSyntheticViolation(kind SiteKind) {
	if l.cur == nil {
		return
	}
	l.curSite = l.site(SiteKey{Kind: kind})
}

// EndViolation closes the attribution window.
func (l *Ledger) EndViolation() { l.curSite = nil }

func (l *Ledger) site(key SiteKey) *SiteStats {
	s := l.cur.sites[key]
	if s == nil {
		if len(l.cur.sites) >= maxSitesPerLoop {
			key = SiteKey{Kind: SiteOther}
			if s = l.cur.sites[key]; s != nil {
				return s
			}
		}
		s = &SiteStats{Key: key}
		l.cur.sites[key] = s
	}
	return s
}

// --- absolute spans (hydra scheduling points) ---

// span sweeps any gap below `clock` into Idle (the CPU was parked with no
// thread) and charges acct..until to *bucket.
func (l *Ledger) span(cpu int, clock, until int64, bucket *int64) {
	if d := clock - l.acct[cpu]; d > 0 {
		l.mach.Idle += d
		l.acct[cpu] = clock
	}
	if d := until - l.acct[cpu]; d > 0 {
		*bucket += d
		l.acct[cpu] = until
	}
}

func (l *Ledger) loopBucket(pick func(*LoopBuckets) *int64, fallback *int64) *int64 {
	if l.cur != nil {
		return pick(&l.cur.b)
	}
	return fallback
}

// SpanStartup charges STL startup parking (master and woken slaves).
func (l *Ledger) SpanStartup(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.HandlerStartup }, &l.mach.Leaked))
}

// SpanShutdown charges STL shutdown parking on the exiting master.
func (l *Ledger) SpanShutdown(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.HandlerShutdown }, &l.mach.Leaked))
}

// SpanSwitch charges multilevel switch handler parking.
func (l *Ledger) SpanSwitch(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.SwitchCost }, &l.mach.Leaked))
}

// SpanDrain charges a head overflow-drain step.
func (l *Ledger) SpanDrain(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.OverflowDrain }, &l.mach.Leaked))
}

// SpanIO charges deferred IO performed once the thread reached the head.
func (l *Ledger) SpanIO(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.IOCommit }, &l.mach.Leaked))
}

// SpanGC charges a stop-the-world collection (loop bucket inside an STL,
// serial bucket otherwise).
func (l *Ledger) SpanGC(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.GC }, &l.mach.SerialGC))
}

// SpanException charges exception dispatch and unwinding.
func (l *Ledger) SpanException(cpu int, clock, until int64) {
	l.span(cpu, clock, until, l.loopBucket(func(b *LoopBuckets) *int64 { return &b.Exception }, &l.mach.SerialException))
}

// --- tier-2 serial split ---

// SetTier2Window brackets a tier-2 block charge so the serial bucket splits
// into block-engine vs interpreter dispatch.
func (l *Ledger) SetTier2Window(on bool) { l.tier2 = on }

// --- STL lifecycle ---

// BeginSTL opens accounting for one STL entry.
func (l *Ledger) BeginSTL(loopID int64, mode LoopMode) {
	l.sweepTentatives(&l.mach.Leaked)
	l.cur = l.loop(loopID)
	l.cur.entries++
	l.mode = mode
}

// SwitchTo redirects accounting to another loop mid-speculation (multilevel
// switch): the guard mode is preserved and the entry count of the target is
// not bumped (a switch is not a fresh entry).
func (l *Ledger) SwitchTo(loopID int64) {
	l.cur = l.loop(loopID)
}

// SetMode records a mid-loop mode change (guard demotion to solo).
func (l *Ledger) SetMode(mode LoopMode) { l.mode = mode }

// EndSTL closes accounting for the active STL.
func (l *Ledger) EndSTL() {
	l.sweepTentatives(&l.mach.Leaked)
	l.cur = nil
	l.curSite = nil
	l.mode = LoopParallel
}

func (l *Ledger) loop(id int64) *loopState {
	ls := l.loops[id]
	if ls == nil {
		ls = &loopState{id: id, sites: map[SiteKey]*SiteStats{}}
		l.loops[id] = ls
	}
	return ls
}

func (l *Ledger) sweepTentatives(into *int64) {
	for cpu := 0; cpu < l.ncpu; cpu++ {
		if s := l.tentRun[cpu] + l.tentWaitC[cpu] + l.tentWaitO[cpu]; s != 0 {
			*into += s
			l.tentRun[cpu], l.tentWaitC[cpu], l.tentWaitO[cpu] = 0, 0, 0
		}
	}
}

// Close finalizes the ledger at the machine's final clock: unclaimed cycles
// below the clock sweep into Idle, watermark overruns past it are recorded
// as InFlight, and attempts still in flight (a cancelled or budget-stopped
// run) land in Cancelled. Idempotent: only the first Close takes effect.
func (l *Ledger) Close(clock int64) {
	if l.closed {
		return
	}
	l.closed = true
	l.wall = clock
	l.sweepTentatives(&l.mach.Cancelled)
	for cpu := 0; cpu < l.ncpu; cpu++ {
		if d := clock - l.acct[cpu]; d > 0 {
			l.mach.Idle += d
			l.acct[cpu] = clock
		} else if d < 0 {
			l.mach.InFlight += -d
		}
	}
}

// LoopLedger is the snapshot of one loop's accounting.
type LoopLedger struct {
	LoopID  int64       `json:"loop_id"`
	Entries int64       `json:"entries"`
	Buckets LoopBuckets `json:"buckets"`
	Sites   []SiteStats `json:"sites,omitempty"`
}

// LedgerSnapshot is the immutable, deterministic result of a closed ledger.
type LedgerSnapshot struct {
	NCPU       int            `json:"ncpu"`
	WallCycles int64          `json:"wall_cycles"`
	Machine    MachineBuckets `json:"machine"`
	Loops      []LoopLedger   `json:"loops"`
}

// Snapshot renders the ledger's state deterministically: loops sorted by id,
// sites sorted by total discarded cycles (descending), then by key.
func (l *Ledger) Snapshot() *LedgerSnapshot {
	snap := &LedgerSnapshot{NCPU: l.ncpu, WallCycles: l.wall, Machine: l.mach}
	ids := make([]int64, 0, len(l.loops))
	for id := range l.loops {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ls := l.loops[id]
		ll := LoopLedger{LoopID: id, Entries: ls.entries, Buckets: ls.b}
		for _, s := range ls.sites {
			ll.Sites = append(ll.Sites, *s)
		}
		sort.Slice(ll.Sites, func(i, j int) bool {
			a, b := &ll.Sites[i], &ll.Sites[j]
			if da, db := a.Discarded(), b.Discarded(); da != db {
				return da > db
			}
			if a.Key.Kind != b.Key.Kind {
				return a.Key.Kind < b.Key.Kind
			}
			if a.Key.Method != b.Key.Method {
				return a.Key.Method < b.Key.Method
			}
			return a.Key.Off < b.Key.Off
		})
		snap.Loops = append(snap.Loops, ll)
	}
	return snap
}

// Attributed sums every attributed bucket (machine and per-loop, excluding
// the InFlight correction term).
func (s *LedgerSnapshot) Attributed() int64 {
	m := &s.Machine
	total := m.SerialInterp + m.SerialTier2 + m.SerialGC + m.SerialException +
		m.Idle + m.Cancelled + m.Leaked
	for i := range s.Loops {
		total += s.Loops[i].Buckets.Total()
	}
	return total
}

// CheckConservation enforces the ledger's hard invariant:
//
//	Σ buckets == wall cycles × CPUs + InFlight
//
// with InFlight == 0 on every cleanly completed run. A violation means the
// ledger implementation itself double-charged or missed a sweep.
func (s *LedgerSnapshot) CheckConservation() error {
	want := s.WallCycles*int64(s.NCPU) + s.Machine.InFlight
	if got := s.Attributed(); got != want {
		return fmt.Errorf("obs: cycle ledger violates conservation: attributed %d, want %d (wall %d × %d CPUs + %d in flight)",
			got, want, s.WallCycles, s.NCPU, s.Machine.InFlight)
	}
	return nil
}

// Loop returns the snapshot of one loop (nil when the loop never ran).
func (s *LedgerSnapshot) Loop(id int64) *LoopLedger {
	for i := range s.Loops {
		if s.Loops[i].LoopID == id {
			return &s.Loops[i]
		}
	}
	return nil
}
