package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace-event JSON object. Only the fields the
// exporter uses are modelled; ts/dur are in microseconds, which we map 1:1
// to simulated cycles.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceWriter streams trace events as a JSON array without holding the
// whole encoded trace in memory.
type traceWriter struct {
	bw    *bufio.Writer
	first bool
	err   error
}

func (tw *traceWriter) emit(ev traceEvent) {
	if tw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		tw.err = err
		return
	}
	if !tw.first {
		tw.bw.WriteString(",\n")
	}
	tw.first = false
	_, tw.err = tw.bw.Write(b)
}

// cpuTrack is the per-CPU span state machine: at most one speculation-state
// span (run / wait / violated) is open per track at a time.
type cpuTrack struct {
	name  string
	cat   string
	start int64
	open  bool
}

// WriteChromeTrace renders recorded events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each CPU gets
// one track carrying its speculation-state spans — run iN / wait:<reason> /
// violated — reproducing the paper's Figure 6/7 state breakdown as a
// timeline; violations, overflows, handler charges, and guard transitions
// appear as instants and short handler spans on the same track. One
// simulated cycle is rendered as one microsecond.
//
// Events must be in chronological order (Ring.Events provides that).
func WriteChromeTrace(w io.Writer, events []Event, ncpu int, name string) error {
	tw := &traceWriter{bw: bufio.NewWriter(w), first: true}
	tw.bw.WriteString("{\"traceEvents\":[\n")

	// Track metadata: one named track per CPU, sorted by CPU index.
	tw.emit(traceEvent{Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "jrpm " + name}})
	for cpu := 0; cpu < ncpu; cpu++ {
		tw.emit(traceEvent{Name: "thread_name", Ph: "M", TID: cpu,
			Args: map[string]any{"name": fmt.Sprintf("cpu %d", cpu)}})
		tw.emit(traceEvent{Name: "thread_sort_index", Ph: "M", TID: cpu,
			Args: map[string]any{"sort_index": cpu}})
	}

	tracks := make([]cpuTrack, ncpu)
	var maxCycle int64

	closeSpan := func(cpu int, at int64, cat string) {
		t := &tracks[cpu]
		if !t.open {
			return
		}
		if cat == "" {
			cat = t.cat
		}
		dur := at - t.start
		if dur < 0 {
			dur = 0
		}
		tw.emit(traceEvent{Name: t.name, Ph: "X", Cat: cat, TID: cpu,
			TS: t.start, Dur: dur})
		t.open = false
	}
	openSpan := func(cpu int, at int64, name, cat string) {
		closeSpan(cpu, at, "")
		tracks[cpu] = cpuTrack{name: name, cat: cat, start: at, open: true}
	}
	instant := func(ev Event, name string, args map[string]any) {
		tw.emit(traceEvent{Name: name, Ph: "i", Cat: "mark", TID: int(ev.CPU),
			TS: ev.Cycle, S: "t", Args: args})
	}

	for _, ev := range events {
		if int(ev.CPU) >= len(tracks) {
			continue
		}
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		cpu := int(ev.CPU)
		switch ev.Kind {
		case EvThreadSpawn, EvRestart, EvOverflowDrain:
			openSpan(cpu, ev.Cycle, fmt.Sprintf("i%d", ev.Arg), "run")
		case EvThreadWait:
			openSpan(cpu, ev.Cycle, "wait:"+WaitName(ev.Arg), "wait")
		case EvCommit:
			closeSpan(cpu, ev.Cycle, "")
		case EvViolation:
			closeSpan(cpu, ev.Cycle, "violated")
			args := map[string]any{"by_cpu": ev.Aux}
			switch ev.Arg {
			case -1:
				args["cause"] = "injected"
			case -2:
				args["cause"] = "gc_quiesce"
			default:
				args["addr"] = ev.Arg
			}
			instant(ev, "violation", args)
		case EvKill:
			closeSpan(cpu, ev.Cycle, "killed")
			instant(ev, "kill", map[string]any{"loop": ev.Arg})
		case EvSTLStart:
			mode := [...]string{"parallel", "solo", "probe"}[min(int(ev.Aux), 2)]
			instant(ev, "stl_start", map[string]any{"loop": ev.Arg, "mode": mode})
		case EvSTLShutdown:
			closeSpan(cpu, ev.Cycle, "")
			instant(ev, "stl_shutdown", map[string]any{"loop": ev.Arg})
		case EvSTLSwitch:
			dir := "in"
			if ev.Aux == 1 {
				dir = "out"
			}
			instant(ev, "stl_switch_"+dir, map[string]any{"loop": ev.Arg})
		case EvStoreOverflow, EvLoadOverflow:
			instant(ev, ev.Kind.String(), map[string]any{"iter": ev.Arg, "loop": ev.Aux})
		case EvHandlerStartup, EvHandlerShutdown, EvHandlerEOI, EvHandlerRestart:
			tw.emit(traceEvent{Name: ev.Kind.String(), Ph: "X", Cat: "handler",
				TID: cpu, TS: ev.Cycle, Dur: ev.Arg})
		case EvGuardDemote, EvGuardProbe, EvGuardSolo:
			instant(ev, ev.Kind.String(), map[string]any{"loop": ev.Arg})
		case EvGC:
			instant(ev, "gc", map[string]any{"run": ev.Arg})
		case EvL1Miss, EvL2Miss, EvBusTransfer:
			instant(ev, ev.Kind.String(), map[string]any{"addr": ev.Arg})
		}
	}
	// Close dangling spans so Perfetto does not drop them.
	for cpu := range tracks {
		closeSpan(cpu, maxCycle, "")
	}

	if tw.err != nil {
		return tw.err
	}
	tw.bw.WriteString("\n],\n")
	meta, err := json.Marshal(map[string]any{"workload": name, "clock": "1 cycle = 1us"})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw.bw, "\"otherData\":%s}\n", meta)
	return tw.bw.Flush()
}

// SummarizeEvents folds a recorded event stream into reg: a per-kind event
// counter and a log2 histogram of committed-iteration lengths (thread spawn
// to commit, in cycles).
func SummarizeEvents(reg *Registry, events []Event) {
	iterHist := reg.Histogram("jrpm_iteration_cycles")
	spawnAt := make(map[int32]int64)
	for _, ev := range events {
		reg.Counter(Name("jrpm_events_total", fmt.Sprintf("kind=%q", ev.Kind.String()))).Inc()
		switch ev.Kind {
		case EvThreadSpawn, EvRestart:
			spawnAt[ev.CPU] = ev.Cycle
		case EvCommit:
			if at, ok := spawnAt[ev.CPU]; ok {
				iterHist.Observe(ev.Cycle - at)
				delete(spawnAt, ev.CPU)
			}
		}
	}
}
