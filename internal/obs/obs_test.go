package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func ev(cycle int64, kind EventKind, cpu int32) Event {
	return Event{Cycle: cycle, Kind: kind, CPU: cpu}
}

func TestRingWrapAroundDropsOldest(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Record(ev(int64(i), EvCommit, 0))
	}
	if r.Len() != 8 || r.Cap() != 8 {
		t.Fatalf("Len=%d Cap=%d, want 8/8", r.Len(), r.Cap())
	}
	if r.Total() != 20 || r.Dropped() != 12 {
		t.Fatalf("Total=%d Dropped=%d, want 20/12", r.Total(), r.Dropped())
	}
	got := r.Events()
	if len(got) != 8 {
		t.Fatalf("Events len=%d, want 8", len(got))
	}
	for i, e := range got {
		if want := int64(12 + i); e.Cycle != want {
			t.Fatalf("event %d cycle=%d, want %d (chronological, oldest survivor first)", i, e.Cycle, want)
		}
	}
}

func TestRingMask(t *testing.T) {
	r := NewRingMasked(8, MaskOf(EvCommit))
	r.Record(ev(1, EvCommit, 0))
	r.Record(ev(2, EvL1Miss, 0))
	if r.Len() != 1 || r.Total() != 1 {
		t.Fatalf("masked-out event was stored: Len=%d Total=%d", r.Len(), r.Total())
	}
	if MaskDefault&(1<<EvL1Miss) != 0 || MaskDefault&(1<<EvCommit) == 0 {
		t.Fatal("MaskDefault must drop cache events and keep timeline events")
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(int64(i), EvCommit, 0))
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left state: Len=%d Total=%d Dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("Events after Reset = %d, want 0", len(got))
	}
	r.Record(ev(99, EvViolation, 1))
	got := r.Events()
	if len(got) != 1 || got[0].Cycle != 99 {
		t.Fatalf("post-Reset recording broken: %+v", got)
	}
}

func TestRingRecordZeroAlloc(t *testing.T) {
	r := NewRing(64) // small: exercises the wrap path too
	e := ev(1, EvCommit, 2)
	if n := testing.AllocsPerRun(1000, func() { r.Record(e) }); n != 0 {
		t.Fatalf("Ring.Record allocates %.1f per op, want 0", n)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, // non-positive -> bucket 0
		{1, 1},         // [1,1]
		{2, 2}, {3, 2}, // [2,3]
		{4, 3}, {7, 3}, // [4,7]
		{8, 4},
		{1 << 10, 11},
		{(1 << 11) - 1, 11},
		{1 << 62, HistogramBuckets - 1}, // clamped into the +Inf bucket
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if h.Bucket(c.bucket) != before+1 {
			t.Fatalf("Observe(%d) did not land in bucket %d", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("Count=%d, want %d", h.Count(), len(cases))
	}
	if BucketUpper(3) != 7 || BucketUpper(0) != 0 {
		t.Fatalf("BucketUpper wrong: %d %d", BucketUpper(3), BucketUpper(0))
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1234) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f per op, want 0", n)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`x_total{w="b"}`).Add(3)
	reg.Counter(`x_total{w="a"}`).Add(2)
	reg.Gauge("g").Set(1.5)
	h := reg.Histogram("lat")
	h.Observe(1)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE x_total counter",
		`x_total{w="a"} 2`,
		`x_total{w="b"} 3`,
		"# TYPE g gauge",
		"g 1.5",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="7"} 2`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 6",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	// Sorted: a-label before b-label.
	if strings.Index(out, `w="a"`) > strings.Index(out, `w="b"`) {
		t.Fatalf("output not sorted:\n%s", out)
	}
}

func TestRegistryPrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(Name("lat", `w="db"`))
	h.Observe(1)
	h.Observe(5)
	reg.Histogram("plain").Observe(3)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The le label must fold into the existing label set and the
	// _bucket/_sum/_count suffixes must attach to the base name, not the
	// labeled one.
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{w="db",le="1"} 1`,
		`lat_bucket{w="db",le="7"} 2`,
		`lat_bucket{w="db",le="+Inf"} 2`,
		`lat_sum{w="db"} 6`,
		`lat_count{w="db"} 2`,
		`plain_bucket{le="3"} 1`,
		"plain_sum 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	for _, bad := range []string{`}_bucket`, `}_sum`, `}_count`} {
		if strings.Contains(out, bad) {
			t.Fatalf("Prometheus output contains malformed series %q:\n%s", bad, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(7)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h").Observe(4)
	snap := reg.Snapshot()
	if snap["c"] != int64(7) || snap["g"] != 2.5 {
		t.Fatalf("snapshot wrong: %v", snap)
	}
	if hm, ok := snap["h"].(map[string]int64); !ok || hm["count"] != 1 || hm["sum"] != 4 {
		t.Fatalf("histogram snapshot wrong: %v", snap["h"])
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: EvSTLStart, CPU: 0, Arg: 7},
		{Cycle: 10, Kind: EvThreadSpawn, CPU: 0, Arg: 0, Aux: 7},
		{Cycle: 10, Kind: EvThreadSpawn, CPU: 1, Arg: 1, Aux: 7},
		{Cycle: 40, Kind: EvViolation, CPU: 1, Arg: 5000, Aux: 0},
		{Cycle: 46, Kind: EvRestart, CPU: 1, Arg: 1, Aux: 7},
		{Cycle: 50, Kind: EvCommit, CPU: 0, Arg: 0, Aux: 7},
		{Cycle: 50, Kind: EvThreadSpawn, CPU: 0, Arg: 2, Aux: 7},
		{Cycle: 90, Kind: EvSTLShutdown, CPU: 0, Arg: 7},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 2, "unit"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			TID  int    `json:"tid"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawRun, sawViolated, sawMeta bool
	for _, te := range doc.TraceEvents {
		switch {
		case te.Ph == "M" && te.Name == "thread_name":
			sawMeta = true
		case te.Ph == "X" && te.Cat == "run" && te.Name == "i0" && te.TID == 0 && te.TS == 10 && te.Dur == 40:
			sawRun = true
		case te.Ph == "X" && te.Cat == "violated" && te.TID == 1:
			sawViolated = true
		}
	}
	if !sawMeta || !sawRun || !sawViolated {
		t.Fatalf("missing spans (meta=%v run=%v violated=%v):\n%s", sawMeta, sawRun, sawViolated, buf.String())
	}
}

func TestSummarizeEvents(t *testing.T) {
	reg := NewRegistry()
	SummarizeEvents(reg, []Event{
		{Cycle: 10, Kind: EvThreadSpawn, CPU: 0},
		{Cycle: 74, Kind: EvCommit, CPU: 0},
		{Cycle: 74, Kind: EvViolation, CPU: 1},
	})
	if got := reg.Counter(`jrpm_events_total{kind="commit"}`).Value(); got != 1 {
		t.Fatalf("commit event counter = %d, want 1", got)
	}
	h := reg.Histogram("jrpm_iteration_cycles")
	if h.Count() != 1 || h.Sum() != 64 {
		t.Fatalf("iteration histogram count=%d sum=%d, want 1/64", h.Count(), h.Sum())
	}
}
